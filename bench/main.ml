(* Benchmark harness: regenerates every quantitative artifact of the paper
   (DESIGN.md §4, EXPERIMENTS.md).  The paper is a workshop sketch with no
   data tables, so each "experiment" reproduces a claim or figure scenario:

     E1  Fig.1 + §3.3  minimum-operator rounds vs. number of providers
     E2  §3.2          existential operator + ring-signature variant
     E3  Fig.2 + §3.5-3.7  generalized graph protocol
     E4  §3.8          primitive costs (SHA-256, RSA-1024 ≈ 2 ms claim)
     E5  §3.8          batched signing with a small MHT during bursts
     E6  §3.1          strawman comparison: PVR vs GMW-SMC vs generic ZKP
     E7  §2.3/§1       confidentiality: leakage + Gao-inference attack
     E8  §2.3          detection/evidence/accuracy fault-injection matrix
     E10 §2.3          the same properties over a lossy simulated network

   Bechamel (OLS over monotonic clock) measures the headline operation of
   each experiment; the parameter sweeps use a simple repeat-timer since
   they print whole tables. *)

module P = Pvr
module G = Pvr_bgp
module R = Pvr_rfg
module C = Pvr_crypto
module Smc = Pvr_smc
module Obs = Pvr_obs
module J = Pvr_obs.Json

(* Counter deltas attributable to one operation, as a JSON object. *)
let counted f =
  let before = Obs.Snapshot.capture () in
  let result = f () in
  let d = Obs.Snapshot.diff ~before ~after:(Obs.Snapshot.capture ()) in
  (result, d)

let delta d name = Obs.Snapshot.counter_value d name

let crypto_ops d =
  J.Obj
    [
      ("rsa_sign_ops", J.Int (delta d "crypto.rsa.sign.ops"));
      ("rsa_verify_ops", J.Int (delta d "crypto.rsa.verify.ops"));
      ("sha256_ops", J.Int (delta d "crypto.sha256.ops"));
      ("sha256_bytes", J.Int (delta d "crypto.sha256.bytes"));
      ("gossip_exchanges", J.Int (delta d "gossip.exchanges"));
      ("wire_commit_bytes", J.Int (delta d "wire.commit.bytes"));
    ]

let asn = G.Asn.of_int
let prefix0 = G.Prefix.of_string "10.0.0.0/8"
let a_as = asn 1
let b_as = asn 100

let rng0 = C.Drbg.of_int_seed 2026

(* A big shared keyring: A, B and up to 64 providers, RSA-1024 as in §3.8. *)
let max_k = 64
let providers = List.init max_k (fun i -> asn (10 + i))

let keyring =
  Printf.printf "[setup] generating %d RSA-1024 key pairs...\n%!" (max_k + 2);
  let t0 = Unix.gettimeofday () in
  let kr = P.Keyring.create ~bits:1024 rng0 (a_as :: b_as :: providers) in
  Printf.printf "[setup] done in %.1fs\n%!" (Unix.gettimeofday () -. t0);
  kr

let mk_route n len =
  let path = List.init len (fun j -> if j = 0 then n else asn (5000 + j)) in
  let base = G.Route.originate ~asn:n prefix0 in
  { base with G.Route.as_path = path; next_hop = n }

let routes_for k =
  List.init k (fun i ->
      let n = List.nth providers i in
      (n, mk_route n (1 + (i mod 8))))

(* ---- timing helpers ------------------------------------------------------ *)

let time_ms ?(min_runs = 3) ?(min_time = 0.2) f =
  (* Mean wall-clock milliseconds of [f ()]. *)
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  let runs = ref 0 in
  while !runs < min_runs || Unix.gettimeofday () -. t0 < min_time do
    ignore (f ());
    incr runs
  done;
  (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int !runs

let header title = Printf.printf "\n=== %s ===\n%!" title

(* ---- E1: minimum operator (Fig. 1 / §3.3) -------------------------------- *)

let min_round_once k =
  let rng = C.Drbg.of_int_seed (100 + k) in
  P.Runner.min_round P.Adversary.Honest rng keyring ~prover:a_as
    ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~routes:(routes_for k)

let e1 () =
  header "E1  minimum-operator verification (Figure 1, §3.3)";
  Printf.printf "%4s  %12s  %12s  %12s  %10s  %8s\n" "k" "round ms"
    "ms (no obs)" "ms/provider" "commit B" "msgs";
  let rows =
    List.map
      (fun k ->
        let ms = time_ms (fun () -> min_round_once k) in
        (* Same round with instrumentation off: the acceptance bar is that
           the difference stays within noise. *)
        Obs.set_enabled false;
        let ms_disabled = time_ms (fun () -> min_round_once k) in
        Obs.set_enabled true;
        let r, d = counted (fun () -> min_round_once k) in
        assert (not r.P.Runner.detected);
        (* The published runner counters and the report are two views of the
           same tally — they must agree for a single round. *)
        assert (delta d "runner.messages" = r.P.Runner.messages);
        assert (delta d "runner.commit_bytes" = r.P.Runner.commit_bytes);
        Printf.printf "%4d  %12.2f  %12.2f  %12.2f  %10d  %8d\n%!" k ms
          ms_disabled
          (ms /. float_of_int k)
          r.P.Runner.commit_bytes r.P.Runner.messages;
        J.Obj
          [
            ("k", J.Int k);
            ("round_ms", J.Float ms);
            ("round_ms_instrumentation_disabled", J.Float ms_disabled);
            ("messages", J.Int r.P.Runner.messages);
            ("commit_bytes", J.Int r.P.Runner.commit_bytes);
            ("ops", crypto_ops d);
          ])
      [ 2; 4; 8; 16; 32; 64 ]
  in
  J.Obj [ ("rows", J.List rows) ]

(* ---- E2: existential operator (§3.2) -------------------------------------- *)

let e2 () =
  header "E2  existential operator (§3.2) + ring-signature variant";
  Printf.printf "%4s  %12s  %14s  %14s\n" "k" "exists ms" "ring sign ms"
    "ring verify ms";
  let rows =
  List.map
    (fun k ->
      let rng = C.Drbg.of_int_seed (200 + k) in
      let inputs =
        List.map
          (fun (n, r) ->
            P.Runner.announce_of_route keyring ~provider:n ~prover:a_as
              ~epoch:1 r)
          (routes_for k)
      in
      let exists_ms =
        time_ms (fun () ->
            let out =
              P.Proto_exists.prove rng keyring ~prover:a_as ~beneficiary:b_as
                ~epoch:1 ~prefix:prefix0 ~inputs
            in
            P.Proto_exists.check_beneficiary keyring ~me:b_as
              ~commit:out.commit ~disclosure:out.beneficiary_disclosure)
      in
      let ring = List.map fst (routes_for k) in
      let signer = List.hd ring in
      let sig_ms =
        time_ms ~min_time:0.1 (fun () ->
            P.Proto_exists.ring_announce rng keyring ~ring ~signer ~epoch:1
              ~prefix:prefix0)
      in
      let rs =
        P.Proto_exists.ring_announce rng keyring ~ring ~signer ~epoch:1
          ~prefix:prefix0
      in
      let verify_ms =
        time_ms ~min_time:0.1 (fun () ->
            P.Proto_exists.ring_check keyring ~ring ~epoch:1 ~prefix:prefix0 rs)
      in
      Printf.printf "%4d  %12.2f  %14.2f  %14.2f\n%!" k exists_ms sig_ms
        verify_ms;
      J.Obj
        [
          ("k", J.Int k);
          ("exists_ms", J.Float exists_ms);
          ("ring_sign_ms", J.Float sig_ms);
          ("ring_verify_ms", J.Float verify_ms);
        ])
    [ 2; 4; 8; 16 ]
  in
  J.Obj [ ("rows", J.List rows) ]

(* ---- E3: generalized graph protocol (Fig. 2, §3.5-3.7) -------------------- *)

let e3 () =
  header "E3  route-flow-graph protocol (Figure 2, §3.5-3.7)";
  Printf.printf "%-22s  %4s  %9s  %10s  %12s\n" "promise" "k" "vertices"
    "round ms" "commit B";
  let cases =
    [
      ( "shortest-from (Fig.1)", 4,
        R.Promise.Shortest_from (List.map fst (routes_for 4)) );
      ( "shortest-from (Fig.1)", 8,
        R.Promise.Shortest_from (List.map fst (routes_for 8)) );
      ( "prefer-unless (Fig.2)", 4,
        R.Promise.Prefer_unless_shorter
          {
            fallback = List.tl (List.map fst (routes_for 4));
            override = fst (List.hd (routes_for 4));
          } );
      ( "prefer-unless (Fig.2)", 8,
        R.Promise.Prefer_unless_shorter
          {
            fallback = List.tl (List.map fst (routes_for 8));
            override = fst (List.hd (routes_for 8));
          } );
      ( "export-if-any (§3.2)", 4,
        R.Promise.Export_if_any (List.map fst (routes_for 4)) );
    ]
  in
  let rows =
    List.map
      (fun (name, k, promise) ->
        let rng = C.Drbg.of_int_seed (300 + k) in
        let run () =
          P.Runner.graph_round rng keyring ~prover:a_as ~beneficiary:b_as
            ~epoch:1 ~prefix:prefix0 ~promise ~routes:(routes_for k)
        in
        let ms = time_ms run in
        let r, d = counted run in
        assert (not r.P.Runner.detected);
        assert (delta d "runner.messages" = r.P.Runner.messages);
        assert (delta d "runner.commit_bytes" = r.P.Runner.commit_bytes);
        let rfg =
          R.Promise.reference_rfg promise ~beneficiary:b_as
            ~neighbors:(List.map fst (routes_for k))
        in
        Printf.printf "%-22s  %4d  %9d  %10.2f  %12d\n%!" name k
          (List.length (R.Rfg.vertex_ids rfg))
          ms r.P.Runner.commit_bytes;
        J.Obj
          [
            ("promise", J.String name);
            ("k", J.Int k);
            ("vertices", J.Int (List.length (R.Rfg.vertex_ids rfg)));
            ("round_ms", J.Float ms);
            ("messages", J.Int r.P.Runner.messages);
            ("commit_bytes", J.Int r.P.Runner.commit_bytes);
            ("ops", crypto_ops d);
          ])
      cases
  in
  J.Obj [ ("rows", J.List rows) ]

(* ---- E4: primitive costs (§3.8) -------------------------------------------- *)

let e4 () =
  header "E4  primitive costs (§3.8: \"RSA-1024 ~2ms\", \"SHA-256 cheap\")";
  let key = P.Keyring.private_key keyring a_as in
  let payload64 = String.make 64 'x' in
  let payload1k = String.make 1024 'x' in
  let sig_ = C.Rsa.sign key payload64 in
  (* Before/after: the "naive" column routes modular exponentiation through
     square-and-multiply ([set_fast_mod_pow false] — exactly the pre-fast-path
     code), the "fast" column through Montgomery CIOS + fixed-window.  For
     hashing, "naive" is the general buffering one-shot and "fast" the
     precomputed-layout / precomputed-midstate variants. *)
  let with_naive f =
    C.Bigint.set_fast_mod_pow false;
    Fun.protect ~finally:(fun () -> C.Bigint.set_fast_mod_pow true) f
  in
  let fixed64 = C.Sha256.Fixed.create 64 in
  let hmac_key = C.Hmac.Key.create "e4-bench-key" in
  let pairs =
    [
      ( "rsa-1024 sign",
        (fun () -> with_naive (fun () -> ignore (C.Rsa.sign key payload64))),
        fun () -> ignore (C.Rsa.sign key payload64) );
      ( "rsa-1024 verify",
        (fun () ->
          with_naive (fun () ->
              ignore (C.Rsa.verify key.C.Rsa.pub ~msg:payload64 ~signature:sig_))),
        fun () ->
          ignore (C.Rsa.verify key.C.Rsa.pub ~msg:payload64 ~signature:sig_) );
      ( "sha256 64B",
        (fun () -> ignore (C.Sha256.digest payload64)),
        fun () -> ignore (C.Sha256.Fixed.digest fixed64 payload64) );
      ( "sha256 1KiB",
        (fun () -> ignore (C.Sha256.digest payload1k)),
        fun () -> ignore (C.Sha256.digest payload1k) );
      ( "hmac 64B",
        (fun () -> ignore (C.Hmac.mac ~key:"e4-bench-key" payload64)),
        fun () -> ignore (C.Hmac.mac_with hmac_key payload64) );
      ( "commitment",
        (fun () ->
          ignore (C.Commitment.commit (C.Drbg.of_int_seed 1) payload64)),
        fun () ->
          ignore (C.Commitment.commit (C.Drbg.of_int_seed 1) payload64) );
    ]
  in
  Printf.printf "%-16s  %12s  %12s  %8s   paper (2011 hw)\n" "operation"
    "naive ms" "fast ms" "speedup";
  let rows =
    List.map
      (fun (name, naive, fast) ->
        let naive_ms = time_ms ~min_time:0.1 naive in
        let fast_ms = time_ms ~min_time:0.1 fast in
        let note =
          match name with
          | "rsa-1024 sign" -> "~2 ms"
          | "sha256 64B" -> "\"relatively cheap\""
          | _ -> ""
        in
        Printf.printf "%-16s  %12.4f  %12.4f  %7.1fx   %s\n%!" name naive_ms
          fast_ms (naive_ms /. fast_ms) note;
        (name, naive_ms, fast_ms, note))
      pairs
  in
  let jrows =
    List.map
      (fun (name, naive_ms, fast_ms, note) ->
        J.Obj
          [
            ("operation", J.String name);
            ("naive_ms", J.Float naive_ms);
            ("measured_ms", J.Float fast_ms);
            ("speedup", J.Float (naive_ms /. fast_ms));
            ("paper_note", J.String note);
          ])
      rows
  in
  (* Batch verification: one screening exponentiation amortized over a
     same-key batch, against the per-item loop on the same items. *)
  Printf.printf "%-16s  %12s  %12s  %8s\n" "verify batch" "per-item ms"
    "batched ms" "amortize";
  let batch_rows =
    List.map
      (fun size ->
        let items =
          List.init size (fun i ->
              let msg = Printf.sprintf "batch msg %d" i in
              (key.C.Rsa.pub, msg, C.Rsa.sign key msg))
        in
        let per_item_ms =
          time_ms (fun () ->
              List.iter
                (fun (pub, msg, signature) ->
                  assert (C.Rsa.verify pub ~msg ~signature))
                items)
        in
        let batched_ms =
          time_ms (fun () ->
              assert (List.for_all Fun.id (C.Rsa.verify_batch items)))
        in
        Printf.printf "%-16d  %12.4f  %12.4f  %7.1fx\n%!" size
          (per_item_ms /. float_of_int size)
          (batched_ms /. float_of_int size)
          (per_item_ms /. batched_ms);
        J.Obj
          [
            ("batch", J.Int size);
            ("per_item_ms", J.Float (per_item_ms /. float_of_int size));
            ("batched_per_item_ms", J.Float (batched_ms /. float_of_int size));
            ("amortization", J.Float (per_item_ms /. batched_ms));
          ])
      [ 1; 8; 64 ]
  in
  (* Fast paths must be bit-exact drop-ins: same signature bytes through
     both exponentiation routes, and CRT ≡ plain x^d mod n. *)
  assert (with_naive (fun () -> C.Rsa.sign key payload64) = sig_);
  assert (C.Rsa.sign_plain key payload64 = sig_);
  (* The §3.8 overhead argument, machine-checkable: one RSA signature plus
     k SHA-256 commitments per verified update. *)
  let ms_of n =
    let _, _, fast_ms, _ = List.find (fun (m, _, _, _) -> m = n) rows in
    fast_ms
  in
  let naive_ms_of n =
    let _, naive_ms, _, _ = List.find (fun (m, _, _, _) -> m = n) rows in
    naive_ms
  in
  let sign_ms = ms_of "rsa-1024 sign" in
  let sha_ms = ms_of "sha256 64B" in
  J.Obj
    [
      ("rows", J.List jrows);
      ("verify_batch_rows", J.List batch_rows);
      ( "s38_claim",
        J.Obj
          [
            ("paper_rsa1024_sign_ms", J.Float 2.0);
            ("measured_rsa1024_sign_ms", J.Float sign_ms);
            ("naive_rsa1024_sign_ms", J.Float (naive_ms_of "rsa-1024 sign"));
            ("measured_sha256_64B_ms", J.Float sha_ms);
            ( "per_update_overhead_ms_k32",
              J.Float (sign_ms +. (32.0 *. sha_ms)) );
          ] );
    ]

(* ---- E5: batch signing with a small MHT (§3.8) ------------------------------ *)

let e5 () =
  header "E5  batched signing during update bursts (§3.8)";
  let key = P.Keyring.private_key keyring a_as in
  Printf.printf "%6s  %16s  %16s  %10s\n" "batch" "per-route ms"
    "(individual)" "amortize";
  let rows =
  List.map
    (fun batch ->
      let rng = C.Drbg.of_int_seed (500 + batch) in
      let events =
        G.Update_gen.bursty rng ~duration_ms:1000 ~base_rate_per_s:10.0
          ~burst_every_ms:200 ~burst_size_mean:batch ~origin:(asn 9)
      in
      let pool =
        match G.Update_gen.batches ~window_ms:200 events with
        | b :: _ -> b
        | [] -> [ mk_route (asn 9) 3 ]
      in
      (* Normalize the window to exactly [batch] routes. *)
      let routes =
        List.init batch (fun i -> List.nth pool (i mod List.length pool))
      in
      let encoded = List.map G.Route.encode routes in
      let batched_ms =
        time_ms (fun () ->
            let tree = Pvr_merkle.Merkle_tree.build encoded in
            let _sig = C.Rsa.sign key (Pvr_merkle.Merkle_tree.root tree) in
            List.mapi (fun i _ -> Pvr_merkle.Merkle_tree.prove tree i) encoded)
      in
      let individual_ms =
        time_ms (fun () -> List.map (fun e -> C.Rsa.sign key e) encoded)
      in
      Printf.printf "%6d  %16.4f  %16.4f  %9.1fx\n%!" batch
        (batched_ms /. float_of_int batch)
        (individual_ms /. float_of_int batch)
        (individual_ms /. batched_ms);
      J.Obj
        [
          ("batch", J.Int batch);
          ("batched_per_route_ms", J.Float (batched_ms /. float_of_int batch));
          ( "individual_per_route_ms",
            J.Float (individual_ms /. float_of_int batch) );
          ("amortization", J.Float (individual_ms /. batched_ms));
        ])
    [ 1; 4; 16; 64; 256 ]
  in
  J.Obj [ ("rows", J.List rows) ]

(* ---- E5b: commitment-strategy ablation (DESIGN §5) ---------------------------- *)

let e5b () =
  header "E5b ablation: per-bit commitments vs Merkle-committed bit vector";
  Printf.printf "%4s  %14s  %14s  %14s  %14s\n" "k" "publish B (pb)"
    "publish B (mv)" "open B (pb)" "open B (mv)";
  let rows =
    List.map
      (fun k ->
        let rng = C.Drbg.of_int_seed (550 + k) in
        let bits = List.init k (fun i -> i mod 3 = 0) in
        let t_pb, pub_pb = P.Bitvec.commit rng P.Bitvec.Per_bit bits in
        let t_mv, pub_mv = P.Bitvec.commit rng P.Bitvec.Merkle_vector bits in
        let pub_pb_b = P.Bitvec.published_bytes pub_pb
        and pub_mv_b = P.Bitvec.published_bytes pub_mv
        and open_pb_b = P.Bitvec.proof_bytes (P.Bitvec.open_bit t_pb (k / 2))
        and open_mv_b = P.Bitvec.proof_bytes (P.Bitvec.open_bit t_mv (k / 2)) in
        Printf.printf "%4d  %14d  %14d  %14d  %14d\n%!" k pub_pb_b pub_mv_b
          open_pb_b open_mv_b;
        J.Obj
          [
            ("k", J.Int k);
            ("publish_bytes_per_bit", J.Int pub_pb_b);
            ("publish_bytes_merkle", J.Int pub_mv_b);
            ("open_bytes_per_bit", J.Int open_pb_b);
            ("open_bytes_merkle", J.Int open_mv_b);
          ])
      [ 8; 16; 32; 64; 128 ]
  in
  print_endline
    "shape: publishing is O(k) vs O(1); a single disclosure is O(1) vs O(log k).";
  J.Obj [ ("rows", J.List rows) ]

(* ---- E6: strawman comparison (§3.1) ------------------------------------------ *)

let e6 () =
  header "E6  PVR vs SMC vs ZKP per BGP update (§3.1)";
  let model = Smc.Cost_model.default in
  Printf.printf "anchor: 5-player vote modeled at %.1f s (paper: ~15 s)\n"
    (Smc.Cost_model.anchor_check model);
  Printf.printf "%4s  %12s  %14s  %14s  %14s  %10s\n" "k" "PVR ms"
    "GMW sim ms" "SMC model s" "ZKP model s" "SMC/PVR";
  let rows =
  List.map
    (fun k ->
      let pvr_ms = time_ms (fun () -> min_round_once k) in
      let circuit = Smc.Circuit.minimum ~bits:8 ~k in
      let parties = k + 1 in
      let inputs = Array.init (8 * k) (fun i -> i mod 3 = 0) in
      let rng = C.Drbg.of_int_seed (600 + k) in
      let gmw_ms =
        time_ms ~min_time:0.1 (fun () -> Smc.Gmw.run rng ~parties circuit ~inputs)
      in
      let smc_s = Smc.Cost_model.smc_seconds_for model circuit ~parties in
      let zkp_s =
        Smc.Cost_model.zkp_seconds model ~gates:(Smc.Circuit.size circuit)
      in
      Printf.printf "%4d  %12.2f  %14.2f  %14.1f  %14.2f  %9.0fx\n%!" k pvr_ms
        gmw_ms smc_s zkp_s
        (smc_s *. 1000.0 /. pvr_ms);
      J.Obj
        [
          ("k", J.Int k);
          ("pvr_ms", J.Float pvr_ms);
          ("gmw_sim_ms", J.Float gmw_ms);
          ("smc_model_s", J.Float smc_s);
          ("zkp_model_s", J.Float zkp_s);
          ("smc_over_pvr", J.Float (smc_s *. 1000.0 /. pvr_ms));
        ])
    [ 2; 4; 8; 16; 32 ]
  in
  J.Obj [ ("rows", J.List rows) ]

(* ---- E7: confidentiality / leakage (§2.3, §1) --------------------------------- *)

let e7 () =
  header "E7  leakage audit: PVR vs NetReview vs plain BGP (§2.3)";
  Printf.printf "%4s  %18s  %18s  %22s\n" "k" "PVR excess (B)"
    "PVR excess (Ni)" "NetReview excess (Ni)";
  let rows =
  List.map
    (fun k ->
      let inputs = routes_for k in
      let min_len =
        List.fold_left
          (fun acc (_, r) -> min acc (G.Route.path_length r))
          max_int inputs
      in
      let exported =
        List.find_map
          (fun (_, r) ->
            if G.Route.path_length r = min_len then Some r else None)
          inputs
      in
      let kbits = 8 in
      let openings = List.init kbits (fun i -> (i + 1, min_len <= i + 1)) in
      let b_baseline = P.Leakage.plain_bgp_beneficiary ~exported in
      let b_pvr = P.Leakage.pvr_min_beneficiary ~k:kbits ~openings ~exported in
      let n1, r1 = List.hd inputs in
      let n_baseline = P.Leakage.plain_bgp_provider ~me:n1 ~my_route:r1 in
      let n_pvr =
        P.Leakage.pvr_min_provider ~me:n1 ~my_route:r1
          ~revealed_bit:(Some (G.Route.path_length r1, true))
      in
      let n_netreview = P.Leakage.netreview_neighbor ~inputs in
      let eb = P.Leakage.excess_count ~baseline:b_baseline ~observed:b_pvr
      and en = P.Leakage.excess_count ~baseline:n_baseline ~observed:n_pvr
      and enr =
        P.Leakage.excess_count ~baseline:n_baseline ~observed:n_netreview
      in
      Printf.printf "%4d  %18d  %18d  %22d\n%!" k eb en enr;
      J.Obj
        [
          ("k", J.Int k);
          ("pvr_excess_beneficiary", J.Int eb);
          ("pvr_excess_neighbor", J.Int en);
          ("netreview_excess_neighbor", J.Int enr);
        ])
    [ 2; 4; 8; 16; 32 ]
  in
  (* The §1 inference attack: how well does Gao-style inference do on what
     each scheme reveals? *)
  let rng = C.Drbg.of_int_seed 777 in
  let topo =
    G.Topology.hierarchy rng ~tiers:[ 2; 4; 8; 16 ] ~extra_peering:0.05
  in
  let sim = G.Simulator.create topo in
  List.iter
    (fun origin ->
      G.Simulator.originate sim ~asn:origin
        (G.Prefix.make ~addr:(G.Asn.to_int origin lsl 24) ~len:8))
    (G.Topology.ases topo);
  ignore (G.Simulator.run sim);
  let all_paths =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun p ->
            List.map
              (fun (r : G.Route.t) -> r.G.Route.as_path)
              (G.Simulator.received_routes sim ~asn:a p))
          (G.Rib.prefixes (G.Simulator.rib sim a)))
      (G.Topology.ases topo)
  in
  let best_paths =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun p ->
            Option.map
              (fun (r : G.Route.t) -> r.G.Route.as_path)
              (G.Simulator.best_route sim ~asn:a p))
          (G.Rib.prefixes (G.Simulator.rib sim a)))
      (G.Topology.ases topo)
  in
  let acc paths =
    G.Gao_inference.accuracy ~truth:topo
      (G.Gao_inference.infer ~degree:(G.Topology.degree topo) paths)
  in
  Printf.printf
    "Gao-inference accuracy: chosen-routes only (BGP/PVR view) %.2f | all \
     Adj-RIB-In (NetReview view) %.2f  (%d vs %d paths)\n%!"
    (acc best_paths) (acc all_paths)
    (List.length best_paths)
    (List.length all_paths);
  J.Obj
    [
      ("rows", J.List rows);
      ( "gao_inference",
        J.Obj
          [
            ("accuracy_pvr_view", J.Float (acc best_paths));
            ("accuracy_netreview_view", J.Float (acc all_paths));
            ("paths_pvr_view", J.Int (List.length best_paths));
            ("paths_netreview_view", J.Int (List.length all_paths));
          ] );
    ]

(* ---- E8: detection / evidence / accuracy matrix (§2.3) ------------------------- *)

let e8 () =
  header "E8  fault-injection matrix (§2.3 Detection/Evidence/Accuracy)";
  Printf.printf "%-20s  %9s  %9s  %10s  %-40s\n" "behaviour" "detected"
    "convicted" "evidence#" "first evidence";
  let rows =
    List.map
      (fun beh ->
        let rng = C.Drbg.of_int_seed 800 in
        let r =
          P.Runner.min_round beh rng keyring ~prover:a_as ~beneficiary:b_as
            ~epoch:1 ~prefix:prefix0 ~routes:(routes_for 4)
        in
        let first =
          match r.P.Runner.raised with
          | (_, e) :: _ -> P.Evidence.describe e
          | [] -> "-"
        in
        Printf.printf "%-20s  %9b  %9b  %10d  %-40s\n%!"
          (P.Adversary.to_string beh)
          r.P.Runner.detected r.P.Runner.convicted
          (List.length r.P.Runner.raised)
          first;
        J.Obj
          [
            ("behaviour", J.String (P.Adversary.to_string beh));
            ("detected", J.Bool r.P.Runner.detected);
            ("convicted", J.Bool r.P.Runner.convicted);
            ("evidence_count", J.Int (List.length r.P.Runner.raised));
            ("first_evidence", J.String first);
          ])
      P.Adversary.all
  in
  (* Gossip-fanout ablation: single-round equivocation detection. *)
  Printf.printf "\ngossip ablation (equivocate, one round): ";
  let ablation =
    List.map
      (fun (label, gossip) ->
        let rng = C.Drbg.of_int_seed 801 in
        let r =
          P.Runner.min_round ~gossip P.Adversary.Equivocate rng keyring
            ~prover:a_as ~beneficiary:b_as ~epoch:1 ~prefix:prefix0
            ~routes:(routes_for 4)
        in
        let caught =
          List.exists
            (fun (_, e) ->
              match e with P.Evidence.Equivocation _ -> true | _ -> false)
            r.P.Runner.raised
        in
        Printf.printf "%s=%b " label caught;
        (label, J.Bool caught))
      [ ("clique", `Clique); ("ring", `Ring); ("none", `None) ]
  in
  print_newline ();
  J.Obj
    [ ("rows", J.List rows); ("gossip_ablation", J.Obj ablation) ]

(* ---- E9: online verification throughput ----------------------------------------- *)

let e9 () =
  header "E9  continuous verification throughput (Online, per-update cost)";
  (* A star around A: 8 providers each originating several prefixes; the
     Online layer verifies A's promise to B for every prefix in the table. *)
  let k = 8 in
  let star_providers = List.filteri (fun i _ -> i < k) providers in
  let topo =
    G.Topology.star ~center:a_as ~leaves:(b_as :: star_providers)
      ~rel:G.Relationship.Customer
  in
  let sim = G.Simulator.create topo in
  G.Simulator.set_gao_rexford sim false;
  let prefixes_per_provider = 4 in
  let prefixes = ref [] in
  List.iteri
    (fun i n ->
      for j = 0 to prefixes_per_provider - 1 do
        let p =
          G.Prefix.make ~addr:(((i + 1) lsl 24) lor (j lsl 16)) ~len:16
        in
        prefixes := p :: !prefixes;
        G.Simulator.originate sim ~asn:n p
      done)
    star_providers;
  ignore (G.Simulator.run sim);
  let online =
    P.Online.create ~max_path_len:16 (C.Drbg.of_int_seed 900) keyring ~sim
      ~prover:a_as ~beneficiary:b_as ~providers:star_providers
  in
  let table = !prefixes in
  let t0 = Unix.gettimeofday () in
  let reports = P.Online.run_epochs online ~prefixes:table in
  let dt = Unix.gettimeofday () -. t0 in
  let detected = List.filter (fun (_, r) -> r.P.Runner.detected) reports in
  Printf.printf
    "verified %d prefixes (k=%d providers) in %.2fs -> %.1f \
     updates/s, %.1f ms/update; false positives: %d\n%!"
    (List.length table) k dt
    (float_of_int (List.length table) /. dt)
    (dt *. 1000.0 /. float_of_int (List.length table))
    (List.length detected);
  J.Obj
    [
      ("prefixes", J.Int (List.length table));
      ("k", J.Int k);
      ("seconds", J.Float dt);
      ("updates_per_s", J.Float (float_of_int (List.length table) /. dt));
      ("ms_per_update", J.Float (dt *. 1000.0 /. float_of_int (List.length table)));
      ("false_positives", J.Int (List.length detected));
    ]

(* ---- E10: faulty-network rounds -------------------------------------------------- *)

let e10 () =
  header "E10  faulty-network rounds (Pvr_net fault injection + ARQ)";
  let profiles =
    [
      ("perfect", P.Runner.perfect_faults);
      ( "drop15",
        {
          P.Runner.perfect_faults with
          P.Runner.fp_policy = Pvr_net.faulty ~drop:0.15 ();
        } );
      ( "chaos",
        {
          P.Runner.perfect_faults with
          P.Runner.fp_policy =
            Pvr_net.faulty ~drop:0.25 ~duplicate:0.10 ~delay_max:3
              ~reorder:true ();
        } );
    ]
  in
  Printf.printf "%-8s  %-18s  %8s  %9s  %8s  %7s  %8s\n" "faults" "behaviour"
    "detected" "convicted" "required" "retries" "timeouts";
  let routes = routes_for 4 in
  let rows =
    List.concat_map
      (fun (label, faults) ->
        List.map
          (fun beh ->
            let rng = C.Drbg.of_int_seed 1000 in
            let nr =
              P.Runner.min_round_faulty ~faults beh rng keyring ~prover:a_as
                ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~routes
            in
            let r = nr.P.Runner.base in
            let required =
              beh <> P.Adversary.Honest
              && P.Runner.detection_expected beh ~beneficiary:b_as ~routes nr
            in
            Printf.printf "%-8s  %-18s  %8b  %9b  %8b  %7d  %8d\n%!" label
              (P.Adversary.to_string beh)
              r.P.Runner.detected r.P.Runner.convicted required
              nr.P.Runner.net_retries nr.P.Runner.net_timeouts;
            J.Obj
              [
                ("faults", J.String label);
                ("behaviour", J.String (P.Adversary.to_string beh));
                ("detected", J.Bool r.P.Runner.detected);
                ("convicted", J.Bool r.P.Runner.convicted);
                ("required", J.Bool required);
                ("messages", J.Int r.P.Runner.messages);
                ("net_retries", J.Int nr.P.Runner.net_retries);
                ("net_timeouts", J.Int nr.P.Runner.net_timeouts);
                ("net_drops", J.Int nr.P.Runner.net_drops);
                ("gossip_drops", J.Int nr.P.Runner.gossip_drops);
                ("ticks", J.Int nr.P.Runner.ticks);
              ])
          P.Adversary.all)
      profiles
  in
  J.Obj [ ("rows", J.List rows) ]

(* ---- E11: continuous engine (incremental caching, multicore) --------------------- *)

module E = Pvr_engine.Engine

let e11 () =
  header "E11  continuous engine: incremental caching & multicore scheduling";
  let seed = 2026 in
  let topo =
    G.Topology.hierarchy
      (C.Drbg.of_int_seed (seed + 1))
      ~tiers:[ 1; 3; 6 ] ~extra_peering:0.2
  in
  let ases = G.Topology.ases topo in
  Printf.printf "[e11] generating %d RSA-512 key pairs...\n%!"
    (List.length ases);
  let ekeyring =
    P.Keyring.create ~bits:512 (C.Drbg.of_int_seed (seed + 2)) ases
  in
  let origins =
    List.sort (fun a b -> G.Asn.compare b a) ases
    |> List.filteri (fun i _ -> i < 3)
    |> List.rev
  in
  let epochs = 6 and turnover = 0.2 in
  (* Every run below re-derives its DRBGs from fixed integer seeds, so all
     runs see the same topology, keys, churn schedule and engine secret;
     the digest cross-checks assert exactly that. *)
  let run ~jobs ~cache () =
    let sim = G.Simulator.create topo in
    let churn =
      G.Update_gen.Churn.create ~anycast:2 ~origins ~prefixes_per_origin:2 ()
    in
    let churn_rng = C.Drbg.of_int_seed (seed + 3) in
    let eng =
      E.create ~jobs ~cache ~salt_every:8
        (C.Drbg.of_int_seed (seed + 4))
        ekeyring ~topology:topo ~sim ()
    in
    let dirty = ref 0 and vertices = ref 0 in
    for i = 1 to epochs do
      let apply sim =
        if i = 1 then List.length (G.Update_gen.Churn.seed churn sim)
        else
          List.length (G.Update_gen.Churn.step churn_rng ~turnover churn sim)
      in
      let r = E.epoch ~apply eng in
      dirty := !dirty + r.E.ep_dirty;
      vertices := !vertices + r.E.ep_vertices
    done;
    (E.digest eng, !dirty, !vertices)
  in
  (* Op counts: cache on vs off, exact counter deltas on a single domain. *)
  let (digest_on, rounds_on, verts), d_on = counted (run ~jobs:1 ~cache:true) in
  let (digest_off, rounds_off, _), d_off =
    counted (run ~jobs:1 ~cache:false)
  in
  assert (digest_on = digest_off);
  (* The fast-math acceptance gate: the same seeded run through the naive
     square-and-multiply exponentiation produces the byte-identical
     engine digest — Montgomery/CRT/batch-verify change timings only. *)
  C.Bigint.set_fast_mod_pow false;
  let digest_naive, _, _ =
    Fun.protect
      ~finally:(fun () -> C.Bigint.set_fast_mod_pow true)
      (run ~jobs:1 ~cache:true)
  in
  assert (digest_on = digest_naive);
  Printf.printf "naive-modexp digest check: identical (%s)\n%!"
    (String.sub digest_naive 0 16);
  let ops label d rounds =
    Printf.printf
      "%-9s  rounds=%-4d  sha256=%-6d  rsa_sign=%-4d  rsa_verify=%-4d  \
       commit_hits=%-5d  sign_hits=%d\n%!"
      label rounds
      (delta d "crypto.sha256.ops")
      (delta d "crypto.rsa.sign.ops")
      (delta d "crypto.rsa.verify.ops")
      (delta d "crypto.commitment.cache.hits")
      (delta d "engine.cache.sign.hits")
  in
  Printf.printf "epochs=%d vertices(total)=%d turnover=%.2f digest=%s\n" epochs
    verts turnover
    (String.sub digest_on 0 16);
  ops "cache-on" d_on rounds_on;
  ops "cache-off" d_off rounds_off;
  (* The acceptance claim: under partial turnover the incremental engine
     performs strictly less hashing and signing than full recomputation. *)
  assert (delta d_on "crypto.sha256.ops" < delta d_off "crypto.sha256.ops");
  assert (delta d_on "crypto.rsa.sign.ops" <= delta d_off "crypto.rsa.sign.ops");
  let cache_json d rounds =
    J.Obj
      [
        ("rounds", J.Int rounds);
        ("ops", crypto_ops d);
        ("commitment_cache_hits", J.Int (delta d "crypto.commitment.cache.hits"));
        ( "commitment_cache_misses",
          J.Int (delta d "crypto.commitment.cache.misses") );
        ("sign_cache_hits", J.Int (delta d "engine.cache.sign.hits"));
        ("sign_cache_misses", J.Int (delta d "engine.cache.sign.misses"));
        ("vertices_skipped", J.Int (delta d "engine.vertices.skipped"));
      ]
  in
  (* Throughput vs. worker count.  Speedup scales with the cores actually
     available — recorded below so single-core CI numbers read as such. *)
  let cores = Domain.recommended_domain_count () in
  Printf.printf "cores=%d\n%!" cores;
  Printf.printf "%4s  %12s  %12s  %12s  %8s\n" "jobs" "run ms" "epochs/s"
    "rounds/s" "speedup";
  let ms1 = ref nan in
  let throughput =
    List.map
      (fun jobs ->
        let digest, rounds, _ = run ~jobs ~cache:true () in
        assert (digest = digest_on);
        let ms = time_ms (fun () -> ignore (run ~jobs ~cache:true ())) in
        if jobs = 1 then ms1 := ms;
        let speedup = !ms1 /. ms in
        Printf.printf "%4d  %12.1f  %12.2f  %12.1f  %8.2f\n%!" jobs ms
          (float_of_int epochs *. 1000.0 /. ms)
          (float_of_int rounds *. 1000.0 /. ms)
          speedup;
        J.Obj
          [
            ("jobs", J.Int jobs);
            ("ms_per_run", J.Float ms);
            ("epochs_per_s", J.Float (float_of_int epochs *. 1000.0 /. ms));
            ("rounds_per_s", J.Float (float_of_int rounds *. 1000.0 /. ms));
            ("speedup_vs_jobs1", J.Float speedup);
            ("digest_matches_jobs1", J.Bool (digest = digest_on));
          ])
      [ 1; 2; 4 ]
  in
  J.Obj
    [
      ("ases", J.Int (List.length ases));
      ("epochs", J.Int epochs);
      ("turnover", J.Float turnover);
      ("salt_every", J.Int 8);
      ("cores", J.Int cores);
      ("digest", J.String digest_on);
      ("cache_on", cache_json d_on rounds_on);
      ("cache_off", cache_json d_off rounds_off);
      ("throughput", J.List throughput);
    ]

(* ---- E12: durable store: journal overhead & crash-recovery equivalence ----------- *)

let e12 () =
  header "E12  durable store: journal/snapshot overhead, checkpoint cadence";
  let seed = 2027 in
  let topo =
    G.Topology.hierarchy
      (C.Drbg.of_int_seed (seed + 1))
      ~tiers:[ 1; 3; 6 ] ~extra_peering:0.2
  in
  let ases = G.Topology.ases topo in
  Printf.printf "[e12] generating %d RSA-512 key pairs...\n%!"
    (List.length ases);
  let ekeyring =
    P.Keyring.create ~bits:512 (C.Drbg.of_int_seed (seed + 2)) ases
  in
  let origins =
    List.sort (fun a b -> G.Asn.compare b a) ases
    |> List.filteri (fun i _ -> i < 3)
    |> List.rev
  in
  let epochs = 6 and turnover = 0.2 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pvr-bench-e12-%d" (Unix.getpid ()))
  in
  (* One engine run, journaling every epoch into [dir] when [snapshot_every]
     is given (fsync off: we measure serialization + framing, not the disk).
     Identical world derivation to E11's [run], so digests must agree with a
     checkpoint-free run. *)
  let run ?snapshot_every () =
    let sim = G.Simulator.create topo in
    let churn =
      G.Update_gen.Churn.create ~anycast:2 ~origins ~prefixes_per_origin:2 ()
    in
    let churn_rng = C.Drbg.of_int_seed (seed + 3) in
    let eng =
      E.create ~jobs:1 ~cache:true ~salt_every:8
        (C.Drbg.of_int_seed (seed + 4))
        ekeyring ~topology:topo ~sim ()
    in
    (match snapshot_every with
    | Some _ -> Pvr_store.Store.reset ~dir
    | None -> ());
    let session =
      Option.map
        (fun n ->
          Pvr_engine.Persist.start ~fsync:false ~snapshot_every:n ~dir ())
        snapshot_every
    in
    for i = 1 to epochs do
      let apply sim =
        if i = 1 then List.length (G.Update_gen.Churn.seed churn sim)
        else List.length (G.Update_gen.Churn.step churn_rng ~turnover churn sim)
      in
      let r = E.epoch ~apply eng in
      Option.iter (fun s -> Pvr_engine.Persist.record s eng r) session
    done;
    Option.iter Pvr_engine.Persist.close session;
    E.digest eng
  in
  let baseline = run () in
  Printf.printf "%-12s  %10s  %10s  %12s  %9s  %9s\n" "mode" "run ms"
    "epochs/s" "journal B" "snapshots" "digest=";
  let mode name snapshot_every =
    let digest, d = counted (run ?snapshot_every) in
    let ms = time_ms (fun () -> ignore (run ?snapshot_every ())) in
    let journal_bytes = delta d "store.journal.bytes" in
    let snaps = delta d "store.snapshot.writes" in
    Printf.printf "%-12s  %10.1f  %10.2f  %12d  %9d  %9b\n%!" name ms
      (float_of_int epochs *. 1000.0 /. ms)
      journal_bytes snaps (digest = baseline);
    assert (digest = baseline);
    J.Obj
      [
        ("mode", J.String name);
        ("ms_per_run", J.Float ms);
        ("epochs_per_s", J.Float (float_of_int epochs *. 1000.0 /. ms));
        ("journal_bytes", J.Int journal_bytes);
        ("journal_appends", J.Int (delta d "store.journal.appends"));
        ("snapshot_writes", J.Int snaps);
        ("replay_frames", J.Int (delta d "store.replay.frames"));
        ("digest_matches_off", J.Bool (digest = baseline));
      ]
  in
  let rows =
    (* bind in sequence: list-literal element order of evaluation is
       unspecified, and the table should print top-to-bottom *)
    let off = mode "off" None in
    let every_epoch = mode "every-epoch" (Some 1) in
    let every_5 = mode "every-5" (Some 5) in
    [ off; every_epoch; every_5 ]
  in
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat dir f))
       (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  J.Obj
    [
      ("ases", J.Int (List.length ases));
      ("epochs", J.Int epochs);
      ("turnover", J.Float turnover);
      ("digest", J.String baseline);
      ("modes", J.List rows);
    ]

(* ---- E13: internet scale: generated topology, interning, shards ------------------ *)

let e13 () =
  header "E13  internet scale: generated topology, route interning, shards";
  let seed = 2028 in
  (* One RSA-512 keyring covering ASNs 1..1000 serves every topology size
     below: [Topology.generate ~ases:n] always numbers its ASes 1..n, so a
     superset ring avoids regenerating keys per size (keygen dominates
     wall-clock at this scale). *)
  let max_ases = 1000 in
  Printf.printf "[e13] generating %d RSA-512 key pairs...\n%!" max_ases;
  let t0 = Unix.gettimeofday () in
  let ekeyring =
    P.Keyring.create ~bits:512
      (C.Drbg.of_int_seed (seed + 1))
      (List.init max_ases (fun i -> asn (i + 1)))
  in
  Printf.printf "[e13] done in %.1fs\n%!" (Unix.gettimeofday () -. t0);
  (* Every run re-derives topology, churn and engine secret from fixed
     integer seeds: same [ases] means the same internet, so digests are
     comparable across jobs/shards/cache/intern settings. *)
  let run ?(epochs = 4) ?(turnover = 0.2) ?(mem = 0) ?on_epoch ~ases ~jobs
      ~shards ~intern ~cache () =
    G.Intern.set_enabled intern;
    let topo =
      G.Topology.generate (C.Drbg.of_int_seed (seed + 2)) ~ases ()
    in
    (* Origins: the four highest ASNs — late arrivals in the preferential-
       attachment order, hence stubs near the edge, as in the paper's
       promise-to-beneficiary scenario. *)
    let origins = List.init 4 (fun i -> asn (ases - i)) in
    let sim = G.Simulator.create topo in
    let churn =
      G.Update_gen.Churn.create ~anycast:1 ~origins ~prefixes_per_origin:2 ()
    in
    let churn_rng = C.Drbg.of_int_seed (seed + 3) in
    let eng =
      E.create ~jobs ~shards ~cache ~salt_every:8
        (C.Drbg.of_int_seed (seed + 4))
        ekeyring ~topology:topo ~sim ()
    in
    if mem > 0 then begin
      E.set_mem_ceiling eng mem;
      E.set_pager eng (Some (E.memory_pager ()))
    end;
    let dirty = ref 0 and msgs = ref 0 in
    for i = 1 to epochs do
      let apply sim =
        if i = 1 then List.length (G.Update_gen.Churn.seed churn sim)
        else
          List.length (G.Update_gen.Churn.step churn_rng ~turnover churn sim)
      in
      let r = E.epoch ~apply eng in
      dirty := !dirty + r.E.ep_dirty;
      msgs := !msgs + r.E.ep_msgs;
      Option.iter (fun f -> f i r) on_epoch
    done;
    let d = E.digest eng in
    G.Intern.set_enabled false;
    (d, !dirty, !msgs)
  in
  (* Scaling curve: ASes x jobs at fixed turnover (single timed run per
     cell; at this scale a run is seconds, not microseconds). *)
  let cores = Domain.recommended_domain_count () in
  Printf.printf "cores=%d\n%!" cores;
  Printf.printf "%6s %5s  %10s  %10s  %8s  %8s\n" "ases" "jobs" "run ms"
    "ms/epoch" "dirty" "msgs";
  let epochs = 4 in
  (* Per-domain utilization as published by the pool after each round:
     cumulative busy/idle microseconds and task counts per resident worker.
     Contention shows up here as busy-time skew or idle-time blowup even
     when single-core wall-clock cannot show a speedup. *)
  let pool_domain_gauges () =
    let prefix = "engine.pool.domain." in
    let plen = String.length prefix in
    let gs =
      List.filter
        (fun (name, _) ->
          String.length name >= plen && String.sub name 0 plen = prefix)
        (Obs.Snapshot.gauges (Obs.Snapshot.capture ()))
    in
    J.Obj (List.map (fun (n, v) -> (n, J.Int v)) gs)
  in
  let scaling =
    List.concat_map
      (fun ases ->
        List.map
          (fun jobs ->
            let t0 = Unix.gettimeofday () in
            let _, dirty, msgs =
              run ~ases ~jobs ~shards:8 ~intern:true ~cache:true ()
            in
            let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            Printf.printf "%6d %5d  %10.1f  %10.1f  %8d  %8d\n%!" ases jobs
              ms
              (ms /. float_of_int epochs)
              dirty msgs;
            J.Obj
              ([
                 ("ases", J.Int ases);
                 ("jobs", J.Int jobs);
                 ("ms_per_run", J.Float ms);
                 ("ms_per_epoch", J.Float (ms /. float_of_int epochs));
                 ("dirty", J.Int dirty);
                 ("msgs", J.Int msgs);
               ]
              @
              if jobs > 1 then [ ("pool_domains", pool_domain_gauges ()) ]
              else []))
          [ 1; 2 ])
      [ 100; 300; 1000 ]
  in
  (* Turnover sweep at a fixed mid-size internet. *)
  Printf.printf "%8s  %10s  %8s\n" "turnover" "run ms" "dirty";
  let turnover_rows =
    List.map
      (fun turnover ->
        let t0 = Unix.gettimeofday () in
        let _, dirty, _ =
          run ~turnover ~ases:300 ~jobs:1 ~shards:8 ~intern:true ~cache:true
            ()
        in
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        Printf.printf "%8.2f  %10.1f  %8d\n%!" turnover ms dirty;
        J.Obj
          [
            ("turnover", J.Float turnover);
            ("ms_per_run", J.Float ms);
            ("dirty", J.Int dirty);
          ])
      [ 0.05; 0.2; 0.5 ]
  in
  (* Determinism matrix at 1000 ASes: the digest must be byte-identical
     across jobs, shard counts, the memo cache and interning. *)
  let base, _, _ = run ~ases:1000 ~jobs:1 ~shards:0 ~intern:true ~cache:true () in
  let matrix =
    [
      ( "jobs=2 shards=5",
        fun () -> run ~ases:1000 ~jobs:2 ~shards:5 ~intern:true ~cache:true () );
      ( "jobs=4 shards=16",
        fun () -> run ~ases:1000 ~jobs:4 ~shards:16 ~intern:true ~cache:true () );
      ( "jobs=2 intern=off",
        fun () -> run ~ases:1000 ~jobs:2 ~shards:5 ~intern:false ~cache:true () );
      ( "jobs=1 cache=off",
        fun () -> run ~ases:1000 ~jobs:1 ~shards:0 ~intern:true ~cache:false () );
      ( "jobs=2 mem-ceiling",
        (* Bounded memory at scale: a tight governor ceiling with spilling
           must not perturb the digest (E16 measures the footprint). *)
        fun () ->
          run ~mem:200_000 ~ases:1000 ~jobs:2 ~shards:5 ~intern:true
            ~cache:true () );
    ]
  in
  let determinism =
    List.map
      (fun (label, f) ->
        let d, _, _ = f () in
        Printf.printf "digest %-18s %s\n%!" label
          (if d = base then "= baseline" else "MISMATCH");
        assert (d = base);
        J.Obj [ ("variant", J.String label); ("digest_matches", J.Bool true) ])
      matrix
  in
  (* Interning ablation: allocated words per steady-state epoch (§3.8's
     quiet regime: zero turnover after the seeding epoch, so every epoch is
     collect + classify + digest with no fresh RSA).  Interning memoizes
     the per-vertex snapshot encodes, which dominate allocation there. *)
  let allocated_words () =
    let s = Gc.quick_stat () in
    s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words
  in
  let quiet_words ~intern =
    let words = ref [] in
    let before = ref 0.0 in
    let d, _, _ =
      run ~epochs:6 ~turnover:0.0 ~ases:1000 ~jobs:1 ~shards:0 ~intern
        ~cache:true
        ~on_epoch:(fun i _ ->
          (* Epoch 1 seeds the table (RSA everywhere); epochs 2.. are the
             steady state we measure. *)
          let now = allocated_words () in
          if i >= 2 then words := (now -. !before) :: !words;
          before := now)
        ()
    in
    let n = List.length !words in
    (d, List.fold_left ( +. ) 0.0 !words /. float_of_int n)
  in
  let d_off, w_off = quiet_words ~intern:false in
  let d_on, w_on = quiet_words ~intern:true in
  assert (d_off = d_on);
  let ratio = w_off /. w_on in
  Printf.printf
    "quiet-epoch allocation (1000 ASes): intern=off %.0f words/epoch, \
     intern=on %.0f words/epoch, reduction %.2fx\n%!"
    w_off w_on ratio;
  (* The acceptance claim: interning at least halves steady-state
     allocation on the 1k-AS workload. *)
  assert (ratio >= 2.0);
  J.Obj
    [
      ("max_ases", J.Int max_ases);
      ("epochs", J.Int epochs);
      ("cores", J.Int cores);
      ("scaling", J.List scaling);
      ("turnover_sweep", J.List turnover_rows);
      ("digest", J.String base);
      ("determinism", J.List determinism);
      ( "intern_ablation",
        J.Obj
          [
            ("allocated_words_per_quiet_epoch_off", J.Float w_off);
            ("allocated_words_per_quiet_epoch_on", J.Float w_on);
            ("reduction_factor", J.Float ratio);
            ("digest_matches", J.Bool (d_off = d_on));
          ] );
    ]

(* ---- E14: adversary zoo x prefix family: detection / leakage -------------------- *)

let e14 () =
  header "E14  adversary zoo: detection and leakage matrix";
  let seed = 2031 in
  let ases = 12 in
  let epochs = 2 in
  let ekeyring =
    P.Keyring.create ~bits:512
      (C.Drbg.of_int_seed (seed + 1))
      (List.init ases (fun i -> asn (i + 1)))
  in
  (* One run of the zoo: generated internet, every tiered prefix
     originated, every vertex routed through the fault runner (perfect
     links) so the disclosure ledger is live even on honest plans. *)
  let run strategy =
    let topo =
      G.Topology.generate (C.Drbg.of_int_seed (seed + 2)) ~ases ()
    in
    let plan = G.Topology.tiered_prefixes topo in
    let sim = G.Simulator.create topo in
    List.iter (fun (a, p) -> G.Simulator.originate sim ~asn:a p) plan;
    let eng =
      E.create ~salt_every:1 ~strategy ~faults:P.Runner.perfect_faults
        (C.Drbg.of_int_seed (seed + 3))
        ekeyring ~topology:topo ~sim ()
    in
    let outcomes = ref [] in
    for _ = 1 to epochs do
      let r = E.epoch eng in
      outcomes := !outcomes @ r.E.ep_outcomes
    done;
    (E.digest eng, !outcomes)
  in
  let families = [ 8; 16; 24 ] in
  Printf.printf "%-22s %-4s %8s %6s %8s %9s %7s %6s\n" "strategy" "fam"
    "vertices" "cheats" "detected" "convicted" "leaked" "excess";
  let rows =
    List.map
      (fun strategy ->
        let name = P.Adversary.strategy_to_string strategy in
        let complying =
          match strategy with P.Adversary.Timing_probe _ -> true | _ -> false
        in
        let digest, outcomes = run strategy in
        (* Seed-reproducibility contract: a second same-seed run of the
           same strategy is byte-identical. *)
        let digest2, _ = run strategy in
        assert (digest = digest2);
        let fam_rows =
          List.filter_map
            (fun len ->
              let os =
                List.filter
                  (fun o -> o.E.vx_vertex.E.vprefix.G.Prefix.len = len)
                  outcomes
              in
              if os = [] then None
              else begin
                let count p = List.length (List.filter p os) in
                let cheats =
                  count (fun o -> o.E.vx_behaviour <> P.Adversary.Honest)
                in
                let detected = count (fun o -> o.E.vx_detected) in
                let convicted = count (fun o -> o.E.vx_convicted) in
                let sum f = List.fold_left (fun a o -> a + f o) 0 os in
                let leaked = sum (fun o -> o.E.vx_leaked_bits) in
                let excess = sum (fun o -> o.E.vx_excess_bits) in
                (* §2.3 acceptance: every cheat whose witnessing messages
                   were delivered is detected — and convicted, unless the
                   strategy complies with challenges (stonewalling probes
                   are exonerated, never convicted).  Honest vertices leak
                   zero bits beyond their plain-BGP baseline. *)
                List.iter
                  (fun o ->
                    if o.E.vx_behaviour <> P.Adversary.Honest then begin
                      let required =
                        match o.E.vx_net with
                        | Some nr ->
                            P.Runner.detection_expected o.E.vx_behaviour
                              ~beneficiary:o.E.vx_beneficiary
                              ~routes:o.E.vx_routes nr
                        | None -> false
                      in
                      if required then assert o.E.vx_detected;
                      if complying then assert (not o.E.vx_convicted)
                      else if required then assert o.E.vx_convicted
                    end
                    else begin
                      assert (not o.E.vx_convicted);
                      assert (o.E.vx_excess_bits = 0)
                    end)
                  os;
                Printf.printf
                  "%-22s /%-3d %8d %6d %8d %9d %7d %6d\n%!" name len
                  (List.length os) cheats detected convicted leaked excess;
                Some
                  (J.Obj
                     [
                       ("family", J.Int len);
                       ("vertices", J.Int (List.length os));
                       ("cheats", J.Int cheats);
                       ("detected", J.Int detected);
                       ("convicted", J.Int convicted);
                       ("leaked_bits", J.Int leaked);
                       ("excess_bits", J.Int excess);
                     ])
              end)
            families
        in
        J.Obj
          [
            ("strategy", J.String name);
            ("digest", J.String digest);
            ("reproducible", J.Bool true);
            ("families", J.List fam_rows);
          ])
      P.Adversary.all_strategies
  in
  J.Obj
    [
      ("ases", J.Int ases);
      ("epochs", J.Int epochs);
      ("strategies", J.List rows);
    ]

(* ---- E16: bounded memory: governor staging and spill-to-store ------------------- *)

(* The memory-governor acceptance claim, measured: an unbounded run's peak
   major heap sets the budget, then the same seeded run under a ceiling of
   a quarter of that — spilling cold vertex state into a real WAL store —
   must produce the byte-identical digest.  The [engine.mem.*] counters of
   the bounded run land in BENCH_pvr.json so regressions in shedding
   behaviour are visible across commits. *)
let e16 () =
  header "E16  bounded memory: governor, spill-to-store, digest parity";
  let seed = 2040 in
  let ases = 300 in
  let epochs = 6 in
  let ekeyring =
    P.Keyring.create ~bits:512
      (C.Drbg.of_int_seed (seed + 1))
      (List.init ases (fun i -> asn (i + 1)))
  in
  (* One seeded engine run; [ceiling] > 0 installs the governor with a
     store-backed pager.  Returns (digest, peak major-heap words above the
     pre-run compacted floor). *)
  let run ?(ceiling = 0) () =
    Gc.compact ();
    let floor_words = (Gc.quick_stat ()).Gc.heap_words in
    let topo = G.Topology.generate (C.Drbg.of_int_seed (seed + 2)) ~ases () in
    let origins = List.init 4 (fun i -> asn (ases - i)) in
    let sim = G.Simulator.create topo in
    G.Simulator.set_log_enabled sim false;
    let churn =
      G.Update_gen.Churn.create ~anycast:1 ~origins ~prefixes_per_origin:4 ()
    in
    let churn_rng = C.Drbg.of_int_seed (seed + 3) in
    let eng =
      E.create ~jobs:1 ~shards:0 ~cache:true ~salt_every:8
        (C.Drbg.of_int_seed (seed + 4))
        ekeyring ~topology:topo ~sim ()
    in
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pvr-bench-e16-%d" (Unix.getpid ()))
    in
    let session =
      if ceiling > 0 then begin
        Pvr_store.Store.reset ~dir;
        let s = Pvr_engine.Persist.start ~fsync:false ~snapshot_every:0 ~dir () in
        E.set_mem_ceiling eng ceiling;
        E.set_pager eng
          (Some (Pvr_engine.Persist.pager s ~run_id:(E.Checkpoint.run_id eng)));
        Some s
      end
      else None
    in
    let peak = ref 0 in
    Fun.protect
      ~finally:(fun () ->
        Option.iter Pvr_engine.Persist.close session;
        if session <> None then
          try
            Array.iter
              (fun f -> Sys.remove (Filename.concat dir f))
              (Sys.readdir dir);
            Unix.rmdir dir
          with Sys_error _ | Unix.Unix_error _ -> ())
      (fun () ->
        for i = 1 to epochs do
          let apply sim =
            if i = 1 then G.Update_gen.Churn.seed_count churn sim
            else
              G.Update_gen.Churn.step_count churn_rng ~turnover:0.2 churn sim
          in
          ignore (E.epoch ~apply eng : E.epoch_report);
          peak := max !peak ((Gc.quick_stat ()).Gc.heap_words - floor_words)
        done);
    (E.digest eng, !peak)
  in
  let t0 = Unix.gettimeofday () in
  let base_digest, unbounded_peak = run () in
  let unbounded_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let ceiling = max 1 (unbounded_peak / 4) in
  Printf.printf
    "unbounded: peak %d heap words (%.1f ms); ceiling for bounded run: %d\n%!"
    unbounded_peak unbounded_ms ceiling;
  let before = Obs.Snapshot.capture () in
  let t0 = Unix.gettimeofday () in
  let bounded_digest, bounded_peak = run ~ceiling () in
  let bounded_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let d = Obs.Snapshot.diff ~before ~after:(Obs.Snapshot.capture ()) in
  let mem name = Obs.Snapshot.counter_value d ("engine.mem." ^ name) in
  Printf.printf
    "bounded:   peak %d heap words (%.1f ms) — cache_drops=%d spills=%d \
     unspills=%d page_reads=%d throttles=%d\n%!"
    bounded_peak bounded_ms (mem "cache_drops") (mem "spills") (mem "unspills")
    (mem "page_reads") (mem "throttles");
  Printf.printf "digest %s under a 4x-tighter heap: %s\n%!"
    (if bounded_digest = base_digest then "identical" else "MISMATCH")
    base_digest;
  (* The acceptance claims: shedding engaged, and it cost nothing in
     correctness — the digest is byte-identical under the quartered
     ceiling. *)
  assert (bounded_digest = base_digest);
  assert (mem "spills" > 0);
  J.Obj
    [
      ("ases", J.Int ases);
      ("epochs", J.Int epochs);
      ("digest", J.String base_digest);
      ("digest_matches", J.Bool (bounded_digest = base_digest));
      ( "unbounded",
        J.Obj
          [
            ("peak_heap_words", J.Int unbounded_peak);
            ("ms_per_run", J.Float unbounded_ms);
          ] );
      ( "bounded",
        J.Obj
          [
            ("mem_ceiling_words", J.Int ceiling);
            ("peak_heap_words", J.Int bounded_peak);
            ("ms_per_run", J.Float bounded_ms);
            ("cache_drops", J.Int (mem "cache_drops"));
            ("spills", J.Int (mem "spills"));
            ("unspills", J.Int (mem "unspills"));
            ("page_reads", J.Int (mem "page_reads"));
            ("page_read_failures", J.Int (mem "page_read_failures"));
            ("throttles", J.Int (mem "throttles"));
          ] );
    ]

(* ---- E15: audit queries over the evidence plane --------------------------------- *)

let e15 () =
  header "E15  pvr_query: indexed audit queries vs. full journal scans";
  let module Idx = Pvr_query.Evidence_index in
  let module Lang = Pvr_query.Lang in
  let module Exec = Pvr_query.Exec in
  let seed = 2033 in
  let topo =
    G.Topology.hierarchy
      (C.Drbg.of_int_seed (seed + 1))
      ~tiers:[ 1; 3; 8 ] ~extra_peering:0.2
  in
  let ases = G.Topology.ases topo in
  let ekeyring =
    P.Keyring.create ~bits:512 (C.Drbg.of_int_seed (seed + 2)) ases
  in
  let origins =
    List.sort (fun a b -> G.Asn.compare b a) ases
    |> List.filteri (fun i _ -> i < 4)
    |> List.rev
  in
  let epochs = 24 and turnover = 0.25 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pvr-bench-e15-%d" (Unix.getpid ()))
  in
  Pvr_store.Store.reset ~dir;
  (* A stonewalling timing-probe run: probed cheats are detected but never
     convicted, so the evidence plane has violations to query while the run
     itself stays clean. *)
  let sim = G.Simulator.create topo in
  let churn =
    G.Update_gen.Churn.create ~anycast:4 ~origins ~prefixes_per_origin:4 ()
  in
  let churn_rng = C.Drbg.of_int_seed (seed + 3) in
  let eng =
    E.create ~jobs:1 ~cache:true ~salt_every:4
      ~strategy:(P.Adversary.Timing_probe { period = 3 })
      (C.Drbg.of_int_seed (seed + 4))
      ekeyring ~topology:topo ~sim ()
  in
  let session =
    Pvr_engine.Persist.start ~fsync:false ~snapshot_every:4 ~dir ()
  in
  for i = 1 to epochs do
    let apply sim =
      if i = 1 then List.length (G.Update_gen.Churn.seed churn sim)
      else List.length (G.Update_gen.Churn.step churn_rng ~turnover churn sim)
    in
    let r = E.epoch ~apply eng in
    Pvr_engine.Persist.record session eng r
  done;
  Pvr_engine.Persist.close session;
  let build () =
    counted (fun () ->
        match Idx.build ~quiet:true ~dir () with
        | Ok idx -> idx
        | Error e -> failwith e)
  in
  let idx, bd = build () in
  let build_ms = time_ms (fun () -> ignore (build ())) in
  (* A second, independent build: every query below must render the same
     bytes against both, the determinism the crash-recovery smoke relies
     on. *)
  let idx2, _ = build () in
  let n = Idx.row_count idx in
  let frames_scanned = delta bd "query.scan.frames" in
  Printf.printf
    "[e15] %d rows over %d epochs; index build %.2f ms (%d frames decoded)\n%!"
    n epochs build_ms frames_scanned;
  assert (n > 0);
  (* Query a leaf prover — the smallest non-empty posting list — so the
     posting-list plan shows its best case against the O(n) scan. *)
  let probe =
    List.fold_left
      (fun best a ->
        let c = Idx.est_prover idx a in
        match best with
        | _ when c = 0 -> best
        | Some (_, bc) when bc <= c -> best
        | _ -> Some (G.Asn.to_int a, c))
      None ases
    |> Option.get |> fst
  in
  let queries =
    [
      ("prover-posting", Printf.sprintf "rows where prover = AS%d" probe);
      ( "epoch-range",
        "violations where epoch > 20 order by epoch asc limit 20" );
      ( "prefix-subtree",
        "violations where prefix in 10.0.0.0/8 and epoch > 20 order by epoch \
         limit 20" );
      ("full-scan", "violations where detected order by leaked desc");
    ]
  in
  (* Brute-force reference: decode-order walk of every row with the whole
     predicate as a residual — exactly what the Scan access path pays. *)
  let brute q =
    let matched =
      List.filter (Lang.admits q) (List.init n (Idx.row idx))
    in
    let ordered =
      match q.Lang.q_order with
      | None -> matched
      | Some (k, asc) ->
          List.stable_sort
            (fun a b ->
              let c = Exec.key_compare k a b in
              if asc then c else -c)
            matched
    in
    match q.Lang.q_limit with
    | None -> ordered
    | Some m -> List.filteri (fun i _ -> i < m) ordered
  in
  let court = P.Leakage.court in
  Printf.printf "%-16s  %-18s %5s %6s  %9s  %9s  %8s  %6s\n" "query" "plan"
    "rows" "cand" "index ms" "scan ms" "speedup" "hit%";
  let jrows =
    List.map
      (fun (name, text) ->
        let q =
          match Lang.parse text with
          | Ok q -> q
          | Error e -> failwith (Lang.render_error ~query:text e)
        in
        let res, d = counted (fun () -> Exec.run idx ~viewer:court q) in
        let plan = res.Exec.qr_plan in
        (* The planner may change cost, never answers. *)
        assert (res.Exec.qr_rows = brute q);
        let res2 = Exec.run idx2 ~viewer:court q in
        assert (
          Exec.render_json ~query:q ~viewer:court res
          = Exec.render_json ~query:q ~viewer:court res2);
        let indexed_ms =
          time_ms (fun () -> ignore (Exec.run idx ~viewer:court q))
        in
        let scan_ms = time_ms (fun () -> ignore (brute q)) in
        let hits = delta d "query.index.hits" in
        let rows = List.length res.Exec.qr_rows in
        let hit_ratio = float_of_int hits /. float_of_int (max 1 n) in
        Printf.printf "%-16s  %-18s %5d %6d  %9.3f  %9.3f  %7.1fx  %6.3f\n%!"
          name
          (Exec.access_to_string plan.Exec.pl_access)
          rows plan.Exec.pl_cost indexed_ms scan_ms (scan_ms /. indexed_ms)
          hit_ratio;
        (* §acceptance: the selective posting-list plan must beat brute
           scanning outright; the other indexed plans are reported. *)
        if name = "prover-posting" then assert (indexed_ms < scan_ms);
        J.Obj
          [
            ("name", J.String name);
            ("query", J.String (Lang.to_string q));
            ("plan", J.String (Exec.access_to_string plan.Exec.pl_access));
            ("candidates", J.Int plan.Exec.pl_cost);
            ("rows", J.Int rows);
            ("indexed_ms", J.Float indexed_ms);
            ("scan_ms", J.Float scan_ms);
            ("speedup", J.Float (scan_ms /. indexed_ms));
            ("index_hits", J.Int hits);
            ("index_hit_ratio", J.Float hit_ratio);
            ( "rows_per_sec",
              J.Float (float_of_int rows *. 1000.0 /. indexed_ms) );
          ])
      queries
  in
  J.Obj
    [
      ("ases", J.Int (List.length ases));
      ("epochs", J.Int epochs);
      ("rows", J.Int n);
      ("build_ms", J.Float build_ms);
      ("build_frames_decoded", J.Int frames_scanned);
      ("queries", J.List jrows);
    ]

(* ---- E17: serving traffic: concurrent sessions against one daemon --------------- *)

let e17 () =
  header "E17  serve: concurrent verification sessions over one daemon";
  let module S = Pvr_serve.Server in
  let module Cl = Pvr_serve.Client in
  let module W = Pvr_serve.Workload in
  let module Pr = Pvr_serve.Protocol in
  let sessions = 100 in
  let distinct_seeds = 8 in
  let epochs = 3 in
  let params seed =
    {
      W.defaults with
      W.p_seed = seed;
      p_tiers = "1,2";
      p_origins = 2;
      p_epochs = epochs;
    }
  in
  (* Batch oracle: one engine run per distinct seed; every streamed
     session must land byte-identically on one of these digests. *)
  let batch =
    Array.init distinct_seeds (fun i ->
        let p = params (7000 + i) in
        let w = W.build_world ~quiet:true p in
        match W.engine_core ~quiet:true w p with
        | Ok (d, _) -> d
        | Error e -> failwith ("e17 batch oracle: " ^ e))
  in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pvr-bench-e17-%d.sock" (Unix.getpid ()))
  in
  let workers = 4 and queue_cap = 16 in
  let srv =
    S.start { (S.default_config (S.Unix_sock path)) with workers; queue_cap }
  in
  (* A client burst can outrun the accept loop's backlog: retry briefly. *)
  let connect () =
    let rec go tries =
      match Cl.connect (S.Unix_sock path) with
      | c -> c
      | exception Unix.Unix_error _ when tries < 100 ->
          Unix.sleepf 0.02;
          go (tries + 1)
    in
    go 0
  in
  let mu = Mutex.create () in
  let latencies = ref [] in
  (* seconds between successive verdict frames *)
  let updates = ref 0 and verdicts = ref 0 and busy_retries = ref 0 in
  let mismatches = ref 0 in
  let heap0 = (Gc.quick_stat ()).Gc.heap_words in
  let peak_heap = ref heap0 and peak_queue = ref 0 in
  let stop_mon = ref false in
  let monitor =
    Thread.create
      (fun () ->
        while not !stop_mon do
          let q = Obs.gauge_read (Obs.gauge "serve.queue.depth") in
          if q > !peak_queue then peak_queue := q;
          let h = (Gc.quick_stat ()).Gc.heap_words in
          if h > !peak_heap then peak_heap := h;
          Unix.sleepf 0.01
        done)
      ()
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init sessions (fun i ->
        Thread.create
          (fun () ->
            let seed_ix = i mod distinct_seeds in
            let c = connect () in
            Fun.protect ~finally:(fun () -> Cl.close c) @@ fun () ->
            match Cl.open_session c (params (7000 + seed_ix)) with
            | Error e -> failwith ("e17 open_session: " ^ e)
            | Ok id ->
                (* Busy is the daemon's explicit backpressure: back off and
                   retry until admitted (the whole point of the bound is
                   that the caller owns the retry policy). *)
                let rec go tries =
                  let last = ref (Unix.gettimeofday ()) in
                  match
                    Cl.run_epochs
                      ~on_verdict:(fun v ->
                        let now = Unix.gettimeofday () in
                        Mutex.lock mu;
                        latencies := (now -. !last) :: !latencies;
                        updates := !updates + v.Pr.v_changes;
                        incr verdicts;
                        Mutex.unlock mu;
                        last := now)
                      c id
                  with
                  | Ok (d, _) ->
                      if d <> batch.(seed_ix) then begin
                        Mutex.lock mu;
                        incr mismatches;
                        Mutex.unlock mu
                      end
                  | Error "busy" when tries < 600 ->
                      Mutex.lock mu;
                      incr busy_retries;
                      Mutex.unlock mu;
                      Unix.sleepf 0.05;
                      go (tries + 1)
                  | Error e -> failwith ("e17 run_epochs: " ^ e)
                in
                go 0)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  stop_mon := true;
  Thread.join monitor;
  S.stop srv;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let lats = List.sort compare !latencies in
  let n_lat = List.length lats in
  let pct p =
    if n_lat = 0 then 0.0
    else List.nth lats (min (n_lat - 1) (int_of_float (p *. float_of_int n_lat)))
  in
  let p50 = pct 0.50 *. 1000.0 and p95 = pct 0.95 *. 1000.0 in
  assert (!mismatches = 0);
  assert (!verdicts = sessions * epochs);
  assert (!peak_queue <= queue_cap);
  Printf.printf
    "%d sessions x %d epochs in %.1fs: %.1f sessions/s, %.1f updates/s, \
     verdict p50=%.1fms p95=%.1fms, busy retries=%d, peak queue=%d (cap %d), \
     peak heap=%.1f MB\n%!"
    sessions epochs wall
    (float_of_int sessions /. wall)
    (float_of_int !updates /. wall)
    p50 p95 !busy_retries !peak_queue queue_cap
    (float_of_int (!peak_heap * 8) /. 1e6);
  J.Obj
    [
      ("sessions", J.Int sessions);
      ("epochs_per_session", J.Int epochs);
      ("distinct_seeds", J.Int distinct_seeds);
      ("workers", J.Int workers);
      ("queue_cap", J.Int queue_cap);
      ("wall_s", J.Float wall);
      ("sessions_per_s", J.Float (float_of_int sessions /. wall));
      ("updates_per_s", J.Float (float_of_int !updates /. wall));
      ("verdicts", J.Int !verdicts);
      ("verdict_p50_ms", J.Float p50);
      ("verdict_p95_ms", J.Float p95);
      ("busy_retries", J.Int !busy_retries);
      ("peak_queue_depth", J.Int !peak_queue);
      ("peak_heap_mb", J.Float (float_of_int (!peak_heap * 8) /. 1e6));
      ("digest_matches_batch", J.Bool (!mismatches = 0));
    ]

(* ---- Bechamel: one Test.make per experiment ------------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let key = P.Keyring.private_key keyring a_as in
  let inputs8 =
    List.map
      (fun (n, r) ->
        P.Runner.announce_of_route keyring ~provider:n ~prover:a_as ~epoch:1 r)
      (routes_for 8)
  in
  let graph_promise = R.Promise.Shortest_from (List.map fst (routes_for 4)) in
  let smc_circuit = Smc.Circuit.minimum ~bits:8 ~k:4 in
  let smc_inputs = Array.init 32 (fun i -> i mod 2 = 0) in
  [
    Test.make ~name:"e1/min-round-k8"
      (Staged.stage (fun () -> ignore (min_round_once 8)));
    Test.make ~name:"e2/exists-prove-k8"
      (Staged.stage (fun () ->
           ignore
             (P.Proto_exists.prove (C.Drbg.of_int_seed 1) keyring ~prover:a_as
                ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~inputs:inputs8)));
    Test.make ~name:"e3/graph-round-k4"
      (Staged.stage (fun () ->
           ignore
             (P.Runner.graph_round (C.Drbg.of_int_seed 2) keyring ~prover:a_as
                ~beneficiary:b_as ~epoch:1 ~prefix:prefix0
                ~promise:graph_promise ~routes:(routes_for 4))));
    Test.make ~name:"e4/rsa1024-sign"
      (Staged.stage (fun () -> ignore (C.Rsa.sign key "benchmark payload")));
    Test.make ~name:"e4/sha256-64B"
      (Staged.stage (fun () -> ignore (C.Sha256.digest (String.make 64 'x'))));
    Test.make ~name:"e5/mht-batch-64"
      (Staged.stage
         (let encoded =
            List.map G.Route.encode (List.map snd (routes_for 64))
          in
          fun () ->
            let tree = Pvr_merkle.Merkle_tree.build encoded in
            ignore (C.Rsa.sign key (Pvr_merkle.Merkle_tree.root tree))));
    Test.make ~name:"e6/gmw-min-k4"
      (Staged.stage (fun () ->
           ignore
             (Smc.Gmw.run (C.Drbg.of_int_seed 3) ~parties:5 smc_circuit
                ~inputs:smc_inputs)));
    Test.make ~name:"e7/leakage-audit"
      (Staged.stage (fun () ->
           let inputs = routes_for 8 in
           let n1, r1 = List.hd inputs in
           ignore
             (P.Leakage.excess_count
                ~baseline:(P.Leakage.plain_bgp_provider ~me:n1 ~my_route:r1)
                ~observed:(P.Leakage.netreview_neighbor ~inputs))));
    Test.make ~name:"e8/judge-nonminimal"
      (Staged.stage
         (let rng = C.Drbg.of_int_seed 4 in
          let r =
            P.Runner.min_round P.Adversary.Export_nonminimal rng keyring
              ~prover:a_as ~beneficiary:b_as ~epoch:1 ~prefix:prefix0
              ~routes:(routes_for 4)
          in
          match r.P.Runner.raised with
          | (_, e) :: _ -> fun () -> ignore (P.Judge.evaluate_offline keyring e)
          | [] -> fun () -> ()));
  ]

let run_bechamel () =
  let open Bechamel in
  header "Bechamel OLS estimates (one per experiment)";
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~kde:None () in
  let tests = Test.make_grouped ~name:"pvr" (bechamel_tests ()) in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name res acc -> (name, res) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "%-28s  %14s  %8s\n" "benchmark" "ns/run" "r^2";
  let jrows =
    List.map
      (fun (name, res) ->
        let est =
          match Analyze.OLS.estimates res with Some (e :: _) -> e | _ -> nan
        in
        let r2 = Option.value (Analyze.OLS.r_square res) ~default:nan in
        Printf.printf "%-28s  %14.0f  %8.4f\n%!" name est r2;
        J.Obj
          [
            ("name", J.String name);
            ("ns_per_run", J.Float est);
            ("r_square", J.Float r2);
          ])
      rows
  in
  J.Obj [ ("rows", J.List jrows) ]

let bench_json_path = "BENCH_pvr.json"

let () =
  Obs.set_enabled true;
  Obs.reset_all ();
  let experiments =
    [
      ("e1_min_operator", e1);
      ("e2_existential", e2);
      ("e3_graph_protocol", e3);
      ("e4_primitives", e4);
      ("e5_batching", e5);
      ("e5b_bitvec_ablation", e5b);
      ("e6_strawman_comparison", e6);
      ("e7_leakage", e7);
      ("e8_fault_matrix", e8);
      ("e9_online_throughput", e9);
      ("e10_faulty_network", e10);
      ("e11_engine", e11);
      ("e12_durable_store", e12);
      ("e13_scale", e13);
      ("e14_adversary_zoo", e14);
      ("e15_query", e15);
      ("e16_memory", e16);
      ("e17_serve", e17);
      ("bechamel", run_bechamel);
    ]
  in
  (* Optional filter: `bench/main.exe e11_engine e13_scale` runs only the
     named experiments (unknown names fail loudly). *)
  let experiments =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> experiments
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n experiments) then (
              Printf.eprintf "unknown experiment %S\n" n;
              exit 2))
          names;
        List.filter (fun (n, _) -> List.mem n names) experiments
  in
  let results = List.map (fun (name, f) -> (name, f ())) experiments in
  let doc =
    J.Obj
      ([
         ("schema", J.String "pvr-bench/1");
         ("rsa_bits", J.Int 1024);
         ("max_providers", J.Int max_k);
       ]
      @ results
      @ [
          (* Cumulative op counts and span histograms over the whole run. *)
          ( "totals",
            Obs.Snapshot.to_json (Obs.Snapshot.capture ()) );
        ])
  in
  (* Atomic temp-file-then-rename: an interrupted bench can never leave a
     torn BENCH_pvr.json behind. *)
  Pvr_store.Atomic_file.write ~fsync:false bench_json_path
    (J.to_string doc ^ "\n");
  print_newline ();
  Printf.printf
    "All experiments completed; machine-readable results written to %s.\n"
    bench_json_path;
  print_endline "See EXPERIMENTS.md for the mapping to the paper."
