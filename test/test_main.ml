(* Single registry: every suite must be listed here, and [expected_tests]
   pins the total number of registered cases.  A suite dropped from this
   table (or a wired-out module) shrinks the count and fails the meta test,
   instead of silently not running in CI. *)

let suites =
  [
    ("crypto", Test_crypto.suite);
    ("crypto-kat", Test_crypto_kat.suite);
    ("merkle", Test_merkle.suite);
    ("bgp", Test_bgp.suite);
    ("rfg", Test_rfg.suite);
    ("pvr", Test_pvr.suite);
    ("smc", Test_smc.suite);
    ("obs", Test_obs.suite);
    ("net", Test_net.suite);
    ("engine", Test_engine.suite);
    ("store", Test_store.suite);
    ("query", Test_query.suite);
    ("scale", Test_scale.suite);
    ("adversary", Test_adversary.suite);
    ("mem", Test_mem.suite);
    ("concurrency", Test_concurrency.suite);
    ("serve", Test_serve.suite);
  ]

let expected_tests = 459

let () =
  let total = List.fold_left (fun n (_, s) -> n + List.length s) 0 suites in
  let meta =
    ( "meta",
      [
        ( Printf.sprintf "registry holds %d tests" expected_tests,
          `Quick,
          fun () ->
            Alcotest.(check int) "registered test count" expected_tests total
        );
      ] )
  in
  Alcotest.run "pvr" (suites @ [ meta ])
