let () =
  Alcotest.run "pvr"
    [
      ("crypto", Test_crypto.suite);
      ("merkle", Test_merkle.suite);
      ("bgp", Test_bgp.suite);
      ("rfg", Test_rfg.suite);
      ("pvr", Test_pvr.suite);
      ("smc", Test_smc.suite);
      ("obs", Test_obs.suite);
      ("net", Test_net.suite);
      ("engine", Test_engine.suite);
      ("store", Test_store.suite);
    ]
