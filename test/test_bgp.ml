(* Tests for pvr_bgp: prefixes, routes, policies, the decision process,
   RIBs, topologies, the simulator, workload generation, and the Gao
   relationship-inference attack. *)

module G = Pvr_bgp
module C = Pvr_crypto

let asn = G.Asn.of_int
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_route ?(prefix = G.Prefix.of_string "10.0.0.0/8") ?(lp = 100) ?(med = 0)
    ?(origin = G.Route.Igp) ?(communities = []) path =
  let path = List.map asn path in
  match path with
  | [] -> invalid_arg "mk_route: empty path"
  | first :: _ ->
      {
        G.Route.prefix;
        as_path = path;
        next_hop = first;
        local_pref = lp;
        med;
        origin;
        communities;
      }

(* ---- Prefix ---------------------------------------------------------------- *)

let prefix_parse_print () =
  List.iter
    (fun s -> check_str s s (G.Prefix.to_string (G.Prefix.of_string s)))
    [ "0.0.0.0/0"; "10.0.0.0/8"; "192.168.1.0/24"; "255.255.255.255/32" ]

let prefix_masks_host_bits () =
  check_str "host bits cleared" "10.0.0.0/8"
    (G.Prefix.to_string (G.Prefix.of_string "10.1.2.3/8"))

let prefix_rejects () =
  List.iter
    (fun s ->
      match G.Prefix.of_string s with
      | _ -> Alcotest.failf "expected %S to be rejected" s
      | exception Invalid_argument _ -> ())
    [ "10.0.0.0"; "10.0.0/8"; "256.0.0.0/8"; "10.0.0.0/33"; "a.b.c.d/8" ]

let prefix_contains () =
  let p = G.Prefix.of_string in
  check_bool "contains" true (G.Prefix.contains (p "10.0.0.0/8") (p "10.1.0.0/16"));
  check_bool "self" true (G.Prefix.contains (p "10.0.0.0/8") (p "10.0.0.0/8"));
  check_bool "not contains" false
    (G.Prefix.contains (p "10.0.0.0/8") (p "11.0.0.0/16"));
  check_bool "longer cannot contain shorter" false
    (G.Prefix.contains (p "10.0.0.0/16") (p "10.0.0.0/8"))

let prefix_random_valid =
  qtest "random prefixes are canonical" QCheck2.Gen.small_int (fun seed ->
      let rng = C.Drbg.of_int_seed seed in
      let p = G.Prefix.random rng in
      G.Prefix.equal p (G.Prefix.of_string (G.Prefix.to_string p)))

(* ---- Route ------------------------------------------------------------------ *)

let route_prepend () =
  let r = mk_route [ 20; 30 ] in
  let r' = G.Route.prepend (asn 10) r in
  check_int "length" 3 (G.Route.path_length r');
  check_bool "next hop" true (G.Asn.equal r'.G.Route.next_hop (asn 10));
  check_bool "through" true (G.Route.through (asn 30) r');
  check_bool "loop detect" true (G.Route.has_loop (asn 20) r');
  check_bool "no loop" false (G.Route.has_loop (asn 99) r')

let route_communities () =
  let r = mk_route [ 20 ] in
  let r = G.Route.add_community (65000, 1) r in
  check_bool "has" true (G.Route.has_community (65000, 1) r);
  check_bool "hasn't" false (G.Route.has_community (65000, 2) r);
  let r2 = G.Route.add_community (65000, 1) r in
  check_int "no duplicates" 1 (List.length r2.G.Route.communities)

let route_strip_private () =
  let r = G.Route.with_local_pref 200 (mk_route [ 20 ]) in
  check_int "reset" G.Route.default_local_pref
    (G.Route.strip_private_attrs r).G.Route.local_pref

let route_encode_injective =
  qtest "route encoding injective on paths"
    QCheck2.Gen.(pair (list_size (int_range 1 6) (int_range 1 1000))
                   (list_size (int_range 1 6) (int_range 1 1000)))
    (fun (p1, p2) ->
      p1 = p2
      || G.Route.encode (mk_route p1) <> G.Route.encode (mk_route p2))

(* ---- Policy ------------------------------------------------------------------ *)

let policy_first_match_wins () =
  let policy =
    [
      {
        G.Policy.matches = [ G.Policy.Match_path_length_le 2 ];
        actions = [ G.Policy.Set_local_pref 200 ];
        verdict = G.Policy.Accept;
      };
      { G.Policy.matches = []; actions = []; verdict = G.Policy.Reject };
    ]
  in
  (match G.Policy.evaluate policy (mk_route [ 20; 30 ]) with
  | Some r -> check_int "lp set" 200 r.G.Route.local_pref
  | None -> Alcotest.fail "expected accept");
  check_bool "long path rejected" true
    (G.Policy.evaluate policy (mk_route [ 20; 30; 40 ]) = None)

let policy_deny_by_default () =
  check_bool "empty policy rejects" true
    (G.Policy.evaluate [] (mk_route [ 20 ]) = None)

let policy_match_conditions () =
  let r =
    mk_route ~prefix:(G.Prefix.of_string "10.1.0.0/16")
      ~communities:[ (65000, 7) ] [ 20; 30 ]
  in
  let m c = G.Policy.matches c r in
  check_bool "prefix exact" true
    (m (G.Policy.Match_prefix_exact (G.Prefix.of_string "10.1.0.0/16")));
  check_bool "prefix in" true
    (m (G.Policy.Match_prefix_in (G.Prefix.of_string "10.0.0.0/8")));
  check_bool "prefix not in" false
    (m (G.Policy.Match_prefix_in (G.Prefix.of_string "172.16.0.0/12")));
  check_bool "community" true (m (G.Policy.Match_community (65000, 7)));
  check_bool "as in path" true (m (G.Policy.Match_as_in_path (asn 30)));
  check_bool "next hop" true (m (G.Policy.Match_next_hop (asn 20)));
  check_bool "pathlen" true (m (G.Policy.Match_path_length_le 2));
  check_bool "pathlen tight" false (m (G.Policy.Match_path_length_le 1));
  check_bool "any" true (m G.Policy.Match_any)

let policy_actions () =
  let r = mk_route [ 20 ] in
  let r1 = G.Policy.apply_action (G.Policy.Set_med 33) r in
  check_int "med" 33 r1.G.Route.med;
  let r2 = G.Policy.apply_action (G.Policy.Prepend (asn 1, 3)) r in
  check_int "prepended" 4 (G.Route.path_length r2)

(* ---- Decision ------------------------------------------------------------------ *)

let decision_prefers_local_pref () =
  let a = G.Route.with_local_pref 200 (mk_route [ 20; 30; 40 ]) in
  let b = mk_route [ 21 ] in
  match G.Decision.best [ a; b ] with
  | Some r -> check_bool "local pref beats length" true (G.Route.equal r a)
  | None -> Alcotest.fail "expected a route"

let decision_prefers_short_path () =
  let a = mk_route [ 20; 30 ] and b = mk_route [ 21 ] in
  match G.Decision.best [ a; b ] with
  | Some r -> check_bool "shorter" true (G.Route.equal r b)
  | None -> Alcotest.fail "expected a route"

let decision_origin_and_med () =
  let a = mk_route ~origin:G.Route.Egp [ 20 ] in
  let b = mk_route ~origin:G.Route.Igp [ 21 ] in
  (match G.Decision.best [ a; b ] with
  | Some r -> check_bool "igp wins" true (G.Route.equal r b)
  | None -> Alcotest.fail "no route");
  let c = mk_route ~med:10 [ 20 ] and d = mk_route ~med:5 [ 21 ] in
  match G.Decision.best [ c; d ] with
  | Some r -> check_bool "low med wins" true (G.Route.equal r d)
  | None -> Alcotest.fail "no route"

let decision_tiebreak_neighbor () =
  let a = mk_route [ 21 ] and b = mk_route [ 20 ] in
  match G.Decision.best [ a; b ] with
  | Some r -> check_bool "lowest neighbor" true (G.Route.equal r b)
  | None -> Alcotest.fail "no route"

let decision_empty () = check_bool "empty" true (G.Decision.best [] = None)

let decision_total =
  qtest "decision always picks from candidates"
    QCheck2.Gen.(list_size (int_range 1 8) (int_range 1 500))
    (fun firsts ->
      let routes = List.map (fun f -> mk_route [ f; 999 ]) firsts in
      match G.Decision.best routes with
      | Some r -> List.exists (G.Route.equal r) routes
      | None -> false)

let decision_rank_sorted =
  qtest "rank is best-first and complete"
    QCheck2.Gen.(list_size (int_range 1 6) (int_range 1 100))
    (fun firsts ->
      let firsts = List.sort_uniq Int.compare firsts in
      let routes = List.map (fun f -> mk_route [ f ]) firsts in
      let ranked = G.Decision.rank routes in
      List.length ranked = List.length routes
      &&
      match ranked with
      | [] -> true
      | best :: _ -> (
          match G.Decision.best routes with
          | Some b -> G.Route.equal b best
          | None -> false))

(* ---- Rib ------------------------------------------------------------------------ *)

let rib_in_out () =
  let rib = G.Rib.create () in
  let p = G.Prefix.of_string "10.0.0.0/8" in
  let r = mk_route [ 20 ] in
  G.Rib.set_in rib ~neighbor:(asn 20) p (Some r);
  check_bool "get_in" true (G.Rib.get_in rib ~neighbor:(asn 20) p = Some r);
  check_int "candidates" 1 (List.length (G.Rib.candidates rib p));
  G.Rib.set_in rib ~neighbor:(asn 21) p (Some (mk_route [ 21 ]));
  check_int "two candidates" 2 (List.length (G.Rib.candidates rib p));
  check_int "restricted" 1
    (List.length (G.Rib.candidates_from rib ~neighbors:[ asn 20 ] p));
  G.Rib.set_in rib ~neighbor:(asn 20) p None;
  check_bool "withdrawn" true (G.Rib.get_in rib ~neighbor:(asn 20) p = None);
  check_int "one candidate left" 1 (List.length (G.Rib.candidates rib p));
  check_int "in_neighbors" 1 (List.length (G.Rib.in_neighbors rib p))

let rib_prefix_listing () =
  let rib = G.Rib.create () in
  let p1 = G.Prefix.of_string "10.0.0.0/8" in
  let p2 = G.Prefix.of_string "172.16.0.0/12" in
  G.Rib.set_in rib ~neighbor:(asn 20) p1 (Some (mk_route [ 20 ]));
  G.Rib.set_best rib p2 (Some (mk_route ~prefix:p2 [ 30 ]));
  check_int "both prefixes" 2 (List.length (G.Rib.prefixes rib))

(* ---- Relationship ----------------------------------------------------------------- *)

let relationship_invert () =
  check_bool "cust/prov" true
    (G.Relationship.invert G.Relationship.Customer = G.Relationship.Provider);
  check_bool "peer" true
    (G.Relationship.invert G.Relationship.Peer = G.Relationship.Peer)

let gao_rexford_export_rule () =
  let e l t = G.Relationship.export_allowed ~learned_from:l ~to_:t in
  (* Customer routes go everywhere. *)
  check_bool "c->c" true (e G.Relationship.Customer G.Relationship.Customer);
  check_bool "c->p" true (e G.Relationship.Customer G.Relationship.Peer);
  check_bool "c->pr" true (e G.Relationship.Customer G.Relationship.Provider);
  (* Peer/provider routes only to customers. *)
  check_bool "p->c" true (e G.Relationship.Peer G.Relationship.Customer);
  check_bool "p->p" false (e G.Relationship.Peer G.Relationship.Peer);
  check_bool "pr->p" false (e G.Relationship.Provider G.Relationship.Peer);
  check_bool "pr->pr" false (e G.Relationship.Provider G.Relationship.Provider)

(* ---- Topology ---------------------------------------------------------------------- *)

let topology_links_and_neighbors () =
  let t =
    G.Topology.star ~center:(asn 1)
      ~leaves:[ asn 10; asn 11 ]
      ~rel:G.Relationship.Customer
  in
  check_int "size" 3 (G.Topology.size t);
  check_int "links" 2 (List.length (G.Topology.links t));
  check_int "center degree" 2 (G.Topology.degree t (asn 1));
  check_bool "rel from center" true
    (G.Topology.relationship t (asn 1) (asn 10) = Some G.Relationship.Customer);
  check_bool "rel from leaf" true
    (G.Topology.relationship t (asn 10) (asn 1) = Some G.Relationship.Provider);
  check_bool "unlinked" true (G.Topology.relationship t (asn 10) (asn 11) = None)

let topology_rejects_self_and_duplicate () =
  let t = G.Topology.empty in
  Alcotest.check_raises "self" (Invalid_argument "Topology.add_link: self-link")
    (fun () ->
      ignore (G.Topology.add_link t ~a:(asn 1) ~b:(asn 1) ~rel_ab:G.Relationship.Peer));
  let t = G.Topology.add_link t ~a:(asn 1) ~b:(asn 2) ~rel_ab:G.Relationship.Peer in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Topology.add_link: duplicate link") (fun () ->
      ignore
        (G.Topology.add_link t ~a:(asn 1) ~b:(asn 2) ~rel_ab:G.Relationship.Peer))

let topology_clique_chain () =
  let c = G.Topology.clique (List.init 5 (fun i -> asn (i + 1))) in
  check_int "clique links" 10 (List.length (G.Topology.links c));
  let ch = G.Topology.chain (List.init 5 (fun i -> asn (i + 1))) in
  check_int "chain links" 4 (List.length (G.Topology.links ch))

let topology_hierarchy_connected () =
  let rng = C.Drbg.of_int_seed 7 in
  let t = G.Topology.hierarchy rng ~tiers:[ 3; 6; 12 ] ~extra_peering:0.1 in
  check_int "all ases present" 21 (G.Topology.size t);
  (* Everyone below tier 1 has at least one provider. *)
  List.iter
    (fun a ->
      if G.Asn.to_int a > 3 then
        check_bool "has provider" true
          (List.exists
             (fun (_, rel) -> rel = G.Relationship.Provider)
             (G.Topology.neighbors t a)))
    (G.Topology.ases t)

(* ---- Simulator --------------------------------------------------------------------- *)

let prefix0 = G.Prefix.of_string "10.0.0.0/8"

let sim_chain_propagation () =
  let ases = List.init 6 (fun i -> asn (i + 1)) in
  let sim = G.Simulator.create (G.Topology.chain ases) in
  G.Simulator.originate sim ~asn:(asn 6) prefix0;
  let _ = G.Simulator.run sim in
  (* The origin holds its self route [AS6] (length 1); AS_j for j < 6
     receives the path [AS_{j+1} .. AS6] of length 6 - j. *)
  List.iteri
    (fun i a ->
      let expected = if i = 5 then 1 else 5 - i in
      match G.Simulator.best_route sim ~asn:a prefix0 with
      | Some r -> check_int "path length" expected (G.Route.path_length r)
      | None -> Alcotest.failf "AS%d has no route" (i + 1))
    ases

let sim_star_min_at_center () =
  (* Figure 1: the center receives one route per leaf and picks the best. *)
  let center = asn 1 and b = asn 100 in
  let leaves = List.init 4 (fun i -> asn (10 + i)) in
  let topo =
    G.Topology.star ~center ~leaves:(b :: leaves) ~rel:G.Relationship.Customer
  in
  let sim = G.Simulator.create topo in
  List.iter (fun n -> G.Simulator.originate sim ~asn:n prefix0) leaves;
  let _ = G.Simulator.run sim in
  check_int "received all" 4
    (List.length (G.Simulator.received_routes sim ~asn:center prefix0));
  (match G.Simulator.exported_route sim ~asn:center ~neighbor:b prefix0 with
  | Some r ->
      check_int "exported length" 2 (G.Route.path_length r);
      check_bool "center on path" true (G.Route.through center r)
  | None -> Alcotest.fail "no export to B")

let sim_withdraw () =
  let ases = List.init 3 (fun i -> asn (i + 1)) in
  let sim = G.Simulator.create (G.Topology.chain ases) in
  G.Simulator.originate sim ~asn:(asn 3) prefix0;
  let _ = G.Simulator.run sim in
  check_bool "has route" true (G.Simulator.best_route sim ~asn:(asn 1) prefix0 <> None);
  G.Simulator.withdraw_origin sim ~asn:(asn 3) prefix0;
  let _ = G.Simulator.run sim in
  check_bool "withdrawn everywhere" true
    (G.Simulator.best_route sim ~asn:(asn 1) prefix0 = None)

let sim_withdraw_no_stale_state () =
  (* After originate -> converge -> withdraw -> converge, no RIB anywhere —
     adj-RIB-in, loc-RIB, or adj-RIB-out towards any neighbor — may still
     hold a route for the prefix. *)
  let rng = C.Drbg.of_int_seed 23 in
  let t = G.Topology.hierarchy rng ~tiers:[ 2; 4; 8 ] ~extra_peering:0.15 in
  let sim = G.Simulator.create t in
  let origin = asn 14 in
  G.Simulator.originate sim ~asn:origin prefix0;
  let _ = G.Simulator.run sim in
  check_bool "converged with routes" true
    (G.Simulator.best_route sim ~asn:(asn 1) prefix0 <> None);
  G.Simulator.withdraw_origin sim ~asn:origin prefix0;
  let _ = G.Simulator.run sim in
  List.iter
    (fun a ->
      let name fmt = Printf.sprintf fmt (G.Asn.to_string a) in
      check_bool (name "%s loc-RIB empty") true
        (G.Simulator.best_route sim ~asn:a prefix0 = None);
      check_int (name "%s adj-RIB-in empty") 0
        (List.length (G.Simulator.received_routes sim ~asn:a prefix0));
      List.iter
        (fun (n, _) ->
          check_bool (name "%s adj-RIB-out empty") true
            (G.Simulator.exported_route sim ~asn:a ~neighbor:n prefix0 = None))
        (G.Topology.neighbors t a))
    (G.Topology.ases t)

let sim_run_feeds_counters () =
  (* With metrics enabled, one simulator run adds exactly its message count
     to sim.updates.processed and bumps sim.runs / sim.originates /
     sim.withdrawals. *)
  Pvr_obs.set_enabled true;
  Pvr_obs.reset_all ();
  Fun.protect ~finally:(fun () -> Pvr_obs.set_enabled false) @@ fun () ->
  let ases = List.init 5 (fun i -> asn (i + 1)) in
  let sim = G.Simulator.create (G.Topology.chain ases) in
  G.Simulator.originate sim ~asn:(asn 5) prefix0;
  let msgs = G.Simulator.run sim in
  G.Simulator.withdraw_origin sim ~asn:(asn 5) prefix0;
  let msgs' = G.Simulator.run sim in
  let v name = Pvr_obs.value (Pvr_obs.counter name) in
  check_int "updates.processed matches run totals" (msgs + msgs')
    (v "sim.updates.processed");
  check_int "two runs" 2 (v "sim.runs");
  check_int "one originate" 1 (v "sim.originates");
  check_int "one withdrawal" 1 (v "sim.withdrawals")

let sim_gao_rexford_valley_free () =
  (* A peer route must not be exported to another peer: with two tier-1
     peers P1-P2 and customers C1 under P1, C2 under P2, C1's prefix reaches
     P2 (customer route of P1 exported to peer P2) and C2 (customer of P2);
     but if C2 also peers with C1's sibling... simpler: verify a peer does
     not transit.  Topology: P1 - P2 peers, C under P1 only.  P2 must learn
     C's prefix via P1 (customer route exported to peer); a third peer P3
     peering with P2 must NOT learn it from P2. *)
  let p1 = asn 1 and p2 = asn 2 and p3 = asn 3 and c = asn 4 in
  let t = G.Topology.empty in
  let t = G.Topology.add_link t ~a:p1 ~b:p2 ~rel_ab:G.Relationship.Peer in
  let t = G.Topology.add_link t ~a:p2 ~b:p3 ~rel_ab:G.Relationship.Peer in
  let t = G.Topology.add_link t ~a:p1 ~b:c ~rel_ab:G.Relationship.Customer in
  let sim = G.Simulator.create t in
  G.Simulator.originate sim ~asn:c prefix0;
  let _ = G.Simulator.run sim in
  check_bool "p2 learns customer route of p1" true
    (G.Simulator.best_route sim ~asn:p2 prefix0 <> None);
  check_bool "p3 must not learn it through two peer hops" true
    (G.Simulator.best_route sim ~asn:p3 prefix0 = None)

let sim_import_policy_filters () =
  let a = asn 1 and b = asn 2 in
  let t = G.Topology.add_link G.Topology.empty ~a ~b ~rel_ab:G.Relationship.Peer in
  let sim = G.Simulator.create t in
  G.Simulator.set_import_policy sim ~asn:a ~neighbor:b G.Policy.reject_all;
  G.Simulator.originate sim ~asn:b prefix0;
  let _ = G.Simulator.run sim in
  check_bool "filtered" true (G.Simulator.best_route sim ~asn:a prefix0 = None)

let sim_export_policy_filters () =
  let a = asn 1 and b = asn 2 in
  let t = G.Topology.add_link G.Topology.empty ~a ~b ~rel_ab:G.Relationship.Peer in
  let sim = G.Simulator.create t in
  G.Simulator.set_export_policy sim ~asn:b ~neighbor:a G.Policy.reject_all;
  G.Simulator.originate sim ~asn:b prefix0;
  let _ = G.Simulator.run sim in
  check_bool "not exported" true (G.Simulator.best_route sim ~asn:a prefix0 = None)

let sim_decision_override () =
  (* A Byzantine AS picks the longest route instead of the best. *)
  let center = asn 1 and b = asn 100 in
  let leaves = [ asn 10; asn 11 ] in
  let topo =
    G.Topology.star ~center ~leaves:(b :: leaves) ~rel:G.Relationship.Customer
  in
  let sim = G.Simulator.create topo in
  G.Simulator.set_gao_rexford sim false;
  (* Make AS11's route longer by prepending. *)
  G.Simulator.set_export_policy sim ~asn:(asn 11) ~neighbor:center
    [
      {
        G.Policy.matches = [];
        actions = [ G.Policy.Prepend (asn 11, 3) ];
        verdict = G.Policy.Accept;
      };
    ];
  G.Simulator.set_decision_override sim ~asn:center (fun _ candidates ->
      match
        List.sort
          (fun a b ->
            Int.compare (G.Route.path_length b) (G.Route.path_length a))
          candidates
      with
      | worst :: _ -> Some worst
      | [] -> None);
  List.iter (fun n -> G.Simulator.originate sim ~asn:n prefix0) leaves;
  let _ = G.Simulator.run sim in
  match G.Simulator.exported_route sim ~asn:center ~neighbor:b prefix0 with
  | Some r -> check_int "picked the long one" 5 (G.Route.path_length r)
  | None -> Alcotest.fail "no export"

let sim_hierarchy_full_reachability () =
  let rng = C.Drbg.of_int_seed 11 in
  let t = G.Topology.hierarchy rng ~tiers:[ 2; 4; 8 ] ~extra_peering:0.15 in
  let sim = G.Simulator.create t in
  let origin = asn 14 in
  G.Simulator.originate sim ~asn:origin prefix0;
  let _ = G.Simulator.run sim in
  List.iter
    (fun a ->
      check_bool
        (Printf.sprintf "%s reaches origin" (G.Asn.to_string a))
        true
        (G.Simulator.best_route sim ~asn:a prefix0 <> None))
    (G.Topology.ases t)

let sim_bad_gadget_diverges () =
  (* Griffin's BAD GADGET: three ASes around an origin, each preferring the
     route through its clockwise neighbor over its direct route.  No stable
     assignment exists; the simulator must hit its message budget and report
     the dispute instead of looping forever. *)
  let origin = asn 0 in
  let ring = [ asn 1; asn 2; asn 3 ] in
  let t = ref G.Topology.empty in
  List.iter
    (fun a -> t := G.Topology.add_link !t ~a ~b:origin ~rel_ab:G.Relationship.Customer)
    ring;
  List.iteri
    (fun i a ->
      let b = List.nth ring ((i + 1) mod 3) in
      t := G.Topology.add_link !t ~a ~b ~rel_ab:G.Relationship.Peer)
    ring;
  let sim = G.Simulator.create !t in
  G.Simulator.set_gao_rexford sim false;
  List.iteri
    (fun i a ->
      let clockwise = List.nth ring ((i + 1) mod 3) in
      G.Simulator.set_import_policy sim ~asn:a ~neighbor:clockwise
        [
          {
            G.Policy.matches = [];
            actions = [ G.Policy.Set_local_pref 200 ];
            verdict = G.Policy.Accept;
          };
        ])
    ring;
  G.Simulator.originate sim ~asn:origin prefix0;
  match G.Simulator.run ~max_messages:5000 sim with
  | _ -> Alcotest.fail "BAD GADGET unexpectedly converged"
  | exception Failure msg ->
      check_bool "dispute reported" true
        (String.length msg > 0)

let sim_good_gadget_converges () =
  (* The same wheel with consistent (non-circular) preferences converges. *)
  let origin = asn 0 in
  let ring = [ asn 1; asn 2; asn 3 ] in
  let t = ref G.Topology.empty in
  List.iter
    (fun a -> t := G.Topology.add_link !t ~a ~b:origin ~rel_ab:G.Relationship.Customer)
    ring;
  List.iteri
    (fun i a ->
      let b = List.nth ring ((i + 1) mod 3) in
      t := G.Topology.add_link !t ~a ~b ~rel_ab:G.Relationship.Peer)
    ring;
  let sim = G.Simulator.create !t in
  G.Simulator.set_gao_rexford sim false;
  (* Only AS1 prefers its clockwise neighbor: no dispute cycle. *)
  G.Simulator.set_import_policy sim ~asn:(asn 1) ~neighbor:(asn 2)
    [
      {
        G.Policy.matches = [];
        actions = [ G.Policy.Set_local_pref 200 ];
        verdict = G.Policy.Accept;
      };
    ];
  G.Simulator.originate sim ~asn:origin prefix0;
  let _ = G.Simulator.run ~max_messages:5000 sim in
  List.iter
    (fun a ->
      check_bool "stable route" true
        (G.Simulator.best_route sim ~asn:a prefix0 <> None))
    ring

let sim_message_log_grows () =
  let ases = List.init 4 (fun i -> asn (i + 1)) in
  let sim = G.Simulator.create (G.Topology.chain ases) in
  G.Simulator.originate sim ~asn:(asn 4) prefix0;
  let n = G.Simulator.run sim in
  check_int "log matches count" n (List.length (G.Simulator.message_log sim))

(* ---- Update generator ------------------------------------------------------------------ *)

let update_gen_sorted_and_bursty () =
  let rng = C.Drbg.of_int_seed 13 in
  let events =
    G.Update_gen.bursty rng ~duration_ms:5000 ~base_rate_per_s:20.0
      ~burst_every_ms:1000 ~burst_size_mean:30 ~origin:(asn 7)
  in
  check_bool "non-empty" true (events <> []);
  let sorted = ref true in
  let _ =
    List.fold_left
      (fun prev (e : G.Update_gen.event) ->
        if e.at_ms < prev then sorted := false;
        e.at_ms)
      0 events
  in
  check_bool "sorted" true !sorted;
  (* Bursts should make some windows much fuller than the background. *)
  let batches = G.Update_gen.batches ~window_ms:100 events in
  let sizes = List.map List.length batches in
  check_bool "bursty: some window >= 10" true (List.exists (fun s -> s >= 10) sizes)

let update_gen_batches_partition () =
  let rng = C.Drbg.of_int_seed 14 in
  let events =
    G.Update_gen.bursty rng ~duration_ms:2000 ~base_rate_per_s:50.0
      ~burst_every_ms:500 ~burst_size_mean:10 ~origin:(asn 7)
  in
  let batches = G.Update_gen.batches ~window_ms:250 events in
  check_int "no event lost" (List.length events)
    (List.fold_left (fun acc b -> acc + List.length b) 0 batches)

let sim_single_as_only_route () =
  (* Degenerate internet: one AS, no links.  Originating and withdrawing
     its only route must round-trip without stale state or messages. *)
  let t = G.Topology.add_as G.Topology.empty (asn 1) in
  let sim = G.Simulator.create t in
  let p = G.Prefix.of_string "10.1.0.0/24" in
  G.Simulator.originate sim ~asn:(asn 1) p;
  let msgs = G.Simulator.run sim in
  check_int "no neighbors, no messages" 0 msgs;
  check_bool "originator holds its route" true
    (G.Simulator.best_route sim ~asn:(asn 1) p <> None);
  check_int "no candidates received" 0
    (List.length (G.Simulator.received_routes sim ~asn:(asn 1) p));
  G.Simulator.withdraw_origin sim ~asn:(asn 1) p;
  let _ = G.Simulator.run sim in
  check_bool "withdrawing the only route empties Loc-RIB" true
    (G.Simulator.best_route sim ~asn:(asn 1) p = None)

let update_gen_single_origin_churn () =
  (* Churn over a single-AS topology: anycast slots need two origins, and a
     full-table flap withdraws the only live route. *)
  let t = G.Topology.add_as G.Topology.empty (asn 1) in
  let sim = G.Simulator.create t in
  let churn =
    G.Update_gen.Churn.create ~anycast:3 ~origins:[ asn 1 ]
      ~prefixes_per_origin:1 ()
  in
  check_int "anycast ignored with one origin" 1 (G.Update_gen.Churn.size churn);
  check_int "seeds the only slot" 1
    (List.length (G.Update_gen.Churn.seed churn sim));
  check_int "live after seed" 1 (G.Update_gen.Churn.live_count churn);
  let _ = G.Simulator.run sim in
  let rng = C.Drbg.of_int_seed 5 in
  (match G.Update_gen.Churn.step rng ~turnover:1.0 churn sim with
  | [ G.Update_gen.Churn.Withdraw (a, _) ] ->
      check_bool "withdraws at the origin" true (G.Asn.equal a (asn 1))
  | _ -> Alcotest.fail "expected exactly one withdrawal");
  let _ = G.Simulator.run sim in
  check_int "nothing live after full flap" 0
    (G.Update_gen.Churn.live_count churn)

let sim_peer_clique_no_transit () =
  (* All-peer clique: under Gao–Rexford, peer-learned routes are never
     re-exported, so every AS sees exactly the origin's direct announcement
     and one-hop paths are all that exist. *)
  let members = List.init 5 (fun i -> asn (i + 1)) in
  let t = G.Topology.clique members in
  let sim = G.Simulator.create t in
  let p = G.Prefix.of_string "203.0.113.0/24" in
  G.Simulator.originate sim ~asn:(asn 1) p;
  let _ = G.Simulator.run sim in
  List.iter
    (fun a ->
      if not (G.Asn.equal a (asn 1)) then begin
        (match G.Simulator.best_route sim ~asn:a p with
        | Some r ->
            check_bool
              (Printf.sprintf "AS %d best path is direct" (G.Asn.to_int a))
              true
              (r.G.Route.as_path = [ asn 1 ])
        | None -> Alcotest.failf "AS %d has no route" (G.Asn.to_int a));
        check_int
          (Printf.sprintf "AS %d saw only the direct announcement"
             (G.Asn.to_int a))
          1
          (List.length (G.Simulator.received_routes sim ~asn:a p))
      end)
    members

(* ---- Gao inference ------------------------------------------------------------------------ *)

let gao_inference_on_hierarchy () =
  (* Run BGP over a hierarchy, collect the AS paths seen at every AS, and
     check the attack recovers a meaningful share of relationships. *)
  let rng = C.Drbg.of_int_seed 15 in
  let t = G.Topology.hierarchy rng ~tiers:[ 2; 4; 8 ] ~extra_peering:0.0 in
  let sim = G.Simulator.create t in
  List.iter
    (fun origin ->
      G.Simulator.originate sim ~asn:origin
        (G.Prefix.make ~addr:(G.Asn.to_int origin lsl 24) ~len:8))
    (G.Topology.ases t);
  let _ = G.Simulator.run sim in
  let paths =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun p ->
            List.map
              (fun (r : G.Route.t) -> r.G.Route.as_path)
              (G.Simulator.received_routes sim ~asn:a p))
          (G.Rib.prefixes (G.Simulator.rib sim a)))
      (G.Topology.ases t)
  in
  check_bool "saw paths" true (List.length paths > 20);
  let inferred = G.Gao_inference.infer ~degree:(G.Topology.degree t) paths in
  check_bool "inferred something" true (inferred <> []);
  let acc = G.Gao_inference.accuracy ~truth:t inferred in
  check_bool
    (Printf.sprintf "accuracy %.2f > 0.5" acc)
    true (acc > 0.5)

let gao_inference_empty () =
  check_bool "no paths, no inference" true
    (G.Gao_inference.infer ~degree:(fun _ -> 0) [] = []);
  check_bool "accuracy of nothing" true
    (G.Gao_inference.accuracy ~truth:G.Topology.empty [] = 0.0)

let gao_inference_edges () =
  let a = asn 1 and b = asn 2 in
  check_bool "singleton paths carry no edges" true
    (G.Gao_inference.infer ~degree:(fun _ -> 1) [ [ a ]; [ b ] ] = []);
  (* The same edge observed from both directions with equal degrees splits
     the vote evenly, which the attack reads as peering. *)
  match G.Gao_inference.infer ~degree:(fun _ -> 1) [ [ a; b ]; [ b; a ] ] with
  | [ (x, y, rel) ] ->
      check_bool "edge normalized to (low, high)" true
        (G.Asn.equal x a && G.Asn.equal y b);
      check_bool "evenly split votes infer peering" true
        (G.Relationship.equal rel G.Relationship.Peer)
  | _ -> Alcotest.fail "expected exactly one inferred edge"

let suite =
  [
    ("prefix parse/print", `Quick, prefix_parse_print);
    ("prefix masks host bits", `Quick, prefix_masks_host_bits);
    ("prefix rejects malformed", `Quick, prefix_rejects);
    ("prefix contains", `Quick, prefix_contains);
    prefix_random_valid;
    ("route prepend/loop", `Quick, route_prepend);
    ("route communities", `Quick, route_communities);
    ("route strip private attrs", `Quick, route_strip_private);
    route_encode_injective;
    ("policy first match wins", `Quick, policy_first_match_wins);
    ("policy deny by default", `Quick, policy_deny_by_default);
    ("policy match conditions", `Quick, policy_match_conditions);
    ("policy actions", `Quick, policy_actions);
    ("decision local pref", `Quick, decision_prefers_local_pref);
    ("decision short path", `Quick, decision_prefers_short_path);
    ("decision origin and med", `Quick, decision_origin_and_med);
    ("decision neighbor tiebreak", `Quick, decision_tiebreak_neighbor);
    ("decision empty", `Quick, decision_empty);
    decision_total;
    decision_rank_sorted;
    ("rib in/out", `Quick, rib_in_out);
    ("rib prefix listing", `Quick, rib_prefix_listing);
    ("relationship invert", `Quick, relationship_invert);
    ("gao-rexford export rule", `Quick, gao_rexford_export_rule);
    ("topology links and neighbors", `Quick, topology_links_and_neighbors);
    ("topology rejects self/duplicate", `Quick, topology_rejects_self_and_duplicate);
    ("topology clique and chain", `Quick, topology_clique_chain);
    ("topology hierarchy connected", `Quick, topology_hierarchy_connected);
    ("sim chain propagation", `Quick, sim_chain_propagation);
    ("sim star: Figure 1 shape", `Quick, sim_star_min_at_center);
    ("sim withdraw", `Quick, sim_withdraw);
    ("sim withdraw leaves no stale state", `Quick, sim_withdraw_no_stale_state);
    ("sim run feeds obs counters", `Quick, sim_run_feeds_counters);
    ("sim gao-rexford valley-free", `Quick, sim_gao_rexford_valley_free);
    ("sim import policy filters", `Quick, sim_import_policy_filters);
    ("sim export policy filters", `Quick, sim_export_policy_filters);
    ("sim byzantine decision override", `Quick, sim_decision_override);
    ("sim hierarchy full reachability", `Quick, sim_hierarchy_full_reachability);
    ("sim message log", `Quick, sim_message_log_grows);
    ("sim BAD GADGET diverges", `Quick, sim_bad_gadget_diverges);
    ("sim GOOD GADGET converges", `Quick, sim_good_gadget_converges);
    ("update gen sorted and bursty", `Quick, update_gen_sorted_and_bursty);
    ("update gen batches partition", `Quick, update_gen_batches_partition);
    ("sim single-AS only route", `Quick, sim_single_as_only_route);
    ("update gen single-origin churn", `Quick, update_gen_single_origin_churn);
    ("sim all-peer clique no transit", `Quick, sim_peer_clique_no_transit);
    ("gao inference on hierarchy", `Quick, gao_inference_on_hierarchy);
    ("gao inference empty", `Quick, gao_inference_empty);
    ("gao inference edge cases", `Quick, gao_inference_edges);
  ]
