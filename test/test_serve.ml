(* Battery for the `pvr serve` daemon (PR 10): session isolation, explicit
   backpressure, drain-on-shutdown, crash-resilience against vanished
   clients, and — the anchor — the serve-vs-batch digest differential:
   a session streamed over the wire must reproduce, byte for byte, the
   digests of a batch `pvr engine` run of the same parameters.

   Most tests run an in-process daemon on a throwaway Unix socket (an
   in-process SIGTERM would kill the test runner); the real-signal drain
   contract is exercised against a forked `pvr serve` CLI process. *)

module S = Pvr_serve.Server
module Cl = Pvr_serve.Client
module Pr = Pvr_serve.Protocol
module W = Pvr_serve.Workload
module Pool = Pvr_engine.Pool
module Obs = Pvr_obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let sock_seq = ref 0

let fresh_sock () =
  incr sock_seq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pvr-serve-test-%d-%d.sock" (Unix.getpid ()) !sock_seq)

let with_server ?(workers = 2) ?(queue_cap = 8) f =
  let path = fresh_sock () in
  let t =
    S.start { (S.default_config (S.Unix_sock path)) with workers; queue_cap }
  in
  Fun.protect
    ~finally:(fun () ->
      (try S.stop t with _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f path t)

(* A session small enough to run many times: 3 ASes, 2 origins, RSA-512. *)
let params ?(epochs = 2) seed =
  { W.defaults with W.p_seed = seed; p_tiers = "1,2"; p_origins = 2; p_epochs = epochs }

let batch_digest p =
  let w = W.build_world ~quiet:true p in
  match W.engine_core ~quiet:true w p with
  | Ok (digest, convicted) -> (digest, convicted)
  | Error e -> Alcotest.fail ("batch run failed: " ^ e)

let session_digest ?on_verdict c p =
  match Cl.open_session c p with
  | Error e -> Alcotest.fail ("open_session: " ^ e)
  | Ok id -> (
      match Cl.run_epochs ?on_verdict c id with
      | Ok (digest, convicted) -> (digest, convicted)
      | Error e -> Alcotest.fail ("run_epochs: " ^ e))

(* Raw protocol access, for tests that must hang up mid-stream. *)
let raw_connect path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX path);
  fd

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let poll ?(timeout = 10.0) ~what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timed out waiting for " ^ what)
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

(* ---- basics ------------------------------------------------------------------------ *)

let ping_stats_and_errors () =
  with_server @@ fun path t ->
  let c = Cl.connect (S.Unix_sock path) in
  Fun.protect ~finally:(fun () -> Cl.close c) @@ fun () ->
  check_bool "ping" true (Cl.ping c);
  (match Cl.stats c with
  | Ok st ->
      check_bool "draining off" false st.Pr.st_draining;
      check_int "queue cap" 8 st.Pr.st_queue_cap;
      check_bool "workers sized" true (st.Pr.st_workers >= 1);
      check_int "no inflight" 0 st.Pr.st_inflight
  | Error e -> Alcotest.fail e);
  (match Cl.run_epochs c 999 with
  | Error e -> check_string "unknown session" "unknown session" e
  | Ok _ -> Alcotest.fail "phantom session ran");
  (match Cl.query c "evidence where epoch = 1" with
  | Error e ->
      check_bool "query without store names the flag" true (contains e "store")
  | Ok _ -> Alcotest.fail "query must fail with no store attached");
  ignore (S.stats t : Pr.stats_reply)

(* ---- serve-vs-batch differential -------------------------------------------------- *)

let serve_matches_batch () =
  let p = params 42 in
  let want, want_conv = batch_digest p in
  with_server @@ fun path _t ->
  let c = Cl.connect (S.Unix_sock path) in
  Fun.protect ~finally:(fun () -> Cl.close c) @@ fun () ->
  let verdicts = ref [] in
  let got, conv =
    session_digest ~on_verdict:(fun v -> verdicts := v :: !verdicts) c p
  in
  check_string "final digest matches batch" want got;
  check_int "convictions match batch" want_conv conv;
  let vs = List.rev !verdicts in
  check_int "one verdict per epoch" p.W.p_epochs (List.length vs);
  List.iteri
    (fun i v -> check_int "epochs in order" (i + 1) v.Pr.v_epoch)
    vs;
  (* The stream's last running digest is the terminal digest: the hash
     chain the client watched is the one the daemon committed to. *)
  check_string "last verdict digest is terminal" got
    (List.nth vs (List.length vs - 1)).Pr.v_digest

(* ---- concurrent sessions are isolated --------------------------------------------- *)

let concurrent_sessions_isolated () =
  let seeds = [| 50; 51; 52 |] in
  let want = Array.map (fun s -> fst (batch_digest (params s))) seeds in
  with_server ~workers:2 @@ fun path _t ->
  let got = Array.make (Array.length seeds) (Error "never ran") in
  let threads =
    Array.mapi
      (fun i seed ->
        Thread.create
          (fun () ->
            let c = Cl.connect (S.Unix_sock path) in
            Fun.protect ~finally:(fun () -> Cl.close c) @@ fun () ->
            match Cl.open_session c (params seed) with
            | Error e -> got.(i) <- Error e
            | Ok id -> got.(i) <- (
                match Cl.run_epochs c id with
                | Ok (d, _) -> Ok d
                | Error e -> Error e))
          ())
      seeds
  in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | Error e -> Alcotest.fail (Printf.sprintf "session %d: %s" i e)
      | Ok d ->
          check_string
            (Printf.sprintf "session %d matches its batch digest" i)
            want.(i) d)
    got;
  (* Different seeds must not bleed into each other. *)
  check_bool "digests differ across seeds" true
    (want.(0) <> want.(1) && want.(1) <> want.(2))

(* ---- backpressure ------------------------------------------------------------------ *)

(* Fill every resident worker with stalls, then the 1-slot queue, then
   probe: the probe must be refused [Busy] immediately, and the queue
   gauge must never exceed the cap — bounded admission, not buffering. *)
let backpressure_returns_busy () =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset_all ())
  @@ fun () ->
  Obs.reset_all ();
  Obs.set_enabled true;
  with_server ~workers:2 ~queue_cap:1 @@ fun path _t ->
  let workers = Pool.worker_count () in
  check_bool "pool has workers" true (workers >= 1);
  let occupants = workers + 1 in
  let finished = Atomic.make 0 in
  let threads =
    List.init occupants (fun _ ->
        Thread.create
          (fun () ->
            let c = Cl.connect (S.Unix_sock path) in
            Fun.protect ~finally:(fun () -> Cl.close c) @@ fun () ->
            (match Cl.stall c 1500 with
            | Ok () -> ()
            | Error e -> Alcotest.fail ("occupant stall: " ^ e));
            Atomic.incr finished)
          ())
  in
  let probe = Cl.connect (S.Unix_sock path) in
  Fun.protect ~finally:(fun () -> Cl.close probe) @@ fun () ->
  poll ~what:"full queue" (fun () ->
      match Cl.stats probe with
      | Ok st -> st.Pr.st_queue_depth >= 1
      | Error _ -> false);
  (match Cl.stall probe 10 with
  | Error e -> check_string "probe refused" "busy" e
  | Ok () -> Alcotest.fail "expected Busy with a full queue");
  check_bool "queue gauge bounded by cap" true
    (Obs.gauge_read (Obs.gauge "serve.queue.depth") <= 1);
  check_bool "refusals counted" true (Obs.value (Obs.counter "serve.busy") >= 1);
  List.iter Thread.join threads;
  check_int "every admitted stall completed" occupants (Atomic.get finished)

(* ---- vanished clients -------------------------------------------------------------- *)

(* A client that hangs up mid-stream must cancel its own session and
   nothing else: the pool drains, the daemon stays serviceable, and a
   subsequent session completes with the right digest. *)
let killed_client_never_wedges () =
  with_server @@ fun path t ->
  let p = params ~epochs:6 77 in
  let fd = raw_connect path in
  Pr.send_request fd (Pr.Open_session p);
  let sid =
    match Pr.recv_response fd with
    | Ok (Pr.Session id) -> id
    | _ -> Alcotest.fail "expected a session id"
  in
  Pr.send_request fd (Pr.Run_epochs sid);
  (* One verdict in hand proves the stream is live — now vanish. *)
  (match Pr.recv_response fd with
  | Ok (Pr.Verdict _) -> ()
  | _ -> Alcotest.fail "expected a verdict frame");
  Unix.close fd;
  (* The daemon notices on its next write and unwinds the worker. *)
  poll ~what:"pool drain after client death" (fun () ->
      let st = S.stats t in
      st.Pr.st_inflight = 0 && st.Pr.st_sessions = 0);
  let c = Cl.connect (S.Unix_sock path) in
  Fun.protect ~finally:(fun () -> Cl.close c) @@ fun () ->
  let want, _ = batch_digest (params 78) in
  let got, _ = session_digest c (params 78) in
  check_string "daemon still serves correct digests" want got

(* ---- drain on shutdown ------------------------------------------------------------- *)

(* initiate_shutdown mid-stream: the in-flight session finishes and its
   terminal frame arrives; afterwards the listener is gone. *)
let shutdown_drains_inflight () =
  let p = params ~epochs:4 91 in
  let want, _ = batch_digest p in
  let path = fresh_sock () in
  let t = S.start { (S.default_config (S.Unix_sock path)) with workers = 2 } in
  let first_verdict = Atomic.make false in
  let result = ref (Error "never ran") in
  let client =
    Thread.create
      (fun () ->
        let c = Cl.connect (S.Unix_sock path) in
        Fun.protect ~finally:(fun () -> Cl.close c) @@ fun () ->
        match Cl.open_session c p with
        | Error e -> result := Error e
        | Ok id ->
            result :=
              Cl.run_epochs
                ~on_verdict:(fun _ -> Atomic.set first_verdict true)
                c id)
      ()
  in
  poll ~what:"first verdict" (fun () -> Atomic.get first_verdict);
  S.initiate_shutdown t;
  S.wait t;
  Thread.join client;
  (match !result with
  | Ok (d, _) -> check_string "in-flight stream completed through drain" want d
  | Error e -> Alcotest.fail ("stream aborted by shutdown: " ^ e));
  (match Cl.connect (S.Unix_sock path) with
  | exception Unix.Unix_error _ -> ()
  | c ->
      Cl.close c;
      Alcotest.fail "listener must be gone after drain");
  try Unix.unlink path with Unix.Unix_error _ -> ()

(* ---- real SIGTERM against the forked CLI ------------------------------------------- *)

let cli = "../bin/pvr_cli.exe"

let sigterm_drains_forked_daemon () =
  let path = fresh_sock () in
  let devnull = Unix.openfile "/dev/null" [ O_RDWR ] 0 in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--socket"; path; "--workers"; "2" |]
      devnull devnull devnull
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid) with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
  @@ fun () ->
  poll ~what:"daemon socket" (fun () ->
      Sys.file_exists path
      &&
      match raw_connect path with
      | exception Unix.Unix_error _ -> false
      | fd ->
          Unix.close fd;
          true);
  let p = params ~epochs:3 13 in
  let want, _ = batch_digest p in
  let fd = raw_connect path in
  Pr.send_request fd (Pr.Open_session p);
  let sid =
    match Pr.recv_response fd with
    | Ok (Pr.Session id) -> id
    | _ -> Alcotest.fail "expected a session id"
  in
  Pr.send_request fd (Pr.Run_epochs sid);
  (* First verdict in hand = the stream is in flight; SIGTERM now. *)
  (match Pr.recv_response fd with
  | Ok (Pr.Verdict v) -> check_int "first epoch" 1 v.Pr.v_epoch
  | _ -> Alcotest.fail "expected a verdict frame");
  Unix.kill pid Sys.sigterm;
  (* The drain contract: the in-flight stream still terminates with the
     correct digest... *)
  let rec drain () =
    match Pr.recv_response fd with
    | Ok (Pr.Verdict _) -> drain ()
    | Ok (Pr.Done { d_digest; _ }) -> d_digest
    | Ok (Pr.Err e) -> Alcotest.fail ("stream aborted: " ^ e)
    | _ -> Alcotest.fail "unexpected frame while draining"
  in
  check_string "digest across SIGTERM" want (drain ());
  Unix.close fd;
  (* ...and the daemon then exits 0 and removes its socket. *)
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.fail (Printf.sprintf "daemon exited %d" n)
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
      Alcotest.fail "daemon killed by signal");
  check_bool "socket removed on exit" false (Sys.file_exists path)

let suite =
  [
    Alcotest.test_case "serve: ping, stats, protocol errors" `Quick
      ping_stats_and_errors;
    Alcotest.test_case "serve: session digest = batch digest" `Quick
      serve_matches_batch;
    Alcotest.test_case "serve: concurrent sessions are isolated" `Quick
      concurrent_sessions_isolated;
    Alcotest.test_case "serve: backpressure refuses with Busy" `Slow
      backpressure_returns_busy;
    Alcotest.test_case "serve: killed client never wedges the pool" `Quick
      killed_client_never_wedges;
    Alcotest.test_case "serve: shutdown drains in-flight streams" `Quick
      shutdown_drains_inflight;
    Alcotest.test_case "serve: SIGTERM drains the forked daemon" `Slow
      sigterm_drains_forked_daemon;
  ]
