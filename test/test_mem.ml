(* Memory-governor and delta-RIB tests: Rib_delta blob round-trips and
   full+delta replay, the incremental-vs-oracle RIB digest equivalence,
   streaming churn twins, the spill layer's digest invariance across
   ceiling x jobs x cache (including a pager that always fails reads),
   governor staging counters, tag-4 page frames, random-access journal
   reads, the 10k-AS generated-topology tier histogram, and the CLI's
   --spill/--mem-ceiling and crashsoak spill kill-point contracts. *)

module E = Pvr_engine.Engine
module G = Pvr_bgp
module C = Pvr_crypto
module N = Pvr_net
module S = Pvr_store.Store
module Frame = Pvr_query.Frame
module RD = G.Rib_delta

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let counted = Test_engine.counted
let delta = Test_engine.delta

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pvr-test-mem-%d-%d" (Unix.getpid ()) !n)

let rm_rf dir =
  try
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  with Sys_error _ | Unix.Unix_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ---- Rib_delta tracker ---------------------------------------------------------- *)

let asn = G.Asn.of_int
let pfx i = G.Prefix.make ~addr:((10 lsl 24) lor (i lsl 8)) ~len:24

(* Seeded random tracker mutations: inserts, overwrites and removals over a
   small (AS, prefix) universe so collisions and deletions are common. *)
let mutate rng t n =
  for _ = 1 to n do
    let a = asn (1 + C.Drbg.uniform_int rng 20) in
    let p = pfx (C.Drbg.uniform_int rng 40) in
    let entry =
      if C.Drbg.uniform_int rng 4 = 0 then ""
      else Printf.sprintf "entry-%d" (C.Drbg.uniform_int rng 8)
    in
    ignore (RD.update t ~asn:a ~prefix:p ~entry : bool)
  done

let tracker_of_seed seed n =
  let t = RD.create () in
  mutate (C.Drbg.of_int_seed seed) t n;
  t

let rib_delta_full_roundtrip =
  qtest "rib_delta: full blob round-trips"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let t = tracker_of_seed seed 60 in
      match RD.decode_full (RD.encode_full t) with
      | Error _ -> false
      | Ok t' -> RD.digest t' = RD.digest t && RD.pairs t' = RD.pairs t)

let rib_delta_delta_roundtrip =
  qtest "rib_delta: delta blob round-trips"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let t = tracker_of_seed seed 60 in
      let changes = RD.drain_changes t in
      match RD.decode_delta (RD.encode_delta changes) with
      | Ok changes' -> changes' = changes
      | Error _ -> false)

let rib_delta_decoders_never_raise =
  qtest ~count:60 "rib_delta: decoders never raise on mangled blobs"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = C.Drbg.of_int_seed seed in
      let t = tracker_of_seed (seed + 1) 30 in
      let full = N.Fuzz.mangle rng (RD.encode_full t) in
      let dl = N.Fuzz.mangle rng (RD.encode_delta (RD.drain_changes t)) in
      (match RD.decode_full full with Ok _ | Error _ -> true)
      && match RD.decode_delta dl with Ok _ | Error _ -> true)

let rib_delta_replay_reconstructs () =
  (* The journal shape: one full blob, then a stream of deltas.  Replaying
     them onto a fresh tracker must land on the live tracker's digest. *)
  let rng = C.Drbg.of_int_seed 9917 in
  let live = RD.create () in
  mutate rng live 80;
  let full = RD.encode_full live in
  ignore (RD.drain_changes live : RD.change list);
  let deltas =
    List.init 4 (fun _ ->
        mutate rng live 40;
        RD.encode_delta (RD.drain_changes live))
  in
  let rebuilt =
    match RD.decode_full full with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun blob ->
      match RD.decode_delta blob with
      | Ok cs -> RD.apply rebuilt cs
      | Error e -> Alcotest.fail e)
    deltas;
  check_string "replayed digest" (RD.digest live) (RD.digest rebuilt);
  check_int "replayed pairs" (RD.pairs live) (RD.pairs rebuilt)

(* ---- engine world with governor knobs -------------------------------------------- *)

(* Same world as Test_engine.run_engine / Test_store.mk_world, driven by
   the *streaming* churn twins (their DRBG equivalence makes digests
   comparable with every other suite's runs), with optional ceiling and
   pager so the governor's shedding stages can be forced. *)
let run_mem ?(jobs = 1) ?(cache = true) ?(ceiling = 0) ?pager ?(epochs = 4)
    ?(per_epoch = fun _ _ -> ()) seed =
  let topo = Lazy.force Test_engine.etopo in
  let sim = G.Simulator.create topo in
  let origins =
    List.sort (fun a b -> G.Asn.compare b a) (G.Topology.ases topo)
    |> List.filteri (fun i _ -> i < 2)
    |> List.rev
  in
  let churn =
    G.Update_gen.Churn.create ~anycast:2 ~origins ~prefixes_per_origin:2 ()
  in
  let churn_rng = C.Drbg.of_int_seed seed in
  let eng =
    E.create ~jobs ~cache ~salt_every:3 ~max_path_len:8
      (C.Drbg.of_int_seed (seed + 1))
      (Lazy.force Test_engine.ekeyring) ~topology:topo ~sim ()
  in
  E.set_mem_ceiling eng ceiling;
  Option.iter (fun pg -> E.set_pager eng (Some pg)) pager;
  let lines = ref [] in
  for i = 1 to epochs do
    let r =
      E.epoch
        ~apply:(fun sim ->
          if i = 1 then G.Update_gen.Churn.seed_count churn sim
          else G.Update_gen.Churn.step_count churn_rng ~turnover:0.3 churn sim)
        eng
    in
    lines := E.report_line r :: !lines;
    per_epoch eng r
  done;
  (eng, List.rev !lines)

let rib_digest_matches_oracle () =
  let checks = ref 0 in
  let eng, _ =
    run_mem 301
      ~per_epoch:(fun eng _ ->
        incr checks;
        check_string
          (Printf.sprintf "epoch %d incremental = from-scratch" !checks)
          (E.rib_digest_full eng) (E.rib_digest eng))
  in
  check_int "every epoch checked" 4 !checks;
  (* Spilling must not perturb the tracker either. *)
  let eng', _ =
    run_mem 301 ~ceiling:1 ~pager:(E.memory_pager ())
      ~per_epoch:(fun eng _ ->
        check_string "spilled incremental = oracle" (E.rib_digest_full eng)
          (E.rib_digest eng))
  in
  check_string "same world, same tracker" (E.rib_digest eng) (E.rib_digest eng')

let streaming_churn_equivalence () =
  (* The list-building and streaming churn variants must consume the same
     DRBG draws and leave the simulator in the same state. *)
  let topo = Lazy.force Test_engine.etopo in
  let origins =
    List.sort (fun a b -> G.Asn.compare b a) (G.Topology.ases topo)
    |> List.filteri (fun i _ -> i < 2)
    |> List.rev
  in
  let fingerprint sim =
    let t = RD.create () in
    List.iter
      (fun a ->
        let rib = G.Simulator.rib sim a in
        List.iter
          (fun p ->
            ignore
              (RD.update t ~asn:a ~prefix:p ~entry:(G.Rib.prefix_entry rib p)
                : bool))
          (G.Rib.prefixes rib))
      (G.Topology.ases topo);
    RD.digest t
  in
  let run_variant streaming =
    let sim = G.Simulator.create topo in
    let churn =
      G.Update_gen.Churn.create ~anycast:2 ~origins ~prefixes_per_origin:2 ()
    in
    let rng = C.Drbg.of_int_seed 555 in
    let counts =
      List.init 4 (fun i ->
          let n =
            if i = 0 then
              if streaming then G.Update_gen.Churn.seed_count churn sim
              else List.length (G.Update_gen.Churn.seed churn sim)
            else if streaming then
              G.Update_gen.Churn.step_count rng ~turnover:0.4 churn sim
            else
              List.length (G.Update_gen.Churn.step rng ~turnover:0.4 churn sim)
          in
          ignore (G.Simulator.run sim : int);
          n)
    in
    (counts, fingerprint sim)
  in
  let counts_l, fp_l = run_variant false in
  let counts_s, fp_s = run_variant true in
  check_bool "batch sizes" true (counts_l = counts_s);
  check_bool "non-trivial churn" true (List.exists (fun n -> n > 0) counts_l);
  check_string "simulator state" fp_l fp_s

let spill_differential () =
  let eng0, lines0 = run_mem 303 in
  let d0 = E.digest eng0 in
  let r0 = E.rib_digest eng0 in
  List.iter
    (fun (jobs, cache) ->
      let (eng, lines), d =
        counted (fun () ->
            run_mem ~jobs ~cache ~ceiling:1 ~pager:(E.memory_pager ()) 303)
      in
      let label = Printf.sprintf "(jobs=%d cache=%b)" jobs cache in
      check_string ("digest " ^ label) d0 (E.digest eng);
      check_string ("rib digest " ^ label) r0 (E.rib_digest eng);
      (* Report lines are only stable across jobs; dirty/skipped reflect
         the cache setting by design. *)
      if cache then
        List.iter2
          (fun a b -> check_string ("report line " ^ label) a b)
          lines0 lines;
      check_bool ("spill engaged " ^ label) true
        (delta d "engine.mem.spills" > 0);
      check_int ("no page failures " ^ label) 0
        (delta d "engine.mem.page_read_failures"))
    [ (1, true); (4, true); (1, false) ]

let governor_stages () =
  (* Without a pager the governor can shed caches and throttle but never
     spill; with one, spilling engages and pages are read back. *)
  let (eng, _), d = counted (fun () -> run_mem ~ceiling:1 305) in
  check_bool "cache drops" true (delta d "engine.mem.cache_drops" > 0);
  check_bool "throttles" true (delta d "engine.mem.throttles" > 0);
  check_int "no pager, no spills" 0 (delta d "engine.mem.spills");
  check_int "no pager, all resident" 0 (E.spilled_states eng);
  check_bool "states tracked" true (E.resident_states eng > 0);
  let (eng2, _), d2 =
    counted (fun () -> run_mem ~ceiling:1 ~pager:(E.memory_pager ()) 305)
  in
  check_bool "spills" true (delta d2 "engine.mem.spills" > 0);
  check_bool "page reads" true (delta d2 "engine.mem.page_reads" > 0);
  check_bool "states spilled" true (E.spilled_states eng2 > 0);
  check_string "digest unperturbed" (E.digest eng) (E.digest eng2)

let page_read_failure_recomputes () =
  (* A pager whose reads always fail: every unspill degrades to a dirty
     recomputation, which purity makes byte-identical. *)
  let broken =
    { E.pg_append = (fun ~key:_ ~blob:_ -> 0);
      pg_read = (fun ~off:_ -> Error "page lost") }
  in
  let eng0, _ = run_mem 307 in
  let (eng, _), d = counted (fun () -> run_mem ~ceiling:1 ~pager:broken 307) in
  check_string "digest" (E.digest eng0) (E.digest eng);
  check_bool "failures counted" true
    (delta d "engine.mem.page_read_failures" > 0)

(* ---- page frames and random-access journal reads -------------------------------- *)

let frame_page_roundtrip =
  qtest "frame: page round-trips; mangled never raises"
    QCheck2.Gen.(triple string string string)
    (fun (run_id, key, blob) ->
      let pf = { Frame.pf_run_id = run_id; pf_key = key; pf_blob = blob } in
      let enc = Frame.encode_page pf in
      (match Frame.decode enc with
      | Ok (Frame.Page pf') -> pf' = pf
      | Ok _ | Error _ -> false)
      &&
      let rng = C.Drbg.of_int_seed (String.length blob + String.length key) in
      match Frame.decode (N.Fuzz.mangle rng enc) with
      | Ok _ | Error _ -> true)

let read_frame_at_random_access () =
  with_dir (fun dir ->
      let st = S.open_ ~fsync:false ~dir () in
      let payloads = [ "alpha"; "beta"; String.make 300 'x' ] in
      let offs = List.map (fun p -> (p, S.append' st p)) payloads in
      S.close st;
      (* Every offset reads back its exact payload, in any order. *)
      List.iter
        (fun (p, off) ->
          match S.read_frame_at ~dir ~off with
          | Ok p' -> check_string "payload" p p'
          | Error e -> Alcotest.fail e)
        (List.rev offs);
      (* A reopened store appends at the right offset. *)
      let st2 = S.open_ ~fsync:false ~dir () in
      let off4 = S.append' st2 "gamma" in
      S.close st2;
      (match S.read_frame_at ~dir ~off:off4 with
      | Ok p -> check_string "post-reopen payload" "gamma" p
      | Error e -> Alcotest.fail e);
      (* Corrupt one payload byte: the CRC refuses the frame. *)
      let jp = S.journal_path ~dir in
      let full = read_file jp in
      let _, off1 = List.nth offs 1 in
      let b = Bytes.of_string full in
      Bytes.set b (off1 + 10) 'Z';
      write_file jp (Bytes.to_string b);
      (match S.read_frame_at ~dir ~off:off1 with
      | Ok _ -> Alcotest.fail "corrupt frame must not read back"
      | Error _ -> ());
      (* An offset pointing into a torn tail errors instead of raising. *)
      match S.read_frame_at ~dir ~off:(String.length full - 3) with
      | Ok _ -> Alcotest.fail "torn tail must not read back"
      | Error _ -> ())

(* ---- 10k-AS topology generation -------------------------------------------------- *)

let topology_10k_histogram () =
  (* Seeded regression: generation is near-linear (this would time out
     quadratically at 10k), and the preferential-attachment tier shape is
     pinned so the generator's DRBG stream never drifts. *)
  let topo = G.Topology.generate (C.Drbg.of_int_seed 4242) ~ases:10_000 () in
  check_int "size" 10_000 (G.Topology.size topo);
  check_int "links" 15486 (List.length (G.Topology.links topo));
  let hist = Hashtbl.create 8 in
  G.Asn.Map.iter
    (fun _ tier ->
      Hashtbl.replace hist tier
        (1 + Option.value ~default:0 (Hashtbl.find_opt hist tier)))
    (G.Topology.tiers topo);
  List.iter
    (fun (tier, want) ->
      check_int
        (Printf.sprintf "tier %d population" tier)
        want
        (Option.value ~default:0 (Hashtbl.find_opt hist tier)))
    [
      (0, 16); (1, 1377); (2, 3222); (3, 3276); (4, 1555); (5, 454); (6, 87);
      (7, 11); (8, 1); (9, 1);
    ]

(* ---- CLI ------------------------------------------------------------------------- *)

let cli = "../bin/pvr_cli.exe"

let run_cli args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" cli args)

let cli_spill_digest_matches () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let rep n = Filename.concat dir n in
      check_int "unbounded run" 0
        (run_cli
           (Printf.sprintf
              "engine --seed 7 --epochs 3 --tiers 1,2 --origins 2 --report %s"
              (rep "a.json")));
      check_int "spill run under a 1-word ceiling" 0
        (run_cli
           (Printf.sprintf
              "engine --seed 7 --epochs 3 --tiers 1,2 --origins 2 --spill \
               --mem-ceiling 1 --report %s"
              (rep "b.json")));
      check_string "identical run reports" (read_file (rep "a.json"))
        (read_file (rep "b.json")))

let cli_crashsoak_spill () =
  (* Seed 37's schedule (with the spill phase pool) kills inside the
     governor's spill barrier at epoch 1; recovery must still be
     byte-identical. *)
  check_int "crashsoak with spill kill points" 0
    (run_cli
       "crashsoak --seed 37 --epochs 6 --kills 3 --spill --mem-ceiling 1 \
        --no-corrupt")

let suite =
  [
    rib_delta_full_roundtrip;
    rib_delta_delta_roundtrip;
    rib_delta_decoders_never_raise;
    ("rib_delta: full+delta replay reconstructs", `Quick,
     rib_delta_replay_reconstructs);
    ("rib digest: incremental equals oracle", `Quick, rib_digest_matches_oracle);
    ("churn: streaming twins match list twins", `Quick,
     streaming_churn_equivalence);
    ("spill differential: ceiling x jobs x cache", `Quick, spill_differential);
    ("governor: shedding stages and counters", `Quick, governor_stages);
    ("governor: failed page reads recompute", `Quick,
     page_read_failure_recomputes);
    frame_page_roundtrip;
    ("store: random-access frame reads", `Quick, read_frame_at_random_access);
    ("topology: 10k-AS generation histogram", `Quick, topology_10k_histogram);
    ("cli: --spill digest matches unbounded", `Quick, cli_spill_digest_matches);
    ("cli: crashsoak survives spill kill points", `Slow, cli_crashsoak_spill);
  ]
