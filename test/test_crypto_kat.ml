(* Known-answer and differential tests for the fast-math crypto core.

   The fast paths introduced for the engine's per-epoch RSA/SHA-256 bill —
   Montgomery/fixed-window modular exponentiation, CRT signing, batch
   verification, precomputed-schedule and multi-buffer SHA-256, HMAC key
   midstates — must be byte-identical to the naive reference paths they
   replaced.  This suite pins them three ways:

   - FIPS 180-4 / RFC 4231 known answers, run against {e every} API
     variant (one-shot, reusable-ctx, multi-buffer, fixed-width template);
   - qcheck differential oracles against the retained naive paths
     ([Bigint.mod_pow_naive], [Rsa.sign_plain], per-item [Rsa.verify],
     [Commitment.commit_derived]);
   - forged-batch tests: [verify_batch] must reject {e exactly} the forged
     items, whatever mix of flipped bits, wrong keys and wrong messages. *)

module C = Pvr_crypto
module B = C.Bigint
module Obs = Pvr_obs

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let counted f =
  Obs.set_enabled true;
  let before = Obs.Snapshot.capture () in
  let result = f () in
  let d = Obs.Snapshot.diff ~before ~after:(Obs.Snapshot.capture ()) in
  Obs.set_enabled false;
  (result, d)

let delta d name = Obs.Snapshot.counter_value d name
let hex = C.Hex.encode

(* ---- SHA-256: FIPS 180-4 known answers on every API variant ------------- *)

(* FIPS 180-4 appendix vectors: one-block, empty, two-block (448-bit
   message, padding spills into a second block), and exact-block-boundary
   lengths where the padding rules switch branches. *)
let sha_kats =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( String.make 55 'a',
      "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318" );
    ( String.make 56 'a',
      "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a" );
    ( String.make 64 'a',
      "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb" );
    ( String.make 65 'a',
      "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0" );
  ]

let sha256_kat_oneshot () =
  List.iter (fun (m, d) -> check "digest" d (C.Sha256.digest_hex m)) sha_kats

let sha256_kat_reused_ctx () =
  (* One ctx serves every message in sequence: [digest_with] must reset
     state completely, leaving no residue from the previous message. *)
  let ctx = C.Sha256.init () in
  List.iter
    (fun (m, d) -> check "digest_with" d (hex (C.Sha256.digest_with ctx m)))
    sha_kats;
  (* And again in reverse order, reusing the same ctx. *)
  List.iter
    (fun (m, d) -> check "digest_with rev" d (hex (C.Sha256.digest_with ctx m)))
    (List.rev sha_kats)

let sha256_kat_multi_buffer () =
  let ctx = C.Sha256.init () in
  let digests = C.Sha256.digest_many ctx (List.map fst sha_kats) in
  List.iter2
    (fun (_, expected) got -> check "digest_many" expected (hex got))
    sha_kats digests

let sha256_kat_fixed_width () =
  List.iter
    (fun (m, d) ->
      let t = C.Sha256.Fixed.create (String.length m) in
      check_int "width" (String.length m) (C.Sha256.Fixed.width t);
      check "Fixed.digest" d (hex (C.Sha256.Fixed.digest t m)))
    sha_kats

let sha256_kat_parts () =
  (* [digest_parts] is length-framed (not plain concatenation), so the KAT
     here is reflexive: the reusable-ctx form must equal the one-shot form
     on every split, and distinct splits of the same bytes must differ. *)
  let ctx = C.Sha256.init () in
  List.iter
    (fun (m, _) ->
      let k = String.length m / 2 in
      let parts =
        [ String.sub m 0 k; String.sub m k (String.length m - k) ]
      in
      check "digest_parts_with ≡ digest_parts"
        (C.Sha256.digest_parts_hex parts)
        (hex (C.Sha256.digest_parts_with ctx parts)))
    sha_kats;
  check_bool "splits are framed" false
    (C.Sha256.digest_parts [ "ab"; "c" ] = C.Sha256.digest_parts [ "a"; "bc" ])

let sha256_kat_million_a_streaming () =
  (* FIPS 180-4: one million 'a's.  Fed through a streaming ctx in uneven
     chunks that straddle block boundaries, then the ctx is reused for a
     one-shot to prove finalize left it clean. *)
  let expected =
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
  in
  let ctx = C.Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 997 do
    C.Sha256.update ctx chunk
  done;
  C.Sha256.update ctx (String.make 3000 'a');
  check "million a" expected (hex (C.Sha256.finalize ctx));
  check "ctx clean after finalize"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex (C.Sha256.digest_with ctx "abc"))

let sha256_block_boundary_updates () =
  (* The same 300-byte message split at every boundary around the 64-byte
     block edge must give one digest. *)
  let msg = String.init 300 (fun i -> Char.chr ((i * 7) mod 256)) in
  let whole = C.Sha256.digest msg in
  List.iter
    (fun cut ->
      let ctx = C.Sha256.init () in
      C.Sha256.update ctx (String.sub msg 0 cut);
      C.Sha256.update ctx (String.sub msg cut (String.length msg - cut));
      check_bool
        (Printf.sprintf "cut at %d" cut)
        true
        (C.Sha256.finalize ctx = whole))
    [ 1; 55; 56; 63; 64; 65; 119; 128; 200; 299 ]

let sha256_copy_midstate () =
  (* [copy] must fork the state: the original and the copy diverge
     independently from the shared prefix. *)
  let ctx = C.Sha256.init () in
  C.Sha256.update ctx "shared prefix|";
  let fork = C.Sha256.copy ctx in
  C.Sha256.update ctx "left";
  C.Sha256.update fork "right";
  check "left" (C.Sha256.digest_hex "shared prefix|left")
    (hex (C.Sha256.finalize ctx));
  check "right" (C.Sha256.digest_hex "shared prefix|right")
    (hex (C.Sha256.finalize fork))

let sha256_fixed_differential =
  qtest ~count:300 "Fixed.digest ≡ digest (random widths)"
    QCheck2.Gen.(string_size (int_range 0 200))
    (fun m ->
      let t = C.Sha256.Fixed.create (String.length m) in
      C.Sha256.Fixed.digest t m = C.Sha256.digest m)

let sha256_many_differential =
  qtest ~count:100 "digest_many ≡ map digest"
    QCheck2.Gen.(list_size (int_range 0 8) (string_size (int_range 0 150)))
    (fun msgs ->
      let ctx = C.Sha256.init () in
      C.Sha256.digest_many ctx msgs = List.map C.Sha256.digest msgs)

(* ---- HMAC: RFC 4231 on both the one-shot and precomputed-key paths ------ *)

let hmac_vectors =
  [
    ( String.make 20 '\x0b',
      "Hi There",
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" );
    ( "Jefe",
      "what do ya want for nothing?",
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" );
    ( String.make 20 '\xaa',
      String.make 50 '\xdd',
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" );
    ( String.init 25 (fun i -> Char.chr (i + 1)),
      String.make 50 '\xcd',
      "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b" );
    ( String.make 131 '\xaa',
      "Test Using Larger Than Block-Size Key - Hash Key First",
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" );
    ( String.make 131 '\xaa',
      "This is a test using a larger than block-size key and a larger than \
       block-size data. The key needs to be hashed before being used by the \
       HMAC algorithm.",
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2" );
  ]

let hmac_rfc4231_both_paths () =
  List.iter
    (fun (key, msg, expected) ->
      check "mac" expected (C.Hmac.mac_hex ~key msg);
      let k = C.Hmac.Key.create key in
      check "mac_with" expected (hex (C.Hmac.mac_with k msg));
      (* The precomputed key is reusable: a second MAC through the same key
         must not perturb the midstates. *)
      check "mac_with reuse" expected (hex (C.Hmac.mac_with k msg)))
    hmac_vectors

let hmac_key_differential =
  qtest ~count:200 "mac_with (Key.create k) ≡ mac ~key"
    QCheck2.Gen.(pair (string_size (int_range 0 140)) string)
    (fun (key, msg) ->
      C.Hmac.mac_with (C.Hmac.Key.create key) msg = C.Hmac.mac ~key msg)

(* ---- Montgomery modular exponentiation vs the naive oracle -------------- *)

let big_gen bits =
  QCheck2.Gen.(
    map
      (fun seed -> B.random_bits (C.Drbg.of_int_seed seed) bits)
      (int_range 0 1_000_000))

let odd_modulus_gen =
  QCheck2.Gen.(
    map2
      (fun seed bits ->
        let m = B.random_odd_bits (C.Drbg.of_int_seed seed) bits in
        if B.compare m B.two >= 0 then m else B.of_int 3)
      (int_range 0 1_000_000) (int_range 2 320))

let mont_differential =
  qtest ~count:150 "Montgomery mod_pow ≡ square-and-multiply (odd moduli)"
    QCheck2.Gen.(triple (big_gen 256) (big_gen 64) odd_modulus_gen)
    (fun (base, exp, modulus) ->
      B.equal
        (B.mod_pow ~base ~exp ~modulus)
        (B.mod_pow_naive ~base ~exp ~modulus))

let mont_edge_cases () =
  let m = B.of_int 1_000_003 in
  check_bool "x^0 = 1" true (B.equal B.one (B.mod_pow ~base:(B.of_int 7) ~exp:B.zero ~modulus:m));
  check_bool "0^x = 0" true (B.is_zero (B.mod_pow ~base:B.zero ~exp:(B.of_int 9) ~modulus:m));
  check_bool "mod 1 = 0" true (B.is_zero (B.mod_pow ~base:(B.of_int 5) ~exp:(B.of_int 5) ~modulus:B.one));
  check_bool "base >= modulus reduced" true
    (B.equal
       (B.mod_pow ~base:(B.add m (B.of_int 2)) ~exp:(B.of_int 10) ~modulus:m)
       (B.mod_pow_naive ~base:(B.of_int 2) ~exp:(B.of_int 10) ~modulus:m));
  (match B.mod_pow ~base:B.one ~exp:B.one ~modulus:B.zero with
  | _ -> Alcotest.fail "expected Division_by_zero"
  | exception Division_by_zero -> ());
  (* Even moduli take the naive path under the dispatch; both routes agree. *)
  let even = B.of_int 1_000_000 in
  check_bool "even modulus" true
    (B.equal
       (B.mod_pow ~base:(B.of_int 123) ~exp:(B.of_int 77) ~modulus:even)
       (B.mod_pow_naive ~base:(B.of_int 123) ~exp:(B.of_int 77) ~modulus:even))

let mont_toggle_roundtrip () =
  (* [set_fast_mod_pow false] must route through the naive path and still
     produce identical values — this is exactly how the benches get their
     "before" numbers. *)
  let base = B.random_bits (C.Drbg.of_int_seed 7) 200 in
  let exp = B.random_bits (C.Drbg.of_int_seed 8) 64 in
  let modulus = B.random_odd_bits (C.Drbg.of_int_seed 9) 192 in
  check_bool "fast enabled by default" true (B.fast_mod_pow_enabled ());
  let fast = B.mod_pow ~base ~exp ~modulus in
  B.set_fast_mod_pow false;
  Fun.protect ~finally:(fun () -> B.set_fast_mod_pow true) @@ fun () ->
  check_bool "toggle observed" false (B.fast_mod_pow_enabled ());
  check_bool "naive route identical" true
    (B.equal fast (B.mod_pow ~base ~exp ~modulus))

(* ---- RSA: CRT signing and batch verification vs per-item oracles -------- *)

(* Keygen dominates: two fixed 512-bit keys serve the whole section, and a
   single 1024-bit key pins the production width. *)
let key_a = lazy (C.Rsa.generate (C.Drbg.of_int_seed 1001) ~bits:512)
let key_b = lazy (C.Rsa.generate (C.Drbg.of_int_seed 1002) ~bits:512)
let key_big = lazy (C.Rsa.generate (C.Drbg.of_int_seed 1003) ~bits:1024)

let crt_sign_differential =
  qtest ~count:25 "CRT sign ≡ plain x^d mod n"
    QCheck2.Gen.(string_size (int_range 0 100))
    (fun msg ->
      let key = Lazy.force key_a in
      C.Rsa.sign key msg = C.Rsa.sign_plain key msg)

let crt_sign_1024 () =
  let key = Lazy.force key_big in
  let s = C.Rsa.sign key "production width" in
  check_bool "CRT = plain at 1024 bits" true
    (s = C.Rsa.sign_plain key "production width");
  check_bool "verifies" true
    (C.Rsa.verify key.C.Rsa.pub ~msg:"production width" ~signature:s)

(* A batch mixing two keys, duplicate entries, and per-item forgeries
   chosen by [forge]: 0 = valid, 1 = flipped signature bit, 2 = wrong key,
   3 = wrong message. *)
let build_batch plan =
  List.mapi
    (fun i forge ->
      let key, other =
        if i mod 2 = 0 then (Lazy.force key_a, Lazy.force key_b)
        else (Lazy.force key_b, Lazy.force key_a)
      in
      let msg = Printf.sprintf "batch item %d" (i / 3) in
      let signature = C.Rsa.sign key msg in
      match forge with
      | 0 -> (key.C.Rsa.pub, msg, signature)
      | 1 ->
          let b = Bytes.of_string signature in
          Bytes.set b 5 (Char.chr (Char.code (Bytes.get b 5) lxor 0x10));
          (key.C.Rsa.pub, msg, Bytes.to_string b)
      | 2 -> (other.C.Rsa.pub, msg, signature)
      | _ -> (key.C.Rsa.pub, msg ^ "!", signature))
    plan

let batch_differential =
  qtest ~count:40 "verify_batch ≡ per-item verify (mixed forgeries)"
    QCheck2.Gen.(list_size (int_range 0 12) (int_bound 3))
    (fun plan ->
      let batch = build_batch plan in
      C.Rsa.verify_batch batch
      = List.map
          (fun (pub, msg, signature) -> C.Rsa.verify pub ~msg ~signature)
          batch)

let batch_rejects_exactly_forged () =
  (* Deterministic spot check: the verdict list flags exactly the forged
     positions, so a screening failure can never smear across a batch. *)
  let plan = [ 0; 1; 0; 2; 0; 3; 0; 0 ] in
  let verdicts = C.Rsa.verify_batch (build_batch plan) in
  Alcotest.(check (list bool))
    "forged mask"
    (List.map (fun f -> f = 0) plan)
    verdicts;
  check_bool "empty batch" true (C.Rsa.verify_batch [] = [])

let batch_screening_and_dedup_counters () =
  let key = Lazy.force key_a in
  let sig_of m = C.Rsa.sign key m in
  let item m = (key.C.Rsa.pub, m, sig_of m) in
  (* All-valid same-key batch with one duplicate: one screening
     exponentiation covers the group, the duplicate costs nothing. *)
  let (verdicts, d) =
    counted (fun () -> C.Rsa.verify_batch [ item "x"; item "y"; item "x" ])
  in
  Alcotest.(check (list bool)) "all accepted" [ true; true; true ] verdicts;
  check_int "deduped" 1 (delta d "crypto.rsa.verify_batch.deduped");
  check_int "screened" 2 (delta d "crypto.rsa.verify_batch.screened");
  check_int "no fallback" 0 (delta d "crypto.rsa.verify_batch.fallbacks");
  check_int "no per-item verify" 0 (delta d "crypto.rsa.verify.ops");
  (* One forged item: screening fails, the fallback isolates it. *)
  let forged = (key.C.Rsa.pub, "z", sig_of "not z") in
  let (verdicts, d) =
    counted (fun () -> C.Rsa.verify_batch [ item "x"; forged ])
  in
  Alcotest.(check (list bool)) "forged isolated" [ true; false ] verdicts;
  check_bool "fallback taken" true
    (delta d "crypto.rsa.verify_batch.fallbacks" > 0)

let batch_structural_rejects () =
  let key = Lazy.force key_a in
  let good = (key.C.Rsa.pub, "ok", C.Rsa.sign key "ok") in
  let wrong_len = (key.C.Rsa.pub, "ok", "short") in
  let too_big =
    (key.C.Rsa.pub, "ok", String.make (C.Rsa.key_size key.C.Rsa.pub) '\xff')
  in
  Alcotest.(check (list bool))
    "structural misfits rejected without smearing" [ true; false; false ]
    (C.Rsa.verify_batch [ good; wrong_len; too_big ])

(* ---- Commitment cache vs the uncached derived-commitment oracle --------- *)

let cache_matches_commit_derived =
  qtest ~count:150 "Cache.commit ≡ commit_derived (incl. 1-byte fast path)"
    QCheck2.Gen.(
      triple (string_size (int_range 1 24)) (string_size (int_range 0 40))
        (oneof [ string_size (int_range 0 5); oneofl [ "0"; "1" ] ]))
    (fun (key, context, value) ->
      let cache = C.Commitment.Cache.create ~key () in
      let c1, o1 = C.Commitment.Cache.commit cache ~context value in
      let c2, o2 = C.Commitment.commit_derived ~key ~context value in
      (c1 :> string) = (c2 :> string)
      && o1.C.Commitment.nonce = o2.C.Commitment.nonce
      && o1.C.Commitment.value = o2.C.Commitment.value)

let vector_matches_per_bit () =
  let mk () = C.Commitment.Cache.create ~key:"vec-salt" () in
  let ctx i = Printf.sprintf "p|q|%d" (i + 1) in
  let bits = [ false; false; true; true; true ] in
  let per_bit =
    let c = mk () in
    List.mapi (fun i b -> C.Commitment.Cache.commit_bit c ~context:(ctx i) b) bits
  in
  let vectored =
    C.Commitment.Cache.commit_bit_vector (mk ()) ~vertex:"p|q" ~context:ctx bits
  in
  List.iter2
    (fun (c1, o1) (c2, o2) ->
      check "commitment" (C.Commitment.to_hex c1) (C.Commitment.to_hex c2);
      check "nonce" o1.C.Commitment.nonce o2.C.Commitment.nonce)
    per_bit vectored

let vector_hit_accounting () =
  let cache = C.Commitment.Cache.create ~key:"vh-salt" () in
  let ctx i = Printf.sprintf "v|%d" i in
  let bits = [ true; false; true; false ] in
  let commit () =
    C.Commitment.Cache.commit_bit_vector cache ~vertex:"v" ~context:ctx bits
  in
  let first, d1 = counted commit in
  check_int "first pass misses per bit" 4
    (delta d1 "crypto.commitment.cache.misses");
  check_int "no vector hit yet" 0 (delta d1 "crypto.commitment.cache.vector.hits");
  let second, d2 = counted commit in
  check_int "vector hit" 1 (delta d2 "crypto.commitment.cache.vector.hits");
  check_int "counts one hit per bit" 4 (delta d2 "crypto.commitment.cache.hits");
  check_int "no sha256 on a vector hit" 0 (delta d2 "crypto.sha256.ops");
  List.iter2
    (fun (c1, _) (c2, _) ->
      check "stable" (C.Commitment.to_hex c1) (C.Commitment.to_hex c2))
    first second;
  (* A different vertex with the same bit pattern misses the vector memo
     but hits per-bit entries only if its contexts collide — they must not. *)
  let other, d3 =
    counted (fun () ->
        C.Commitment.Cache.commit_bit_vector cache ~vertex:"w"
          ~context:(fun i -> Printf.sprintf "w|%d" i)
          bits)
  in
  check_int "distinct vertex misses" 4 (delta d3 "crypto.commitment.cache.misses");
  List.iter2
    (fun (c1, _) (c2, _) ->
      check_bool "contexts separate vertices" false
        (C.Commitment.to_hex c1 = C.Commitment.to_hex c2))
    first other

let rotation_invalidates () =
  let cache = C.Commitment.Cache.create ~period:3 ~key:"salt-3" () in
  check_int "period" 3 (C.Commitment.Cache.period cache);
  let c1, _ = C.Commitment.Cache.commit_bit cache ~context:"x" true in
  let (_ : C.Commitment.commitment * C.Commitment.opening) =
    C.Commitment.Cache.commit_bit_vector cache ~vertex:"v"
      ~context:(fun _ -> "y") [ true ]
    |> List.hd
  in
  check_bool "warm" true (C.Commitment.Cache.size cache > 0);
  (* Same period and key: a no-op, entries survive. *)
  C.Commitment.Cache.rotate cache ~period:3 ~key:"salt-3";
  let (_, d) =
    counted (fun () -> C.Commitment.Cache.commit_bit cache ~context:"x" true)
  in
  check_int "no-op rotation keeps entries" 1
    (delta d "crypto.commitment.cache.hits");
  (* New period: everything (both memo levels) is dropped and re-keyed. *)
  C.Commitment.Cache.rotate cache ~period:4 ~key:"salt-4";
  check_int "rotated period" 4 (C.Commitment.Cache.period cache);
  check_int "rotation clears" 0 (C.Commitment.Cache.size cache);
  let c2, d = counted (fun () -> C.Commitment.Cache.commit_bit cache ~context:"x" true) in
  check_int "recomputes after rotation" 1
    (delta d "crypto.commitment.cache.misses");
  check_bool "new salt, new commitment" false
    (C.Commitment.to_hex c1 = C.Commitment.to_hex (fst c2));
  check_bool "matches uncached oracle" true
    (C.Commitment.to_hex (fst c2)
    = C.Commitment.to_hex
        (fst (C.Commitment.commit_derived ~key:"salt-4" ~context:"x" "1")))

let suite =
  [
    ("sha256 FIPS 180-4 KATs: one-shot", `Quick, sha256_kat_oneshot);
    ("sha256 FIPS 180-4 KATs: reused ctx", `Quick, sha256_kat_reused_ctx);
    ("sha256 FIPS 180-4 KATs: multi-buffer", `Quick, sha256_kat_multi_buffer);
    ("sha256 FIPS 180-4 KATs: fixed-width", `Quick, sha256_kat_fixed_width);
    ("sha256 FIPS 180-4 KATs: parts", `Quick, sha256_kat_parts);
    ("sha256 million-a streaming", `Slow, sha256_kat_million_a_streaming);
    ("sha256 block-boundary updates", `Quick, sha256_block_boundary_updates);
    ("sha256 copy forks midstate", `Quick, sha256_copy_midstate);
    sha256_fixed_differential;
    sha256_many_differential;
    ("hmac RFC 4231 both paths", `Quick, hmac_rfc4231_both_paths);
    hmac_key_differential;
    mont_differential;
    ("mod_pow edge cases", `Quick, mont_edge_cases);
    ("mod_pow naive toggle", `Quick, mont_toggle_roundtrip);
    crt_sign_differential;
    ("CRT sign at 1024 bits", `Slow, crt_sign_1024);
    batch_differential;
    ("verify_batch rejects exactly forged", `Quick, batch_rejects_exactly_forged);
    ( "verify_batch screening/dedup counters",
      `Quick,
      batch_screening_and_dedup_counters );
    ("verify_batch structural rejects", `Quick, batch_structural_rejects);
    cache_matches_commit_derived;
    ("vector commit ≡ per-bit", `Quick, vector_matches_per_bit);
    ("vector hit accounting", `Quick, vector_hit_accounting);
    ("salt rotation invalidates cache", `Quick, rotation_invalidates);
  ]
