(* Tests for pvr_store and the engine's checkpoint/resume machinery: CRC
   framing, atomic whole-file writes, journal append/recover roundtrips
   (with counter cross-checks), torn-tail and corrupt-frame recovery, the
   decoder-robustness property (any bit-flip/truncation of a journal or
   snapshot is cleanly rejected or safely truncated — never an exception),
   resume equivalence at every epoch boundary for jobs 1/4 and cache
   on/off, and the CLI's exit-code contract (0 ok, 1 violation, 2 usage,
   3 unrecoverable store). *)

module P = Pvr
module E = Pvr_engine.Engine
module Persist = Pvr_engine.Persist
module G = Pvr_bgp
module C = Pvr_crypto
module N = Pvr_net
module S = Pvr_store.Store
module AF = Pvr_store.Atomic_file
module Codec = Pvr_store.Codec
module Crc32 = Pvr_store.Crc32

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let counted = Test_engine.counted
let delta = Test_engine.delta

(* Fresh scratch directories under the system temp dir, removed best-effort
   at the end of each test. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pvr-test-store-%d-%d" (Unix.getpid ()) !n)

let rm_rf dir =
  try
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  with Sys_error _ | Unix.Unix_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ---- crc32 ---------------------------------------------------------------------- *)

let crc32_known_vectors () =
  (* The IEEE 802.3 check value, and a couple of fixed points. *)
  check_int "123456789" 0xCBF43926 (Crc32.digest "123456789");
  check_int "empty" 0 (Crc32.digest "");
  check_int "'a'" 0xE8B7BE43 (Crc32.digest "a")

let crc32_update_composes =
  qtest "crc32: update composes over any split"
    QCheck2.Gen.(pair string (int_bound 64))
    (fun (s, cut) ->
      let cut = if String.length s = 0 then 0 else cut mod String.length s in
      let a = String.sub s 0 cut
      and b = String.sub s cut (String.length s - cut) in
      Crc32.digest s = Crc32.update (Crc32.update 0 a) b)

(* ---- atomic file ---------------------------------------------------------------- *)

let atomic_write_replaces () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "out.json" in
      AF.write ~fsync:false path "first";
      check_string "initial write" "first" (read_file path);
      AF.write ~fsync:false path "second, longer content";
      check_string "atomic replace" "second, longer content" (read_file path);
      (* No temp files may survive the happy path. *)
      check_int "only the target remains" 1 (Array.length (Sys.readdir dir)))

(* ---- codec ---------------------------------------------------------------------- *)

let codec_roundtrip () =
  let buf = Buffer.create 64 in
  Codec.u32 buf 0;
  Codec.u32 buf 0xFFFF_FFFF;
  Codec.str buf "";
  Codec.str buf (String.make 300 '\x00');
  Codec.bool_ buf true;
  Codec.bool_ buf false;
  let payload = Buffer.contents buf in
  match
    Codec.decode payload (fun r ->
        let a = Codec.get_u32 r in
        let b = Codec.get_u32 r in
        let s1 = Codec.get_str r in
        let s2 = Codec.get_str r in
        let t = Codec.get_bool r in
        let f = Codec.get_bool r in
        (a, b, s1, s2, t, f))
  with
  | Error e -> Alcotest.fail e
  | Ok (a, b, s1, s2, t, f) ->
      check_int "u32 zero" 0 a;
      check_int "u32 max" 0xFFFF_FFFF b;
      check_string "empty str" "" s1;
      check_string "binary str" (String.make 300 '\x00') s2;
      check_bool "true" true t;
      check_bool "false" false f

let codec_rejects_trailing () =
  let buf = Buffer.create 8 in
  Codec.u32 buf 7;
  let payload = Buffer.contents buf ^ "junk" in
  match Codec.decode payload Codec.get_u32 with
  | Ok _ -> Alcotest.fail "trailing bytes must be rejected"
  | Error _ -> ()

(* ---- journal roundtrip + counters ----------------------------------------------- *)

let journal_roundtrip_counters () =
  with_dir (fun dir ->
      let payloads = List.init 5 (fun i -> Printf.sprintf "payload-%d-%s" i (String.make i 'x')) in
      let (), d_append =
        counted (fun () ->
            let s = S.open_ ~fsync:true ~dir () in
            List.iter (S.append s) payloads;
            S.write_snapshot s ~epoch:4 "snapshot-blob";
            S.close s)
      in
      (* Counter cross-check: accounted journal bytes = physical file size. *)
      let journal_size =
        (Unix.stat (S.journal_path ~dir)).Unix.st_size
      in
      check_int "journal.bytes = file size" journal_size
        (delta d_append "store.journal.bytes");
      check_int "journal.appends" 5 (delta d_append "store.journal.appends");
      check_int "snapshot.writes" 1 (delta d_append "store.snapshot.writes");
      check_bool "fsync.count > 0" true (delta d_append "store.fsync.count" > 0);
      let rc, d_rec = counted (fun () -> S.recover ~quiet:true ~dir ()) in
      check_bool "frames roundtrip" true (rc.S.rc_frames = payloads);
      check_int "replay.frames" 5 (delta d_rec "store.replay.frames");
      check_int "nothing dropped" 0 rc.S.rc_dropped;
      check_int "nothing truncated" 0 rc.S.rc_truncated_bytes;
      match rc.S.rc_snapshots with
      | [ (4, blob) ] -> check_string "snapshot payload" "snapshot-blob" blob
      | _ -> Alcotest.fail "expected exactly one snapshot")

let journal_truncates_torn_tail () =
  with_dir (fun dir ->
      let s = S.open_ ~fsync:false ~dir () in
      List.iter (S.append s) [ "alpha"; "beta"; "gamma" ];
      S.close s;
      let jp = S.journal_path ~dir in
      let full = read_file jp in
      (* Tear mid-way through the last frame, as a crash during write would. *)
      write_file jp (String.sub full 0 (String.length full - 3));
      let rc = S.recover ~quiet:true ~dir () in
      check_bool "valid prefix survives" true
        (rc.S.rc_frames = [ "alpha"; "beta" ]);
      check_int "one frame dropped" 1 rc.S.rc_dropped;
      check_bool "tail bytes accounted" true (rc.S.rc_truncated_bytes > 0);
      (* Recovery physically truncated the journal: a second recovery is
         clean and appending resumes from a frame boundary. *)
      let rc2 = S.recover ~quiet:true ~dir () in
      check_int "second recovery clean" 0 rc2.S.rc_dropped;
      let s = S.open_ ~fsync:false ~dir () in
      S.append s "delta";
      S.close s;
      let rc3 = S.recover ~quiet:true ~dir () in
      check_bool "append after truncation" true
        (rc3.S.rc_frames = [ "alpha"; "beta"; "delta" ]))

let corrupt_mid_frame_drops_suffix () =
  with_dir (fun dir ->
      let s = S.open_ ~fsync:false ~dir () in
      List.iter (S.append s) [ "alpha"; "beta"; "gamma" ];
      S.close s;
      let jp = S.journal_path ~dir in
      let full = read_file jp in
      (* Flip one byte inside the second frame's payload. *)
      let off = (String.length full / 2) + 1 in
      let mangled =
        String.mapi
          (fun i c -> if i = off then Char.chr (Char.code c lxor 0x40) else c)
          full
      in
      write_file jp mangled;
      let rc = S.recover ~quiet:true ~dir () in
      check_bool "prefix before corruption survives" true
        (match rc.S.rc_frames with "alpha" :: _ -> true | _ -> false);
      check_bool "corrupt frame not replayed" true
        (not (List.mem "gamma" rc.S.rc_frames)
        || not (List.mem "beta" rc.S.rc_frames));
      check_bool "drops counted" true (rc.S.rc_dropped > 0))

let corrupt_snapshot_skipped () =
  with_dir (fun dir ->
      let s = S.open_ ~fsync:false ~dir () in
      S.append s "frame";
      S.write_snapshot s ~epoch:1 "old-good";
      S.write_snapshot s ~epoch:2 "new-good";
      S.close s;
      let sp = S.snapshot_path ~dir ~epoch:2 in
      let b = read_file sp in
      write_file sp
        (String.mapi
           (fun i c -> if i = String.length b - 1 then '\xFF' else c)
           b);
      let rc = S.recover ~quiet:true ~dir () in
      (* The mangled newest snapshot is dropped; recovery falls back. *)
      check_bool "fell back to older snapshot" true
        (match rc.S.rc_snapshots with (1, "old-good") :: _ -> true | _ -> false);
      check_bool "corruption counted" true (rc.S.rc_dropped > 0))

(* ---- decoder robustness (qcheck) ------------------------------------------------ *)

(* A pristine store (journal + snapshots) built once; each property
   iteration mangles a byte-level copy and recovery must neither raise nor
   replay mangled bytes as valid frames beyond the CRC's reach. *)
let pristine_store =
  lazy
    (let dir = fresh_dir () in
     let s = S.open_ ~fsync:false ~dir () in
     for i = 1 to 6 do
       S.append s (Printf.sprintf "frame-%d-%s" i (String.make (7 * i) 'p'))
     done;
     S.write_snapshot s ~epoch:3 (String.make 200 's');
     S.write_snapshot s ~epoch:6 (String.make 120 't');
     S.close s;
     let jbytes = read_file (S.journal_path ~dir) in
     let s6 = read_file (S.snapshot_path ~dir ~epoch:6) in
     (dir, jbytes, s6))

let recover_never_raises_on_mangled_journal =
  qtest ~count:60 "store: recover never raises on mangled journal"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let dir, pristine, _ = Lazy.force pristine_store in
      let rng = C.Drbg.of_int_seed seed in
      write_file (S.journal_path ~dir) (N.Fuzz.mangle rng pristine);
      let rc = S.recover ~quiet:true ~dir () in
      (* Every frame recovery replays is byte-identical to one of the
         originals: the CRC guards content, never silently mangled bytes.
         (A mangle that splices the journal can reorder whole valid frames
         — position integrity is the resume layer's run-id/epoch check.) *)
      let originals =
        List.init 6 (fun i ->
            Printf.sprintf "frame-%d-%s" (i + 1) (String.make (7 * (i + 1)) 'p'))
      in
      List.for_all (fun f -> List.mem f originals) rc.S.rc_frames)

let recover_never_raises_on_mangled_snapshot =
  qtest ~count:40 "store: recover never raises on mangled snapshot"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let dir, pristine, snap6 = Lazy.force pristine_store in
      let rng = C.Drbg.of_int_seed (seed + 7) in
      write_file (S.journal_path ~dir) pristine;
      let sp = S.snapshot_path ~dir ~epoch:6 in
      write_file sp (N.Fuzz.mangle rng snap6);
      let rc = S.recover ~quiet:true ~dir () in
      (* Restore the pristine snapshot file for the next iteration. *)
      write_file sp snap6;
      (* Every snapshot recovery returns is CRC-valid: epoch 6 either
         survives byte-identical or is dropped; epoch 3 is untouched. *)
      List.for_all
        (fun (e, blob) ->
          match e with
          | 6 -> blob = String.make 120 't'
          | 3 -> blob = String.make 200 's'
          | _ -> false)
        rc.S.rc_snapshots
      && List.mem_assoc 3 rc.S.rc_snapshots)

let persist_decode_never_raises =
  qtest ~count:60 "persist: epoch-record decoder never raises"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = C.Drbg.of_int_seed (seed + 13) in
      let er =
        {
          Persist.er_epoch = 3;
          er_period = 1;
          er_changes = 2;
          er_msgs = 17;
          er_vertices = 9;
          er_dirty = 4;
          er_skipped = 5;
          er_detected = 0;
          er_convicted = 0;
          er_digest = String.make 64 'd';
          er_rib = String.make 64 'r';
          er_run_id = String.make 64 'i';
        }
      in
      let good = Persist.encode_epoch er in
      (match Persist.decode_epoch good with
      | Ok er' when er' = er -> ()
      | _ -> QCheck2.Test.fail_report "roundtrip failed");
      match Persist.decode_epoch (N.Fuzz.mangle rng good) with
      | Ok _ | Error _ -> true)

let checkpoint_info_never_raises =
  qtest ~count:40 "checkpoint: info/load never raise on mangled blobs"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = C.Drbg.of_int_seed (seed + 29) in
      let blob = N.Fuzz.mangle rng (String.make 64 'b') in
      match E.Checkpoint.info blob with Ok _ | Error _ -> true)

(* ---- resume equivalence --------------------------------------------------------- *)

(* Engine world sharing Test_engine's topology and keyring (keygen
   dominates test runtime).  Same construction as Test_engine.run_engine,
   with the epoch loop factored so it can stop, resume and continue. *)
let mk_world ~jobs ~cache seed =
  let topo = Lazy.force Test_engine.etopo in
  let sim = G.Simulator.create topo in
  let origins =
    List.sort (fun a b -> G.Asn.compare b a) (G.Topology.ases topo)
    |> List.filteri (fun i _ -> i < 2)
    |> List.rev
  in
  let churn =
    G.Update_gen.Churn.create ~anycast:2 ~origins ~prefixes_per_origin:2 ()
  in
  let churn_rng = C.Drbg.of_int_seed seed in
  let eng =
    E.create ~jobs ~cache ~salt_every:3 ~max_path_len:8
      (C.Drbg.of_int_seed (seed + 1))
      (Lazy.force Test_engine.ekeyring) ~topology:topo ~sim ()
  in
  let apply ~epoch sim =
    if epoch = 1 then List.length (G.Update_gen.Churn.seed churn sim)
    else List.length (G.Update_gen.Churn.step churn_rng ~turnover:0.3 churn sim)
  in
  (eng, apply)

let run_epochs ~session eng apply ~from ~until =
  for i = from + 1 to until do
    let r = E.epoch ~apply:(apply ~epoch:i) eng in
    Option.iter (fun s -> Persist.record s eng r) session
  done

let resume_equivalence () =
  let seed = 77 and epochs = 4 in
  List.iter
    (fun (jobs_a, cache_a, jobs_b, cache_b) ->
      (* Uninterrupted reference run. *)
      let ref_eng, ref_apply = mk_world ~jobs:jobs_a ~cache:cache_a seed in
      run_epochs ~session:None ref_eng ref_apply ~from:0 ~until:epochs;
      let want = E.digest ref_eng in
      (* Checkpoint + resume at every epoch boundary, including 0 (empty
         store) and [epochs] (nothing left to run). *)
      for boundary = 0 to epochs do
        with_dir (fun dir ->
            let eng1, apply1 = mk_world ~jobs:jobs_a ~cache:cache_a seed in
            let s1 = Persist.start ~fsync:false ~snapshot_every:2 ~dir () in
            run_epochs ~session:(Some s1) eng1 apply1 ~from:0 ~until:boundary;
            Persist.close s1;
            (* "Crash": eng1 is dropped here.  Resume into a fresh engine,
               possibly with a different jobs/cache configuration. *)
            let eng2, apply2 = mk_world ~jobs:jobs_b ~cache:cache_b seed in
            match Persist.resume ~quiet:true ~dir ~engine:eng2 ~apply:apply2 () with
            | Error e ->
                Alcotest.failf "resume at boundary %d: %s" boundary e
            | Ok rs ->
                check_int
                  (Printf.sprintf "resume position (boundary %d)" boundary)
                  boundary rs.Persist.rs_epoch;
                let s2 =
                  Persist.start ~fsync:false ~snapshot_every:2 ~dir ()
                in
                run_epochs ~session:(Some s2) eng2 apply2 ~from:rs.Persist.rs_epoch
                  ~until:epochs;
                Persist.close s2;
                check_string
                  (Printf.sprintf
                     "digest (boundary %d, jobs %d->%d, cache %b->%b)" boundary
                     jobs_a jobs_b cache_a cache_b)
                  want (E.digest eng2))
      done)
    [ (1, true, 1, true); (1, true, 4, true); (4, false, 1, false) ]

let resume_after_torn_journal () =
  (* Kill simulation: run 4 epochs with snapshots every 2, tear the journal
     tail and delete the newest snapshot; resume must land on epoch 3
     (snapshot 2 + journal frame 3) and still reach the reference digest. *)
  let seed = 83 and epochs = 4 in
  let ref_eng, ref_apply = mk_world ~jobs:1 ~cache:true seed in
  run_epochs ~session:None ref_eng ref_apply ~from:0 ~until:epochs;
  let want = E.digest ref_eng in
  with_dir (fun dir ->
      let eng1, apply1 = mk_world ~jobs:1 ~cache:true seed in
      let s1 = Persist.start ~fsync:false ~snapshot_every:2 ~dir () in
      run_epochs ~session:(Some s1) eng1 apply1 ~from:0 ~until:epochs;
      Persist.close s1;
      let jp = S.journal_path ~dir in
      let full = read_file jp in
      (* Tear the *epoch-4 record* specifically.  The journal also carries
         rows and index-checkpoint frames after each epoch record, so a
         blind tail truncation would only clip those; find the last
         epoch-tagged frame and cut partway into it, leaving epoch 4's
         rows frame behind as an uncommitted orphan. *)
      let last_epoch_off = ref 0 in
      let (), fe =
        S.fold_frames ~dir ~init:()
          ~f:(fun () ~off payload ->
            match Pvr_query.Frame.tag payload with
            | Some t when t = Pvr_query.Frame.tag_epoch -> last_epoch_off := off
            | _ -> ())
          ()
      in
      check_bool "clean walk before tearing" true (fe.S.fe_error = None);
      check_bool "found an epoch frame to tear" true (!last_epoch_off > 0);
      write_file jp (String.sub full 0 (!last_epoch_off + 5));
      Sys.remove (S.snapshot_path ~dir ~epoch:4);
      let eng2, apply2 = mk_world ~jobs:1 ~cache:true seed in
      match Persist.resume ~quiet:true ~dir ~engine:eng2 ~apply:apply2 () with
      | Error e -> Alcotest.fail e
      | Ok rs ->
          check_int "resumed at epoch 3" 3 rs.Persist.rs_epoch;
          check_int "snapshot 2 used" 2 rs.Persist.rs_snapshot_epoch;
          check_bool "torn frame dropped" true (rs.Persist.rs_dropped > 0);
          let s2 = Persist.start ~fsync:false ~snapshot_every:2 ~dir () in
          run_epochs ~session:(Some s2) eng2 apply2 ~from:3 ~until:epochs;
          Persist.close s2;
          check_string "digest after torn-tail resume" want (E.digest eng2))

let resume_rejects_foreign_store () =
  with_dir (fun dir ->
      let eng1, apply1 = mk_world ~jobs:1 ~cache:true 91 in
      let s1 = Persist.start ~fsync:false ~snapshot_every:1 ~dir () in
      run_epochs ~session:(Some s1) eng1 apply1 ~from:0 ~until:2;
      Persist.close s1;
      (* Different seed ⇒ different run id: the store must be refused, not
         silently restarted. *)
      let eng2, apply2 = mk_world ~jobs:1 ~cache:true 92 in
      match Persist.resume ~quiet:true ~dir ~engine:eng2 ~apply:apply2 () with
      | Ok _ -> Alcotest.fail "foreign store must not resume"
      | Error _ -> ())

(* ---- CLI exit codes ------------------------------------------------------------- *)

let cli = "../bin/pvr_cli.exe"

let run_cli args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" cli args)

let cli_exit_codes () =
  with_dir (fun dir ->
        check_int "unknown flag is usage error" 2 (run_cli "engine --bogus-flag");
        check_int "unknown command is usage error" 2 (run_cli "frobnicate");
        check_int "crashsoak kills>epochs is usage error" 2
          (run_cli "crashsoak --kills 9 --epochs 3");
        check_int "clean checkpointed engine run" 0
          (run_cli
             (Printf.sprintf
                "engine --seed 7 --epochs 2 --tiers 1,2 --origins 2 \
                 --checkpoint %s --no-fsync"
                dir));
        check_int "resume continues cleanly" 0
          (run_cli
             (Printf.sprintf
                "engine --seed 7 --epochs 3 --tiers 1,2 --origins 2 \
                 --checkpoint %s --resume --no-fsync"
                dir));
        check_int "wrong-seed resume is unrecoverable" 3
          (run_cli
             (Printf.sprintf
                "engine --seed 8 --epochs 3 --tiers 1,2 --origins 2 \
                 --checkpoint %s --resume --no-fsync"
                dir)))

let cli_crashsoak_smoke () =
  check_int "crashsoak recovers to identical digest" 0
    (run_cli "crashsoak --seed 5 --epochs 4 --kills 2 --tiers 1,2 --origins 2")

let suite =
  [
    Alcotest.test_case "crc32: known vectors" `Quick crc32_known_vectors;
    crc32_update_composes;
    Alcotest.test_case "atomic file: write + replace" `Quick
      atomic_write_replaces;
    Alcotest.test_case "codec: roundtrip" `Quick codec_roundtrip;
    Alcotest.test_case "codec: rejects trailing bytes" `Quick
      codec_rejects_trailing;
    Alcotest.test_case "journal: roundtrip + counter cross-check" `Quick
      journal_roundtrip_counters;
    Alcotest.test_case "journal: torn tail truncated, appends continue" `Quick
      journal_truncates_torn_tail;
    Alcotest.test_case "journal: corrupt mid-frame drops suffix" `Quick
      corrupt_mid_frame_drops_suffix;
    Alcotest.test_case "snapshot: corrupt newest falls back" `Quick
      corrupt_snapshot_skipped;
    recover_never_raises_on_mangled_journal;
    recover_never_raises_on_mangled_snapshot;
    persist_decode_never_raises;
    checkpoint_info_never_raises;
    Alcotest.test_case "resume: equivalence at every epoch boundary" `Slow
      resume_equivalence;
    Alcotest.test_case "resume: torn journal + lost snapshot" `Quick
      resume_after_torn_journal;
    Alcotest.test_case "resume: rejects foreign store" `Quick
      resume_rejects_foreign_store;
    Alcotest.test_case "cli: exit-code contract" `Slow cli_exit_codes;
    Alcotest.test_case "cli: crashsoak smoke" `Slow cli_crashsoak_smoke;
  ]
