(* Internet-scale layer: the synthetic power-law generator's Gao–Rexford
   invariants, hash-consed route interning, static shard scheduling, and the
   differential oracle — interned and plain representations must produce
   identical Decision outcomes, RIB digests and engine report digests on
   random topologies and churn schedules. *)

module P = Pvr
module E = Pvr_engine.Engine
module Pool = Pvr_engine.Pool
module G = Pvr_bgp
module C = Pvr_crypto

let asn = G.Asn.of_int
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Interning is a process-wide toggle: every test that flips it restores the
   default so suites running later see the plain representation. *)
let with_intern enabled f =
  Fun.protect
    ~finally:(fun () -> G.Intern.set_enabled false)
    (fun () ->
      G.Intern.set_enabled enabled;
      f ())

(* ---- generator: structural invariants -------------------------------------------- *)

let gen_topo ?(ases = 60) seed =
  G.Topology.generate (C.Drbg.of_int_seed seed) ~ases ()

let connected t =
  match G.Topology.ases t with
  | [] -> true
  | root :: _ ->
      let seen = Hashtbl.create 64 in
      let rec bfs = function
        | [] -> ()
        | x :: rest ->
            if Hashtbl.mem seen x then bfs rest
            else begin
              Hashtbl.add seen x ();
              bfs (List.map fst (G.Topology.neighbors t x) @ rest)
            end
      in
      bfs [ root ];
      List.for_all (Hashtbl.mem seen) (G.Topology.ases t)

let generate_deterministic =
  qtest "generate: deterministic per seed" QCheck2.Gen.small_int (fun seed ->
      let links t =
        List.map
          (fun (l : G.Topology.link) -> (l.G.Topology.a, l.G.Topology.b, l.G.Topology.rel_ab))
          (G.Topology.links t)
      in
      links (gen_topo seed) = links (gen_topo seed))

let generate_connected =
  qtest "generate: connected" QCheck2.Gen.(1 -- 200) (fun ases ->
      connected (gen_topo ~ases 7))

let generate_provider_order =
  qtest "generate: providers have smaller ASNs (acyclic)"
    QCheck2.Gen.small_int (fun seed ->
      let t = gen_topo seed in
      List.for_all
        (fun x ->
          List.for_all
            (fun (y, rel) ->
              (* [rel] is what [y] is to [x]: a provider must predate its
                 customer in attachment order, so the customer/provider
                 digraph cannot contain a cycle. *)
              not (G.Relationship.equal rel G.Relationship.Provider)
              || G.Asn.compare y x < 0)
            (G.Topology.neighbors t x))
        (G.Topology.ases t))

let generate_every_as_reachable_up () =
  (* Every non-clique AS has at least one provider; the clique peers. *)
  let t = gen_topo ~ases:120 3 in
  let tiers = G.Topology.tiers t in
  let clique =
    List.filter (fun a -> G.Asn.Map.find a tiers = 0) (G.Topology.ases t)
  in
  check_bool "clique is small" true (List.length clique <= 16);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (G.Asn.equal a b) then
            check_bool "tier-1 ASes peer" true
              (G.Topology.relationship t a b = Some G.Relationship.Peer))
        clique)
    clique;
  List.iter
    (fun a ->
      if G.Asn.Map.find a tiers > 0 then
        check_bool
          (Printf.sprintf "AS %d has a provider" (G.Asn.to_int a))
          true
          (List.exists
             (fun (_, rel) -> G.Relationship.equal rel G.Relationship.Provider)
             (G.Topology.neighbors t a)))
    (G.Topology.ases t)

let generate_tiered_prefixes () =
  let t = gen_topo ~ases:150 11 in
  let plan = G.Topology.tiered_prefixes t in
  check_int "one prefix per AS" (G.Topology.size t) (List.length plan);
  let churn_space = G.Prefix.of_string "10.0.0.0/8" in
  List.iter
    (fun (a, p) ->
      check_bool "disjoint from churn 10/8" false
        (G.Prefix.contains churn_space p || G.Prefix.contains p churn_space);
      let len_class =
        match Option.get (G.Topology.tier t a) with
        | 0 -> 8
        | 1 -> 16
        | _ -> 24
      in
      check_int
        (Printf.sprintf "AS %d prefix length" (G.Asn.to_int a))
        len_class
        (let { G.Prefix.len; _ } = p in
         len))
    plan;
  (* Pairwise disjoint: no plan prefix contains another. *)
  List.iteri
    (fun i (_, p) ->
      List.iteri
        (fun j (_, q) ->
          if i <> j then
            check_bool "plan prefixes disjoint" false (G.Prefix.contains p q))
        plan)
    plan

(* ---- generator: valley-free behaviour -------------------------------------------- *)

(* Classify each propagation step of [path] (nearest-first, as stored in a
   route) walking from the origin towards the vantage point, and require the
   Gao–Rexford shape: uphill (from customers) first, then at most one
   peer-crossing, then downhill only. *)
let valley_free t path =
  let steps =
    let rec pairs = function
      | x :: (y :: _ as rest) -> (x, y) :: pairs rest
      | _ -> []
    in
    (* reversed: origin first *)
    pairs (List.rev path)
  in
  let ok = ref true in
  let downhill = ref false in
  List.iter
    (fun (sender, receiver) ->
      match G.Topology.relationship t receiver sender with
      | None -> ok := false (* route crossed a non-existent link *)
      | Some G.Relationship.Customer -> if !downhill then ok := false
      | Some G.Relationship.Peer ->
          if !downhill then ok := false;
          downhill := true
      | Some G.Relationship.Provider -> downhill := true)
    steps;
  !ok

let generate_valley_free =
  qtest ~count:10 "generate: simulated paths are valley-free"
    QCheck2.Gen.small_int (fun seed ->
      let t = gen_topo ~ases:50 seed in
      let sim = G.Simulator.create t in
      (* Originate from a handful of stubs (latest arrivals). *)
      let origins = List.init 3 (fun i -> asn (50 - i)) in
      List.iteri
        (fun i o ->
          G.Simulator.originate sim ~asn:o
            (G.Prefix.make ~addr:((172 + i) lsl 24) ~len:8))
        origins;
      let _ = G.Simulator.run sim in
      let paths =
        List.concat_map
          (fun a ->
            List.concat_map
              (fun p ->
                List.map
                  (fun (r : G.Route.t) -> r.G.Route.as_path)
                  (G.Simulator.received_routes sim ~asn:a p))
              (G.Rib.prefixes (G.Simulator.rib sim a)))
          (G.Topology.ases t)
      in
      paths <> [] && List.for_all (valley_free t) paths)

let generate_gao_inference_sane () =
  (* The inference attack should beat coin-flipping on a generated
     power-law internet, exactly as on the handcrafted hierarchy. *)
  let t = gen_topo ~ases:60 17 in
  let sim = G.Simulator.create t in
  List.iter
    (fun (a, p) -> G.Simulator.originate sim ~asn:a p)
    (List.filteri (fun i _ -> i mod 4 = 0) (G.Topology.tiered_prefixes t));
  let _ = G.Simulator.run sim in
  let paths =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun p ->
            List.map
              (fun (r : G.Route.t) -> r.G.Route.as_path)
              (G.Simulator.received_routes sim ~asn:a p))
          (G.Rib.prefixes (G.Simulator.rib sim a)))
      (G.Topology.ases t)
  in
  let inferred = G.Gao_inference.infer ~degree:(G.Topology.degree t) paths in
  check_bool "inferred something" true (inferred <> []);
  check_bool "accuracy beats chance" true
    (G.Gao_inference.accuracy ~truth:t inferred > 0.5)

(* ---- route: structural equality and ordering -------------------------------------- *)

let mk_route ~addr ~len ~path ~lp ~med ~origin ~communities =
  match path with
  | [] -> invalid_arg "mk_route: empty path"
  | first :: _ ->
      {
        G.Route.prefix = G.Prefix.make ~addr ~len;
        as_path = List.map asn path;
        next_hop = asn first;
        local_pref = lp;
        med;
        origin;
        communities;
      }

let route_gen =
  let open QCheck2.Gen in
  let origin =
    oneofl [ G.Route.Igp; G.Route.Egp; G.Route.Incomplete ]
  in
  let* addr = int_bound 0xFF
  and* len = 8 -- 32
  and* path = list_size (1 -- 5) (1 -- 50)
  and* lp = 0 -- 200
  and* med = 0 -- 3
  and* origin = origin
  and* communities = list_size (0 -- 2) (pair (0 -- 3) (0 -- 3)) in
  return
    (mk_route ~addr:(addr lsl 24) ~len ~path ~lp ~med ~origin ~communities)

(* A structurally-equal but physically-distinct copy. *)
let deep_copy (r : G.Route.t) =
  {
    r with
    G.Route.as_path = List.map Fun.id r.G.Route.as_path;
    communities = List.map (fun c -> c) r.G.Route.communities;
  }

let route_equal_structural =
  qtest ~count:200 "route: equal is structural (copies compare equal)"
    route_gen (fun r ->
      let c = deep_copy r in
      (not (r == c)) && G.Route.equal r c && G.Route.compare r c = 0)

let route_equal_iff_encode =
  qtest ~count:200 "route: equal iff encodings match"
    QCheck2.Gen.(pair route_gen route_gen) (fun (a, b) ->
      G.Route.equal a b = (G.Route.encode a = G.Route.encode b))

let route_compare_coherent =
  qtest ~count:200 "route: compare is antisymmetric and agrees with equal"
    QCheck2.Gen.(pair route_gen route_gen) (fun (a, b) ->
      let c = G.Route.compare a b in
      Int.compare c 0 = -Int.compare (G.Route.compare b a) 0
      && (c = 0) = G.Route.equal a b)

(* ---- interning -------------------------------------------------------------------- *)

let sample_route i =
  mk_route ~addr:(10 lsl 24) ~len:24
    ~path:[ 3 + (i mod 4); 2; 1 ]
    ~lp:100 ~med:0 ~origin:G.Route.Igp ~communities:[]

let intern_canonicalizes () =
  with_intern true @@ fun () ->
  G.Intern.reset ();
  let a = G.Intern.route (sample_route 0) in
  let b = G.Intern.route (deep_copy (sample_route 0)) in
  check_bool "same canonical representative" true (a == b);
  check_bool "structurally intact" true (G.Route.equal a (sample_route 0));
  let c = G.Intern.route (sample_route 1) in
  check_bool "distinct routes stay distinct" false (a == c);
  (* Shared tail: both paths end [2; 1]; whole paths differ, so each path
     interns separately, but equal paths share one spine. *)
  let p1 = G.Intern.path [ asn 9; asn 2; asn 1 ] in
  let p2 = G.Intern.path (List.map Fun.id [ asn 9; asn 2; asn 1 ]) in
  check_bool "equal paths share storage" true (p1 == p2)

let intern_ids_dense () =
  with_intern true @@ fun () ->
  G.Intern.reset ();
  let rs = List.init 6 (fun i -> G.Intern.route (sample_route i)) in
  let ids = List.filter_map G.Intern.route_id rs in
  (* 6 inserts of 4 distinct routes: ids are dense in first-seen order. *)
  check_int "distinct ids" 4 (List.length (List.sort_uniq Int.compare ids));
  List.iter (fun id -> check_bool "id in range" true (id >= 0 && id < 4)) ids;
  let stats = G.Intern.stats () in
  check_int "live routes" 4 stats.G.Intern.live_routes;
  check_bool "live paths bounded" true (stats.G.Intern.live_paths <= 4)

let intern_encode_memo () =
  with_intern true @@ fun () ->
  G.Intern.reset ();
  let r = sample_route 2 in
  check_string "memoized encode bytes" (G.Route.encode r) (G.Intern.encode r);
  check_string "hit returns same bytes" (G.Route.encode r)
    (G.Intern.encode (deep_copy r));
  check_bool "encode table populated" true
    ((G.Intern.stats ()).G.Intern.memoized_encodes = 1)

let intern_disabled_is_identity () =
  G.Intern.set_enabled false;
  let r = sample_route 3 in
  check_bool "route is physical identity" true (G.Intern.route r == r);
  check_bool "path is physical identity" true
    (G.Intern.path r.G.Route.as_path == r.G.Route.as_path);
  check_bool "no ids" true (G.Intern.route_id r = None);
  check_string "encode falls through" (G.Route.encode r) (G.Intern.encode r);
  check_int "tables empty" 0 (G.Intern.stats ()).G.Intern.live_routes

let rib_digest_intern_invariant () =
  let fill () =
    let rib = G.Rib.create () in
    G.Rib.set_in rib ~neighbor:(asn 2) (sample_route 0).G.Route.prefix
      (Some (sample_route 0));
    G.Rib.set_in rib ~neighbor:(asn 3) (sample_route 1).G.Route.prefix
      (Some (sample_route 1));
    G.Rib.set_best rib (sample_route 0).G.Route.prefix (Some (sample_route 0));
    G.Rib.set_out rib ~neighbor:(asn 4) (sample_route 0).G.Route.prefix
      (Some (sample_route 0));
    rib
  in
  let plain = G.Rib.digest (fill ()) in
  let interned = with_intern true (fun () -> G.Rib.digest (fill ())) in
  check_string "digest invariant under interning" plain interned;
  let rib = fill () in
  G.Rib.set_best rib (sample_route 0).G.Route.prefix None;
  check_bool "digest tracks content" false (G.Rib.digest rib = plain)

(* ---- sharded pool ----------------------------------------------------------------- *)

let sharded_matches_dynamic =
  qtest ~count:50 "pool: run_sharded ≡ run, results in task order"
    QCheck2.Gen.(triple (1 -- 40) (1 -- 6) small_int)
    (fun (n, jobs, salt) ->
      let tasks = Array.init n (fun i -> fun () -> (i * i) + salt) in
      let expect = Pool.run ~jobs:1 tasks in
      let shard i = (i * 2654435761) lxor salt in
      Pool.run_sharded ~jobs ~shard tasks = expect)

let sharded_degenerate_shards () =
  (* Constant and negative shard values must still run every task. *)
  let tasks = Array.init 17 (fun i -> fun () -> i + 1) in
  let expect = Array.init 17 (fun i -> i + 1) in
  Alcotest.(check (array int))
    "constant shard" expect
    (Pool.run_sharded ~jobs:4 ~shard:(fun _ -> 5) tasks);
  Alcotest.(check (array int))
    "negative shard" expect
    (Pool.run_sharded ~jobs:3 ~shard:(fun i -> -i) tasks)

let sharded_propagates_exception () =
  let tasks =
    Array.init 9 (fun i ->
        fun () -> if i = 4 then failwith "shard boom" else i)
  in
  List.iter
    (fun jobs ->
      match Pool.run_sharded ~jobs ~shard:Fun.id tasks with
      | _ -> Alcotest.fail "expected exception"
      | exception Failure m ->
          check_string (Printf.sprintf "jobs=%d" jobs) "shard boom" m)
    [ 1; 2; 4 ]

(* ---- differential oracle ----------------------------------------------------------- *)

(* One 16-AS keyring shared by every engine oracle test (keygen dominates). *)
let oracle_ases = 16

let oracle_keyring =
  lazy
    (P.Keyring.create ~bits:512
       (C.Drbg.of_int_seed 990)
       (List.init oracle_ases (fun i -> asn (i + 1))))

(* Run [epochs] of the same seeded workload and return per-epoch report
   digests, the final RIB digest, and every (AS, prefix, best-route
   encoding) decision outcome. *)
let oracle_run ?strategy ~seed ~intern ~jobs ~shards ~cache () =
  with_intern intern @@ fun () ->
  let topo =
    G.Topology.generate (C.Drbg.of_int_seed seed) ~ases:oracle_ases ()
  in
  let origins = List.init 3 (fun i -> asn (oracle_ases - i)) in
  let sim = G.Simulator.create topo in
  let churn =
    G.Update_gen.Churn.create ~anycast:1 ~origins ~prefixes_per_origin:2 ()
  in
  let churn_rng = C.Drbg.of_int_seed (seed + 1) in
  let eng =
    E.create ~jobs ~shards ~cache ~salt_every:2 ?strategy
      (C.Drbg.of_int_seed (seed + 2))
      (Lazy.force oracle_keyring) ~topology:topo ~sim ()
  in
  let digests = ref [] in
  for i = 1 to 3 do
    let apply sim =
      if i = 1 then List.length (G.Update_gen.Churn.seed churn sim)
      else
        List.length (G.Update_gen.Churn.step churn_rng ~turnover:0.4 churn sim)
    in
    let r = E.epoch ~apply eng in
    digests := r.E.ep_digest :: !digests
  done;
  let decisions =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun p ->
            G.Simulator.best_route sim ~asn:a p
            |> Option.map (fun r ->
                   (G.Asn.to_int a, G.Prefix.to_string p, G.Route.encode r)))
          (G.Rib.prefixes (G.Simulator.rib sim a)))
      (G.Topology.ases topo)
  in
  (List.rev !digests, E.rib_digest eng, decisions)

let oracle_intern_transparent () =
  List.iter
    (fun seed ->
      let base = oracle_run ~seed ~intern:false ~jobs:1 ~shards:0 ~cache:true () in
      let interned =
        oracle_run ~seed ~intern:true ~jobs:2 ~shards:3 ~cache:true ()
      in
      let digests0, rib0, dec0 = base and digests1, rib1, dec1 = interned in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: epoch digests" seed)
        digests0 digests1;
      check_string (Printf.sprintf "seed %d: rib digest" seed) rib0 rib1;
      check_bool
        (Printf.sprintf "seed %d: decision outcomes" seed)
        true (dec0 = dec1);
      check_bool "outcomes non-trivial" true (dec0 <> []))
    [ 2; 29; 631 ]

let oracle_shards_jobs_invariant () =
  let seed = 77 in
  let base = oracle_run ~seed ~intern:true ~jobs:1 ~shards:0 ~cache:true () in
  List.iter
    (fun (jobs, shards, cache) ->
      let d, rib, dec = oracle_run ~seed ~intern:true ~jobs ~shards ~cache () in
      let d0, rib0, dec0 = base in
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d shards=%d cache=%b" jobs shards cache)
        d0 d;
      check_string "rib" rib0 rib;
      check_bool "decisions" true (dec = dec0))
    [ (2, 1, true); (2, 5, true); (3, 7, true); (1, 4, false) ]

(* PR 6: adversarial rounds keep the whole determinism contract — a
   strategy mixing fast and fault-runner paths (cross-shard equivocation
   picks its dirty subset by vertex hash) must produce byte-identical
   digests and decisions for any jobs/shards/intern/cache setting. *)
let oracle_adversary_invariant () =
  let strategy = P.Adversary.Cross_shard { shards = 4; target = 1 } in
  let seed = 91 in
  let base =
    oracle_run ~strategy ~seed ~intern:true ~jobs:1 ~shards:0 ~cache:true ()
  in
  let d0, rib0, dec0 = base in
  List.iter
    (fun (intern, jobs, shards, cache) ->
      let d, rib, dec =
        oracle_run ~strategy ~seed ~intern ~jobs ~shards ~cache ()
      in
      Alcotest.(check (list string))
        (Printf.sprintf "intern=%b jobs=%d shards=%d cache=%b" intern jobs
           shards cache)
        d0 d;
      check_string "rib" rib0 rib;
      check_bool "decisions" true (dec = dec0))
    [ (false, 2, 3, true); (true, 3, 5, true); (true, 1, 0, false) ]

let suite =
  [
    generate_deterministic;
    generate_connected;
    generate_provider_order;
    ("generate: clique peers, everyone has a provider", `Quick,
     generate_every_as_reachable_up);
    ("generate: tiered address plan", `Quick, generate_tiered_prefixes);
    generate_valley_free;
    ("generate: gao inference beats chance", `Quick, generate_gao_inference_sane);
    route_equal_structural;
    route_equal_iff_encode;
    route_compare_coherent;
    ("intern: canonical representatives", `Quick, intern_canonicalizes);
    ("intern: dense stable ids", `Quick, intern_ids_dense);
    ("intern: memoized encode", `Quick, intern_encode_memo);
    ("intern: disabled is identity", `Quick, intern_disabled_is_identity);
    ("rib digest: interning-invariant", `Quick, rib_digest_intern_invariant);
    sharded_matches_dynamic;
    ("pool: degenerate shard functions", `Quick, sharded_degenerate_shards);
    ("pool: sharded exception propagation", `Quick, sharded_propagates_exception);
    ("oracle: interning transparent end-to-end", `Slow, oracle_intern_transparent);
    ("oracle: digest invariant across jobs/shards/cache", `Slow,
     oracle_shards_jobs_invariant);
    ("oracle: adversarial runs digest-invariant", `Slow,
     oracle_adversary_invariant);
  ]
