(* Tests for pvr_net (the deterministic fault-injecting transport) and for
   the net-driven verification rounds: ARQ recovery, timeout evidence, the
   decoder fuzz properties, gossip invariance under duplication/reordering,
   counter cross-checks, the zero-fault E8 regression, and the adversarial
   soak asserting §2.3 Accuracy and Detection under fault schedules. *)

module P = Pvr
module G = Pvr_bgp
module C = Pvr_crypto
module N = Pvr_net
module Obs = Pvr_obs

let asn = G.Asn.of_int
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prefix0 = G.Prefix.of_string "10.0.0.0/8"
let a_as = asn 1
let b_as = asn 100
let providers = List.init 3 (fun i -> asn (10 + i))

(* One shared keyring for the whole suite: keygen dominates runtime. *)
let keyring =
  lazy
    (P.Keyring.create ~bits:512
       (C.Drbg.of_int_seed 4242)
       (a_as :: b_as :: providers))

let mk_route n len =
  let path = List.init len (fun j -> if j = 0 then n else asn (3000 + j)) in
  let base = G.Route.originate ~asn:n prefix0 in
  { base with G.Route.as_path = path; next_hop = n }

let routes_for lens =
  List.map2 (fun n len -> (n, mk_route n len)) providers lens

let max_path_len = 8

let run_faulty ?(faults = P.Runner.perfect_faults) ?(lens = [ 2; 3; 4 ]) beh
    seed =
  P.Runner.min_round_faulty ~max_path_len ~faults beh
    (C.Drbg.of_int_seed seed) (Lazy.force keyring) ~prover:a_as
    ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~routes:(routes_for lens)

let drop_faults =
  {
    P.Runner.perfect_faults with
    P.Runner.fp_policy = N.faulty ~drop:0.15 ~duplicate:0.05 ~delay_max:2 ();
  }

(* ---- transport ------------------------------------------------------------------ *)

let perfect_delivers_in_order () =
  let net = N.create ~rng:(C.Drbg.of_int_seed 1) () in
  N.send net ~src:a_as ~dst:b_as "one";
  N.send net ~src:a_as ~dst:b_as "two";
  N.send net ~src:b_as ~dst:a_as "three";
  let got = ref [] in
  let ticks =
    N.run net ~handler:(fun ~src:_ ~dst:_ msg -> got := msg :: !got) ()
  in
  check_int "one tick" 1 ticks;
  Alcotest.(check (list string))
    "in order" [ "one"; "two"; "three" ] (List.rev !got);
  check_int "deliveries" 3 (N.stats net).N.deliveries;
  check_int "drops" 0 (N.stats net).N.drops

let drop_all_loses_everything () =
  let net =
    N.create ~policy:(N.faulty ~drop:1.0 ()) ~rng:(C.Drbg.of_int_seed 2) ()
  in
  N.send net ~src:a_as ~dst:b_as "lost";
  check_int "nothing pending" 0 (N.pending net);
  check_int "drop counted" 1 (N.stats net).N.drops

let duplicate_doubles () =
  let net =
    N.create
      ~policy:(N.faulty ~duplicate:1.0 ())
      ~rng:(C.Drbg.of_int_seed 3) ()
  in
  N.send net ~src:a_as ~dst:b_as "twice";
  let seen = ref 0 in
  let (_ : int) = N.run net ~handler:(fun ~src:_ ~dst:_ _ -> incr seen) () in
  check_int "delivered twice" 2 !seen;
  check_int "duplicate counted" 1 (N.stats net).N.duplicates

let partition_heals () =
  let net =
    N.create
      ~policy:(N.faulty ~partition:true ~heal_at:3 ())
      ~rng:(C.Drbg.of_int_seed 4) ()
  in
  N.send net ~src:a_as ~dst:b_as "early";
  check_int "partitioned away" 1 (N.stats net).N.partition_drops;
  (* Advance time past the healing point, then resend. *)
  for _ = 1 to 3 do
    ignore (N.tick net)
  done;
  N.send net ~src:a_as ~dst:b_as "late";
  let seen = ref [] in
  let (_ : int) =
    N.run net ~handler:(fun ~src:_ ~dst:_ m -> seen := m :: !seen) ()
  in
  Alcotest.(check (list string)) "healed delivery" [ "late" ] !seen

let chaos_preserves_multiset =
  (* Delay + duplication + reordering never lose a message, and the whole
     schedule is a deterministic function of the seed. *)
  qtest "chaos delivery is lossless and seed-deterministic" ~count:30
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let deliveries s =
        let net =
          N.create
            ~policy:(N.faulty ~duplicate:0.3 ~delay_max:4 ~reorder:true ())
            ~rng:(C.Drbg.of_int_seed s) ()
        in
        let payloads = List.init 10 string_of_int in
        List.iter (fun m -> N.send net ~src:a_as ~dst:b_as m) payloads;
        let got = ref [] in
        let (_ : int) =
          N.run net ~handler:(fun ~src:_ ~dst:_ m -> got := m :: !got) ()
        in
        !got
      in
      let got = deliveries seed in
      List.length (List.sort_uniq compare got) = 10
      && deliveries seed = got)

let reliable_recovers_from_drops () =
  let net =
    N.create ~policy:(N.faulty ~drop:0.3 ()) ~rng:(C.Drbg.of_int_seed 5) ()
  in
  let conn = N.Reliable.create ~interval:2 ~budget:6 net in
  let payloads = List.init 10 string_of_int in
  List.iter (fun m -> N.Reliable.send conn ~src:a_as ~dst:b_as m) payloads;
  let got = ref [] in
  let (_ : int) =
    N.Reliable.run conn
      ~handler:(fun ~src:_ ~dst:_ m ->
        if not (List.mem m !got) then got := m :: !got)
      ()
  in
  check_int "all ten delivered" 10 (List.length !got);
  check_bool "sender learned of delivery" true
    (List.for_all (fun m -> N.Reliable.acked conn ~src:a_as ~dst:b_as m)
       payloads);
  check_bool "needed retries" true (N.Reliable.retries conn > 0);
  check_int "no failures" 0 (N.Reliable.failures conn)

let reliable_times_out_under_partition () =
  let net =
    N.create ~policy:(N.faulty ~partition:true ()) ~rng:(C.Drbg.of_int_seed 6)
      ()
  in
  let conn = N.Reliable.create ~interval:2 ~budget:3 net in
  N.Reliable.send conn ~src:a_as ~dst:b_as "void";
  let (_ : int) = N.Reliable.run conn ~handler:(fun ~src:_ ~dst:_ _ -> ()) () in
  check_int "abandoned" 1 (N.Reliable.failures conn);
  check_int "used the whole budget" 3 (N.Reliable.retries conn);
  check_bool "never acked" false (N.Reliable.acked conn ~src:a_as ~dst:b_as "void")

let reliable_duplicates_reach_handler () =
  (* Duplicated data frames surface as duplicate handler calls: receivers
     must be idempotent, which the round engine's first-wins tables are. *)
  let net =
    N.create
      ~policy:(N.faulty ~duplicate:1.0 ())
      ~rng:(C.Drbg.of_int_seed 7) ()
  in
  let conn = N.Reliable.create net in
  N.Reliable.send conn ~src:a_as ~dst:b_as "again";
  let seen = ref 0 in
  let (_ : int) =
    N.Reliable.run conn ~handler:(fun ~src:_ ~dst:_ _ -> incr seen) ()
  in
  check_bool "handler saw duplicates" true (!seen >= 2);
  check_bool "still acked" true (N.Reliable.acked conn ~src:a_as ~dst:b_as "again")

(* ---- decoder fuzz (wire + evidence codecs never raise) -------------------------- *)

let sample_announce () =
  P.Runner.announce_of_route (Lazy.force keyring) ~provider:(List.hd providers)
    ~prover:a_as ~epoch:1
    (mk_route (List.hd providers) 3)

let sample_commit () =
  P.Wire.sign (Lazy.force keyring) ~as_:a_as ~encode:P.Wire.encode_commit
    {
      P.Wire.cmt_epoch = 1;
      cmt_prefix = prefix0;
      cmt_scheme = "min";
      cmt_commitments = List.init 4 (fun i -> String.make 32 (Char.chr (65 + i)));
    }

let sample_export () =
  P.Wire.sign (Lazy.force keyring) ~as_:a_as ~encode:P.Wire.encode_export
    {
      P.Wire.exp_epoch = 1;
      exp_to = b_as;
      exp_route = mk_route (List.hd providers) 3;
      exp_provenance = Some (sample_announce ());
    }

let some_opening = { C.Commitment.value = "1"; nonce = String.make 32 'n' }

let sample_evidence () =
  [
    P.Evidence.Equivocation { first = sample_commit (); second = sample_commit () };
    P.Evidence.False_bit
      {
        commit = sample_commit ();
        index = 2;
        opening = some_opening;
        witness = sample_announce ();
      };
    P.Evidence.Missing_export_claim
      { commit = sample_commit (); openings = [ (1, some_opening) ]; claimant = b_as };
    P.Evidence.Timeout
      {
        claim =
          P.Evidence.Missing_disclosure_claim
            {
              commit = sample_commit ();
              announce = sample_announce ();
              claimant = List.hd providers;
            };
        retries = 3;
      };
  ]

let decoders_never_raise =
  qtest "mangled wire/evidence bytes never raise" ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = C.Drbg.of_int_seed seed in
      let corpus =
        [
          P.Wire.encode_announce (sample_announce ()).P.Wire.payload;
          P.Wire.encode_commit (sample_commit ()).P.Wire.payload;
          P.Wire.encode_export (sample_export ()).P.Wire.payload;
          P.Wire.encode_signed ~encode:P.Wire.encode_announce (sample_announce ());
          P.Wire.encode_signed ~encode:P.Wire.encode_commit (sample_commit ());
          P.Wire.encode_signed ~encode:P.Wire.encode_export (sample_export ());
        ]
        @ List.map P.Evidence_codec.encode (sample_evidence ())
      in
      List.for_all
        (fun original ->
          let garbled = N.Fuzz.mangle rng original in
          match
            ( P.Wire.decode_announce garbled,
              P.Wire.decode_commit garbled,
              P.Wire.decode_export garbled,
              P.Wire.decode_signed ~decode:P.Wire.decode_announce garbled,
              P.Wire.decode_signed ~decode:P.Wire.decode_commit garbled,
              P.Wire.decode_signed ~decode:P.Wire.decode_export garbled,
              P.Evidence_codec.decode garbled,
              P.Evidence_codec.of_hex garbled )
          with
          | _ -> true
          | exception e ->
              Printf.eprintf "decoder raised %s\n" (Printexc.to_string e);
              false)
        corpus)

let random_bytes_never_decode_to_nonsense =
  qtest "pure random bytes never raise in decoders" ~count:100
    QCheck2.Gen.(string_size ~gen:char (int_bound 64))
    (fun s ->
      match
        ( P.Wire.decode_commit s,
          P.Wire.decode_signed ~decode:P.Wire.decode_commit s,
          P.Evidence_codec.decode s,
          P.Evidence_codec.of_hex s )
      with
      | _ -> true
      | exception _ -> false)

(* ---- Timeout evidence ----------------------------------------------------------- *)

let timeout_roundtrip_and_nesting () =
  let claim =
    P.Evidence.Missing_disclosure_claim
      {
        commit = sample_commit ();
        announce = sample_announce ();
        claimant = List.hd providers;
      }
  in
  let t = P.Evidence.Timeout { claim; retries = 3 } in
  (match P.Evidence_codec.decode (P.Evidence_codec.encode t) with
  | Some (P.Evidence.Timeout { retries = 3; claim = decoded }) ->
      check_bool "inner claim survives" true
        (P.Evidence_codec.encode decoded = P.Evidence_codec.encode claim)
  | _ -> Alcotest.fail "timeout did not roundtrip");
  check_bool "accused is the commit signer" true
    (G.Asn.equal (P.Evidence.accused t) a_as);
  (* A hand-crafted nested timeout must not decode. *)
  let nested =
    P.Evidence_codec.encode
      (P.Evidence.Timeout { claim = t; retries = 1 })
  in
  check_bool "nested timeout rejected" true
    (P.Evidence_codec.decode nested = None)

let timeout_zero_retries_rejected () =
  let kr = Lazy.force keyring in
  let claim =
    P.Evidence.Missing_export_claim
      { commit = sample_commit (); openings = []; claimant = b_as }
  in
  check_bool "no retries, no case" true
    (P.Judge.evaluate kr
       ~respond:(fun ~accused:_ _ -> P.Judge.No_response)
       (P.Evidence.Timeout { claim; retries = 0 })
    = P.Judge.Rejected)

(* ---- gossip invariance under duplication / reordering --------------------------- *)

let conflicting_commits () =
  let mk fill =
    P.Wire.sign (Lazy.force keyring) ~as_:a_as ~encode:P.Wire.encode_commit
      {
        P.Wire.cmt_epoch = 1;
        cmt_prefix = prefix0;
        cmt_scheme = "min";
        cmt_commitments = List.init 4 (fun _ -> String.make 32 fill);
      }
  in
  (mk 'x', mk 'y')

let gossip_invariant_under_dup_reorder =
  qtest "gossip equivocation detection survives dup+reorder" ~count:20
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let c1, c2 = conflicting_commits () in
      let holders = providers @ [ b_as ] in
      let detect net_opt =
        let g = P.Gossip.create (Lazy.force keyring) in
        List.iter
          (fun p -> ignore (P.Gossip.receive g ~holder:p c1))
          providers;
        ignore (P.Gossip.receive g ~holder:b_as c2);
        let evs =
          match net_opt with
          | None -> P.Gossip.run_round g ~edges:(P.Gossip.clique_edges holders)
          | Some net ->
              P.Gossip.run_round ~net g
                ~edges:(P.Gossip.clique_edges holders)
        in
        List.exists
          (function P.Evidence.Equivocation _ -> true | _ -> false)
          evs
      in
      let faulty =
        N.create
          ~policy:(N.faulty ~duplicate:0.5 ~delay_max:3 ~reorder:true ())
          ~rng:(C.Drbg.of_int_seed seed) ()
      in
      detect None && detect (Some faulty))

(* ---- counters under faults (fixed seed) ----------------------------------------- *)

let counters_cross_check_fixed_seed () =
  Obs.set_enabled true;
  Obs.reset_all ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let before = Obs.Snapshot.capture () in
  let nr = run_faulty ~faults:drop_faults P.Adversary.Honest 90 in
  let d = Obs.Snapshot.diff ~before ~after:(Obs.Snapshot.capture ()) in
  let counter name = Obs.Snapshot.counter_value d name in
  check_bool "schedule exercises retries" true (nr.P.Runner.net_retries > 0);
  check_int "obs net.retries matches" nr.P.Runner.net_retries
    (counter "net.retries");
  check_int "obs net.timeouts matches" nr.P.Runner.net_timeouts
    (counter "net.timeouts");
  check_int "obs net.drops matches"
    ((let s = nr.P.Runner.net_drops + nr.P.Runner.gossip_drops in
      s))
    (counter "net.drops" + counter "net.partition_drops");
  check_int "runner.messages mirrors the report"
    nr.P.Runner.base.P.Runner.messages
    (counter "runner.messages");
  (* [messages] counts every transmission, so the faulty run with retries
     must exceed the perfect run of the same seed. *)
  let perfect = run_faulty P.Adversary.Honest 90 in
  check_bool "retransmissions counted in messages" true
    (nr.P.Runner.base.P.Runner.messages
    > perfect.P.Runner.base.P.Runner.messages)

(* ---- E8 regression over a zero-fault channel ------------------------------------ *)

let e8_sweep_zero_fault_regression () =
  List.iter
    (fun beh ->
      let direct =
        P.Runner.min_round ~max_path_len beh (C.Drbg.of_int_seed 77)
          (Lazy.force keyring) ~prover:a_as ~beneficiary:b_as ~epoch:1
          ~prefix:prefix0 ~routes:(routes_for [ 2; 3; 4 ])
      in
      let through_net = run_faulty beh 77 in
      let name = P.Adversary.to_string beh in
      check_bool (name ^ " detected agrees") direct.P.Runner.detected
        through_net.P.Runner.base.P.Runner.detected;
      check_bool (name ^ " convicted agrees") direct.P.Runner.convicted
        through_net.P.Runner.base.P.Runner.convicted;
      check_int (name ^ " messages agree") direct.P.Runner.messages
        through_net.P.Runner.base.P.Runner.messages;
      check_int (name ^ " evidence count agrees")
        (List.length direct.P.Runner.raised)
        (List.length through_net.P.Runner.base.P.Runner.raised);
      (* And the sweep itself is unchanged: honest clean, Byzantine
         convicted (routes 2<3<4 make every behaviour detectable). *)
      if beh = P.Adversary.Honest then
        check_bool "honest clean" false direct.P.Runner.detected
      else begin
        check_bool (name ^ " detected") true direct.P.Runner.detected;
        check_bool (name ^ " convicted") true direct.P.Runner.convicted
      end;
      check_bool (name ^ " nothing dropped") true
        (through_net.P.Runner.net_drops = 0
        && through_net.P.Runner.gossip_drops = 0
        && through_net.P.Runner.net_retries = 0))
    P.Adversary.all

(* ---- adversarial soak ------------------------------------------------------------ *)

let fault_gen =
  QCheck2.Gen.(
    map3
      (fun seed (drop, duplicate) (delay, reorder) ->
        (seed, drop, duplicate, delay, reorder))
      (int_bound 100_000)
      (pair (oneofl [ 0.0; 0.1; 0.25; 0.4 ]) (oneofl [ 0.0; 0.2 ]))
      (pair (int_bound 3) bool))

let faults_of (drop, duplicate, delay, reorder) =
  {
    P.Runner.perfect_faults with
    P.Runner.fp_policy =
      N.faulty ~drop ~duplicate ~delay_max:delay ~reorder ();
  }

let soak_honest_never_convicted =
  qtest "soak: honest prover never convicted under any fault schedule"
    ~count:25 fault_gen
    (fun (seed, drop, duplicate, delay, reorder) ->
      let nr =
        run_faulty
          ~faults:(faults_of (drop, duplicate, delay, reorder))
          P.Adversary.Honest seed
      in
      not nr.P.Runner.base.P.Runner.convicted)

let behaviour_gen =
  QCheck2.Gen.oneofl
    (List.filter (fun b -> b <> P.Adversary.Honest) P.Adversary.all)

let soak_detection_when_witnessed =
  qtest
    "soak: Byzantine behaviour convicted whenever its witnesses were \
     delivered"
    ~count:40
    QCheck2.Gen.(pair fault_gen behaviour_gen)
    (fun ((seed, drop, duplicate, delay, reorder), beh) ->
      let nr =
        run_faulty ~faults:(faults_of (drop, duplicate, delay, reorder)) beh
          seed
      in
      (not
         (P.Runner.detection_expected beh ~beneficiary:b_as
            ~routes:(routes_for [ 2; 3; 4 ])
            nr))
      || (nr.P.Runner.base.P.Runner.detected
         && nr.P.Runner.base.P.Runner.convicted))

let soak_retryful_schedule_convicts_all () =
  (* One concrete lossy schedule that needs retries yet convicts every
     detectable Byzantine behaviour and acquits Honest (the ISSUE's
     acceptance scenario). *)
  let retries = ref 0 in
  let required = ref 0 in
  List.iter
    (fun beh ->
      let nr = run_faulty ~faults:drop_faults beh 90 in
      retries := !retries + nr.P.Runner.net_retries;
      if beh = P.Adversary.Honest then
        check_bool "honest acquitted" false
          nr.P.Runner.base.P.Runner.convicted
      else if
        P.Runner.detection_expected beh ~beneficiary:b_as
          ~routes:(routes_for [ 2; 3; 4 ])
          nr
      then begin
        incr required;
        check_bool
          (P.Adversary.to_string beh ^ " convicted despite faults")
          true
          (nr.P.Runner.base.P.Runner.detected
          && nr.P.Runner.base.P.Runner.convicted)
      end)
    P.Adversary.all;
  check_bool "schedule required retries" true (!retries > 0);
  check_bool "non-vacuous: several detections required" true (!required >= 3)

let same_seed_same_outcome () =
  let fingerprint (nr : P.Runner.net_report) =
    ( nr.P.Runner.base.P.Runner.messages,
      nr.P.Runner.net_sends,
      nr.P.Runner.net_retries,
      nr.P.Runner.net_drops,
      nr.P.Runner.ticks,
      List.map
        (fun (_, e) -> P.Evidence_codec.to_hex e)
        nr.P.Runner.base.P.Runner.raised,
      List.map
        (fun (_, _, v) -> P.Judge.verdict_to_string v)
        nr.P.Runner.base.P.Runner.judged )
  in
  let faults =
    {
      P.Runner.perfect_faults with
      P.Runner.fp_policy =
        N.faulty ~drop:0.2 ~duplicate:0.1 ~delay_max:2 ~reorder:true ();
    }
  in
  List.iter
    (fun beh ->
      let a = run_faulty ~faults beh 1234 and b = run_faulty ~faults beh 1234 in
      check_bool
        (P.Adversary.to_string beh ^ " reproducible")
        true
        (fingerprint a = fingerprint b))
    [ P.Adversary.Honest; P.Adversary.Equivocate; P.Adversary.Refuse_disclosure ]

let timeout_conviction_under_total_silence () =
  (* Cut A off from B only: B gets neither commitment... with the link cut
     there is no commitment either, so use loss on the disclosure path via
     permanent per-link drop.  The stonewalling Suppress_export prover is
     convicted via the Timeout claim even when the opening set never
     arrives. *)
  let faults =
    {
      P.Runner.perfect_faults with
      P.Runner.fp_links = [ ((a_as, b_as), N.faulty ~drop:0.9 ()) ];
      P.Runner.fp_retry_budget = 2;
    }
  in
  (* Scan a few seeds for a schedule where B holds the commitment but the
     beneficiary disclosure was lost: the Timeout path must convict. *)
  let witnessed = ref false in
  for seed = 1 to 30 do
    if not !witnessed then begin
      let nr = run_faulty ~faults P.Adversary.Suppress_export seed in
      let timed_out =
        List.exists
          (fun (_, e) ->
            match e with
            | P.Evidence.Timeout
                { claim = P.Evidence.Missing_export_claim _; _ } ->
                true
            | _ -> false)
          nr.P.Runner.base.P.Runner.raised
      in
      if timed_out then begin
        witnessed := true;
        check_bool "stonewaller convicted on timeout" true
          nr.P.Runner.base.P.Runner.convicted
      end;
      (* Accuracy control on the same schedule. *)
      let honest = run_faulty ~faults P.Adversary.Honest seed in
      check_bool "honest never convicted on this schedule" false
        honest.P.Runner.base.P.Runner.convicted
    end
  done;
  check_bool "found a total-silence schedule" true !witnessed

let suite =
  [
    Alcotest.test_case "perfect net delivers in order" `Quick
      perfect_delivers_in_order;
    Alcotest.test_case "drop=1 loses everything" `Quick drop_all_loses_everything;
    Alcotest.test_case "duplicate=1 doubles" `Quick duplicate_doubles;
    Alcotest.test_case "partition heals" `Quick partition_heals;
    chaos_preserves_multiset;
    Alcotest.test_case "reliable recovers from drops" `Quick
      reliable_recovers_from_drops;
    Alcotest.test_case "reliable times out under partition" `Quick
      reliable_times_out_under_partition;
    Alcotest.test_case "reliable duplicates reach handler" `Quick
      reliable_duplicates_reach_handler;
    decoders_never_raise;
    random_bytes_never_decode_to_nonsense;
    Alcotest.test_case "timeout evidence roundtrip + nesting" `Quick
      timeout_roundtrip_and_nesting;
    Alcotest.test_case "timeout with zero retries rejected" `Quick
      timeout_zero_retries_rejected;
    gossip_invariant_under_dup_reorder;
    Alcotest.test_case "counters cross-check on a fixed seed" `Quick
      counters_cross_check_fixed_seed;
    Alcotest.test_case "E8 sweep unchanged over zero-fault net" `Quick
      e8_sweep_zero_fault_regression;
    soak_honest_never_convicted;
    soak_detection_when_witnessed;
    Alcotest.test_case "soak: lossy schedule convicts all detectable" `Quick
      soak_retryful_schedule_convicts_all;
    Alcotest.test_case "same seed, same outcome" `Quick same_seed_same_outcome;
    Alcotest.test_case "timeout conviction under total silence" `Quick
      timeout_conviction_under_total_silence;
  ]
