(* Concurrency stress/determinism battery for the contention surgery
   (PR 10): the persistent domain pool, per-domain intern arenas with
   canonicalizing merge at epoch barriers, and sharded observability
   counters.  The anchor is the digest invariant — every epoch digest must
   be byte-identical across jobs x shards x intern x cache settings, even
   under adversarial scheduling perturbation — plus unit checks that the
   merge and fold machinery is exact, not merely statistically close. *)

module P = Pvr
module E = Pvr_engine.Engine
module Pool = Pvr_engine.Pool
module Obs = Pvr_obs
module G = Pvr_bgp
module C = Pvr_crypto

let asn = G.Asn.of_int
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let with_intern enabled f =
  Fun.protect
    ~finally:(fun () -> G.Intern.set_enabled false)
    (fun () ->
      G.Intern.set_enabled enabled;
      f ())

(* ---- differential engine runs ----------------------------------------------------- *)

let diff_ases = 16

let diff_keyring =
  lazy
    (P.Keyring.create ~bits:512
       (C.Drbg.of_int_seed 4242)
       (List.init diff_ases (fun i -> asn (i + 1))))

(* One seeded 3-epoch workload; returns the per-epoch report digests and
   the final RIB digest.  Everything that may legally vary — jobs, shards,
   intern, cache — is a parameter; the digests must not notice. *)
let diff_run ~seed ~intern ~jobs ~shards ~cache () =
  with_intern intern @@ fun () ->
  let topo = G.Topology.generate (C.Drbg.of_int_seed seed) ~ases:diff_ases () in
  let origins = List.init 3 (fun i -> asn (diff_ases - i)) in
  let sim = G.Simulator.create topo in
  let churn =
    G.Update_gen.Churn.create ~anycast:1 ~origins ~prefixes_per_origin:2 ()
  in
  let churn_rng = C.Drbg.of_int_seed (seed + 1) in
  let eng =
    E.create ~jobs ~shards ~cache ~salt_every:2
      (C.Drbg.of_int_seed (seed + 2))
      (Lazy.force diff_keyring) ~topology:topo ~sim ()
  in
  let digests = ref [] in
  for i = 1 to 3 do
    let apply sim =
      if i = 1 then List.length (G.Update_gen.Churn.seed churn sim)
      else
        List.length (G.Update_gen.Churn.step churn_rng ~turnover:0.4 churn sim)
    in
    let r = E.epoch ~apply eng in
    digests := r.E.ep_digest :: !digests
  done;
  (List.rev !digests, E.rib_digest eng)

(* jobs in {1,2,4,8} x intern on/off x shards: every combination must
   reproduce the jobs=1 plain-representation baseline byte for byte. *)
let digest_differential =
  let open QCheck2.Gen in
  let gen =
    let* seed = 1 -- 1000 in
    let* jobs = oneofl [ 1; 2; 4; 8 ] in
    let* shards = oneofl [ 0; 1; 3; 5; 8 ] in
    let* intern = bool in
    let* cache = bool in
    return (seed, jobs, shards, intern, cache)
  in
  qtest ~count:8 "digests: jobs x shards x intern x cache differential" gen
    (fun (seed, jobs, shards, intern, cache) ->
      let base, base_rib =
        diff_run ~seed ~intern:false ~jobs:1 ~shards:0 ~cache:true ()
      in
      let d, rib = diff_run ~seed ~intern ~jobs ~shards ~cache () in
      base = d && base_rib = rib && base <> [])

(* Scheduler perturbation: seeded random sleeps before every pool task
   reshuffle the interleaving (handout order, arena flush order, counter
   cell assignment) without touching the computation.  The digests must
   not move.  The hook is process-global state, so it is always removed
   again even on failure. *)
let perturbed_schedule_deterministic () =
  let base, base_rib =
    diff_run ~seed:271 ~intern:true ~jobs:1 ~shards:0 ~cache:true ()
  in
  List.iter
    (fun pseed ->
      let st = Random.State.make [| pseed |] in
      let mu = Mutex.create () in
      let sleep _i =
        let d =
          Mutex.lock mu;
          let d = Random.State.float st 0.002 in
          Mutex.unlock mu;
          d
        in
        if d > 0.0005 then Unix.sleepf d
      in
      Fun.protect
        ~finally:(fun () -> Pool.set_perturb None)
        (fun () ->
          Pool.set_perturb (Some sleep);
          let d, rib =
            diff_run ~seed:271 ~intern:true ~jobs:4 ~shards:5 ~cache:true ()
          in
          Alcotest.(check (list string))
            (Printf.sprintf "perturb seed %d: epoch digests" pseed)
            base d;
          check_string
            (Printf.sprintf "perturb seed %d: rib digest" pseed)
            base_rib rib))
    [ 7; 99; 1234 ]

(* ---- per-domain intern arenas ------------------------------------------------------ *)

let mk_route ~addr ~len ~path ~lp =
  match path with
  | [] -> invalid_arg "mk_route: empty path"
  | first :: _ ->
      {
        G.Route.prefix = G.Prefix.make ~addr ~len;
        as_path = List.map asn path;
        next_hop = asn first;
        local_pref = lp;
        med = 0;
        origin = G.Route.Igp;
        communities = [];
      }

let arena_route i =
  mk_route ~addr:(10 lsl 24) ~len:24 ~path:[ 3 + (i mod 8); 2; 1 ] ~lp:100

(* Four workers intern heavily-overlapping route sets (every distinct
   route is seen by every worker, through physically distinct copies).
   After the round barrier every arena has flushed: the global tables must
   hold exactly the distinct set, with dense ids and one canonical
   representative per equivalence class. *)
let arena_merge_no_duplicates () =
  with_intern true @@ fun () ->
  G.Intern.reset ();
  let distinct = 8 in
  let tasks =
    Array.init 4 (fun w ->
        fun () ->
          List.init 24 (fun i ->
              (* Each task builds its own copies in a different order. *)
              G.Intern.route (arena_route ((i + (w * 3)) mod distinct))))
  in
  let results = Pool.run ~jobs:4 tasks in
  let stats = G.Intern.stats () in
  check_int "live routes = distinct set" distinct stats.G.Intern.live_routes;
  (* No duplicate canonical ids: structurally equal routes resolve to the
     same id no matter which domain first interned them. *)
  let ids = Hashtbl.create 16 in
  Array.iter
    (fun rs ->
      List.iter
        (fun r ->
          match G.Intern.route_id r with
          | None -> Alcotest.fail "interned route has no id"
          | Some id -> (
              let key = G.Route.encode r in
              match Hashtbl.find_opt ids key with
              | None -> Hashtbl.add ids key id
              | Some id' ->
                  check_int "one id per equivalence class" id' id))
        rs)
    results;
  check_int "id space is the distinct set" distinct (Hashtbl.length ids);
  let sorted = Hashtbl.fold (fun _ id acc -> id :: acc) ids [] in
  let sorted = List.sort_uniq Int.compare sorted in
  check_bool "ids dense 0..n-1" true
    (sorted = List.init distinct (fun i -> i))

(* Dense-id stability: once merged, a canonical id never moves — a second
   round re-interning the same routes (plus fresh ones) from different
   domains extends the id space without renumbering survivors. *)
let arena_merge_id_stability () =
  with_intern true @@ fun () ->
  G.Intern.reset ();
  let first = Array.init 3 (fun _ -> fun () ->
      List.init 6 (fun i -> G.Intern.route (arena_route i)))
  in
  ignore (Pool.run ~jobs:3 first : G.Route.t list array);
  let id_of i =
    match G.Intern.route_id (arena_route i) with
    | Some id -> id
    | None -> Alcotest.fail "expected an id"
  in
  let before = List.init 6 id_of in
  let second =
    Array.init 3 (fun w -> fun () ->
        List.init 12 (fun i ->
            G.Intern.route (arena_route ((i + w) mod 8))))
  in
  ignore (Pool.run ~jobs:3 second : G.Route.t list array);
  List.iteri
    (fun i id -> check_int (Printf.sprintf "route %d id stable" i) id (id_of i))
    before;
  check_int "id space extended densely" 8 (G.Intern.stats ()).G.Intern.live_routes;
  let all = List.sort_uniq Int.compare (List.init 8 id_of) in
  check_bool "still dense after growth" true (all = List.init 8 Fun.id)

(* An explicit flush from the calling domain is also legal (the engine
   calls it at epoch barriers; submit-path workers call it themselves). *)
let arena_explicit_flush () =
  with_intern true @@ fun () ->
  G.Intern.reset ();
  let r = G.Intern.route (arena_route 0) in
  G.Intern.flush ();
  check_bool "id visible after flush" true (G.Intern.route_id r <> None);
  G.Intern.flush ();
  check_int "flush is idempotent" 1 (G.Intern.stats ()).G.Intern.live_routes

(* ---- sharded counters -------------------------------------------------------------- *)

let with_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset_all ())
    (fun () ->
      Obs.reset_all ();
      Obs.set_enabled true;
      f ())

(* Four domains hammer one counter; the fold after the join must equal
   the exact arithmetic total — sharding loses nothing. *)
let sharded_counter_fold_exact () =
  with_obs @@ fun () ->
  let c = Obs.counter "test.concurrency.hammer" in
  let per_task = 10_000 in
  let tasks =
    Array.init 8 (fun _ ->
        fun () ->
          for _ = 1 to per_task do
            Obs.incr c
          done;
          Obs.add c 5)
  in
  ignore (Pool.run ~jobs:4 tasks : unit array);
  let expect = (8 * per_task) + (8 * 5) in
  check_int "fold equals arithmetic total" expect (Obs.value c);
  let snap = Obs.Snapshot.capture () in
  check_int "snapshot capture folds identically" expect
    (Obs.Snapshot.counter_value snap "test.concurrency.hammer")

(* Cross-check against the runner's always-exact local tally: a protocol
   round counts its messages in a Tally (single-domain, exact by
   construction) and publishes the same counts into the sharded global
   counter.  The two must agree to the message. *)
let sharded_counter_vs_runner_report () =
  with_obs @@ fun () ->
  let prover = asn 1 and beneficiary = asn 50 in
  let providers = List.init 3 (fun i -> asn (10 + i)) in
  let kr =
    P.Keyring.create ~bits:512
      (C.Drbg.of_int_seed 555)
      (prover :: beneficiary :: providers)
  in
  let prefix = G.Prefix.of_string "10.0.0.0/8" in
  let route n len =
    let path = List.init len (fun j -> if j = 0 then n else asn (3000 + j)) in
    let base = G.Route.originate ~asn:n prefix in
    { base with G.Route.as_path = path; next_hop = n }
  in
  let routes = List.mapi (fun i n -> (n, route n (i + 2))) providers in
  let total = ref 0 in
  for i = 1 to 3 do
    let r =
      P.Runner.min_round ~max_path_len:8 P.Adversary.Honest
        (C.Drbg.of_int_seed (600 + i))
        kr ~prover ~beneficiary ~epoch:i ~prefix ~routes
    in
    check_bool "round counted messages" true (r.P.Runner.messages > 0);
    total := !total + r.P.Runner.messages
  done;
  let snap = Obs.Snapshot.capture () in
  check_int "sharded fold = sum of tally-exact reports" !total
    (Obs.Snapshot.counter_value snap "runner.messages")

(* Folds also stay exact when increments arrive from pool worker domains
   racing the inline path (cells are per-domain; the fold sums them). *)
let sharded_counter_multi_domain_mix () =
  with_obs @@ fun () ->
  let c = Obs.counter "test.concurrency.mix" in
  let tasks = Array.init 6 (fun _ -> fun () -> Obs.add c 100) in
  ignore (Pool.run ~jobs:3 tasks : unit array);
  Obs.add c 1;
  check_int "mixed-domain fold" 601 (Obs.value c)

let suite =
  [
    digest_differential;
    ( "digests: stable under seeded scheduler perturbation",
      `Slow,
      perturbed_schedule_deterministic );
    ("intern: arena merge yields no duplicate canonicals", `Quick,
      arena_merge_no_duplicates);
    ("intern: canonical ids stable across merge rounds", `Quick,
      arena_merge_id_stability);
    ("intern: explicit flush is visible and idempotent", `Quick,
      arena_explicit_flush);
    ("obs: sharded counter fold is exact across domains", `Quick,
      sharded_counter_fold_exact);
    ("obs: sharded fold matches runner tally reports", `Quick,
      sharded_counter_vs_runner_report);
    ("obs: mixed inline/worker increments fold exactly", `Quick,
      sharded_counter_multi_domain_mix);
  ]
