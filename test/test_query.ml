(* Tests for pvr_query — the indexed audit-query subsystem over the
   evidence plane: parser units (positions included) and a qcheck
   canonical-form round-trip, Store.fold_frames streaming semantics, the
   commit protocol (orphan rows frames excluded, duplicates deduped), a
   qcheck differential between planned execution and a brute-force scan,
   the index-checkpoint fast path, α viewer scoping (viewers never see
   unauthorized rows; court sees everything), crash/recover query
   byte-equality, and the query.* obs counters. *)

module P = Pvr
module E = Pvr_engine.Engine
module Persist = Pvr_engine.Persist
module G = Pvr_bgp
module C = Pvr_crypto
module S = Pvr_store.Store
module Q = Pvr_query
module Lang = Pvr_query.Lang
module Exec = Pvr_query.Exec
module Row = Pvr_query.Row
module Frame = Pvr_query.Frame
module Idx = Pvr_query.Evidence_index
module Obs = Pvr_obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let counted = Test_engine.counted
let delta = Test_engine.delta

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pvr-test-query-%d-%d" (Unix.getpid ()) !n)

let rm_rf dir =
  try
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  with Sys_error _ | Unix.Unix_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---- parser ---------------------------------------------------------------------- *)

let parse_ok q =
  match Lang.parse q with
  | Ok ast -> ast
  | Error e -> Alcotest.failf "parse %S: %s" q (Lang.render_error ~query:q e)

let parser_roadmap_example () =
  (* The ROADMAP's motivating query, verbatim. *)
  let q =
    parse_ok
      "violations where prefix in 10.0.0.0/8 and epoch > 40 order by epoch \
       limit 20"
  in
  check_bool "source" true (q.Lang.q_source = Lang.Violations);
  check_bool "order" true (q.Lang.q_order = Some (Lang.By_epoch, true));
  check_bool "limit" true (q.Lang.q_limit = Some 20);
  (match q.Lang.q_where with
  | Lang.And (Lang.Prefix_in p, Lang.Int_cmp (Lang.F_epoch, Lang.Gt, 40)) ->
      check_string "prefix" "10.0.0.0/8" (G.Prefix.to_string p)
  | _ -> Alcotest.fail "unexpected AST shape");
  check_string "canonical"
    "violations where (prefix in 10.0.0.0/8 and epoch > 40) order by epoch \
     asc limit 20"
    (Lang.to_string q)

let parser_atoms () =
  List.iter
    (fun (text, expect) ->
      check_bool text true ((parse_ok ("rows where " ^ text)).Lang.q_where = expect))
    [
      ("prover = AS17", Lang.Asn_cmp (Lang.F_prover, true, 17));
      ("prover != 17", Lang.Asn_cmp (Lang.F_prover, false, 17));
      ("beneficiary = 3", Lang.Asn_cmp (Lang.F_beneficiary, true, 3));
      ("detected", Lang.Bool_is (Lang.F_detected, true));
      ("convicted != true", Lang.Bool_is (Lang.F_convicted, false));
      ("leaked_bits >= 5", Lang.Int_cmp (Lang.F_leaked, Lang.Ge, 5));
      ("kind = missing-export", Lang.Kind_has (true, "missing-export"));
      ("behaviour != honest", Lang.Behaviour_is (false, "honest"));
      ( "not (epoch = 1 or epoch = 2)",
        Lang.Not
          (Lang.Or
             ( Lang.Int_cmp (Lang.F_epoch, Lang.Eq, 1),
               Lang.Int_cmp (Lang.F_epoch, Lang.Eq, 2) )) );
    ]

let parser_error_positions () =
  List.iter
    (fun (text, pos, needle) ->
      match Lang.parse text with
      | Ok _ -> Alcotest.failf "expected %S to fail" text
      | Error e ->
          check_int (text ^ ": position") pos e.Lang.pos;
          check_bool
            (Printf.sprintf "%s: message %S in %S" text needle e.Lang.msg)
            true
            (let n = String.length needle and m = String.length e.Lang.msg in
             let rec at i =
               i + n <= m && (String.sub e.Lang.msg i n = needle || at (i + 1))
             in
             at 0))
    [
      ("violations where banana = 1", 17, "unknown field");
      ("rows where epoch >", 18, "expected an integer");
      ("rows where prefix in 10.0.0.300/8", 21, "malformed prefix");
      ("rows where behaviour = flying", 23, "unknown behaviour");
      ("rows where kind = sabotage", 18, "unknown kind");
      ("rows where epoch ! 3", 17, "expected '='");
      ("rows where (epoch = 1", 21, "expected ')'");
      ("rows order by verdict", 14, "cannot order by");
      ("rows limit 3 extra", 13, "trailing input");
      ("sandwiches", 0, "expected violations");
    ]

(* Random well-formed ASTs; to_string then parse must reconstruct them. *)
let gen_query =
  let open QCheck2.Gen in
  let gen_prefix =
    oneofl [ "10.0.0.0/8"; "10.2.0.0/15"; "10.1.0.0/24"; "0.0.0.0/0" ]
    >|= G.Prefix.of_string
  in
  let gen_atom =
    oneof
      [
        (let* f = oneofl [ Lang.F_epoch; Lang.F_evidence; Lang.F_leaked; Lang.F_excess ] in
         let* c = oneofl [ Lang.Lt; Lang.Le; Lang.Gt; Lang.Ge; Lang.Eq; Lang.Ne ] in
         let* v = int_bound 100 in
         return (Lang.Int_cmp (f, c, v)));
        (let* f = oneofl [ Lang.F_prover; Lang.F_beneficiary ] in
         let* eq = bool in
         let* v = int_bound 30 in
         return (Lang.Asn_cmp (f, eq, v)));
        (gen_prefix >|= fun p -> Lang.Prefix_in p);
        (gen_prefix >|= fun p -> Lang.Prefix_eq p);
        (let* eq = bool in
         let* b = oneofl (List.map P.Adversary.to_string P.Adversary.all) in
         return (Lang.Behaviour_is (eq, b)));
        (let* eq = bool in
         let* k = oneofl P.Evidence.all_kinds in
         return (Lang.Kind_has (eq, k)));
        (let* f = oneofl [ Lang.F_detected; Lang.F_convicted ] in
         let* v = bool in
         return (Lang.Bool_is (f, v)));
      ]
  in
  let gen_expr =
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 1 then gen_atom
            else
              oneof
                [
                  gen_atom;
                  (let* a = self (n / 2) in
                   let* b = self (n / 2) in
                   return (Lang.And (a, b)));
                  (let* a = self (n / 2) in
                   let* b = self (n / 2) in
                   return (Lang.Or (a, b)));
                  (self (n - 1) >|= fun e -> Lang.Not e);
                ])
          (min n 8))
  in
  let* q_source = oneofl [ Lang.Violations; Lang.Convictions; Lang.Rows ] in
  let* q_where = oneof [ return Lang.True; gen_expr ] in
  let* q_order =
    oneof
      [
        return None;
        (let* k =
           oneofl
             [ Lang.By_epoch; Lang.By_prover; Lang.By_beneficiary;
               Lang.By_prefix; Lang.By_evidence; Lang.By_leaked; Lang.By_excess ]
         in
         let* asc = bool in
         return (Some (k, asc)));
      ]
  in
  let* q_limit = oneof [ return None; int_bound 40 >|= Option.some ] in
  return { Lang.q_source; q_where; q_order; q_limit }

let parser_roundtrip =
  qtest ~count:200 "lang: parse (to_string q) = q" gen_query (fun q ->
      match Lang.parse (Lang.to_string q) with
      | Ok q' -> q' = q
      | Error e ->
          QCheck2.Test.fail_reportf "reparse failed: %s"
            (Lang.render_error ~query:(Lang.to_string q) e))

(* ---- row codec ------------------------------------------------------------------- *)

let gen_row =
  let open QCheck2.Gen in
  let* r_epoch = int_bound 100 in
  let* r_prover = int_bound 1000 in
  let* r_addr = int_bound 0xFFFF >|= fun a -> a * 0x10000 in
  let* r_len = int_range 0 32 in
  let* r_beneficiary = int_bound 1000 in
  let* r_providers = list_size (int_bound 4) (int_bound 1000) in
  let* r_behaviour = oneofl (List.map P.Adversary.to_string P.Adversary.all) in
  let* r_detected = bool in
  let* r_convicted = bool in
  let* r_evidence = int_bound 5 in
  let* r_kinds = list_size (int_bound 3) (oneofl P.Evidence.all_kinds) in
  let* r_leaked = int_bound 500 in
  let* r_excess = int_bound 500 in
  return
    {
      Row.r_epoch;
      r_prover;
      r_addr;
      r_len;
      r_beneficiary;
      r_providers;
      r_behaviour;
      r_detected;
      r_convicted;
      r_evidence;
      r_kinds;
      r_leaked;
      r_excess;
    }

let row_codec_roundtrip =
  qtest ~count:200 "row: encode/read round-trips" gen_row (fun r ->
      let buf = Buffer.create 64 in
      Row.encode buf r;
      match
        Pvr_store.Codec.decode (Buffer.contents buf) (fun rd -> Row.read rd)
      with
      | Ok r' -> r' = r
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e)

let rows_frame_roundtrip =
  qtest ~count:50 "frame: rows frame round-trips and peeks"
    QCheck2.Gen.(pair (list_size (int_bound 6) gen_row) (int_bound 50))
    (fun (rows, epoch) ->
      let f = { Frame.rf_run_id = "run-x"; rf_epoch = epoch; rf_rows = rows } in
      let payload = Frame.encode_rows f in
      Frame.peek_header payload = Some (Frame.tag_rows, "run-x", epoch)
      && match Frame.decode payload with
         | Ok (Frame.Rows f') -> f' = f
         | _ -> false)

(* ---- fold_frames ----------------------------------------------------------------- *)

let fold_frames_streams () =
  with_dir (fun dir ->
      let payloads = List.init 6 (fun i -> Printf.sprintf "frame-%d" i) in
      let s = S.open_ ~fsync:false ~dir () in
      List.iter (S.append s) payloads;
      S.close s;
      let collected, fe =
        S.fold_frames ~dir ~init:[] ~f:(fun acc ~off p -> (off, p) :: acc) ()
      in
      let collected = List.rev collected in
      check_bool "payloads in order" true
        (List.map snd collected = payloads);
      check_int "frame count" 6 fe.S.fe_frames;
      check_bool "no error" true (fe.S.fe_error = None);
      check_bool "offsets strictly ascending" true
        (let offs = List.map fst collected in
         List.sort_uniq compare offs = offs);
      (* Resuming from the 4th frame's offset yields exactly the tail. *)
      let from = List.nth (List.map fst collected) 3 in
      let tail, fe2 =
        S.fold_frames ~from ~dir ~init:[] ~f:(fun acc ~off:_ p -> p :: acc) ()
      in
      check_bool "tail from offset" true
        (List.rev tail = [ "frame-3"; "frame-4"; "frame-5" ]);
      check_int "tail frames" 3 fe2.S.fe_frames;
      check_int "next offset = file size"
        (Unix.stat (S.journal_path ~dir)).Unix.st_size fe2.S.fe_next)

let fold_frames_torn_tail () =
  with_dir (fun dir ->
      let s = S.open_ ~fsync:false ~dir () in
      S.append s "alpha";
      S.append s "beta";
      S.close s;
      let journal = S.journal_path ~dir in
      let size = (Unix.stat journal).Unix.st_size in
      Unix.truncate journal (size - 3);
      let seen, fe =
        S.fold_frames ~dir ~init:[] ~f:(fun acc ~off:_ p -> p :: acc) ()
      in
      check_bool "good prefix kept" true (List.rev seen = [ "alpha" ]);
      check_bool "error reported" true (fe.S.fe_error <> None);
      check_bool "stops at torn frame start" true (fe.S.fe_next < size - 3);
      (* fold never mutates: recover still sees the same journal bytes. *)
      check_int "journal untouched" (size - 3)
        (Unix.stat journal).Unix.st_size;
      let missing, fe3 =
        S.fold_frames ~dir:(dir ^ "-nonexistent") ~init:[]
          ~f:(fun acc ~off:_ p -> p :: acc)
          ()
      in
      check_bool "missing dir is clean empty" true
        (missing = [] && fe3.S.fe_frames = 0 && fe3.S.fe_error = None))

(* ---- engine-backed fixture -------------------------------------------------------- *)

(* One checkpointed engine run shared by the query tests (keygen and the
   run dominate; the store is tiny).  Timing-probe planning: violations
   are detected but never convicted, so rows of every verdict exist. *)
let fixture_seed = 64
let fixture_epochs = 5

let mk_world ?(strategy = P.Adversary.Timing_probe { period = 3 }) ~jobs
    ~cache seed =
  let topo = Lazy.force Test_engine.etopo in
  let sim = G.Simulator.create topo in
  let origins =
    List.sort (fun a b -> G.Asn.compare b a) (G.Topology.ases topo)
    |> List.filteri (fun i _ -> i < 2)
    |> List.rev
  in
  let churn =
    G.Update_gen.Churn.create ~anycast:2 ~origins ~prefixes_per_origin:2 ()
  in
  let churn_rng = C.Drbg.of_int_seed seed in
  let eng =
    E.create ~jobs ~cache ~salt_every:3 ~max_path_len:8 ~strategy
      (C.Drbg.of_int_seed (seed + 1))
      (Lazy.force Test_engine.ekeyring) ~topology:topo ~sim ()
  in
  let apply ~epoch sim =
    if epoch = 1 then List.length (G.Update_gen.Churn.seed churn sim)
    else List.length (G.Update_gen.Churn.step churn_rng ~turnover:0.3 churn sim)
  in
  (eng, apply)

let run_epochs ~session eng apply ~from ~until =
  for i = from + 1 to until do
    let r = E.epoch ~apply:(apply ~epoch:i) eng in
    Option.iter (fun s -> Persist.record s eng r) session
  done

(* (dir, index): a completed 5-epoch timing-probe run with snapshots (and
   hence index checkpoints) every 2 epochs.  The dir is never cleaned —
   it is shared by every test below, like test_store's pristine store. *)
let fixture =
  lazy
    (let dir = fresh_dir () in
     let eng, apply = mk_world ~jobs:1 ~cache:true fixture_seed in
     let s = Persist.start ~fsync:false ~snapshot_every:2 ~dir () in
     run_epochs ~session:(Some s) eng apply ~from:0 ~until:fixture_epochs;
     Persist.close s;
     match Idx.build ~quiet:true ~dir () with
     | Ok idx -> (dir, idx)
     | Error e -> Alcotest.failf "fixture index build failed: %s" e)

let all_rows idx = List.map (Idx.row idx) (Idx.ids_all idx)

(* Brute-force reference: decode every committed rows frame straight off
   the journal, no index, no planner. *)
let journal_rows dir =
  let frames, _ =
    S.fold_frames ~dir ~init:[] ~f:(fun acc ~off:_ p -> p :: acc) ()
  in
  let decoded =
    List.rev_map (fun p -> Result.to_option (Frame.decode p)) frames
    |> List.filter_map Fun.id
  in
  let run =
    List.fold_left
      (fun acc -> function
        | Frame.Epoch er -> er.Frame.er_run_id
        | _ -> acc)
      "" decoded
  in
  let committed =
    List.filter_map
      (function
        | Frame.Epoch er when er.Frame.er_run_id = run ->
            Some er.Frame.er_epoch
        | _ -> None)
      decoded
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (function
      | Frame.Rows rf
        when rf.Frame.rf_run_id = run
             && List.mem rf.Frame.rf_epoch committed
             && not (Hashtbl.mem seen rf.Frame.rf_epoch) ->
          Hashtbl.replace seen rf.Frame.rf_epoch rf.Frame.rf_rows
      | _ -> ())
    decoded;
  Hashtbl.fold (fun e rows acc -> (e, rows) :: acc) seen []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.concat_map snd

let index_matches_journal_scan () =
  let dir, idx = Lazy.force fixture in
  let from_idx = all_rows idx in
  let from_journal = journal_rows dir in
  check_int "row counts" (List.length from_journal) (List.length from_idx);
  check_bool "rows byte-identical in journal order" true
    (List.for_all2 (fun a b -> a = b) from_journal from_idx);
  check_bool "some rows detected" true
    (List.exists (fun r -> r.Row.r_detected) from_idx);
  check_bool "detected rows carry evidence kinds" true
    (List.for_all
       (fun r -> (not r.Row.r_detected) || r.Row.r_kinds <> [])
       from_idx)

(* Mirror of Exec.run for the court viewer, minus planner and index. *)
let brute idx q =
  let matched = List.filter (Lang.admits q) (all_rows idx) in
  let ordered =
    match q.Lang.q_order with
    | None -> matched
    | Some (k, asc) ->
        List.stable_sort
          (fun a b ->
            let c = Exec.key_compare k a b in
            if asc then c else -c)
          matched
  in
  match q.Lang.q_limit with
  | None -> ordered
  | Some n -> List.filteri (fun i _ -> i < n) ordered

let planner_differential =
  qtest ~count:150 "exec: planned run = brute-force scan (court)" gen_query
    (fun q ->
      let _, idx = Lazy.force fixture in
      let res = Exec.run idx ~viewer:P.Leakage.court q in
      res.Exec.qr_rows = brute idx q && res.Exec.qr_refused = 0)

let planner_chooses_indexes () =
  let _, idx = Lazy.force fixture in
  let plan_of text = (Exec.plan idx (parse_ok text)).Exec.pl_access in
  let some_prover =
    match all_rows idx with
    | r :: _ -> r.Row.r_prover
    | [] -> Alcotest.fail "fixture has no rows"
  in
  (match plan_of (Printf.sprintf "rows where prover = %d" some_prover) with
  | Exec.Prover_idx p -> check_int "prover path" some_prover p
  | a -> Alcotest.failf "expected prover index, got %s" (Exec.access_to_string a));
  (match plan_of "rows where prefix in 10.2.0.0/15 and detected" with
  | Exec.Prefix_idx { exact = false; _ } -> ()
  | a -> Alcotest.failf "expected prefix index, got %s" (Exec.access_to_string a));
  (match plan_of "rows where epoch >= 4 and epoch <= 4" with
  | Exec.Epoch_idx { lo = 4; hi = 4 } -> ()
  | a -> Alcotest.failf "expected epoch index, got %s" (Exec.access_to_string a));
  (match plan_of "rows where leaked > 0" with
  | Exec.Scan -> ()
  | a -> Alcotest.failf "expected scan, got %s" (Exec.access_to_string a));
  (* The chosen path is always the cheapest considered one. *)
  let p = Exec.plan idx (parse_ok "rows where prover = 1 and epoch = 2") in
  check_bool "min cost wins" true
    (List.for_all (fun (_, c) -> p.Exec.pl_cost <= c) p.Exec.pl_considered)

let query_counters () =
  let _, idx = Lazy.force fixture in
  let indexed = parse_ok "violations where epoch > 2" in
  let scan = parse_ok "rows where leaked >= 0" in
  let (r1, r2), d =
    counted (fun () ->
        ( Exec.run idx ~viewer:P.Leakage.court indexed,
          Exec.run idx ~viewer:P.Leakage.court scan ))
  in
  check_int "query.plans" 2 (delta d "query.plans");
  check_int "query.rows"
    (List.length r1.Exec.qr_rows + List.length r2.Exec.qr_rows)
    (delta d "query.rows");
  check_bool "index hits counted for the indexed query" true
    (delta d "query.index.hits" > 0);
  check_bool "scan fetches nothing through indexes" true
    (r2.Exec.qr_plan.Exec.pl_access = Exec.Scan)

(* ---- α scoping -------------------------------------------------------------------- *)

let alpha_viewer_scoping () =
  let _, idx = Lazy.force fixture in
  let q = parse_ok "rows" in
  let court = Exec.run idx ~viewer:P.Leakage.court q in
  check_int "court sees everything" (Idx.row_count idx)
    (List.length court.Exec.qr_rows);
  check_int "court is never refused" 0 court.Exec.qr_refused;
  (* A provider/beneficiary viewer: strictly fewer rows, every one of
     them individually α-authorized, and the arithmetic adds up. *)
  let viewer = G.Asn.of_int 2 in
  let ledger = P.Leakage.Ledger.create () in
  let mine = Exec.run ~ledger idx ~viewer q in
  check_bool "viewer sees strictly fewer rows than court" true
    (List.length mine.Exec.qr_rows < List.length court.Exec.qr_rows);
  check_bool "viewer sees some rows" true (mine.Exec.qr_rows <> []);
  check_bool "every returned row is authorized" true
    (List.for_all (Exec.authorized_for_row ~viewer) mine.Exec.qr_rows);
  check_int "returned + refused = total" (Idx.row_count idx)
    (List.length mine.Exec.qr_rows + mine.Exec.qr_refused);
  check_int "refusals accounted in the ledger" mine.Exec.qr_refused
    (P.Leakage.Ledger.refusal_count ledger);
  (* An AS outside every promise sees nothing. *)
  let stranger = Exec.run idx ~viewer:(G.Asn.of_int 999) q in
  check_bool "stranger sees nothing" true (stranger.Exec.qr_rows = []);
  check_int "stranger refused everything" (Idx.row_count idx)
    stranger.Exec.qr_refused

let alpha_never_leaks =
  qtest ~count:100 "exec: viewers only ever see α-authorized rows"
    QCheck2.Gen.(pair gen_query (int_bound 12))
    (fun (q, viewer) ->
      let _, idx = Lazy.force fixture in
      let viewer = G.Asn.of_int viewer in
      let res = Exec.run idx ~viewer q in
      (* Compare against the court's *unlimited* answer: with a limit the
         viewer's post-α top-N may legitimately reach past the court's
         cutoff, so the subset relation only holds against the full set. *)
      let court =
        Exec.run idx ~viewer:P.Leakage.court { q with Lang.q_limit = None }
      in
      List.for_all (Exec.authorized_for_row ~viewer) res.Exec.qr_rows
      && List.for_all (fun r -> List.mem r court.Exec.qr_rows) res.Exec.qr_rows)

(* ---- incremental materialization -------------------------------------------------- *)

let index_checkpoint_fast_path () =
  (* Same run journaled twice: with index checkpoints (snapshot cadence)
     and without (snapshot_every 0).  Queries agree byte-for-byte and the
     checkpointed build decodes strictly fewer frames in pass 2. *)
  let dir_chk, idx_chk = Lazy.force fixture in
  ignore dir_chk;
  with_dir (fun dir ->
      let eng, apply = mk_world ~jobs:1 ~cache:true fixture_seed in
      let s = Persist.start ~fsync:false ~snapshot_every:0 ~dir () in
      run_epochs ~session:(Some s) eng apply ~from:0 ~until:fixture_epochs;
      Persist.close s;
      let build d =
        counted (fun () ->
            match Idx.build ~quiet:true ~dir:d () with
            | Ok idx -> idx
            | Error e -> Alcotest.failf "build: %s" e)
      in
      let idx_flat, d_flat = build dir in
      check_bool "same rows either way" true
        (all_rows idx_flat = all_rows idx_chk);
      let _, d_chk = build dir_chk in
      let scanned d = delta d "query.scan.frames" in
      check_bool
        (Printf.sprintf "checkpointed build scans fewer frames (%d < %d)"
           (scanned d_chk) (scanned d_flat))
        true
        (scanned d_chk < scanned d_flat))

let recovered_store_is_byte_identical () =
  (* Crash simulation: tear the final epoch record off the journal, so
     its rows frame becomes an uncommitted orphan; then resume and re-run
     the lost epoch.  Every query must render byte-identically against
     the untouched fixture store. *)
  let dir_ref, _ = Lazy.force fixture in
  with_dir (fun dir ->
      let eng, apply = mk_world ~jobs:1 ~cache:true fixture_seed in
      let s = Persist.start ~fsync:false ~snapshot_every:2 ~dir () in
      run_epochs ~session:(Some s) eng apply ~from:0 ~until:fixture_epochs;
      Persist.close s;
      (* Find the last epoch frame's offset and cut the journal there. *)
      let last_epoch_off =
        let offs, _ =
          S.fold_frames ~dir ~init:[]
            ~f:(fun acc ~off p ->
              if Frame.tag p = Some Frame.tag_epoch then off :: acc else acc)
            ()
        in
        List.hd offs
      in
      Unix.truncate (S.journal_path ~dir) last_epoch_off;
      (* The orphaned rows frame must not surface in query results. *)
      (match Idx.build ~quiet:true ~dir () with
      | Ok idx -> check_int "orphan excluded" (fixture_epochs - 1) (Idx.max_epoch idx)
      | Error e -> Alcotest.failf "post-crash build: %s" e);
      (* Resume re-runs the lost epoch, duplicating its rows frame; the
         duplicate must be deduplicated, not doubled. *)
      let eng2, apply2 = mk_world ~jobs:1 ~cache:true fixture_seed in
      (match Persist.resume ~quiet:true ~dir ~engine:eng2 ~apply:apply2 () with
      | Ok rs ->
          check_int "resumed one epoch short" (fixture_epochs - 1)
            rs.Persist.rs_epoch
      | Error e -> Alcotest.failf "resume: %s" e);
      let s2 = Persist.start ~fsync:false ~snapshot_every:2 ~dir () in
      run_epochs ~session:(Some s2) eng2 apply2 ~from:(fixture_epochs - 1)
        ~until:fixture_epochs;
      Persist.close s2;
      let render d qtext =
        match Idx.build ~quiet:true ~dir:d () with
        | Error e -> Alcotest.failf "build %s: %s" d e
        | Ok idx ->
            let q = parse_ok qtext in
            Exec.render_json ~query:q ~viewer:P.Leakage.court
              (Exec.run idx ~viewer:P.Leakage.court q)
      in
      List.iter
        (fun qtext ->
          check_string qtext (render dir_ref qtext) (render dir qtext))
        [
          "rows";
          "violations where epoch > 2 order by epoch desc";
          "rows where prefix in 10.0.0.0/8 and detected limit 7";
          "convictions";
        ])

let index_save_load_roundtrip () =
  let _, idx = Lazy.force fixture in
  match Idx.load (Idx.save idx) with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok idx' ->
      check_string "run id" (Idx.run_id idx) (Idx.run_id idx');
      check_int "rows" (Idx.row_count idx) (Idx.row_count idx');
      check_bool "same rows in order" true (all_rows idx = all_rows idx');
      check_bool "same prover postings" true
        (Idx.ids_prover idx (G.Asn.of_int 1)
        = Idx.ids_prover idx' (G.Asn.of_int 1))

let suite =
  [
    ("query: parser handles the ROADMAP example", `Quick, parser_roadmap_example);
    ("query: parser atoms", `Quick, parser_atoms);
    ("query: parser reports error positions", `Quick, parser_error_positions);
    parser_roundtrip;
    row_codec_roundtrip;
    rows_frame_roundtrip;
    ("store: fold_frames streams in order with offsets", `Quick, fold_frames_streams);
    ("store: fold_frames stops cleanly at a torn tail", `Quick, fold_frames_torn_tail);
    ("query: index rows = journal scan rows", `Quick, index_matches_journal_scan);
    planner_differential;
    ("query: planner picks the cheapest index", `Quick, planner_chooses_indexes);
    ("query: obs counters move", `Quick, query_counters);
    ("query: α viewer scoping and refusal accounting", `Quick, alpha_viewer_scoping);
    alpha_never_leaks;
    ("query: index checkpoints skip scan work", `Quick, index_checkpoint_fast_path);
    ("query: crash-recovered store answers byte-identically", `Quick, recovered_store_is_byte_identical);
    ("query: index save/load round-trips", `Quick, index_save_load_roundtrip);
  ]
