(* Tests for the pvr core: wire signatures, access control, gossip, the
   §3.2 and §3.3 protocols, the generalized graph protocol, the judge, the
   adversary matrix (Detection / Evidence / Accuracy) and the leakage audit
   (Confidentiality). *)

module P = Pvr
module G = Pvr_bgp
module R = Pvr_rfg
module C = Pvr_crypto

let asn = G.Asn.of_int
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prefix0 = G.Prefix.of_string "10.0.0.0/8"
let a_as = asn 1
let b_as = asn 100
let providers = List.init 4 (fun i -> asn (10 + i))

(* One shared keyring for the whole suite: keygen dominates runtime. *)
let keyring =
  lazy
    (P.Keyring.create ~bits:512
       (C.Drbg.of_int_seed 1000)
       (a_as :: b_as :: asn 2 :: providers))

let fresh_rng =
  let counter = ref 0 in
  fun () ->
    incr counter;
    C.Drbg.of_int_seed (7000 + !counter)

let mk_route n len =
  let path =
    List.init len (fun j -> if j = 0 then n else asn (2000 + j))
  in
  let base = G.Route.originate ~asn:n prefix0 in
  { base with G.Route.as_path = path; next_hop = n }

let announce ?(epoch = 1) n len =
  P.Runner.announce_of_route (Lazy.force keyring) ~provider:n ~prover:a_as
    ~epoch (mk_route n len)

(* ---- Keyring / Wire ----------------------------------------------------------- *)

let wire_sign_verify () =
  let kr = Lazy.force keyring in
  let ann = announce (asn 10) 2 in
  check_bool "verifies" true (P.Wire.verify kr ~encode:P.Wire.encode_announce ann);
  check_bool "unknown signer" false
    (P.Wire.verify kr ~encode:P.Wire.encode_announce
       (P.Wire.sign_with
          (P.Keyring.private_key kr a_as)
          ~as_:(asn 9999) ~encode:P.Wire.encode_announce ann.P.Wire.payload))

let wire_forged_identity_rejected () =
  let kr = Lazy.force keyring in
  (* Signed with A's key but claiming to be AS10. *)
  let forged =
    P.Wire.sign_with
      (P.Keyring.private_key kr a_as)
      ~as_:(asn 10) ~encode:P.Wire.encode_announce
      { P.Wire.ann_epoch = 1; ann_to = a_as; ann_route = mk_route (asn 10) 2 }
  in
  check_bool "rejected" false
    (P.Wire.verify kr ~encode:P.Wire.encode_announce forged)

let wire_tamper_rejected () =
  (* [signed] is private, so a verifier cannot even construct a tampered
     record; the binding shows up as: the signature is over the encoded
     payload, so verifying under a different encoding fails. *)
  let kr = Lazy.force keyring in
  let ann = announce (asn 10) 2 in
  check_bool "different encoding rejected" false
    (P.Wire.verify kr
       ~encode:(fun a -> P.Wire.encode_announce a ^ "!")
       ann);
  check_bool "payload-bound signatures differ" true
    ((announce (asn 10) 2).P.Wire.signature
    <> (announce (asn 10) 3).P.Wire.signature)

let keyring_unknown_raises () =
  let kr = Lazy.force keyring in
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (P.Keyring.public_key kr (asn 424242)))

(* ---- Access control ------------------------------------------------------------ *)

let alpha_figure1 () =
  let alpha = P.Access_control.figure1 ~beneficiary:b_as ~providers in
  let n1 = List.hd providers in
  check_bool "Ni sees own input" true
    (P.Access_control.permits_vertex alpha ~viewer:n1 (R.Promise.input_var n1));
  check_bool "Ni cannot see Nj's input" false
    (P.Access_control.permits_vertex alpha ~viewer:n1
       (R.Promise.input_var (List.nth providers 1)));
  check_bool "B sees output" true
    (P.Access_control.permits_vertex alpha ~viewer:b_as
       (R.Promise.output_var b_as));
  check_bool "Ni cannot see output" false
    (P.Access_control.permits_vertex alpha ~viewer:n1
       (R.Promise.output_var b_as));
  check_bool "everyone sees min" true
    (P.Access_control.permits_vertex alpha ~viewer:n1 "op:min"
    && P.Access_control.permits_vertex alpha ~viewer:b_as "op:min")

let alpha_components_independent () =
  let alpha =
    P.Access_control.allow_component P.Access_control.deny_all ~viewer:b_as
      "v" P.Access_control.Payload
  in
  check_bool "payload yes" true
    (P.Access_control.permits alpha ~viewer:b_as "v" P.Access_control.Payload);
  check_bool "preds no" false
    (P.Access_control.permits alpha ~viewer:b_as "v" P.Access_control.Preds);
  check_bool "vertex (all three) no" false
    (P.Access_control.permits_vertex alpha ~viewer:b_as "v")

let alpha_for_promise_verifiable () =
  (* The minimal α from for_promise passes the §4 minimum-access check. *)
  let promise = R.Promise.Shortest_from providers in
  let g = R.Promise.reference_rfg promise ~beneficiary:b_as ~neighbors:providers in
  let alpha = P.Access_control.for_promise promise ~beneficiary:b_as ~neighbors:providers in
  let issues =
    R.Static_check.verifiable_under g ~promise ~beneficiary:b_as
      ~neighbors:providers
      ~visible:(fun ~viewer v -> P.Access_control.permits_vertex alpha ~viewer v)
  in
  check_int "verifiable" 0 (List.length issues)

(* ---- Gossip --------------------------------------------------------------------- *)

let sign_commit ?(epoch = 1) ?(scheme = "min") commitments =
  P.Wire.sign (Lazy.force keyring) ~as_:a_as ~encode:P.Wire.encode_commit
    {
      P.Wire.cmt_epoch = epoch;
      cmt_prefix = prefix0;
      cmt_scheme = scheme;
      cmt_commitments = commitments;
    }

let gossip_consistent_ok () =
  let kr = Lazy.force keyring in
  let g = P.Gossip.create kr in
  let c = sign_commit [ "x" ] in
  check_bool "first receive" true (P.Gossip.receive g ~holder:b_as c = None);
  check_bool "same again" true (P.Gossip.receive g ~holder:b_as c = None);
  List.iter
    (fun n -> ignore (P.Gossip.receive g ~holder:n c))
    providers;
  check_int "clean round" 0
    (List.length
       (P.Gossip.run_round g ~edges:(P.Gossip.clique_edges (b_as :: providers))))

let gossip_detects_equivocation () =
  let kr = Lazy.force keyring in
  let g = P.Gossip.create kr in
  let c1 = sign_commit [ "x" ] and c2 = sign_commit [ "y" ] in
  ignore (P.Gossip.receive g ~holder:b_as c1);
  let n1 = List.hd providers in
  ignore (P.Gossip.receive g ~holder:n1 c2);
  let evs = P.Gossip.exchange g b_as n1 in
  check_bool "equivocation surfaced" true
    (List.exists (function P.Evidence.Equivocation _ -> true | _ -> false) evs)

let gossip_different_epochs_no_conflict () =
  let kr = Lazy.force keyring in
  let g = P.Gossip.create kr in
  ignore (P.Gossip.receive g ~holder:b_as (sign_commit ~epoch:1 [ "x" ]));
  check_bool "different epoch ok" true
    (P.Gossip.receive g ~holder:b_as (sign_commit ~epoch:2 [ "y" ]) = None)

let gossip_ring_misses_pairwise_split () =
  (* With ring gossip, equivocation between two non-adjacent holders can
     escape a single round — the E8 ablation scenario. *)
  let kr = Lazy.force keyring in
  let members = b_as :: providers in
  let g = P.Gossip.create kr in
  let c1 = sign_commit [ "x" ] and c2 = sign_commit [ "y" ] in
  (* Give the conflicting pair to holders that are two hops apart. *)
  (match members with
  | h1 :: _ :: h3 :: _ ->
      ignore (P.Gossip.receive g ~holder:h1 c1);
      ignore (P.Gossip.receive g ~holder:h3 c2)
  | _ -> Alcotest.fail "need members");
  let ring = P.Gossip.ring_edges members in
  let one_round = P.Gossip.run_round g ~edges:ring in
  (* After enough rounds it must surface. *)
  let rec until_found k acc =
    if acc <> [] || k = 0 then acc
    else until_found (k - 1) (P.Gossip.run_round g ~edges:ring)
  in
  let eventually = until_found 5 one_round in
  check_bool "eventually detected on ring" true (eventually <> [])

let gossip_invalid_signature_ignored () =
  let kr = Lazy.force keyring in
  let g = P.Gossip.create kr in
  (* Signed with the wrong private key: verification must fail. *)
  let bad =
    P.Wire.sign_with
      (P.Keyring.private_key kr (asn 2))
      ~as_:a_as ~encode:P.Wire.encode_commit
      {
        P.Wire.cmt_epoch = 1;
        cmt_prefix = prefix0;
        cmt_scheme = "min";
        cmt_commitments = [ "x" ];
      }
  in
  check_bool "ignored" true (P.Gossip.receive g ~holder:b_as bad = None);
  check_bool "not stored" true
    (P.Gossip.view g ~holder:b_as ~signer:a_as ~epoch:1 ~prefix:prefix0
       ~scheme:"min"
    = None)

(* ---- Proto_exists ----------------------------------------------------------------- *)

let exists_honest_with_routes () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let inputs = [ announce (asn 10) 2; announce (asn 11) 3 ] in
  let out =
    P.Proto_exists.prove rng kr ~prover:a_as ~beneficiary:b_as ~epoch:1
      ~prefix:prefix0 ~inputs
  in
  check_int "B clean" 0
    (List.length
       (P.Proto_exists.check_beneficiary kr ~me:b_as ~commit:out.commit
          ~disclosure:out.beneficiary_disclosure));
  List.iter
    (fun (ann : P.Wire.announce P.Wire.signed) ->
      let d = List.assoc_opt ann.P.Wire.signer out.neighbor_disclosures in
      check_int "Ni clean" 0
        (List.length
           (P.Proto_exists.check_neighbor kr ~me:ann.P.Wire.signer
              ~my_announce:ann ~commit:out.commit ~disclosure:d)))
    inputs;
  check_bool "exported" true (out.beneficiary_disclosure.bd_export <> None)

let exists_honest_no_routes () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let out =
    P.Proto_exists.prove rng kr ~prover:a_as ~beneficiary:b_as ~epoch:1
      ~prefix:prefix0 ~inputs:[]
  in
  check_bool "no export" true (out.beneficiary_disclosure.bd_export = None);
  check_int "B clean" 0
    (List.length
       (P.Proto_exists.check_beneficiary kr ~me:b_as ~commit:out.commit
          ~disclosure:out.beneficiary_disclosure))

let exists_detects_suppression () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let inputs = [ announce (asn 10) 2 ] in
  let out =
    P.Proto_exists.prove rng kr ~prover:a_as ~beneficiary:b_as ~epoch:1
      ~prefix:prefix0 ~inputs
  in
  let evs =
    P.Proto_exists.check_beneficiary kr ~me:b_as ~commit:out.commit
      ~disclosure:{ out.beneficiary_disclosure with bd_export = None }
  in
  check_bool "missing export claimed" true
    (List.exists
       (function P.Evidence.Missing_export_claim _ -> true | _ -> false)
       evs)

let exists_detects_false_bit () =
  (* A claims b = 0 although AS10 provided a route. *)
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let ann = announce (asn 10) 2 in
  (* Honest prove with no inputs gives a b=0 commitment and opening. *)
  let out =
    P.Proto_exists.prove rng kr ~prover:a_as ~beneficiary:b_as ~epoch:1
      ~prefix:prefix0 ~inputs:[]
  in
  let opening =
    match out.beneficiary_disclosure.bd_openings with
    | [ (1, o) ] -> o
    | _ -> Alcotest.fail "expected one opening"
  in
  let evs =
    P.Proto_exists.check_neighbor kr ~me:(asn 10) ~my_announce:ann
      ~commit:out.commit
      ~disclosure:(Some { nd_index = 1; nd_opening = opening })
  in
  check_bool "false bit" true
    (List.exists (function P.Evidence.False_bit _ -> true | _ -> false) evs)

let exists_ring_variant () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let ring = providers in
  let s =
    P.Proto_exists.ring_announce rng kr ~ring ~signer:(List.nth providers 2)
      ~epoch:1 ~prefix:prefix0
  in
  check_bool "ring verifies" true
    (P.Proto_exists.ring_check kr ~ring ~epoch:1 ~prefix:prefix0 s);
  check_bool "wrong epoch" false
    (P.Proto_exists.ring_check kr ~ring ~epoch:2 ~prefix:prefix0 s);
  check_bool "wrong ring" false
    (P.Proto_exists.ring_check kr ~ring:(b_as :: List.tl ring) ~epoch:1
       ~prefix:prefix0 s)

(* ---- Proto_min -------------------------------------------------------------------- *)

let min_honest_clean () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let inputs = List.mapi (fun i n -> announce n (i + 1)) providers in
  let out =
    P.Proto_min.prove ~max_path_len:8 rng kr ~prover:a_as ~beneficiary:b_as
      ~epoch:1 ~prefix:prefix0 ~inputs
  in
  check_int "B clean" 0
    (List.length
       (P.Proto_min.check_beneficiary kr ~me:b_as ~commit:out.commit
          ~disclosure:out.beneficiary_disclosure));
  List.iter
    (fun (ann : P.Wire.announce P.Wire.signed) ->
      let d = List.assoc_opt ann.P.Wire.signer out.neighbor_disclosures in
      check_int "Ni clean" 0
        (List.length
           (P.Proto_min.check_neighbor kr ~me:ann.P.Wire.signer
              ~my_announce:ann ~commit:out.commit ~disclosure:d)))
    inputs;
  match out.beneficiary_disclosure.bd_export with
  | Some e ->
      check_int "shortest exported" 1
        (G.Route.path_length e.P.Wire.payload.P.Wire.exp_route)
  | None -> Alcotest.fail "expected export"

let min_commitment_count () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let out =
    P.Proto_min.prove ~max_path_len:16 rng kr ~prover:a_as ~beneficiary:b_as
      ~epoch:1 ~prefix:prefix0 ~inputs:[ announce (asn 10) 3 ]
  in
  check_int "k commitments" 16
    (List.length out.commit.P.Wire.payload.P.Wire.cmt_commitments)

let min_ignores_invalid_inputs () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  (* Wrong epoch and wrong recipient announcements must be discarded. *)
  let wrong_epoch = announce ~epoch:9 (asn 10) 1 in
  let ok = announce (asn 11) 3 in
  let out =
    P.Proto_min.prove ~max_path_len:8 rng kr ~prover:a_as ~beneficiary:b_as
      ~epoch:1 ~prefix:prefix0 ~inputs:[ wrong_epoch; ok ]
  in
  match out.beneficiary_disclosure.bd_export with
  | Some e ->
      check_int "only the valid input counts" 3
        (G.Route.path_length e.P.Wire.payload.P.Wire.exp_route)
  | None -> Alcotest.fail "expected export"

let min_paths_beyond_k_ignored () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let out =
    P.Proto_min.prove ~max_path_len:4 rng kr ~prover:a_as ~beneficiary:b_as
      ~epoch:1 ~prefix:prefix0 ~inputs:[ announce (asn 10) 9 ]
  in
  check_bool "no admissible input, no export" true
    (out.beneficiary_disclosure.bd_export = None)

(* Property: over random scenarios, the honest §3.3 run is clean and exports
   the minimum. *)
let min_honest_property =
  qtest "honest min rounds are clean and minimal"
    QCheck2.Gen.(list_size (int_range 0 4) (int_range 1 8))
    (fun lens ->
      let kr = Lazy.force keyring in
      let rng = fresh_rng () in
      let inputs = List.mapi (fun i l -> announce (List.nth providers i) l) lens in
      let out =
        P.Proto_min.prove ~max_path_len:8 rng kr ~prover:a_as
          ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~inputs
      in
      let b_clean =
        P.Proto_min.check_beneficiary kr ~me:b_as ~commit:out.commit
          ~disclosure:out.beneficiary_disclosure
        = []
      in
      let ns_clean =
        List.for_all
          (fun (ann : P.Wire.announce P.Wire.signed) ->
            P.Proto_min.check_neighbor kr ~me:ann.P.Wire.signer
              ~my_announce:ann ~commit:out.commit
              ~disclosure:(List.assoc_opt ann.P.Wire.signer out.neighbor_disclosures)
            = [])
          inputs
      in
      let minimal =
        match (out.beneficiary_disclosure.bd_export, lens) with
        | None, [] -> true
        | Some e, _ :: _ ->
            G.Route.path_length e.P.Wire.payload.P.Wire.exp_route
            = List.fold_left min max_int lens
        | _ -> false
      in
      b_clean && ns_clean && minimal)

(* ---- Adversary matrix: Detection + Evidence + Accuracy --------------------------- *)

let run_matrix behaviour =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let routes = List.mapi (fun i n -> (n, mk_route n (i + 2))) providers in
  P.Runner.min_round ~max_path_len:8 behaviour rng kr ~prover:a_as
    ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~routes

let matrix_honest_accuracy () =
  let r = run_matrix P.Adversary.Honest in
  check_bool "no detection" false r.detected;
  check_bool "no conviction" false r.convicted

let matrix_all_behaviours_convicted () =
  List.iter
    (fun beh ->
      if beh <> P.Adversary.Honest then begin
        let r = run_matrix beh in
        check_bool (P.Adversary.to_string beh ^ " detected") true r.detected;
        check_bool (P.Adversary.to_string beh ^ " convicted") true r.convicted
      end)
    P.Adversary.all

let matrix_detectors_as_expected () =
  let inputs = List.mapi (fun i n -> (n, i + 2)) providers in
  List.iter
    (fun beh ->
      let r = run_matrix beh in
      let expected = P.Adversary.expected_detectors beh ~inputs in
      List.iter
        (fun d ->
          check_bool
            (Printf.sprintf "%s: expected detector present"
               (P.Adversary.to_string beh))
            true
            (List.exists (fun (who, _) -> who = d) r.raised))
        expected)
    P.Adversary.all

let matrix_no_false_accusations () =
  (* Whatever evidence honest parties raise against a *misbehaving* A, none
     of it may be judged against an *honest* A: re-judge honest-run
     evidence (there is none) and check exoneration paths via a fabricated
     claim. *)
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let routes = List.mapi (fun i n -> (n, mk_route n (i + 2))) providers in
  let announces =
    List.map
      (fun (n, r) ->
        P.Runner.announce_of_route kr ~provider:n ~prover:a_as ~epoch:1 r)
      routes
  in
  let run =
    P.Adversary.run_min P.Adversary.Honest ~max_path_len:8 rng kr ~prover:a_as
      ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~inputs:announces
  in
  (* B falsely claims it got nothing. *)
  let claim =
    P.Evidence.Missing_export_claim
      {
        commit = run.P.Adversary.commit_for b_as;
        openings =
          List.map
            (fun (i, o) -> (i, o))
            run.P.Adversary.beneficiary_disclosure.bd_openings;
        claimant = b_as;
      }
  in
  check_bool "honest A exonerated" true
    (P.Judge.evaluate kr ~respond:run.P.Adversary.respond claim
    = P.Judge.Exonerated)

let matrix_stubborn_omission_guilty () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let announces = [ announce (asn 10) 2 ] in
  let run =
    P.Adversary.run_min P.Adversary.Honest ~max_path_len:8 rng kr ~prover:a_as
      ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~inputs:announces
  in
  let claim =
    P.Evidence.Missing_export_claim
      {
        commit = run.P.Adversary.commit_for b_as;
        openings = run.P.Adversary.beneficiary_disclosure.bd_openings;
        claimant = b_as;
      }
  in
  check_bool "no response -> guilty" true
    (P.Judge.evaluate_offline kr claim = P.Judge.Guilty)

let judge_rejects_cross_scheme_confusion () =
  (* A False_bit framed against an "exists" commitment with index > 1 (or a
     min commitment with a too-long witness) must be Rejected: the judge
     never convicts outside the scheme's semantics. *)
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let short = announce (asn 10) 2 in
  let long = announce (asn 11) 6 in
  let out =
    P.Proto_min.prove ~max_path_len:8 rng kr ~prover:a_as ~beneficiary:b_as
      ~epoch:1 ~prefix:prefix0 ~inputs:[ short ]
  in
  (* Bits encode shortest=2, so b_1 = 0 truthfully.  A witness of length 6
     does NOT force b_1; evidence claiming so is bogus. *)
  let o1 = List.assoc 1 out.beneficiary_disclosure.bd_openings in
  let bogus =
    P.Evidence.False_bit { commit = out.commit; index = 1; opening = o1; witness = long }
  in
  check_bool "long witness cannot frame a low bit" true
    (P.Judge.evaluate_offline kr bogus = P.Judge.Rejected)

let min_tie_between_equal_routes () =
  (* Two providers announce equal-length routes: the export must be one of
     them and everyone stays clean. *)
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let inputs = [ announce (asn 10) 3; announce (asn 11) 3 ] in
  let out =
    P.Proto_min.prove ~max_path_len:8 rng kr ~prover:a_as ~beneficiary:b_as
      ~epoch:1 ~prefix:prefix0 ~inputs
  in
  check_int "B clean on tie" 0
    (List.length
       (P.Proto_min.check_beneficiary kr ~me:b_as ~commit:out.commit
          ~disclosure:out.beneficiary_disclosure));
  match out.beneficiary_disclosure.bd_export with
  | Some e ->
      check_int "tied length exported" 3
        (G.Route.path_length e.P.Wire.payload.P.Wire.exp_route)
  | None -> Alcotest.fail "expected export"

let judge_rejects_fabrications () =
  (* Evidence whose internals do not hold up must be Rejected, protecting an
     innocent A (Accuracy). *)
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let inputs = [ announce (asn 10) 2; announce (asn 11) 3 ] in
  let out =
    P.Proto_min.prove ~max_path_len:8 rng kr ~prover:a_as ~beneficiary:b_as
      ~epoch:1 ~prefix:prefix0 ~inputs
  in
  let some_opening = List.assoc 2 out.beneficiary_disclosure.bd_openings in
  (* Claim bit 2 is 0 — but it opens to 1, so the evidence is bogus. *)
  let bogus =
    P.Evidence.False_bit
      {
        commit = out.commit;
        index = 2;
        opening = some_opening;
        witness = List.hd inputs;
      }
  in
  check_bool "bogus false-bit rejected" true
    (P.Judge.evaluate_offline kr bogus = P.Judge.Rejected);
  (* Equivocation evidence with twice the same message is no evidence. *)
  let dup = P.Evidence.Equivocation { first = out.commit; second = out.commit } in
  check_bool "duplicate commit rejected" true
    (P.Judge.evaluate_offline kr dup = P.Judge.Rejected)

let judge_convicts_each_selfcontained_kind () =
  (* Sanity: run each behaviour and verify the judged kinds match. *)
  let expect_kind beh pred =
    let r = run_matrix beh in
    check_bool
      (P.Adversary.to_string beh ^ " evidence kind")
      true
      (List.exists (fun (_, e, v) -> v = P.Judge.Guilty && pred e) r.judged)
  in
  expect_kind P.Adversary.Export_nonminimal (function
    | P.Evidence.Nonminimal_export _ -> true
    | _ -> false);
  expect_kind P.Adversary.False_bits (function
    | P.Evidence.False_bit _ -> true
    | _ -> false);
  expect_kind P.Adversary.Equivocate (function
    | P.Evidence.Equivocation _ -> true
    | _ -> false);
  expect_kind P.Adversary.Suppress_export (function
    | P.Evidence.Missing_export_claim _ -> true
    | _ -> false);
  expect_kind P.Adversary.Refuse_disclosure (function
    (* The refusal surfaces as a timeout around the omission claim: over
       the network, withholding is indistinguishable from loss. *)
    | P.Evidence.Timeout { claim = P.Evidence.Missing_disclosure_claim _; _ }
      ->
        true
    | _ -> false);
  expect_kind P.Adversary.Forge_provenance (function
    | P.Evidence.Bad_provenance _ -> true
    | _ -> false)

let matrix_property_random_lengths =
  qtest "adversary matrix over random scenarios" ~count:10
    QCheck2.Gen.(list_size (int_range 2 4) (int_range 1 7))
    (fun lens ->
      let kr = Lazy.force keyring in
      let rng = fresh_rng () in
      let routes =
        List.mapi (fun i l -> (List.nth providers i, mk_route (List.nth providers i) l)) lens
      in
      let inputs = List.mapi (fun i l -> (List.nth providers i, l)) lens in
      List.for_all
        (fun beh ->
          let r =
            P.Runner.min_round ~max_path_len:8 beh rng kr ~prover:a_as
              ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~routes
          in
          let expected = P.Adversary.expected_detectors beh ~inputs in
          if beh = P.Adversary.Honest then (not r.detected) && not r.convicted
          else if expected = [] then true (* undetectable instance *)
          else r.detected && r.convicted)
        P.Adversary.all)

(* ---- Graph protocol ----------------------------------------------------------------- *)

let graph_round promise routes =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  P.Runner.graph_round ~max_path_len:8 rng kr ~prover:a_as ~beneficiary:b_as
    ~epoch:1 ~prefix:prefix0 ~promise ~routes

let graph_honest_min_clean () =
  let routes = List.mapi (fun i n -> (n, mk_route n (i + 1))) providers in
  let r = graph_round (R.Promise.Shortest_from providers) routes in
  check_bool "clean" false r.detected

let graph_honest_fig2_clean () =
  let routes = List.mapi (fun i n -> (n, mk_route n (4 - i))) providers in
  let promise =
    R.Promise.Prefer_unless_shorter
      { fallback = List.tl providers; override = List.hd providers }
  in
  let r = graph_round promise routes in
  check_bool "clean" false r.detected

let graph_honest_exists_clean () =
  let routes = [ (List.hd providers, mk_route (List.hd providers) 3) ] in
  let r = graph_round (R.Promise.Export_if_any providers) routes in
  check_bool "clean" false r.detected

(* Property: honest graph rounds are clean for every promise shape over
   random scenarios. *)
let graph_honest_property =
  qtest "honest graph rounds clean across promises" ~count:10
    QCheck2.Gen.(pair (int_range 0 5) (list_size (int_range 1 4) (int_range 1 7)))
    (fun (which, lens) ->
      let subset = List.filteri (fun i _ -> i < List.length lens) providers in
      let routes =
        List.map2 (fun n l -> (n, mk_route n l)) subset lens
      in
      let promise =
        match which with
        | 0 -> R.Promise.Shortest_route
        | 1 -> R.Promise.Shortest_from subset
        | 2 -> R.Promise.Within_hops 2
        | 3 -> R.Promise.Export_if_any subset
        | 4 | _ -> begin
            match subset with
            | override :: (_ :: _ as fallback) ->
                R.Promise.Prefer_unless_shorter { fallback; override }
            | _ -> R.Promise.Shortest_route
          end
      in
      let r = graph_round promise routes in
      not r.P.Runner.detected)

let graph_honest_within_hops_clean () =
  (* Promise 3 over the graph protocol: threshold bits bound the window. *)
  let routes = List.mapi (fun i n -> (n, mk_route n (i + 2))) providers in
  let r = graph_round (R.Promise.Within_hops 2) routes in
  check_bool "clean" false r.detected

let graph_within_hops_window_enforced () =
  (* A window violation is caught: run the prover on an RFG whose operator
     *claims* within-2 but actually lets a route 4 hops beyond the minimum
     through (we fake it by evaluating a permissive graph and pairing it
     with a strict operator payload — simplest construction: check that B
     flags an export outside [m, m+n] by handing it a longer export). *)
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let inputs =
    [ announce (asn 10) 2; announce (asn 11) 6 ]
  in
  let promise = R.Promise.Within_hops 2 in
  let rfg =
    R.Promise.reference_rfg promise ~beneficiary:b_as
      ~neighbors:[ asn 10; asn 11 ]
  in
  let alpha =
    P.Access_control.for_promise promise ~beneficiary:b_as
      ~neighbors:[ asn 10; asn 11 ]
  in
  let ps =
    P.Proto_graph.prove ~max_path_len:8 rng kr ~prover:a_as ~epoch:1
      ~prefix:prefix0 ~rfg ~inputs
  in
  let commit = P.Proto_graph.commit_message ps in
  let ds = P.Proto_graph.disclose ~role:`Beneficiary ps ~alpha ~viewer:b_as in
  (* The long (length-6) input is outside the window [2, 4]; A exports it
     anyway with a freshly signed export. *)
  let long = List.nth inputs 1 in
  let bad_export =
    P.Wire.sign kr ~as_:a_as ~encode:P.Wire.encode_export
      {
        P.Wire.exp_epoch = 1;
        exp_to = b_as;
        exp_route = long.P.Wire.payload.P.Wire.ann_route;
        exp_provenance = Some long;
      }
  in
  let evs =
    P.Proto_graph.check_beneficiary kr ~me:b_as ~commit ~disclosures:ds
      ~export:(Some bad_export)
  in
  check_bool "window violation caught" true (evs <> [])

let graph_disclosure_integrity () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let inputs = List.mapi (fun i n -> announce n (i + 1)) providers in
  let promise = R.Promise.Shortest_from providers in
  let rfg = R.Promise.reference_rfg promise ~beneficiary:b_as ~neighbors:providers in
  let alpha = P.Access_control.for_promise promise ~beneficiary:b_as ~neighbors:providers in
  let ps =
    P.Proto_graph.prove ~max_path_len:8 rng kr ~prover:a_as ~epoch:1
      ~prefix:prefix0 ~rfg ~inputs
  in
  let root = P.Proto_graph.root ps in
  let ds = P.Proto_graph.disclose ~role:`Beneficiary ps ~alpha ~viewer:b_as in
  check_bool "has disclosures" true (ds <> []);
  List.iter
    (fun d ->
      check_bool "integrity" true
        (P.Proto_graph.check_disclosure_integrity ~root d);
      check_bool "wrong root fails" false
        (P.Proto_graph.check_disclosure_integrity
           ~root:(String.make 32 '\x00') d))
    ds

let graph_alpha_confidentiality () =
  (* A provider must never receive another provider's input payload. *)
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let inputs = List.mapi (fun i n -> announce n (i + 1)) providers in
  let promise = R.Promise.Shortest_from providers in
  let rfg = R.Promise.reference_rfg promise ~beneficiary:b_as ~neighbors:providers in
  let alpha = P.Access_control.for_promise promise ~beneficiary:b_as ~neighbors:providers in
  let ps =
    P.Proto_graph.prove ~max_path_len:8 rng kr ~prover:a_as ~epoch:1
      ~prefix:prefix0 ~rfg ~inputs
  in
  let n1 = List.hd providers and n2 = List.nth providers 1 in
  let ds = P.Proto_graph.disclose ~role:(`Provider 1) ps ~alpha ~viewer:n1 in
  check_bool "own var payload present" true
    (List.exists
       (fun (d : P.Proto_graph.disclosure) ->
         d.vertex = R.Promise.input_var n1 && d.payload <> None)
       ds);
  check_bool "other var absent entirely" true
    (not
       (List.exists
          (fun (d : P.Proto_graph.disclosure) -> d.vertex = R.Promise.input_var n2)
          ds));
  check_bool "output var not disclosed to provider" true
    (not
       (List.exists
          (fun (d : P.Proto_graph.disclosure) -> d.vertex = R.Promise.output_var b_as)
          ds))

let graph_provider_gets_only_own_bit () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let inputs = List.mapi (fun i n -> announce n (i + 1)) providers in
  let promise = R.Promise.Shortest_from providers in
  let rfg = R.Promise.reference_rfg promise ~beneficiary:b_as ~neighbors:providers in
  let alpha = P.Access_control.for_promise promise ~beneficiary:b_as ~neighbors:providers in
  let ps =
    P.Proto_graph.prove ~max_path_len:8 rng kr ~prover:a_as ~epoch:1
      ~prefix:prefix0 ~rfg ~inputs
  in
  let n3 = List.nth providers 2 in
  (* n3's route has length 3. *)
  let ds = P.Proto_graph.disclose ~role:(`Provider 3) ps ~alpha ~viewer:n3 in
  let op_d =
    List.find
      (fun (d : P.Proto_graph.disclosure) -> d.vertex = "op:min")
      ds
  in
  check_bool "exactly the one bit" true
    (List.map fst op_d.bit_openings = [ 3 ])

let graph_wrong_input_detected () =
  (* A commits a different route than AS10 announced: AS10 must detect. *)
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let real = announce (asn 10) 2 in
  let fake = announce (asn 10) 4 in
  let promise = R.Promise.Shortest_from providers in
  let rfg = R.Promise.reference_rfg promise ~beneficiary:b_as ~neighbors:providers in
  let alpha = P.Access_control.for_promise promise ~beneficiary:b_as ~neighbors:providers in
  (* Prover ran on the fake announcement... *)
  let ps =
    P.Proto_graph.prove ~max_path_len:8 rng kr ~prover:a_as ~epoch:1
      ~prefix:prefix0 ~rfg ~inputs:[ fake ]
  in
  let commit = P.Proto_graph.commit_message ps in
  let ds = P.Proto_graph.disclose ~role:(`Provider 2) ps ~alpha ~viewer:(asn 10) in
  (* ...but AS10 checks against what it actually sent. *)
  let evs =
    P.Proto_graph.check_provider kr ~me:(asn 10) ~my_announce:real ~commit
      ~disclosures:ds
  in
  check_bool "wrong input detected" true
    (List.exists
       (function
         | P.Evidence.Graph_violation
             { offence = P.Evidence.Wrong_input_value _; _ } ->
             true
         | _ -> false)
       evs);
  (* And the judge confirms it from the evidence alone. *)
  List.iter
    (fun e ->
      match e with
      | P.Evidence.Graph_violation _ ->
          check_bool "judge confirms" true
            (P.Judge.evaluate_offline kr e = P.Judge.Guilty)
      | _ -> ())
    evs

(* ---- Threat-model boundary ------------------------------------------------------------- *)

let collusion_defeats_detection () =
  (* §2.3 Detection is conditional: "...and all of A's neighbors are
     correct".  If the ONE provider whose bit A falsified colludes (stays
     silent), nobody detects — the precondition is tight.  With a second
     honest short-route provider, detection returns. *)
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let short = announce (asn 10) 1 in
  let long = announce (asn 11) 5 in
  let run inputs =
    P.Adversary.run_min P.Adversary.False_bits ~max_path_len:8 rng kr
      ~prover:a_as ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~inputs
  in
  (* Case 1: only AS10 could catch the lie, and it colludes (we simply do
     not run its check).  B's view is internally consistent. *)
  let out = run [ short; long ] in
  let b_evidence =
    P.Proto_min.check_beneficiary kr ~me:b_as ~commit:(out.commit_for b_as)
      ~disclosure:out.beneficiary_disclosure
  in
  let honest_long_evidence =
    P.Proto_min.check_neighbor kr ~me:(asn 11) ~my_announce:long
      ~commit:(out.commit_for (asn 11))
      ~disclosure:(Option.join (List.assoc_opt (asn 11) out.neighbor_disclosures))
  in
  check_int "B sees nothing" 0 (List.length b_evidence);
  check_int "the long-route provider sees nothing" 0
    (List.length honest_long_evidence);
  (* Case 2: an honest second short provider restores detection. *)
  let short2 = announce (asn 12) 2 in
  let out2 = run [ short; long; short2 ] in
  let honest_short2 =
    P.Proto_min.check_neighbor kr ~me:(asn 12) ~my_announce:short2
      ~commit:(out2.commit_for (asn 12))
      ~disclosure:(Option.join (List.assoc_opt (asn 12) out2.neighbor_disclosures))
  in
  check_bool "an honest short provider detects" true (honest_short2 <> [])

let multi_prover_gossip_isolation () =
  (* Two provers commit in the same epoch/prefix; gossip must keep their
     slots apart — consistent commitments from different signers never
     count as equivocation. *)
  let kr = Lazy.force keyring in
  let g = P.Gossip.create kr in
  let commit_by signer payload =
    P.Wire.sign kr ~as_:signer ~encode:P.Wire.encode_commit
      {
        P.Wire.cmt_epoch = 1;
        cmt_prefix = prefix0;
        cmt_scheme = "min";
        cmt_commitments = [ payload ];
      }
  in
  let c1 = commit_by a_as "x" and c2 = commit_by (asn 2) "y" in
  ignore (P.Gossip.receive g ~holder:b_as c1);
  check_bool "different signer, no conflict" true
    (P.Gossip.receive g ~holder:b_as c2 = None);
  check_int "clean round with both" 0
    (List.length
       (P.Gossip.run_round g ~edges:(P.Gossip.clique_edges [ b_as; asn 10 ])))

(* ---- Evidence serialization ----------------------------------------------------------- *)

let evidence_codec_roundtrip_all_kinds () =
  (* Collect one piece of evidence per adversary behaviour, serialize it,
     decode it, and confirm the judge reaches the same verdict on the
     decoded copy. *)
  let kr = Lazy.force keyring in
  List.iter
    (fun beh ->
      if beh <> P.Adversary.Honest then begin
        let r = run_matrix beh in
        List.iter
          (fun (_, e, v) ->
            let bytes = P.Evidence_codec.encode e in
            match P.Evidence_codec.decode bytes with
            | None ->
                Alcotest.failf "decode failed for %s" (P.Evidence.describe e)
            | Some e' ->
                check_bool
                  ("same accused: " ^ P.Adversary.to_string beh)
                  true
                  (G.Asn.equal (P.Evidence.accused e') (P.Evidence.accused e));
                (* Self-contained evidence must still convict offline. *)
                let v' = P.Judge.evaluate_offline kr e' in
                let offline = P.Judge.evaluate_offline kr e in
                check_bool
                  ("verdict preserved offline: " ^ P.Adversary.to_string beh)
                  true (v' = offline);
                ignore v)
          r.judged
      end)
    P.Adversary.all

let evidence_codec_roundtrip_graph () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let real = announce (asn 10) 2 in
  let fake = announce (asn 10) 4 in
  let promise = R.Promise.Shortest_from providers in
  let rfg = R.Promise.reference_rfg promise ~beneficiary:b_as ~neighbors:providers in
  let alpha = P.Access_control.for_promise promise ~beneficiary:b_as ~neighbors:providers in
  let ps =
    P.Proto_graph.prove ~max_path_len:8 rng kr ~prover:a_as ~epoch:1
      ~prefix:prefix0 ~rfg ~inputs:[ fake ]
  in
  let commit = P.Proto_graph.commit_message ps in
  let ds = P.Proto_graph.disclose ~role:(`Provider 2) ps ~alpha ~viewer:(asn 10) in
  let evs =
    P.Proto_graph.check_provider kr ~me:(asn 10) ~my_announce:real ~commit
      ~disclosures:ds
  in
  List.iter
    (fun e ->
      match e with
      | P.Evidence.Graph_violation _ -> begin
          match P.Evidence_codec.of_hex (P.Evidence_codec.to_hex e) with
          | None -> Alcotest.fail "graph evidence decode failed"
          | Some e' ->
              check_bool "graph verdict survives transport" true
                (P.Judge.evaluate_offline kr e' = P.Judge.Guilty)
        end
      | _ -> ())
    evs

let evidence_codec_garbage =
  qtest "evidence decoder never crashes" ~count:200 QCheck2.Gen.string
    (fun s ->
      let _ = P.Evidence_codec.decode s in
      let _ = P.Evidence_codec.of_hex s in
      true)

(* ---- Wire transport codecs ----------------------------------------------------------- *)

let wire_announce_transport_roundtrip () =
  let kr = Lazy.force keyring in
  let ann = announce (asn 10) 3 in
  let bytes = P.Wire.encode_signed ~encode:P.Wire.encode_announce ann in
  match P.Wire.decode_signed ~decode:P.Wire.decode_announce bytes with
  | None -> Alcotest.fail "decode failed"
  | Some ann' ->
      check_bool "signature still verifies" true
        (P.Wire.verify kr ~encode:P.Wire.encode_announce ann');
      check_bool "payload preserved" true
        (P.Wire.encode_announce ann'.P.Wire.payload
        = P.Wire.encode_announce ann.P.Wire.payload)

let wire_commit_transport_roundtrip () =
  let kr = Lazy.force keyring in
  let commit = sign_commit ~scheme:"min" [ String.make 32 'a'; String.make 32 'b' ] in
  let bytes = P.Wire.encode_signed ~encode:P.Wire.encode_commit commit in
  match P.Wire.decode_signed ~decode:P.Wire.decode_commit bytes with
  | None -> Alcotest.fail "decode failed"
  | Some c ->
      check_bool "verifies" true (P.Wire.verify kr ~encode:P.Wire.encode_commit c);
      check_int "commitments preserved" 2
        (List.length c.P.Wire.payload.P.Wire.cmt_commitments)

let wire_export_transport_roundtrip () =
  let kr = Lazy.force keyring in
  let chosen = announce (asn 11) 2 in
  let export =
    P.Wire.sign kr ~as_:a_as ~encode:P.Wire.encode_export
      {
        P.Wire.exp_epoch = 1;
        exp_to = b_as;
        exp_route = chosen.P.Wire.payload.P.Wire.ann_route;
        exp_provenance = Some chosen;
      }
  in
  let bytes = P.Wire.encode_signed ~encode:P.Wire.encode_export export in
  match P.Wire.decode_signed ~decode:P.Wire.decode_export bytes with
  | None -> Alcotest.fail "decode failed"
  | Some e ->
      check_bool "outer signature verifies" true
        (P.Wire.verify kr ~encode:P.Wire.encode_export e);
      (match e.P.Wire.payload.P.Wire.exp_provenance with
      | Some inner ->
          check_bool "nested provenance verifies" true
            (P.Wire.verify kr ~encode:P.Wire.encode_announce inner)
      | None -> Alcotest.fail "provenance lost")

let wire_decode_rejects_garbage =
  qtest "wire decoders never crash on garbage" ~count:200 QCheck2.Gen.string
    (fun s ->
      let _ = P.Wire.decode_announce s in
      let _ = P.Wire.decode_commit s in
      let _ = P.Wire.decode_export s in
      let _ = P.Wire.decode_signed ~decode:P.Wire.decode_announce s in
      true)

let wire_decode_rejects_truncation () =
  let ann = announce (asn 10) 2 in
  let bytes = P.Wire.encode_signed ~encode:P.Wire.encode_announce ann in
  for cut = 0 to String.length bytes - 1 do
    match
      P.Wire.decode_signed ~decode:P.Wire.decode_announce
        (String.sub bytes 0 cut)
    with
    | None -> ()
    | Some _ -> Alcotest.failf "truncation at %d accepted" cut
  done

(* ---- transport round-trip properties ---------------------------------------------- *)

let wire_announce_roundtrip_property =
  qtest "wire: arbitrary announces roundtrip" ~count:25
    QCheck2.Gen.(triple (int_range 1 9) (int_range 0 3) (int_range 1 8))
    (fun (epoch, pi, len) ->
      let ann = announce ~epoch (List.nth providers pi) len in
      match
        P.Wire.decode_signed ~decode:P.Wire.decode_announce
          (P.Wire.encode_signed ~encode:P.Wire.encode_announce ann)
      with
      | None -> false
      | Some ann' ->
          P.Wire.verify (Lazy.force keyring) ~encode:P.Wire.encode_announce ann'
          && P.Wire.encode_announce ann'.P.Wire.payload
             = P.Wire.encode_announce ann.P.Wire.payload)

let wire_commit_roundtrip_property =
  qtest "wire: arbitrary commits roundtrip" ~count:25
    QCheck2.Gen.(
      pair (int_range 1 9)
        (list_size (int_range 0 6) (string_size (int_range 0 40))))
    (fun (epoch, commitments) ->
      let c = sign_commit ~epoch commitments in
      match
        P.Wire.decode_signed ~decode:P.Wire.decode_commit
          (P.Wire.encode_signed ~encode:P.Wire.encode_commit c)
      with
      | None -> false
      | Some c' ->
          P.Wire.verify (Lazy.force keyring) ~encode:P.Wire.encode_commit c'
          && c'.P.Wire.payload.P.Wire.cmt_commitments = commitments)

(* Sign once; every property case mutates one byte of the transport bytes.
   A mutation must be caught somewhere: the decoder rejects it, or the
   signature check fails.  (A mutation in redundant encoding bits may decode
   back to the identical statement — re-encoding equal to the original is
   the only acceptance we allow.) *)
let wire_mutation_property =
  let original =
    lazy (P.Wire.encode_signed ~encode:P.Wire.encode_announce (announce (asn 10) 3))
  in
  qtest "wire: mutated bytes never verify" ~count:150
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 255))
    (fun (pos, delta) ->
      let original = Lazy.force original in
      let b = Bytes.of_string original in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos
        (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xff));
      match
        P.Wire.decode_signed ~decode:P.Wire.decode_announce (Bytes.to_string b)
      with
      | None -> true
      | Some ann' ->
          (not
             (P.Wire.verify (Lazy.force keyring) ~encode:P.Wire.encode_announce
                ann'))
          || P.Wire.encode_signed ~encode:P.Wire.encode_announce ann' = original)

let evidence_equivocation_roundtrip_property =
  qtest "evidence: arbitrary equivocations roundtrip" ~count:15
    QCheck2.Gen.(pair (string_size (int_range 0 24)) (string_size (int_range 0 24)))
    (fun (x, y) ->
      let e =
        P.Evidence.Equivocation
          { first = sign_commit [ x ]; second = sign_commit [ y ] }
      in
      match P.Evidence_codec.decode (P.Evidence_codec.encode e) with
      | None -> false
      | Some e' -> P.Evidence_codec.encode e' = P.Evidence_codec.encode e)

let evidence_mutation_property =
  let original =
    lazy
      (P.Evidence_codec.encode
         (P.Evidence.Equivocation
            { first = sign_commit [ "x" ]; second = sign_commit [ "y" ] }))
  in
  qtest "evidence: mutated bytes never convict" ~count:60
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 255))
    (fun (pos, delta) ->
      let original = Lazy.force original in
      let b = Bytes.of_string original in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos
        (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xff));
      match P.Evidence_codec.decode (Bytes.to_string b) with
      | None -> true
      | Some e' ->
          P.Evidence_codec.encode e' = original
          || P.Judge.evaluate_offline (Lazy.force keyring) e' <> P.Judge.Guilty)

(* ---- gossip round semantics -------------------------------------------------------- *)

let gossip_ring_one_round_miss_clique_catches () =
  (* Six ring members; the conflicting commitments sit three hops apart, so
     they share neither an edge nor a neighbor.  A synchronous ring round
     moves views one hop and must miss the conflict; the second round and
     the clique's direct edge must catch it. *)
  let kr = Lazy.force keyring in
  let members = List.init 6 (fun i -> asn (500 + i)) in
  let c1 = sign_commit [ "x" ] and c2 = sign_commit [ "y" ] in
  let load g =
    ignore (P.Gossip.receive g ~holder:(List.nth members 0) c1);
    ignore (P.Gossip.receive g ~holder:(List.nth members 3) c2)
  in
  let ring = P.Gossip.create kr in
  load ring;
  let edges = P.Gossip.ring_edges members in
  check_int "ring round 1 misses" 0
    (List.length (P.Gossip.run_round ring ~edges));
  check_bool "ring round 2 catches" true (P.Gossip.run_round ring ~edges <> []);
  let clique = P.Gossip.create kr in
  load clique;
  check_bool "clique round 1 catches" true
    (P.Gossip.run_round clique ~edges:(P.Gossip.clique_edges members) <> [])

let gossip_round_dedups_evidence () =
  (* One holder has the lying commitment, the other four the truthful one:
     the same conflicting pair surfaces on every edge incident to the liar's
     holder, but the round must report it exactly once. *)
  let kr = Lazy.force keyring in
  let members = List.init 5 (fun i -> asn (600 + i)) in
  let c1 = sign_commit [ "x" ] and c2 = sign_commit [ "y" ] in
  let g = P.Gossip.create kr in
  ignore (P.Gossip.receive g ~holder:(List.hd members) c2);
  List.iter
    (fun m -> ignore (P.Gossip.receive g ~holder:m c1))
    (List.tl members);
  let evs = P.Gossip.run_round g ~edges:(P.Gossip.clique_edges members) in
  check_int "reported once" 1 (List.length evs);
  match evs with
  | [ P.Evidence.Equivocation _ ] -> ()
  | _ -> Alcotest.fail "expected a single equivocation"

(* ---- S-BGP attestation chains ------------------------------------------------------ *)

let sbgp_route len =
  (* Build a route whose whole path lives in the keyring: use A, AS2 and
     providers as hops. *)
  let pool = a_as :: asn 2 :: providers in
  let path = List.filteri (fun i _ -> i < len) pool in
  let origin = List.nth path (len - 1) in
  let base = G.Route.originate ~asn:origin prefix0 in
  match path with
  | first :: _ -> { base with G.Route.as_path = path; next_hop = first }
  | [] -> assert false

let sbgp_chain_verifies () =
  let kr = Lazy.force keyring in
  List.iter
    (fun len ->
      let route = sbgp_route len in
      let chain = P.Sbgp.chain_route kr route ~to_:b_as in
      check_bool
        (Printf.sprintf "chain of %d verifies" len)
        true
        (P.Sbgp.verify kr ~prefix:prefix0 ~path:route.G.Route.as_path
           ~to_:b_as chain);
      check_bool "wrong recipient fails" false
        (P.Sbgp.verify kr ~prefix:prefix0 ~path:route.G.Route.as_path
           ~to_:(asn 2) chain))
    [ 1; 2; 4 ]

let sbgp_extend () =
  let kr = Lazy.force keyring in
  let origin = List.hd providers in
  let chain = P.Sbgp.originate kr ~origin ~prefix:prefix0 ~to_:a_as in
  (match P.Sbgp.extend kr ~me:a_as ~to_:b_as chain with
  | Ok chain' ->
      check_bool "extended chain verifies" true
        (P.Sbgp.verify kr ~prefix:prefix0 ~path:[ a_as; origin ] ~to_:b_as
           chain')
  | Error e -> Alcotest.failf "extend failed: %s" e);
  (* Extending a chain that was not addressed to you must fail. *)
  match P.Sbgp.extend kr ~me:(asn 2) ~to_:b_as chain with
  | Ok _ -> Alcotest.fail "hijacked extension accepted"
  | Error _ -> ()

let sbgp_path_shortening_rejected () =
  (* An AS that drops a hop from the path (path-shortening attack, one of
     the §1 'lie about routes' incentives) cannot produce a valid chain. *)
  let kr = Lazy.force keyring in
  let route = sbgp_route 3 in
  let chain = P.Sbgp.chain_route kr route ~to_:b_as in
  let shortened =
    match route.G.Route.as_path with
    | keep :: _ :: rest -> keep :: rest
    | _ -> assert false
  in
  check_bool "shortened path rejected" false
    (P.Sbgp.verify kr ~prefix:prefix0 ~path:shortened ~to_:b_as chain);
  (* Dropping the matching attestation does not help either. *)
  let pruned = match chain with a :: _ :: rest -> a :: rest | c -> c in
  check_bool "pruned chain rejected" false
    (P.Sbgp.verify kr ~prefix:prefix0 ~path:shortened ~to_:b_as pruned)

(* ---- Bitvec commitment strategies (DESIGN §5 ablation) ----------------------------- *)

let bitvec_roundtrip_both_strategies () =
  let bits = [ false; false; true; true; true; false; true; true ] in
  List.iter
    (fun strategy ->
      let rng = fresh_rng () in
      let t, published = P.Bitvec.commit rng strategy bits in
      List.iteri
        (fun i expected ->
          let proof = P.Bitvec.open_bit t (i + 1) in
          check_bool
            (P.Bitvec.strategy_to_string strategy ^ " bit " ^ string_of_int i)
            true
            (P.Bitvec.verify_bit strategy published ~k:8 ~index:(i + 1) proof
            = Some expected))
        bits)
    [ P.Bitvec.Per_bit; P.Bitvec.Merkle_vector ]

let bitvec_sizes_tradeoff () =
  let rng = fresh_rng () in
  let bits = List.init 64 (fun i -> i mod 3 = 0) in
  let t_pb, pub_pb = P.Bitvec.commit rng P.Bitvec.Per_bit bits in
  let t_mv, pub_mv = P.Bitvec.commit rng P.Bitvec.Merkle_vector bits in
  (* Published: linear vs constant. *)
  check_bool "per-bit publishes k digests" true
    (P.Bitvec.published_bytes pub_pb = 64 * 32);
  check_bool "merkle publishes one root" true
    (P.Bitvec.published_bytes pub_mv = 32);
  (* Disclosure: constant vs logarithmic. *)
  let d_pb = P.Bitvec.proof_bytes (P.Bitvec.open_bit t_pb 5) in
  let d_mv = P.Bitvec.proof_bytes (P.Bitvec.open_bit t_mv 5) in
  check_bool "merkle proofs are bigger" true (d_mv > d_pb);
  check_bool "but only by ~log k siblings" true (d_mv <= d_pb + (7 * 40))

let bitvec_rejects_wrong_index () =
  let rng = fresh_rng () in
  let bits = [ true; false; true; false ] in
  let t, published = P.Bitvec.commit rng P.Bitvec.Merkle_vector bits in
  let proof = P.Bitvec.open_bit t 1 in
  (* Proof for bit 1 cannot pass as bit 2. *)
  check_bool "index binding" true
    (P.Bitvec.verify_bit P.Bitvec.Merkle_vector published ~k:4 ~index:2 proof
    = None);
  check_bool "out of range" true
    (P.Bitvec.verify_bit P.Bitvec.Merkle_vector published ~k:4 ~index:9 proof
    = None)

(* ---- Composite operators in the graph protocol ------------------------------------ *)

let composite_rfg () =
  (* Outer graph: a composite hides "min over two providers" internals. *)
  let inner =
    let g = R.Rfg.add_var R.Rfg.empty "a" (R.Rfg.Input (asn 901)) in
    let g = R.Rfg.add_var g "b" (R.Rfg.Input (asn 902)) in
    let g = R.Rfg.add_var g "secret-out" (R.Rfg.Output (asn 903)) in
    R.Rfg.add_op g "secret-min" R.Operator.Min_path_length
      ~inputs:[ "a"; "b" ] ~output:"secret-out"
  in
  let g =
    R.Rfg.add_var R.Rfg.empty (R.Promise.input_var (asn 10))
      (R.Rfg.Input (asn 10))
  in
  let g =
    R.Rfg.add_var g (R.Promise.input_var (asn 11)) (R.Rfg.Input (asn 11))
  in
  let g = R.Rfg.add_var g (R.Promise.output_var b_as) (R.Rfg.Output b_as) in
  R.Rfg.add_composite g "comp" ~inner
    ~inputs:[ R.Promise.input_var (asn 10); R.Promise.input_var (asn 11) ]
    ~output:(R.Promise.output_var b_as)

let composite_prove () =
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let inputs = [ announce (asn 10) 3; announce (asn 11) 2 ] in
  P.Proto_graph.prove ~max_path_len:8 rng kr ~prover:a_as ~epoch:1
    ~prefix:prefix0 ~rfg:(composite_rfg ()) ~inputs

let graph_composite_structural_privacy () =
  let ps = composite_prove () in
  (* α lets B see the composite vertex but none of its internals. *)
  let alpha =
    P.Access_control.allow P.Access_control.deny_all ~viewer:b_as "comp"
  in
  let ds = P.Proto_graph.disclose ~role:`Beneficiary ps ~alpha ~viewer:b_as in
  let comp_d =
    List.find (fun (d : P.Proto_graph.disclosure) -> d.vertex = "comp") ds
  in
  (* The payload reveals only "comp" + a 32-byte root — no operator type,
     no vertex count, nothing about the internals. *)
  (match comp_d.payload with
  | Some c -> check_bool "payload is opaque" true (String.length c.raw < 64)
  | None -> Alcotest.fail "payload expected");
  check_bool "no internals disclosed under restrictive alpha" true
    (P.Proto_graph.disclose_composite ps ~alpha ~viewer:b_as ~composite:"comp"
    = Some (Option.get (P.Proto_graph.composite_inner_root ps ~composite:"comp"), []))

let graph_composite_authorized_inspection () =
  let ps = composite_prove () in
  let root = P.Proto_graph.root ps in
  (* α additionally grants the inner vertices (namespaced ids). *)
  let alpha =
    List.fold_left
      (fun a v -> P.Access_control.allow a ~viewer:b_as v)
      P.Access_control.deny_all
      [ "comp"; "comp/a"; "comp/b"; "comp/secret-min"; "comp/secret-out" ]
  in
  let ds = P.Proto_graph.disclose ~role:`Beneficiary ps ~alpha ~viewer:b_as in
  let comp_d =
    List.find (fun (d : P.Proto_graph.disclosure) -> d.vertex = "comp") ds
  in
  match P.Proto_graph.disclose_composite ps ~alpha ~viewer:b_as ~composite:"comp" with
  | None -> Alcotest.fail "expected composite internals"
  | Some (inner_root, inner) ->
      check_int "all four internals" 4 (List.length inner);
      check_bool "composite check passes" true
        (P.Proto_graph.check_composite ~outer_root:root
           ~composite_disclosure:comp_d ~inner_root ~inner);
      check_bool "wrong inner root fails" false
        (P.Proto_graph.check_composite ~outer_root:root
           ~composite_disclosure:comp_d ~inner_root:(String.make 32 '\x00')
           ~inner);
      (* The inner min operator's evidence bits work like any other's. *)
      let min_d =
        List.find
          (fun (d : P.Proto_graph.disclosure) -> d.vertex = "comp/secret-min")
          inner
      in
      check_bool "inner op has bit openings" true (min_d.bit_openings <> [])

let graph_composite_evaluates () =
  let ps = composite_prove () in
  match P.Proto_graph.exported ps ~beneficiary:b_as with
  | Some e ->
      check_int "composite computed the min" 2
        (G.Route.path_length e.P.Wire.payload.P.Wire.exp_route)
  | None -> Alcotest.fail "expected export"

(* ---- Online verification over the simulator --------------------------------------- *)

let online_setup () =
  (* Star topology: providers and B around A; each provider originates the
     watched prefix with a different amount of prepending, so A's inputs
     have distinct lengths. *)
  let kr = Lazy.force keyring in
  let topo =
    G.Topology.star ~center:a_as ~leaves:(b_as :: providers)
      ~rel:G.Relationship.Customer
  in
  let sim = G.Simulator.create topo in
  G.Simulator.set_gao_rexford sim false;
  List.iteri
    (fun i n ->
      G.Simulator.set_export_policy sim ~asn:n ~neighbor:a_as
        [
          {
            G.Policy.matches = [];
            actions = [ G.Policy.Prepend (n, i) ];
            verdict = G.Policy.Accept;
          };
        ])
    providers;
  List.iter (fun n -> G.Simulator.originate sim ~asn:n prefix0) providers;
  ignore (G.Simulator.run sim);
  let online =
    P.Online.create ~max_path_len:8 (fresh_rng ()) kr ~sim ~prover:a_as
      ~beneficiary:b_as ~providers
  in
  (sim, online)

let online_honest_epochs_clean () =
  let _, online = online_setup () in
  let r1 = P.Online.epoch online ~prefix:prefix0 in
  check_bool "epoch 1 clean" false r1.P.Runner.detected;
  let r2 = P.Online.epoch online ~prefix:prefix0 in
  check_bool "epoch 2 clean" false r2.P.Runner.detected;
  check_int "epoch counter" 2 (P.Online.current_epoch online)

let online_detects_corrupt_decision () =
  let sim, online = online_setup () in
  (* A's decision process goes rogue: prefer the LONGEST candidate. *)
  G.Simulator.set_decision_override sim ~asn:a_as (fun _ candidates ->
      List.fold_left
        (fun acc r ->
          match acc with
          | None -> Some r
          | Some best ->
              if G.Route.path_length r > G.Route.path_length best then Some r
              else acc)
        None candidates);
  (* Force re-selection by withdrawing and re-announcing one origin. *)
  G.Simulator.withdraw_origin sim ~asn:(List.hd providers) prefix0;
  ignore (G.Simulator.run sim);
  G.Simulator.originate sim ~asn:(List.hd providers) prefix0;
  ignore (G.Simulator.run sim);
  let r = P.Online.epoch online ~prefix:prefix0 in
  check_bool "corrupt decision detected" true r.P.Runner.detected;
  check_bool "convicted" true r.P.Runner.convicted;
  check_bool "nonminimal export evidence" true
    (List.exists
       (fun (_, e) ->
         match e with P.Evidence.Nonminimal_export _ -> true | _ -> false)
       r.P.Runner.raised)

let online_detects_suppression () =
  let sim, online = online_setup () in
  (* A stops exporting to B altogether. *)
  G.Simulator.set_export_policy sim ~asn:a_as ~neighbor:b_as
    G.Policy.reject_all;
  G.Simulator.withdraw_origin sim ~asn:(List.hd providers) prefix0;
  ignore (G.Simulator.run sim);
  G.Simulator.originate sim ~asn:(List.hd providers) prefix0;
  ignore (G.Simulator.run sim);
  let r = P.Online.epoch online ~prefix:prefix0 in
  check_bool "suppression detected" true r.P.Runner.detected;
  check_bool "claim raised" true
    (List.exists
       (fun (_, e) ->
         match e with
         | P.Evidence.Missing_export_claim _ -> true
         | _ -> false)
       r.P.Runner.raised)

(* ---- Proto_no_shorter (§2 promise 4) --------------------------------------------- *)

let beneficiaries3 = [ b_as; asn 2; List.hd providers ]

let noshorter_run lens =
  (* [lens]: optional export length per beneficiary, in beneficiaries3
     order. *)
  let kr = Lazy.force keyring in
  let rng = fresh_rng () in
  let exports =
    List.concat
      (List.map2
         (fun m len ->
           match len with
           | None -> []
           | Some l ->
               (* The input route A chose for m, announced by provider N1. *)
               [ (m, announce (List.nth providers (1 + (l mod 2))) l) ])
         beneficiaries3 lens)
  in
  P.Proto_no_shorter.prove ~max_path_len:6 rng kr ~prover:a_as
    ~beneficiaries:beneficiaries3 ~epoch:1 ~prefix:prefix0 ~exports

let noshorter_check out m =
  let kr = Lazy.force keyring in
  P.Proto_no_shorter.check_beneficiary ~max_path_len:6 kr ~me:m
    ~beneficiaries:beneficiaries3 ~commit:out.P.Proto_no_shorter.commit
    ~disclosure:(List.assoc m out.P.Proto_no_shorter.per_beneficiary)

let noshorter_equal_exports_clean () =
  let out = noshorter_run [ Some 3; Some 3; Some 3 ] in
  List.iter
    (fun m -> check_int "clean" 0 (List.length (noshorter_check out m)))
    beneficiaries3

let noshorter_absent_export_clean () =
  (* A beneficiary that was told nothing has a vacuous promise. *)
  let out = noshorter_run [ Some 2; None; Some 2 ] in
  List.iter
    (fun m -> check_int "clean" 0 (List.length (noshorter_check out m)))
    beneficiaries3

let noshorter_detects_favouritism () =
  (* AS2 gets a strictly shorter route than B: B must detect, AS2 is fine. *)
  let out = noshorter_run [ Some 4; Some 2; Some 4 ] in
  let evs_b = noshorter_check out b_as in
  check_bool "B detects cross-shorter" true
    (List.exists
       (function P.Evidence.Cross_shorter_export _ -> true | _ -> false)
       evs_b);
  check_int "the favoured one is clean" 0
    (List.length (noshorter_check out (asn 2)));
  (* The evidence convinces a judge offline (self-contained). *)
  let kr = Lazy.force keyring in
  List.iter
    (fun e ->
      match e with
      | P.Evidence.Cross_shorter_export _ ->
          check_bool "judge convicts" true
            (P.Judge.evaluate_offline kr e = P.Judge.Guilty)
      | _ -> ())
    evs_b

let noshorter_own_vector_mismatch () =
  (* A commits a vector for length 4 but then hands B an export of length 2:
     B's own-vector check fires and the judge convicts. *)
  let kr = Lazy.force keyring in
  let out = noshorter_run [ Some 4; Some 4; Some 4 ] in
  let short_input = announce (List.nth providers 1) 2 in
  let sneaky_export =
    P.Wire.sign kr ~as_:a_as ~encode:P.Wire.encode_export
      {
        P.Wire.exp_epoch = 1;
        exp_to = b_as;
        exp_route = short_input.P.Wire.payload.P.Wire.ann_route;
        exp_provenance = Some short_input;
      }
  in
  let original = List.assoc b_as out.P.Proto_no_shorter.per_beneficiary in
  let evs =
    P.Proto_no_shorter.check_beneficiary ~max_path_len:6 kr ~me:b_as
      ~beneficiaries:beneficiaries3 ~commit:out.P.Proto_no_shorter.commit
      ~disclosure:{ original with bd_export = Some sneaky_export }
  in
  check_bool "own-vector mismatch raised" true
    (List.exists
       (function P.Evidence.Own_vector_mismatch _ -> true | _ -> false)
       evs);
  List.iter
    (fun e ->
      match e with
      | P.Evidence.Own_vector_mismatch _ ->
          check_bool "judge convicts mismatch" true
            (P.Judge.evaluate_offline kr e = P.Judge.Guilty)
      | _ -> ())
    evs

let noshorter_property =
  qtest "promise 4: exactly the longer-served beneficiaries detect" ~count:15
    QCheck2.Gen.(list_repeat 3 (int_range 1 6))
    (fun lens ->
      let out = noshorter_run (List.map (fun l -> Some l) lens) in
      let minimum = List.fold_left min max_int lens in
      List.for_all2
        (fun m l ->
          let evs = noshorter_check out m in
          let has_cross =
            List.exists
              (function
                | P.Evidence.Cross_shorter_export _ -> true | _ -> false)
              evs
          in
          if l > minimum then has_cross else evs = [])
        beneficiaries3 lens)

(* ---- Leakage (Confidentiality) -------------------------------------------------------- *)

let leakage_pvr_beneficiary_zero_excess () =
  let exported = Some (mk_route (asn 10) 2) in
  let baseline = P.Leakage.plain_bgp_beneficiary ~exported in
  let openings = List.init 8 (fun i -> (i + 1, 2 <= i + 1)) in
  let observed = P.Leakage.pvr_min_beneficiary ~k:8 ~openings ~exported in
  check_int "zero excess" 0 (P.Leakage.excess_count ~baseline ~observed)

let leakage_pvr_provider_zero_excess () =
  let me = asn 10 in
  let my_route = mk_route me 3 in
  let baseline = P.Leakage.plain_bgp_provider ~me ~my_route in
  let observed =
    P.Leakage.pvr_min_provider ~me ~my_route ~revealed_bit:(Some (3, true))
  in
  check_int "zero excess" 0 (P.Leakage.excess_count ~baseline ~observed)

let leakage_netreview_leaks () =
  let inputs = List.mapi (fun i n -> (n, mk_route n (i + 2))) providers in
  let me = List.hd providers in
  let my_route = List.assoc me inputs in
  let baseline = P.Leakage.plain_bgp_provider ~me ~my_route in
  let observed = P.Leakage.netreview_neighbor ~inputs in
  let excess = P.Leakage.excess_count ~baseline ~observed in
  (* Everyone else's route (3) plus the exact minimum length. *)
  check_bool "netreview leaks" true (excess >= 3)

let leakage_bits_derivable_from_export () =
  (* Every bit B sees is implied by the exported minimum: bit i = (L <= i). *)
  let exported = Some (mk_route (asn 10) 3) in
  let baseline = P.Leakage.plain_bgp_beneficiary ~exported in
  List.iter
    (fun i ->
      check_bool
        (Printf.sprintf "bit %d derivable" i)
        true
        (P.Leakage.derivable ~baseline
           (P.Leakage.Knows_bit { index = i; value = 3 <= i })))
    [ 1; 2; 3; 4; 5 ]

let leakage_foreign_route_not_derivable () =
  let exported = Some (mk_route (asn 10) 3) in
  let baseline = P.Leakage.plain_bgp_beneficiary ~exported in
  check_bool "foreign route is excess" false
    (P.Leakage.derivable ~baseline
       (P.Leakage.Knows_route { provider = asn 11; route = mk_route (asn 11) 5 }))

let suite =
  [
    ("wire sign/verify", `Quick, wire_sign_verify);
    ("wire forged identity rejected", `Quick, wire_forged_identity_rejected);
    ("wire tamper rejected", `Quick, wire_tamper_rejected);
    ("keyring unknown raises", `Quick, keyring_unknown_raises);
    ("alpha figure 1", `Quick, alpha_figure1);
    ("alpha components independent", `Quick, alpha_components_independent);
    ("alpha for_promise verifiable", `Quick, alpha_for_promise_verifiable);
    ("gossip consistent ok", `Quick, gossip_consistent_ok);
    ("gossip detects equivocation", `Quick, gossip_detects_equivocation);
    ("gossip distinct epochs fine", `Quick, gossip_different_epochs_no_conflict);
    ("gossip ring eventually detects", `Quick, gossip_ring_misses_pairwise_split);
    ("gossip ignores invalid signatures", `Quick, gossip_invalid_signature_ignored);
    ("exists honest with routes", `Quick, exists_honest_with_routes);
    ("exists honest without routes", `Quick, exists_honest_no_routes);
    ("exists detects suppression", `Quick, exists_detects_suppression);
    ("exists detects false bit", `Quick, exists_detects_false_bit);
    ("exists ring-signature variant", `Quick, exists_ring_variant);
    ("min honest clean", `Quick, min_honest_clean);
    ("min commitment count = k", `Quick, min_commitment_count);
    ("min ignores invalid inputs", `Quick, min_ignores_invalid_inputs);
    ("min ignores paths beyond k", `Quick, min_paths_beyond_k_ignored);
    min_honest_property;
    ("matrix: honest accuracy", `Quick, matrix_honest_accuracy);
    ("matrix: all behaviours convicted", `Slow, matrix_all_behaviours_convicted);
    ("matrix: expected detectors fire", `Slow, matrix_detectors_as_expected);
    ("matrix: honest A exonerated on false claim", `Quick, matrix_no_false_accusations);
    ("matrix: stubborn omission guilty", `Quick, matrix_stubborn_omission_guilty);
    ("judge rejects fabrications", `Quick, judge_rejects_fabrications);
    ("judge rejects cross-scheme confusion", `Quick, judge_rejects_cross_scheme_confusion);
    ("min tie between equal routes", `Quick, min_tie_between_equal_routes);
    ("judge convicts each evidence kind", `Slow, judge_convicts_each_selfcontained_kind);
    matrix_property_random_lengths;
    ("graph honest min clean", `Quick, graph_honest_min_clean);
    ("graph honest fig2 clean", `Quick, graph_honest_fig2_clean);
    ("graph honest exists clean", `Quick, graph_honest_exists_clean);
    ("graph honest within-hops clean", `Quick, graph_honest_within_hops_clean);
    graph_honest_property;
    ("graph within-hops window enforced", `Quick, graph_within_hops_window_enforced);
    ("graph disclosure integrity", `Quick, graph_disclosure_integrity);
    ("graph alpha confidentiality", `Quick, graph_alpha_confidentiality);
    ("graph provider gets only own bit", `Quick, graph_provider_gets_only_own_bit);
    ("graph wrong input detected + judged", `Quick, graph_wrong_input_detected);
    ("threat model: collusion defeats detection", `Quick, collusion_defeats_detection);
    ("gossip: multi-prover isolation", `Quick, multi_prover_gossip_isolation);
    ("evidence codec: all kinds roundtrip", `Slow, evidence_codec_roundtrip_all_kinds);
    ("evidence codec: graph violations", `Quick, evidence_codec_roundtrip_graph);
    evidence_codec_garbage;
    ("wire transport: announce roundtrip", `Quick, wire_announce_transport_roundtrip);
    ("wire transport: commit roundtrip", `Quick, wire_commit_transport_roundtrip);
    ("wire transport: export roundtrip", `Quick, wire_export_transport_roundtrip);
    wire_decode_rejects_garbage;
    ("wire transport: truncation rejected", `Quick, wire_decode_rejects_truncation);
    wire_announce_roundtrip_property;
    wire_commit_roundtrip_property;
    wire_mutation_property;
    evidence_equivocation_roundtrip_property;
    evidence_mutation_property;
    ("gossip ring one-round miss, clique catches", `Quick,
     gossip_ring_one_round_miss_clique_catches);
    ("gossip round dedups evidence", `Quick, gossip_round_dedups_evidence);
    ("sbgp: chains verify", `Quick, sbgp_chain_verifies);
    ("sbgp: extend", `Quick, sbgp_extend);
    ("sbgp: path shortening rejected", `Quick, sbgp_path_shortening_rejected);
    ("bitvec: roundtrip both strategies", `Quick, bitvec_roundtrip_both_strategies);
    ("bitvec: size tradeoff", `Quick, bitvec_sizes_tradeoff);
    ("bitvec: rejects wrong index", `Quick, bitvec_rejects_wrong_index);
    ("composite: structural privacy", `Quick, graph_composite_structural_privacy);
    ("composite: authorized inspection", `Quick, graph_composite_authorized_inspection);
    ("composite: evaluates through", `Quick, graph_composite_evaluates);
    ("online: honest epochs clean", `Quick, online_honest_epochs_clean);
    ("online: corrupt decision detected", `Quick, online_detects_corrupt_decision);
    ("online: suppression detected", `Quick, online_detects_suppression);
    ("noshorter: equal exports clean", `Quick, noshorter_equal_exports_clean);
    ("noshorter: absent export clean", `Quick, noshorter_absent_export_clean);
    ("noshorter: detects favouritism", `Quick, noshorter_detects_favouritism);
    ("noshorter: own vector mismatch", `Quick, noshorter_own_vector_mismatch);
    noshorter_property;
    ("leakage: PVR beneficiary zero excess", `Quick, leakage_pvr_beneficiary_zero_excess);
    ("leakage: PVR provider zero excess", `Quick, leakage_pvr_provider_zero_excess);
    ("leakage: NetReview leaks", `Quick, leakage_netreview_leaks);
    ("leakage: bits derivable from export", `Quick, leakage_bits_derivable_from_export);
    ("leakage: foreign route not derivable", `Quick, leakage_foreign_route_not_derivable);
  ]
