(* PR 6: adversary strategy zoo and the quantitative privacy meter.
   Covers plan purity/determinism, the §2.3 Confidentiality claim as a
   bit-count (honest rounds leak exactly the paper's disclosure set),
   cheat detection with evidence naming the right party, the
   timeout-vs-byzantine conviction precedence, and the seeded
   reproducibility of the whole E14 surface (engine digests and the
   [pvr adversary] CLI output). *)

module P = Pvr
module G = Pvr_bgp
module C = Pvr_crypto
module E = Pvr_engine.Engine

let asn = G.Asn.of_int
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prefix0 = G.Prefix.of_string "10.0.0.0/8"
let a_as = asn 1
let b_as = asn 100
let providers = List.init 4 (fun i -> asn (10 + i))

let keyring =
  lazy
    (P.Keyring.create ~bits:512
       (C.Drbg.of_int_seed 6400)
       (a_as :: b_as :: providers))

let mk_route n len =
  let path = List.init len (fun j -> if j = 0 then n else asn (3000 + j)) in
  let base = G.Route.originate ~asn:n prefix0 in
  { base with G.Route.as_path = path; next_hop = n }

let routes = List.mapi (fun i n -> (n, mk_route n (i + 2))) providers
let shortest = snd (List.hd routes)

(* ---- strategy plans -------------------------------------------------------------- *)

let seed_of i = Printf.sprintf "seed-%d" i

let plan_deterministic =
  qtest "plan: pure function of (seed, vertex, epoch)" QCheck2.Gen.small_int
    (fun i ->
      let seed = seed_of i in
      List.for_all
        (fun s ->
          let p () =
            P.Adversary.plan_round s ~seed ~prover:a_as ~prefix:prefix0
              ~epoch:(1 + (i mod 5))
          in
          p () = p ())
        P.Adversary.all_strategies)

let plan_sweep_is_behaviour =
  qtest ~count:10 "plan: sweep plans its behaviour everywhere"
    QCheck2.Gen.small_int (fun i ->
      List.for_all
        (fun b ->
          let plan =
            P.Adversary.plan_round (P.Adversary.Sweep b) ~seed:(seed_of i)
              ~prover:(asn (1 + (i mod 50)))
              ~prefix:prefix0 ~epoch:1
          in
          plan.P.Adversary.rp_behaviour = b && not plan.P.Adversary.rp_comply)
        P.Adversary.all)

let plan_adaptive_low_value () =
  let strategy =
    P.Adversary.Adaptive_low_value { cheat = P.Adversary.Export_nonminimal }
  in
  List.iter
    (fun (s, cheats) ->
      let prefix = G.Prefix.of_string s in
      let plan =
        P.Adversary.plan_round strategy ~seed:"s" ~prover:a_as ~prefix
          ~epoch:1
      in
      check_bool s cheats
        (plan.P.Adversary.rp_behaviour = P.Adversary.Export_nonminimal))
    [
      ("10.0.0.0/8", false);
      ("10.1.0.0/16", false);
      ("10.1.2.0/24", true);
      ("10.1.2.0/28", true);
    ]

let plan_cross_shard_epoch_stable () =
  let strategy = P.Adversary.Cross_shard { shards = 4; target = 1 } in
  let provers = List.init 40 (fun i -> asn (i + 1)) in
  let cheats epoch =
    List.filter
      (fun p ->
        (P.Adversary.plan_round strategy ~seed:"s" ~prover:p ~prefix:prefix0
           ~epoch)
          .P.Adversary.rp_behaviour
        = P.Adversary.Equivocate)
      provers
  in
  let e1 = cheats 1 in
  (* the dirty subset is a vertex property, not an epoch one — the same
     provers equivocate in every epoch *)
  check_bool "epoch-stable subset" true (e1 = cheats 7);
  check_bool "subset non-empty" true (e1 <> []);
  check_bool "subset proper" true (List.length e1 < List.length provers)

let plan_timing_probe_complies () =
  let strategy = P.Adversary.Timing_probe { period = 2 } in
  let plans =
    List.map
      (fun i ->
        P.Adversary.plan_round strategy ~seed:"s" ~prover:(asn (i + 1))
          ~prefix:prefix0 ~epoch:((i mod 3) + 1))
      (List.init 60 Fun.id)
  in
  let stonewalls =
    List.filter
      (fun p -> p.P.Adversary.rp_behaviour = P.Adversary.Suppress_export)
      plans
  in
  check_bool "some vertices stonewall" true (stonewalls <> []);
  check_bool "some vertices stay honest" true
    (List.exists
       (fun p -> p.P.Adversary.rp_behaviour = P.Adversary.Honest)
       plans);
  (* probes stonewall the protocol but answer the judge honestly *)
  check_bool "stonewalls comply with challenges" true
    (List.for_all (fun p -> p.P.Adversary.rp_comply) stonewalls)

let strategy_names_roundtrip () =
  List.iter
    (fun s ->
      let name = P.Adversary.strategy_to_string s in
      check_bool name true (P.Adversary.strategy_of_string name = Some s))
    P.Adversary.all_strategies;
  (* bare behaviour names select a sweep *)
  check_bool "equivocate" true
    (P.Adversary.strategy_of_string "equivocate"
    = Some (P.Adversary.Sweep P.Adversary.Equivocate));
  check_bool "unknown" true (P.Adversary.strategy_of_string "nope" = None)

(* ---- ledger + audit on single rounds --------------------------------------------- *)

(* Explicit per-call seeds: every round is reproducible on its own,
   independent of which other tests ran before it. *)
let run_round ?comply ?faults ~seed behaviour =
  let ledger = P.Leakage.Ledger.create () in
  let nr =
    P.Runner.min_round_faulty ?faults ~ledger ?comply behaviour
      (C.Drbg.of_int_seed seed) (Lazy.force keyring) ~prover:a_as
      ~beneficiary:b_as ~epoch:1 ~prefix:prefix0 ~routes
  in
  (nr, ledger)

let audits_of ledger =
  let alpha = P.Access_control.figure1 ~beneficiary:b_as ~providers in
  let view_of v = P.Leakage.Ledger.view ledger ~viewer:v in
  let provider_audits =
    List.map
      (fun (p, r) ->
        let baseline = P.Leakage.plain_bgp_provider ~me:p ~my_route:r in
        P.Leakage.audit
          ~viewer:(G.Asn.to_string p)
          ~authorized:(P.Leakage.alpha_authorizes alpha ~viewer:p)
          ~baseline
          ~observed:(baseline @ view_of p)
          ())
      routes
  in
  let bene_baseline =
    P.Leakage.plain_bgp_beneficiary ~exported:(Some shortest)
  in
  let bene =
    P.Leakage.audit
      ~viewer:(G.Asn.to_string b_as)
      ~authorized:(P.Leakage.alpha_authorizes alpha ~viewer:b_as)
      ~baseline:bene_baseline
      ~observed:(bene_baseline @ view_of b_as)
      ()
  in
  (* the full provider coalition pooling its disclosed bits *)
  let coalition =
    let baselines =
      List.map
        (fun (p, r) -> P.Leakage.plain_bgp_provider ~me:p ~my_route:r)
        routes
    in
    let baseline = P.Leakage.pooled baselines in
    P.Leakage.audit ~viewer:"coalition"
      ~authorized:(fun f ->
        List.exists
          (fun (p, _) -> P.Leakage.alpha_authorizes alpha ~viewer:p f)
          routes)
      ~baseline
      ~observed:
        (P.Leakage.pooled (baseline :: List.map (fun (p, _) -> view_of p) routes))
      ()
  in
  bene :: coalition :: provider_audits

let honest_zero_excess () =
  let nr, ledger = run_round ~seed:64001 P.Adversary.Honest in
  check_bool "clean" false nr.P.Runner.base.P.Runner.detected;
  let audits = audits_of ledger in
  List.iter
    (fun a ->
      check_int (a.P.Leakage.au_viewer ^ " excess bits") 0
        a.P.Leakage.au_excess_bits;
      check_bool
        (a.P.Leakage.au_viewer ^ " observed something")
        true
        (a.P.Leakage.au_observed_bits > 0))
    audits;
  (match P.Leakage.validate_privacy_claims audits with
  | Ok () -> ()
  | Error lines -> Alcotest.fail (String.concat "; " lines));
  (* every party's ledger view is non-empty: the paper's disclosure set
     did reach them and was accounted *)
  check_int "all parties plus the court heard something" 5
    (List.length (P.Leakage.Ledger.viewers ledger))

let false_bits_flagged () =
  let nr, ledger = run_round ~seed:64001 P.Adversary.False_bits in
  check_bool "detected" true nr.P.Runner.base.P.Runner.detected;
  check_bool "convicted" true nr.P.Runner.base.P.Runner.convicted;
  let audits = audits_of ledger in
  let excess =
    List.fold_left (fun n a -> n + a.P.Leakage.au_excess_bits) 0 audits
  in
  check_bool "meter flags the cheat (positive excess)" true (excess > 0);
  (* this particular cheat also exports a nonminimal route, handing the
     beneficiary a provider's full input route that α does not authorize —
     the privacy meter must report that, naming the beneficiary *)
  (match P.Leakage.validate_privacy_claims audits with
  | Ok () -> Alcotest.fail "meter silent on an unauthorized disclosure"
  | Error lines ->
      check_bool "violation names the beneficiary" true
        (List.exists
           (fun l ->
             String.length l >= 5 && String.sub l 0 5 = G.Asn.to_string b_as)
           lines))

let equivocation_names_prover () =
  let nr, _ = run_round ~seed:64002 P.Adversary.Equivocate in
  let r = nr.P.Runner.base in
  check_bool "detected" true r.P.Runner.detected;
  check_bool "convicted" true r.P.Runner.convicted;
  let guilty =
    List.filter (fun (_, _, v) -> v = P.Judge.Guilty) r.P.Runner.judged
  in
  check_bool "guilty evidence exists" true (guilty <> []);
  List.iter
    (fun (_, e, _) ->
      check_bool "evidence names the equivocating prover" true
        (G.Asn.equal (P.Evidence.accused e) a_as))
    guilty;
  check_bool "equivocation evidence present" true
    (List.exists
       (fun (_, e, _) ->
         match e with P.Evidence.Equivocation _ -> true | _ -> false)
       guilty)

let stonewall_comply_exonerated () =
  let nr, _ = run_round ~seed:64003 ~comply:true P.Adversary.Suppress_export in
  let r = nr.P.Runner.base in
  check_bool "detected" true r.P.Runner.detected;
  check_bool "exonerated" true r.P.Runner.exonerated;
  check_bool "never convicted" false r.P.Runner.convicted;
  (* without compliance the same stonewalling is convicted *)
  let nr2, _ = run_round ~seed:64004 P.Adversary.Suppress_export in
  check_bool "stonewalling the judge too convicts" true
    nr2.P.Runner.base.P.Runner.convicted

(* ---- engine-level: precedence and reproducibility -------------------------------- *)

let mk_engine ?faults ~seed ~ases strategy =
  let master = C.Drbg.of_int_seed seed in
  let topo =
    G.Topology.generate (C.Drbg.split master "topology") ~ases ()
  in
  let ekeyring =
    P.Keyring.create ~bits:512
      (C.Drbg.split master "keys")
      (G.Topology.ases topo)
  in
  let sim = G.Simulator.create topo in
  List.iter
    (fun (a, p) -> G.Simulator.originate sim ~asn:a p)
    (G.Topology.tiered_prefixes topo);
  E.create ~salt_every:1 ~strategy ?faults
    (C.Drbg.split master "engine")
    ekeyring ~topology:topo ~sim ()

let outcomes_of eng epochs =
  List.concat_map (fun _ -> (E.epoch eng).E.ep_outcomes)
    (List.init epochs Fun.id)

(* Timeout-vs-byzantine precedence: under a lossy network an honest
   prover may be accused (Timeout around an omission claim) while a
   colluding neighbor equivocates the same epoch — the stonewalled-but-
   honest party must never be convicted, the equivocator must be. *)
let precedence_timeouts_never_convict () =
  let faults =
    {
      P.Runner.perfect_faults with
      P.Runner.fp_policy = Pvr_net.faulty ~drop:0.35 ();
      P.Runner.fp_retry_budget = 1;
    }
  in
  let eng =
    mk_engine ~faults ~seed:21 ~ases:10
      (P.Adversary.Cross_shard { shards = 3; target = 0 })
  in
  let outcomes = outcomes_of eng 2 in
  let honest, cheats =
    List.partition (fun o -> o.E.vx_behaviour = P.Adversary.Honest) outcomes
  in
  check_bool "both populations present" true (honest <> [] && cheats <> []);
  (* the lossy net did put honest provers in front of the judge *)
  check_bool "some honest vertex accused" true
    (List.exists (fun o -> o.E.vx_detected) honest);
  List.iter
    (fun o ->
      check_bool "honest prover never convicted" false o.E.vx_convicted)
    honest;
  check_bool "an equivocator was convicted the same runs" true
    (List.exists (fun o -> o.E.vx_convicted) cheats)

let engine_same_seed_identical () =
  List.iter
    (fun strategy ->
      let run () =
        let eng = mk_engine ~seed:33 ~ases:8 strategy in
        let outcomes = outcomes_of eng 2 in
        (E.digest eng, List.map (fun o -> o.E.vx_line) outcomes)
      in
      let d1, lines1 = run () in
      let d2, lines2 = run () in
      Alcotest.(check string)
        (P.Adversary.strategy_to_string strategy)
        d1 d2;
      check_bool "outcome lines identical" true (lines1 = lines2))
    P.Adversary.all_strategies

(* ---- CLI ------------------------------------------------------------------------- *)

let cli = "../bin/pvr_cli.exe"

let cli_matrix_reproducible () =
  let capture file =
    Sys.command
      (Printf.sprintf
         "%s adversary --seed 9 --ases 10 --epochs 1 > %s 2>&1" cli file)
  in
  let read file =
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove file;
    s
  in
  check_int "first run exits 0" 0 (capture "adv_run1.txt");
  check_int "second run exits 0" 0 (capture "adv_run2.txt");
  let s1 = read "adv_run1.txt" and s2 = read "adv_run2.txt" in
  check_bool "byte-identical output" true (s1 = s2);
  let contains needle =
    let nl = String.length needle and hl = String.length s1 in
    let rec go i =
      i + nl <= hl && (String.sub s1 i nl = needle || go (i + 1))
    in
    go 0
  in
  check_bool "matrix lines present" true
    (String.length s1 > 0
    && List.for_all contains [ "strategy=timing-probe"; "violations=0" ])

let suite =
  [
    plan_deterministic;
    plan_sweep_is_behaviour;
    ("plan: adaptive cheats only on low-value prefixes", `Quick,
     plan_adaptive_low_value);
    ("plan: cross-shard subset epoch-stable", `Quick,
     plan_cross_shard_epoch_stable);
    ("plan: timing probe stonewalls and complies", `Quick,
     plan_timing_probe_complies);
    ("strategy: names round-trip", `Quick, strategy_names_roundtrip);
    ("leakage: honest round leaks zero excess bits", `Quick,
     honest_zero_excess);
    ("leakage: false bits flagged by the meter", `Quick, false_bits_flagged);
    ("judge: equivocation evidence names the prover", `Quick,
     equivocation_names_prover);
    ("judge: complying stonewaller exonerated, never convicted", `Quick,
     stonewall_comply_exonerated);
    ("engine: timeouts never convict honest provers", `Slow,
     precedence_timeouts_never_convict);
    ("engine: same-seed zoo runs byte-identical", `Slow,
     engine_same_seed_identical);
    ("cli: adversary matrix reproducible", `Slow, cli_matrix_reproducible);
  ]
