(* Tests for pvr_engine: the deterministic domain pool, derived/cached
   commitments, the keyring public-key memo, and the continuous engine's
   contracts — incremental state ≡ from-scratch recomputation (cache on ≡
   cache off), byte-identical reports for any --jobs value, cache-on doing
   strictly less SHA-256 work under partial churn, and §2.3 Accuracy /
   Detection holding across multi-epoch fault-injected soaks. *)

module P = Pvr
module E = Pvr_engine.Engine
module Pool = Pvr_engine.Pool
module G = Pvr_bgp
module C = Pvr_crypto
module N = Pvr_net
module Obs = Pvr_obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Counter deltas attributable to one thunk. *)
let counted f =
  Obs.set_enabled true;
  let before = Obs.Snapshot.capture () in
  let result = f () in
  let d = Obs.Snapshot.diff ~before ~after:(Obs.Snapshot.capture ()) in
  Obs.set_enabled false;
  (result, d)

let delta d name = Obs.Snapshot.counter_value d name

(* ---- pool ----------------------------------------------------------------------- *)

let pool_preserves_order () =
  let tasks = Array.init 37 (fun i -> fun () -> i * i) in
  List.iter
    (fun jobs ->
      let r = Pool.run ~jobs tasks in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        (Array.init 37 (fun i -> i * i))
        r)
    [ 1; 2; 4; 37; 64 ]

let pool_uneven_tasks () =
  (* Tasks of very different cost still land in their own slots. *)
  let cost i = if i mod 5 = 0 then 20_000 else 10 in
  let tasks =
    Array.init 23 (fun i ->
        fun () ->
          let acc = ref 0 in
          for j = 1 to cost i do
            acc := (!acc + (i * j)) land 0xFFFF
          done;
          (i, !acc))
  in
  let expect = Array.map (fun f -> f ()) tasks in
  Alcotest.(check (array (pair int int))) "same" expect (Pool.run ~jobs:4 tasks)

exception Boom of int

let pool_reraises_first_exception () =
  let tasks =
    Array.init 10 (fun i ->
        fun () -> if i = 3 || i = 7 then raise (Boom i) else i)
  in
  List.iter
    (fun jobs ->
      match Pool.run ~jobs tasks with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
          check_int (Printf.sprintf "first failure (jobs=%d)" jobs) 3 i)
    [ 1; 4 ]

(* ---- derived commitments -------------------------------------------------------- *)

let derived_commitment_is_deterministic () =
  let c1, o1 = C.Commitment.commit_derived ~key:"salt" ~context:"v|1" "abc" in
  let c2, o2 = C.Commitment.commit_derived ~key:"salt" ~context:"v|1" "abc" in
  check_string "commitment" (C.Commitment.to_hex c1) (C.Commitment.to_hex c2);
  check_string "nonce" o1.C.Commitment.nonce o2.C.Commitment.nonce;
  check_bool "verifies" true (C.Commitment.verify c1 o1);
  check_bool "cross-verifies" true (C.Commitment.verify c1 o2)

let derived_commitment_separates () =
  let c1, _ = C.Commitment.commit_derived ~key:"salt" ~context:"v|1" "abc" in
  let c2, _ = C.Commitment.commit_derived ~key:"salt" ~context:"v|2" "abc" in
  let c3, _ = C.Commitment.commit_derived ~key:"salt" ~context:"v|1" "abd" in
  let c4, _ = C.Commitment.commit_derived ~key:"pepper" ~context:"v|1" "abc" in
  check_bool "context" false (C.Commitment.to_hex c1 = C.Commitment.to_hex c2);
  check_bool "value" false (C.Commitment.to_hex c1 = C.Commitment.to_hex c3);
  check_bool "key" false (C.Commitment.to_hex c1 = C.Commitment.to_hex c4)

let commitment_cache_counts_hits () =
  let cache = C.Commitment.Cache.create ~key:"salt" () in
  let (c1, c2, c3), d =
    counted (fun () ->
        let c1, _ = C.Commitment.Cache.commit_bit cache ~context:"x" true in
        let c2, _ = C.Commitment.Cache.commit_bit cache ~context:"x" true in
        let c3, _ = C.Commitment.Cache.commit_bit cache ~context:"y" true in
        (c1, c2, c3))
  in
  check_int "misses" 2 (delta d "crypto.commitment.cache.misses");
  check_int "hits" 1 (delta d "crypto.commitment.cache.hits");
  check_string "hit is identical" (C.Commitment.to_hex c1)
    (C.Commitment.to_hex c2);
  check_bool "contexts separate" false
    (C.Commitment.to_hex c1 = C.Commitment.to_hex c3);
  check_int "size" 2 (C.Commitment.Cache.size cache);
  C.Commitment.Cache.clear cache;
  check_int "cleared" 0 (C.Commitment.Cache.size cache)

(* ---- shared engine world -------------------------------------------------------- *)

let asn = G.Asn.of_int

let etopo =
  lazy
    (G.Topology.hierarchy
       (C.Drbg.of_int_seed 99)
       ~tiers:[ 1; 2; 3 ] ~extra_peering:0.3)

(* One shared keyring for the whole suite: keygen dominates runtime. *)
let ekeyring =
  lazy
    (P.Keyring.create ~bits:512
       (C.Drbg.of_int_seed 98)
       (G.Topology.ases (Lazy.force etopo)))

let run_engine ?(jobs = 1) ?(cache = true) ?behaviour ?faults ~seed ~epochs
    ~turnover () =
  let topo = Lazy.force etopo in
  let sim = G.Simulator.create topo in
  let origins =
    List.sort (fun a b -> G.Asn.compare b a) (G.Topology.ases topo)
    |> List.filteri (fun i _ -> i < 2)
    |> List.rev
  in
  let churn =
    G.Update_gen.Churn.create ~anycast:2 ~origins ~prefixes_per_origin:2 ()
  in
  let churn_rng = C.Drbg.of_int_seed seed in
  let eng =
    E.create ~jobs ~cache ~salt_every:3 ~max_path_len:8 ?behaviour ?faults
      (C.Drbg.of_int_seed (seed + 1))
      (Lazy.force ekeyring) ~topology:topo ~sim ()
  in
  let reports =
    List.init epochs (fun i ->
        E.epoch
          ~apply:(fun sim ->
            if i = 0 then List.length (G.Update_gen.Churn.seed churn sim)
            else
              List.length (G.Update_gen.Churn.step churn_rng ~turnover churn sim))
          eng)
  in
  (eng, reports)

let total f reports = List.fold_left (fun n r -> n + f r) 0 reports

let drop_faults =
  {
    P.Runner.perfect_faults with
    P.Runner.fp_policy = N.faulty ~drop:0.15 ~duplicate:0.05 ~delay_max:2 ();
  }

(* ---- engine determinism --------------------------------------------------------- *)

let jobs_regression () =
  (* Fixed-seed regression: --jobs 1 and --jobs 4 produce byte-identical
     reports, line for line, and the same final digest. *)
  let eng1, r1 = run_engine ~jobs:1 ~seed:5 ~epochs:4 ~turnover:0.3 () in
  let eng4, r4 = run_engine ~jobs:4 ~seed:5 ~epochs:4 ~turnover:0.3 () in
  check_bool "world is non-trivial" true (total (fun r -> r.E.ep_vertices) r1 > 0);
  check_string "digest" (E.digest eng1) (E.digest eng4);
  List.iter2
    (fun a b -> check_string "report line" (E.report_line a) (E.report_line b))
    r1 r4;
  List.iter2
    (fun a b ->
      List.iter2
        (fun (x : E.outcome) (y : E.outcome) ->
          check_string "outcome line" x.E.vx_line y.E.vx_line)
        a.E.ep_outcomes b.E.ep_outcomes)
    r1 r4

let cache_off_equals_cache_on () =
  let eng_on, r_on = run_engine ~cache:true ~seed:11 ~epochs:5 ~turnover:0.25 () in
  let eng_off, r_off =
    run_engine ~cache:false ~seed:11 ~epochs:5 ~turnover:0.25 ()
  in
  check_string "digest" (E.digest eng_on) (E.digest eng_off);
  check_bool "cache-on actually skipped work" true
    (total (fun r -> r.E.ep_skipped) r_on > 0);
  check_int "cache-off recomputes everything" 0
    (total (fun r -> r.E.ep_skipped) r_off)

let incremental_equals_scratch_qcheck =
  (* The tentpole property: after N epochs of any churn stream, the
     incremental engine's reports equal from-scratch recomputation — for
     any seed, cache on or off, and any jobs count. *)
  qtest ~count:8 "incremental ≡ from-scratch (any seed/churn)"
    QCheck2.Gen.(
      triple (int_range 0 1000) (int_range 2 5)
        (oneofl [ 0.0; 0.1; 0.3; 1.0 ]))
    (fun (seed, epochs, turnover) ->
      let eng_on, _ = run_engine ~cache:true ~seed ~epochs ~turnover () in
      let eng_off, _ = run_engine ~cache:false ~seed ~epochs ~turnover () in
      let eng_j3, _ =
        run_engine ~cache:true ~jobs:3 ~seed ~epochs ~turnover ()
      in
      E.digest eng_on = E.digest eng_off && E.digest eng_on = E.digest eng_j3)

let cache_reduces_sha256 () =
  let (_ : E.t * E.epoch_report list), d_on =
    counted (fun () -> run_engine ~cache:true ~seed:21 ~epochs:5 ~turnover:0.2 ())
  in
  let (_ : E.t * E.epoch_report list), d_off =
    counted (fun () ->
        run_engine ~cache:false ~seed:21 ~epochs:5 ~turnover:0.2 ())
  in
  check_bool "fewer sha256 finalizes with cache" true
    (delta d_on "crypto.sha256.ops" < delta d_off "crypto.sha256.ops");
  check_bool "no more rsa signs with cache" true
    (delta d_on "crypto.rsa.sign.ops" <= delta d_off "crypto.rsa.sign.ops");
  check_int "cache-off never hits" 0 (delta d_off "crypto.commitment.cache.hits");
  check_bool "vertices skipped counted" true
    (delta d_on "engine.vertices.skipped" > 0)

let fast_crypto_equals_naive_digest () =
  (* The fast-math acceptance gate as a differential test: rerouting every
     modular exponentiation through the naive square-and-multiply oracle
     must reproduce the byte-identical engine digest for the same seed. *)
  let eng_fast, _ = run_engine ~seed:91 ~epochs:3 ~turnover:0.3 () in
  check_bool "fast path on" true (C.Bigint.fast_mod_pow_enabled ());
  C.Bigint.set_fast_mod_pow false;
  Fun.protect ~finally:(fun () -> C.Bigint.set_fast_mod_pow true) @@ fun () ->
  let eng_naive, _ = run_engine ~seed:91 ~epochs:3 ~turnover:0.3 () in
  check_string "digest byte-identical fast vs naive modexp"
    (E.digest eng_fast) (E.digest eng_naive)

let commitment_cache_hits_under_churn () =
  (* The PR-7 regression floor: under 20% turnover inside one salt period,
     the commitment cache (per-bit entries plus the vector memo) must
     absorb a substantial share of the recommitment work, and the cached
     run's digest must stay byte-identical to the cache-off run. *)
  let (eng_on, _), d_on =
    counted (fun () -> run_engine ~cache:true ~seed:77 ~epochs:5 ~turnover:0.2 ())
  in
  let eng_off, _ = run_engine ~cache:false ~seed:77 ~epochs:5 ~turnover:0.2 () in
  check_string "digest byte-identical cache-on vs cache-off"
    (E.digest eng_on) (E.digest eng_off);
  (* The floor is calibrated to this seeded world: 5 epochs with a salt
     rotation (full invalidation) every 3, so only dirty-but-recommitting
     vertices inside a period can hit.  The deterministic run yields 61
     hits; 40 leaves headroom without letting the cache silently die. *)
  let hits = delta d_on "crypto.commitment.cache.hits" in
  check_bool
    (Printf.sprintf "cache hits above floor (hits=%d)" hits)
    true (hits >= 40);
  check_bool "vector memo engaged" true
    (delta d_on "crypto.commitment.cache.vector.hits" > 0)

let engine_memo_hits_on_partial_churn () =
  (* Deterministic partial-churn schedule: epoch 2 adds a second origin for
     a prefix announced in epoch 1, inside the same salt period.  Vertices
     whose route set grew are dirty and re-verify, but the unchanged input
     route's signature (and any unchanged commitment bits) must come from
     the per-period memo tables rather than fresh crypto. *)
  let topo = Lazy.force etopo in
  let sim = G.Simulator.create topo in
  let ases = List.sort (fun a b -> G.Asn.compare b a) (G.Topology.ases topo) in
  let o1 = List.nth ases 0 in
  let o2 = List.nth ases 1 in
  let p = G.Prefix.make ~addr:((10 lsl 24) lor (42 lsl 8)) ~len:24 in
  let eng =
    E.create ~cache:true ~salt_every:4 ~max_path_len:8
      (C.Drbg.of_int_seed 61)
      (Lazy.force ekeyring) ~topology:topo ~sim ()
  in
  let (_ : E.epoch_report) =
    E.epoch
      ~apply:(fun sim ->
        G.Simulator.originate sim ~asn:o1 p;
        1)
      eng
  in
  let (_ : E.epoch_report), d =
    counted (fun () ->
        E.epoch
          ~apply:(fun sim ->
            G.Simulator.originate sim ~asn:o2 p;
            1)
          eng)
  in
  check_bool "dirty vertices reuse memoised crypto" true
    (delta d "engine.cache.sign.hits" > 0
    || delta d "crypto.commitment.cache.hits" > 0)

(* ---- engine × fault profiles ---------------------------------------------------- *)

let fault_soak_accuracy () =
  (* §2.3 Accuracy over a multi-epoch fault-injected soak: the honest
     simulator is never even accused, whatever the network does. *)
  let eng, reports =
    run_engine ~faults:drop_faults ~seed:31 ~epochs:4 ~turnover:0.3 ()
  in
  check_bool "non-trivial" true (total (fun r -> r.E.ep_vertices) reports > 0);
  List.iter
    (fun r ->
      check_int
        (Printf.sprintf "epoch %d convictions" r.E.ep_epoch)
        0 r.E.ep_convicted)
    reports;
  (* Fault schedules are derived per vertex: the soak digest is still a
     pure function of the seed, for any jobs value. *)
  let eng4, _ =
    run_engine ~faults:drop_faults ~jobs:4 ~seed:31 ~epochs:4 ~turnover:0.3 ()
  in
  check_string "faulty digest across jobs" (E.digest eng) (E.digest eng4)

let fault_soak_detection () =
  (* A Byzantine prover at every vertex, over a lossy network: whenever the
     fault schedule delivered the witnessing messages
     (Runner.detection_expected), the behaviour is detected and convicted. *)
  let behaviour = P.Adversary.False_bits in
  let _, reports =
    run_engine ~behaviour ~faults:drop_faults ~seed:41 ~epochs:3 ~turnover:0.3
      ()
  in
  let required = ref 0 in
  List.iter
    (fun r ->
      List.iter
        (fun (o : E.outcome) ->
          match o.E.vx_net with
          | None -> Alcotest.fail "faulty mode must carry a net report"
          | Some nr ->
              if
                P.Runner.detection_expected behaviour
                  ~beneficiary:o.E.vx_beneficiary ~routes:o.E.vx_routes nr
              then begin
                incr required;
                check_bool "detected when witnessed" true o.E.vx_detected;
                check_bool "convicted when witnessed" true o.E.vx_convicted
              end)
        r.E.ep_outcomes)
    reports;
  check_bool "oracle required at least one detection" true (!required > 0)

let perfect_net_byzantine_always_convicted () =
  let behaviour = P.Adversary.Export_nonminimal in
  let _, reports =
    run_engine ~behaviour ~faults:P.Runner.perfect_faults ~seed:51 ~epochs:2
      ~turnover:0.2 ()
  in
  List.iter
    (fun r ->
      List.iter
        (fun (o : E.outcome) ->
          (* Export_nonminimal only misbehaves when it has a strictly
             non-minimal input to export; with one input it is honest. *)
          let lens =
            List.map (fun (_, rt) -> G.Route.path_length rt) o.E.vx_routes
          in
          let can_cheat =
            List.length (List.sort_uniq Int.compare lens) > 1
          in
          if can_cheat then
            check_bool "convicted on perfect net" true o.E.vx_convicted)
        r.E.ep_outcomes)
    reports

(* ---- keyring memo --------------------------------------------------------------- *)

let keyring_memo_serves_lookups () =
  let kr = Lazy.force ekeyring in
  let some_as = List.hd (P.Keyring.members kr) in
  let (_ : C.Rsa.public_key list), d =
    counted (fun () -> List.init 7 (fun _ -> P.Keyring.public_key kr some_as))
  in
  check_int "memo hits" 7 (delta d "keyring.pub.memo_hits");
  check_int "no map walks" 0 (delta d "keyring.pub.map_lookups")

(* ---- churn ---------------------------------------------------------------------- *)

let churn_is_deterministic () =
  let origins = [ asn 5; asn 6 ] in
  let mk () =
    let topo = Lazy.force etopo in
    let sim = G.Simulator.create topo in
    let churn = G.Update_gen.Churn.create ~origins ~prefixes_per_origin:3 () in
    let rng = C.Drbg.of_int_seed 7 in
    let a = G.Update_gen.Churn.seed churn sim in
    let bs =
      List.init 4 (fun _ -> G.Update_gen.Churn.step rng ~turnover:0.4 churn sim)
    in
    (a, bs, G.Update_gen.Churn.live_count churn)
  in
  let a1, b1, l1 = mk () in
  let a2, b2, l2 = mk () in
  check_bool "seed equal" true (a1 = a2);
  check_bool "steps equal" true (b1 = b2);
  check_int "live count equal" l1 l2;
  check_int "seed announces every slot" 6 (List.length a1)

let suite =
  [
    Alcotest.test_case "pool: preserves task order" `Quick pool_preserves_order;
    Alcotest.test_case "pool: uneven task costs" `Quick pool_uneven_tasks;
    Alcotest.test_case "pool: re-raises first exception" `Quick
      pool_reraises_first_exception;
    Alcotest.test_case "commitment: derived is deterministic" `Quick
      derived_commitment_is_deterministic;
    Alcotest.test_case "commitment: derived separates key/context/value"
      `Quick derived_commitment_separates;
    Alcotest.test_case "commitment: cache counts hits" `Quick
      commitment_cache_counts_hits;
    Alcotest.test_case "engine: jobs 1 vs 4 byte-identical reports" `Quick
      jobs_regression;
    Alcotest.test_case "engine: cache on ≡ cache off" `Quick
      cache_off_equals_cache_on;
    incremental_equals_scratch_qcheck;
    Alcotest.test_case "engine: cache reduces SHA-256 finalizes" `Quick
      cache_reduces_sha256;
    Alcotest.test_case "engine: fast modexp ≡ naive modexp digest" `Quick
      fast_crypto_equals_naive_digest;
    Alcotest.test_case "engine: commitment-cache hits under 20% churn" `Quick
      commitment_cache_hits_under_churn;
    Alcotest.test_case "engine: memo hits on partial churn" `Quick
      engine_memo_hits_on_partial_churn;
    Alcotest.test_case "engine: accuracy under faults (multi-epoch soak)"
      `Quick fault_soak_accuracy;
    Alcotest.test_case "engine: detection oracle under faults" `Quick
      fault_soak_detection;
    Alcotest.test_case "engine: byzantine convicted on perfect net" `Quick
      perfect_net_byzantine_always_convicted;
    Alcotest.test_case "keyring: memo serves hot-path lookups" `Quick
      keyring_memo_serves_lookups;
    Alcotest.test_case "churn: deterministic streams" `Quick
      churn_is_deterministic;
  ]
