(* Tests for pvr_obs: counter and histogram semantics, the zero-cost
   disabled path, snapshot capture/diff/JSON, and per-round tallies. *)

module O = Pvr_obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The registry is global; every test starts from a known state and leaves
   metrics disabled so other suites are unaffected. *)
let fresh () =
  O.set_enabled true;
  O.reset_all ()

let teardown () = O.set_enabled false

let with_fresh f =
  fresh ();
  Fun.protect ~finally:teardown f

(* ---- counters ---------------------------------------------------------- *)

let counter_basics () =
  with_fresh @@ fun () ->
  let c = O.counter "t.counter.basics" in
  check_int "starts at zero" 0 (O.value c);
  O.incr c;
  O.incr c;
  O.add c 40;
  check_int "incr and add" 42 (O.value c);
  check_bool "same name, same counter" true (O.counter "t.counter.basics" == c)

let counter_disabled_is_noop () =
  with_fresh @@ fun () ->
  let c = O.counter "t.counter.disabled" in
  O.set_enabled false;
  O.incr c;
  O.add c 100;
  check_int "no-ops while disabled" 0 (O.value c);
  O.set_enabled true;
  O.incr c;
  check_int "counts again when re-enabled" 1 (O.value c)

let reset_between_rounds () =
  with_fresh @@ fun () ->
  let c = O.counter "t.counter.reset" in
  let h = O.histogram "t.histogram.reset" in
  O.add c 7;
  O.observe h 0.001;
  O.reset_all ();
  check_int "counter reset" 0 (O.value c);
  let snap = O.Snapshot.capture () in
  let stats = List.assoc "t.histogram.reset" (O.Snapshot.histograms snap) in
  check_int "histogram reset" 0 stats.O.hs_count;
  (* A second round after the reset starts from a clean slate. *)
  O.incr c;
  check_int "round two counts from zero" 1 (O.value c)

(* ---- histograms -------------------------------------------------------- *)

let histogram_stats () =
  with_fresh @@ fun () ->
  let h = O.histogram "t.histogram.stats" in
  List.iter (O.observe h) [ 0.001; 0.002; 0.004 ];
  let snap = O.Snapshot.capture () in
  let s = List.assoc "t.histogram.stats" (O.Snapshot.histograms snap) in
  check_int "count" 3 s.O.hs_count;
  check_bool "sum" true (abs_float (s.O.hs_sum -. 0.007) < 1e-9);
  check_bool "min" true (abs_float (s.O.hs_min -. 0.001) < 1e-9);
  check_bool "max" true (abs_float (s.O.hs_max -. 0.004) < 1e-9);
  check_bool "buckets non-empty" true (s.O.hs_buckets <> [])

let histogram_quantiles () =
  with_fresh @@ fun () ->
  let h = O.histogram "t.histogram.quantiles" in
  (* 100 fast observations and one slow outlier. *)
  for _ = 1 to 100 do
    O.observe h 1e-6
  done;
  O.observe h 1e-3;
  let snap = O.Snapshot.capture () in
  let s = List.assoc "t.histogram.quantiles" (O.Snapshot.histograms snap) in
  let p50 = O.quantile s 0.5 and p95 = O.quantile s 0.95 in
  let p100 = O.quantile s 1.0 in
  check_bool "p50 in the fast bucket" true (p50 < 1e-4);
  check_bool "p95 in the fast bucket" true (p95 < 1e-4);
  check_bool "p100 covers the outlier" true (p100 >= 1e-3);
  check_bool "quantiles are monotone" true (p50 <= p95 && p95 <= p100)

let histogram_empty_quantile () =
  with_fresh @@ fun () ->
  let h = O.histogram "t.histogram.empty" in
  ignore h;
  let snap = O.Snapshot.capture () in
  let s = List.assoc "t.histogram.empty" (O.Snapshot.histograms snap) in
  check_bool "empty quantile is zero" true (O.quantile s 0.5 = 0.0)

(* ---- spans ------------------------------------------------------------- *)

let span_records () =
  with_fresh @@ fun () ->
  let r = O.with_span "t.span.records" (fun () -> 6 * 7) in
  check_int "returns the body's value" 42 r;
  let snap = O.Snapshot.capture () in
  let s = List.assoc "t.span.records" (O.Snapshot.histograms snap) in
  check_int "one observation" 1 s.O.hs_count

let span_disabled_creates_nothing () =
  with_fresh @@ fun () ->
  O.set_enabled false;
  let r = O.with_span "t.span.disabled" (fun () -> "ok") in
  check_bool "body still runs" true (r = "ok");
  O.set_enabled true;
  let snap = O.Snapshot.capture () in
  check_bool "no histogram registered while disabled" true
    (List.assoc_opt "t.span.disabled" (O.Snapshot.histograms snap) = None)

let span_observes_on_exception () =
  with_fresh @@ fun () ->
  (try O.with_span "t.span.raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  let snap = O.Snapshot.capture () in
  let s = List.assoc "t.span.raises" (O.Snapshot.histograms snap) in
  check_int "observed despite the exception" 1 s.O.hs_count

(* ---- snapshots --------------------------------------------------------- *)

let snapshot_diff () =
  with_fresh @@ fun () ->
  let c = O.counter "t.snapshot.diff" in
  O.add c 10;
  let before = O.Snapshot.capture () in
  O.add c 32;
  let after = O.Snapshot.capture () in
  let d = O.Snapshot.diff ~before ~after in
  check_int "delta, not absolute" 32 (O.Snapshot.counter_value d "t.snapshot.diff");
  check_int "unknown counter reads zero" 0
    (O.Snapshot.counter_value d "t.snapshot.no-such-counter")

let snapshot_json_shape () =
  with_fresh @@ fun () ->
  let c = O.counter "t.snapshot.json" in
  O.add c 5;
  let h = O.histogram "t.snapshot.json.span" in
  O.observe h 0.002;
  let json = O.Json.to_string (O.Snapshot.to_json (O.Snapshot.capture ())) in
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "counters object" true (contains "\"counters\":{");
  check_bool "histograms object" true (contains "\"histograms\":{");
  check_bool "counter value" true (contains "\"t.snapshot.json\":5");
  List.iter
    (fun field -> check_bool field true (contains ("\"" ^ field ^ "\":")))
    [ "count"; "sum_ms"; "min_ms"; "max_ms"; "p50_ms"; "p95_ms" ]

let json_writer () =
  let j =
    O.Json.(
      Obj
        [
          ("s", String "a\"b\\c\nd");
          ("i", Int (-3));
          ("f", Float 1.5);
          ("nan", Float Float.nan);
          ("l", List [ Bool true; Null ]);
        ])
  in
  Alcotest.(check string)
    "escaping and shapes"
    "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,\"f\":1.5,\"nan\":null,\"l\":[true,null]}"
    (O.Json.to_string j)

(* ---- tallies ----------------------------------------------------------- *)

let tally_counts_when_disabled () =
  with_fresh @@ fun () ->
  O.set_enabled false;
  let t = O.Tally.create () in
  O.Tally.incr t "msgs";
  O.Tally.add t "msgs" 4;
  O.Tally.max_ t "bytes" 100;
  O.Tally.max_ t "bytes" 60;
  check_int "tally counts regardless of the flag" 5 (O.Tally.get t "msgs");
  check_int "max_ keeps the max" 100 (O.Tally.get t "bytes");
  check_int "unknown key reads zero" 0 (O.Tally.get t "nope");
  (* publish while disabled must not touch the global registry... *)
  O.Tally.publish t;
  O.set_enabled true;
  check_int "publish is gated" 0 (O.value (O.counter "msgs"));
  (* ...but publishes once enabled. *)
  O.Tally.publish t;
  check_int "publish mirrors the tally" 5 (O.value (O.counter "msgs"))

let suite =
  [
    Alcotest.test_case "counter basics" `Quick counter_basics;
    Alcotest.test_case "counter disabled is no-op" `Quick counter_disabled_is_noop;
    Alcotest.test_case "reset between rounds" `Quick reset_between_rounds;
    Alcotest.test_case "histogram stats" `Quick histogram_stats;
    Alcotest.test_case "histogram quantiles" `Quick histogram_quantiles;
    Alcotest.test_case "empty histogram quantile" `Quick histogram_empty_quantile;
    Alcotest.test_case "span records" `Quick span_records;
    Alcotest.test_case "span disabled creates nothing" `Quick
      span_disabled_creates_nothing;
    Alcotest.test_case "span observes on exception" `Quick
      span_observes_on_exception;
    Alcotest.test_case "snapshot diff" `Quick snapshot_diff;
    Alcotest.test_case "snapshot json shape" `Quick snapshot_json_shape;
    Alcotest.test_case "json writer" `Quick json_writer;
    Alcotest.test_case "tally counts when disabled" `Quick
      tally_counts_when_disabled;
  ]
