(** Metrics and tracing for the PVR stack.

    §3.8 of the paper argues the overhead of verification is low — one
    SHA-256 per commitment bit and one RSA signature per update.  This
    module turns that argument into measurements: the crypto, wire, gossip,
    simulator and runner layers increment named {e counters} (operation and
    byte counts) and record named {e spans} (latency histograms) into a
    global registry, which {!Snapshot} exports as JSON for
    [BENCH_pvr.json] and the CLI's [--stats] flag.

    Instrumentation is {e disabled by default} and is a single branch on a
    [bool ref] when off, so the hot paths pay nothing measurable.  Counter
    updates are atomic and histogram/registry mutations are mutex-guarded,
    so instrumented code may run on multiple domains (the
    {!Pvr_engine.Pool} workers) without losing counts.  The one
    exception is {!Tally}: protocol-semantic counts (messages exchanged in
    a round, commitment bytes) that a {!Snapshot} consumer and the runner's
    report both need, which are therefore always counted locally and only
    {e published} to the global registry when enabled. *)

val set_enabled : bool -> unit
(** Turn global metric collection on or off (default: off). *)

val enabled : unit -> bool

(** {2 Counters} *)

type counter
(** A monotonic named counter (also used for byte accumulators).
    Internally sharded across per-domain cells so concurrent increments
    from engine worker domains never contend on one atomic; {!value} and
    snapshot capture fold the cells. *)

val counter : string -> counter
(** Get or create the registered counter with that name.  Counter names use
    dotted paths, e.g. ["crypto.sha256.ops"] or ["wire.commit.bytes"]. *)

val incr : counter -> unit
(** No-op while disabled. *)

val add : counter -> int -> unit
(** No-op while disabled. *)

val value : counter -> int
(** Fold of the per-domain cells.  Exact once concurrent writers have
    been joined (the engine only reads at epoch barriers and snapshot
    capture); mid-flight reads may lag in-progress increments, exactly as
    a racing read of a single atomic would. *)

(** {2 Gauges} *)

type gauge
(** A named {e level} — the current size of something (live interned
    routes, heap words) rather than a monotonic count.  Writes are atomic
    stores, so gauges may be set from any domain. *)

val gauge : string -> gauge
(** Get or create the registered gauge with that name.  Gauge names use
    dotted paths, e.g. ["intern.routes.live"] or ["engine.gc.heap_words"]. *)

val set_gauge : gauge -> int -> unit
(** Overwrite the gauge's current value.  No-op while disabled. *)

val gauge_read : gauge -> int

(** {2 Latency histograms and spans} *)

type histogram
(** Log-bucketed latency histogram (power-of-two nanosecond buckets). *)

val histogram : string -> histogram
(** Get or create the registered histogram with that name. *)

val observe : histogram -> float -> unit
(** Record one duration, in seconds.  No-op while disabled. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and records its wall-clock duration in the
    histogram [name].  While disabled it is exactly [f ()] — the clock is
    never read. *)

val reset_all : unit -> unit
(** Zero every registered counter and histogram (registrations remain). *)

(** {2 JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact (single-line) rendering; strings are escaped, non-finite
      floats become [null]. *)
end

(** {2 Snapshots} *)

type histogram_stats = {
  hs_count : int;
  hs_sum : float;  (** seconds *)
  hs_min : float;  (** seconds; 0 when the histogram is empty *)
  hs_max : float;
  hs_buckets : (float * int) list;
      (** non-empty buckets as (upper bound in seconds, count) *)
}

val quantile : histogram_stats -> float -> float
(** Approximate quantile (bucket upper bound), in seconds. *)

module Snapshot : sig
  type t
  (** An immutable copy of every registered counter and histogram. *)

  val capture : unit -> t

  val counters : t -> (string * int) list
  (** Sorted by name. *)

  val counter_value : t -> string -> int
  (** 0 for names never registered. *)

  val gauges : t -> (string * int) list
  (** Sorted by name. *)

  val gauge_value : t -> string -> int
  (** 0 for names never registered. *)

  val histograms : t -> (string * histogram_stats) list

  val diff : before:t -> after:t -> t
  (** Per-name subtraction of counts, sums and buckets — the activity that
      happened between the two captures.  [hs_min]/[hs_max] are taken from
      [after] (approximation: log-bucketed histograms cannot subtract
      extrema).  Gauges are levels, not rates: the diff carries the
      [after] readings unchanged. *)

  val to_json : t -> Json.t
  (** [{"counters": {name: int, ...},
        "gauges": {name: int, ...},
        "histograms": {name: {"count", "sum_ms", "min_ms", "max_ms",
                              "p50_ms", "p95_ms"}, ...}}] *)
end

(** {2 Per-round tallies} *)

module Tally : sig
  type t
  (** A small local set of named counts for one protocol round.  Always
      counted (the runner's report is built from it); {!publish} mirrors it
      into the global registry when metrics are enabled. *)

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit

  val max_ : t -> string -> int -> unit
  (** Keep the maximum of the current and given value (e.g. the largest
      commitment message of a round). *)

  val get : t -> string -> int
  (** 0 for names never touched. *)

  val publish : t -> unit
  (** [add] every entry to the global counter of the same name.  No-op
      while disabled. *)
end
