(* Global registry of named counters and latency histograms.  Everything is
   gated on [enabled_flag]: an instrumented hot path pays one load + branch
   when metrics are off.

   Counter increments are atomic and the registry/histogram mutations are
   mutex-guarded so instrumented code can run on multiple domains (the
   engine's worker pool) without losing counts.  The mutex is only ever
   taken while metrics are enabled or during name registration. *)

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let registry_mutex = Mutex.create ()

let with_lock f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* ---- counters ------------------------------------------------------------ *)

(* A counter is a small power-of-two array of cells, one picked by the
   calling domain's id.  Increments from different engine worker domains
   land on different cache lines instead of rendezvousing on one Atomic
   (the E13 contention profile showed that rendezvous serializing the
   pool), and a read folds the cells.  The fold is not a point-in-time
   snapshot across domains — neither was a single Atomic read racing
   concurrent increments — and totals are exact once the writers have been
   joined, which is when the engine reads them (epoch barriers, snapshot
   capture). *)

let counter_cells = 8

type counter = { c_name : string; c_cells : int Atomic.t array }

let counter_cell c =
  c.c_cells.((Domain.self () :> int) land (counter_cells - 1))

let counter_total c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.c_cells

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  with_lock @@ fun () ->
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
      let c =
        { c_name = name; c_cells = Array.init counter_cells (fun _ -> Atomic.make 0) }
      in
      Hashtbl.add counters_tbl name c;
      c

let incr c = if !enabled_flag then Atomic.incr (counter_cell c)

let add c n =
  if !enabled_flag then ignore (Atomic.fetch_and_add (counter_cell c) n : int)

let value c = counter_total c

(* ---- gauges -------------------------------------------------------------- *)

type gauge = { g_name : string; g_value : int Atomic.t }

let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  with_lock @@ fun () ->
  match Hashtbl.find_opt gauges_tbl name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = Atomic.make 0 } in
      Hashtbl.add gauges_tbl name g;
      g

let set_gauge g v = if !enabled_flag then Atomic.set g.g_value v

let gauge_read g = Atomic.get g.g_value

(* ---- histograms ---------------------------------------------------------- *)

(* Bucket [i] counts durations d with 2^(i-1) < d_ns <= 2^i; bucket 0 holds
   everything at or below 1 ns, the last bucket everything above ~4.3 s. *)
let n_buckets = 33

type histogram = {
  h_name : string;
  h_buckets : int array; (* [n_buckets] *)
  mutable h_count : int;
  mutable h_sum : float; (* seconds *)
  mutable h_min : float;
  mutable h_max : float;
}

let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 32

let histogram name =
  with_lock @@ fun () ->
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_buckets = Array.make n_buckets 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      Hashtbl.add histograms_tbl name h;
      h

let bucket_index seconds =
  let ns = int_of_float (seconds *. 1e9) in
  if ns <= 1 then 0
  else begin
    let i = ref 0 and v = ref 1 in
    while !v < ns && !i < n_buckets - 1 do
      v := !v * 2;
      Stdlib.incr i
    done;
    !i
  end

let bucket_upper_seconds i = Float.of_int (1 lsl i) *. 1e-9

let observe h seconds =
  if !enabled_flag then
    with_lock @@ fun () ->
    let seconds = if seconds < 0.0 then 0.0 else seconds in
    h.h_buckets.(bucket_index seconds) <- h.h_buckets.(bucket_index seconds) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. seconds;
    if seconds < h.h_min then h.h_min <- seconds;
    if seconds > h.h_max then h.h_max <- seconds

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let h = histogram name in
    let t0 = Unix.gettimeofday () in
    match f () with
    | x ->
        observe h (Unix.gettimeofday () -. t0);
        x
    | exception e ->
        observe h (Unix.gettimeofday () -. t0);
        raise e
  end

let reset_all () =
  with_lock @@ fun () ->
  Hashtbl.iter
    (fun _ c -> Array.iter (fun cell -> Atomic.set cell 0) c.c_cells)
    counters_tbl;
  Hashtbl.iter (fun _ g -> Atomic.set g.g_value 0) gauges_tbl;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 n_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- infinity;
      h.h_max <- neg_infinity)
    histograms_tbl

(* ---- JSON ---------------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then
          (* %.17g round-trips but is noisy; 9 significant digits are plenty
             for millisecond timings. *)
          Buffer.add_string buf (Printf.sprintf "%.9g" f)
        else Buffer.add_string buf "null"
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            write buf item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf
end

(* ---- snapshots ----------------------------------------------------------- *)

type histogram_stats = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (float * int) list;
}

let quantile stats q =
  if stats.hs_count = 0 then 0.0
  else begin
    let target =
      int_of_float (Float.of_int stats.hs_count *. q) |> max 1
    in
    let rec go seen = function
      | [] -> stats.hs_max
      | (upper, n) :: rest ->
          if seen + n >= target then upper else go (seen + n) rest
    in
    go 0 stats.hs_buckets
  end

module Snapshot = struct
  type t = {
    s_counters : (string * int) list; (* sorted by name *)
    s_gauges : (string * int) list; (* sorted by name *)
    s_histograms : (string * histogram_stats) list; (* sorted by name *)
  }

  let capture () =
    with_lock @@ fun () ->
    let cs =
      Hashtbl.fold
        (fun name c acc -> (name, counter_total c) :: acc)
        counters_tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let gs =
      Hashtbl.fold
        (fun name g acc -> (name, Atomic.get g.g_value) :: acc)
        gauges_tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let hs =
      Hashtbl.fold
        (fun name h acc ->
          let buckets = ref [] in
          for i = n_buckets - 1 downto 0 do
            if h.h_buckets.(i) > 0 then
              buckets := (bucket_upper_seconds i, h.h_buckets.(i)) :: !buckets
          done;
          ( name,
            {
              hs_count = h.h_count;
              hs_sum = h.h_sum;
              hs_min = (if h.h_count = 0 then 0.0 else h.h_min);
              hs_max = (if h.h_count = 0 then 0.0 else h.h_max);
              hs_buckets = !buckets;
            } )
          :: acc)
        histograms_tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    { s_counters = cs; s_gauges = gs; s_histograms = hs }

  let counters t = t.s_counters

  let counter_value t name =
    Option.value (List.assoc_opt name t.s_counters) ~default:0

  let gauges t = t.s_gauges

  let gauge_value t name =
    Option.value (List.assoc_opt name t.s_gauges) ~default:0

  let histograms t = t.s_histograms

  let diff ~before ~after =
    let cs =
      List.map
        (fun (name, v) ->
          (name, v - Option.value (List.assoc_opt name before.s_counters) ~default:0))
        after.s_counters
    in
    let hs =
      List.map
        (fun (name, (a : histogram_stats)) ->
          match List.assoc_opt name before.s_histograms with
          | None -> (name, a)
          | Some b ->
              let buckets =
                List.filter_map
                  (fun (upper, n) ->
                    let prev =
                      Option.value (List.assoc_opt upper b.hs_buckets) ~default:0
                    in
                    if n - prev > 0 then Some (upper, n - prev) else None)
                  a.hs_buckets
              in
              ( name,
                {
                  hs_count = a.hs_count - b.hs_count;
                  hs_sum = a.hs_sum -. b.hs_sum;
                  hs_min = a.hs_min;
                  hs_max = a.hs_max;
                  hs_buckets = buckets;
                } ))
        after.s_histograms
    in
    (* Gauges are levels, not rates: a diff keeps the [after] reading. *)
    { s_counters = cs; s_gauges = after.s_gauges; s_histograms = hs }

  let to_json t =
    let ms x = Json.Float (x *. 1000.0) in
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) t.s_counters)
        );
        ( "gauges",
          Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) t.s_gauges)
        );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (name, (s : histogram_stats)) ->
                 ( name,
                   Json.Obj
                     [
                       ("count", Json.Int s.hs_count);
                       ("sum_ms", ms s.hs_sum);
                       ("min_ms", ms s.hs_min);
                       ("max_ms", ms s.hs_max);
                       ("p50_ms", ms (quantile s 0.5));
                       ("p95_ms", ms (quantile s 0.95));
                     ] ))
               t.s_histograms) );
      ]
end

(* ---- per-round tallies ---------------------------------------------------- *)

module Tally = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let cell t name =
    match Hashtbl.find_opt t name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t name r;
        r

  let incr t name = Stdlib.incr (cell t name)
  let add t name n = cell t name := !(cell t name) + n
  let max_ t name n = cell t name := max !(cell t name) n
  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let publish t =
    if !enabled_flag then
      Hashtbl.iter
        (fun name r ->
          let c = counter name in
          ignore (Atomic.fetch_and_add (counter_cell c) !r : int))
        t
end
