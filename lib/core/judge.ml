module Bgp = Pvr_bgp
module C = Pvr_crypto

type verdict = Guilty | Exonerated | Rejected

let verdict_to_string = function
  | Guilty -> "guilty"
  | Exonerated -> "exonerated"
  | Rejected -> "rejected"

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_to_string v)

type challenge =
  | Produce_export of {
      epoch : Wire.epoch;
      prefix : Bgp.Prefix.t;
      beneficiary : Bgp.Asn.t;
    }
  | Produce_opening of {
      epoch : Wire.epoch;
      prefix : Bgp.Prefix.t;
      scheme : string;
      index : int;
    }

type response =
  | Export_response of Wire.export Wire.signed
  | Opening_response of C.Commitment.opening
  | No_response

let commit_valid keyring c = Wire.verify keyring ~encode:Wire.encode_commit c

let export_valid keyring (e : Wire.export Wire.signed) =
  Wire.verify keyring ~encode:Wire.encode_export e

(* Evidence almost always pairs a commit and an export signed by the same
   accused prover, so the two checks form a same-key batch: one screening
   exponentiation instead of two full verifications. *)
let commit_export_valid keyring commit (e : Wire.export Wire.signed) =
  match
    Wire.verify_batch keyring
      [
        Wire.check ~encode:Wire.encode_commit commit;
        Wire.check ~encode:Wire.encode_export e;
      ]
  with
  | [ a; b ] -> a && b
  | _ -> false

(* Same slot: the gossip identity key for commitments. *)
let same_slot (a : Wire.commit Wire.signed) (b : Wire.commit Wire.signed) =
  Bgp.Asn.equal a.Wire.signer b.Wire.signer
  && a.Wire.payload.Wire.cmt_epoch = b.Wire.payload.Wire.cmt_epoch
  && Bgp.Prefix.equal a.Wire.payload.Wire.cmt_prefix
       b.Wire.payload.Wire.cmt_prefix
  && String.equal a.Wire.payload.Wire.cmt_scheme b.Wire.payload.Wire.cmt_scheme

let bit_at commit ~index opening = Proto_common.opening_bit_at commit ~index opening

(* The lowest index whose opening is a valid bit set to 1. *)
let min_set_index commit openings =
  List.fold_left
    (fun acc (i, o) ->
      match bit_at commit ~index:i o with
      | Some true -> min acc i
      | _ -> acc)
    max_int openings

let verdict_of_bool b = if b then Guilty else Rejected

(* Common validation for promise-4 evidence: a well-formed "noshorter"
   commit plus a valid export by the accused to a listed beneficiary.
   Returns (k, beneficiary order, claimant's block, exported length). *)
let noshorter_context keyring (commit : Wire.commit Wire.signed)
    (my_export : Wire.export Wire.signed) =
  let cp = commit.Wire.payload in
  if
    not
      (cp.Wire.cmt_scheme = Proto_no_shorter.scheme
      && commit_export_valid keyring commit my_export
      && Bgp.Asn.equal my_export.Wire.signer commit.Wire.signer
      && my_export.Wire.payload.Wire.exp_epoch = cp.Wire.cmt_epoch
      && Bgp.Prefix.equal
           my_export.Wire.payload.Wire.exp_route.Bgp.Route.prefix
           cp.Wire.cmt_prefix)
  then None
  else
    match Proto_no_shorter.header_of_commit commit with
    | None -> None
    | Some (k, order) ->
        let me = my_export.Wire.payload.Wire.exp_to in
        let rec block j = function
          | [] -> None
          | x :: rest -> if Bgp.Asn.equal x me then Some j else block (j + 1) rest
        in
        Option.map
          (fun my_block ->
            ( k,
              order,
              my_block,
              Bgp.Route.path_length my_export.Wire.payload.Wire.exp_route ))
          (block 0 order)

let rec eval keyring ~respond evidence =
  let accused = Evidence.accused evidence in
  match evidence with
  | Evidence.Timeout { claim; retries } -> begin
      (* A timeout is only credible if the claimant actually retried, and
         it must wrap a real omission claim (anything self-contained needs
         no timeout to prove, and nesting timeouts proves nothing). *)
      match claim with
      | _ when retries < 1 -> Rejected
      | Evidence.Timeout _ -> Rejected
      | Evidence.Missing_export_claim { commit; openings = []; claimant } ->
          (* Total silence: the claimant never even received the opening
             set, so it cannot show a bit = 1.  The judge first asks for
             the export; an accused with nothing to export may instead
             open its top bit to 0, which (bits are monotone) proves no
             admissible input existed and nothing was owed. *)
          if not (commit_valid keyring commit) then Rejected
          else begin
            let cp = commit.Wire.payload in
            let exonerated_by_export =
              match
                respond ~accused
                  (Produce_export
                     {
                       epoch = cp.Wire.cmt_epoch;
                       prefix = cp.Wire.cmt_prefix;
                       beneficiary = claimant;
                     })
              with
              | Export_response export ->
                  Result.is_ok
                    (Proto_common.check_export_provenance keyring ~commit
                       ~beneficiary:claimant export)
              | No_response | Opening_response _ -> false
            in
            if exonerated_by_export then Exonerated
            else begin
              let k = List.length cp.Wire.cmt_commitments in
              match
                respond ~accused
                  (Produce_opening
                     {
                       epoch = cp.Wire.cmt_epoch;
                       prefix = cp.Wire.cmt_prefix;
                       scheme = cp.Wire.cmt_scheme;
                       index = k;
                     })
              with
              | Opening_response o when bit_at commit ~index:k o = Some false
                ->
                  Exonerated
              | _ -> Guilty
            end
          end
      | (Evidence.Missing_export_claim _ | Evidence.Missing_disclosure_claim _)
        as claim ->
          eval keyring ~respond claim
      | _ -> Rejected
    end
  | Evidence.Equivocation { first; second } ->
      verdict_of_bool
        (commit_valid keyring first
        && commit_valid keyring second
        && same_slot first second
        && not (Wire.equal_commit first second))
  | Evidence.False_bit { commit; index; opening; witness } ->
      let cp = commit.Wire.payload in
      let witness_len =
        Bgp.Route.path_length witness.Wire.payload.Wire.ann_route
      in
      verdict_of_bool
        (commit_valid keyring commit
        && bit_at commit ~index opening = Some false
        && Proto_common.valid_input keyring ~prover:accused
             ~epoch:cp.Wire.cmt_epoch ~prefix:cp.Wire.cmt_prefix witness
        &&
        match cp.Wire.cmt_scheme with
        | "exists" -> index = 1
        | "min" -> witness_len <= index
        | _ -> false)
  | Evidence.Non_monotonic_bits
      { commit; set_index; set_opening; unset_index; unset_opening } ->
      verdict_of_bool
        (commit_valid keyring commit
        && set_index < unset_index
        && bit_at commit ~index:set_index set_opening = Some true
        && bit_at commit ~index:unset_index unset_opening = Some false)
  | Evidence.Nonminimal_export { commit; export; index; opening } ->
      let cp = commit.Wire.payload in
      let ep = export.Wire.payload in
      verdict_of_bool
        (commit_export_valid keyring commit export
        && Bgp.Asn.equal export.Wire.signer accused
        && ep.Wire.exp_epoch = cp.Wire.cmt_epoch
        && Bgp.Prefix.equal ep.Wire.exp_route.Bgp.Route.prefix
             cp.Wire.cmt_prefix
        && index < Bgp.Route.path_length ep.Wire.exp_route
        && bit_at commit ~index opening = Some true)
  | Evidence.Unsupported_export { commit; export; openings } ->
      let cp = commit.Wire.payload in
      let ep = export.Wire.payload in
      let k = List.length cp.Wire.cmt_commitments in
      let all_zero =
        List.length openings = k
        && List.for_all
             (fun (i, o) -> bit_at commit ~index:i o = Some false)
             openings
        && List.sort_uniq Int.compare (List.map fst openings)
           = List.init k (fun i -> i + 1)
      in
      verdict_of_bool
        (commit_export_valid keyring commit export
        && Bgp.Asn.equal export.Wire.signer accused
        && ep.Wire.exp_epoch = cp.Wire.cmt_epoch
        && Bgp.Prefix.equal ep.Wire.exp_route.Bgp.Route.prefix
             cp.Wire.cmt_prefix
        && all_zero)
  | Evidence.Bad_provenance { export } ->
      if not (export_valid keyring export) then Rejected
      else begin
        (* Re-run the provenance check the beneficiary ran. *)
        let ep = export.Wire.payload in
        let ok =
          match ep.Wire.exp_provenance with
          | None -> false
          | Some ann ->
              Proto_common.valid_input keyring ~prover:export.Wire.signer
                ~epoch:ep.Wire.exp_epoch
                ~prefix:ep.Wire.exp_route.Bgp.Route.prefix ann
              && Bgp.Route.equal ann.Wire.payload.Wire.ann_route
                   ep.Wire.exp_route
        in
        if ok then Rejected (* provenance is actually fine *) else Guilty
      end
  | Evidence.Missing_export_claim { commit; openings; claimant } ->
      if not (commit_valid keyring commit) then Rejected
      else begin
        let cp = commit.Wire.payload in
        let m = min_set_index commit openings in
        let bit_says_route =
          match cp.Wire.cmt_scheme with
          | "exists" | "min" -> m < max_int
          | "graph" -> true (* bits live inside the tree; challenge anyway *)
          | "noshorter" -> begin
              (* Some opening in the claimant's own block must show 1. *)
              match Proto_no_shorter.header_of_commit commit with
              | None -> false
              | Some (k, order) -> begin
                  let rec block j = function
                    | [] -> None
                    | x :: rest ->
                        if Bgp.Asn.equal x claimant then Some j
                        else block (j + 1) rest
                  in
                  match block 0 order with
                  | None -> false
                  | Some j ->
                      List.exists
                        (fun (g, o) ->
                          g > j * k
                          && g <= (j + 1) * k
                          && Proto_no_shorter.bit_at commit ~global:g o
                             = Some true)
                        openings
                end
            end
          | _ -> false
        in
        if not bit_says_route then Rejected
        else begin
          match
            respond ~accused
              (Produce_export
                 {
                   epoch = cp.Wire.cmt_epoch;
                   prefix = cp.Wire.cmt_prefix;
                   beneficiary = claimant;
                 })
          with
          | No_response | Opening_response _ -> Guilty
          | Export_response export -> begin
              match
                Proto_common.check_export_provenance keyring ~commit
                  ~beneficiary:claimant export
              with
              | Error _ -> Guilty
              | Ok _ ->
                  let len =
                    Bgp.Route.path_length export.Wire.payload.Wire.exp_route
                  in
                  (* Under the min scheme the produced export must also be
                     minimal w.r.t. the opened bits; promise 4 and the graph
                     scheme only require *an* export. *)
                  if cp.Wire.cmt_scheme = "min" && len > m then Guilty
                  else Exonerated
            end
        end
      end
  | Evidence.Missing_disclosure_claim { commit; announce; claimant } ->
      let cp = commit.Wire.payload in
      if
        not
          (commit_valid keyring commit
          && Bgp.Asn.equal announce.Wire.signer claimant
          && Proto_common.valid_input keyring ~prover:accused
               ~epoch:cp.Wire.cmt_epoch ~prefix:cp.Wire.cmt_prefix announce)
      then Rejected
      else begin
        let index =
          match cp.Wire.cmt_scheme with
          | "exists" -> 1
          | "min" ->
              Bgp.Route.path_length announce.Wire.payload.Wire.ann_route
          | _ -> 0
        in
        if index = 0 || index > List.length cp.Wire.cmt_commitments then
          (* Graph-scheme omissions carry no commitment index the judge can
             open; the challenge falls back to the export question. *)
          Rejected
        else begin
          match
            respond ~accused
              (Produce_opening
                 {
                   epoch = cp.Wire.cmt_epoch;
                   prefix = cp.Wire.cmt_prefix;
                   scheme = cp.Wire.cmt_scheme;
                   index;
                 })
          with
          | No_response | Export_response _ -> Guilty
          | Opening_response opening -> begin
              match bit_at commit ~index opening with
              | Some true -> Exonerated
              | Some false | None -> Guilty
            end
        end
      end
  | Evidence.Graph_violation { commit; disclosures; offence } ->
      verdict_of_bool
        (Proto_graph.replay_offence keyring ~commit ~disclosures offence)
  | Evidence.Cross_shorter_export { commit; my_export; other_block; opening }
    -> begin
      match noshorter_context keyring commit my_export with
      | None -> Rejected
      | Some (k, _order, my_block, l) ->
          verdict_of_bool
            (l >= 2 && l <= k
            && other_block >= 0
            && other_block <> my_block
            && Proto_no_shorter.bit_at commit
                 ~global:((other_block * k) + (l - 1))
                 opening
               = Some true)
    end
  | Evidence.Own_vector_mismatch { commit; my_export; bit_index; opening } ->
    begin
      match noshorter_context keyring commit my_export with
      | None -> Rejected
      | Some (k, _order, my_block, l) ->
          verdict_of_bool
            (bit_index >= 1 && bit_index <= k && l <= k
            &&
            match
              Proto_no_shorter.bit_at commit
                ~global:((my_block * k) + bit_index)
                opening
            with
            | Some v -> v <> (l <= bit_index)
            | None -> false)
    end

(* The commitment a challenge's opening responses decode against. *)
let rec commit_of_evidence = function
  | Evidence.Timeout { claim; _ } -> commit_of_evidence claim
  | Evidence.Equivocation { first; _ } -> Some first
  | Evidence.False_bit { commit; _ }
  | Evidence.Non_monotonic_bits { commit; _ }
  | Evidence.Nonminimal_export { commit; _ }
  | Evidence.Unsupported_export { commit; _ }
  | Evidence.Missing_export_claim { commit; _ }
  | Evidence.Missing_disclosure_claim { commit; _ }
  | Evidence.Graph_violation { commit; _ }
  | Evidence.Cross_shorter_export { commit; _ }
  | Evidence.Own_vector_mismatch { commit; _ } -> Some commit
  | Evidence.Bad_provenance _ -> None

let evaluate ?ledger keyring ~respond evidence =
  let respond =
    match ledger with
    | None -> respond
    | Some l ->
        (* Account what challenge responses disclose to the court: an
           opening reveals one threshold bit, a produced export reveals a
           full route.  Silence reveals nothing. *)
        fun ~accused ch ->
          let r = respond ~accused ch in
          begin
            match (ch, r) with
            | Produce_opening { index; _ }, Opening_response o -> begin
                match commit_of_evidence evidence with
                | Some commit -> begin
                    match bit_at commit ~index o with
                    | Some value ->
                        Leakage.Ledger.record l ~viewer:Leakage.court
                          (Leakage.Knows_bit { index; value })
                    | None ->
                        Leakage.Ledger.record_opaque l ~viewer:Leakage.court
                  end
                | None -> Leakage.Ledger.record_opaque l ~viewer:Leakage.court
              end
            | Produce_export _, Export_response e ->
                let route = e.Wire.payload.Wire.exp_route in
                Leakage.Ledger.record l ~viewer:Leakage.court
                  (Leakage.Knows_route
                     { provider = route.Bgp.Route.next_hop; route })
            | _ -> ()
          end;
          r
  in
  eval keyring ~respond evidence

let evaluate_offline keyring evidence =
  evaluate keyring ~respond:(fun ~accused:_ _ -> No_response) evidence
