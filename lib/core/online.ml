module Bgp = Pvr_bgp
module C = Pvr_crypto
open Proto_common

type t = {
  rng : C.Drbg.t;
  keyring : Keyring.t;
  sim : Bgp.Simulator.t;
  prover : Bgp.Asn.t;
  beneficiary : Bgp.Asn.t;
  providers : Bgp.Asn.t list;
  max_path_len : int;
  gossip : [ `Clique | `Ring | `None ];
  net_policy : Pvr_net.policy;
  net_rng : C.Drbg.t;
  mutable epoch : Wire.epoch;
}

let create ?(max_path_len = Proto_min.default_max_path_len)
    ?(gossip = `Clique) ?(net_policy = Pvr_net.perfect) rng keyring ~sim
    ~prover ~beneficiary ~providers =
  (* The net generator is split off at creation, before any epoch draws,
     so fault schedules never perturb the commitment nonce stream. *)
  let net_rng = C.Drbg.split rng "online-net" in
  { rng; keyring; sim; prover; beneficiary; providers; max_path_len; gossip;
    net_policy; net_rng; epoch = 0 }

let current_epoch t = t.epoch

(* The simulator's Adj-RIB-Out entry towards B carries A's prepended path;
   PVR compares exports against inputs pre-prepend, so strip A. *)
let unprepend prover (r : Bgp.Route.t) =
  match r.Bgp.Route.as_path with
  | first :: (next :: _ as rest) when Bgp.Asn.equal first prover ->
      { r with Bgp.Route.as_path = rest; next_hop = next }
  | _ -> r

let epoch t ~prefix =
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  let inputs =
    List.filter_map
      (fun n ->
        Option.map
          (fun r -> (n, r))
          (Bgp.Rib.get_in (Bgp.Simulator.rib t.sim t.prover) ~neighbor:n prefix))
      t.providers
  in
  let announces =
    List.map
      (fun (n, r) ->
        (n, Runner.announce_of_route t.keyring ~provider:n ~prover:t.prover ~epoch r))
      inputs
  in
  (* An honest PVR layer at A: bits computed from the true Adj-RIB-In. *)
  let honest =
    Adversary.run_min Adversary.Honest ~max_path_len:t.max_path_len t.rng
      t.keyring ~prover:t.prover ~beneficiary:t.beneficiary ~epoch ~prefix
      ~inputs:(List.map snd announces)
  in
  (* ...but the export is whatever the simulator's A actually sent. *)
  let actual_export =
    Option.map
      (fun r ->
        let route = unprepend t.prover r in
        let provenance =
          List.find_opt
            (fun (ann : Wire.announce Wire.signed) ->
              Bgp.Route.equal ann.Wire.payload.Wire.ann_route route)
            (List.map snd announces)
        in
        Wire.sign t.keyring ~as_:t.prover ~encode:Wire.encode_export
          { Wire.exp_epoch = epoch; exp_to = t.beneficiary; exp_route = route;
            exp_provenance = provenance })
      (Bgp.Simulator.exported_route t.sim ~asn:t.prover
         ~neighbor:t.beneficiary prefix)
  in
  let beneficiary_disclosure =
    { honest.Adversary.beneficiary_disclosure with bd_export = actual_export }
  in
  (* Drive the same machinery as Runner.min_round, but with the substituted
     export. *)
  let participants = List.map fst announces @ [ t.beneficiary ] in
  let g = Gossip.create t.keyring in
  let raised = ref [] in
  (* Commitment delivery and gossip both ride the instance's net channel;
     under a faulty [net_policy] a holder may simply never learn the
     commitment and then skips its checks. *)
  let net = Pvr_net.create ~policy:t.net_policy ~rng:t.net_rng () in
  List.iter
    (fun who ->
      Pvr_net.send net ~src:t.prover ~dst:who
        [ honest.Adversary.commit_for who ])
    participants;
  let (_ : int) =
    Pvr_net.run net
      ~handler:(fun ~src:_ ~dst digest ->
        List.iter
          (fun c ->
            match Gossip.receive g ~holder:dst c with
            | Some e -> raised := (Adversary.Gossip, e) :: !raised
            | None -> ())
          digest)
      ()
  in
  let edges =
    match t.gossip with
    | `Clique -> Gossip.clique_edges participants
    | `Ring -> Gossip.ring_edges participants
    | `None -> []
  in
  List.iter
    (fun e -> raised := (Adversary.Gossip, e) :: !raised)
    (Gossip.run_round ~net g ~edges);
  List.iter
    (fun (provider, ann) ->
      match
        Gossip.view g ~holder:provider ~signer:t.prover ~epoch ~prefix
          ~scheme:Proto_min.scheme
      with
      | None -> ()
      | Some commit ->
          let disclosure =
            Option.join
              (List.assoc_opt provider honest.Adversary.neighbor_disclosures)
          in
          List.iter
            (fun e -> raised := (Adversary.Provider provider, e) :: !raised)
            (Proto_min.check_neighbor t.keyring ~me:provider ~my_announce:ann
               ~commit ~disclosure))
    announces;
  (match
     Gossip.view g ~holder:t.beneficiary ~signer:t.prover ~epoch ~prefix
       ~scheme:Proto_min.scheme
   with
  | None -> ()
  | Some commit ->
      List.iter
        (fun e -> raised := (Adversary.Beneficiary, e) :: !raised)
        (Proto_min.check_beneficiary t.keyring ~me:t.beneficiary ~commit
           ~disclosure:beneficiary_disclosure));
  let raised = List.rev !raised in
  let judged =
    List.map
      (fun (who, e) ->
        (who, e, Judge.evaluate t.keyring ~respond:honest.Adversary.respond e))
      raised
  in
  {
    Runner.raised;
    judged;
    detected = raised <> [];
    convicted = List.exists (fun (_, _, v) -> v = Judge.Guilty) judged;
    exonerated = List.exists (fun (_, _, v) -> v = Judge.Exonerated) judged;
    messages = List.length announces + List.length participants + List.length edges + 1;
    commit_bytes =
      String.length
        (Wire.encode_commit
           (honest.Adversary.commit_for t.beneficiary).Wire.payload);
  }

let run_epochs t ~prefixes =
  List.map (fun prefix -> (prefix, epoch t ~prefix)) prefixes
