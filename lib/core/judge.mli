(** The third party of the Evidence property (§2.3).

    "If an incorrect evaluation is detected in an AS A, then at least one AS
    B can obtain evidence against A that will convince a third party", and
    dually (Accuracy) "A can disprove any evidence that is presented
    against it."

    Self-contained evidence (conflicting signatures, bad openings, bit
    contradictions) is replayed directly.  Omission claims
    ([Missing_export_claim], [Missing_disclosure_claim]) cannot be proven by
    the accuser, so the judge {e challenges} the accused to produce the item
    it allegedly withheld; an honest AS always can, a stubborn or lying one
    is found guilty. *)

type verdict =
  | Guilty      (** the evidence convinces the judge *)
  | Exonerated  (** the accused disproved the accusation *)
  | Rejected    (** the evidence itself is malformed or unconvincing *)

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_string : verdict -> string

type challenge =
  | Produce_export of {
      epoch : Wire.epoch;
      prefix : Pvr_bgp.Prefix.t;
      beneficiary : Pvr_bgp.Asn.t;
    }
      (** "show the signed export you claim to have sent B in this round" *)
  | Produce_opening of {
      epoch : Wire.epoch;
      prefix : Pvr_bgp.Prefix.t;
      scheme : string;
      index : int;
    }
      (** "open commitment [index] of your commit message" *)

type response =
  | Export_response of Wire.export Wire.signed
  | Opening_response of Pvr_crypto.Commitment.opening
  | No_response

val evaluate :
  ?ledger:Leakage.Ledger.ledger ->
  Keyring.t ->
  respond:(accused:Pvr_bgp.Asn.t -> challenge -> response) ->
  Evidence.t ->
  verdict
(** Replay the evidence.  [respond] reaches the accused (experiments wire it
    to the honest prover or to an adversary).  Every signature and opening
    inside the evidence is re-verified from scratch: forged or inconsistent
    evidence yields [Rejected], never [Guilty].

    [ledger] accounts what each challenge response disclosed to the court
    (pseudo-viewer {!Leakage.court}): a decodable opening records its
    threshold bit, a produced export records its route, silence records
    nothing. *)

val evaluate_offline : Keyring.t -> Evidence.t -> verdict
(** Like {!evaluate} with an accused that never responds: omission claims
    against it therefore stick.  Convenient in tests for self-contained
    evidence. *)
