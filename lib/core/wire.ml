module Bgp = Pvr_bgp
module C = Pvr_crypto
module BU = Pvr_crypto.Bytes_util

type epoch = int

type 'a signed = { payload : 'a; signer : Bgp.Asn.t; signature : string }

let obs_kind kind =
  ( Pvr_obs.counter (Printf.sprintf "wire.%s.encodes" kind),
    Pvr_obs.counter (Printf.sprintf "wire.%s.bytes" kind) )

let obs_announce = obs_kind "announce"
let obs_commit = obs_kind "commit"
let obs_export = obs_kind "export"

let count (ops, bytes) s =
  Pvr_obs.incr ops;
  Pvr_obs.add bytes (String.length s);
  s

let signing_tag = "pvr-signed-v1:"

let sign_with key ~as_ ~encode payload =
  let msg = signing_tag ^ encode payload in
  { payload; signer = as_; signature = C.Rsa.sign key msg }

let sign keyring ~as_ ~encode payload =
  sign_with (Keyring.private_key keyring as_) ~as_ ~encode payload

let verify keyring ~encode s =
  match Keyring.public_key keyring s.signer with
  | pub ->
      C.Rsa.verify pub ~msg:(signing_tag ^ encode s.payload)
        ~signature:s.signature
  | exception Not_found -> false

(* A heterogeneous batch member: the payload type is packed away so one
   [verify_batch] call can mix announces, commits and exports. *)
type check = Check : { item : 'a signed; encode : 'a -> string } -> check

let check ~encode item = Check { item; encode }

let verify_batch keyring checks =
  (* Resolve keys (memoized by [Keyring]); unknown signers are verdicted
     [false] without consulting RSA, exactly like [verify]. *)
  let resolved =
    List.map
      (fun (Check { item; encode }) ->
        match Keyring.public_key keyring item.signer with
        | pub -> Some (pub, signing_tag ^ encode item.payload, item.signature)
        | exception Not_found -> None)
      checks
  in
  let known = List.filter_map Fun.id resolved in
  let verdicts = C.Rsa.verify_batch known in
  let rec stitch resolved verdicts =
    match (resolved, verdicts) with
    | [], [] -> []
    | None :: rest, vs -> false :: stitch rest vs
    | Some _ :: rest, v :: vs -> v :: stitch rest vs
    | _ -> invalid_arg "Wire.verify_batch: verdict arity mismatch"
  in
  stitch resolved verdicts

type announce = { ann_epoch : epoch; ann_to : Bgp.Asn.t; ann_route : Bgp.Route.t }

type commit = {
  cmt_epoch : epoch;
  cmt_prefix : Bgp.Prefix.t;
  cmt_scheme : string;
  cmt_commitments : string list;
}

type export = {
  exp_epoch : epoch;
  exp_to : Bgp.Asn.t;
  exp_route : Bgp.Route.t;
  exp_provenance : announce signed option;
}

let encode_announce a =
  count obs_announce
    (BU.encode_list
       [
         "announce";
         BU.be32 a.ann_epoch;
         BU.be32 (Bgp.Asn.to_int a.ann_to);
         Bgp.Route.encode a.ann_route;
       ])

let encode_commit c =
  count obs_commit
    (BU.encode_list
       ([
          "commit";
          BU.be32 c.cmt_epoch;
          Bgp.Prefix.to_string c.cmt_prefix;
          c.cmt_scheme;
        ]
       @ c.cmt_commitments))

let encode_signed ~encode s =
  BU.encode_list
    [ encode s.payload; BU.be32 (Bgp.Asn.to_int s.signer); s.signature ]

let encode_export e =
  count obs_export
    (BU.encode_list
       [
         "export";
         BU.be32 e.exp_epoch;
         BU.be32 (Bgp.Asn.to_int e.exp_to);
         Bgp.Route.encode e.exp_route;
         (match e.exp_provenance with
         | None -> ""
         | Some ann -> encode_signed ~encode:encode_announce ann);
       ])

let equal_commit a b =
  Bgp.Asn.equal a.signer b.signer
  && encode_commit a.payload = encode_commit b.payload
  && String.equal a.signature b.signature

(* ---- Transport decoding -------------------------------------------------- *)

let decode_list s =
  let read_u32 pos =
    if pos + 4 > String.length s then None
    else Some (BU.read_be32 s pos, pos + 4)
  in
  match read_u32 0 with
  | None -> None
  | Some (count, pos) when count >= 0 && count <= String.length s ->
      let rec items n pos acc =
        if n = 0 then
          if pos = String.length s then Some (List.rev acc) else None
        else
          match read_u32 pos with
          | None -> None
          | Some (len, pos) ->
              if len < 0 || pos + len > String.length s then None
              else items (n - 1) (pos + len) (String.sub s pos len :: acc)
      in
      items count pos []
  | Some _ -> None

let u32 s = if String.length s = 4 then Some (BU.read_be32 s 0) else None

let asn_of s = Option.map Bgp.Asn.of_int (u32 s)

let prefix_of s =
  match Bgp.Prefix.of_string s with
  | p -> Some p
  | exception Invalid_argument _ -> None

(* Route decoding mirrors [Bgp.Route.encode]. *)
let route_of s =
  match decode_list s with
  | Some [ prefix; path; next_hop; local_pref; med; origin; communities ] ->
      let ( let* ) = Option.bind in
      let* prefix = prefix_of prefix in
      let* path_items = decode_list path in
      let* as_path =
        List.fold_right
          (fun item acc ->
            match (asn_of item, acc) with
            | Some a, Some acc -> Some (a :: acc)
            | _ -> None)
          path_items (Some [])
      in
      let* next_hop = asn_of next_hop in
      let* local_pref = u32 local_pref in
      let* med = u32 med in
      let* origin_code = u32 origin in
      let* origin =
        match origin_code with
        | 0 -> Some Bgp.Route.Igp
        | 1 -> Some Bgp.Route.Egp
        | 2 -> Some Bgp.Route.Incomplete
        | _ -> None
      in
      let* comm_items = decode_list communities in
      let* communities =
        List.fold_right
          (fun item acc ->
            match acc with
            | None -> None
            | Some acc ->
                if String.length item = 8 then
                  Some
                    ((BU.read_be32 item 0, BU.read_be32 item 4) :: acc)
                else None)
          comm_items (Some [])
      in
      Some
        {
          Bgp.Route.prefix;
          as_path;
          next_hop;
          local_pref;
          med;
          origin;
          communities;
        }
  | _ -> None

let decode_announce s =
  match decode_list s with
  | Some [ tag; epoch; to_; route ] when tag = "announce" ->
      let ( let* ) = Option.bind in
      let* ann_epoch = u32 epoch in
      let* ann_to = asn_of to_ in
      let* ann_route = route_of route in
      Some { ann_epoch; ann_to; ann_route }
  | _ -> None

let decode_signed_raw ~decode s =
  match decode_list s with
  | Some [ payload_enc; signer; signature ] ->
      let ( let* ) = Option.bind in
      let* payload = decode payload_enc in
      let* signer = asn_of signer in
      Some { payload; signer; signature }
  | _ -> None

let decode_export_opt s =
  if s = "" then Some None
  else
    Option.map
      (fun ann -> Some ann)
      (decode_signed_raw ~decode:decode_announce s)

let decode_commit s =
  match decode_list s with
  | Some (tag :: epoch :: prefix :: scheme :: commitments) when tag = "commit"
    ->
      let ( let* ) = Option.bind in
      let* cmt_epoch = u32 epoch in
      let* cmt_prefix = prefix_of prefix in
      Some { cmt_epoch; cmt_prefix; cmt_scheme = scheme;
             cmt_commitments = commitments }
  | _ -> None

let decode_export s =
  match decode_list s with
  | Some [ tag; epoch; to_; route; provenance ] when tag = "export" ->
      let ( let* ) = Option.bind in
      let* exp_epoch = u32 epoch in
      let* exp_to = asn_of to_ in
      let* exp_route = route_of route in
      let* exp_provenance = decode_export_opt provenance in
      Some { exp_epoch; exp_to; exp_route; exp_provenance }
  | _ -> None

let decode_signed ~decode s = decode_signed_raw ~decode s
