module Bgp = Pvr_bgp
module C = Pvr_crypto

type neighbor_disclosure = {
  nd_index : int;
  nd_opening : C.Commitment.opening;
}

type beneficiary_disclosure = {
  bd_openings : (int * C.Commitment.opening) list;
  bd_export : Wire.export Wire.signed option;
}

(* Everything [valid_input] checks except the signature. *)
let valid_input_structural ~prover ~epoch ~prefix
    (ann : Wire.announce Wire.signed) =
  Bgp.Asn.equal ann.Wire.payload.Wire.ann_to prover
  && ann.Wire.payload.Wire.ann_epoch = epoch
  && Bgp.Prefix.equal ann.Wire.payload.Wire.ann_route.Bgp.Route.prefix prefix
  &&
  match ann.Wire.payload.Wire.ann_route.Bgp.Route.as_path with
  | first :: _ -> Bgp.Asn.equal first ann.Wire.signer
  | [] -> false

let valid_input keyring ~prover ~epoch ~prefix (ann : Wire.announce Wire.signed)
    =
  Wire.verify keyring ~encode:Wire.encode_announce ann
  && valid_input_structural ~prover ~epoch ~prefix ann

(* Batch form: one verdict per announce, signature checks amortized through
   {!Wire.verify_batch} (duplicate announces — gossip re-delivery, repeated
   inputs — cost one verification).  Agrees with per-item {!valid_input}. *)
let valid_inputs keyring ~prover ~epoch ~prefix anns =
  let sigs =
    Wire.verify_batch keyring
      (List.map (Wire.check ~encode:Wire.encode_announce) anns)
  in
  List.map2
    (fun ann ok -> ok && valid_input_structural ~prover ~epoch ~prefix ann)
    anns sigs

let opening_bit_at (commit : Wire.commit Wire.signed) ~index opening =
  let commitments = commit.Wire.payload.Wire.cmt_commitments in
  if index < 1 || index > List.length commitments then None
  else begin
    let c = C.Commitment.of_raw (List.nth commitments (index - 1)) in
    if C.Commitment.verify c opening then C.Commitment.opening_bit opening
    else None
  end

let check_export_provenance keyring ~commit ~beneficiary
    (export : Wire.export Wire.signed) =
  let bad () = Error (Evidence.Bad_provenance { export }) in
  let cp = commit.Wire.payload in
  let ep = export.Wire.payload in
  (* Both signatures (the export and its nested provenance announce) go
     through one batch call: on the honest path both are needed anyway,
     and the batch layer dedups statements repeated across the dirty set. *)
  let export_sig, ann_sig =
    match ep.Wire.exp_provenance with
    | Some ann -> begin
        match
          Wire.verify_batch keyring
            [
              Wire.check ~encode:Wire.encode_export export;
              Wire.check ~encode:Wire.encode_announce ann;
            ]
        with
        | [ e; a ] -> (e, a)
        | _ -> (false, false)
      end
    | None -> (Wire.verify keyring ~encode:Wire.encode_export export, false)
  in
  if not export_sig then bad ()
  else if not (Bgp.Asn.equal export.Wire.signer commit.Wire.signer) then bad ()
  else if ep.Wire.exp_epoch <> cp.Wire.cmt_epoch then bad ()
  else if not (Bgp.Asn.equal ep.Wire.exp_to beneficiary) then bad ()
  else if
    not (Bgp.Prefix.equal ep.Wire.exp_route.Bgp.Route.prefix cp.Wire.cmt_prefix)
  then bad ()
  else begin
    match ep.Wire.exp_provenance with
    | None -> bad ()
    | Some ann ->
        if
          ann_sig
          && valid_input_structural ~prover:commit.Wire.signer
               ~epoch:cp.Wire.cmt_epoch ~prefix:cp.Wire.cmt_prefix ann
          && Bgp.Route.equal ann.Wire.payload.Wire.ann_route ep.Wire.exp_route
        then Ok ann
        else bad ()
  end
