(** Signed protocol messages.

    Everything a PVR participant may later have to show a third party is a
    [signed] statement with an injective byte encoding; signatures are RSA
    over SHA-256 ({!Pvr_crypto.Rsa}).  Epochs number the verification
    rounds: commitments from different epochs never mix. *)

module Bgp = Pvr_bgp

type epoch = int

type 'a signed = private { payload : 'a; signer : Bgp.Asn.t; signature : string }

val sign :
  Keyring.t -> as_:Bgp.Asn.t -> encode:('a -> string) -> 'a -> 'a signed
(** Sign a payload with the AS's key from the keyring. *)

val sign_with :
  Pvr_crypto.Rsa.private_key -> as_:Bgp.Asn.t -> encode:('a -> string) -> 'a -> 'a signed
(** Sign with an explicit key — used by the forgery adversary, whose key
    does {e not} match its claimed identity. *)

val verify : Keyring.t -> encode:('a -> string) -> 'a signed -> bool
(** Check the signature against the signer's public key in the keyring.
    Returns [false] (never raises) for unknown signers. *)

type check
(** One member of a {!verify_batch} call, payload type packed away so a
    batch can mix statement kinds. *)

val check : encode:('a -> string) -> 'a signed -> check

val verify_batch : Keyring.t -> check list -> bool list
(** One verdict per check, in order; agrees with per-item {!verify}
    (unknown signers are [false]).  Same-signer groups are screened with a
    single exponentiation and duplicate statements are verified once
    ({!Pvr_crypto.Rsa.verify_batch}), which is what amortizes dirty-set
    and gossip verification. *)

(** {2 Statements} *)

type announce = {
  ann_epoch : epoch;
  ann_to : Bgp.Asn.t;      (** the AS being given the route (A) *)
  ann_route : Bgp.Route.t;
}
(** N_i's signed route announcement to A ("we can sign all the routing
    announcements", §3.2). *)

type commit = {
  cmt_epoch : epoch;
  cmt_prefix : Bgp.Prefix.t;
  cmt_scheme : string;  (** ["exists"], ["min"] or ["graph"] *)
  cmt_commitments : string list;
      (** the published digests: [c] (§3.2), [c_1..c_k] (§3.3), or the
          vertex-MHT root (§3.6) *)
}
(** A's commitment message, broadcast to all neighbors and gossiped. *)

type export = {
  exp_epoch : epoch;
  exp_to : Bgp.Asn.t;     (** the beneficiary (B) *)
  exp_route : Bgp.Route.t;
  exp_provenance : announce signed option;
      (** the original signed announcement of the chosen input route, which
          B uses for §3.2 condition 1 *)
}
(** A's route export to B. *)

val encode_announce : announce -> string
val encode_commit : commit -> string
val encode_export : export -> string

val encode_signed : encode:('a -> string) -> 'a signed -> string
(** Encoding of a signed statement including its signature (used when a
    signed statement is nested inside another or inside evidence). *)

val equal_commit : commit signed -> commit signed -> bool
(** Same signer, same payload bytes, same signature. *)

(** {2 Transport decoding}

    [encode_signed] above is the transport format; these parse it back.
    Decoded values are {e unverified} until {!verify} is run on them —
    decoding never checks signatures, and malformed input yields [None],
    never an exception. *)

val decode_announce : string -> announce option
val decode_commit : string -> commit option
val decode_export : string -> export option

val decode_signed :
  decode:(string -> 'a option) -> string -> 'a signed option
(** Inverse of {!encode_signed}. *)
