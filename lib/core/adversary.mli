(** Byzantine prover behaviours (§3's threat model: "an unknown subset of
    the networks is Byzantine and can behave arbitrarily").

    Each behaviour corrupts one aspect of the minimum-operator protocol run;
    experiment E8 injects each into a Figure-1 topology and records which
    neighbor detects it, what evidence is produced, and the {!Judge}'s
    verdict.  {!expected_detectors} documents the intended detection
    surface, which the test suite asserts. *)

type behaviour =
  | Honest
  | Export_nonminimal
      (** bits committed honestly, but a longest (not shortest) input is
          exported — B detects via {!Evidence.Nonminimal_export} *)
  | False_bits
      (** bits claim the shortest input is the exported (long) one — only
          the providers with shorter routes can detect ({!Evidence.False_bit}) *)
  | Equivocate
      (** different commitments to different neighbors — uncovered by
          gossip ({!Evidence.Equivocation}) *)
  | Suppress_export
      (** commitments and provider disclosures are honest, but nothing is
          exported to B — B raises {!Evidence.Missing_export_claim}; the
          adversary stonewalls the judge *)
  | Refuse_disclosure
      (** one providing neighbor receives no opening —
          {!Evidence.Missing_disclosure_claim} *)
  | Forge_provenance
      (** exports a fabricated route with a provenance announcement whose
          signature cannot verify — {!Evidence.Bad_provenance} *)

val all : behaviour list
val to_string : behaviour -> string

type min_run = {
  commit_for : Pvr_bgp.Asn.t -> Wire.commit Wire.signed;
      (** per-recipient commitment (differs only under [Equivocate]) *)
  neighbor_disclosures :
    (Pvr_bgp.Asn.t * Proto_common.neighbor_disclosure option) list;
      (** [None] = the adversary withheld the opening *)
  beneficiary_disclosure : Proto_common.beneficiary_disclosure;
  respond : accused:Pvr_bgp.Asn.t -> Judge.challenge -> Judge.response;
      (** how this prover answers a judge *)
}

val run_min :
  behaviour ->
  ?max_path_len:int ->
  ?comply:bool ->
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  prover:Pvr_bgp.Asn.t ->
  beneficiary:Pvr_bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Pvr_bgp.Prefix.t ->
  inputs:Wire.announce Wire.signed list ->
  min_run
(** Run the prover side of the §3.3 protocol under the given behaviour.
    Requires at least one valid input for the misbehaving variants to have
    something to corrupt.  [comply] (default [false]) makes the stonewalling
    variants ([Suppress_export], [Refuse_disclosure]) answer the judge
    honestly when challenged: the omission is still detected and evidence
    raised, but the challenge exonerates — the "lost messages never convict"
    surface a {!Timing_probe} strategy probes. *)

type detector = Beneficiary | Provider of Pvr_bgp.Asn.t | Gossip

val expected_detectors :
  behaviour -> inputs:(Pvr_bgp.Asn.t * int) list -> detector list
(** Who must detect the misbehaviour, given the providing neighbors and
    their route lengths (empty for [Honest]). *)

(** {2 Strategy zoo}

    A {!strategy} lifts the single-round behaviours into seeded,
    deterministic whole-topology policies, pluggable into the engine the way
    {!Pvr.Runner.fault_profile}s already are: the engine asks
    {!plan_round} what each (prover, prefix) vertex does at each wire
    epoch.  Plans are pure functions of (seed, vertex, epoch) — never of
    scheduling, sharding or caching. *)

type strategy =
  | Sweep of behaviour  (** every prover runs [behaviour] every round *)
  | Coalition of { size : int; behaviour : behaviour }
      (** like [Sweep], and the first [size] providers (by ASN) of each
          vertex pool their disclosed bits for the leakage audit *)
  | Cross_shard of { shards : int; target : int }
      (** equivocate exactly on the vertices whose seeded hash lands in
          shard [target] of [shards] — a fixed cross-cutting subset of the
          engine's own sharding *)
  | Adaptive_low_value of { cheat : behaviour }
      (** run [cheat] only on low-value /24-tier prefixes (the tiered
          address plan of {!Pvr_bgp.Topology.tiered_prefixes}), honest on
          /8 and /16 *)
  | Timing_probe of { period : int }
      (** stonewall ([Suppress_export] + [comply]) on a seeded 1-in-[period]
          subset of (vertex, epoch) pairs, answering the judge honestly when
          challenged — probes challenge timing without risking conviction *)

type round_plan = {
  rp_behaviour : behaviour;
  rp_comply : bool;  (** answer judge challenges honestly *)
  rp_coalition : int;  (** providers pooling views in the leakage audit *)
}

val all_strategies : strategy list
(** One canonical instance per family — what [pvr adversary --strategy all]
    and the E14 matrix iterate. *)

val strategy_to_string : strategy -> string

val strategy_of_string : string -> strategy option
(** Canonical names (["honest"], ["coalition-false-bits"],
    ["cross-shard-equivocate"], ["adaptive-low-value"], ["timing-probe"]),
    plus ["sweep-<behaviour>"] / ["coalition-<behaviour>"] / bare behaviour
    names. *)

val plan_round :
  strategy ->
  seed:string ->
  prover:Pvr_bgp.Asn.t ->
  prefix:Pvr_bgp.Prefix.t ->
  epoch:int ->
  round_plan
(** Deterministic: equal arguments give equal plans.  Increments
    ["adversary.plans"] and, for non-honest plans, ["adversary.cheats"] or
    ["adversary.stonewalls"]. *)
