module Bgp = Pvr_bgp
module C = Pvr_crypto
module Obs = Pvr_obs

(* Tally keys: every round counts its protocol messages and the size of the
   largest commitment message through the obs subsystem.  The tally is
   always live (the report is built from it); [Obs.Tally.publish] mirrors
   the totals into the global "runner.*" counters when metrics are on. *)
let k_messages = "runner.messages"
let k_commit_bytes = "runner.commit_bytes"

let obs_rounds = Obs.counter "runner.rounds"

type report = {
  raised : (Adversary.detector * Evidence.t) list;
  judged : (Adversary.detector * Evidence.t * Judge.verdict) list;
  detected : bool;
  convicted : bool;
  exonerated : bool;
  messages : int;
  commit_bytes : int;
}

let announce_of_route keyring ~provider ~prover ~epoch route =
  Wire.sign keyring ~as_:provider ~encode:Wire.encode_announce
    { Wire.ann_epoch = epoch; ann_to = prover; ann_route = route }

let finish keyring ~respond raised ~tally =
  Obs.incr obs_rounds;
  Obs.Tally.publish tally;
  let judged =
    List.map
      (fun (who, e) -> (who, e, Judge.evaluate keyring ~respond e))
      raised
  in
  {
    raised;
    judged;
    detected = raised <> [];
    convicted = List.exists (fun (_, _, v) -> v = Judge.Guilty) judged;
    exonerated = List.exists (fun (_, _, v) -> v = Judge.Exonerated) judged;
    messages = Obs.Tally.get tally k_messages;
    commit_bytes = Obs.Tally.get tally k_commit_bytes;
  }

let min_round ?(gossip = `Clique) ?max_path_len behaviour rng keyring ~prover
    ~beneficiary ~epoch ~prefix ~routes =
  Obs.with_span "runner.min_round" @@ fun () ->
  let tally = Obs.Tally.create () in
  let announces =
    List.map
      (fun (provider, route) ->
        (provider, announce_of_route keyring ~provider ~prover ~epoch route))
      routes
  in
  let inputs = List.map snd announces in
  let run =
    Adversary.run_min behaviour ?max_path_len rng keyring ~prover ~beneficiary
      ~epoch ~prefix ~inputs
  in
  let providers = List.map fst announces in
  let participants = providers @ [ beneficiary ] in
  Obs.Tally.add tally k_messages (List.length announces);
  (* Commitment broadcast + gossip. *)
  let g = Gossip.create keyring in
  let raised = ref [] in
  List.iter
    (fun who ->
      let commit = run.Adversary.commit_for who in
      Obs.Tally.incr tally k_messages;
      Obs.Tally.max_ tally k_commit_bytes
        (String.length (Wire.encode_commit commit.Wire.payload));
      match Gossip.receive g ~holder:who commit with
      | Some e -> raised := (Adversary.Gossip, e) :: !raised
      | None -> ())
    participants;
  let edges =
    match gossip with
    | `Clique -> Gossip.clique_edges participants
    | `Ring -> Gossip.ring_edges participants
    | `None -> []
  in
  Obs.Tally.add tally k_messages (List.length edges);
  List.iter
    (fun e -> raised := (Adversary.Gossip, e) :: !raised)
    (Gossip.run_round g ~edges);
  (* Provider checks. *)
  List.iter
    (fun (provider, ann) ->
      match
        Gossip.view g ~holder:provider ~signer:prover ~epoch ~prefix
          ~scheme:Proto_min.scheme
      with
      | None -> () (* no commitment at all: nothing to check against *)
      | Some commit ->
          let disclosure =
            Option.join (List.assoc_opt provider run.Adversary.neighbor_disclosures)
          in
          if disclosure <> None then Obs.Tally.incr tally k_messages;
          let evs =
            Proto_min.check_neighbor keyring ~me:provider ~my_announce:ann
              ~commit ~disclosure
          in
          List.iter
            (fun e -> raised := (Adversary.Provider provider, e) :: !raised)
            evs)
    announces;
  (* Beneficiary checks. *)
  (match
     Gossip.view g ~holder:beneficiary ~signer:prover ~epoch ~prefix
       ~scheme:Proto_min.scheme
   with
  | None -> ()
  | Some commit ->
      Obs.Tally.incr tally k_messages;
      let evs =
        Proto_min.check_beneficiary keyring ~me:beneficiary ~commit
          ~disclosure:run.Adversary.beneficiary_disclosure
      in
      List.iter
        (fun e -> raised := (Adversary.Beneficiary, e) :: !raised)
        evs);
  finish keyring ~respond:run.Adversary.respond (List.rev !raised) ~tally

let graph_round ?max_path_len rng keyring ~prover ~beneficiary ~epoch ~prefix
    ~promise ~routes =
  Obs.with_span "runner.graph_round" @@ fun () ->
  let tally = Obs.Tally.create () in
  let announces =
    List.map
      (fun (provider, route) ->
        (provider, announce_of_route keyring ~provider ~prover ~epoch route))
      routes
  in
  let inputs = List.map snd announces in
  let providers = List.map fst announces in
  let rfg =
    Pvr_rfg.Promise.reference_rfg promise ~beneficiary ~neighbors:providers
  in
  let alpha =
    Access_control.for_promise promise ~beneficiary ~neighbors:providers
  in
  let ps =
    Proto_graph.prove ?max_path_len rng keyring ~prover ~epoch ~prefix ~rfg
      ~inputs
  in
  let commit = Proto_graph.commit_message ps in
  let export = Proto_graph.exported ps ~beneficiary in
  Obs.Tally.add tally k_messages (List.length announces + 1);
  Obs.Tally.max_ tally k_commit_bytes
    (String.length (Wire.encode_commit commit.Wire.payload));
  let raised = ref [] in
  (* Gossip of the single root commitment. *)
  let g = Gossip.create keyring in
  List.iter
    (fun who ->
      match Gossip.receive g ~holder:who commit with
      | Some e -> raised := (Adversary.Gossip, e) :: !raised
      | None -> ())
    (providers @ [ beneficiary ]);
  List.iter
    (fun e -> raised := (Adversary.Gossip, e) :: !raised)
    (Gossip.run_round g
       ~edges:(Gossip.clique_edges (providers @ [ beneficiary ])));
  (* Provider checks. *)
  List.iter
    (fun (provider, ann) ->
      let len = Bgp.Route.path_length ann.Wire.payload.Wire.ann_route in
      let ds =
        Proto_graph.disclose ~role:(`Provider len) ps ~alpha ~viewer:provider
      in
      Obs.Tally.incr tally k_messages;
      let evs =
        Proto_graph.check_provider keyring ~me:provider ~my_announce:ann
          ~commit ~disclosures:ds
      in
      List.iter
        (fun e -> raised := (Adversary.Provider provider, e) :: !raised)
        evs)
    announces;
  (* Beneficiary checks. *)
  let ds_b = Proto_graph.disclose ~role:`Beneficiary ps ~alpha ~viewer:beneficiary in
  Obs.Tally.incr tally k_messages;
  let evs =
    Proto_graph.check_beneficiary keyring ~me:beneficiary ~commit
      ~disclosures:ds_b ~export
  in
  List.iter (fun e -> raised := (Adversary.Beneficiary, e) :: !raised) evs;
  finish keyring
    ~respond:(fun ~accused:_ _ -> Judge.No_response)
    (List.rev !raised) ~tally
