module Bgp = Pvr_bgp
module C = Pvr_crypto
module Obs = Pvr_obs

(* Tally keys: every round counts its protocol messages and the size of the
   largest commitment message through the obs subsystem.  The tally is
   always live (the report is built from it); [Obs.Tally.publish] mirrors
   the totals into the global "runner.*" counters when metrics are on. *)
let k_messages = "runner.messages"
let k_commit_bytes = "runner.commit_bytes"

let obs_rounds = Obs.counter "runner.rounds"

type report = {
  raised : (Adversary.detector * Evidence.t) list;
  judged : (Adversary.detector * Evidence.t * Judge.verdict) list;
  detected : bool;
  convicted : bool;
  exonerated : bool;
  messages : int;
  commit_bytes : int;
}

let announce_of_route keyring ~provider ~prover ~epoch route =
  Wire.sign keyring ~as_:provider ~encode:Wire.encode_announce
    { Wire.ann_epoch = epoch; ann_to = prover; ann_route = route }

let finish ?ledger keyring ~respond raised ~tally =
  Obs.incr obs_rounds;
  Obs.Tally.publish tally;
  let judged =
    List.map
      (fun (who, e) -> (who, e, Judge.evaluate ?ledger keyring ~respond e))
      raised
  in
  {
    raised;
    judged;
    detected = raised <> [];
    convicted = List.exists (fun (_, _, v) -> v = Judge.Guilty) judged;
    exonerated = List.exists (fun (_, _, v) -> v = Judge.Exonerated) judged;
    messages = Obs.Tally.get tally k_messages;
    commit_bytes = Obs.Tally.get tally k_commit_bytes;
  }

(* ---- The simulated transport ---------------------------------------------

   Every §3.3 wire message of a round travels as a [net_msg] through a
   {!Pvr_net.Reliable} stop-and-wait channel; gossip digests travel over a
   separate (unacknowledged) channel.  With [perfect_faults] this engine is
   behaviourally identical to the former direct-call round; under a faulty
   profile messages may be lost past the retry budget, in which case the
   waiting party raises {!Evidence.Timeout} around the omission claim it
   would otherwise have proven directly. *)

type net_msg =
  | Net_announce of Wire.announce Wire.signed
  | Net_commit of Wire.commit Wire.signed
  | Net_neighbor_disclosure of Proto_common.neighbor_disclosure
  | Net_beneficiary_disclosure of Proto_common.beneficiary_disclosure
  | Net_disclosure_request

type fault_profile = {
  fp_policy : Pvr_net.policy;
  fp_links : ((Bgp.Asn.t * Bgp.Asn.t) * Pvr_net.policy) list;
  fp_retry_interval : int;
  fp_retry_budget : int;
  fp_gossip_rounds : int;
  fp_max_ticks : int;
}

let perfect_faults =
  {
    fp_policy = Pvr_net.perfect;
    fp_links = [];
    fp_retry_interval = 2;
    fp_retry_budget = 3;
    fp_gossip_rounds = 1;
    fp_max_ticks = 400;
  }

type net_report = {
  base : report;
  delivered_announces : Bgp.Asn.t list;
  acked_announces : Bgp.Asn.t list;
  commit_holders : Bgp.Asn.t list;
  direct_commits : Bgp.Asn.t list;
  disclosed_to : Bgp.Asn.t list;
  beneficiary_disclosed : bool;
  net_sends : int;
  net_drops : int;
  net_retries : int;
  net_timeouts : int;
  gossip_sends : int;
  gossip_drops : int;
  ticks : int;
}

let min_round_faulty ?(gossip = `Clique) ?max_path_len
    ?(faults = perfect_faults) ?ledger ?comply behaviour rng keyring ~prover
    ~beneficiary ~epoch ~prefix ~routes =
  Obs.with_span "runner.min_round" @@ fun () ->
  let tally = Obs.Tally.create () in
  (* Derive the transport generators before the adversary consumes [rng],
     so a seed's fault schedule is independent of behaviour-specific
     draws. *)
  let net_rng = C.Drbg.split rng "net" in
  let gossip_rng = C.Drbg.split rng "gossip-net" in
  let net =
    Pvr_net.create ~policy:faults.fp_policy ~links:faults.fp_links
      ~rng:net_rng ()
  in
  let conn =
    Pvr_net.Reliable.create ~interval:faults.fp_retry_interval
      ~budget:faults.fp_retry_budget net
  in
  let gnet =
    Pvr_net.create ~policy:faults.fp_policy ~links:faults.fp_links
      ~rng:gossip_rng ()
  in
  let announces =
    List.map
      (fun (provider, route) ->
        (provider, announce_of_route keyring ~provider ~prover ~epoch route))
      routes
  in
  let providers = List.map fst announces in
  let participants = providers @ [ beneficiary ] in
  let g = Gossip.create keyring in
  let raised = ref [] in
  (* Receiver state: first-wins, so duplicate deliveries are idempotent. *)
  let arrived = ref [] in
  let neighbor_got : (Bgp.Asn.t, Proto_common.neighbor_disclosure) Hashtbl.t =
    Hashtbl.create 8
  in
  let direct_commit : (Bgp.Asn.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let bene_got = ref None in
  let run_ref = ref None in
  let handler ~src ~dst msg =
    match msg with
    | Net_announce ann when Bgp.Asn.equal dst prover ->
        if
          not
            (List.exists
               (fun (a : Wire.announce Wire.signed) ->
                 Bgp.Asn.equal a.Wire.signer ann.Wire.signer)
               !arrived)
        then arrived := !arrived @ [ ann ]
    | Net_commit commit -> begin
        Hashtbl.replace direct_commit dst ();
        match Gossip.receive ?ledger g ~holder:dst commit with
        | Some e -> raised := (Adversary.Gossip, e) :: !raised
        | None -> ()
      end
    | Net_neighbor_disclosure nd when not (Bgp.Asn.equal dst prover) ->
        if not (Hashtbl.mem neighbor_got dst) then begin
          Hashtbl.replace neighbor_got dst nd;
          (* Account the one bit this opening discloses to the provider. *)
          Option.iter
            (fun l ->
              match !run_ref with
              | None -> Leakage.Ledger.record_opaque l ~viewer:dst
              | Some run -> begin
                  let commit = run.Adversary.commit_for dst in
                  match
                    Proto_common.opening_bit_at commit
                      ~index:nd.Proto_common.nd_index
                      nd.Proto_common.nd_opening
                  with
                  | Some value ->
                      Leakage.Ledger.record l ~viewer:dst
                        (Leakage.Knows_bit
                           { index = nd.Proto_common.nd_index; value })
                  | None -> Leakage.Ledger.record_opaque l ~viewer:dst
                end)
            ledger
        end
    | Net_beneficiary_disclosure bd when Bgp.Asn.equal dst beneficiary ->
        if !bene_got = None then begin
          bene_got := Some bd;
          Option.iter
            (fun l ->
              (match !run_ref with
              | None -> ()
              | Some run ->
                  let commit = run.Adversary.commit_for beneficiary in
                  List.iter
                    (fun (index, o) ->
                      match Proto_common.opening_bit_at commit ~index o with
                      | Some value ->
                          Leakage.Ledger.record l ~viewer:beneficiary
                            (Leakage.Knows_bit { index; value })
                      | None ->
                          Leakage.Ledger.record_opaque l ~viewer:beneficiary)
                    bd.Proto_common.bd_openings);
              match bd.Proto_common.bd_export with
              | Some e ->
                  let route = e.Wire.payload.Wire.exp_route in
                  Leakage.Ledger.record l ~viewer:beneficiary
                    (Leakage.Knows_route
                       { provider = route.Bgp.Route.next_hop; route })
              | None -> ())
            ledger
        end
    | Net_disclosure_request when Bgp.Asn.equal dst prover -> begin
        (* The prover answers re-requests according to its behaviour: a
           withheld opening stays withheld (stonewalling), anything it was
           willing to send it sends again. *)
        match !run_ref with
        | None -> ()
        | Some run ->
            if Bgp.Asn.equal src beneficiary then
              Pvr_net.Reliable.send conn ~src:prover ~dst:beneficiary
                (Net_beneficiary_disclosure
                   run.Adversary.beneficiary_disclosure)
            else begin
              match
                List.assoc_opt src run.Adversary.neighbor_disclosures
              with
              | Some (Some nd) ->
                  Pvr_net.Reliable.send conn ~src:prover ~dst:src
                    (Net_neighbor_disclosure nd)
              | Some None | None -> ()
            end
      end
    | _ -> ()
  in
  let quiesce () =
    Pvr_net.Reliable.run ~max_ticks:faults.fp_max_ticks conn ~handler ()
  in
  (* Phase 1: providers announce their routes to A. *)
  List.iter
    (fun (provider, ann) ->
      Pvr_net.Reliable.send conn ~src:provider ~dst:prover (Net_announce ann))
    announces;
  let (_ : int) = quiesce () in
  let inputs = !arrived in
  let run =
    Adversary.run_min behaviour ?max_path_len ?comply rng keyring ~prover
      ~beneficiary ~epoch ~prefix ~inputs
  in
  run_ref := Some run;
  (* Phase 2: A broadcasts its (per-recipient) commitment. *)
  List.iter
    (fun who ->
      let commit = run.Adversary.commit_for who in
      Obs.Tally.max_ tally k_commit_bytes
        (String.length (Wire.encode_commit commit.Wire.payload));
      Pvr_net.Reliable.send conn ~src:prover ~dst:who (Net_commit commit))
    participants;
  let (_ : int) = quiesce () in
  (* Phase 3: gossip rounds over their own lossy channel. *)
  let edges =
    match gossip with
    | `Clique -> Gossip.clique_edges participants
    | `Ring -> Gossip.ring_edges participants
    | `None -> []
  in
  for _ = 1 to faults.fp_gossip_rounds do
    List.iter
      (fun e -> raised := (Adversary.Gossip, e) :: !raised)
      (Gossip.run_round ~net:gnet ?ledger g ~edges)
  done;
  (* Phase 4: A pushes disclosures to everyone it is willing to serve. *)
  List.iter
    (fun (provider, nd) ->
      match nd with
      | Some nd ->
          Pvr_net.Reliable.send conn ~src:prover ~dst:provider
            (Net_neighbor_disclosure nd)
      | None -> ())
    run.Adversary.neighbor_disclosures;
  Pvr_net.Reliable.send conn ~src:prover ~dst:beneficiary
    (Net_beneficiary_disclosure run.Adversary.beneficiary_disclosure);
  let (_ : int) = quiesce () in
  (* Phase 5: parties still owed a disclosure chase it with bounded
     re-requests before accusing. *)
  let commit_view who =
    Gossip.view g ~holder:who ~signer:prover ~epoch ~prefix
      ~scheme:Proto_min.scheme
  in
  let announce_acked provider ann =
    Pvr_net.Reliable.acked conn ~src:provider ~dst:prover (Net_announce ann)
  in
  let rec chase attempt =
    if attempt > faults.fp_retry_budget then ()
    else begin
      let want_nd =
        List.filter
          (fun (p, ann) ->
            commit_view p <> None
            && announce_acked p ann
            && not (Hashtbl.mem neighbor_got p))
          announces
      in
      let want_bd = commit_view beneficiary <> None && !bene_got = None in
      if want_nd = [] && not want_bd then ()
      else begin
        List.iter
          (fun (p, _) ->
            Pvr_net.Reliable.send conn ~src:p ~dst:prover
              Net_disclosure_request)
          want_nd;
        if want_bd then
          Pvr_net.Reliable.send conn ~src:beneficiary ~dst:prover
            Net_disclosure_request;
        let (_ : int) = quiesce () in
        chase (attempt + 1)
      end
    end
  in
  chase 1;
  (* Provider checks.  A provider only accuses over silence when its own
     announce was acknowledged — otherwise, for all it knows, A never
     received the route and owes it nothing (Accuracy). *)
  List.iter
    (fun (provider, ann) ->
      match commit_view provider with
      | None -> () (* no commitment at all: nothing to check against *)
      | Some commit -> begin
          match Hashtbl.find_opt neighbor_got provider with
          | Some nd ->
              let evs =
                Proto_min.check_neighbor keyring ~me:provider ~my_announce:ann
                  ~commit ~disclosure:(Some nd)
              in
              List.iter
                (fun e -> raised := (Adversary.Provider provider, e) :: !raised)
                evs
          | None ->
              if announce_acked provider ann then
                raised :=
                  ( Adversary.Provider provider,
                    Evidence.Timeout
                      {
                        claim =
                          Evidence.Missing_disclosure_claim
                            { commit; announce = ann; claimant = provider };
                        retries = faults.fp_retry_budget;
                      } )
                  :: !raised
        end)
    announces;
  (* Beneficiary checks. *)
  (match commit_view beneficiary with
  | None -> ()
  | Some commit -> begin
      match !bene_got with
      | Some bd ->
          let evs =
            Proto_min.check_beneficiary keyring ~me:beneficiary ~commit
              ~disclosure:bd
          in
          List.iter
            (fun e -> raised := (Adversary.Beneficiary, e) :: !raised)
            evs
      | None ->
          (* Total silence: B holds a commitment but never received the
             opening set.  The judge settles whether anything was owed. *)
          raised :=
            ( Adversary.Beneficiary,
              Evidence.Timeout
                {
                  claim =
                    Evidence.Missing_export_claim
                      { commit; openings = []; claimant = beneficiary };
                  retries = faults.fp_retry_budget;
                } )
            :: !raised
    end);
  (* [messages] counts protocol payload transmissions, including
     retransmissions: every reliable data frame plus every gossip digest. *)
  Obs.Tally.add tally k_messages
    (Pvr_net.Reliable.data_sends conn + (Pvr_net.stats gnet).Pvr_net.sends);
  let base =
    finish ?ledger keyring ~respond:run.Adversary.respond (List.rev !raised)
      ~tally
  in
  let st = Pvr_net.stats net and gst = Pvr_net.stats gnet in
  {
    base;
    delivered_announces =
      List.map (fun (a : Wire.announce Wire.signed) -> a.Wire.signer) inputs;
    acked_announces =
      List.filter_map
        (fun (p, ann) -> if announce_acked p ann then Some p else None)
        announces;
    commit_holders = List.filter (fun who -> commit_view who <> None) participants;
    direct_commits = List.filter (Hashtbl.mem direct_commit) participants;
    disclosed_to = List.filter (Hashtbl.mem neighbor_got) providers;
    beneficiary_disclosed = !bene_got <> None;
    net_sends = st.Pvr_net.sends;
    net_drops = st.Pvr_net.drops + st.Pvr_net.partition_drops;
    net_retries = Pvr_net.Reliable.retries conn;
    net_timeouts = Pvr_net.Reliable.failures conn;
    gossip_sends = gst.Pvr_net.sends;
    gossip_drops = gst.Pvr_net.drops + gst.Pvr_net.partition_drops;
    ticks = Pvr_net.now net + Pvr_net.now gnet;
  }

let min_round ?gossip ?max_path_len behaviour rng keyring ~prover ~beneficiary
    ~epoch ~prefix ~routes =
  (min_round_faulty ?gossip ?max_path_len ~faults:perfect_faults behaviour rng
     keyring ~prover ~beneficiary ~epoch ~prefix ~routes)
    .base

(* Whether the fault schedule left the behaviour's witnessing messages
   intact, i.e. whether §2.3 Detection must have fired this round.  Each
   detector listed by {!Adversary.expected_detectors} (computed over the
   inputs that actually reached A) is checked against what it needed to
   see: its commitment, its disclosure, an acknowledged announce, or an
   unbroken gossip exchange. *)
let detection_expected behaviour ~beneficiary ~routes (r : net_report) =
  let mem who = List.exists (Bgp.Asn.equal who) in
  let inputs =
    List.filter_map
      (fun p ->
        Option.map
          (fun route -> (p, Bgp.Route.path_length route))
          (List.assoc_opt p routes))
      r.delivered_announces
  in
  let dets = Adversary.expected_detectors behaviour ~inputs in
  let witnessed = function
    | Adversary.Beneficiary ->
        mem beneficiary r.commit_holders
        && (behaviour = Adversary.Suppress_export
            (* total silence convicts the stonewaller just as well *)
           || r.beneficiary_disclosed)
    | Adversary.Provider p ->
        mem p r.commit_holders
        &&
        if behaviour = Adversary.Refuse_disclosure then
          mem p r.acked_announces
        else mem p r.disclosed_to
    | Adversary.Gossip ->
        (* Sufficient for a clique round: both halves of the split hold
           their commitment directly and no digest was lost, so the direct
           edge between them must surface the conflict. *)
        r.gossip_drops = 0
        && mem beneficiary r.direct_commits
        && List.exists (fun (p, _) -> mem p r.direct_commits) inputs
  in
  List.exists witnessed dets

let graph_round ?max_path_len rng keyring ~prover ~beneficiary ~epoch ~prefix
    ~promise ~routes =
  Obs.with_span "runner.graph_round" @@ fun () ->
  let tally = Obs.Tally.create () in
  let announces =
    List.map
      (fun (provider, route) ->
        (provider, announce_of_route keyring ~provider ~prover ~epoch route))
      routes
  in
  let inputs = List.map snd announces in
  let providers = List.map fst announces in
  let rfg =
    Pvr_rfg.Promise.reference_rfg promise ~beneficiary ~neighbors:providers
  in
  let alpha =
    Access_control.for_promise promise ~beneficiary ~neighbors:providers
  in
  let ps =
    Proto_graph.prove ?max_path_len rng keyring ~prover ~epoch ~prefix ~rfg
      ~inputs
  in
  let commit = Proto_graph.commit_message ps in
  let export = Proto_graph.exported ps ~beneficiary in
  Obs.Tally.add tally k_messages (List.length announces + 1);
  Obs.Tally.max_ tally k_commit_bytes
    (String.length (Wire.encode_commit commit.Wire.payload));
  let raised = ref [] in
  (* Broadcast + gossip of the single root commitment, over a perfect
     channel (graph rounds are not fault-injected yet). *)
  let g = Gossip.create keyring in
  let cnet = Pvr_net.create ~rng:(C.Drbg.of_int_seed 0) () in
  List.iter
    (fun who -> Pvr_net.send cnet ~src:prover ~dst:who [ commit ])
    (providers @ [ beneficiary ]);
  let (_ : int) =
    Pvr_net.run cnet
      ~handler:(fun ~src:_ ~dst digest ->
        List.iter
          (fun c ->
            match Gossip.receive g ~holder:dst c with
            | Some e -> raised := (Adversary.Gossip, e) :: !raised
            | None -> ())
          digest)
      ()
  in
  List.iter
    (fun e -> raised := (Adversary.Gossip, e) :: !raised)
    (Gossip.run_round ~net:cnet g
       ~edges:(Gossip.clique_edges (providers @ [ beneficiary ])));
  (* Provider checks. *)
  List.iter
    (fun (provider, ann) ->
      let len = Bgp.Route.path_length ann.Wire.payload.Wire.ann_route in
      let ds =
        Proto_graph.disclose ~role:(`Provider len) ps ~alpha ~viewer:provider
      in
      Obs.Tally.incr tally k_messages;
      let evs =
        Proto_graph.check_provider keyring ~me:provider ~my_announce:ann
          ~commit ~disclosures:ds
      in
      List.iter
        (fun e -> raised := (Adversary.Provider provider, e) :: !raised)
        evs)
    announces;
  (* Beneficiary checks. *)
  let ds_b = Proto_graph.disclose ~role:`Beneficiary ps ~alpha ~viewer:beneficiary in
  Obs.Tally.incr tally k_messages;
  let evs =
    Proto_graph.check_beneficiary keyring ~me:beneficiary ~commit
      ~disclosures:ds_b ~export
  in
  List.iter (fun e -> raised := (Adversary.Beneficiary, e) :: !raised) evs;
  finish keyring
    ~respond:(fun ~accused:_ _ -> Judge.No_response)
    (List.rev !raised) ~tally
