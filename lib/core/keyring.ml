module Bgp = Pvr_bgp
module C = Pvr_crypto

type t = {
  rng : C.Drbg.t;
  bits : int;
  mutable keys : C.Rsa.private_key Bgp.Asn.Map.t;
  pub_memo : (Bgp.Asn.t, C.Rsa.public_key) Hashtbl.t;
      (* Eager asn -> public key memo: [Wire.verify] resolves the signer's
         public key on every signature check, and a [Map.find_opt] walk per
         check is measurable on the engine's hot path.  Entries are added at
         key-generation time, so lookups never mutate and are safe from any
         domain. *)
}

let memo_hits = Pvr_obs.counter "keyring.pub.memo_hits"
let map_lookups = Pvr_obs.counter "keyring.pub.map_lookups"

let add_key t asn =
  if Bgp.Asn.Map.mem asn t.keys then
    invalid_arg ("Keyring: duplicate key for " ^ Bgp.Asn.to_string asn);
  let key = C.Rsa.generate t.rng ~bits:t.bits in
  t.keys <- Bgp.Asn.Map.add asn key t.keys;
  Hashtbl.replace t.pub_memo asn key.C.Rsa.pub

let create ?(bits = 1024) rng members =
  let t =
    {
      rng;
      bits;
      keys = Bgp.Asn.Map.empty;
      pub_memo = Hashtbl.create (max 16 (2 * List.length members));
    }
  in
  List.iter (add_key t) members;
  t

let add t asn =
  add_key t asn;
  t

let private_key t asn =
  match Bgp.Asn.Map.find_opt asn t.keys with
  | Some k -> k
  | None -> raise Not_found

let public_key t asn =
  match Hashtbl.find_opt t.pub_memo asn with
  | Some pub ->
      Pvr_obs.incr memo_hits;
      pub
  | None ->
      Pvr_obs.incr map_lookups;
      (private_key t asn).C.Rsa.pub

let members t = List.map fst (Bgp.Asn.Map.bindings t.keys)
