module Bgp = Pvr_bgp
module C = Pvr_crypto
open Proto_common

type prover_output = {
  commit : Wire.commit Wire.signed;
  neighbor_disclosures : (Bgp.Asn.t * neighbor_disclosure) list;
  beneficiary_disclosure : beneficiary_disclosure;
}

let scheme = "min"

let default_max_path_len = 32

let path_len (ann : Wire.announce Wire.signed) =
  Bgp.Route.path_length ann.Wire.payload.Wire.ann_route

let prove ?(max_path_len = default_max_path_len) rng keyring ~prover
    ~beneficiary ~epoch ~prefix ~inputs =
  Pvr_obs.with_span "proto_min.prove" @@ fun () ->
  let inputs =
    (* Input-signature checks are the per-round RSA bill; batch them. *)
    List.map2
      (fun ann ok -> (ann, ok))
      inputs
      (valid_inputs keyring ~prover ~epoch ~prefix inputs)
    |> List.filter_map (fun (ann, ok) ->
           if ok && path_len ann <= max_path_len then Some ann else None)
  in
  let lengths = List.map path_len inputs in
  let shortest = List.fold_left min max_int lengths in
  (* b_i = 1 iff some input has length <= i, i.e. iff shortest <= i. *)
  let bits = List.init max_path_len (fun i -> shortest <= i + 1) in
  let committed = List.map (C.Commitment.commit_bit rng) bits in
  let commit =
    Wire.sign keyring ~as_:prover ~encode:Wire.encode_commit
      {
        Wire.cmt_epoch = epoch;
        cmt_prefix = prefix;
        cmt_scheme = scheme;
        cmt_commitments =
          List.map (fun ((c : C.Commitment.commitment), _) -> (c :> string)) committed;
      }
  in
  let openings = List.map snd committed in
  let opening_at i = List.nth openings (i - 1) in
  let neighbor_disclosures =
    List.map
      (fun ann ->
        ( ann.Wire.signer,
          { nd_index = path_len ann; nd_opening = opening_at (path_len ann) } ))
      inputs
  in
  let winner =
    List.find_opt (fun ann -> path_len ann = shortest) inputs
  in
  let export =
    Option.map
      (fun (chosen : Wire.announce Wire.signed) ->
        Wire.sign keyring ~as_:prover ~encode:Wire.encode_export
          {
            Wire.exp_epoch = epoch;
            exp_to = beneficiary;
            exp_route = chosen.Wire.payload.Wire.ann_route;
            exp_provenance = Some chosen;
          })
      winner
  in
  {
    commit;
    neighbor_disclosures;
    beneficiary_disclosure =
      {
        bd_openings = List.mapi (fun i o -> (i + 1, o)) openings;
        bd_export = export;
      };
  }

let check_neighbor _keyring ~me ~my_announce ~commit ~disclosure =
  let missing =
    Evidence.Missing_disclosure_claim
      { commit; announce = my_announce; claimant = me }
  in
  let my_len =
    Bgp.Route.path_length my_announce.Wire.payload.Wire.ann_route
  in
  match disclosure with
  | None -> [ missing ]
  | Some { nd_index; nd_opening } ->
      if nd_index <> my_len then [ missing ]
      else begin
        match opening_bit_at commit ~index:nd_index nd_opening with
        | None -> [ missing ]
        | Some true -> []
        | Some false ->
            [
              Evidence.False_bit
                {
                  commit;
                  index = nd_index;
                  opening = nd_opening;
                  witness = my_announce;
                };
            ]
      end

let check_beneficiary keyring ~me ~commit ~disclosure =
  let k = List.length commit.Wire.payload.Wire.cmt_commitments in
  let claim_missing () =
    [
      Evidence.Missing_export_claim
        { commit; openings = disclosure.bd_openings; claimant = me };
    ]
  in
  (* Validate the openings: B expects one valid bit opening per index. *)
  let bits =
    List.filter_map
      (fun (i, o) ->
        match opening_bit_at commit ~index:i o with
        | Some b -> Some (i, b, o)
        | None -> None)
      disclosure.bd_openings
  in
  let indices = List.map (fun (i, _, _) -> i) bits in
  if List.sort_uniq Int.compare indices <> List.init k (fun i -> i + 1) then
    claim_missing ()
  else begin
    let bit_at i =
      let _, b, o = List.find (fun (j, _, _) -> j = i) bits in
      (b, o)
    in
    (* Monotonicity: find i < j with b_i = 1, b_j = 0. *)
    let monotonicity_violation =
      List.concat_map
        (fun (i, bi, oi) ->
          if not bi then []
          else
            List.filter_map
              (fun (j, bj, oj) ->
                if j > i && not bj then
                  Some
                    (Evidence.Non_monotonic_bits
                       {
                         commit;
                         set_index = i;
                         set_opening = oi;
                         unset_index = j;
                         unset_opening = oj;
                       })
                else None)
              bits)
        bits
    in
    match monotonicity_violation with
    | e :: _ -> [ e ] (* one self-contained proof is enough *)
    | [] -> begin
        let any_set = List.exists (fun (_, b, _) -> b) bits in
        match (any_set, disclosure.bd_export) with
        | false, None -> []
        | false, Some export -> begin
            match
              check_export_provenance keyring ~commit ~beneficiary:me export
            with
            | Ok _ ->
                [
                  Evidence.Unsupported_export
                    {
                      commit;
                      export;
                      openings = List.map (fun (i, _, o) -> (i, o)) bits;
                    };
                ]
            | Error e -> [ e ]
          end
        | true, None -> claim_missing ()
        | true, Some export -> begin
            match
              check_export_provenance keyring ~commit ~beneficiary:me export
            with
            | Error e -> [ e ]
            | Ok provenance -> begin
                let len =
                  Bgp.Route.path_length
                    export.Wire.payload.Wire.exp_route
                in
                if len > k then
                  (* The committed bit vector cannot even express this
                     length: treat as provenance abuse. *)
                  [ Evidence.Bad_provenance { export } ]
                else begin
                  (* Minimality: no bit below the exported length may be
                     set; the bit at the exported length must be set. *)
                  let shorter_set =
                    List.filter_map
                      (fun (i, b, o) ->
                        if i < len && b then
                          Some
                            (Evidence.Nonminimal_export
                               { commit; export; index = i; opening = o })
                        else None)
                      bits
                  in
                  match shorter_set with
                  | e :: _ -> [ e ]
                  | [] ->
                      let b_len, o_len = bit_at len in
                      if b_len then []
                      else
                        [
                          Evidence.False_bit
                            {
                              commit;
                              index = len;
                              opening = o_len;
                              witness = provenance;
                            };
                        ]
                end
              end
          end
      end
  end
