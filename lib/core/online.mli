(** Continuous verification: PVR attached to a running BGP simulation.

    The paper's deployment story is that verification runs alongside the
    routing protocol, one round per update ("such a task would have to be
    performed for every single BGP update", §3.1 — which is why cheap
    rounds matter).  This module drives that loop: after each batch of
    simulator events, {!epoch} takes network A's {e actual} Adj-RIB-In and
    its {e actual} export towards B out of the {!Pvr_bgp.Simulator}, wraps
    them in signed PVR messages, and runs the full §3.3 round.

    The PVR layer itself is faithful — it commits to the routes A really
    received and the route A really exported — so any corruption of A's
    decision process (e.g. a {!Pvr_bgp.Simulator.set_decision_override}
    Byzantine policy) surfaces as evidence in the next epoch, exactly like
    an {!Adversary.Export_nonminimal} prover. *)

module Bgp = Pvr_bgp

type t

val create :
  ?max_path_len:int ->
  ?gossip:[ `Clique | `Ring | `None ] ->
  ?net_policy:Pvr_net.policy ->
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  sim:Bgp.Simulator.t ->
  prover:Bgp.Asn.t ->
  beneficiary:Bgp.Asn.t ->
  providers:Bgp.Asn.t list ->
  t
(** Watch [prover]'s promise of shortest-path export (from [providers]) to
    [beneficiary].  All parties must be in the keyring.  Commitment
    delivery and gossip digests travel through a {!Pvr_net} channel under
    [net_policy] (default: perfect); its fault schedule is derived from
    the given generator at creation time, independently of the nonce
    stream. *)

val epoch : t -> prefix:Bgp.Prefix.t -> Runner.report
(** Run one verification round against the simulator's current state for
    the prefix.  Advances the epoch counter. *)

val current_epoch : t -> Wire.epoch

val run_epochs :
  t -> prefixes:Bgp.Prefix.t list -> (Bgp.Prefix.t * Runner.report) list
(** One round per prefix (each its own epoch). *)
