(** End-to-end verification rounds on the Figure-1 scenario.

    One round: providers sign announcements → the (possibly Byzantine)
    prover A commits, disclosing per §3.3 → neighbors gossip A's
    commitment → every party runs its checks → all raised evidence is
    taken to the {!Judge}, with A answering challenges according to its
    behaviour.  Experiment E8 sweeps this over behaviours and topologies;
    the test suite asserts the §2.3 properties on the reports. *)

module Bgp = Pvr_bgp

type report = {
  raised : (Adversary.detector * Evidence.t) list;
      (** evidence, tagged by the party that produced it *)
  judged : (Adversary.detector * Evidence.t * Judge.verdict) list;
  detected : bool;     (** at least one piece of evidence was raised *)
  convicted : bool;    (** at least one piece judged [Guilty] *)
  exonerated : bool;   (** some accusation was disproved by A *)
  messages : int;      (** protocol messages exchanged in the round *)
  commit_bytes : int;  (** size of A's commitment message(s) *)
}

type fault_profile = {
  fp_policy : Pvr_net.policy;  (** default policy for every link *)
  fp_links : ((Bgp.Asn.t * Bgp.Asn.t) * Pvr_net.policy) list;
      (** per-link overrides (unordered pairs) *)
  fp_retry_interval : int;  (** ticks between ARQ retransmissions *)
  fp_retry_budget : int;
      (** retransmissions per message, and disclosure re-requests before a
          party raises {!Evidence.Timeout} *)
  fp_gossip_rounds : int;  (** synchronous gossip rounds to run *)
  fp_max_ticks : int;  (** per-phase simulation budget *)
}

val perfect_faults : fault_profile
(** Lossless, delay-free links; under this profile {!min_round_faulty} is
    behaviourally identical to the former direct-call round. *)

type net_report = {
  base : report;
  delivered_announces : Bgp.Asn.t list;
      (** providers whose announce reached A (in delivery order) *)
  acked_announces : Bgp.Asn.t list;
      (** providers that {e know} A received their announce — only these
          may accuse A of withholding a disclosure *)
  commit_holders : Bgp.Asn.t list;
      (** participants holding a commitment (directly or via gossip) *)
  direct_commits : Bgp.Asn.t list;
      (** participants that received their own commitment from A directly *)
  disclosed_to : Bgp.Asn.t list;  (** providers that received their opening *)
  beneficiary_disclosed : bool;
  net_sends : int;  (** transport frames offered on the reliable channel *)
  net_drops : int;  (** frames lost (loss + partition) on it *)
  net_retries : int;  (** ARQ retransmissions performed *)
  net_timeouts : int;  (** sends abandoned past the retry budget *)
  gossip_sends : int;
  gossip_drops : int;
  ticks : int;  (** simulated ticks consumed across both channels *)
}

val min_round_faulty :
  ?gossip:[ `Clique | `Ring | `None ] ->
  ?max_path_len:int ->
  ?faults:fault_profile ->
  ?ledger:Leakage.Ledger.ledger ->
  ?comply:bool ->
  Adversary.behaviour ->
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  prover:Bgp.Asn.t ->
  beneficiary:Bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Bgp.Prefix.t ->
  routes:(Bgp.Asn.t * Bgp.Route.t) list ->
  net_report
(** Run one §3.3 round with every wire message passed through a
    deterministic simulated network ({!Pvr_net}) under [faults] (default
    {!perfect_faults}).  Announces, commitments, and disclosures use a
    stop-and-wait ARQ channel with [fp_retry_budget] retransmissions;
    gossip digests use a separate best-effort channel.  A party still owed
    a disclosure after [fp_retry_budget] explicit re-requests raises
    {!Evidence.Timeout} around the omission claim.  Fault schedules are a
    deterministic function of the seed behind [rng] (they draw from
    children split off before any protocol draws).

    [ledger] accounts every disclosed bit of the round per receiving party:
    provider and beneficiary openings, the export, commitment receptions
    (opaque, zero bits) and whatever judge challenges extract.  [comply]
    (default [false]) is forwarded to {!Adversary.run_min}: stonewalling
    behaviours answer the judge honestly when challenged, so they are
    detected but exonerated. *)

val min_round :
  ?gossip:[ `Clique | `Ring | `None ] ->
  ?max_path_len:int ->
  Adversary.behaviour ->
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  prover:Bgp.Asn.t ->
  beneficiary:Bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Bgp.Prefix.t ->
  routes:(Bgp.Asn.t * Bgp.Route.t) list ->
  report
(** Run one §3.3 round.  [routes] are the provider announcements (neighbor,
    route as it arrives at A).  Gossip topology defaults to the full
    clique.  Equivalent to [min_round_faulty ~faults:perfect_faults]. *)

val detection_expected :
  Adversary.behaviour ->
  beneficiary:Bgp.Asn.t ->
  routes:(Bgp.Asn.t * Bgp.Route.t) list ->
  net_report ->
  bool
(** Whether the round's fault schedule delivered the behaviour's witnessing
    messages, i.e. whether §2.3 Detection must have fired: some expected
    detector (over the inputs that actually reached A) held the
    commitment and received what it needed — its disclosure, an
    acknowledged announce (for the stonewalling victim), or an unbroken
    clique gossip round (for equivocation).  Assumes clique gossip with at
    least one round.  When this returns [true] on a [min_round_faulty]
    report, the report must show [detected] and [convicted] for every
    non-[Honest] behaviour; the soak harness asserts exactly that. *)

val announce_of_route :
  Keyring.t ->
  provider:Bgp.Asn.t ->
  prover:Bgp.Asn.t ->
  epoch:Wire.epoch ->
  Bgp.Route.t ->
  Wire.announce Wire.signed
(** Helper shared with the graph runner and the examples. *)

val graph_round :
  ?max_path_len:int ->
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  prover:Bgp.Asn.t ->
  beneficiary:Bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Bgp.Prefix.t ->
  promise:Pvr_rfg.Promise.t ->
  routes:(Bgp.Asn.t * Bgp.Route.t) list ->
  report
(** Run one honest generalized round (§3.5–3.7): build the reference
    route-flow graph for [promise], commit, disclose under the promise's
    minimal α, and run every party's checks.  Used by E3. *)
