module C = Pvr_crypto
module BU = Pvr_crypto.Bytes_util
module Merkle = Pvr_merkle.Merkle_tree
module Prefix_tree = Pvr_merkle.Prefix_tree

let ( let* ) = Option.bind

(* ---- primitives ---------------------------------------------------------- *)

let enc_list = BU.encode_list

let dec_list s =
  let read_u32 pos =
    if pos + 4 > String.length s then None
    else Some (BU.read_be32 s pos, pos + 4)
  in
  match read_u32 0 with
  | None -> None
  | Some (count, pos) when count >= 0 && count <= String.length s ->
      let rec items n pos acc =
        if n = 0 then
          if pos = String.length s then Some (List.rev acc) else None
        else
          match read_u32 pos with
          | None -> None
          | Some (len, pos) ->
              if len < 0 || pos + len > String.length s then None
              else items (n - 1) (pos + len) (String.sub s pos len :: acc)
      in
      items count pos []
  | Some _ -> None

let enc_int n = BU.be32 n

let dec_int s = if String.length s = 4 then Some (BU.read_be32 s 0) else None

let enc_opening (o : C.Commitment.opening) =
  enc_list [ o.C.Commitment.value; o.C.Commitment.nonce ]

let dec_opening s =
  match dec_list s with
  | Some [ value; nonce ] -> Some { C.Commitment.value; nonce }
  | _ -> None

let enc_option enc = function
  | None -> enc_list [ "0" ]
  | Some x -> enc_list [ "1"; enc x ]

let dec_option dec s =
  match dec_list s with
  | Some [ "0" ] -> Some None
  | Some [ "1"; x ] -> Option.map (fun v -> Some v) (dec x)
  | _ -> None

let enc_indexed_openings openings =
  enc_list (List.map (fun (i, o) -> enc_list [ enc_int i; enc_opening o ]) openings)

let dec_indexed_openings s =
  let* items = dec_list s in
  List.fold_right
    (fun item acc ->
      let* acc = acc in
      let* parts = dec_list item in
      match parts with
      | [ i; o ] ->
          let* i = dec_int i in
          let* o = dec_opening o in
          Some ((i, o) :: acc)
      | _ -> None)
    items (Some [])

let enc_signed_announce = Wire.encode_signed ~encode:Wire.encode_announce
let dec_signed_announce = Wire.decode_signed ~decode:Wire.decode_announce
let enc_signed_commit = Wire.encode_signed ~encode:Wire.encode_commit
let dec_signed_commit = Wire.decode_signed ~decode:Wire.decode_commit
let enc_signed_export = Wire.encode_signed ~encode:Wire.encode_export
let dec_signed_export = Wire.decode_signed ~decode:Wire.decode_export

(* ---- graph pieces --------------------------------------------------------- *)

let enc_component (c : Evidence.graph_component) =
  enc_list [ c.Evidence.gc_raw; enc_opening c.Evidence.gc_opening ]

let dec_component s =
  let* parts = dec_list s in
  match parts with
  | [ gc_raw; o ] ->
      let* gc_opening = dec_opening o in
      Some { Evidence.gc_raw; gc_opening }
  | _ -> None

let enc_disclosure (d : Evidence.graph_disclosure) =
  enc_list
    [
      d.Evidence.gd_vertex;
      d.Evidence.gd_leaf;
      Prefix_tree.encode_proof d.Evidence.gd_proof;
      enc_option enc_component d.Evidence.gd_preds;
      enc_option enc_component d.Evidence.gd_succs;
      enc_option enc_component d.Evidence.gd_payload;
      enc_indexed_openings d.Evidence.gd_bits;
    ]

let dec_disclosure s =
  let* parts = dec_list s in
  match parts with
  | [ gd_vertex; gd_leaf; proof; preds; succs; payload; bits ] ->
      let* gd_proof = Prefix_tree.decode_proof proof in
      let* gd_preds = dec_option dec_component preds in
      let* gd_succs = dec_option dec_component succs in
      let* gd_payload = dec_option dec_component payload in
      let* gd_bits = dec_indexed_openings bits in
      Some
        {
          Evidence.gd_vertex;
          gd_leaf;
          gd_proof;
          gd_preds;
          gd_succs;
          gd_payload;
          gd_bits;
        }
  | _ -> None

let enc_offence (o : Evidence.graph_offence) =
  match o with
  | Evidence.Wrong_input_value { var; witness } ->
      enc_list [ "wrong-input"; var; enc_signed_announce witness ]
  | Evidence.False_evidence_bit { op; index; witness } ->
      enc_list [ "false-bit"; op; enc_int index; enc_signed_announce witness ]
  | Evidence.Output_evidence_mismatch { out_var; op; detail } ->
      enc_list [ "output-mismatch"; out_var; op; detail ]
  | Evidence.Export_not_committed { out_var; export } ->
      enc_list [ "export-uncommitted"; out_var; enc_signed_export export ]

let dec_offence s =
  let* parts = dec_list s in
  match parts with
  | [ "wrong-input"; var; witness ] ->
      let* witness = dec_signed_announce witness in
      Some (Evidence.Wrong_input_value { var; witness })
  | [ "false-bit"; op; index; witness ] ->
      let* index = dec_int index in
      let* witness = dec_signed_announce witness in
      Some (Evidence.False_evidence_bit { op; index; witness })
  | [ "output-mismatch"; out_var; op; detail ] ->
      Some (Evidence.Output_evidence_mismatch { out_var; op; detail })
  | [ "export-uncommitted"; out_var; export ] ->
      let* export = dec_signed_export export in
      Some (Evidence.Export_not_committed { out_var; export })
  | _ -> None

(* ---- top level ------------------------------------------------------------- *)

let rec encode (e : Evidence.t) =
  match e with
  | Evidence.Timeout { claim; retries } ->
      enc_list [ "timeout"; enc_int retries; encode claim ]
  | Evidence.Equivocation { first; second } ->
      enc_list [ "equivocation"; enc_signed_commit first; enc_signed_commit second ]
  | Evidence.False_bit { commit; index; opening; witness } ->
      enc_list
        [
          "false-bit"; enc_signed_commit commit; enc_int index;
          enc_opening opening; enc_signed_announce witness;
        ]
  | Evidence.Non_monotonic_bits
      { commit; set_index; set_opening; unset_index; unset_opening } ->
      enc_list
        [
          "non-monotonic"; enc_signed_commit commit; enc_int set_index;
          enc_opening set_opening; enc_int unset_index;
          enc_opening unset_opening;
        ]
  | Evidence.Nonminimal_export { commit; export; index; opening } ->
      enc_list
        [
          "nonminimal"; enc_signed_commit commit; enc_signed_export export;
          enc_int index; enc_opening opening;
        ]
  | Evidence.Unsupported_export { commit; export; openings } ->
      enc_list
        [
          "unsupported"; enc_signed_commit commit; enc_signed_export export;
          enc_indexed_openings openings;
        ]
  | Evidence.Bad_provenance { export } ->
      enc_list [ "bad-provenance"; enc_signed_export export ]
  | Evidence.Missing_export_claim { commit; openings; claimant } ->
      enc_list
        [
          "missing-export"; enc_signed_commit commit;
          enc_indexed_openings openings;
          enc_int (Pvr_bgp.Asn.to_int claimant);
        ]
  | Evidence.Missing_disclosure_claim { commit; announce; claimant } ->
      enc_list
        [
          "missing-disclosure"; enc_signed_commit commit;
          enc_signed_announce announce;
          enc_int (Pvr_bgp.Asn.to_int claimant);
        ]
  | Evidence.Graph_violation { commit; disclosures; offence } ->
      enc_list
        [
          "graph"; enc_signed_commit commit;
          enc_list (List.map enc_disclosure disclosures);
          enc_offence offence;
        ]
  | Evidence.Cross_shorter_export { commit; my_export; other_block; opening } ->
      enc_list
        [
          "cross-shorter"; enc_signed_commit commit;
          enc_signed_export my_export; enc_int other_block;
          enc_opening opening;
        ]
  | Evidence.Own_vector_mismatch { commit; my_export; bit_index; opening } ->
      enc_list
        [
          "own-vector"; enc_signed_commit commit; enc_signed_export my_export;
          enc_int bit_index; enc_opening opening;
        ]

let rec decode s =
  let* parts = dec_list s in
  match parts with
  | [ "timeout"; retries; claim ] ->
      let* retries = dec_int retries in
      let* claim = decode claim in
      (* Nesting is meaningless (a timeout of a timeout) and would let a
         hostile encoder stack arbitrarily deep recursion; reject it. *)
      (match claim with
      | Evidence.Timeout _ -> None
      | _ -> Some (Evidence.Timeout { claim; retries }))
  | [ "equivocation"; first; second ] ->
      let* first = dec_signed_commit first in
      let* second = dec_signed_commit second in
      Some (Evidence.Equivocation { first; second })
  | [ "false-bit"; commit; index; opening; witness ] ->
      let* commit = dec_signed_commit commit in
      let* index = dec_int index in
      let* opening = dec_opening opening in
      let* witness = dec_signed_announce witness in
      Some (Evidence.False_bit { commit; index; opening; witness })
  | [ "non-monotonic"; commit; si; so; ui; uo ] ->
      let* commit = dec_signed_commit commit in
      let* set_index = dec_int si in
      let* set_opening = dec_opening so in
      let* unset_index = dec_int ui in
      let* unset_opening = dec_opening uo in
      Some
        (Evidence.Non_monotonic_bits
           { commit; set_index; set_opening; unset_index; unset_opening })
  | [ "nonminimal"; commit; export; index; opening ] ->
      let* commit = dec_signed_commit commit in
      let* export = dec_signed_export export in
      let* index = dec_int index in
      let* opening = dec_opening opening in
      Some (Evidence.Nonminimal_export { commit; export; index; opening })
  | [ "unsupported"; commit; export; openings ] ->
      let* commit = dec_signed_commit commit in
      let* export = dec_signed_export export in
      let* openings = dec_indexed_openings openings in
      Some (Evidence.Unsupported_export { commit; export; openings })
  | [ "bad-provenance"; export ] ->
      let* export = dec_signed_export export in
      Some (Evidence.Bad_provenance { export })
  | [ "missing-export"; commit; openings; claimant ] ->
      let* commit = dec_signed_commit commit in
      let* openings = dec_indexed_openings openings in
      let* claimant = dec_int claimant in
      Some
        (Evidence.Missing_export_claim
           { commit; openings; claimant = Pvr_bgp.Asn.of_int claimant })
  | [ "missing-disclosure"; commit; announce; claimant ] ->
      let* commit = dec_signed_commit commit in
      let* announce = dec_signed_announce announce in
      let* claimant = dec_int claimant in
      Some
        (Evidence.Missing_disclosure_claim
           { commit; announce; claimant = Pvr_bgp.Asn.of_int claimant })
  | [ "graph"; commit; disclosures; offence ] ->
      let* commit = dec_signed_commit commit in
      let* items = dec_list disclosures in
      let* disclosures =
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            let* d = dec_disclosure item in
            Some (d :: acc))
          items (Some [])
      in
      let* offence = dec_offence offence in
      Some (Evidence.Graph_violation { commit; disclosures; offence })
  | [ "cross-shorter"; commit; export; block; opening ] ->
      let* commit = dec_signed_commit commit in
      let* my_export = dec_signed_export export in
      let* other_block = dec_int block in
      let* opening = dec_opening opening in
      Some
        (Evidence.Cross_shorter_export { commit; my_export; other_block; opening })
  | [ "own-vector"; commit; export; bit_index; opening ] ->
      let* commit = dec_signed_commit commit in
      let* my_export = dec_signed_export export in
      let* bit_index = dec_int bit_index in
      let* opening = dec_opening opening in
      Some
        (Evidence.Own_vector_mismatch { commit; my_export; bit_index; opening })
  | _ -> None

let to_hex e = C.Hex.encode (encode e)

let of_hex s =
  match C.Hex.decode s with
  | bytes -> decode bytes
  | exception Invalid_argument _ -> None
