(** Pieces shared by the existential (§3.2) and minimum (§3.3) protocols.

    Conventions used throughout:
    - An "input" is a {!Wire.announce} signed by the providing neighbor N_i
      and addressed to the prover A.
    - The exported route carried in a {!Wire.export} is the {e chosen input
      route as received} (before A prepends its own ASN); B compares it
      bytewise against the embedded provenance announcement.
    - Bit indices are 1-based path lengths, as in §3.3: b_i = 1 iff some
      input route has AS-path length ≤ i. *)

type neighbor_disclosure = {
  nd_index : int;  (** which commitment is being opened (1 for ["exists"]) *)
  nd_opening : Pvr_crypto.Commitment.opening;
}
(** What A reveals to a providing neighbor. *)

type beneficiary_disclosure = {
  bd_openings : (int * Pvr_crypto.Commitment.opening) list;
  bd_export : Wire.export Wire.signed option;
}
(** What A reveals to the beneficiary B. *)

val valid_input :
  Keyring.t ->
  prover:Pvr_bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Pvr_bgp.Prefix.t ->
  Wire.announce Wire.signed ->
  bool
(** Is this announcement admissible as an input for the round: valid
    signature, addressed to the prover, right epoch and prefix, and the
    announcing neighbor is the first AS on the route's path? *)

val valid_inputs :
  Keyring.t ->
  prover:Pvr_bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Pvr_bgp.Prefix.t ->
  Wire.announce Wire.signed list ->
  bool list
(** Batch form of {!valid_input}, one verdict per announce in order.
    Signature checks go through {!Wire.verify_batch}, so duplicate
    announces cost a single RSA verification. *)

val opening_bit_at :
  Wire.commit Wire.signed ->
  index:int ->
  Pvr_crypto.Commitment.opening ->
  bool option
(** Check an opening against commitment [index] (1-based) of a commit
    message; [Some b] if it verifies and encodes bit [b], [None]
    otherwise. *)

val check_export_provenance :
  Keyring.t ->
  commit:Wire.commit Wire.signed ->
  beneficiary:Pvr_bgp.Asn.t ->
  Wire.export Wire.signed ->
  (Wire.announce Wire.signed, Evidence.t) result
(** Validate an export received by B: A's signature, epoch/prefix/recipient
    consistency, and the embedded provenance (a validly-signed input whose
    route equals the exported route).  On success, returns the provenance
    announcement. *)
