(** Confidentiality audit (§2.3 Confidentiality, experiment E7).

    "No AS will learn information from running PVR that it could not learn
    in the unsecured system, unless this was explicitly authorized by α."

    We make "information learned" concrete as a set of {!fact}s and give
    each verification scheme a {e view}: the facts a party extracts from its
    transcript.  A fact is an {e excess} leak if it is not derivable from
    the party's plain-BGP baseline by the closure rules of §2.3:

    - the beneficiary of a kept shortest-route promise already learns the
      minimum input length from the exported route itself ("Y learns the
      values of some of X's input variables, even though, according to α,
      it may not have access"), and
    - a threshold bit b_i is derivable from a known minimum length.

    PVR transcripts must produce zero excess facts; the NetReview-style
    full-disclosure baseline leaks every input route to every neighbor. *)

module Bgp = Pvr_bgp

type fact =
  | Knows_route of { provider : Bgp.Asn.t; route : Bgp.Route.t }
      (** the party knows this exact input route of A *)
  | Knows_min_length of int
      (** the party knows the length of A's shortest input *)
  | Knows_bit of { index : int; value : bool }
      (** the party knows threshold bit b_index *)
  | Knows_route_count_positive
      (** the party knows at least one input existed *)

val pp_fact : Format.formatter -> fact -> unit

type view = fact list

(** {2 Views per scheme} *)

val plain_bgp_beneficiary : exported:Bgp.Route.t option -> view
(** What B learns from ordinary BGP under an (assumed kept) shortest-route
    promise: the exported route's existence and, by the promise, the
    minimum length. *)

val plain_bgp_provider : me:Bgp.Asn.t -> my_route:Bgp.Route.t -> view
(** What N_i knows anyway: its own announcement (hence bit b_{|r_i|}). *)

val pvr_min_beneficiary :
  k:int -> openings:(int * bool) list -> exported:Bgp.Route.t option -> view
(** Facts B extracts from a §3.3 transcript: all bits plus the export. *)

val pvr_min_provider :
  me:Bgp.Asn.t -> my_route:Bgp.Route.t -> revealed_bit:(int * bool) option -> view
(** Facts N_i extracts: its own route plus the one disclosed bit. *)

val netreview_neighbor : inputs:(Bgp.Asn.t * Bgp.Route.t) list -> view
(** Full disclosure: every neighbor sees every input route. *)

(** {2 The audit} *)

val derivable : baseline:view -> fact -> bool
(** Closure: is the fact implied by the baseline facts? *)

val excess : baseline:view -> observed:view -> fact list
(** Observed facts not derivable from the baseline = confidentiality
    violations.  Empty for PVR, size k-ish for NetReview. *)

val excess_count : baseline:view -> observed:view -> int

(** {2 Quantitative meter (E14)}

    A fixed bit-accounting convention turns fact sets into comparable
    information bounds: a threshold bit or input-count fact is 1 bit, a
    minimum length is 5 bits (an integer in 1..{!Pvr.Proto_min.default_max_path_len}),
    a full route is 32 bits per hop.  The absolute numbers are coarse by
    design — what the E14 matrix relies on is monotonicity and seeded
    determinism. *)

val fact_bits : fact -> int

val view_bits : view -> int
(** Sum of {!fact_bits} over the deduplicated view. *)

val pooled : view list -> view
(** Union of coalition members' views, deduplicated — what colluding
    neighbors learn by pooling disclosed bits. *)

val excess_bits : baseline:view -> observed:view -> int
(** {!view_bits} of the deduplicated {!excess}. *)

val alpha_authorizes :
  Access_control.t -> viewer:Bgp.Asn.t -> fact -> bool
(** Does the α access-control map explicitly authorize [viewer] to learn
    [fact] beyond plain BGP?  Threshold bits and the input count map to the
    public ["op:min"] vertex, a minimum length to the viewer's promise
    output variable, a learned route to that provider's input variable. *)

type audit = {
  au_viewer : string;
  au_baseline_bits : int;
  au_observed_bits : int;
  au_excess : fact list;
  au_excess_bits : int;  (** bits beyond the plain-BGP closure *)
  au_unauthorized_bits : int;  (** excess bits α does not authorize *)
}

val audit :
  viewer:string ->
  ?authorized:(fact -> bool) ->
  baseline:view ->
  observed:view ->
  unit ->
  audit
(** Build one audit row; [authorized] (default: nothing) is typically
    [alpha_authorizes α ~viewer].  Increments ["leakage.audits"] and
    ["leakage.bits.excess"]. *)

val validate_privacy_claims : audit list -> (unit, string list) result
(** §2.3 Confidentiality as an assertion: [Ok ()] iff no audit shows
    unauthorized excess bits; otherwise one error line per violating
    viewer. *)

(** {2 Disclosure ledger}

    Threaded through {!Pvr.Gossip}, {!Pvr.Judge} and {!Pvr.Runner} so every
    bit a round actually disclosed is accounted per receiving party. *)

val court : Bgp.Asn.t
(** Pseudo-viewer (ASN 0) for facts surfaced to the judge by challenge
    responses. *)

module Ledger : sig
  type ledger

  val create : unit -> ledger

  val record : ledger -> viewer:Bgp.Asn.t -> fact -> unit
  (** Account a disclosed fact (idempotent per (viewer, fact)); increments
      ["leakage.bits.disclosed"]. *)

  val record_opaque : ledger -> viewer:Bgp.Asn.t -> unit
  (** A hiding commitment changed hands: observed traffic, zero bits. *)

  val opaque_count : ledger -> int

  val record_refusal : ledger -> viewer:Bgp.Asn.t -> unit
  (** Account an α-refused disclosure attempt: [viewer] asked for (or a
      query tried to show it) something {!alpha_authorizes} rejects.
      Nothing was revealed, but enforcement is auditable — increments
      ["leakage.refusals"] and the per-viewer tally. *)

  val refusal_count : ledger -> int
  (** Total refusals across all viewers. *)

  val refusals : ledger -> (Bgp.Asn.t * int) list
  (** Per-viewer refusal tallies, sorted by ASN. *)

  val view : ledger -> viewer:Bgp.Asn.t -> view
  val viewers : ledger -> Bgp.Asn.t list
end
