module Bgp = Pvr_bgp
module C = Pvr_crypto

type t =
  | Equivocation of {
      first : Wire.commit Wire.signed;
      second : Wire.commit Wire.signed;
    }
  | False_bit of {
      commit : Wire.commit Wire.signed;
      index : int;
      opening : C.Commitment.opening;
      witness : Wire.announce Wire.signed;
    }
  | Non_monotonic_bits of {
      commit : Wire.commit Wire.signed;
      set_index : int;
      set_opening : C.Commitment.opening;
      unset_index : int;
      unset_opening : C.Commitment.opening;
    }
  | Nonminimal_export of {
      commit : Wire.commit Wire.signed;
      export : Wire.export Wire.signed;
      index : int;
      opening : C.Commitment.opening;
    }
  | Unsupported_export of {
      commit : Wire.commit Wire.signed;
      export : Wire.export Wire.signed;
      openings : (int * C.Commitment.opening) list;
    }
  | Bad_provenance of { export : Wire.export Wire.signed }
  | Missing_export_claim of {
      commit : Wire.commit Wire.signed;
      openings : (int * C.Commitment.opening) list;
      claimant : Bgp.Asn.t;
    }
  | Missing_disclosure_claim of {
      commit : Wire.commit Wire.signed;
      announce : Wire.announce Wire.signed;
      claimant : Bgp.Asn.t;
    }
  | Graph_violation of {
      commit : Wire.commit Wire.signed;
      disclosures : graph_disclosure list;
      offence : graph_offence;
    }
  | Cross_shorter_export of {
      commit : Wire.commit Wire.signed;
      my_export : Wire.export Wire.signed;
      other_block : int;
      opening : C.Commitment.opening;
    }
  | Own_vector_mismatch of {
      commit : Wire.commit Wire.signed;
      my_export : Wire.export Wire.signed;
      bit_index : int;
      opening : C.Commitment.opening;
    }
  | Timeout of { claim : t; retries : int }

and graph_component = { gc_raw : string; gc_opening : C.Commitment.opening }

and graph_disclosure = {
  gd_vertex : string;
  gd_leaf : string;
  gd_proof : Pvr_merkle.Prefix_tree.proof;
  gd_preds : graph_component option;
  gd_succs : graph_component option;
  gd_payload : graph_component option;
  gd_bits : (int * C.Commitment.opening) list;
}

and graph_offence =
  | Wrong_input_value of { var : string; witness : Wire.announce Wire.signed }
  | False_evidence_bit of {
      op : string;
      index : int;
      witness : Wire.announce Wire.signed;
    }
  | Output_evidence_mismatch of { out_var : string; op : string; detail : string }
  | Export_not_committed of {
      out_var : string;
      export : Wire.export Wire.signed;
    }

let rec accused = function
  | Equivocation { first; _ } -> first.Wire.signer
  | Timeout { claim; _ } -> accused claim
  | False_bit { commit; _ }
  | Non_monotonic_bits { commit; _ }
  | Nonminimal_export { commit; _ }
  | Unsupported_export { commit; _ }
  | Missing_export_claim { commit; _ }
  | Missing_disclosure_claim { commit; _ }
  | Graph_violation { commit; _ }
  | Cross_shorter_export { commit; _ }
  | Own_vector_mismatch { commit; _ } ->
      commit.Wire.signer
  | Bad_provenance { export } -> export.Wire.signer

let rec describe t =
  let who = Bgp.Asn.to_string (accused t) in
  match t with
  | Timeout { claim; retries } ->
      Printf.sprintf "%s (%s stonewalled %d retries)" (describe claim) who
        retries
  | Equivocation _ -> who ^ " equivocated about its commitments"
  | False_bit { index; _ } ->
      Printf.sprintf "%s committed bit b_%d = 0 despite a witness route" who
        index
  | Non_monotonic_bits { set_index; unset_index; _ } ->
      Printf.sprintf "%s committed non-monotonic bits (b_%d = 1, b_%d = 0)" who
        set_index unset_index
  | Nonminimal_export { index; _ } ->
      Printf.sprintf
        "%s exported a route although bit b_%d shows a shorter input" who index
  | Unsupported_export _ ->
      who ^ " exported a route although it committed to having no input"
  | Bad_provenance _ -> who ^ " exported a route with invalid provenance"
  | Missing_export_claim { claimant; _ } ->
      Printf.sprintf "%s failed to export to %s despite committing b = 1" who
        (Bgp.Asn.to_string claimant)
  | Missing_disclosure_claim { claimant; _ } ->
      Printf.sprintf "%s failed to disclose its bit to %s" who
        (Bgp.Asn.to_string claimant)
  | Graph_violation { offence; _ } -> begin
      match offence with
      | Wrong_input_value { var; witness } ->
          Printf.sprintf
            "%s committed an input variable %s that omits %s's announced route"
            who var
            (Bgp.Asn.to_string witness.Wire.signer)
      | False_evidence_bit { op; index; witness } ->
          Printf.sprintf
            "%s committed bit %d of operator %s as 0 despite %s's route" who
            index op
            (Bgp.Asn.to_string witness.Wire.signer)
      | Output_evidence_mismatch { out_var; op; detail } ->
          Printf.sprintf "%s: output %s contradicts evidence of %s (%s)" who
            out_var op detail
      | Export_not_committed { out_var; _ } ->
          Printf.sprintf "%s exported a route that is not the committed %s" who
            out_var
    end
  | Cross_shorter_export { other_block; _ } ->
      Printf.sprintf
        "%s promised beneficiary #%d a strictly shorter route (promise 4)" who
        other_block
  | Own_vector_mismatch { bit_index; _ } ->
      Printf.sprintf
        "%s committed bit %d of its export vector inconsistently" who bit_index

(* Canonical evidence-kind tags: the queryable vocabulary of the audit
   plane.  A [Timeout] reports the omission it substantiates — the query
   layer cares about what was withheld, not that silence proved it. *)
let rec kind = function
  | Equivocation _ -> "equivocation"
  | False_bit _ -> "false-bit"
  | Non_monotonic_bits _ -> "non-monotonic-bits"
  | Nonminimal_export _ -> "nonminimal-export"
  | Unsupported_export _ -> "unsupported-export"
  | Bad_provenance _ -> "bad-provenance"
  | Missing_export_claim _ -> "missing-export"
  | Missing_disclosure_claim _ -> "missing-disclosure"
  | Graph_violation _ -> "graph-violation"
  | Cross_shorter_export _ -> "cross-shorter-export"
  | Own_vector_mismatch _ -> "own-vector-mismatch"
  | Timeout { claim; _ } -> kind claim

let all_kinds =
  [
    "equivocation";
    "false-bit";
    "non-monotonic-bits";
    "nonminimal-export";
    "unsupported-export";
    "bad-provenance";
    "missing-export";
    "missing-disclosure";
    "graph-violation";
    "cross-shorter-export";
    "own-vector-mismatch";
  ]
