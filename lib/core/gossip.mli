(** Gossip among A's neighbors about A's commitments (§3.2/§3.6).

    "A's neighbors can gossip about c to ensure that they all have the same
    view of b" — equivocation (sending different commitments to different
    neighbors) is the one attack commitments alone cannot stop, and the
    gossip round turns it into hard evidence: two valid signatures by A on
    conflicting commitment messages for the same epoch, prefix, and scheme.

    The exchange is modelled on an explicit gossip graph so experiment E8
    can ablate the fanout (full clique vs. ring): equivocation towards a
    pair of neighbors that never exchange digests goes undetected. *)

type t

val create : Keyring.t -> t

val receive :
  ?ledger:Leakage.Ledger.ledger ->
  t ->
  holder:Pvr_bgp.Asn.t ->
  Wire.commit Wire.signed ->
  Evidence.t option
(** [holder] records a commitment it received directly from the signer.
    Returns equivocation evidence immediately if it conflicts with one the
    holder already knows.  Invalidly-signed commitments are ignored.
    [ledger] accounts the reception as an opaque (zero-bit) event:
    commitments are hiding, so gossip provably contributes nothing to the
    holder's leakage view. *)

val exchange : t -> Pvr_bgp.Asn.t -> Pvr_bgp.Asn.t -> Evidence.t list
(** One gossip edge: the two parties compare everything they hold and both
    learn the union.  Returns any equivocation uncovered. *)

type digest = Wire.commit Wire.signed list
(** What one gossip edge transmits: every commitment the sender holds. *)

val run_round :
  ?net:digest Pvr_net.t ->
  ?ledger:Leakage.Ledger.ledger ->
  t ->
  edges:(Pvr_bgp.Asn.t * Pvr_bgp.Asn.t) list ->
  Evidence.t list
(** One synchronous gossip round: every edge exchanges the views its two
    endpoints held when the round {e started}, so information travels one
    hop per round (an equivocation split across distant ring members needs
    several rounds to surface, which is what E8 ablates).  The returned
    evidence is deduplicated: a conflicting commitment pair is reported
    once per round no matter how many holders observed it.

    Digests are sent through [net] (default: a fresh perfect channel, under
    which this behaves exactly like a sequential edge walk).  A faulty
    [net] may drop, duplicate, delay, or reorder digests; equivocation
    detection is invariant under duplication and reordering because
    {!receive} is idempotent and conflicts are checked against live
    views. *)

val clique_edges : Pvr_bgp.Asn.t list -> (Pvr_bgp.Asn.t * Pvr_bgp.Asn.t) list
val ring_edges : Pvr_bgp.Asn.t list -> (Pvr_bgp.Asn.t * Pvr_bgp.Asn.t) list

val view :
  t -> holder:Pvr_bgp.Asn.t -> signer:Pvr_bgp.Asn.t -> epoch:Wire.epoch ->
  prefix:Pvr_bgp.Prefix.t -> scheme:string -> Wire.commit Wire.signed option
(** The commitment the holder currently accepts for that slot, if any. *)
