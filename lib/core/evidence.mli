(** Evidence of promise violations (§2.3, §3.4).

    "If an incorrect evaluation is detected in an AS A, then at least one AS
    B can obtain evidence against A that will convince a third party."

    Most constructors are {e self-contained}: they bundle signed statements
    and commitment openings that any third party can replay ({!Judge}).
    The two [*_claim] constructors are accusations of an {e omission}
    (A failed to send something); omissions cannot be proven directly, so
    the judge resolves them by challenging A to produce the missing item —
    which an honest A always can (the Accuracy property). *)

module Bgp = Pvr_bgp
module C = Pvr_crypto

type t =
  | Equivocation of {
      first : Wire.commit Wire.signed;
      second : Wire.commit Wire.signed;
    }
      (** Two valid signatures by the same AS on conflicting commitments for
          the same epoch/prefix/scheme. *)
  | False_bit of {
      commit : Wire.commit Wire.signed;
      index : int;                      (** which b_i (1-based, §3.3) *)
      opening : C.Commitment.opening;   (** opens commitment [index] to 0 *)
      witness : Wire.announce Wire.signed;
          (** N_i's own signed announcement whose path length proves the bit
              had to be 1 *)
    }
  | Non_monotonic_bits of {
      commit : Wire.commit Wire.signed;
      set_index : int;                  (** b_i = 1 *)
      set_opening : C.Commitment.opening;
      unset_index : int;                (** b_j = 0 with j > i *)
      unset_opening : C.Commitment.opening;
    }
  | Nonminimal_export of {
      commit : Wire.commit Wire.signed;
      export : Wire.export Wire.signed;
      index : int;                      (** an index < |exported route| *)
      opening : C.Commitment.opening;   (** ... whose bit opens to 1 *)
    }
      (** A exported a route although it committed that a strictly shorter
          input existed. *)
  | Unsupported_export of {
      commit : Wire.commit Wire.signed;
      export : Wire.export Wire.signed;
      openings : (int * C.Commitment.opening) list;
          (** every bit opened to 0, yet a route was exported *)
    }
  | Bad_provenance of { export : Wire.export Wire.signed }
      (** The export's embedded provenance announcement is missing, its
          signature is invalid, or it does not match the exported route. *)
  | Missing_export_claim of {
      commit : Wire.commit Wire.signed;
      openings : (int * C.Commitment.opening) list;
          (** bits shown to B, at least one = 1, but no route arrived *)
      claimant : Bgp.Asn.t;
    }
  | Missing_disclosure_claim of {
      commit : Wire.commit Wire.signed;
      announce : Wire.announce Wire.signed;
          (** the claimant's own announcement: it provided a route, so A owed
              it an opening (§3.2 condition 2) *)
      claimant : Bgp.Asn.t;
    }
  | Graph_violation of {
      commit : Wire.commit Wire.signed;  (** scheme ["graph"]: root in list *)
      disclosures : graph_disclosure list;
          (** authenticated vertex components against the committed root *)
      offence : graph_offence;
    }
  | Cross_shorter_export of {
      commit : Wire.commit Wire.signed;  (** scheme ["noshorter"] *)
      my_export : Wire.export Wire.signed;
          (** A's signed export to the claimant, length L *)
      other_block : int;  (** 0-based block of the other beneficiary *)
      opening : C.Commitment.opening;
          (** opens that beneficiary's bit b_{L-1} to 1: it was promised a
              strictly shorter route (§2 promise 4 violation) *)
    }
  | Own_vector_mismatch of {
      commit : Wire.commit Wire.signed;  (** scheme ["noshorter"] *)
      my_export : Wire.export Wire.signed;
      bit_index : int;  (** 1..k within the claimant's own vector *)
      opening : C.Commitment.opening;
          (** opens inconsistently with the exported route's length *)
    }
  | Timeout of {
      claim : t;
          (** the omission claim the silence substantiates — a [*_claim]
              constructor, never a nested [Timeout] *)
      retries : int;  (** re-requests sent past the first, all unanswered *)
    }
      (** Raised by the {!Pvr_net} transport path when a party stonewalls
          past the bounded-retry budget: the claimant re-requested the
          item [retries] times and never heard back.  Subsumes the ad-hoc
          "refused disclosure" path — over a real (lossy) network, refusal
          and loss are indistinguishable, so both surface as a timeout and
          the {!Judge} settles which it was by challenging the accused. *)

(** An opened I(x) component, as in {!Proto_graph}. *)
and graph_component = { gc_raw : string; gc_opening : C.Commitment.opening }

and graph_disclosure = {
  gd_vertex : string;  (** the vertex id; Merkle path = [Bitstring.of_id] *)
  gd_leaf : string;
  gd_proof : Pvr_merkle.Prefix_tree.proof;
  gd_preds : graph_component option;
  gd_succs : graph_component option;
  gd_payload : graph_component option;
  gd_bits : (int * C.Commitment.opening) list;
}

and graph_offence =
  | Wrong_input_value of {
      var : string;
      witness : Wire.announce Wire.signed;
          (** the disclosed input variable does not contain the witness's
              signed route *)
    }
  | False_evidence_bit of {
      op : string;
      index : int;
      witness : Wire.announce Wire.signed;
          (** the operator's committed bit [index] is 0 although the witness
              route proves it must be 1 *)
    }
  | Output_evidence_mismatch of { out_var : string; op : string; detail : string }
      (** the committed output value contradicts the operator's committed
          evidence bits *)
  | Export_not_committed of {
      out_var : string;
      export : Wire.export Wire.signed;
          (** A exported a route that is not the committed output value *)
    }

val accused : t -> Bgp.Asn.t
(** The AS the evidence incriminates (always the commit/export signer). *)

val describe : t -> string

val kind : t -> string
(** Canonical kebab-case tag of the violation class (a [Timeout] reports
    the omission claim it substantiates).  Always a member of
    {!all_kinds} — the vocabulary the evidence-plane query language's
    [kind] field is validated against. *)

val all_kinds : string list
(** Every tag {!kind} can produce, deduplicated, in declaration order. *)
