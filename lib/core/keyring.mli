(** Identities and keys for PVR participants.

    PVR assumes (like S-BGP) that every network can sign statements and that
    neighbors know each other's public keys.  A keyring holds the key pairs
    of the ASes in an experiment and answers public-key lookups. *)

type t

val create : ?bits:int -> Pvr_crypto.Drbg.t -> Pvr_bgp.Asn.t list -> t
(** Generate a key pair for each AS ([bits]-bit modulus, default 1024 — the
    size §3.8 quotes).  Key generation dominates experiment setup time, so
    tests pass smaller moduli (e.g. 512). *)

val add : t -> Pvr_bgp.Asn.t -> t
(** Generate a key for one more AS. @raise Invalid_argument if present. *)

val private_key : t -> Pvr_bgp.Asn.t -> Pvr_crypto.Rsa.private_key
(** @raise Not_found for unknown ASes. *)

val public_key : t -> Pvr_bgp.Asn.t -> Pvr_crypto.Rsa.public_key
(** Served from an eager per-AS memo built at key-generation time (every
    signature verification resolves the signer's key, so this is the hot
    path); the [pvr_obs] counters ["keyring.pub.memo_hits"] and
    ["keyring.pub.map_lookups"] record how often the memo answered versus a
    map walk.  @raise Not_found for unknown ASes. *)

val members : t -> Pvr_bgp.Asn.t list
