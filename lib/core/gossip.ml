module Bgp = Pvr_bgp

(* Slot: one commitment is expected per (signer, epoch, prefix, scheme). *)
module Slot = struct
  type t = Bgp.Asn.t * Wire.epoch * string * string

  let compare = Stdlib.compare

  let of_commit (c : Wire.commit Wire.signed) =
    ( c.Wire.signer,
      c.Wire.payload.Wire.cmt_epoch,
      Bgp.Prefix.to_string c.Wire.payload.Wire.cmt_prefix,
      c.Wire.payload.Wire.cmt_scheme )
end

module Slot_map = Map.Make (Slot)

type t = {
  keyring : Keyring.t;
  mutable held : Wire.commit Wire.signed Slot_map.t Bgp.Asn.Map.t;
      (* per holder, per slot, the first commitment seen *)
}

let obs_exchanges = Pvr_obs.counter "gossip.exchanges"
let obs_equivocations = Pvr_obs.counter "gossip.equivocations"

let create keyring = { keyring; held = Bgp.Asn.Map.empty }

let holder_map t holder =
  Option.value (Bgp.Asn.Map.find_opt holder t.held) ~default:Slot_map.empty

(* Slot bookkeeping for a commit whose signature has already been checked;
   [receive] is this behind a per-commit verification, [run_round] batches
   the verification across a whole round first. *)
let receive_checked ?ledger t ~holder commit =
  (* Commitments are hiding: the holder observes traffic but learns zero
     bits, which the disclosure ledger records as an opaque event. *)
  Option.iter (fun l -> Leakage.Ledger.record_opaque l ~viewer:holder) ledger;
  let slot = Slot.of_commit commit in
  let m = holder_map t holder in
  match Slot_map.find_opt slot m with
  | None ->
      t.held <- Bgp.Asn.Map.add holder (Slot_map.add slot commit m) t.held;
      None
  | Some existing ->
      if Wire.equal_commit existing commit then None
      else begin
        Pvr_obs.incr obs_equivocations;
        Some (Evidence.Equivocation { first = existing; second = commit })
      end

let receive ?ledger t ~holder commit =
  if not (Wire.verify t.keyring ~encode:Wire.encode_commit commit) then None
  else receive_checked ?ledger t ~holder commit

(* [view_of] decides what each party transmits: for a standalone exchange
   that is the current view; for a synchronous round it is the view frozen
   at the start of the round, so information travels one hop per round. *)
let exchange_via t ~view_of x y =
  Pvr_obs.incr obs_exchanges;
  let mx = view_of x and my = view_of y in
  let evidence = ref [] in
  let merge_into holder theirs =
    Slot_map.iter
      (fun _slot commit ->
        match receive t ~holder commit with
        | Some e -> evidence := e :: !evidence
        | None -> ())
      theirs
  in
  merge_into x my;
  merge_into y mx;
  List.rev !evidence

let exchange t x y = exchange_via t ~view_of:(holder_map t) x y

(* A round visits many edges, and the same conflicting commitment pair
   surfaces at every holder that has seen both halves; report it once.
   Non-equivocation evidence (none arises here today) passes through. *)
let evidence_key = function
  | Evidence.Equivocation { first; second } ->
      let a = Wire.encode_signed ~encode:Wire.encode_commit first
      and b = Wire.encode_signed ~encode:Wire.encode_commit second in
      Some (if a <= b then a ^ b else b ^ a)
  | _ -> None

type digest = Wire.commit Wire.signed list

let digest_of_map m = List.map snd (Slot_map.bindings m)

let run_round ?net ?ledger t ~edges =
  (* Synchronous round: every edge transmits the views the holders had when
     the round started.  Gossip therefore spreads one hop per round — on a
     ring, an equivocation towards two holders more than two hops apart
     survives the first round (the E8 ablation), while a clique always has
     the direct edge.  Conflicts are still checked against each holder's
     live view, so a holder told two different things within one round does
     detect it.

     Digests travel as wire messages over a {!Pvr_net} channel; the default
     channel is a perfect (draw-free) network, under which the delivery
     order equals the send order and this reduces exactly to the former
     sequential edge walk. *)
  let net =
    match net with
    | Some n -> n
    | None -> Pvr_net.create ~rng:(Pvr_crypto.Drbg.of_int_seed 0) ()
  in
  let start = t.held in
  let view_of holder =
    Option.value (Bgp.Asn.Map.find_opt holder start) ~default:Slot_map.empty
  in
  List.iter
    (fun (x, y) ->
      Pvr_obs.incr obs_exchanges;
      (* Matches [exchange_via] ordering: x absorbs y's view first. *)
      Pvr_net.send net ~src:y ~dst:x (digest_of_map (view_of y));
      Pvr_net.send net ~src:x ~dst:y (digest_of_map (view_of x)))
    edges;
  (* Collect deliveries first, then verify every carried signature in one
     batch: the same commitment reaches every holder on the ring, so
     deduplication collapses a round's signature bill to one verification
     per distinct commitment.  Slot bookkeeping then replays in exact
     delivery order, so held-state and evidence are unchanged. *)
  let deliveries = ref [] in
  let handler ~src:_ ~dst digest = deliveries := (dst, digest) :: !deliveries in
  let (_ticks : int) = Pvr_net.run net ~handler () in
  let flat =
    List.concat_map
      (fun (dst, digest) -> List.map (fun c -> (dst, c)) digest)
      (List.rev !deliveries)
  in
  let verdicts =
    Wire.verify_batch t.keyring
      (List.map (fun (_, c) -> Wire.check ~encode:Wire.encode_commit c) flat)
  in
  let evidence = ref [] in
  List.iter2
    (fun (dst, commit) ok ->
      if ok then begin
        match receive_checked ?ledger t ~holder:dst commit with
        | Some e -> evidence := e :: !evidence
        | None -> ()
      end)
    flat verdicts;
  let seen = Hashtbl.create 8 in
  List.rev !evidence
  |> List.filter (fun e ->
         match evidence_key e with
         | None -> true
         | Some key ->
             if Hashtbl.mem seen key then false
             else begin
               Hashtbl.add seen key ();
               true
             end)

let clique_edges members =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go members

let ring_edges members =
  match members with
  | [] | [ _ ] -> []
  | first :: _ ->
      let rec go = function
        | x :: (y :: _ as rest) -> (x, y) :: go rest
        | [ last ] -> [ (last, first) ]
        | [] -> []
      in
      go members

let view t ~holder ~signer ~epoch ~prefix ~scheme =
  Slot_map.find_opt
    (signer, epoch, Bgp.Prefix.to_string prefix, scheme)
    (holder_map t holder)
