module Bgp = Pvr_bgp
module C = Pvr_crypto
open Proto_common

type behaviour =
  | Honest
  | Export_nonminimal
  | False_bits
  | Equivocate
  | Suppress_export
  | Refuse_disclosure
  | Forge_provenance

let all =
  [ Honest; Export_nonminimal; False_bits; Equivocate; Suppress_export;
    Refuse_disclosure; Forge_provenance ]

let to_string = function
  | Honest -> "honest"
  | Export_nonminimal -> "export-nonminimal"
  | False_bits -> "false-bits"
  | Equivocate -> "equivocate"
  | Suppress_export -> "suppress-export"
  | Refuse_disclosure -> "refuse-disclosure"
  | Forge_provenance -> "forge-provenance"

type min_run = {
  commit_for : Bgp.Asn.t -> Wire.commit Wire.signed;
  neighbor_disclosures :
    (Bgp.Asn.t * Proto_common.neighbor_disclosure option) list;
  beneficiary_disclosure : Proto_common.beneficiary_disclosure;
  respond : accused:Bgp.Asn.t -> Judge.challenge -> Judge.response;
}

let path_len (ann : Wire.announce Wire.signed) =
  Bgp.Route.path_length ann.Wire.payload.Wire.ann_route

(* Build a full commitment set for a claimed shortest length. *)
let build_commitments rng keyring ~prover ~epoch ~prefix ~k ~claimed_shortest =
  let bits = List.init k (fun i -> claimed_shortest <= i + 1) in
  let committed = List.map (C.Commitment.commit_bit rng) bits in
  let commit =
    Wire.sign keyring ~as_:prover ~encode:Wire.encode_commit
      {
        Wire.cmt_epoch = epoch;
        cmt_prefix = prefix;
        cmt_scheme = Proto_min.scheme;
        cmt_commitments =
          List.map
            (fun ((c : C.Commitment.commitment), _) -> (c :> string))
            committed;
      }
  in
  (commit, List.map snd committed)

let sign_export keyring ~prover ~epoch ~beneficiary ~route ~provenance =
  Wire.sign keyring ~as_:prover ~encode:Wire.encode_export
    {
      Wire.exp_epoch = epoch;
      exp_to = beneficiary;
      exp_route = route;
      exp_provenance = provenance;
    }

let run_min behaviour ?(max_path_len = Proto_min.default_max_path_len)
    ?(comply = false) rng keyring ~prover ~beneficiary ~epoch ~prefix ~inputs
    =
  Pvr_obs.with_span "adversary.run_min" @@ fun () ->
  let inputs =
    List.filter
      (fun ann ->
        valid_input keyring ~prover ~epoch ~prefix ann
        && path_len ann <= max_path_len)
      inputs
  in
  let k = max_path_len in
  let shortest =
    List.fold_left (fun acc a -> min acc (path_len a)) max_int inputs
  in
  let longest = List.fold_left (fun acc a -> max acc (path_len a)) 0 inputs in
  let winner = List.find_opt (fun a -> path_len a = shortest) inputs in
  let loser = List.find_opt (fun a -> path_len a = longest) inputs in
  let honest_commit, honest_openings =
    build_commitments rng keyring ~prover ~epoch ~prefix ~k
      ~claimed_shortest:shortest
  in
  let opening_at openings i = List.nth openings (i - 1) in
  let honest_neighbor_disclosures =
    List.map
      (fun ann ->
        ( ann.Wire.signer,
          Some
            {
              nd_index = path_len ann;
              nd_opening = opening_at honest_openings (path_len ann);
            } ))
      inputs
  in
  let honest_export =
    Option.map
      (fun (chosen : Wire.announce Wire.signed) ->
        sign_export keyring ~prover ~epoch ~beneficiary
          ~route:chosen.Wire.payload.Wire.ann_route ~provenance:(Some chosen))
      winner
  in
  let all_openings openings = List.mapi (fun i o -> (i + 1, o)) openings in
  let honest_respond ~accused:_ = function
    | Judge.Produce_export _ -> begin
        match honest_export with
        | Some e -> Judge.Export_response e
        | None -> Judge.No_response
      end
    | Judge.Produce_opening { index; _ } ->
        if index >= 1 && index <= k then
          Judge.Opening_response (opening_at honest_openings index)
        else Judge.No_response
  in
  match behaviour with
  | Honest ->
      {
        commit_for = (fun _ -> honest_commit);
        neighbor_disclosures = honest_neighbor_disclosures;
        beneficiary_disclosure =
          {
            bd_openings = all_openings honest_openings;
            bd_export = honest_export;
          };
        respond = honest_respond;
      }
  | Export_nonminimal ->
      (* Honest bits, but ship the longest route to B. *)
      let export =
        Option.map
          (fun (chosen : Wire.announce Wire.signed) ->
            sign_export keyring ~prover ~epoch ~beneficiary
              ~route:chosen.Wire.payload.Wire.ann_route
              ~provenance:(Some chosen))
          loser
      in
      {
        commit_for = (fun _ -> honest_commit);
        neighbor_disclosures = honest_neighbor_disclosures;
        beneficiary_disclosure =
          { bd_openings = all_openings honest_openings; bd_export = export };
        respond = honest_respond;
      }
  | False_bits ->
      (* Commit bits pretending the longest route is the shortest, and
         export the longest.  Internally consistent for B; providers with
         shorter routes see their bit open to 0. *)
      let lying_commit, lying_openings =
        build_commitments rng keyring ~prover ~epoch ~prefix ~k
          ~claimed_shortest:longest
      in
      let neighbor_disclosures =
        List.map
          (fun ann ->
            ( ann.Wire.signer,
              Some
                {
                  nd_index = path_len ann;
                  nd_opening = opening_at lying_openings (path_len ann);
                } ))
          inputs
      in
      let export =
        Option.map
          (fun (chosen : Wire.announce Wire.signed) ->
            sign_export keyring ~prover ~epoch ~beneficiary
              ~route:chosen.Wire.payload.Wire.ann_route
              ~provenance:(Some chosen))
          loser
      in
      {
        commit_for = (fun _ -> lying_commit);
        neighbor_disclosures;
        beneficiary_disclosure =
          { bd_openings = all_openings lying_openings; bd_export = export };
        respond =
          (fun ~accused:_ -> function
            | Judge.Produce_export _ -> begin
                match export with
                | Some e -> Judge.Export_response e
                | None -> Judge.No_response
              end
            | Judge.Produce_opening { index; _ } ->
                if index >= 1 && index <= k then
                  Judge.Opening_response (opening_at lying_openings index)
                else Judge.No_response);
      }
  | Equivocate ->
      (* Providers see the truthful commitment; B sees a lying one paired
         with a consistent (longest) export.  Each party's local view is
         self-consistent; only gossip reveals the split. *)
      let lying_commit, lying_openings =
        build_commitments rng keyring ~prover ~epoch ~prefix ~k
          ~claimed_shortest:longest
      in
      let export =
        Option.map
          (fun (chosen : Wire.announce Wire.signed) ->
            sign_export keyring ~prover ~epoch ~beneficiary
              ~route:chosen.Wire.payload.Wire.ann_route
              ~provenance:(Some chosen))
          loser
      in
      {
        commit_for =
          (fun who ->
            if Bgp.Asn.equal who beneficiary then lying_commit
            else honest_commit);
        neighbor_disclosures = honest_neighbor_disclosures;
        beneficiary_disclosure =
          { bd_openings = all_openings lying_openings; bd_export = export };
        respond = honest_respond;
      }
  | Suppress_export ->
      {
        commit_for = (fun _ -> honest_commit);
        neighbor_disclosures = honest_neighbor_disclosures;
        beneficiary_disclosure =
          {
            bd_openings = all_openings honest_openings;
            bd_export = None;
          };
        respond =
          (if comply then honest_respond
           else fun ~accused:_ _ -> Judge.No_response);
      }
  | Refuse_disclosure ->
      (* Withhold the opening from the first providing neighbor. *)
      let neighbor_disclosures =
        match honest_neighbor_disclosures with
        | (victim, _) :: rest -> (victim, None) :: rest
        | [] -> []
      in
      {
        commit_for = (fun _ -> honest_commit);
        neighbor_disclosures;
        beneficiary_disclosure =
          {
            bd_openings = all_openings honest_openings;
            bd_export = honest_export;
          };
        respond =
          (if comply then honest_respond
           else fun ~accused:_ _ -> Judge.No_response);
      }
  | Forge_provenance ->
      (* Export a fabricated route of minimal length whose provenance
         announcement carries a bogus signature. *)
      let route =
        let asn_fake = Bgp.Asn.of_int 65000 in
        let path =
          List.init (max shortest 1) (fun i ->
              if i = 0 then asn_fake else Bgp.Asn.of_int (65001 + i))
        in
        let base = Bgp.Route.originate ~asn:asn_fake prefix in
        { base with Bgp.Route.as_path = path; next_hop = asn_fake }
      in
      let forged_announce =
        (* Signed by the adversary itself while claiming another signer:
           the signature can never verify against the claimed key. *)
        let key = Keyring.private_key keyring prover in
        Wire.sign_with key ~as_:(Bgp.Asn.of_int 65000)
          ~encode:Wire.encode_announce
          { Wire.ann_epoch = epoch; ann_to = prover; ann_route = route }
      in
      let export =
        Some
          (sign_export keyring ~prover ~epoch ~beneficiary ~route
             ~provenance:(Some forged_announce))
      in
      {
        commit_for = (fun _ -> honest_commit);
        neighbor_disclosures = honest_neighbor_disclosures;
        beneficiary_disclosure =
          { bd_openings = all_openings honest_openings; bd_export = export };
        respond = honest_respond;
      }

type detector = Beneficiary | Provider of Bgp.Asn.t | Gossip

let expected_detectors behaviour ~inputs =
  let shortest =
    List.fold_left (fun acc (_, l) -> min acc l) max_int inputs
  in
  let longest = List.fold_left (fun acc (_, l) -> max acc l) 0 inputs in
  match behaviour with
  | Honest -> []
  | Export_nonminimal ->
      (* Detectable by B iff a strictly shorter input than the exported
         (longest) one exists. *)
      if shortest < longest then [ Beneficiary ] else []
  | False_bits ->
      List.filter_map
        (fun (n, l) -> if l < longest then Some (Provider n) else None)
        inputs
  | Equivocate -> if shortest < longest then [ Gossip ] else []
  | Suppress_export -> if inputs <> [] then [ Beneficiary ] else []
  | Refuse_disclosure -> begin
      match inputs with (n, _) :: _ -> [ Provider n ] | [] -> []
    end
  | Forge_provenance -> [ Beneficiary ]

(* ---- the strategy zoo ------------------------------------------------------

   A strategy is a seeded, deterministic policy mapping each engine vertex
   (prover, prefix) at each wire epoch to a per-round behaviour — the same
   shape as a [Pvr_net] fault profile, but over protocol conduct instead of
   message delivery.  All pseudo-randomness is an HMAC of the strategy seed
   and the vertex coordinates, so a plan never depends on evaluation order,
   scheduling, or caching. *)

type strategy =
  | Sweep of behaviour
  | Coalition of { size : int; behaviour : behaviour }
  | Cross_shard of { shards : int; target : int }
  | Adaptive_low_value of { cheat : behaviour }
  | Timing_probe of { period : int }

type round_plan = {
  rp_behaviour : behaviour;
  rp_comply : bool;
  rp_coalition : int;
}

let honest_plan = { rp_behaviour = Honest; rp_comply = false; rp_coalition = 1 }

let all_strategies =
  [
    Sweep Honest;
    Coalition { size = 2; behaviour = False_bits };
    Cross_shard { shards = 4; target = 1 };
    Adaptive_low_value { cheat = Export_nonminimal };
    Timing_probe { period = 2 };
  ]

let strategy_to_string = function
  | Sweep Honest -> "honest"
  | Sweep b -> "sweep-" ^ to_string b
  | Coalition { behaviour; _ } -> "coalition-" ^ to_string behaviour
  | Cross_shard _ -> "cross-shard-equivocate"
  | Adaptive_low_value _ -> "adaptive-low-value"
  | Timing_probe _ -> "timing-probe"

let behaviour_of_string s = List.find_opt (fun b -> to_string b = s) all

let strategy_of_string s =
  let after p =
    let lp = String.length p in
    if String.length s > lp && String.sub s 0 lp = p then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  match s with
  | "honest" -> Some (Sweep Honest)
  | "cross-shard-equivocate" -> Some (Cross_shard { shards = 4; target = 1 })
  | "adaptive-low-value" ->
      Some (Adaptive_low_value { cheat = Export_nonminimal })
  | "timing-probe" -> Some (Timing_probe { period = 2 })
  | _ -> begin
      match after "sweep-" with
      | Some b -> Option.map (fun b -> Sweep b) (behaviour_of_string b)
      | None -> begin
          match after "coalition-" with
          | Some b ->
              Option.map
                (fun behaviour -> Coalition { size = 2; behaviour })
                (behaviour_of_string b)
          | None -> Option.map (fun b -> Sweep b) (behaviour_of_string s)
        end
    end

let obs_plans = Pvr_obs.counter "adversary.plans"
let obs_cheats = Pvr_obs.counter "adversary.cheats"
let obs_stonewalls = Pvr_obs.counter "adversary.stonewalls"

(* A seeded hash of the vertex coordinates in [0, m).  [epoch = 0] keys
   strategies that pick a fixed vertex subset for the whole run. *)
let vertex_hash ~seed ~tag ~prover ~prefix ~epoch m =
  let msg =
    Printf.sprintf "%s|%d|%s|%d" tag (Bgp.Asn.to_int prover)
      (Bgp.Prefix.to_string prefix) epoch
  in
  let d = C.Hmac.mac ~key:seed msg in
  let n =
    (Char.code d.[0] lsl 16) lor (Char.code d.[1] lsl 8) lor Char.code d.[2]
  in
  n mod m

let plan_round strategy ~seed ~prover ~prefix ~epoch =
  Pvr_obs.incr obs_plans;
  let plan =
    match strategy with
    | Sweep b -> { honest_plan with rp_behaviour = b }
    | Coalition { size; behaviour } ->
        { rp_behaviour = behaviour; rp_comply = false;
          rp_coalition = max 1 size }
    | Cross_shard { shards; target } ->
        let shards = max 1 shards in
        let target = ((target mod shards) + shards) mod shards in
        if
          vertex_hash ~seed ~tag:"cross-shard" ~prover ~prefix ~epoch:0 shards
          = target
        then { honest_plan with rp_behaviour = Equivocate }
        else honest_plan
    | Adaptive_low_value { cheat } ->
        (* Cheat only on low-value (most-specific, /24-tier) prefixes,
           staying honest on the /8 and /16 families. *)
        if prefix.Bgp.Prefix.len >= 24 then
          { honest_plan with rp_behaviour = cheat }
        else honest_plan
    | Timing_probe { period } ->
        let period = max 1 period in
        if vertex_hash ~seed ~tag:"timing" ~prover ~prefix ~epoch period = 0
        then
          { rp_behaviour = Suppress_export; rp_comply = true; rp_coalition = 1 }
        else honest_plan
  in
  if plan.rp_behaviour <> Honest then
    if plan.rp_comply then Pvr_obs.incr obs_stonewalls
    else Pvr_obs.incr obs_cheats;
  plan
