module Bgp = Pvr_bgp

type fact =
  | Knows_route of { provider : Bgp.Asn.t; route : Bgp.Route.t }
  | Knows_min_length of int
  | Knows_bit of { index : int; value : bool }
  | Knows_route_count_positive

let pp_fact ppf = function
  | Knows_route { provider; route } ->
      Format.fprintf ppf "route of %a: %a" Bgp.Asn.pp provider Bgp.Route.pp
        route
  | Knows_min_length l -> Format.fprintf ppf "min input length = %d" l
  | Knows_bit { index; value } ->
      Format.fprintf ppf "bit b_%d = %b" index value
  | Knows_route_count_positive -> Format.fprintf ppf "at least one input"

type view = fact list

let plain_bgp_beneficiary ~exported =
  match exported with
  | None -> []
  | Some r ->
      (* The route B receives is itself an input of A (pre-prepend), and
         the kept promise implies it is the minimum. *)
      [
        Knows_route
          { provider = r.Bgp.Route.next_hop; route = r };
        Knows_min_length (Bgp.Route.path_length r);
        Knows_route_count_positive;
      ]

let plain_bgp_provider ~me ~my_route =
  [
    Knows_route { provider = me; route = my_route };
    Knows_route_count_positive;
  ]

let pvr_min_beneficiary ~k ~openings ~exported =
  ignore k;
  plain_bgp_beneficiary ~exported
  @ List.map (fun (index, value) -> Knows_bit { index; value }) openings

let pvr_min_provider ~me ~my_route ~revealed_bit =
  plain_bgp_provider ~me ~my_route
  @
  match revealed_bit with
  | Some (index, value) -> [ Knows_bit { index; value } ]
  | None -> []

let netreview_neighbor ~inputs =
  let routes =
    List.map (fun (provider, route) -> Knows_route { provider; route }) inputs
  in
  let min_len =
    List.fold_left
      (fun acc (_, r) -> min acc (Bgp.Route.path_length r))
      max_int inputs
  in
  if inputs = [] then []
  else routes @ [ Knows_min_length min_len; Knows_route_count_positive ]

(* Closure rules:
   - any baseline fact is derivable;
   - Knows_min_length L ⟹ Knows_bit(i, L <= i) for every i;
   - Knows_route (own or learned) of length L ⟹ Knows_bit(i, true) for
     i >= L (some input is at most L hops) and Knows_route_count_positive;
   - Knows_min_length ⟹ Knows_route_count_positive. *)
let derivable ~baseline fact =
  List.mem fact baseline
  ||
  let known_min =
    List.find_map
      (function Knows_min_length l -> Some l | _ -> None)
      baseline
  in
  let known_route_lengths =
    List.filter_map
      (function
        | Knows_route { route; _ } -> Some (Bgp.Route.path_length route)
        | _ -> None)
      baseline
  in
  match fact with
  | Knows_bit { index; value } -> begin
      match known_min with
      | Some l -> value = (l <= index)
      | None ->
          (* A set bit follows from any known route short enough. *)
          value && List.exists (fun l -> l <= index) known_route_lengths
    end
  | Knows_route_count_positive ->
      known_min <> None || known_route_lengths <> []
  | Knows_min_length _ | Knows_route _ -> false

let excess ~baseline ~observed =
  List.filter (fun f -> not (derivable ~baseline f)) observed

let excess_count ~baseline ~observed =
  List.length (excess ~baseline ~observed)

(* ---- quantitative meter ---------------------------------------------------

   A coarse, documented bit-accounting convention (the REV-style
   "information bound"): what matters is not the absolute numbers but that
   they are (a) monotone in how much a transcript reveals and (b) identical
   across runs with the same seed, so matrix rows can be diffed.

   - a threshold bit is 1 bit;
   - "some input exists" is 1 bit;
   - a minimum length is an integer in 1..32 (default_max_path_len): 5 bits;
   - a full route reveals its AS path: 32 bits (an ASN) per hop. *)

let fact_bits = function
  | Knows_bit _ -> 1
  | Knows_route_count_positive -> 1
  | Knows_min_length _ -> 5
  | Knows_route { route; _ } -> 32 * Bgp.Route.path_length route

let dedup view =
  List.fold_left (fun acc f -> if List.mem f acc then acc else acc @ [ f ]) [] view

let view_bits view = List.fold_left (fun n f -> n + fact_bits f) 0 (dedup view)

let pooled views = dedup (List.concat views)

let excess_bits ~baseline ~observed =
  List.fold_left
    (fun n f -> n + fact_bits f)
    0
    (excess ~baseline ~observed:(dedup observed))

(* α adapter: which facts the access-control map explicitly authorizes a
   viewer to learn beyond plain BGP.  The Figure-1 vertex naming applies:
   threshold bits and the input count belong to the public ["op:min"]
   vertex; a minimum length is the promise output (visible to whoever may
   see its [output_var]); a learned route r of provider N_i is N_i's input
   variable. *)
let alpha_authorizes alpha ~viewer fact =
  let ok v = Access_control.permits_vertex alpha ~viewer v in
  match fact with
  | Knows_bit _ | Knows_route_count_positive -> ok "op:min"
  | Knows_min_length _ -> ok (Pvr_rfg.Promise.output_var viewer)
  | Knows_route { provider; _ } -> ok (Pvr_rfg.Promise.input_var provider)

type audit = {
  au_viewer : string;
  au_baseline_bits : int;
  au_observed_bits : int;
  au_excess : fact list;
  au_excess_bits : int;
  au_unauthorized_bits : int;
}

let obs_audits = Pvr_obs.counter "leakage.audits"
let obs_bits_disclosed = Pvr_obs.counter "leakage.bits.disclosed"
let obs_bits_excess = Pvr_obs.counter "leakage.bits.excess"
let obs_refusals = Pvr_obs.counter "leakage.refusals"

let audit ~viewer ?(authorized = fun _ -> false) ~baseline ~observed () =
  Pvr_obs.incr obs_audits;
  let observed = dedup observed in
  let ex = excess ~baseline ~observed in
  let unauthorized = List.filter (fun f -> not (authorized f)) ex in
  let bits = List.fold_left (fun n f -> n + fact_bits f) 0 in
  let au_excess_bits = bits ex in
  Pvr_obs.add obs_bits_excess au_excess_bits;
  {
    au_viewer = viewer;
    au_baseline_bits = view_bits baseline;
    au_observed_bits = view_bits observed;
    au_excess = ex;
    au_excess_bits;
    au_unauthorized_bits = bits unauthorized;
  }

let validate_privacy_claims audits =
  let errors =
    List.filter_map
      (fun a ->
        if a.au_unauthorized_bits > 0 then
          Some
            (Printf.sprintf
               "%s learns %d unauthorized bit(s) beyond plain BGP: %s"
               a.au_viewer a.au_unauthorized_bits
               (String.concat "; "
                  (List.map (Format.asprintf "%a" pp_fact) a.au_excess)))
        else None)
      audits
  in
  if errors = [] then Ok () else Error errors

(* ---- per-round disclosure ledger ------------------------------------------

   Threaded through gossip, the judge and the runner so every disclosed bit
   of a round is accounted per viewer.  Hiding commitments are recorded as
   opaque events: observed traffic, zero information. *)

let court = Bgp.Asn.of_int 0

module Ledger = struct
  type ledger = {
    mutable facts : (Bgp.Asn.t * fact) list; (* reverse arrival order *)
    mutable opaque : int;
    mutable refused : (Bgp.Asn.t * int) list; (* per-viewer refusal tally *)
  }

  let create () = { facts = []; opaque = 0; refused = [] }

  let record l ~viewer fact =
    if not (List.mem (viewer, fact) l.facts) then begin
      Pvr_obs.add obs_bits_disclosed (fact_bits fact);
      l.facts <- (viewer, fact) :: l.facts
    end

  let record_opaque l ~viewer:_ = l.opaque <- l.opaque + 1
  let opaque_count l = l.opaque

  (* α said no: the item was withheld, but the *attempt* is part of the
     audit trail — refusals are how the disclosure ledger proves the
     access-control map was actually enforced, not just declared. *)
  let record_refusal l ~viewer =
    Pvr_obs.incr obs_refusals;
    let n = match List.assoc_opt viewer l.refused with
      | Some n -> n
      | None -> 0
    in
    l.refused <- (viewer, n + 1) :: List.remove_assoc viewer l.refused

  let refusal_count l =
    List.fold_left (fun acc (_, n) -> acc + n) 0 l.refused

  let refusals l =
    List.sort (fun (a, _) (b, _) -> Bgp.Asn.compare a b) l.refused

  let view l ~viewer =
    List.rev
      (List.filter_map
         (fun (v, f) -> if Bgp.Asn.equal v viewer then Some f else None)
         l.facts)

  let viewers l =
    List.sort_uniq Bgp.Asn.compare (List.map fst l.facts)
end
