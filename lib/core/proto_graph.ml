module Bgp = Pvr_bgp
module C = Pvr_crypto
module BU = Pvr_crypto.Bytes_util
module Rfg = Pvr_rfg.Rfg
module Operator = Pvr_rfg.Operator
module Promise = Pvr_rfg.Promise
module Bitstring = Pvr_merkle.Bitstring
module Prefix_tree = Pvr_merkle.Prefix_tree

let scheme = "graph"

type component_opening = { raw : string; opening : C.Commitment.opening }

type disclosure = {
  vertex : Rfg.vertex_id;
  leaf : string;
  proof : Prefix_tree.proof;
  preds : component_opening option;
  succs : component_opening option;
  payload : component_opening option;
  bit_openings : (int * C.Commitment.opening) list;
}

(* ---- Payload encodings -------------------------------------------------- *)

let encode_id_list ids = BU.encode_list ids

let decode_id_list s =
  let read_u32 pos =
    if pos + 4 > String.length s then None
    else Some (BU.read_be32 s pos, pos + 4)
  in
  match read_u32 0 with
  | None -> None
  | Some (count, pos) ->
      let rec items n pos acc =
        if n = 0 then
          if pos = String.length s then Some (List.rev acc) else None
        else
          match read_u32 pos with
          | None -> None
          | Some (len, pos) ->
              if pos + len > String.length s then None
              else items (n - 1) (pos + len) (String.sub s pos len :: acc)
      in
      items count pos []

let encode_var_payload routes =
  BU.encode_list ("var" :: List.map Bgp.Route.encode routes)

let encode_op_payload op bit_digests =
  BU.encode_list [ "op"; Operator.encode op; BU.encode_list bit_digests ]

(* Decode an op payload back into (operator-encoding, bit digests). *)
let decode_op_payload raw =
  match decode_id_list raw with
  | Some [ tag; op_enc; digests_enc ] when tag = "op" -> begin
      match decode_id_list digests_enc with
      | Some digests -> Some (op_enc, digests)
      | None -> None
    end
  | _ -> None

let encode_comp_payload inner_root =
  BU.encode_list [ "comp"; inner_root ]

let decode_comp_payload raw =
  match decode_id_list raw with
  | Some [ tag; root ] when tag = "comp" && String.length root = 32 ->
      Some root
  | _ -> None

let decode_var_payload raw =
  match decode_id_list raw with
  | Some (tag :: encs) when tag = "var" -> Some encs
  | _ -> None

(* ---- Evidence bits per operator ----------------------------------------- *)

(* The §3.3 threshold bits of the routes feeding an operator.  For
   [Shorter_of] each input branch gets its own k-bit vector (indices
   1..k and k+1..2k); every other supported operator pools its inputs. *)
let evidence_bits ~k op (input_values : Bgp.Route.t list list) =
  let thresholds routes =
    let shortest =
      List.fold_left
        (fun acc r -> min acc (Bgp.Route.path_length r))
        max_int routes
    in
    List.init k (fun i -> shortest <= i + 1)
  in
  match op with
  | Operator.Exists -> [ List.concat input_values <> [] ]
  | Operator.Min_path_length | Operator.Within_hops_of_min _ ->
      (* Promise 3 reuses the §3.3 threshold bits: they pin down the minimum
         input length m, and the viewer checks |exported| ≤ m + n. *)
      thresholds (List.concat input_values)
  | Operator.Shorter_of -> begin
      match input_values with
      | [ first; second ] -> thresholds first @ thresholds second
      | _ -> []
    end
  | Operator.Union | Operator.Best _ | Operator.Filter _
  | Operator.Not_through _ | Operator.Has_community _
  | Operator.First_nonempty ->
      []

type vertex_record = {
  vr_id : Rfg.vertex_id;
  vr_preds_raw : string;
  vr_succs_raw : string;
  vr_payload_raw : string;
  vr_preds_open : C.Commitment.opening;
  vr_succs_open : C.Commitment.opening;
  vr_payload_open : C.Commitment.opening;
  vr_leaf : string;
  vr_bits : (bool * C.Commitment.opening) array; (* 0-based storage *)
  vr_inner : subtree option; (* composite internals (§4 structural privacy) *)
}

and subtree = {
  sub_records : (Rfg.vertex_id * vertex_record) list;
  sub_tree : Prefix_tree.t;
  sub_root : string;
}

type prover_state = {
  ps_prover : Bgp.Asn.t;
  ps_epoch : Wire.epoch;
  ps_prefix : Bgp.Prefix.t;
  ps_rfg : Rfg.t;
  ps_valuation : Rfg.valuation;
  ps_inputs : Wire.announce Wire.signed list;
  ps_records : (Rfg.vertex_id * vertex_record) list;
  ps_tree : Prefix_tree.t;
  ps_root : string;
  ps_commit : Wire.commit Wire.signed;
  ps_keyring : Keyring.t;
  ps_k : int;
}

let commit_component rng raw =
  let c, opening = C.Commitment.commit rng raw in
  ((c :> string), opening)

(* Build the commitment records for one graph level; composites recurse
   with their vertex ids namespaced ["outer/inner"], each level in its own
   blinded tree. *)
let rec build_subtree rng ~k ~ns rfg valuation =
  let ns_id id = if ns = "" then id else ns ^ "/" ^ id in
  let record id =
    let preds_raw = encode_id_list (List.map ns_id (Rfg.predecessors rfg id)) in
    let succs_raw = encode_id_list (List.map ns_id (Rfg.successors rfg id)) in
    let payload_raw, bits, inner =
      match Rfg.operator_of rfg id with
      | Some op ->
          let input_values =
            List.map (Rfg.value valuation) (Rfg.inputs_of_op rfg id)
          in
          let bits = evidence_bits ~k op input_values in
          let committed = List.map (C.Commitment.commit_bit rng) bits in
          let digests =
            List.map
              (fun ((c : C.Commitment.commitment), _) -> (c :> string))
              committed
          in
          ( encode_op_payload op digests,
            Array.of_list
              (List.map2 (fun b (_, o) -> (b, o)) bits committed),
            None )
      | None -> begin
          match Rfg.composite_of rfg id with
          | Some inner_rfg ->
              (* Evaluate the inner graph on this composite's input values
                 (positional binding in lexicographic inner-id order, the
                 Rfg.add_composite contract) and commit it as a nested
                 tree; the payload reveals only the inner root. *)
              let in_values =
                List.map (Rfg.value valuation) (Rfg.inputs_of_op rfg id)
              in
              let inner_inputs = List.map fst (Rfg.input_vars inner_rfg) in
              let seeded = List.combine inner_inputs in_values in
              let inner_val = Rfg.eval inner_rfg ~inputs:seeded in
              let sub =
                build_subtree rng ~k ~ns:(ns_id id) inner_rfg inner_val
              in
              (encode_comp_payload sub.sub_root, [||], Some sub)
          | None -> (encode_var_payload (Rfg.value valuation id), [||], None)
        end
    in
    let c_preds, o_preds = commit_component rng preds_raw in
    let c_succs, o_succs = commit_component rng succs_raw in
    let c_payload, o_payload = commit_component rng payload_raw in
    {
      vr_id = ns_id id;
      vr_preds_raw = preds_raw;
      vr_succs_raw = succs_raw;
      vr_payload_raw = payload_raw;
      vr_preds_open = o_preds;
      vr_succs_open = o_succs;
      vr_payload_open = o_payload;
      vr_leaf = BU.encode_list [ c_preds; c_succs; c_payload ];
      vr_bits = bits;
      vr_inner = inner;
    }
  in
  let records = List.map (fun id -> (ns_id id, record id)) (Rfg.vertex_ids rfg) in
  let seed = C.Drbg.generate rng 32 in
  let tree =
    Prefix_tree.build ~seed
      (List.map (fun (nid, r) -> (Bitstring.of_id nid, r.vr_leaf)) records)
  in
  { sub_records = records; sub_tree = tree; sub_root = Prefix_tree.root tree }

let prove ?(max_path_len = 32) rng keyring ~prover ~epoch ~prefix ~rfg ~inputs
    =
  Pvr_obs.with_span "proto_graph.prove" @@ fun () ->
  let inputs =
    List.filter
      (Proto_common.valid_input keyring ~prover ~epoch ~prefix)
      inputs
  in
  (* Seed each input variable named after its neighbor. *)
  let seeded =
    List.filter_map
      (fun (id, asn) ->
        let routes =
          List.filter_map
            (fun (ann : Wire.announce Wire.signed) ->
              if Bgp.Asn.equal ann.Wire.signer asn then
                Some ann.Wire.payload.Wire.ann_route
              else None)
            inputs
        in
        if routes = [] then None else Some (id, routes))
      (Rfg.input_vars rfg)
  in
  let valuation = Rfg.eval rfg ~inputs:seeded in
  let k = max_path_len in
  let top = build_subtree rng ~k ~ns:"" rfg valuation in
  let records = top.sub_records in
  let tree = top.sub_tree in
  let root = top.sub_root in
  let commit =
    Wire.sign keyring ~as_:prover ~encode:Wire.encode_commit
      {
        Wire.cmt_epoch = epoch;
        cmt_prefix = prefix;
        cmt_scheme = scheme;
        cmt_commitments = [ root ];
      }
  in
  {
    ps_prover = prover;
    ps_epoch = epoch;
    ps_prefix = prefix;
    ps_rfg = rfg;
    ps_valuation = valuation;
    ps_inputs = inputs;
    ps_records = records;
    ps_tree = tree;
    ps_root = root;
    ps_commit = commit;
    ps_keyring = keyring;
    ps_k = k;
  }

let commit_message ps = ps.ps_commit
let root ps = ps.ps_root
let valuation ps = ps.ps_valuation
let tree_cardinal ps = Prefix_tree.cardinal ps.ps_tree

let exported ps ~beneficiary =
  List.find_map
    (fun (id, asn) ->
      if not (Bgp.Asn.equal asn beneficiary) then None
      else begin
        match Rfg.value ps.ps_valuation id with
        | [] -> None
        | route :: _ ->
            let provenance =
              List.find_opt
                (fun (ann : Wire.announce Wire.signed) ->
                  Bgp.Route.equal ann.Wire.payload.Wire.ann_route route)
                ps.ps_inputs
            in
            Some
              (Wire.sign ps.ps_keyring ~as_:ps.ps_prover
                 ~encode:Wire.encode_export
                 {
                   Wire.exp_epoch = ps.ps_epoch;
                   exp_to = beneficiary;
                   exp_route = route;
                   exp_provenance = provenance;
                 })
      end)
    (Rfg.output_vars ps.ps_rfg)

(* Which evidence-bit indices a provider is entitled to for an operator it
   feeds: the bit at its own route length, offset into the branch that its
   variable occupies for [Shorter_of]. *)
let provider_bit_indices ps op_id ~provider_var ~route_len =
  match Rfg.operator_of ps.ps_rfg op_id with
  | None -> []
  | Some Operator.Exists -> [ 1 ]
  | Some (Operator.Min_path_length | Operator.Within_hops_of_min _) ->
      if route_len <= ps.ps_k then [ route_len ] else []
  | Some Operator.Shorter_of -> begin
      let inputs = Rfg.inputs_of_op ps.ps_rfg op_id in
      match inputs with
      | [ first; _second ] ->
          if route_len > ps.ps_k then []
          else if String.equal first provider_var then [ route_len ]
          else [ ps.ps_k + route_len ]
      | _ -> []
    end
  | Some _ -> []

let disclose ?role ps ~alpha ~viewer =
  List.filter_map
    (fun (id, r) ->
      let want comp = Access_control.permits alpha ~viewer id comp in
      let preds_ok = want Access_control.Preds in
      let succs_ok = want Access_control.Succs in
      let payload_ok = want Access_control.Payload in
      if not (preds_ok || succs_ok || payload_ok) then None
      else begin
        match Prefix_tree.prove ps.ps_tree (Bitstring.of_id id) with
        | None -> None
        | Some (leaf, proof) ->
            let comp raw opening = Some { raw; opening } in
            (* Evidence bits are disclosed by protocol role, not by α: the
               beneficiary receives every bit of an operator it may see
               (§3.3: "A also reveals all the bits b_i to B"), a provider
               only the bit at its own route length. *)
            let bit_openings =
              if (not payload_ok) || Array.length r.vr_bits = 0 then []
              else begin
                match role with
                | None | Some `Beneficiary ->
                    Array.to_list
                      (Array.mapi (fun i (_, o) -> (i + 1, o)) r.vr_bits)
                | Some (`Provider route_len) ->
                    List.filter_map
                      (fun i ->
                        if i >= 1 && i <= Array.length r.vr_bits then begin
                          let _, o = r.vr_bits.(i - 1) in
                          Some (i, o)
                        end
                        else None)
                      (provider_bit_indices ps id
                         ~provider_var:(Promise.input_var viewer)
                         ~route_len)
              end
            in
            Some
              {
                vertex = id;
                leaf;
                proof;
                preds =
                  (if preds_ok then comp r.vr_preds_raw r.vr_preds_open
                   else None);
                succs =
                  (if succs_ok then comp r.vr_succs_raw r.vr_succs_open
                   else None);
                payload =
                  (if payload_ok then comp r.vr_payload_raw r.vr_payload_open
                   else None);
                bit_openings;
              }
      end)
    ps.ps_records

(* ---- Verification ------------------------------------------------------- *)

let leaf_digests leaf =
  match decode_id_list leaf with
  | Some [ c_preds; c_succs; c_payload ]
    when List.for_all (fun d -> String.length d = 32)
           [ c_preds; c_succs; c_payload ] ->
      Some (c_preds, c_succs, c_payload)
  | _ -> None

let component_valid digest (c : component_opening) =
  String.length digest = 32
  && C.Commitment.verify (C.Commitment.of_raw digest) c.opening
  && String.equal c.opening.C.Commitment.value c.raw

let check_disclosure_integrity ~root d =
  Prefix_tree.verify ~root ~path:(Bitstring.of_id d.vertex) ~value:d.leaf
    d.proof
  &&
  match leaf_digests d.leaf with
  | None -> false
  | Some (c_preds, c_succs, c_payload) ->
      (match d.preds with
      | None -> true
      | Some c -> component_valid c_preds c)
      && (match d.succs with
         | None -> true
         | Some c -> component_valid c_succs c)
      && (match d.payload with
         | None -> true
         | Some c -> component_valid c_payload c)
      &&
      (* Bit openings check against digests embedded in the payload. *)
      (match d.payload with
      | Some c when d.bit_openings <> [] -> begin
          match decode_op_payload c.raw with
          | None -> false
          | Some (_, digests) ->
              List.for_all
                (fun (i, o) ->
                  i >= 1
                  && i <= List.length digests
                  && C.Commitment.verify
                       (C.Commitment.of_raw (List.nth digests (i - 1)))
                       o)
                d.bit_openings
        end
      | _ -> d.bit_openings = [])

let to_evidence_disclosure d =
  let comp = Option.map (fun c -> { Evidence.gc_raw = c.raw; gc_opening = c.opening }) in
  {
    Evidence.gd_vertex = d.vertex;
    gd_leaf = d.leaf;
    gd_proof = d.proof;
    gd_preds = comp d.preds;
    gd_succs = comp d.succs;
    gd_payload = comp d.payload;
    gd_bits = d.bit_openings;
  }

let graph_violation commit ds offence =
  Evidence.Graph_violation
    { commit; disclosures = List.map to_evidence_disclosure ds; offence }

let bit_value d i =
  match List.assoc_opt i d.bit_openings with
  | None -> None
  | Some o -> C.Commitment.opening_bit o

let find_disclosure ds id = List.find_opt (fun d -> d.vertex = id) ds

(* First index in [lo..hi] whose bit opens to 1. *)
let first_set_bit d ~lo ~hi =
  let rec go i =
    if i > hi then None
    else
      match bit_value d (i) with
      | Some true -> Some (i - lo + 1)
      | _ -> go (i + 1)
  in
  go lo

(* Which evidence-bit indices a route of length [len] from variable [var]
   forces to 1 for the operator disclosed as [od].  Mirrors
   [provider_bit_indices], but derived purely from disclosed data. *)
let forced_bit_indices od ~var ~len =
  match od.payload with
  | None -> []
  | Some pc -> begin
      match decode_op_payload pc.raw with
      | None -> []
      | Some (op_enc, digests) -> begin
          let k2 = List.length digests in
          match Operator.decode op_enc with
          | Some Operator.Exists -> [ 1 ]
          | Some (Operator.Min_path_length | Operator.Within_hops_of_min _) ->
              if len <= k2 then [ len ] else []
          | Some Operator.Shorter_of -> begin
              let k = k2 / 2 in
              let branch =
                match od.preds with
                | Some c -> begin
                    match decode_id_list c.raw with
                    | Some [ first; _ ] when first = var -> 0
                    | Some [ _; second ] when second = var -> 1
                    | _ -> -1
                  end
                | None -> -1
              in
              if branch >= 0 && len <= k then [ (branch * k) + len ] else []
            end
          | _ -> []
        end
    end

let check_provider keyring ~me ~my_announce ~commit ~disclosures =
  ignore keyring;
  let root =
    match commit.Wire.payload.Wire.cmt_commitments with
    | [ r ] -> r
    | _ -> ""
  in
  let bad_integrity =
    List.exists
      (fun d -> not (check_disclosure_integrity ~root d))
      disclosures
  in
  let claim () =
    [
      Evidence.Missing_disclosure_claim
        { commit; announce = my_announce; claimant = me };
    ]
  in
  if bad_integrity then claim ()
  else begin
    let my_var = Promise.input_var me in
    let my_route = my_announce.Wire.payload.Wire.ann_route in
    match find_disclosure disclosures my_var with
    | None -> claim ()
    | Some d -> begin
        match d.payload with
        | None -> claim ()
        | Some c -> begin
            match decode_var_payload c.raw with
            | None -> claim ()
            | Some encs ->
                if not (List.mem (Bgp.Route.encode my_route) encs) then
                  [
                    graph_violation commit [ d ]
                      (Evidence.Wrong_input_value
                         { var = my_var; witness = my_announce });
                  ]
                else begin
                  (* Follow succs to the consuming operators and check their
                     evidence bits at my route length. *)
                  let consumers =
                    match d.succs with
                    | None -> []
                    | Some c ->
                        Option.value (decode_id_list c.raw) ~default:[]
                  in
                  let len = Bgp.Route.path_length my_route in
                  List.concat_map
                    (fun op_id ->
                      match find_disclosure disclosures op_id with
                      | None -> claim ()
                      | Some od -> begin
                          match od.payload with
                          | None -> claim ()
                          | Some pc -> begin
                              match decode_op_payload pc.raw with
                              | None -> claim ()
                              | Some (_op_enc, _digests) ->
                                  let indices =
                                    forced_bit_indices od ~var:my_var ~len
                                  in
                                  List.concat_map
                                    (fun i ->
                                      match bit_value od i with
                                      | Some true -> []
                                      | Some false ->
                                          [
                                            graph_violation commit [ od ]
                                              (Evidence.False_evidence_bit
                                                 {
                                                   op = op_id;
                                                   index = i;
                                                   witness = my_announce;
                                                 });
                                          ]
                                      | None -> claim ())
                                    indices
                            end
                        end)
                    consumers
                end
          end
      end
  end

(* Expected output length for an operator given its disclosed evidence
   bits: [None] = no route expected. *)
let expected_output_len op_enc ~nbits d =
  match Operator.decode op_enc with
  | Some Operator.Exists -> begin
      match bit_value d 1 with
      | Some true -> `Some_route
      | Some false -> `No_route
      | None -> `Unknown
    end
  | Some Operator.Min_path_length -> begin
      match first_set_bit d ~lo:1 ~hi:nbits with
      | Some l -> `Len l
      | None -> `No_route
    end
  | Some (Operator.Within_hops_of_min n) -> begin
      (* Promise 3: the exported route may be up to n hops beyond the
         committed minimum. *)
      match first_set_bit d ~lo:1 ~hi:nbits with
      | Some l -> `Len_between (l, l + n)
      | None -> `No_route
    end
  | Some Operator.Shorter_of -> begin
      let k = nbits / 2 in
      let m1 = first_set_bit d ~lo:1 ~hi:k in
      let m2 = first_set_bit d ~lo:(k + 1) ~hi:(2 * k) in
      match (m1, m2) with
      | None, None -> `No_route
      | Some l, None -> `Len l
      | None, Some l -> `Len l
      | Some l1, Some l2 -> `Len (if l1 < l2 then l1 else l2)
    end
  | _ -> `Unknown

let check_beneficiary keyring ~me ~commit ~disclosures ~export =
  let root =
    match commit.Wire.payload.Wire.cmt_commitments with
    | [ r ] -> r
    | _ -> ""
  in
  let claim () =
    [
      Evidence.Missing_export_claim { commit; openings = []; claimant = me };
    ]
  in
  if
    List.exists
      (fun d -> not (check_disclosure_integrity ~root d))
      disclosures
  then claim ()
  else begin
    let out_var = Promise.output_var me in
    match find_disclosure disclosures out_var with
    | None -> claim ()
    | Some out_d -> begin
        let out_routes =
          match out_d.payload with
          | None -> None
          | Some c -> decode_var_payload c.raw
        in
        let producer =
          match out_d.preds with
          | None -> None
          | Some c -> begin
              match decode_id_list c.raw with
              | Some [ op_id ] -> find_disclosure disclosures op_id
              | _ -> None
            end
        in
        match (out_routes, producer) with
        | None, _ | _, None -> claim ()
        | Some routes, Some op_d -> begin
            match op_d.payload with
            | None -> claim ()
            | Some pc -> begin
                match decode_op_payload pc.raw with
                | None -> claim ()
                | Some (op_enc, digests) -> begin
                    let issues = ref [] in
                    let violation ds offence =
                      issues := graph_violation commit ds offence :: !issues
                    in
                    let mismatch ds detail =
                      violation ds
                        (Evidence.Output_evidence_mismatch
                           { out_var; op = op_d.vertex; detail })
                    in
                    (* 1. Output value vs operator evidence. *)
                    (match
                       expected_output_len op_enc ~nbits:(List.length digests)
                         op_d
                     with
                    | `Unknown -> ()
                    | `No_route ->
                        if routes <> [] then
                          mismatch [ out_d; op_d ]
                            "evidence says no route, output is non-empty"
                    | `Some_route ->
                        if routes = [] then
                          mismatch [ out_d; op_d ]
                            "evidence says a route exists, output is empty"
                    | `Len l | `Len_between (l, _) ->
                        if routes = [] then
                          mismatch [ out_d; op_d ]
                            (Printf.sprintf
                               "evidence promises a route of length >= %d, \
                                output is empty"
                               l));
                    (* 2. Export consistency: the exported route must be the
                       (sole) committed output value. *)
                    (match export with
                    | None ->
                        if routes <> [] then issues := claim () @ !issues
                    | Some export -> begin
                        match
                          Proto_common.check_export_provenance keyring ~commit
                            ~beneficiary:me export
                        with
                        | Error e -> issues := e :: !issues
                        | Ok _ ->
                            let enc =
                              Bgp.Route.encode
                                export.Wire.payload.Wire.exp_route
                            in
                            if not (List.mem enc routes) then
                              violation [ out_d ]
                                (Evidence.Export_not_committed
                                   { out_var; export })
                            else begin
                              (* Length check against evidence. *)
                              match
                                expected_output_len op_enc
                                  ~nbits:(List.length digests) op_d
                              with
                              | `Len l ->
                                  if
                                    Bgp.Route.path_length
                                      export.Wire.payload.Wire.exp_route
                                    <> l
                                  then
                                    mismatch [ out_d; op_d ]
                                      (Printf.sprintf
                                         "exported route length %d does not \
                                          match evidence length %d"
                                         (Bgp.Route.path_length
                                            export.Wire.payload.Wire.exp_route)
                                         l)
                              | `Len_between (lo, hi) ->
                                  let len =
                                    Bgp.Route.path_length
                                      export.Wire.payload.Wire.exp_route
                                  in
                                  if len < lo || len > hi then
                                    mismatch [ out_d; op_d ]
                                      (Printf.sprintf
                                         "exported route length %d outside \
                                          the promised window [%d, %d]"
                                         len lo hi)
                              | _ -> ()
                            end
                      end);
                    List.rev !issues
                  end
              end
          end
      end
  end

(* ---- Third-party replay (used by Judge) --------------------------------- *)

let of_evidence_disclosure (gd : Evidence.graph_disclosure) =
  let comp =
    Option.map (fun (c : Evidence.graph_component) ->
        { raw = c.Evidence.gc_raw; opening = c.Evidence.gc_opening })
  in
  {
    vertex = gd.Evidence.gd_vertex;
    leaf = gd.Evidence.gd_leaf;
    proof = gd.Evidence.gd_proof;
    preds = comp gd.Evidence.gd_preds;
    succs = comp gd.Evidence.gd_succs;
    payload = comp gd.Evidence.gd_payload;
    bit_openings = gd.Evidence.gd_bits;
  }

let replay_offence keyring ~commit ~disclosures offence =
  let ds = List.map of_evidence_disclosure disclosures in
  let accused = commit.Wire.signer in
  let cp = commit.Wire.payload in
  let commit_ok =
    Wire.verify keyring ~encode:Wire.encode_commit commit
    && cp.Wire.cmt_scheme = scheme
  in
  match cp.Wire.cmt_commitments with
  | [ root ] when commit_ok ->
      let all_valid =
        List.for_all (check_disclosure_integrity ~root) ds
      in
      if not all_valid then false
      else begin
        match offence with
        | Evidence.Wrong_input_value { var; witness } -> begin
            Proto_common.valid_input keyring ~prover:accused
              ~epoch:cp.Wire.cmt_epoch ~prefix:cp.Wire.cmt_prefix witness
            &&
            match find_disclosure ds var with
            | None -> false
            | Some d -> begin
                match d.payload with
                | None -> false
                | Some c -> begin
                    match decode_var_payload c.raw with
                    | None -> false
                    | Some encs ->
                        not
                          (List.mem
                             (Bgp.Route.encode
                                witness.Wire.payload.Wire.ann_route)
                             encs)
                  end
              end
          end
        | Evidence.False_evidence_bit { op; index; witness } -> begin
            Proto_common.valid_input keyring ~prover:accused
              ~epoch:cp.Wire.cmt_epoch ~prefix:cp.Wire.cmt_prefix witness
            &&
            match find_disclosure ds op with
            | None -> false
            | Some od ->
                let len =
                  Bgp.Route.path_length witness.Wire.payload.Wire.ann_route
                in
                let var = Promise.input_var witness.Wire.signer in
                List.mem index (forced_bit_indices od ~var ~len)
                && bit_value od index = Some false
          end
        | Evidence.Output_evidence_mismatch { out_var; op; detail = _ } -> begin
            match (find_disclosure ds out_var, find_disclosure ds op) with
            | Some out_d, Some od -> begin
                match (out_d.payload, od.payload) with
                | Some oc, Some pc -> begin
                    match (decode_var_payload oc.raw, decode_op_payload pc.raw)
                    with
                    | Some routes, Some (op_enc, digests) -> begin
                        match
                          expected_output_len op_enc
                            ~nbits:(List.length digests) od
                        with
                        | `Unknown -> false
                        | `No_route -> routes <> []
                        | `Some_route | `Len _ | `Len_between _ -> routes = []
                      end
                    | _ -> false
                  end
                | _ -> false
              end
            | _ -> false
          end
        | Evidence.Export_not_committed { out_var; export } -> begin
            Wire.verify keyring ~encode:Wire.encode_export export
            && Bgp.Asn.equal export.Wire.signer accused
            && export.Wire.payload.Wire.exp_epoch = cp.Wire.cmt_epoch
            &&
            match find_disclosure ds out_var with
            | None -> false
            | Some d -> begin
                match d.payload with
                | None -> false
                | Some c -> begin
                    match decode_var_payload c.raw with
                    | None -> false
                    | Some routes ->
                        not
                          (List.mem
                             (Bgp.Route.encode
                                export.Wire.payload.Wire.exp_route)
                             routes)
                  end
              end
          end
      end
  | _ -> false

(* ---- Composite operators (§4 structural privacy) ------------------------- *)

let find_record ps id = List.assoc_opt id ps.ps_records

let composite_inner_root ps ~composite =
  Option.bind (find_record ps composite) (fun r ->
      Option.map (fun sub -> sub.sub_root) r.vr_inner)

let disclose_subtree sub ~alpha ~viewer =
  List.filter_map
    (fun (nid, r) ->
      let want comp = Access_control.permits alpha ~viewer nid comp in
      let preds_ok = want Access_control.Preds in
      let succs_ok = want Access_control.Succs in
      let payload_ok = want Access_control.Payload in
      if not (preds_ok || succs_ok || payload_ok) then None
      else begin
        match Prefix_tree.prove sub.sub_tree (Bitstring.of_id nid) with
        | None -> None
        | Some (leaf, proof) ->
            let comp raw opening = Some { raw; opening } in
            let bit_openings =
              if payload_ok && Array.length r.vr_bits > 0 then
                Array.to_list
                  (Array.mapi (fun i (_, o) -> (i + 1, o)) r.vr_bits)
              else []
            in
            Some
              {
                vertex = nid;
                leaf;
                proof;
                preds =
                  (if preds_ok then comp r.vr_preds_raw r.vr_preds_open
                   else None);
                succs =
                  (if succs_ok then comp r.vr_succs_raw r.vr_succs_open
                   else None);
                payload =
                  (if payload_ok then comp r.vr_payload_raw r.vr_payload_open
                   else None);
                bit_openings;
              }
      end)
    sub.sub_records

let disclose_composite ps ~alpha ~viewer ~composite =
  Option.bind (find_record ps composite) (fun r ->
      Option.map
        (fun sub -> (sub.sub_root, disclose_subtree sub ~alpha ~viewer))
        r.vr_inner)

let check_composite ~outer_root ~composite_disclosure ~inner_root ~inner =
  (* 1. The composite vertex itself authenticates against the outer tree and
     its payload commits to exactly [inner_root]. *)
  check_disclosure_integrity ~root:outer_root composite_disclosure
  && (match composite_disclosure.payload with
     | Some c -> decode_comp_payload c.raw = Some inner_root
     | None -> false)
  (* 2. Every inner disclosure authenticates against the inner root. *)
  && List.for_all (check_disclosure_integrity ~root:inner_root) inner
