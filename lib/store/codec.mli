(** Minimal binary record codec for store payloads: big-endian u32s,
    length-prefixed strings, booleans.  The reader is bounds-checked and
    raises the private {!Malformed} exception on any truncated or
    oversized field — callers in the recovery path catch it and treat the
    record as corrupt (the decoders exposed by the store and the engine
    never let it escape). *)

exception Malformed of string

val u32 : Buffer.t -> int -> unit
(** @raise Invalid_argument outside [0, 2^32). *)

val str : Buffer.t -> string -> unit
val bool_ : Buffer.t -> bool -> unit

type reader

val reader : string -> reader
val get_u32 : reader -> int
val get_str : reader -> string
val get_bool : reader -> bool
val at_end : reader -> bool

val decode : string -> (reader -> 'a) -> ('a, string) result
(** Run a parser over a payload, turning {!Malformed} (and any leftover
    trailing bytes) into [Error]. *)
