(** Durable epoch store: an append-only, CRC-framed write-ahead journal
    plus periodic full snapshots, living together in one directory.

    {2 On-disk format}

    The journal ([journal.pvrj]) is a sequence of frames:

    {v
    "PVRJ" | version u8 | kind u8 | len u32be | payload | crc32 u32be
    v}

    where the CRC covers everything from the magic through the payload.
    Frames are appended with a single [write] followed by an optional
    [fsync], so a crash can only tear the {e last} frame.  Snapshots are
    single-frame files ([snap-<epoch>.pvrs], magic ["PVRS"]) written via
    {!Atomic_file.write} — they are either entirely present or absent.

    {2 Recovery contract}

    {!recover} never raises on corrupt input.  It walks the journal from
    the start, keeps the longest valid prefix of frames, truncates the
    file back to that prefix (torn or mangled tails are dropped with a
    warning on [stderr]), and returns every CRC-valid snapshot newest
    first.  Corrupt snapshots are skipped, falling back to older ones.
    Every dropped frame or snapshot bumps the ["store.corrupt.dropped"]
    counter; every replayed frame bumps ["store.replay.frames"]; appends
    account bytes in ["store.journal.bytes"] and fsyncs in
    ["store.fsync.count"]. *)

type t
(** An open store, positioned for appending. *)

val open_ : ?fsync:bool -> dir:string -> unit -> t
(** Create [dir] if needed and open the journal for appending.  [fsync]
    (default [true]) syncs the journal after every append and snapshots
    on rename; [false] keeps the framing (and hence torn-write recovery)
    but skips durability barriers. *)

val append : t -> string -> unit
(** Append one journal frame with the given payload and flush it
    (+fsync when enabled). *)

val append' : t -> string -> int
(** Like {!append}, but return the journal byte offset the frame's header
    starts at.  The offset is stable for the life of the journal (recovery
    only ever truncates the tail), so it can be stored and later passed to
    {!read_frame_at} — this is the paging primitive the engine's spill
    layer builds on. *)

val read_frame_at : dir:string -> off:int -> (string, string) result
(** Read back the single frame whose header starts at byte [off] of the
    journal, re-validating magic, version, kind, length and CRC.  Returns
    the payload, or [Error reason] for any torn, mangled, or out-of-range
    frame.  Never raises.  Each successful read bumps
    ["store.frame.reads"]. *)

val write_snapshot : t -> epoch:int -> string -> unit
(** Atomically (re)write the snapshot file for [epoch]. *)

val close : t -> unit

type recovery = {
  rc_snapshots : (int * string) list;
      (** CRC-valid snapshot payloads, newest epoch first *)
  rc_frames : string list;  (** valid journal frame payloads, append order *)
  rc_dropped : int;  (** corrupt frames + snapshot files dropped *)
  rc_truncated_bytes : int;  (** journal bytes cut off the tail *)
}

type fold_end = {
  fe_next : int;  (** offset just past the last valid frame *)
  fe_frames : int;  (** frames delivered to [f] *)
  fe_error : string option;
      (** why the walk stopped before EOF ([None] = clean end) *)
}

val fold_frames :
  ?from:int ->
  dir:string ->
  init:'a ->
  f:('a -> off:int -> string -> 'a) ->
  unit ->
  'a * fold_end
(** Stream the journal's valid frame prefix without ever materializing the
    file as one string: frames are parsed out of bounded read-ahead chunks
    and handed to [f] with the byte offset their header starts at.  The
    walk begins at [from] (default 0, which must be a frame boundary) and
    stops at EOF or at the first invalid frame, whose offset and reason
    come back in [fold_end].  Never raises and never mutates the journal —
    both {!recover} (which adds truncation) and the query-plane index
    builder are built on it.  A missing journal is an empty, clean walk. *)

val recover : ?quiet:bool -> dir:string -> unit -> recovery
(** Read back everything valid in [dir]; truncate the journal to its
    valid prefix.  Never raises: unreadable files and mangled bytes
    degrade to an empty/shorter recovery.  [quiet] suppresses the
    [stderr] warnings. *)

val reset : dir:string -> unit
(** Delete the journal and all snapshots in [dir] (fresh-start). *)

val journal_path : dir:string -> string
val snapshot_path : dir:string -> epoch:int -> string
