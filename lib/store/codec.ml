exception Malformed of string

let u32 buf n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Codec.u32: out of range";
  Buffer.add_string buf (Pvr_crypto.Bytes_util.be32 n)

let str buf s =
  u32 buf (String.length s);
  Buffer.add_string buf s

let bool_ buf b = Buffer.add_char buf (if b then '\x01' else '\x00')

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }
let remaining r = String.length r.src - r.pos

let need r n what =
  if remaining r < n then
    raise (Malformed (Printf.sprintf "truncated %s at offset %d" what r.pos))

let get_u32 r =
  need r 4 "u32";
  let v = Pvr_crypto.Bytes_util.read_be32 r.src r.pos in
  r.pos <- r.pos + 4;
  v

let get_str r =
  let n = get_u32 r in
  need r n "string";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_bool r =
  need r 1 "bool";
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\x00' -> false
  | '\x01' -> true
  | _ -> raise (Malformed "bad bool")

let at_end r = remaining r = 0

let decode payload parse =
  let r = reader payload in
  match parse r with
  | v -> if at_end r then Ok v else Error "trailing bytes after record"
  | exception Malformed m -> Error m
