let c_fsync = Pvr_obs.counter "store.fsync.count"

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          try
            Unix.fsync fd;
            Pvr_obs.incr c_fsync
          with Unix.Unix_error _ -> ())

let write ?(fsync = true) path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp"
  in
  match
    let oc = Out_channel.open_bin tmp in
    Fun.protect
      ~finally:(fun () -> Out_channel.close oc)
      (fun () ->
        Out_channel.output_string oc contents;
        Out_channel.flush oc;
        if fsync then begin
          Unix.fsync (Unix.descr_of_out_channel oc);
          Pvr_obs.incr c_fsync
        end)
  with
  | () ->
      Unix.rename tmp path;
      if fsync then fsync_dir dir
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
