(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

    Used to frame journal and snapshot records on disk: a torn or
    bit-flipped frame fails its checksum and is dropped by recovery
    instead of being replayed.  This is an integrity code against
    accidental corruption, not an authenticator — the store is local
    state, the hash-chained report digest is the tamper-evident part. *)

val digest : string -> int
(** One-shot CRC of the whole string. *)

val update : int -> string -> int
(** [update crc s] extends a running CRC: [update (update 0 a) b =
    digest (a ^ b)] and [digest s = update 0 s]. *)
