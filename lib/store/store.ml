module BU = Pvr_crypto.Bytes_util

let c_fsync = Pvr_obs.counter "store.fsync.count"
let c_journal_bytes = Pvr_obs.counter "store.journal.bytes"
let c_journal_appends = Pvr_obs.counter "store.journal.appends"
let c_snapshot_writes = Pvr_obs.counter "store.snapshot.writes"
let c_replay_frames = Pvr_obs.counter "store.replay.frames"
let c_corrupt_dropped = Pvr_obs.counter "store.corrupt.dropped"

let journal_magic = "PVRJ"
let snapshot_magic = "PVRS"
let version = 1
let kind_epoch = 1
let kind_snapshot = 2

(* magic(4) + version(1) + kind(1) + len(4) ... payload ... crc(4) *)
let header_len = 10
let max_payload = 1 lsl 28

let journal_path ~dir = Filename.concat dir "journal.pvrj"

let snapshot_path ~dir ~epoch =
  Filename.concat dir (Printf.sprintf "snap-%010d.pvrs" epoch)

let frame ~magic ~kind payload =
  let buf = Buffer.create (header_len + String.length payload + 4) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr kind);
  Buffer.add_string buf (BU.be32 (String.length payload));
  Buffer.add_string buf payload;
  let crc = Crc32.digest (Buffer.contents buf) in
  Buffer.add_string buf (BU.be32 crc);
  Buffer.contents buf

(* Parse the frame starting at [off]; [Ok (payload, next_off)] or the
   reason it is invalid.  Never raises. *)
let parse_frame ~magic src off =
  let total = String.length src in
  if total - off < header_len + 4 then Error "short frame"
  else if String.sub src off 4 <> magic then Error "bad magic"
  else if Char.code src.[off + 4] <> version then Error "bad version"
  else begin
    let kind = Char.code src.[off + 5] in
    if kind <> kind_epoch && kind <> kind_snapshot then Error "bad kind"
    else begin
      let len = BU.read_be32 src (off + 6) in
      if len > max_payload || total - off < header_len + len + 4 then
        Error "truncated payload"
      else begin
        let crc = BU.read_be32 src (off + header_len + len) in
        if Crc32.digest (String.sub src off (header_len + len)) <> crc then
          Error "crc mismatch"
        else
          Ok (String.sub src (off + header_len) len, off + header_len + len + 4)
      end
    end
  end

type t = { dir : string; fsync : bool; mutable oc : Out_channel.t option }

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg ("Store.open_: not a directory: " ^ dir)

let open_ ?(fsync = true) ~dir () =
  ensure_dir dir;
  let oc =
    Out_channel.open_gen
      [ Open_wronly; Open_append; Open_creat; Open_binary ]
      0o644 (journal_path ~dir)
  in
  { dir; fsync; oc = Some oc }

let channel t =
  match t.oc with
  | Some oc -> oc
  | None -> invalid_arg "Store: closed"

let append t payload =
  let oc = channel t in
  let fr = frame ~magic:journal_magic ~kind:kind_epoch payload in
  Out_channel.output_string oc fr;
  Out_channel.flush oc;
  if t.fsync then begin
    Unix.fsync (Unix.descr_of_out_channel oc);
    Pvr_obs.incr c_fsync
  end;
  Pvr_obs.incr c_journal_appends;
  Pvr_obs.add c_journal_bytes (String.length fr)

let write_snapshot t ~epoch payload =
  let fr = frame ~magic:snapshot_magic ~kind:kind_snapshot payload in
  Atomic_file.write ~fsync:t.fsync (snapshot_path ~dir:t.dir ~epoch) fr;
  Pvr_obs.incr c_snapshot_writes

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      t.oc <- None;
      Out_channel.close oc

type recovery = {
  rc_snapshots : (int * string) list;
  rc_frames : string list;
  rc_dropped : int;
  rc_truncated_bytes : int;
}

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some s
  | exception (Sys_error _ | Unix.Unix_error _) -> None

let warn quiet fmt =
  Printf.ksprintf
    (fun msg -> if not quiet then Printf.eprintf "store: %s\n%!" msg)
    fmt

(* Snapshot file names carry the epoch; parse it back, rejecting strays. *)
let snapshot_epoch_of_name name =
  if
    String.length name = 20
    && String.sub name 0 5 = "snap-"
    && Filename.check_suffix name ".pvrs"
  then int_of_string_opt (String.sub name 5 10)
  else None

let recover ?(quiet = false) ~dir () =
  let dropped = ref 0 in
  let frames = ref [] in
  let truncated = ref 0 in
  let jpath = journal_path ~dir in
  (match read_file jpath with
  | None -> ()
  | Some src ->
      let total = String.length src in
      let off = ref 0 in
      let stop = ref false in
      while not !stop do
        if !off >= total then stop := true
        else
          match parse_frame ~magic:journal_magic src !off with
          | Ok (payload, next) ->
              frames := payload :: !frames;
              Pvr_obs.incr c_replay_frames;
              off := next
          | Error reason ->
              incr dropped;
              Pvr_obs.incr c_corrupt_dropped;
              truncated := total - !off;
              warn quiet
                "journal %s: %s at offset %d; truncating %d byte(s)" jpath
                reason !off !truncated;
              stop := true
      done;
      if !truncated > 0 then begin
        (* Truncate-and-warn: cut the torn/corrupt tail so the next append
           starts at a clean frame boundary. *)
        match Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 with
        | exception Unix.Unix_error _ -> ()
        | fd ->
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                try Unix.ftruncate fd !off with Unix.Unix_error _ -> ())
      end);
  let snapshots =
    (match Sys.readdir dir with
    | names -> Array.to_list names
    | exception Sys_error _ -> [])
    |> List.filter_map (fun name ->
           Option.map (fun e -> (e, name)) (snapshot_epoch_of_name name))
    |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
    |> List.filter_map (fun (epoch, name) ->
           match read_file (Filename.concat dir name) with
           | None ->
               incr dropped;
               Pvr_obs.incr c_corrupt_dropped;
               warn quiet "snapshot %s: unreadable; skipping" name;
               None
           | Some src -> (
               match parse_frame ~magic:snapshot_magic src 0 with
               | Ok (payload, next) when next = String.length src ->
                   Some (epoch, payload)
               | Ok _ | Error _ ->
                   incr dropped;
                   Pvr_obs.incr c_corrupt_dropped;
                   warn quiet "snapshot %s: corrupt; skipping" name;
                   None))
  in
  {
    rc_snapshots = snapshots;
    rc_frames = List.rev !frames;
    rc_dropped = !dropped;
    rc_truncated_bytes = !truncated;
  }

let reset ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name ->
        if name = "journal.pvrj" || snapshot_epoch_of_name name <> None then
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir)
