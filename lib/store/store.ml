module BU = Pvr_crypto.Bytes_util

let c_fsync = Pvr_obs.counter "store.fsync.count"
let c_journal_bytes = Pvr_obs.counter "store.journal.bytes"
let c_journal_appends = Pvr_obs.counter "store.journal.appends"
let c_snapshot_writes = Pvr_obs.counter "store.snapshot.writes"
let c_replay_frames = Pvr_obs.counter "store.replay.frames"
let c_corrupt_dropped = Pvr_obs.counter "store.corrupt.dropped"
let c_frame_reads = Pvr_obs.counter "store.frame.reads"

let journal_magic = "PVRJ"
let snapshot_magic = "PVRS"
let version = 1
let kind_epoch = 1
let kind_snapshot = 2

(* magic(4) + version(1) + kind(1) + len(4) ... payload ... crc(4) *)
let header_len = 10
let max_payload = 1 lsl 28

let journal_path ~dir = Filename.concat dir "journal.pvrj"

let snapshot_path ~dir ~epoch =
  Filename.concat dir (Printf.sprintf "snap-%010d.pvrs" epoch)

let frame ~magic ~kind payload =
  let buf = Buffer.create (header_len + String.length payload + 4) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr kind);
  Buffer.add_string buf (BU.be32 (String.length payload));
  Buffer.add_string buf payload;
  let crc = Crc32.digest (Buffer.contents buf) in
  Buffer.add_string buf (BU.be32 crc);
  Buffer.contents buf

(* Parse the frame starting at [off]; [Ok (payload, next_off)] or the
   reason it is invalid.  Never raises. *)
let parse_frame ~magic src off =
  let total = String.length src in
  if total - off < header_len + 4 then Error "short frame"
  else if String.sub src off 4 <> magic then Error "bad magic"
  else if Char.code src.[off + 4] <> version then Error "bad version"
  else begin
    let kind = Char.code src.[off + 5] in
    if kind <> kind_epoch && kind <> kind_snapshot then Error "bad kind"
    else begin
      let len = BU.read_be32 src (off + 6) in
      if len > max_payload || total - off < header_len + len + 4 then
        Error "truncated payload"
      else begin
        let crc = BU.read_be32 src (off + header_len + len) in
        if Crc32.digest (String.sub src off (header_len + len)) <> crc then
          Error "crc mismatch"
        else
          Ok (String.sub src (off + header_len) len, off + header_len + len + 4)
      end
    end
  end

type t = {
  dir : string;
  fsync : bool;
  mutable oc : Out_channel.t option;
  mutable pos : int;
}

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg ("Store.open_: not a directory: " ^ dir)

let open_ ?(fsync = true) ~dir () =
  ensure_dir dir;
  let oc =
    Out_channel.open_gen
      [ Open_wronly; Open_append; Open_creat; Open_binary ]
      0o644 (journal_path ~dir)
  in
  let pos =
    match Unix.stat (journal_path ~dir) with
    | { Unix.st_size; _ } -> st_size
    | exception Unix.Unix_error _ -> 0
  in
  { dir; fsync; oc = Some oc; pos }

let channel t =
  match t.oc with
  | Some oc -> oc
  | None -> invalid_arg "Store: closed"

(* Append one frame and return the journal byte offset its header starts
   at — the stable address pages are later read back from. *)
let append' t payload =
  let oc = channel t in
  let fr = frame ~magic:journal_magic ~kind:kind_epoch payload in
  let off = t.pos in
  Out_channel.output_string oc fr;
  Out_channel.flush oc;
  if t.fsync then begin
    Unix.fsync (Unix.descr_of_out_channel oc);
    Pvr_obs.incr c_fsync
  end;
  t.pos <- t.pos + String.length fr;
  Pvr_obs.incr c_journal_appends;
  Pvr_obs.add c_journal_bytes (String.length fr);
  off

let append t payload = ignore (append' t payload)

(* Random-access read of the single frame whose header starts at [off].
   Same validation as the streaming walk (magic/version/kind/len/CRC);
   any mangled byte comes back as [Error], never an exception or a torn
   payload — callers treat a failed page read as a cache miss. *)
let read_frame_at ~dir ~off =
  match In_channel.open_bin (journal_path ~dir) with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () ->
          match In_channel.seek ic (Int64.of_int off) with
          | exception Sys_error e -> Error e
          | () -> (
              let hdr = Bytes.create header_len in
              match In_channel.really_input ic hdr 0 header_len with
              | None -> Error "short frame"
              | Some () ->
                  let hdr = Bytes.to_string hdr in
                  let len = BU.read_be32 hdr 6 in
                  if len > max_payload then Error "truncated payload"
                  else
                    let rest = Bytes.create (len + 4) in
                    (match In_channel.really_input ic rest 0 (len + 4) with
                    | None -> Error "short frame"
                    | Some () -> (
                        let src = hdr ^ Bytes.to_string rest in
                        match parse_frame ~magic:journal_magic src 0 with
                        | Ok (payload, _) ->
                            Pvr_obs.incr c_frame_reads;
                            Ok payload
                        | Error _ as e -> e))))

let write_snapshot t ~epoch payload =
  let fr = frame ~magic:snapshot_magic ~kind:kind_snapshot payload in
  Atomic_file.write ~fsync:t.fsync (snapshot_path ~dir:t.dir ~epoch) fr;
  Pvr_obs.incr c_snapshot_writes

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      t.oc <- None;
      Out_channel.close oc

type recovery = {
  rc_snapshots : (int * string) list;
  rc_frames : string list;
  rc_dropped : int;
  rc_truncated_bytes : int;
}

type fold_end = { fe_next : int; fe_frames : int; fe_error : string option }

(* Streaming frame walk: the journal is read in bounded chunks and only one
   frame (plus read-ahead) is ever resident, so a multi-gigabyte journal
   never materializes as a single string.  The walk stops at the first
   invalid frame — same longest-valid-prefix contract as [recover], which
   is built on top of this. *)
let fold_frames ?(from = 0) ~dir ~init ~f () =
  let clean = { fe_next = from; fe_frames = 0; fe_error = None } in
  match In_channel.open_bin (journal_path ~dir) with
  | exception Sys_error _ -> (init, clean)
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () ->
          In_channel.seek ic (Int64.of_int from);
          let chunk = 1 lsl 16 in
          let tmp = Bytes.create chunk in
          let src = ref "" in
          let start = ref 0 in
          let eof = ref false in
          let avail () = String.length !src - !start in
          let refill need =
            if avail () < need && not !eof then begin
              let b = Buffer.create (max chunk need) in
              Buffer.add_substring b !src !start (avail ());
              while (not !eof) && Buffer.length b < need do
                let n = In_channel.input ic tmp 0 chunk in
                if n = 0 then eof := true else Buffer.add_subbytes b tmp 0 n
              done;
              src := Buffer.contents b;
              start := 0
            end
          in
          let acc = ref init in
          let off = ref from in
          let frames = ref 0 in
          let stop = ref None in
          let running = ref true in
          while !running do
            refill (header_len + 4);
            if avail () = 0 then running := false
            else begin
              (* Read the declared length first so the refill below asks for
                 exactly one frame; a bogus header falls through to
                 [parse_frame], which names the reason. *)
              (if avail () >= header_len then
                 let len = BU.read_be32 !src (!start + 6) in
                 if len <= max_payload then refill (header_len + len + 4));
              match parse_frame ~magic:journal_magic !src !start with
              | Ok (payload, next) ->
                  acc := f !acc ~off:!off payload;
                  incr frames;
                  off := !off + (next - !start);
                  start := next
              | Error reason ->
                  stop := Some reason;
                  running := false
            end
          done;
          (!acc, { fe_next = !off; fe_frames = !frames; fe_error = !stop }))

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some s
  | exception (Sys_error _ | Unix.Unix_error _) -> None

let warn quiet fmt =
  Printf.ksprintf
    (fun msg -> if not quiet then Printf.eprintf "store: %s\n%!" msg)
    fmt

(* Snapshot file names carry the epoch; parse it back, rejecting strays. *)
let snapshot_epoch_of_name name =
  if
    String.length name = 20
    && String.sub name 0 5 = "snap-"
    && Filename.check_suffix name ".pvrs"
  then int_of_string_opt (String.sub name 5 10)
  else None

let recover ?(quiet = false) ~dir () =
  let dropped = ref 0 in
  let truncated = ref 0 in
  let jpath = journal_path ~dir in
  let frames, fe =
    fold_frames ~dir ~init:[]
      ~f:(fun acc ~off:_ payload ->
        Pvr_obs.incr c_replay_frames;
        payload :: acc)
      ()
  in
  (match fe.fe_error with
  | None -> ()
  | Some reason ->
      let total =
        match Unix.stat jpath with
        | { Unix.st_size; _ } -> st_size
        | exception Unix.Unix_error _ -> fe.fe_next
      in
      incr dropped;
      Pvr_obs.incr c_corrupt_dropped;
      truncated := total - fe.fe_next;
      warn quiet "journal %s: %s at offset %d; truncating %d byte(s)" jpath
        reason fe.fe_next !truncated;
      if !truncated > 0 then begin
        (* Truncate-and-warn: cut the torn/corrupt tail so the next append
           starts at a clean frame boundary. *)
        match Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 with
        | exception Unix.Unix_error _ -> ()
        | fd ->
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                try Unix.ftruncate fd fe.fe_next with Unix.Unix_error _ -> ())
      end);
  let frames = ref frames in
  let snapshots =
    (match Sys.readdir dir with
    | names -> Array.to_list names
    | exception Sys_error _ -> [])
    |> List.filter_map (fun name ->
           Option.map (fun e -> (e, name)) (snapshot_epoch_of_name name))
    |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
    |> List.filter_map (fun (epoch, name) ->
           match read_file (Filename.concat dir name) with
           | None ->
               incr dropped;
               Pvr_obs.incr c_corrupt_dropped;
               warn quiet "snapshot %s: unreadable; skipping" name;
               None
           | Some src -> (
               match parse_frame ~magic:snapshot_magic src 0 with
               | Ok (payload, next) when next = String.length src ->
                   Some (epoch, payload)
               | Ok _ | Error _ ->
                   incr dropped;
                   Pvr_obs.incr c_corrupt_dropped;
                   warn quiet "snapshot %s: corrupt; skipping" name;
                   None))
  in
  {
    rc_snapshots = snapshots;
    rc_frames = List.rev !frames;
    rc_dropped = !dropped;
    rc_truncated_bytes = !truncated;
  }

let reset ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name ->
        if name = "journal.pvrj" || snapshot_epoch_of_name name <> None then
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir)
