(** Crash-safe whole-file writes: temp file in the target directory,
    write, [fsync], [rename] over the destination, then [fsync] the
    directory.  A crash at any point leaves either the old file or the
    new one — never a half-written mix.  POSIX rename atomicity is the
    only primitive relied on.

    Used for engine snapshots, [BENCH_pvr.json] and engine report files,
    so a crash during output can never leave a torn artifact behind. *)

val write : ?fsync:bool -> string -> string -> unit
(** [write path contents] atomically replaces [path] with [contents].
    [fsync] (default [true]) forces the data and the directory entry to
    stable storage before returning; [false] keeps the atomicity (rename)
    but skips the durability barrier — appropriate for tests and
    benchmark artifacts.  Raises [Sys_error]/[Unix.Unix_error] on I/O
    failure (the temp file is removed on the error path). *)

val fsync_dir : string -> unit
(** Best-effort [fsync] of a directory fd (no-op on failure: some
    filesystems refuse directory syncs). *)
