let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Conditioning (initial and final xor with 0xFFFFFFFF) is folded into
   [update] so that running CRCs compose: update (update 0 a) b over the
   conditioned value equals digest (a ^ b). *)
let update crc s =
  let t = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch -> crc := t.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF

let digest s = update 0 s
