module Asn = Pvr_bgp.Asn
module Drbg = Pvr_crypto.Drbg

type policy = {
  drop : float;
  duplicate : float;
  delay_min : int;
  delay_max : int;
  reorder : bool;
  partition : bool;
  heal_at : int option;
}

let perfect =
  {
    drop = 0.0;
    duplicate = 0.0;
    delay_min = 0;
    delay_max = 0;
    reorder = false;
    partition = false;
    heal_at = None;
  }

let faulty ?(drop = 0.0) ?(duplicate = 0.0) ?(delay_min = 0) ?(delay_max = 0)
    ?(reorder = false) ?(partition = false) ?heal_at () =
  { drop; duplicate; delay_min; delay_max; reorder; partition; heal_at }

type stats = {
  mutable sends : int;
  mutable drops : int;
  mutable duplicates : int;
  mutable deliveries : int;
  mutable partition_drops : int;
}

(* An in-flight message: due tick, send sequence (the deterministic
   tie-break within a tick), endpoints, payload, and the tick it was
   offered (for the delay histogram). *)
type 'm flight = {
  due : int;
  fseq : int;
  fsrc : Asn.t;
  fdst : Asn.t;
  fmsg : 'm;
  sent_at : int;
}

type 'm t = {
  rng : Drbg.t;
  policy : policy;
  links : ((Asn.t * Asn.t) * policy) list;
  mutable time : int;
  mutable seq : int;
  mutable queue : 'm flight list;
  st : stats;
}

let obs_sends = Pvr_obs.counter "net.sends"
let obs_drops = Pvr_obs.counter "net.drops"
let obs_duplicates = Pvr_obs.counter "net.duplicates"
let obs_deliveries = Pvr_obs.counter "net.deliveries"
let obs_partition_drops = Pvr_obs.counter "net.partition_drops"
let obs_retries = Pvr_obs.counter "net.retries"
let obs_timeouts = Pvr_obs.counter "net.timeouts"
let obs_delay = Pvr_obs.histogram "net.delay_ticks"

let create ?(policy = perfect) ?(links = []) ~rng () =
  {
    rng;
    policy;
    links;
    time = 0;
    seq = 0;
    queue = [];
    st = { sends = 0; drops = 0; duplicates = 0; deliveries = 0;
           partition_drops = 0 };
  }

let now t = t.time
let pending t = List.length t.queue
let stats t = t.st

let link_policy t src dst =
  let same (a, b) =
    (Asn.equal a src && Asn.equal b dst) || (Asn.equal a dst && Asn.equal b src)
  in
  match List.find_opt (fun (pair, _) -> same pair) t.links with
  | Some (_, p) -> p
  | None -> t.policy

(* Bernoulli draw; consumes the DRBG only for non-trivial rates so a
   perfect network is draw-free (and hence seed-stream neutral). *)
let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else Drbg.uniform_int t.rng 1_000_000 < int_of_float (p *. 1_000_000.0)

let draw_delay t (p : policy) =
  if p.delay_max <= p.delay_min then max 0 p.delay_min
  else p.delay_min + Drbg.uniform_int t.rng (p.delay_max - p.delay_min + 1)

let enqueue t ~src ~dst ~delay msg =
  let fl =
    {
      due = t.time + 1 + delay;
      fseq = t.seq;
      fsrc = src;
      fdst = dst;
      fmsg = msg;
      sent_at = t.time;
    }
  in
  t.seq <- t.seq + 1;
  t.queue <- fl :: t.queue

let send t ~src ~dst msg =
  t.st.sends <- t.st.sends + 1;
  Pvr_obs.incr obs_sends;
  let p = link_policy t src dst in
  let partitioned =
    p.partition
    && match p.heal_at with None -> true | Some h -> t.time < h
  in
  if partitioned then begin
    t.st.partition_drops <- t.st.partition_drops + 1;
    Pvr_obs.incr obs_partition_drops
  end
  else if chance t p.drop then begin
    t.st.drops <- t.st.drops + 1;
    Pvr_obs.incr obs_drops
  end
  else begin
    enqueue t ~src ~dst ~delay:(draw_delay t p) msg;
    if chance t p.duplicate then begin
      t.st.duplicates <- t.st.duplicates + 1;
      Pvr_obs.incr obs_duplicates;
      enqueue t ~src ~dst ~delay:(draw_delay t p) msg
    end
  end

let tick t =
  t.time <- t.time + 1;
  let due, later = List.partition (fun fl -> fl.due <= t.time) t.queue in
  t.queue <- later;
  let due = List.sort (fun a b -> compare a.fseq b.fseq) due in
  let shuffled =
    if List.exists (fun fl -> (link_policy t fl.fsrc fl.fdst).reorder) due
       && List.length due > 1
    then begin
      let arr = Array.of_list due in
      Drbg.shuffle t.rng arr;
      Array.to_list arr
    end
    else due
  in
  List.map
    (fun fl ->
      t.st.deliveries <- t.st.deliveries + 1;
      Pvr_obs.incr obs_deliveries;
      Pvr_obs.observe obs_delay (float_of_int (t.time - fl.sent_at));
      (fl.fsrc, fl.fdst, fl.fmsg))
    shuffled

let run ?(max_ticks = 1000) t ~handler () =
  let start = t.time in
  while t.queue <> [] && t.time - start < max_ticks do
    List.iter (fun (src, dst, msg) -> handler ~src ~dst msg) (tick t)
  done;
  t.time - start

(* ---- Bounded-retry reliable channel -------------------------------------- *)

module Reliable = struct
  let transport_send = send
  let transport_tick = tick

  type 'm envelope =
    | Data of { seq : int; dsrc : Asn.t; ddst : Asn.t; body : 'm }
    | Ack of { seq : int }

  type 'm entry = {
    e_src : Asn.t;
    e_dst : Asn.t;
    e_body : 'm;
    mutable last_sent : int;
    mutable attempts : int;  (* retransmissions performed *)
  }

  type 'm conn = {
    net : 'm envelope t;
    interval : int;
    budget : int;
    outstanding : (int, 'm entry) Hashtbl.t;
    acked_log : (Asn.t * Asn.t * 'm, unit) Hashtbl.t;
    mutable next_seq : int;
    mutable n_data_sends : int;
    mutable n_retries : int;
    mutable n_failures : int;
  }

  let create ?(interval = 2) ?(budget = 3) net =
    {
      net;
      interval = max 1 interval;
      budget = max 0 budget;
      outstanding = Hashtbl.create 16;
      acked_log = Hashtbl.create 16;
      next_seq = 0;
      n_data_sends = 0;
      n_retries = 0;
      n_failures = 0;
    }

  let net c = c.net
  let data_sends c = c.n_data_sends
  let retries c = c.n_retries
  let failures c = c.n_failures

  let send c ~src ~dst body =
    let seq = c.next_seq in
    c.next_seq <- seq + 1;
    Hashtbl.replace c.outstanding seq
      { e_src = src; e_dst = dst; e_body = body; last_sent = now c.net;
        attempts = 0 };
    c.n_data_sends <- c.n_data_sends + 1;
    transport_send c.net ~src ~dst (Data { seq; dsrc = src; ddst = dst; body })

  let acked c ~src ~dst body = Hashtbl.mem c.acked_log (src, dst, body)

  (* One transport tick: deliver data to the handler (acking it), absorb
     acks, then retransmit or abandon overdue sends in sequence order so
     the DRBG draw order is deterministic. *)
  let step c ~handler =
    let delivered = transport_tick c.net in
    List.iter
      (fun (_, _, env) ->
        match env with
        | Ack { seq } -> begin
            match Hashtbl.find_opt c.outstanding seq with
            | Some e ->
                Hashtbl.replace c.acked_log (e.e_src, e.e_dst, e.e_body) ();
                Hashtbl.remove c.outstanding seq
            | None -> ()
          end
        | Data { seq; dsrc; ddst; body } ->
            transport_send c.net ~src:ddst ~dst:dsrc (Ack { seq });
            handler ~src:dsrc ~dst:ddst body)
      delivered;
    let due =
      Hashtbl.fold
        (fun seq e acc ->
          if now c.net - e.last_sent >= c.interval then (seq, e) :: acc
          else acc)
        c.outstanding []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (seq, e) ->
        if e.attempts >= c.budget then begin
          c.n_failures <- c.n_failures + 1;
          Pvr_obs.incr obs_timeouts;
          Hashtbl.remove c.outstanding seq
        end
        else begin
          e.attempts <- e.attempts + 1;
          e.last_sent <- now c.net;
          c.n_retries <- c.n_retries + 1;
          Pvr_obs.incr obs_retries;
          c.n_data_sends <- c.n_data_sends + 1;
          transport_send c.net ~src:e.e_src ~dst:e.e_dst
            (Data { seq; dsrc = e.e_src; ddst = e.e_dst; body = e.e_body })
        end)
      due

  let run ?(max_ticks = 1000) c ~handler () =
    let start = now c.net in
    while
      (pending c.net > 0 || Hashtbl.length c.outstanding > 0)
      && now c.net - start < max_ticks
    do
      step c ~handler
    done;
    now c.net - start
end

(* ---- Byte mangling --------------------------------------------------------- *)

module Fuzz = struct
  let mutate rng s =
    let n = String.length s in
    if n = 0 then String.make (Drbg.uniform_int rng 8) '\x00'
    else
      match Drbg.uniform_int rng 5 with
      | 0 ->
          (* truncate *)
          String.sub s 0 (Drbg.uniform_int rng n)
      | 1 ->
          (* flip one byte *)
          let i = Drbg.uniform_int rng n in
          String.mapi
            (fun j c ->
              if j = i then Char.chr (Char.code c lxor (1 + Drbg.uniform_int rng 255))
              else c)
            s
      | 2 ->
          (* garble a 4-byte window: length prefixes live here *)
          let i = Drbg.uniform_int rng n in
          let junk = Drbg.generate rng 4 in
          String.init n (fun j ->
              if j >= i && j < i + 4 && j - i < 4 then junk.[j - i] else s.[j])
      | 3 ->
          (* splice two halves of itself *)
          let i = Drbg.uniform_int rng (n + 1) in
          String.sub s i (n - i) ^ String.sub s 0 i
      | _ ->
          (* append trailing junk *)
          s ^ Drbg.generate rng (1 + Drbg.uniform_int rng 8)

  let mangle rng s =
    let passes = 1 + Drbg.uniform_int rng 4 in
    let rec go k s = if k = 0 then s else go (k - 1) (mutate rng s) in
    go passes s
end
