(** Deterministic fault-injecting message transport.

    The paper's threat model (§3) assumes "an unknown subset of the
    networks is Byzantine and can behave arbitrarily" — and the network
    between them is no friendlier.  This module simulates a
    message-passing transport whose per-link faults (drop, duplicate,
    delay, reorder, partition) are drawn from a seeded
    {!Pvr_crypto.Drbg}, so a whole faulty round is exactly reproducible
    from its seed: same seed, same byte-identical outcome.

    Time is a tick counter.  A send enqueues the message with a delivery
    tick at least one ahead of now; {!tick} advances the clock and hands
    back what arrives.  Nothing here knows about PVR messages — ['m] is
    whatever the protocol layer speaks — so the same transport carries
    gossip digests, protocol phases, and test traffic.

    Fault decisions are made {e at send time}, in send order, each
    consuming DRBG draws only when the corresponding fault rate is
    non-zero; a [perfect] network never touches the generator. *)

type policy = {
  drop : float;  (** per-message loss probability, [0..1] *)
  duplicate : float;
      (** probability a delivered message is delivered twice (the copy
          draws its own delay) *)
  delay_min : int;  (** extra delivery delay, uniform in [delay_min..delay_max] ticks *)
  delay_max : int;
  reorder : bool;
      (** shuffle same-tick deliveries instead of preserving send order *)
  partition : bool;  (** link blocked: every send is dropped... *)
  heal_at : int option;
      (** ...until this tick, if given ([None] = partitioned forever) *)
}

val perfect : policy
(** No faults: delivery next tick, in send order. *)

val faulty :
  ?drop:float ->
  ?duplicate:float ->
  ?delay_min:int ->
  ?delay_max:int ->
  ?reorder:bool ->
  ?partition:bool ->
  ?heal_at:int ->
  unit ->
  policy
(** [perfect] with the given fields overridden. *)

type stats = {
  mutable sends : int;  (** transmissions offered to the network *)
  mutable drops : int;  (** lost to the random-loss gate *)
  mutable duplicates : int;  (** extra copies enqueued *)
  mutable deliveries : int;  (** messages handed to receivers *)
  mutable partition_drops : int;  (** lost to a partitioned link *)
}

type 'm t

val create :
  ?policy:policy ->
  ?links:((Pvr_bgp.Asn.t * Pvr_bgp.Asn.t) * policy) list ->
  rng:Pvr_crypto.Drbg.t ->
  unit ->
  'm t
(** [links] overrides the default [policy] per unordered endpoint pair. *)

val now : _ t -> int
val pending : _ t -> int
(** Messages in flight. *)

val stats : _ t -> stats
(** Live per-instance counters (also mirrored into the [net.*] metrics of
    {!Pvr_obs} when enabled). *)

val send : 'm t -> src:Pvr_bgp.Asn.t -> dst:Pvr_bgp.Asn.t -> 'm -> unit

val tick : 'm t -> (Pvr_bgp.Asn.t * Pvr_bgp.Asn.t * 'm) list
(** Advance the clock one tick and return the [(src, dst, msg)] triples
    delivered at the new time. *)

val run :
  ?max_ticks:int ->
  'm t ->
  handler:(src:Pvr_bgp.Asn.t -> dst:Pvr_bgp.Asn.t -> 'm -> unit) ->
  unit ->
  int
(** Tick until nothing is in flight (the handler may send more) or
    [max_ticks] (default 1000) elapse; returns the ticks consumed. *)

(** {2 Bounded-retry reliable channel}

    Stop-and-repeat ARQ over a faulty net: each data message carries a
    sequence number, receivers ack it, and the sender retransmits every
    [interval] ticks until acked or the [budget] of retransmissions is
    spent.  Ack loss causes duplicate data deliveries — receivers must be
    idempotent, which is exactly the property the fault suite locks in. *)
module Reliable : sig
  type 'm envelope

  type 'm conn

  val create : ?interval:int -> ?budget:int -> 'm envelope t -> 'm conn
  (** [interval] defaults to 2 ticks, [budget] to 3 retransmissions. *)

  val net : 'm conn -> 'm envelope t

  val send :
    'm conn -> src:Pvr_bgp.Asn.t -> dst:Pvr_bgp.Asn.t -> 'm -> unit

  val run :
    ?max_ticks:int ->
    'm conn ->
    handler:(src:Pvr_bgp.Asn.t -> dst:Pvr_bgp.Asn.t -> 'm -> unit) ->
    unit ->
    int
  (** Tick until every outstanding send is acked or has exhausted its
      budget and nothing is in flight.  Delivers data (never acks) to
      [handler]; the handler may itself {!send}. *)

  val acked : 'm conn -> src:Pvr_bgp.Asn.t -> dst:Pvr_bgp.Asn.t -> 'm -> bool
  (** Was some send of this exact [(src, dst, msg)] triple acked?  Lets a
      sender distinguish "confirmed received" from "gave up" — the basis
      for not accusing a party that may simply never have heard you. *)

  val data_sends : _ conn -> int
  (** Data transmissions including retransmissions (acks not counted). *)

  val retries : _ conn -> int
  (** Retransmissions performed (mirrored to the [net.retries] metric). *)

  val failures : _ conn -> int
  (** Sends abandoned after the budget (mirrored to [net.timeouts]). *)
end

(** {2 Byte mangling}

    What a hostile or broken link does to encoded messages: truncation,
    bit flips, splices, and length-prefix garbling.  Deterministic from
    the DRBG; used by the decoder-robustness properties ("malformed input
    yields [None], never an exception"). *)
module Fuzz : sig
  val mutate : Pvr_crypto.Drbg.t -> string -> string
  (** One random mutation of the input bytes (may return it unchanged
      only when the input is empty). *)

  val mangle : Pvr_crypto.Drbg.t -> string -> string
  (** One to four stacked {!mutate} passes. *)
end
