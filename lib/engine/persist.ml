module Store = Pvr_store.Store
module Bgp = Pvr_bgp
module Frame = Pvr_query.Frame
module Row = Pvr_query.Row
module Evidence_index = Pvr_query.Evidence_index

type epoch_record = Frame.epoch_record = {
  er_epoch : int;
  er_period : int;
  er_changes : int;
  er_msgs : int;
  er_vertices : int;
  er_dirty : int;
  er_skipped : int;
  er_detected : int;
  er_convicted : int;
  er_digest : string;
  er_rib : string;
  er_run_id : string;
}

let encode_epoch = Frame.encode_epoch
let decode_epoch = Frame.decode_epoch

type session = {
  store : Store.t;
  snapshot_every : int;
  dir : string;
  page : bool;
  mutable index : Evidence_index.t option;
      (* live mirror of the journaled evidence plane; rebuilt from the
         store on the first record after a resume *)
}

let start ?(fsync = true) ?(snapshot_every = 1) ?(page = false) ~dir () =
  { store = Store.open_ ~fsync ~dir (); snapshot_every; dir; page;
    index = None }

(* Wire the engine's spill layer to this session's WAL: pages are tag-4
   journal frames addressed by the byte offset [Store.append'] returns,
   CRC-checked on the way back and validated against the run id — a page
   from another run (or a mangled one) reads as an error, which the
   engine treats as a cache miss and recomputes through. *)
let pager s ~run_id =
  {
    Engine.pg_append =
      (fun ~key ~blob ->
        Store.append' s.store
          (Frame.encode_page
             { Frame.pf_run_id = run_id; pf_key = key; pf_blob = blob }));
    pg_read =
      (fun ~off ->
        match Store.read_frame_at ~dir:s.dir ~off with
        | Error _ as e -> e
        | Ok payload -> (
            match Frame.decode payload with
            | Ok (Frame.Page pf) when pf.Frame.pf_run_id = run_id ->
                Ok pf.Frame.pf_blob
            | Ok _ -> Error "frame at offset is not a page of this run"
            | Error e -> Error e));
  }

let row_of_outcome ~epoch (o : Engine.outcome) =
  {
    Row.r_epoch = epoch;
    r_prover = Bgp.Asn.to_int o.Engine.vx_vertex.Engine.vprover;
    r_addr = o.Engine.vx_vertex.Engine.vprefix.Bgp.Prefix.addr;
    r_len = o.Engine.vx_vertex.Engine.vprefix.Bgp.Prefix.len;
    r_beneficiary = Bgp.Asn.to_int o.Engine.vx_beneficiary;
    r_providers = List.map Bgp.Asn.to_int o.Engine.vx_providers;
    r_behaviour = Pvr.Adversary.to_string o.Engine.vx_behaviour;
    r_detected = o.Engine.vx_detected;
    r_convicted = o.Engine.vx_convicted;
    r_evidence = o.Engine.vx_evidence;
    r_kinds = o.Engine.vx_kinds;
    r_leaked = o.Engine.vx_leaked_bits;
    r_excess = o.Engine.vx_excess_bits;
  }

(* The session's live index must cover every epoch of the run, so after a
   resume (index = None, engine past epoch 1) it is rematerialized from
   the journal before this epoch's frames are appended. *)
let live_index s ~run_id ~epoch =
  match s.index with
  | Some idx -> idx
  | None ->
      let idx =
        if epoch = 1 then Evidence_index.create ~run_id ()
        else
          match Evidence_index.build ~quiet:true ~dir:s.dir () with
          | Ok idx when Evidence_index.run_id idx = run_id -> idx
          | Ok _ | Error _ -> Evidence_index.create ~run_id ()
      in
      s.index <- Some idx;
      idx

let record s eng (r : Engine.epoch_report) =
  let run_id = Engine.Checkpoint.run_id eng in
  let epoch = r.Engine.ep_epoch in
  let idx = live_index s ~run_id ~epoch in
  let rows = List.map (row_of_outcome ~epoch) r.Engine.ep_outcomes in
  (* On paging sessions, journal the delta RIB tracker's view first: one
     delta page per epoch, plus a full page on the snapshot cadence.
     Pages ride before the epoch record, so the commit mark covers them;
     a crash in between leaves ignorable orphans, same as rows. *)
  if s.page then begin
    Store.append s.store
      (Frame.encode_page
         {
           Frame.pf_run_id = run_id;
           pf_key = Printf.sprintf "rib:delta:%d" epoch;
           pf_blob = Bgp.Rib_delta.encode_delta (Engine.rib_changes eng);
         });
    if s.snapshot_every > 0 && epoch mod s.snapshot_every = 0 then
      Store.append s.store
        (Frame.encode_page
           {
             Frame.pf_run_id = run_id;
             pf_key = Printf.sprintf "rib:full:%d" epoch;
             pf_blob = Engine.rib_full eng;
           })
  end;
  (* Rows first, then the epoch record: the epoch record is the commit
     mark, so a crash between the two leaves an ignorable orphan. *)
  Store.append s.store
    (Frame.encode_rows
       { Frame.rf_run_id = run_id; rf_epoch = epoch; rf_rows = rows });
  let er =
    {
      er_epoch = epoch;
      er_period = r.Engine.ep_period;
      er_changes = r.Engine.ep_changes;
      er_msgs = r.Engine.ep_msgs;
      er_vertices = r.Engine.ep_vertices;
      er_dirty = r.Engine.ep_dirty;
      er_skipped = r.Engine.ep_skipped;
      er_detected = r.Engine.ep_detected;
      er_convicted = r.Engine.ep_convicted;
      er_digest = r.Engine.ep_digest;
      er_rib = Engine.rib_digest eng;
      er_run_id = run_id;
    }
  in
  Store.append s.store (encode_epoch er);
  if Evidence_index.max_epoch idx < epoch then
    Evidence_index.add_epoch idx ~epoch rows;
  if s.snapshot_every > 0 && epoch mod s.snapshot_every = 0 then begin
    (* Only checkpoint an index that covers every epoch of the run —
       a gap would make the builder silently lose the missing epochs. *)
    if Evidence_index.epoch_count idx = epoch then
      Store.append s.store
        (Frame.encode_index
           {
             Frame.if_run_id = run_id;
             if_epoch = epoch;
             if_blob = Evidence_index.save idx;
           });
    Store.write_snapshot s.store ~epoch (Engine.Checkpoint.save eng)
  end

let close s = Store.close s.store

type resumed = {
  rs_epoch : int;
  rs_snapshot_epoch : int;
  rs_replayed : int;
  rs_dropped : int;
}

let fresh ~dropped ~replayed =
  { rs_epoch = 0; rs_snapshot_epoch = 0; rs_replayed = replayed;
    rs_dropped = dropped }

let resume ?(quiet = false) ~dir ~engine ~apply () =
  let rc = Store.recover ~quiet ~dir () in
  let run_id = Engine.Checkpoint.run_id engine in
  (* Journal frames: keep decodable epoch records that belong to this run.
     Rows/index frames of this run are the evidence plane — not resume
     inputs, and not corruption either; foreign or undecodable frames
     count as dropped but do not invalidate the frames before them. *)
  let decode_dropped = ref 0 in
  let foreign = ref false in
  let frames =
    List.filter_map
      (fun payload ->
        match Frame.decode payload with
        | Ok (Frame.Epoch er) when er.er_run_id = run_id -> Some er
        | Ok (Frame.Rows rf) when rf.Frame.rf_run_id = run_id -> None
        | Ok (Frame.Index f) when f.Frame.if_run_id = run_id -> None
        | Ok (Frame.Page pf) when pf.Frame.pf_run_id = run_id -> None
        | Ok _ ->
            foreign := true;
            incr decode_dropped;
            None
        | Error _ ->
            incr decode_dropped;
            None)
      rc.Store.rc_frames
  in
  let last_frame =
    List.fold_left
      (fun acc er ->
        match acc with
        | Some best when best.er_epoch >= er.er_epoch -> acc
        | _ -> Some er)
      None frames
  in
  (* Newest snapshot whose header decodes and matches this run. *)
  let snapshot =
    List.find_map
      (fun (epoch, blob) ->
        match Engine.Checkpoint.info blob with
        | Ok info when info.Engine.Checkpoint.ck_run_id = run_id ->
            Some (epoch, blob, info)
        | Ok _ ->
            foreign := true;
            incr decode_dropped;
            None
        | Error _ ->
            incr decode_dropped;
            None)
      rc.Store.rc_snapshots
  in
  let dropped = rc.Store.rc_dropped + !decode_dropped in
  let replayed = List.length frames in
  let skip_to target eng =
    while Engine.current_epoch eng < target do
      let e = Engine.current_epoch eng + 1 in
      ignore (Engine.skip_epoch ~apply:(apply ~epoch:e) eng : int * int)
    done
  in
  let from_snapshot blob info =
    skip_to info.Engine.Checkpoint.ck_epoch engine;
    match Engine.Checkpoint.load engine blob with
    | Error e -> Error e
    | Ok info ->
        Ok
          {
            rs_epoch = info.Engine.Checkpoint.ck_epoch;
            rs_snapshot_epoch = info.Engine.Checkpoint.ck_epoch;
            rs_replayed = replayed;
            rs_dropped = dropped;
          }
  in
  match (snapshot, last_frame) with
  | None, None ->
      if !foreign then
        Error "store belongs to a different run (seed or parameters)"
      else Ok (fresh ~dropped ~replayed)
  | Some (_, blob, info), None -> from_snapshot blob info
  | Some (snap_epoch, blob, info), Some er when snap_epoch >= er.er_epoch ->
      from_snapshot blob info
  | snapshot, Some er -> (
      (* Journal extends past the newest snapshot (or there is none):
         restore the snapshot if any, then fast-forward to the last
         journaled epoch and adopt its chain. *)
      let restored =
        match snapshot with
        | None -> Ok 0
        | Some (_, blob, info) -> (
            skip_to info.Engine.Checkpoint.ck_epoch engine;
            match Engine.Checkpoint.load engine blob with
            | Error e -> Error e
            | Ok info -> Ok info.Engine.Checkpoint.ck_epoch)
      in
      match restored with
      | Error e -> Error e
      | Ok snap_epoch -> (
          skip_to er.er_epoch engine;
          match
            Engine.Checkpoint.advance engine ~epoch:er.er_epoch
              ~chain:er.er_digest ~rib:er.er_rib
          with
          | Error e -> Error e
          | Ok () ->
              Ok
                {
                  rs_epoch = er.er_epoch;
                  rs_snapshot_epoch = snap_epoch;
                  rs_replayed = replayed;
                  rs_dropped = dropped;
                }))
