module Store = Pvr_store.Store
module Codec = Pvr_store.Codec

type epoch_record = {
  er_epoch : int;
  er_period : int;
  er_changes : int;
  er_msgs : int;
  er_vertices : int;
  er_dirty : int;
  er_skipped : int;
  er_detected : int;
  er_convicted : int;
  er_digest : string;
  er_rib : string;
  er_run_id : string;
}

let er_version = 1

let encode_epoch r =
  let buf = Buffer.create 256 in
  Codec.u32 buf er_version;
  Codec.u32 buf r.er_epoch;
  Codec.u32 buf r.er_period;
  Codec.u32 buf r.er_changes;
  Codec.u32 buf r.er_msgs;
  Codec.u32 buf r.er_vertices;
  Codec.u32 buf r.er_dirty;
  Codec.u32 buf r.er_skipped;
  Codec.u32 buf r.er_detected;
  Codec.u32 buf r.er_convicted;
  Codec.str buf r.er_digest;
  Codec.str buf r.er_rib;
  Codec.str buf r.er_run_id;
  Buffer.contents buf

let decode_epoch payload =
  Codec.decode payload (fun r ->
      let v = Codec.get_u32 r in
      if v <> er_version then
        raise
          (Codec.Malformed ("unsupported journal version " ^ string_of_int v));
      let er_epoch = Codec.get_u32 r in
      let er_period = Codec.get_u32 r in
      let er_changes = Codec.get_u32 r in
      let er_msgs = Codec.get_u32 r in
      let er_vertices = Codec.get_u32 r in
      let er_dirty = Codec.get_u32 r in
      let er_skipped = Codec.get_u32 r in
      let er_detected = Codec.get_u32 r in
      let er_convicted = Codec.get_u32 r in
      let er_digest = Codec.get_str r in
      let er_rib = Codec.get_str r in
      let er_run_id = Codec.get_str r in
      {
        er_epoch;
        er_period;
        er_changes;
        er_msgs;
        er_vertices;
        er_dirty;
        er_skipped;
        er_detected;
        er_convicted;
        er_digest;
        er_rib;
        er_run_id;
      })

type session = { store : Store.t; snapshot_every : int }

let start ?(fsync = true) ?(snapshot_every = 1) ~dir () =
  { store = Store.open_ ~fsync ~dir (); snapshot_every }

let record s eng (r : Engine.epoch_report) =
  let er =
    {
      er_epoch = r.Engine.ep_epoch;
      er_period = r.Engine.ep_period;
      er_changes = r.Engine.ep_changes;
      er_msgs = r.Engine.ep_msgs;
      er_vertices = r.Engine.ep_vertices;
      er_dirty = r.Engine.ep_dirty;
      er_skipped = r.Engine.ep_skipped;
      er_detected = r.Engine.ep_detected;
      er_convicted = r.Engine.ep_convicted;
      er_digest = r.Engine.ep_digest;
      er_rib = Engine.rib_digest eng;
      er_run_id = Engine.Checkpoint.run_id eng;
    }
  in
  Store.append s.store (encode_epoch er);
  if s.snapshot_every > 0 && r.Engine.ep_epoch mod s.snapshot_every = 0 then
    Store.write_snapshot s.store ~epoch:r.Engine.ep_epoch
      (Engine.Checkpoint.save eng)

let close s = Store.close s.store

type resumed = {
  rs_epoch : int;
  rs_snapshot_epoch : int;
  rs_replayed : int;
  rs_dropped : int;
}

let fresh ~dropped ~replayed =
  { rs_epoch = 0; rs_snapshot_epoch = 0; rs_replayed = replayed;
    rs_dropped = dropped }

let resume ?(quiet = false) ~dir ~engine ~apply () =
  let rc = Store.recover ~quiet ~dir () in
  let run_id = Engine.Checkpoint.run_id engine in
  (* Journal frames: keep decodable ones that belong to this run; a frame
     that fails either test counts as corrupt but does not invalidate the
     frames before it. *)
  let decode_dropped = ref 0 in
  let foreign = ref false in
  let frames =
    List.filter_map
      (fun payload ->
        match decode_epoch payload with
        | Ok er when er.er_run_id = run_id -> Some er
        | Ok _ ->
            foreign := true;
            incr decode_dropped;
            None
        | Error _ ->
            incr decode_dropped;
            None)
      rc.Store.rc_frames
  in
  let last_frame =
    List.fold_left
      (fun acc er ->
        match acc with
        | Some best when best.er_epoch >= er.er_epoch -> acc
        | _ -> Some er)
      None frames
  in
  (* Newest snapshot whose header decodes and matches this run. *)
  let snapshot =
    List.find_map
      (fun (epoch, blob) ->
        match Engine.Checkpoint.info blob with
        | Ok info when info.Engine.Checkpoint.ck_run_id = run_id ->
            Some (epoch, blob, info)
        | Ok _ ->
            foreign := true;
            incr decode_dropped;
            None
        | Error _ ->
            incr decode_dropped;
            None)
      rc.Store.rc_snapshots
  in
  let dropped = rc.Store.rc_dropped + !decode_dropped in
  let replayed = List.length frames in
  let skip_to target eng =
    while Engine.current_epoch eng < target do
      let e = Engine.current_epoch eng + 1 in
      ignore (Engine.skip_epoch ~apply:(apply ~epoch:e) eng : int * int)
    done
  in
  let from_snapshot blob info =
    skip_to info.Engine.Checkpoint.ck_epoch engine;
    match Engine.Checkpoint.load engine blob with
    | Error e -> Error e
    | Ok info ->
        Ok
          {
            rs_epoch = info.Engine.Checkpoint.ck_epoch;
            rs_snapshot_epoch = info.Engine.Checkpoint.ck_epoch;
            rs_replayed = replayed;
            rs_dropped = dropped;
          }
  in
  match (snapshot, last_frame) with
  | None, None ->
      if !foreign then
        Error "store belongs to a different run (seed or parameters)"
      else Ok (fresh ~dropped ~replayed)
  | Some (_, blob, info), None -> from_snapshot blob info
  | Some (snap_epoch, blob, info), Some er when snap_epoch >= er.er_epoch ->
      from_snapshot blob info
  | snapshot, Some er -> (
      (* Journal extends past the newest snapshot (or there is none):
         restore the snapshot if any, then fast-forward to the last
         journaled epoch and adopt its chain. *)
      let restored =
        match snapshot with
        | None -> Ok 0
        | Some (_, blob, info) -> (
            skip_to info.Engine.Checkpoint.ck_epoch engine;
            match Engine.Checkpoint.load engine blob with
            | Error e -> Error e
            | Ok info -> Ok info.Engine.Checkpoint.ck_epoch)
      in
      match restored with
      | Error e -> Error e
      | Ok snap_epoch -> (
          skip_to er.er_epoch engine;
          match
            Engine.Checkpoint.advance engine ~epoch:er.er_epoch
              ~chain:er.er_digest ~rib:er.er_rib
          with
          | Error e -> Error e
          | Ok () ->
              Ok
                {
                  rs_epoch = er.er_epoch;
                  rs_snapshot_epoch = snap_epoch;
                  rs_replayed = replayed;
                  rs_dropped = dropped;
                }))
