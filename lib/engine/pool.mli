(** Deterministic fixed-size worker pool over OCaml 5 domains.

    [run ~jobs tasks] evaluates every thunk in [tasks] and returns their
    results {e in task order}, regardless of which domain ran which task or
    how the domains interleaved.  Determinism therefore reduces to the
    tasks themselves being pure functions (the engine arranges that: each
    task draws randomness only from its own derived DRBG and owns its
    vertex caches exclusively).

    Work is handed out by an atomic next-task index, so domains
    self-balance across tasks of uneven cost.  Results are written into
    per-task slots; [Domain.join] on every worker is the happens-before
    edge that makes them visible to the caller.  If any task raises, the
    pool finishes the remaining tasks, joins every domain, and re-raises
    the first exception (by task order). *)

val run : jobs:int -> (unit -> 'a) array -> 'a array
(** [jobs <= 1] (or fewer than two tasks) runs inline on the calling
    domain, in order — byte-identical results by construction.  [jobs] is
    otherwise capped at the number of tasks. *)

val run_sharded :
  jobs:int -> shard:(int -> int) -> (unit -> 'a) array -> 'a array
(** Like {!run}, but with {e static ownership} instead of an atomic
    handout: domain [d] executes exactly the tasks [i] with
    [shard i mod jobs = d], in task order, and no task ever migrates —
    there is no cross-domain work stealing.  The engine shards by
    (prover, prefix), so a vertex is always computed by the domain owning
    its shard, its cache locality survives across epochs, and placement is
    a pure function of the shard map rather than scheduling luck.  Results
    are still returned in task order; [shard] may return any int (it is
    masked non-negative).  Load balance is the caller's problem — a skewed
    shard function leaves domains idle. *)
