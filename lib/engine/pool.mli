(** Persistent deterministic worker pool over OCaml 5 domains.

    Worker domains are spawned once, live for the whole process, and block
    on a condition variable between rounds — per-call [Domain.spawn]/
    [Domain.join] churn was the dominant cost that made [jobs=2] slower
    than [jobs=1] at epoch cadence (E13).  A round hands every
    participating worker a self-contained closure and completes on a
    counted barrier whose mutex release/acquire publishes the per-task
    result slots to the caller.

    [run ~jobs tasks] evaluates every thunk in [tasks] and returns their
    results {e in task order}, regardless of which worker ran which task
    or how they interleaved.  Determinism therefore reduces to the tasks
    themselves being pure functions (the engine arranges that: each task
    draws randomness only from its own derived DRBG and owns its vertex
    caches exclusively).  If any task raises, the pool finishes the
    remaining tasks, completes the barrier, and re-raises the first
    exception (by task order).

    Before signalling the barrier each worker flushes its domain-local
    intern arena ({!Pvr_bgp.Intern.flush}), so canonical route/path ids
    are merged into the global tables by the time the caller resumes.

    Cumulative per-worker utilization is published as gauges
    [engine.pool.domain.<k>.busy_us], [.idle_us] and [.tasks] after every
    round, making contention regressions visible in metric snapshots
    rather than only in wall-clock. *)

val run : jobs:int -> (unit -> 'a) array -> 'a array
(** [jobs <= 1] (or fewer than two tasks) runs inline on the calling
    domain, in order — byte-identical results by construction.  [jobs] is
    otherwise capped at the number of tasks and folded onto at most 16
    resident workers.  Work is handed out as chunks of consecutive tasks
    via one atomic counter, so workers self-balance across tasks of uneven
    cost with a fraction of the handout traffic of per-task dispatch. *)

val run_sharded :
  jobs:int -> shard:(int -> int) -> (unit -> 'a) array -> 'a array
(** Like {!run}, but with {e static ownership} instead of an atomic
    handout: the owner of task [i] is the pure function
    [(shard i) mod jobs], and worker [k] plays every owner role congruent
    to [k] modulo the resident worker count (identical to one domain per
    role whenever [jobs] is at most 16).  No task ever migrates — there is
    no cross-domain work stealing.  The engine shards by (prover, prefix),
    so a vertex is always computed by the worker owning its shard, its
    cache locality survives across epochs, and placement is a function of
    the shard map rather than scheduling luck.  Results are still returned
    in task order; [shard] may return any int (it is masked non-negative).
    Load balance is the caller's problem — a skewed shard function leaves
    workers idle. *)

val submit : (unit -> unit) -> unit
(** Enqueue an asynchronous work item; the first idle worker executes it.
    Items are self-contained: they must catch their own exceptions and
    signal their own completion (the serve daemon wraps session work this
    way).  There is no result plumbing and no bound here — admission
    control is the caller's job. *)

val ensure_workers : int -> unit
(** Spawn resident workers up to the given count (capped at 16).  [run]
    and [run_sharded] call this implicitly; the serve daemon calls it once
    at startup to size the pool. *)

val worker_count : unit -> int
(** Number of resident worker domains. *)

val shutdown : unit -> unit
(** Stop and join every resident worker (idempotent; also registered via
    [at_exit]).  Subsequent calls to [run]/[submit] transparently respawn
    workers. *)

val set_perturb : (int -> unit) option -> unit
(** Test-only scheduler perturbation: [Some f] calls [f i] right before a
    pool worker executes task [i] (both handout modes; never on the
    inline path).  The concurrency stress battery installs seeded random
    sleeps here to prove result/digest order-independence.  [None]
    removes the hook. *)
