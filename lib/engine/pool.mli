(** Deterministic fixed-size worker pool over OCaml 5 domains.

    [run ~jobs tasks] evaluates every thunk in [tasks] and returns their
    results {e in task order}, regardless of which domain ran which task or
    how the domains interleaved.  Determinism therefore reduces to the
    tasks themselves being pure functions (the engine arranges that: each
    task draws randomness only from its own derived DRBG and owns its
    vertex caches exclusively).

    Work is handed out by an atomic next-task index, so domains
    self-balance across tasks of uneven cost.  Results are written into
    per-task slots; [Domain.join] on every worker is the happens-before
    edge that makes them visible to the caller.  If any task raises, the
    pool finishes the remaining tasks, joins every domain, and re-raises
    the first exception (by task order). *)

val run : jobs:int -> (unit -> 'a) array -> 'a array
(** [jobs <= 1] (or fewer than two tasks) runs inline on the calling
    domain, in order — byte-identical results by construction.  [jobs] is
    otherwise capped at the number of tasks. *)
