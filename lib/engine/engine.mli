(** Continuous, topology-wide verification: the steady-state system §3.8's
    overhead argument is about.

    The engine drives {e every promising AS} of a simulated internet
    ({!Pvr_bgp.Topology} + {!Pvr_bgp.Simulator}) through a sequence of
    verification epochs.  Each {!epoch}: apply a BGP update batch to the
    simulator, run it to convergence, diff every prover's inputs/export
    against the previous epoch, and re-run §3.3 minimum rounds {e only for
    the dirty vertices} — a vertex is one (prover, prefix) promise with its
    providing neighbors and a beneficiary.  Clean vertices carry their
    previous outcome forward untouched.

    {2 Incremental commitments}

    Recomputed rounds draw no fresh randomness: commitment nonces are
    {e derived} ({!Pvr_crypto.Commitment.commit_derived}) from an epoch
    salt, itself derived from the engine's master seed and rotated every
    [salt_every] epochs (the wire epoch is the salt-period index, so
    commitments from different periods never mix).  Within a period an
    unchanged route therefore reproduces byte-identical announces,
    commitments and exports, which per-vertex memo tables turn into cache
    hits — no SHA-256, no RSA.  Hits/misses are exported through {!Pvr_obs}
    (["crypto.commitment.cache.*"], ["engine.cache.sign.*"]).

    {2 Multicore scheduling and determinism}

    Dirty vertices are scheduled onto a {!Pool} of OCaml 5 domains
    ([jobs]).  Every task is a pure function of (master seed, vertex
    snapshot, salt period): the fast path uses derived nonces only, and
    fault-injected rounds seed a private DRBG from the vertex snapshot
    digest.  Hence the determinism contract: {b same seed ⇒ byte-identical
    reports and digest, for any [jobs] and for the cache on or off}.  The
    test suite asserts both equivalences. *)

module Bgp = Pvr_bgp

type t

type vertex = { vprover : Bgp.Asn.t; vprefix : Bgp.Prefix.t }

type outcome = {
  vx_vertex : vertex;
  vx_beneficiary : Bgp.Asn.t;
  vx_providers : Bgp.Asn.t list;  (** sorted by ASN *)
  vx_routes : (Bgp.Asn.t * Bgp.Route.t) list;
      (** the round's inputs, as received at the prover *)
  vx_recomputed : bool;  (** [false]: carried forward from a clean epoch *)
  vx_detected : bool;
  vx_convicted : bool;
  vx_evidence : int;
  vx_net : Pvr.Runner.net_report option;
      (** present for fault-injected rounds — feed it to
          {!Pvr.Runner.detection_expected} *)
  vx_line : string;
      (** canonical one-line rendering; the per-epoch digest hashes these.
          Excludes [vx_recomputed], so it is identical whether the outcome
          was recomputed or carried forward. *)
}

type epoch_report = {
  ep_epoch : int;  (** engine epoch, 1-based *)
  ep_period : int;  (** salt period = (epoch-1) / salt_every *)
  ep_changes : int;  (** update-batch size reported by [apply] *)
  ep_msgs : int;  (** simulator messages to convergence *)
  ep_vertices : int;  (** live vertices this epoch *)
  ep_dirty : int;  (** rounds actually recomputed *)
  ep_skipped : int;  (** clean vertices carried forward *)
  ep_detected : int;
  ep_convicted : int;
  ep_outcomes : outcome list;  (** every live vertex, sorted by (prover, prefix) *)
  ep_digest : string;
      (** running hex digest over all epochs so far (hash-chained) *)
}

val create :
  ?jobs:int ->
  ?cache:bool ->
  ?salt_every:int ->
  ?max_path_len:int ->
  ?behaviour:Pvr.Adversary.behaviour ->
  ?faults:Pvr.Runner.fault_profile ->
  Pvr_crypto.Drbg.t ->
  Pvr.Keyring.t ->
  topology:Bgp.Topology.t ->
  sim:Bgp.Simulator.t ->
  unit ->
  t
(** [jobs] (default 1) worker domains; [cache] (default [true]) — off means
    every live vertex is recomputed every epoch with no memo tables (the
    E11 baseline); [salt_every] (default 8) epochs per salt period;
    [behaviour] (default [Honest]) is injected at {e every} prover;
    [faults] (default none) routes each round through
    {!Pvr.Runner.min_round_faulty}.  The master seed is drawn from the
    DRBG at creation — the engine never touches the generator again, so
    results are independent of later draws from it. *)

val epoch : ?apply:(Bgp.Simulator.t -> int) -> t -> epoch_report
(** Advance one epoch: [apply] injects this epoch's update batch into the
    simulator and returns its size (default: no changes), then the engine
    converges the simulator and verifies.  Raises whatever a task raised,
    after the worker pool drains. *)

val current_epoch : t -> int

val digest : t -> string
(** The running report digest ([ep_digest] of the latest epoch; the hex
    digest of an empty history before the first one). *)

val live_vertices : t -> vertex list
(** The (prover, prefix) promises the engine tracked last epoch, sorted. *)

val report_line : epoch_report -> string
(** One canonical summary line, stable across [jobs] and cache settings:
    [epoch=… period=… changes=… msgs=… vertices=… dirty+skipped=… detected=…
    convicted=… digest=…] — except for [dirty]/[skipped], which reflect the
    cache setting by design. *)
