(** Continuous, topology-wide verification: the steady-state system §3.8's
    overhead argument is about.

    The engine drives {e every promising AS} of a simulated internet
    ({!Pvr_bgp.Topology} + {!Pvr_bgp.Simulator}) through a sequence of
    verification epochs.  Each {!epoch}: apply a BGP update batch to the
    simulator, run it to convergence, diff every prover's inputs/export
    against the previous epoch, and re-run §3.3 minimum rounds {e only for
    the dirty vertices} — a vertex is one (prover, prefix) promise with its
    providing neighbors and a beneficiary.  Clean vertices carry their
    previous outcome forward untouched.

    {2 Incremental commitments}

    Recomputed rounds draw no fresh randomness: commitment nonces are
    {e derived} ({!Pvr_crypto.Commitment.commit_derived}) from an epoch
    salt, itself derived from the engine's master seed and rotated every
    [salt_every] epochs (the wire epoch is the salt-period index, so
    commitments from different periods never mix).  Within a period an
    unchanged route therefore reproduces byte-identical announces,
    commitments and exports, which per-vertex memo tables turn into cache
    hits — no SHA-256, no RSA.  Hits/misses are exported through {!Pvr_obs}
    (["crypto.commitment.cache.*"], ["engine.cache.sign.*"]).

    {2 Multicore scheduling and determinism}

    Dirty vertices are scheduled onto a {!Pool} of OCaml 5 domains
    ([jobs]).  Every task is a pure function of (master seed, vertex
    snapshot, salt period): the fast path uses derived nonces only, and
    fault-injected rounds seed a private DRBG from the vertex snapshot
    digest.  Hence the determinism contract: {b same seed ⇒ byte-identical
    reports and digest, for any [jobs] and for the cache on or off}.  The
    test suite asserts both equivalences. *)

module Bgp = Pvr_bgp

type t

type vertex = { vprover : Bgp.Asn.t; vprefix : Bgp.Prefix.t }

type outcome = {
  vx_vertex : vertex;
  vx_beneficiary : Bgp.Asn.t;
  vx_providers : Bgp.Asn.t list;  (** sorted by ASN *)
  vx_routes : (Bgp.Asn.t * Bgp.Route.t) list;
      (** the round's inputs, as received at the prover *)
  vx_recomputed : bool;  (** [false]: carried forward from a clean epoch *)
  vx_behaviour : Pvr.Adversary.behaviour;
      (** what the strategy planned at this vertex ([Honest] on the fast
          path) *)
  vx_detected : bool;
  vx_convicted : bool;
  vx_evidence : int;
  vx_kinds : string list;
      (** sorted, deduplicated {!Pvr.Evidence.kind} tags of the evidence
          raised this round — the queryable violation classes; [[]] when
          nothing was raised.  Persisted in checkpoints and evidence-row
          journal frames, never part of [vx_line] (digests are
          unchanged). *)
  vx_leaked_bits : int;
      (** total bits disclosed across all parties (and the court) per the
          {!Pvr.Leakage} accounting convention; [0] on the fast path *)
  vx_excess_bits : int;
      (** audited bits beyond each party's plain-BGP baseline, summed over
          providers, beneficiary and the coalition (positive excess on a
          cheating round is the meter flagging the cheat); [0] on the fast
          path *)
  vx_net : Pvr.Runner.net_report option;
      (** present for fault-injected rounds — feed it to
          {!Pvr.Runner.detection_expected} *)
  vx_line : string;
      (** canonical one-line rendering; the per-epoch digest hashes these.
          Excludes [vx_recomputed], so it is identical whether the outcome
          was recomputed or carried forward. *)
}

type epoch_report = {
  ep_epoch : int;  (** engine epoch, 1-based *)
  ep_period : int;  (** salt period = (epoch-1) / salt_every *)
  ep_changes : int;  (** update-batch size reported by [apply] *)
  ep_msgs : int;  (** simulator messages to convergence *)
  ep_vertices : int;  (** live vertices this epoch *)
  ep_dirty : int;  (** rounds actually recomputed *)
  ep_skipped : int;  (** clean vertices carried forward *)
  ep_detected : int;
  ep_convicted : int;
  ep_outcomes : outcome list;  (** every live vertex, sorted by (prover, prefix) *)
  ep_digest : string;
      (** running hex digest over all epochs so far (hash-chained) *)
}

val create :
  ?jobs:int ->
  ?shards:int ->
  ?cache:bool ->
  ?salt_every:int ->
  ?max_path_len:int ->
  ?behaviour:Pvr.Adversary.behaviour ->
  ?strategy:Pvr.Adversary.strategy ->
  ?faults:Pvr.Runner.fault_profile ->
  Pvr_crypto.Drbg.t ->
  Pvr.Keyring.t ->
  topology:Bgp.Topology.t ->
  sim:Bgp.Simulator.t ->
  unit ->
  t
(** [jobs] (default 1) worker domains; [shards] (default 0 = dynamic
    scheduling) — when positive, each (prover, prefix) vertex is pinned to
    shard [hash(vertex) mod shards] and domain [shard mod jobs] via
    {!Pool.run_sharded}, so no vertex ever migrates between domains and
    there is no work stealing on the dirty set; the report digest is
    byte-identical for any [shards]/[jobs] combination; [cache] (default
    [true]) — off means every live vertex is recomputed every epoch with
    no memo tables (the E11 baseline); [salt_every] (default 8) epochs per
    salt period;
    [behaviour] (default [Honest]) is injected at {e every} prover;
    [strategy] (default [Sweep behaviour]) is the adversary policy asked,
    per vertex and wire epoch, what each prover does — honest-planned
    vertices keep the fast path, misbehaving ones run the full fault
    runner with a disclosure ledger and leakage audit;
    [faults] (default none) routes each round through
    {!Pvr.Runner.min_round_faulty}.  The master seed is drawn from the
    DRBG at creation — the engine never touches the generator again, so
    results are independent of later draws from it. *)

val epoch :
  ?apply:(Bgp.Simulator.t -> int) ->
  ?on_phase:(string -> unit) ->
  t ->
  epoch_report
(** Advance one epoch: [apply] injects this epoch's update batch into the
    simulator and returns its size (default: no changes), then the engine
    converges the simulator and verifies.  Raises whatever a task raised,
    after the worker pool drains.

    [on_phase] is called at the epoch's internal barriers — ["apply"]
    (simulator converged), ["collect"] (vertices enumerated), ["verify"]
    (worker pool drained) — and exists so the crash-soak harness can kill
    the process mid-epoch at seeded points.  It must not mutate engine
    state.  Two more phases fire only on bounded-memory runs: ["unspill"]
    after classification when any spilled page was read back (or found
    stale), and ["spill"] inside the governor immediately after the first
    page of a spill batch hits the store. *)

val current_epoch : t -> int

(** {2 Bounded memory}

    With a ceiling set, the governor checks the major heap after every
    epoch and sheds load in stages: drop cold memo tables, page cold
    (prover, prefix) vertex state out through the {!pager}, and finally
    throttle (retain nothing next epoch).  Every transition is counted
    under ["engine.mem.*"].  Spilling is digest-invariant: a spilled
    vertex's carried outcome is read back transiently each epoch, and any
    unreadable page degrades to recomputation, which purity makes
    byte-identical. *)

type pager = {
  pg_append : key:string -> blob:string -> int;
      (** persist one page blob, returning its stable address *)
  pg_read : off:int -> (string, string) result;
}
(** Paging backend for the spill layer.  {!Persist.pager} wires this to
    the WAL journal (CRC-framed, torn-tail safe); {!memory_pager} is the
    store-free variant for tests. *)

val memory_pager : unit -> pager
(** An in-heap pager (a hashtable of blobs).  Useless for saving memory —
    it exists so differential tests can exercise the spill machinery
    without a store directory. *)

val set_pager : t -> pager option -> unit
(** Install (or remove) the paging backend.  Without one, the governor
    can only shed caches and throttle, never spill. *)

val set_mem_ceiling : t -> int -> unit
(** Set the major-heap budget in words ([0] = unbounded, the default).
    The governor compares it against [Gc.quick_stat].heap_words — the
    same figure the ["engine.gc.heap_words"] gauge exports. *)

val resident_states : t -> int
(** Vertices whose carry-forward state is in the heap. *)

val spilled_states : t -> int
(** Vertices currently paged out to the store. *)

val digest : t -> string
(** The running report digest ([ep_digest] of the latest epoch; the hex
    digest of an empty history before the first one). *)

val live_vertices : t -> vertex list
(** The (prover, prefix) promises the engine tracked last epoch, sorted. *)

val report_line : epoch_report -> string
(** One canonical summary line, stable across [jobs] and cache settings:
    [epoch=… period=… changes=… msgs=… vertices=… dirty+skipped=… detected=…
    convicted=… digest=…] — except for [dirty]/[skipped], which reflect the
    cache setting by design. *)

(** {2 Checkpoint / resume}

    Crash tolerance rests on the determinism contract: every verification
    outcome is a pure function of (master seed, vertex snapshot, salt
    period), so a resumed engine only needs (a) the simulator state — which
    replay of the deterministic churn stream rebuilds via {!skip_epoch} —
    and (b) the hash chain position.  Carried per-vertex outcomes and salt
    periods (a checkpoint's payload) merely restore the {e incremental}
    part; without them every vertex recomputes once and the digest is
    still byte-identical. *)

val skip_epoch : ?apply:(Bgp.Simulator.t -> int) -> t -> int * int
(** Fast-forward one epoch: apply the update batch and converge the
    simulator without verifying.  Returns [(changes, msgs)].  Used by
    resume to replay the churn stream up to the checkpointed epoch. *)

val rib_digest : t -> string
(** Hex fingerprint of the full simulator state visible to the engine
    (Loc-RIB and per-neighbor Adj-RIB-In/Out of every AS), maintained
    incrementally by a {!Bgp.Rib_delta} tracker fed from the simulator's
    dirty pairs — O(dirty) per refresh.  Resume refuses to continue when
    the replayed state does not match the stored one. *)

val rib_digest_full : t -> string
(** The O(world) naive twin of {!rib_digest}: rebuild the tracker from
    scratch over every AS's RIB.  Must always equal {!rib_digest} — the
    differential-oracle suite asserts it. *)

val rib_changes : t -> Bgp.Rib_delta.change list
(** Drain the tracker's accumulated pair changes (syncing it first).
    {!Persist} journals these as a delta page each recorded epoch. *)

val rib_full : t -> string
(** The tracker's full serialized state ({!Bgp.Rib_delta.encode_full}),
    synced first.  {!Persist} journals one on the snapshot cadence. *)

module Checkpoint : sig
  type info = {
    ck_epoch : int;
    ck_chain : string;  (** running report digest at [ck_epoch] *)
    ck_run_id : string;  (** identifies the (seed, parameters) run *)
    ck_rib : string;  (** {!rib_digest} at [ck_epoch] *)
    ck_states : int;  (** carried vertex states *)
  }

  val run_id : t -> string
  (** Digest of the engine's master secret: two engines agree on it iff
      they were created from the same seed stream. *)

  val save : t -> string
  (** Serialize epoch position, hash chain, RIB digest and every vertex's
      carry-forward state (snapshot digest, salt period, outcome) into a
      self-validating binary blob. *)

  val info : string -> (info, string) result
  (** Peek at a blob's header without an engine.  Never raises. *)

  val load : t -> string -> (info, string) result
  (** Install a checkpoint into an engine that has been fast-forwarded
      (via {!skip_epoch}) to the checkpoint's epoch with the same seed.
      Validates the run id and the replayed RIB digest first; on success
      installs the hash chain and vertex states (memo tables restart
      empty — harmless, recomputation is pure).  Never raises on corrupt
      input. *)

  val advance : t -> epoch:int -> chain:string -> rib:string -> (unit, string) result
  (** Move the hash chain to a journal-recorded epoch beyond the newest
      snapshot: the engine must already be fast-forwarded to [epoch], and
      [rib] must match the live simulator. *)
end
