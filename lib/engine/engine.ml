module Bgp = Pvr_bgp
module C = Pvr_crypto

type vertex = { vprover : Bgp.Asn.t; vprefix : Bgp.Prefix.t }

type outcome = {
  vx_vertex : vertex;
  vx_beneficiary : Bgp.Asn.t;
  vx_providers : Bgp.Asn.t list;
  vx_routes : (Bgp.Asn.t * Bgp.Route.t) list;
  vx_recomputed : bool;
  vx_behaviour : Pvr.Adversary.behaviour;
  vx_detected : bool;
  vx_convicted : bool;
  vx_evidence : int;
  vx_kinds : string list;
  vx_leaked_bits : int;
  vx_excess_bits : int;
  vx_net : Pvr.Runner.net_report option;
  vx_line : string;
}

type epoch_report = {
  ep_epoch : int;
  ep_period : int;
  ep_changes : int;
  ep_msgs : int;
  ep_vertices : int;
  ep_dirty : int;
  ep_skipped : int;
  ep_detected : int;
  ep_convicted : int;
  ep_outcomes : outcome list;
  ep_digest : string;
}

let c_epochs = Pvr_obs.counter "engine.epochs"
let c_rounds = Pvr_obs.counter "engine.rounds"
let c_skipped = Pvr_obs.counter "engine.vertices.skipped"
let sign_hits = Pvr_obs.counter "engine.cache.sign.hits"
let sign_misses = Pvr_obs.counter "engine.cache.sign.misses"
let g_heap_words = Pvr_obs.gauge "engine.gc.heap_words"
let g_allocated_words = Pvr_obs.gauge "engine.gc.allocated_words"

(* Per-vertex memo tables.  A vertex is (re)computed by exactly one pool
   task per epoch, so its tables have a single owner at any time; the pool's
   join barrier publishes them back to the scheduling domain. *)
type vcache = {
  ccache : C.Commitment.Cache.t;
  ann_memo : (string, Pvr.Wire.announce Pvr.Wire.signed) Hashtbl.t;
  cmt_memo : (string, Pvr.Wire.commit Pvr.Wire.signed) Hashtbl.t;
  exp_memo : (string, Pvr.Wire.export Pvr.Wire.signed) Hashtbl.t;
}

type snapshot = {
  sn_vertex : vertex;
  sn_beneficiary : Bgp.Asn.t;
  sn_inputs : (Bgp.Asn.t * Bgp.Route.t) list; (* sorted by ASN *)
  sn_export : Bgp.Route.t; (* unprepended; equals one input route *)
}

(* Vertex carry-forward state is keyed by the snapshot digest rather than
   the snapshot itself: digest equality is what the clean-skip test needs,
   and a digest (unlike route lists and memo tables) survives a trip
   through the checkpoint store byte-for-byte. *)
type vstate = {
  mutable vs_digest : string; (* snapshot_digest of the last verified state *)
  mutable vs_period : int;
  mutable vs_outcome : outcome;
  mutable vs_cache : vcache;
}

type t = {
  keyring : Pvr.Keyring.t;
  topo : Bgp.Topology.t;
  sim : Bgp.Simulator.t;
  jobs : int;
  shards : int;
  cache : bool;
  salt_every : int;
  max_path_len : int;
  strategy : Pvr.Adversary.strategy;
  faults : Pvr.Runner.fault_profile option;
  secret : string;
  ases : Bgp.Asn.t list; (* sorted *)
  nbrs : (Bgp.Asn.t, Bgp.Asn.t list) Hashtbl.t;
      (* per-AS sorted neighbor ASNs; the topology is immutable, so this is
         computed once instead of per prover per epoch in [collect] *)
  states : (string, vstate) Hashtbl.t;
  mutable epoch_no : int;
  mutable chain : string;
  mutable live : vertex list;
}

let chain0 = C.Sha256.digest_hex "pvr-engine-report-v1"

let create ?(jobs = 1) ?(shards = 0) ?(cache = true) ?(salt_every = 8)
    ?(max_path_len = Pvr.Proto_min.default_max_path_len)
    ?(behaviour = Pvr.Adversary.Honest) ?strategy ?faults rng keyring
    ~topology ~sim () =
  (* One draw fixes every future salt and task seed; the caller's generator
     is never consulted again, so engine output is a function of this
     secret alone. *)
  let secret = C.Drbg.generate rng 32 in
  let nbrs = Hashtbl.create 256 in
  List.iter
    (fun a ->
      Hashtbl.replace nbrs a
        (List.map fst (Bgp.Topology.neighbors topology a)
        |> List.sort Bgp.Asn.compare))
    (Bgp.Topology.ases topology);
  {
    keyring;
    topo = topology;
    sim;
    jobs = max 1 jobs;
    shards = max 0 shards;
    cache;
    salt_every = max 1 salt_every;
    max_path_len;
    strategy =
      Option.value strategy ~default:(Pvr.Adversary.Sweep behaviour);
    faults;
    secret;
    ases = List.sort Bgp.Asn.compare (Bgp.Topology.ases topology);
    nbrs;
    states = Hashtbl.create 256;
    epoch_no = 0;
    chain = chain0;
    live = [];
  }

let current_epoch t = t.epoch_no
let digest t = t.chain
let live_vertices t = t.live

let vertex_key v =
  Bgp.Asn.to_string v.vprover ^ "|" ^ Bgp.Prefix.to_string v.vprefix

(* Shard of a vertex: FNV-1a over the vertex key, reduced mod the shard
   count.  A pure function of the vertex (never of scheduling state), so
   with [shards > 0] each (prover, prefix) is pinned to the same shard —
   and hence the same owning domain — for the life of the run. *)
let shard_of ~shards v =
  let h =
    String.fold_left
      (fun h c -> (h lxor Char.code c) * 0x100000001b3 land max_int)
      0x3bf29ce484222325 (vertex_key v)
  in
  h mod shards

let salt t ~period =
  C.Hmac.mac ~key:t.secret ("engine-salt|" ^ string_of_int period)

let fresh_vcache t ~period =
  {
    ccache = C.Commitment.Cache.create ~period ~key:(salt t ~period) ();
    ann_memo = Hashtbl.create 32;
    cmt_memo = Hashtbl.create 8;
    exp_memo = Hashtbl.create 8;
  }

(* Salt rotation: reuse the carried vcache's allocations, invalidate every
   entry.  The signed-message memos key on encodings that embed the wire
   epoch, so after rotation their entries could never hit again — reset
   them rather than letting them accumulate. *)
let recycle_vcache t vc ~period =
  C.Commitment.Cache.rotate vc.ccache ~period ~key:(salt t ~period);
  Hashtbl.reset vc.ann_memo;
  Hashtbl.reset vc.cmt_memo;
  Hashtbl.reset vc.exp_memo;
  vc

(* [Intern.encode] is byte-identical to [Route.encode]; with interning on
   it is memoized per canonical route, which removes the dominant per-epoch
   allocation — this digest runs for every live vertex every epoch. *)
let snapshot_digest sn =
  C.Sha256.digest_hex
    (String.concat "\x00"
       (Bgp.Asn.to_string sn.sn_beneficiary
       :: Bgp.Intern.encode sn.sn_export
       :: List.concat_map
            (fun (n, r) -> [ Bgp.Asn.to_string n; Bgp.Intern.encode r ])
            sn.sn_inputs))

(* The simulator's Adj-RIB-Out entry carries the prover's prepended path;
   PVR compares exports against inputs as received, so strip the prover. *)
let unprepend prover (r : Bgp.Route.t) =
  match r.Bgp.Route.as_path with
  | first :: (next :: _ as rest) when Bgp.Asn.equal first prover ->
      { r with Bgp.Route.as_path = rest; next_hop = next }
  | _ -> r

(* Enumerate this epoch's live vertices: every (prover, prefix) with at
   least one admissible input and a beneficiary neighbor whose Adj-RIB-Out
   entry matches an input route.  Self-originated prefixes are not promises
   about received routes and are skipped.  With the default decision
   process and uniform local-pref the simulator's export is a minimum-length
   input, so an honest engine round raises no evidence — the test suite's
   Accuracy soak depends on exactly this enumeration. *)
let collect t =
  List.concat_map
    (fun prover ->
      let rib = Bgp.Simulator.rib t.sim prover in
      let neighbors =
        Option.value (Hashtbl.find_opt t.nbrs prover) ~default:[]
      in
      let prefixes = List.sort Bgp.Prefix.compare (Bgp.Rib.prefixes rib) in
      List.filter_map
        (fun prefix ->
          let self_originated =
            match Bgp.Rib.get_best rib prefix with
            | Some r -> (
                match r.Bgp.Route.as_path with
                | [ a ] -> Bgp.Asn.equal a prover
                | _ -> false)
            | None -> false
          in
          if self_originated then None
          else begin
            let inputs =
              List.filter_map
                (fun n ->
                  match Bgp.Rib.get_in rib ~neighbor:n prefix with
                  | Some r when Bgp.Route.path_length r <= t.max_path_len ->
                      Some (n, r)
                  | _ -> None)
                neighbors
            in
            if inputs = [] then None
            else begin
              let providers = List.map fst inputs in
              let rec pick = function
                | [] -> None
                | n :: rest -> (
                    if List.exists (Bgp.Asn.equal n) providers then pick rest
                    else
                      match
                        Bgp.Simulator.exported_route t.sim ~asn:prover
                          ~neighbor:n prefix
                      with
                      | Some out ->
                          let route = Bgp.Intern.route (unprepend prover out) in
                          if
                            List.exists
                              (fun (_, r) -> Bgp.Route.equal r route)
                              inputs
                          then Some (n, route)
                          else pick rest
                      | None -> pick rest)
              in
              match pick neighbors with
              | None -> None
              | Some (beneficiary, export) ->
                  Some
                    {
                      sn_vertex = { vprover = prover; vprefix = prefix };
                      sn_beneficiary = beneficiary;
                      sn_inputs = inputs;
                      sn_export = export;
                    }
            end
          end)
        prefixes)
    t.ases

let sign_memo tbl keyring ~as_ ~encode payload =
  let key = Bgp.Asn.to_string as_ ^ "|" ^ encode payload in
  match Hashtbl.find_opt tbl key with
  | Some s ->
      Pvr_obs.incr sign_hits;
      s
  | None ->
      Pvr_obs.incr sign_misses;
      let s = Pvr.Wire.sign keyring ~as_ ~encode payload in
      Hashtbl.add tbl key s;
      s

let providers_string providers =
  String.concat "," (List.map Bgp.Asn.to_string providers)

(* The honest fast path: Proto_min.prove re-built on derived commitments and
   the memo tables, so recommitting to unchanged routes is pure cache hits.
   A pure function of (keyring, salt period, snapshot): no DRBG draws. *)
let fast_round keyring ~max_path_len ~wire_epoch vc (sn : snapshot) =
  let prover = sn.sn_vertex.vprover and prefix = sn.sn_vertex.vprefix in
  let beneficiary = sn.sn_beneficiary in
  let announces =
    List.map
      (fun (n, r) ->
        ( n,
          sign_memo vc.ann_memo keyring ~as_:n
            ~encode:Pvr.Wire.encode_announce
            { Pvr.Wire.ann_epoch = wire_epoch; ann_to = prover; ann_route = r }
        ))
      sn.sn_inputs
  in
  let lengths = List.map (fun (_, r) -> Bgp.Route.path_length r) sn.sn_inputs in
  let shortest = List.fold_left min max_int lengths in
  let bits = List.init max_path_len (fun i -> shortest <= i + 1) in
  let ctx i =
    Printf.sprintf "%s|%s|%d|%d" (Bgp.Asn.to_string prover)
      (Bgp.Prefix.to_string prefix) wire_epoch (i + 1)
  in
  let committed =
    (* Vector-level memo: a quiet vertex recommitting to the same bit
       pattern within a salt period pays zero hash work.  [ctx] embeds the
       wire epoch, which is constant within a period, so vector hits return
       the very commitments a per-bit recomputation would produce. *)
    C.Commitment.Cache.commit_bit_vector vc.ccache
      ~vertex:(vertex_key sn.sn_vertex) ~context:ctx bits
  in
  let commit =
    sign_memo vc.cmt_memo keyring ~as_:prover ~encode:Pvr.Wire.encode_commit
      {
        Pvr.Wire.cmt_epoch = wire_epoch;
        cmt_prefix = prefix;
        cmt_scheme = Pvr.Proto_min.scheme;
        cmt_commitments =
          List.map
            (fun ((c : C.Commitment.commitment), _) -> (c :> string))
            committed;
      }
  in
  let openings = List.map snd committed in
  let opening_at i = List.nth openings (i - 1) in
  let neighbor_disclosures =
    List.map
      (fun (n, (ann : Pvr.Wire.announce Pvr.Wire.signed)) ->
        let len =
          Bgp.Route.path_length ann.Pvr.Wire.payload.Pvr.Wire.ann_route
        in
        (n, { Pvr.Proto_common.nd_index = len; nd_opening = opening_at len }))
      announces
  in
  let provenance =
    List.find_opt
      (fun (_, (ann : Pvr.Wire.announce Pvr.Wire.signed)) ->
        Bgp.Route.equal ann.Pvr.Wire.payload.Pvr.Wire.ann_route sn.sn_export)
      announces
  in
  let export =
    Option.map
      (fun (_, ann) ->
        sign_memo vc.exp_memo keyring ~as_:prover
          ~encode:Pvr.Wire.encode_export
          {
            Pvr.Wire.exp_epoch = wire_epoch;
            exp_to = beneficiary;
            exp_route = sn.sn_export;
            exp_provenance = Some ann;
          })
      provenance
  in
  let bd =
    {
      Pvr.Proto_common.bd_openings = List.mapi (fun i o -> (i + 1, o)) openings;
      bd_export = export;
    }
  in
  let raised = ref [] in
  List.iter
    (fun (n, ann) ->
      let disclosure = List.assoc_opt n neighbor_disclosures in
      List.iter
        (fun e -> raised := e :: !raised)
        (Pvr.Proto_min.check_neighbor keyring ~me:n ~my_announce:ann ~commit
           ~disclosure))
    announces;
  List.iter
    (fun e -> raised := e :: !raised)
    (Pvr.Proto_min.check_beneficiary keyring ~me:beneficiary ~commit
       ~disclosure:bd);
  let raised = List.rev !raised in
  let verdicts = List.map (Pvr.Judge.evaluate_offline keyring) raised in
  let detected = raised <> [] in
  let convicted = List.exists (fun v -> v = Pvr.Judge.Guilty) verdicts in
  let commit_hex =
    String.sub
      (C.Sha256.digest_hex
         (String.concat "" commit.Pvr.Wire.payload.Pvr.Wire.cmt_commitments))
      0 16
  in
  let providers = List.map fst sn.sn_inputs in
  let line =
    Printf.sprintf "%s %s b=%s prov=%s det=%b conv=%b ev=%d c=%s"
      (Bgp.Asn.to_string prover)
      (Bgp.Prefix.to_string prefix)
      (Bgp.Asn.to_string beneficiary)
      (providers_string providers)
      detected convicted (List.length raised) commit_hex
  in
  {
    vx_vertex = sn.sn_vertex;
    vx_beneficiary = beneficiary;
    vx_providers = providers;
    vx_routes = sn.sn_inputs;
    vx_recomputed = true;
    vx_behaviour = Pvr.Adversary.Honest;
    vx_detected = detected;
    vx_convicted = convicted;
    vx_evidence = List.length raised;
    vx_kinds = List.sort_uniq String.compare (List.map Pvr.Evidence.kind raised);
    vx_leaked_bits = 0;
    vx_excess_bits = 0;
    vx_net = None;
    vx_line = line;
  }

(* Fault-injected (or Byzantine) rounds delegate to the full runner.  The
   round's DRBG is seeded from (engine secret, vertex, salt period, snapshot
   digest), making the outcome a pure function of the vertex state — the
   same schedule regardless of scheduling order, jobs, or whether the cache
   skipped the vertex last epoch. *)
let faulty_round keyring ~max_path_len ~wire_epoch ~secret ~plan ~faults
    (sn : snapshot) =
  let behaviour = plan.Pvr.Adversary.rp_behaviour in
  let prover = sn.sn_vertex.vprover and prefix = sn.sn_vertex.vprefix in
  let seed =
    String.concat "|"
      [
        secret;
        "round";
        vertex_key sn.sn_vertex;
        string_of_int wire_epoch;
        snapshot_digest sn;
      ]
  in
  let rng = C.Drbg.create ~seed in
  let module L = Pvr.Leakage in
  let ledger = L.Ledger.create () in
  let nr =
    Pvr.Runner.min_round_faulty ?faults ~max_path_len ~ledger
      ~comply:plan.Pvr.Adversary.rp_comply behaviour rng keyring ~prover
      ~beneficiary:sn.sn_beneficiary ~epoch:wire_epoch ~prefix
      ~routes:sn.sn_inputs
  in
  let base = nr.Pvr.Runner.base in
  let providers = List.map fst sn.sn_inputs in
  (* Leakage accounting: audit every party's observed view against its
     plain-BGP baseline under the Figure-1 α.  The beneficiary baseline is
     the promise-kept export, so a cheating round's inconsistent
     disclosures legitimately show positive excess — that is the meter
     flagging the cheat, not a protocol leak. *)
  let alpha =
    Pvr.Access_control.figure1 ~beneficiary:sn.sn_beneficiary ~providers
  in
  let view_of v = L.Ledger.view ledger ~viewer:v in
  let provider_audits =
    List.map
      (fun (p, r) ->
        let baseline = L.plain_bgp_provider ~me:p ~my_route:r in
        L.audit
          ~viewer:(Bgp.Asn.to_string p)
          ~authorized:(L.alpha_authorizes alpha ~viewer:p)
          ~baseline
          ~observed:(baseline @ view_of p)
          ())
      sn.sn_inputs
  in
  let bene_baseline = L.plain_bgp_beneficiary ~exported:(Some sn.sn_export) in
  let bene_audit =
    L.audit
      ~viewer:(Bgp.Asn.to_string sn.sn_beneficiary)
      ~authorized:(L.alpha_authorizes alpha ~viewer:sn.sn_beneficiary)
      ~baseline:bene_baseline
      ~observed:(bene_baseline @ view_of sn.sn_beneficiary)
      ()
  in
  let coalition_audits =
    if plan.Pvr.Adversary.rp_coalition > 1 then begin
      (* [sn_inputs] is sorted by ASN: the coalition is the first [size]
         providers pooling their disclosed bits. *)
      let members =
        List.filteri
          (fun i _ -> i < plan.Pvr.Adversary.rp_coalition)
          sn.sn_inputs
      in
      let baseline =
        L.pooled
          (List.map
             (fun (p, r) -> L.plain_bgp_provider ~me:p ~my_route:r)
             members)
      in
      let observed =
        L.pooled (baseline :: List.map (fun (p, _) -> view_of p) members)
      in
      [
        L.audit
          ~viewer:
            ("coalition:" ^ providers_string (List.map fst members))
          ~authorized:(fun f ->
            List.exists
              (fun (p, _) -> L.alpha_authorizes alpha ~viewer:p f)
              members)
          ~baseline ~observed ();
      ]
    end
    else []
  in
  let audits = provider_audits @ (bene_audit :: coalition_audits) in
  let leaked =
    List.fold_left
      (fun n v -> n + L.view_bits (view_of v))
      0
      (L.Ledger.viewers ledger)
  in
  let excess =
    List.fold_left (fun n a -> n + a.L.au_excess_bits) 0 audits
  in
  let line =
    Printf.sprintf
      "%s %s b=%s prov=%s det=%b conv=%b ev=%d m=%d cb=%d lk=%d xs=%d"
      (Bgp.Asn.to_string prover)
      (Bgp.Prefix.to_string prefix)
      (Bgp.Asn.to_string sn.sn_beneficiary)
      (providers_string providers)
      base.Pvr.Runner.detected base.Pvr.Runner.convicted
      (List.length base.Pvr.Runner.raised)
      base.Pvr.Runner.messages base.Pvr.Runner.commit_bytes leaked excess
  in
  {
    vx_vertex = sn.sn_vertex;
    vx_beneficiary = sn.sn_beneficiary;
    vx_providers = providers;
    vx_routes = sn.sn_inputs;
    vx_recomputed = true;
    vx_behaviour = behaviour;
    vx_detected = base.Pvr.Runner.detected;
    vx_convicted = base.Pvr.Runner.convicted;
    vx_evidence = List.length base.Pvr.Runner.raised;
    vx_kinds =
      List.sort_uniq String.compare
        (List.map (fun (_, e) -> Pvr.Evidence.kind e) base.Pvr.Runner.raised);
    vx_leaked_bits = leaked;
    vx_excess_bits = excess;
    vx_net = Some nr;
    vx_line = line;
  }

let run_round t ~wire_epoch vc sn =
  (* The plan is a pure function of (secret, vertex, wire epoch): identical
     for every jobs/shards/cache configuration, and stable within a salt
     period so carried-forward outcomes agree with recomputation. *)
  let plan =
    Pvr.Adversary.plan_round t.strategy ~seed:t.secret
      ~prover:sn.sn_vertex.vprover ~prefix:sn.sn_vertex.vprefix
      ~epoch:wire_epoch
  in
  if t.faults <> None || plan.Pvr.Adversary.rp_behaviour <> Pvr.Adversary.Honest
  then
    faulty_round t.keyring ~max_path_len:t.max_path_len ~wire_epoch
      ~secret:t.secret ~plan ~faults:t.faults sn
  else fast_round t.keyring ~max_path_len:t.max_path_len ~wire_epoch vc sn

let report_line r =
  Printf.sprintf
    "epoch=%d period=%d changes=%d msgs=%d vertices=%d dirty=%d skipped=%d \
     detected=%d convicted=%d digest=%s"
    r.ep_epoch r.ep_period r.ep_changes r.ep_msgs r.ep_vertices r.ep_dirty
    r.ep_skipped r.ep_detected r.ep_convicted r.ep_digest

let epoch ?(apply = fun _ -> 0) ?(on_phase = fun (_ : string) -> ()) t =
  Pvr_obs.with_span "engine.epoch" @@ fun () ->
  t.epoch_no <- t.epoch_no + 1;
  let period = (t.epoch_no - 1) / t.salt_every in
  let wire_epoch = period + 1 in
  let changes = apply t.sim in
  let msgs = Bgp.Simulator.run t.sim in
  on_phase "apply";
  let snapshots = collect t in
  on_phase "collect";
  let classified =
    List.map
      (fun sn ->
        let dg = snapshot_digest sn in
        match Hashtbl.find_opt t.states (vertex_key sn.sn_vertex) with
        | Some vs when t.cache && vs.vs_period = period && vs.vs_digest = dg
          ->
            `Clean (sn, vs)
        | prev -> `Dirty (sn, dg, prev))
      snapshots
  in
  let dirty =
    List.filter_map
      (function
        | `Dirty (sn, dg, prev) -> Some (sn, dg, prev) | `Clean _ -> None)
      classified
  in
  let caches =
    Array.of_list
      (List.map
         (fun (_, _, prev) ->
           match prev with
           | Some vs when t.cache && vs.vs_period = period -> vs.vs_cache
           | Some vs when t.cache -> recycle_vcache t vs.vs_cache ~period
           | _ -> fresh_vcache t ~period)
         dirty)
  in
  let tasks =
    Array.of_list dirty
    |> Array.mapi (fun i (sn, _, _) ->
           fun () -> run_round t ~wire_epoch caches.(i) sn)
  in
  let results =
    if t.shards > 0 then begin
      (* Static per-(prover,prefix) partition: no cross-domain work
         stealing on the dirty set.  Task order — and therefore the merged
         outcome order and the report digest — is identical to the dynamic
         pool's. *)
      let shard_ids =
        Array.of_list
          (List.map
             (fun (sn, _, _) -> shard_of ~shards:t.shards sn.sn_vertex)
             dirty)
      in
      Pool.run_sharded ~jobs:t.jobs ~shard:(fun i -> shard_ids.(i)) tasks
    end
    else Pool.run ~jobs:t.jobs tasks
  in
  on_phase "verify";
  (* Merge back in vertex order; record fresh state for recomputed vertices,
     carry the previous outcome for clean ones. *)
  let i = ref 0 in
  let outcomes =
    List.map
      (function
        | `Clean ((_ : snapshot), vs) ->
            { vs.vs_outcome with vx_recomputed = false }
        | `Dirty (sn, dg, prev) ->
            let k = !i in
            incr i;
            let outcome = results.(k) in
            let vc = caches.(k) in
            (match prev with
            | Some vs ->
                vs.vs_digest <- dg;
                vs.vs_period <- period;
                vs.vs_outcome <- outcome;
                vs.vs_cache <- vc
            | None ->
                Hashtbl.replace t.states (vertex_key sn.sn_vertex)
                  {
                    vs_digest = dg;
                    vs_period = period;
                    vs_outcome = outcome;
                    vs_cache = vc;
                  });
            outcome)
      classified
  in
  (* Prune only state left over from earlier salt periods: a vertex that
     flaps away and back within the current period keeps its state (a
     snapshot match skips it outright, a partial match reuses its memo
     tables), while rotation invalidates the tables anyway. *)
  let live_keys = Hashtbl.create (List.length snapshots) in
  List.iter
    (fun sn -> Hashtbl.replace live_keys (vertex_key sn.sn_vertex) ())
    snapshots;
  let dead =
    Hashtbl.fold
      (fun k vs acc ->
        if vs.vs_period < period && not (Hashtbl.mem live_keys k) then
          k :: acc
        else acc)
      t.states []
  in
  List.iter (Hashtbl.remove t.states) dead;
  t.live <- List.map (fun sn -> sn.sn_vertex) snapshots;
  let n_vertices = List.length snapshots in
  let n_dirty = List.length dirty in
  let n_skipped = n_vertices - n_dirty in
  Pvr_obs.incr c_epochs;
  Pvr_obs.add c_rounds n_dirty;
  Pvr_obs.add c_skipped n_skipped;
  if Pvr_obs.enabled () then begin
    let s = Gc.quick_stat () in
    Pvr_obs.set_gauge g_heap_words s.Gc.heap_words;
    Pvr_obs.set_gauge g_allocated_words
      (int_of_float (s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words))
  end;
  let detected =
    List.fold_left (fun n o -> if o.vx_detected then n + 1 else n) 0 outcomes
  in
  let convicted =
    List.fold_left (fun n o -> if o.vx_convicted then n + 1 else n) 0 outcomes
  in
  (* Hash-chain the canonical epoch record.  Everything hashed here is
     independent of jobs and of the cache setting (dirty/skipped are not
     included), which is exactly the determinism contract. *)
  let canonical =
    String.concat "\n"
      (Printf.sprintf "epoch %d period %d changes %d msgs %d vertices %d"
         t.epoch_no period changes msgs n_vertices
      :: List.map (fun o -> o.vx_line) outcomes)
  in
  t.chain <- C.Sha256.digest_hex (t.chain ^ "\n" ^ canonical);
  {
    ep_epoch = t.epoch_no;
    ep_period = period;
    ep_changes = changes;
    ep_msgs = msgs;
    ep_vertices = n_vertices;
    ep_dirty = n_dirty;
    ep_skipped = n_skipped;
    ep_detected = detected;
    ep_convicted = convicted;
    ep_outcomes = outcomes;
    ep_digest = t.chain;
  }

(* ---- checkpoint / resume --------------------------------------------------- *)

(* Fast-forward: apply the epoch's update batch and converge the simulator
   without verifying anything.  Resume replays the (deterministic) churn
   stream through this to rebuild RIB state cheaply — no crypto, no DRBG
   draws from the engine's own machinery. *)
let skip_epoch ?(apply = fun _ -> 0) t =
  t.epoch_no <- t.epoch_no + 1;
  let changes = apply t.sim in
  let msgs = Bgp.Simulator.run t.sim in
  (changes, msgs)

(* Canonical fingerprint of the entire simulator state the engine can see:
   per AS (sorted), per prefix (sorted), the Loc-RIB best route and the
   per-neighbor Adj-RIB-In/Out entries.  Length-framed so field boundaries
   cannot alias. *)
let rib_digest t =
  let parts = ref [] in
  let add s = parts := s :: !parts in
  List.iter
    (fun asn ->
      add ("as:" ^ Bgp.Asn.to_string asn);
      let rib = Bgp.Simulator.rib t.sim asn in
      let neighbors =
        List.map fst (Bgp.Topology.neighbors t.topo asn)
        |> List.sort Bgp.Asn.compare
      in
      List.iter
        (fun p ->
          add ("p:" ^ Bgp.Prefix.to_string p);
          (match Bgp.Rib.get_best rib p with
          | Some r -> add ("b:" ^ Bgp.Intern.encode r)
          | None -> ());
          List.iter
            (fun n ->
              (match Bgp.Rib.get_in rib ~neighbor:n p with
              | Some r ->
                  add ("i:" ^ Bgp.Asn.to_string n ^ ":" ^ Bgp.Intern.encode r)
              | None -> ());
              match Bgp.Rib.get_out rib ~neighbor:n p with
              | Some r ->
                  add ("o:" ^ Bgp.Asn.to_string n ^ ":" ^ Bgp.Intern.encode r)
              | None -> ())
            neighbors)
        (List.sort Bgp.Prefix.compare (Bgp.Rib.prefixes rib)))
    t.ases;
  C.Sha256.digest_parts_hex (List.rev !parts)

module Checkpoint = struct
  module Codec = Pvr_store.Codec

  type info = {
    ck_epoch : int;
    ck_chain : string;
    ck_run_id : string;
    ck_rib : string;
    ck_states : int;
  }

  (* v3: adds per-vertex evidence-kind tags (the query plane's violation
     classes).  v2 added behaviour and leaked/excess bit counts.  Older
     blobs are refused (resume falls back to full recomputation, which the
     determinism contract makes harmless). *)
  let ck_version = 3
  let run_id t = C.Sha256.digest_hex ("pvr-engine-run-id|" ^ t.secret)

  type state_record = {
    sr_key : string;
    sr_period : int;
    sr_digest : string;
    sr_prover : int;
    sr_addr : int;
    sr_len : int;
    sr_beneficiary : int;
    sr_providers : int list;
    sr_behaviour : string;
    sr_detected : bool;
    sr_convicted : bool;
    sr_evidence : int;
    sr_kinds : string list;
    sr_leaked : int;
    sr_excess : int;
    sr_line : string;
  }

  let save t =
    let buf = Buffer.create 4096 in
    Codec.u32 buf ck_version;
    Codec.u32 buf t.epoch_no;
    Codec.str buf t.chain;
    Codec.str buf (run_id t);
    Codec.str buf (rib_digest t);
    let states =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.states []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Codec.u32 buf (List.length states);
    List.iter
      (fun (key, vs) ->
        Codec.str buf key;
        Codec.u32 buf vs.vs_period;
        Codec.str buf vs.vs_digest;
        let o = vs.vs_outcome in
        Codec.u32 buf (Bgp.Asn.to_int o.vx_vertex.vprover);
        Codec.u32 buf o.vx_vertex.vprefix.Bgp.Prefix.addr;
        Codec.u32 buf o.vx_vertex.vprefix.Bgp.Prefix.len;
        Codec.u32 buf (Bgp.Asn.to_int o.vx_beneficiary);
        Codec.u32 buf (List.length o.vx_providers);
        List.iter (fun a -> Codec.u32 buf (Bgp.Asn.to_int a)) o.vx_providers;
        Codec.str buf (Pvr.Adversary.to_string o.vx_behaviour);
        Codec.bool_ buf o.vx_detected;
        Codec.bool_ buf o.vx_convicted;
        Codec.u32 buf o.vx_evidence;
        Codec.u32 buf (List.length o.vx_kinds);
        List.iter (fun k -> Codec.str buf k) o.vx_kinds;
        Codec.u32 buf o.vx_leaked_bits;
        Codec.u32 buf o.vx_excess_bits;
        Codec.str buf o.vx_line)
      states;
    Buffer.contents buf

  let parse blob =
    Codec.decode blob (fun r ->
        let v = Codec.get_u32 r in
        if v <> ck_version then
          raise (Codec.Malformed ("unsupported checkpoint version "
                                  ^ string_of_int v));
        let ck_epoch = Codec.get_u32 r in
        let ck_chain = Codec.get_str r in
        let ck_run_id = Codec.get_str r in
        let ck_rib = Codec.get_str r in
        let n = Codec.get_u32 r in
        let states =
          List.init n (fun _ ->
              let sr_key = Codec.get_str r in
              let sr_period = Codec.get_u32 r in
              let sr_digest = Codec.get_str r in
              let sr_prover = Codec.get_u32 r in
              let sr_addr = Codec.get_u32 r in
              let sr_len = Codec.get_u32 r in
              let sr_beneficiary = Codec.get_u32 r in
              let np = Codec.get_u32 r in
              let sr_providers = List.init np (fun _ -> Codec.get_u32 r) in
              let sr_behaviour = Codec.get_str r in
              let sr_detected = Codec.get_bool r in
              let sr_convicted = Codec.get_bool r in
              let sr_evidence = Codec.get_u32 r in
              let nk = Codec.get_u32 r in
              let sr_kinds = List.init nk (fun _ -> Codec.get_str r) in
              let sr_leaked = Codec.get_u32 r in
              let sr_excess = Codec.get_u32 r in
              let sr_line = Codec.get_str r in
              {
                sr_key;
                sr_period;
                sr_digest;
                sr_prover;
                sr_addr;
                sr_len;
                sr_beneficiary;
                sr_providers;
                sr_behaviour;
                sr_detected;
                sr_convicted;
                sr_evidence;
                sr_kinds;
                sr_leaked;
                sr_excess;
                sr_line;
              })
        in
        ( { ck_epoch; ck_chain; ck_run_id; ck_rib; ck_states = n }, states ))

  let info blob = Result.map fst (parse blob)

  (* Rebuild a vstate from its serialized record.  Memo tables restart
     empty ([fresh_vcache] at the recorded salt period — the "generation
     counter"): recomputation is pure, so empty tables cost redundant
     crypto on the next dirty hit but can never change an outcome.
     [vx_routes]/[vx_net] are not persisted; a carried-forward outcome
     only contributes its canonical line to the digest. *)
  let vstate_of_record t sr =
    let vertex =
      {
        vprover = Bgp.Asn.of_int sr.sr_prover;
        vprefix = Bgp.Prefix.make ~addr:sr.sr_addr ~len:sr.sr_len;
      }
    in
    {
      vs_digest = sr.sr_digest;
      vs_period = sr.sr_period;
      vs_outcome =
        {
          vx_vertex = vertex;
          vx_beneficiary = Bgp.Asn.of_int sr.sr_beneficiary;
          vx_providers = List.map Bgp.Asn.of_int sr.sr_providers;
          vx_routes = [];
          vx_recomputed = false;
          vx_behaviour =
            (match
               List.find_opt
                 (fun b -> Pvr.Adversary.to_string b = sr.sr_behaviour)
                 Pvr.Adversary.all
             with
            | Some b -> b
            | None -> Pvr.Adversary.Honest);
          vx_detected = sr.sr_detected;
          vx_convicted = sr.sr_convicted;
          vx_evidence = sr.sr_evidence;
          vx_kinds = sr.sr_kinds;
          vx_leaked_bits = sr.sr_leaked;
          vx_excess_bits = sr.sr_excess;
          vx_net = None;
          vx_line = sr.sr_line;
        };
      vs_cache = fresh_vcache t ~period:sr.sr_period;
    }

  let load t blob =
    match parse blob with
    | Error e -> Error ("corrupt checkpoint: " ^ e)
    | Ok (info, records) ->
        if info.ck_run_id <> run_id t then
          Error "checkpoint belongs to a different run (seed or parameters)"
        else if info.ck_epoch <> t.epoch_no then
          Error
            (Printf.sprintf
               "engine fast-forwarded to epoch %d but checkpoint is for \
                epoch %d"
               t.epoch_no info.ck_epoch)
        else if rib_digest t <> info.ck_rib then
          Error "replayed simulator state diverges from checkpoint RIB digest"
        else begin
          Hashtbl.reset t.states;
          List.iter
            (fun sr ->
              Hashtbl.replace t.states sr.sr_key (vstate_of_record t sr))
            records;
          t.chain <- info.ck_chain;
          Ok info
        end

  let advance t ~epoch ~chain ~rib =
    if t.epoch_no <> epoch then
      Error
        (Printf.sprintf "engine at epoch %d, journal record is for epoch %d"
           t.epoch_no epoch)
    else if rib_digest t <> rib then
      Error "replayed simulator state diverges from journal RIB digest"
    else begin
      t.chain <- chain;
      Ok ()
    end
end
