module Bgp = Pvr_bgp
module C = Pvr_crypto

type vertex = { vprover : Bgp.Asn.t; vprefix : Bgp.Prefix.t }

type outcome = {
  vx_vertex : vertex;
  vx_beneficiary : Bgp.Asn.t;
  vx_providers : Bgp.Asn.t list;
  vx_routes : (Bgp.Asn.t * Bgp.Route.t) list;
  vx_recomputed : bool;
  vx_behaviour : Pvr.Adversary.behaviour;
  vx_detected : bool;
  vx_convicted : bool;
  vx_evidence : int;
  vx_kinds : string list;
  vx_leaked_bits : int;
  vx_excess_bits : int;
  vx_net : Pvr.Runner.net_report option;
  vx_line : string;
}

type epoch_report = {
  ep_epoch : int;
  ep_period : int;
  ep_changes : int;
  ep_msgs : int;
  ep_vertices : int;
  ep_dirty : int;
  ep_skipped : int;
  ep_detected : int;
  ep_convicted : int;
  ep_outcomes : outcome list;
  ep_digest : string;
}

let c_epochs = Pvr_obs.counter "engine.epochs"
let c_rounds = Pvr_obs.counter "engine.rounds"
let c_skipped = Pvr_obs.counter "engine.vertices.skipped"
let sign_hits = Pvr_obs.counter "engine.cache.sign.hits"
let sign_misses = Pvr_obs.counter "engine.cache.sign.misses"
let g_heap_words = Pvr_obs.gauge "engine.gc.heap_words"
let g_allocated_words = Pvr_obs.gauge "engine.gc.allocated_words"

(* Memory-governor telemetry: every load-shedding transition is counted so
   a bounded-memory run is auditable after the fact. *)
let c_mem_cache_drops = Pvr_obs.counter "engine.mem.cache_drops"
let c_mem_spills = Pvr_obs.counter "engine.mem.spills"
let c_mem_unspills = Pvr_obs.counter "engine.mem.unspills"
let c_mem_page_reads = Pvr_obs.counter "engine.mem.page_reads"
let c_mem_page_read_failures = Pvr_obs.counter "engine.mem.page_read_failures"
let c_mem_throttles = Pvr_obs.counter "engine.mem.throttles"
let g_mem_resident = Pvr_obs.gauge "engine.mem.resident"
let g_mem_spilled = Pvr_obs.gauge "engine.mem.spilled"
let g_mem_ceiling = Pvr_obs.gauge "engine.mem.ceiling"

(* Per-vertex memo tables.  A vertex is (re)computed by exactly one pool
   task per epoch, so its tables have a single owner at any time; the pool's
   join barrier publishes them back to the scheduling domain. *)
type vcache = {
  ccache : C.Commitment.Cache.t;
  ann_memo : (string, Pvr.Wire.announce Pvr.Wire.signed) Hashtbl.t;
  cmt_memo : (string, Pvr.Wire.commit Pvr.Wire.signed) Hashtbl.t;
  exp_memo : (string, Pvr.Wire.export Pvr.Wire.signed) Hashtbl.t;
}

type snapshot = {
  sn_vertex : vertex;
  sn_beneficiary : Bgp.Asn.t;
  sn_inputs : (Bgp.Asn.t * Bgp.Route.t) list; (* sorted by ASN *)
  sn_export : Bgp.Route.t; (* unprepended; equals one input route *)
}

(* Vertex carry-forward state is keyed by the snapshot digest rather than
   the snapshot itself: digest equality is what the clean-skip test needs,
   and a digest (unlike route lists and memo tables) survives a trip
   through the checkpoint store byte-for-byte. *)
type vstate = {
  mutable vs_digest : string; (* snapshot_digest of the last verified state *)
  mutable vs_period : int;
  mutable vs_outcome : outcome;
  mutable vs_cache : vcache option;
      (* [None] after a governor cache drop (or a resume): memo tables are
         a pure accelerator, rebuilt lazily on the next dirty hit *)
  mutable vs_touched : int;
      (* engine epoch of the last recomputation — the LRU recency key the
         governor spills by *)
}

(* A vertex slot is either resident or paged out to the store.  A spilled
   slot keeps only what the clean-skip test needs (snapshot digest + salt
   period) plus the journal offset of its page frame; the outcome line is
   read back transiently each epoch, so a cold vertex costs O(1) heap. *)
type spilled = { sp_digest : string; sp_period : int; sp_off : int }
type slot = Resident of vstate | Spilled of spilled

(* Paging backend: append a page blob (returning a stable address) and
   read one back.  [Persist.pager] wires this to the WAL journal;
   [memory_pager] is the store-free variant unit tests use. *)
type pager = {
  pg_append : key:string -> blob:string -> int;
  pg_read : off:int -> (string, string) result;
}

let memory_pager () =
  let tbl : (int, string) Hashtbl.t = Hashtbl.create 256 in
  let next = ref 0 in
  {
    pg_append =
      (fun ~key:_ ~blob ->
        let off = !next in
        incr next;
        Hashtbl.replace tbl off blob;
        off);
    pg_read =
      (fun ~off ->
        match Hashtbl.find_opt tbl off with
        | Some b -> Ok b
        | None -> Error "no such page");
  }

type t = {
  keyring : Pvr.Keyring.t;
  topo : Bgp.Topology.t;
  sim : Bgp.Simulator.t;
  jobs : int;
  shards : int;
  cache : bool;
  salt_every : int;
  max_path_len : int;
  strategy : Pvr.Adversary.strategy;
  faults : Pvr.Runner.fault_profile option;
  secret : string;
  ases : Bgp.Asn.t list; (* sorted *)
  nbrs : (Bgp.Asn.t, Bgp.Asn.t list) Hashtbl.t;
      (* per-AS sorted neighbor ASNs; the topology is immutable, so this is
         computed once instead of per prover per epoch in [collect] *)
  states : (string, slot) Hashtbl.t;
  mutable epoch_no : int;
  mutable chain : string;
  mutable live : vertex list;
  rtracker : Bgp.Rib_delta.t;
      (* digest-level mirror of the simulator's RIBs, fed from its dirty
         pairs — keeps [rib_digest] O(dirty) instead of O(world) *)
  mutable pager : pager option;
  mutable mem_ceiling : int; (* heap-word budget; 0 = unbounded *)
  mutable throttled : bool;
      (* governor stage 3 latched: the next epoch runs without retaining
         any memo tables *)
}

let chain0 = C.Sha256.digest_hex "pvr-engine-report-v1"

let create ?(jobs = 1) ?(shards = 0) ?(cache = true) ?(salt_every = 8)
    ?(max_path_len = Pvr.Proto_min.default_max_path_len)
    ?(behaviour = Pvr.Adversary.Honest) ?strategy ?faults rng keyring
    ~topology ~sim () =
  (* One draw fixes every future salt and task seed; the caller's generator
     is never consulted again, so engine output is a function of this
     secret alone. *)
  let secret = C.Drbg.generate rng 32 in
  let nbrs = Hashtbl.create 256 in
  List.iter
    (fun a ->
      Hashtbl.replace nbrs a
        (List.map fst (Bgp.Topology.neighbors topology a)
        |> List.sort Bgp.Asn.compare))
    (Bgp.Topology.ases topology);
  {
    keyring;
    topo = topology;
    sim;
    jobs = max 1 jobs;
    shards = max 0 shards;
    cache;
    salt_every = max 1 salt_every;
    max_path_len;
    strategy =
      Option.value strategy ~default:(Pvr.Adversary.Sweep behaviour);
    faults;
    secret;
    ases = List.sort Bgp.Asn.compare (Bgp.Topology.ases topology);
    nbrs;
    states = Hashtbl.create 256;
    epoch_no = 0;
    chain = chain0;
    live = [];
    rtracker = Bgp.Rib_delta.create ();
    pager = None;
    mem_ceiling = 0;
    throttled = false;
  }

let current_epoch t = t.epoch_no
let digest t = t.chain
let live_vertices t = t.live
let set_pager t p = t.pager <- p

let set_mem_ceiling t words =
  t.mem_ceiling <- max 0 words;
  Pvr_obs.set_gauge g_mem_ceiling t.mem_ceiling

let resident_states t =
  Hashtbl.fold
    (fun _ s n -> match s with Resident _ -> n + 1 | Spilled _ -> n)
    t.states 0

let spilled_states t =
  Hashtbl.fold
    (fun _ s n -> match s with Spilled _ -> n + 1 | Resident _ -> n)
    t.states 0

let vertex_key v =
  Bgp.Asn.to_string v.vprover ^ "|" ^ Bgp.Prefix.to_string v.vprefix

(* Shard of a vertex: FNV-1a over the vertex key, reduced mod the shard
   count.  A pure function of the vertex (never of scheduling state), so
   with [shards > 0] each (prover, prefix) is pinned to the same shard —
   and hence the same owning domain — for the life of the run. *)
let shard_of ~shards v =
  let h =
    String.fold_left
      (fun h c -> (h lxor Char.code c) * 0x100000001b3 land max_int)
      0x3bf29ce484222325 (vertex_key v)
  in
  h mod shards

let salt t ~period =
  C.Hmac.mac ~key:t.secret ("engine-salt|" ^ string_of_int period)

let fresh_vcache t ~period =
  {
    ccache = C.Commitment.Cache.create ~period ~key:(salt t ~period) ();
    ann_memo = Hashtbl.create 32;
    cmt_memo = Hashtbl.create 8;
    exp_memo = Hashtbl.create 8;
  }

(* Salt rotation: reuse the carried vcache's allocations, invalidate every
   entry.  The signed-message memos key on encodings that embed the wire
   epoch, so after rotation their entries could never hit again — reset
   them rather than letting them accumulate. *)
let recycle_vcache t vc ~period =
  C.Commitment.Cache.rotate vc.ccache ~period ~key:(salt t ~period);
  Hashtbl.reset vc.ann_memo;
  Hashtbl.reset vc.cmt_memo;
  Hashtbl.reset vc.exp_memo;
  vc

(* [Intern.encode] is byte-identical to [Route.encode]; with interning on
   it is memoized per canonical route, which removes the dominant per-epoch
   allocation — this digest runs for every live vertex every epoch. *)
let snapshot_digest sn =
  C.Sha256.digest_hex
    (String.concat "\x00"
       (Bgp.Asn.to_string sn.sn_beneficiary
       :: Bgp.Intern.encode sn.sn_export
       :: List.concat_map
            (fun (n, r) -> [ Bgp.Asn.to_string n; Bgp.Intern.encode r ])
            sn.sn_inputs))

(* The simulator's Adj-RIB-Out entry carries the prover's prepended path;
   PVR compares exports against inputs as received, so strip the prover. *)
let unprepend prover (r : Bgp.Route.t) =
  match r.Bgp.Route.as_path with
  | first :: (next :: _ as rest) when Bgp.Asn.equal first prover ->
      { r with Bgp.Route.as_path = rest; next_hop = next }
  | _ -> r

(* Enumerate this epoch's live vertices: every (prover, prefix) with at
   least one admissible input and a beneficiary neighbor whose Adj-RIB-Out
   entry matches an input route.  Self-originated prefixes are not promises
   about received routes and are skipped.  With the default decision
   process and uniform local-pref the simulator's export is a minimum-length
   input, so an honest engine round raises no evidence — the test suite's
   Accuracy soak depends on exactly this enumeration. *)
let collect t =
  List.concat_map
    (fun prover ->
      let rib = Bgp.Simulator.rib t.sim prover in
      let neighbors =
        Option.value (Hashtbl.find_opt t.nbrs prover) ~default:[]
      in
      let prefixes = List.sort Bgp.Prefix.compare (Bgp.Rib.prefixes rib) in
      List.filter_map
        (fun prefix ->
          let self_originated =
            match Bgp.Rib.get_best rib prefix with
            | Some r -> (
                match r.Bgp.Route.as_path with
                | [ a ] -> Bgp.Asn.equal a prover
                | _ -> false)
            | None -> false
          in
          if self_originated then None
          else begin
            let inputs =
              List.filter_map
                (fun n ->
                  match Bgp.Rib.get_in rib ~neighbor:n prefix with
                  | Some r when Bgp.Route.path_length r <= t.max_path_len ->
                      Some (n, r)
                  | _ -> None)
                neighbors
            in
            if inputs = [] then None
            else begin
              let providers = List.map fst inputs in
              let rec pick = function
                | [] -> None
                | n :: rest -> (
                    if List.exists (Bgp.Asn.equal n) providers then pick rest
                    else
                      match
                        Bgp.Simulator.exported_route t.sim ~asn:prover
                          ~neighbor:n prefix
                      with
                      | Some out ->
                          let route = Bgp.Intern.route (unprepend prover out) in
                          if
                            List.exists
                              (fun (_, r) -> Bgp.Route.equal r route)
                              inputs
                          then Some (n, route)
                          else pick rest
                      | None -> pick rest)
              in
              match pick neighbors with
              | None -> None
              | Some (beneficiary, export) ->
                  Some
                    {
                      sn_vertex = { vprover = prover; vprefix = prefix };
                      sn_beneficiary = beneficiary;
                      sn_inputs = inputs;
                      sn_export = export;
                    }
            end
          end)
        prefixes)
    t.ases

let sign_memo tbl keyring ~as_ ~encode payload =
  let key = Bgp.Asn.to_string as_ ^ "|" ^ encode payload in
  match Hashtbl.find_opt tbl key with
  | Some s ->
      Pvr_obs.incr sign_hits;
      s
  | None ->
      Pvr_obs.incr sign_misses;
      let s = Pvr.Wire.sign keyring ~as_ ~encode payload in
      Hashtbl.add tbl key s;
      s

let providers_string providers =
  String.concat "," (List.map Bgp.Asn.to_string providers)

(* The honest fast path: Proto_min.prove re-built on derived commitments and
   the memo tables, so recommitting to unchanged routes is pure cache hits.
   A pure function of (keyring, salt period, snapshot): no DRBG draws. *)
let fast_round keyring ~max_path_len ~wire_epoch vc (sn : snapshot) =
  let prover = sn.sn_vertex.vprover and prefix = sn.sn_vertex.vprefix in
  let beneficiary = sn.sn_beneficiary in
  let announces =
    List.map
      (fun (n, r) ->
        ( n,
          sign_memo vc.ann_memo keyring ~as_:n
            ~encode:Pvr.Wire.encode_announce
            { Pvr.Wire.ann_epoch = wire_epoch; ann_to = prover; ann_route = r }
        ))
      sn.sn_inputs
  in
  let lengths = List.map (fun (_, r) -> Bgp.Route.path_length r) sn.sn_inputs in
  let shortest = List.fold_left min max_int lengths in
  let bits = List.init max_path_len (fun i -> shortest <= i + 1) in
  let ctx i =
    Printf.sprintf "%s|%s|%d|%d" (Bgp.Asn.to_string prover)
      (Bgp.Prefix.to_string prefix) wire_epoch (i + 1)
  in
  let committed =
    (* Vector-level memo: a quiet vertex recommitting to the same bit
       pattern within a salt period pays zero hash work.  [ctx] embeds the
       wire epoch, which is constant within a period, so vector hits return
       the very commitments a per-bit recomputation would produce. *)
    C.Commitment.Cache.commit_bit_vector vc.ccache
      ~vertex:(vertex_key sn.sn_vertex) ~context:ctx bits
  in
  let commit =
    sign_memo vc.cmt_memo keyring ~as_:prover ~encode:Pvr.Wire.encode_commit
      {
        Pvr.Wire.cmt_epoch = wire_epoch;
        cmt_prefix = prefix;
        cmt_scheme = Pvr.Proto_min.scheme;
        cmt_commitments =
          List.map
            (fun ((c : C.Commitment.commitment), _) -> (c :> string))
            committed;
      }
  in
  let openings = List.map snd committed in
  let opening_at i = List.nth openings (i - 1) in
  let neighbor_disclosures =
    List.map
      (fun (n, (ann : Pvr.Wire.announce Pvr.Wire.signed)) ->
        let len =
          Bgp.Route.path_length ann.Pvr.Wire.payload.Pvr.Wire.ann_route
        in
        (n, { Pvr.Proto_common.nd_index = len; nd_opening = opening_at len }))
      announces
  in
  let provenance =
    List.find_opt
      (fun (_, (ann : Pvr.Wire.announce Pvr.Wire.signed)) ->
        Bgp.Route.equal ann.Pvr.Wire.payload.Pvr.Wire.ann_route sn.sn_export)
      announces
  in
  let export =
    Option.map
      (fun (_, ann) ->
        sign_memo vc.exp_memo keyring ~as_:prover
          ~encode:Pvr.Wire.encode_export
          {
            Pvr.Wire.exp_epoch = wire_epoch;
            exp_to = beneficiary;
            exp_route = sn.sn_export;
            exp_provenance = Some ann;
          })
      provenance
  in
  let bd =
    {
      Pvr.Proto_common.bd_openings = List.mapi (fun i o -> (i + 1, o)) openings;
      bd_export = export;
    }
  in
  let raised = ref [] in
  List.iter
    (fun (n, ann) ->
      let disclosure = List.assoc_opt n neighbor_disclosures in
      List.iter
        (fun e -> raised := e :: !raised)
        (Pvr.Proto_min.check_neighbor keyring ~me:n ~my_announce:ann ~commit
           ~disclosure))
    announces;
  List.iter
    (fun e -> raised := e :: !raised)
    (Pvr.Proto_min.check_beneficiary keyring ~me:beneficiary ~commit
       ~disclosure:bd);
  let raised = List.rev !raised in
  let verdicts = List.map (Pvr.Judge.evaluate_offline keyring) raised in
  let detected = raised <> [] in
  let convicted = List.exists (fun v -> v = Pvr.Judge.Guilty) verdicts in
  let commit_hex =
    String.sub
      (C.Sha256.digest_hex
         (String.concat "" commit.Pvr.Wire.payload.Pvr.Wire.cmt_commitments))
      0 16
  in
  let providers = List.map fst sn.sn_inputs in
  let line =
    Printf.sprintf "%s %s b=%s prov=%s det=%b conv=%b ev=%d c=%s"
      (Bgp.Asn.to_string prover)
      (Bgp.Prefix.to_string prefix)
      (Bgp.Asn.to_string beneficiary)
      (providers_string providers)
      detected convicted (List.length raised) commit_hex
  in
  {
    vx_vertex = sn.sn_vertex;
    vx_beneficiary = beneficiary;
    vx_providers = providers;
    vx_routes = sn.sn_inputs;
    vx_recomputed = true;
    vx_behaviour = Pvr.Adversary.Honest;
    vx_detected = detected;
    vx_convicted = convicted;
    vx_evidence = List.length raised;
    vx_kinds = List.sort_uniq String.compare (List.map Pvr.Evidence.kind raised);
    vx_leaked_bits = 0;
    vx_excess_bits = 0;
    vx_net = None;
    vx_line = line;
  }

(* Fault-injected (or Byzantine) rounds delegate to the full runner.  The
   round's DRBG is seeded from (engine secret, vertex, salt period, snapshot
   digest), making the outcome a pure function of the vertex state — the
   same schedule regardless of scheduling order, jobs, or whether the cache
   skipped the vertex last epoch. *)
let faulty_round keyring ~max_path_len ~wire_epoch ~secret ~plan ~faults
    (sn : snapshot) =
  let behaviour = plan.Pvr.Adversary.rp_behaviour in
  let prover = sn.sn_vertex.vprover and prefix = sn.sn_vertex.vprefix in
  let seed =
    String.concat "|"
      [
        secret;
        "round";
        vertex_key sn.sn_vertex;
        string_of_int wire_epoch;
        snapshot_digest sn;
      ]
  in
  let rng = C.Drbg.create ~seed in
  let module L = Pvr.Leakage in
  let ledger = L.Ledger.create () in
  let nr =
    Pvr.Runner.min_round_faulty ?faults ~max_path_len ~ledger
      ~comply:plan.Pvr.Adversary.rp_comply behaviour rng keyring ~prover
      ~beneficiary:sn.sn_beneficiary ~epoch:wire_epoch ~prefix
      ~routes:sn.sn_inputs
  in
  let base = nr.Pvr.Runner.base in
  let providers = List.map fst sn.sn_inputs in
  (* Leakage accounting: audit every party's observed view against its
     plain-BGP baseline under the Figure-1 α.  The beneficiary baseline is
     the promise-kept export, so a cheating round's inconsistent
     disclosures legitimately show positive excess — that is the meter
     flagging the cheat, not a protocol leak. *)
  let alpha =
    Pvr.Access_control.figure1 ~beneficiary:sn.sn_beneficiary ~providers
  in
  let view_of v = L.Ledger.view ledger ~viewer:v in
  let provider_audits =
    List.map
      (fun (p, r) ->
        let baseline = L.plain_bgp_provider ~me:p ~my_route:r in
        L.audit
          ~viewer:(Bgp.Asn.to_string p)
          ~authorized:(L.alpha_authorizes alpha ~viewer:p)
          ~baseline
          ~observed:(baseline @ view_of p)
          ())
      sn.sn_inputs
  in
  let bene_baseline = L.plain_bgp_beneficiary ~exported:(Some sn.sn_export) in
  let bene_audit =
    L.audit
      ~viewer:(Bgp.Asn.to_string sn.sn_beneficiary)
      ~authorized:(L.alpha_authorizes alpha ~viewer:sn.sn_beneficiary)
      ~baseline:bene_baseline
      ~observed:(bene_baseline @ view_of sn.sn_beneficiary)
      ()
  in
  let coalition_audits =
    if plan.Pvr.Adversary.rp_coalition > 1 then begin
      (* [sn_inputs] is sorted by ASN: the coalition is the first [size]
         providers pooling their disclosed bits. *)
      let members =
        List.filteri
          (fun i _ -> i < plan.Pvr.Adversary.rp_coalition)
          sn.sn_inputs
      in
      let baseline =
        L.pooled
          (List.map
             (fun (p, r) -> L.plain_bgp_provider ~me:p ~my_route:r)
             members)
      in
      let observed =
        L.pooled (baseline :: List.map (fun (p, _) -> view_of p) members)
      in
      [
        L.audit
          ~viewer:
            ("coalition:" ^ providers_string (List.map fst members))
          ~authorized:(fun f ->
            List.exists
              (fun (p, _) -> L.alpha_authorizes alpha ~viewer:p f)
              members)
          ~baseline ~observed ();
      ]
    end
    else []
  in
  let audits = provider_audits @ (bene_audit :: coalition_audits) in
  let leaked =
    List.fold_left
      (fun n v -> n + L.view_bits (view_of v))
      0
      (L.Ledger.viewers ledger)
  in
  let excess =
    List.fold_left (fun n a -> n + a.L.au_excess_bits) 0 audits
  in
  let line =
    Printf.sprintf
      "%s %s b=%s prov=%s det=%b conv=%b ev=%d m=%d cb=%d lk=%d xs=%d"
      (Bgp.Asn.to_string prover)
      (Bgp.Prefix.to_string prefix)
      (Bgp.Asn.to_string sn.sn_beneficiary)
      (providers_string providers)
      base.Pvr.Runner.detected base.Pvr.Runner.convicted
      (List.length base.Pvr.Runner.raised)
      base.Pvr.Runner.messages base.Pvr.Runner.commit_bytes leaked excess
  in
  {
    vx_vertex = sn.sn_vertex;
    vx_beneficiary = sn.sn_beneficiary;
    vx_providers = providers;
    vx_routes = sn.sn_inputs;
    vx_recomputed = true;
    vx_behaviour = behaviour;
    vx_detected = base.Pvr.Runner.detected;
    vx_convicted = base.Pvr.Runner.convicted;
    vx_evidence = List.length base.Pvr.Runner.raised;
    vx_kinds =
      List.sort_uniq String.compare
        (List.map (fun (_, e) -> Pvr.Evidence.kind e) base.Pvr.Runner.raised);
    vx_leaked_bits = leaked;
    vx_excess_bits = excess;
    vx_net = Some nr;
    vx_line = line;
  }

let run_round t ~wire_epoch vc sn =
  (* The plan is a pure function of (secret, vertex, wire epoch): identical
     for every jobs/shards/cache configuration, and stable within a salt
     period so carried-forward outcomes agree with recomputation. *)
  let plan =
    Pvr.Adversary.plan_round t.strategy ~seed:t.secret
      ~prover:sn.sn_vertex.vprover ~prefix:sn.sn_vertex.vprefix
      ~epoch:wire_epoch
  in
  if t.faults <> None || plan.Pvr.Adversary.rp_behaviour <> Pvr.Adversary.Honest
  then
    faulty_round t.keyring ~max_path_len:t.max_path_len ~wire_epoch
      ~secret:t.secret ~plan ~faults:t.faults sn
  else fast_round t.keyring ~max_path_len:t.max_path_len ~wire_epoch vc sn

let report_line r =
  Printf.sprintf
    "epoch=%d period=%d changes=%d msgs=%d vertices=%d dirty=%d skipped=%d \
     detected=%d convicted=%d digest=%s"
    r.ep_epoch r.ep_period r.ep_changes r.ep_msgs r.ep_vertices r.ep_dirty
    r.ep_skipped r.ep_detected r.ep_convicted r.ep_digest

(* ---- vertex state records -------------------------------------------------- *)

(* One vertex's carry-forward state, serialized.  This encoding is shared
   byte-for-byte between checkpoint blobs (a count followed by records)
   and spill pages (exactly one record per page frame): a spilled slot can
   be passed straight through into a checkpoint, and unspill reuses the
   checkpoint reader. *)
module Codec = Pvr_store.Codec

type state_record = {
  sr_key : string;
  sr_period : int;
  sr_digest : string;
  sr_prover : int;
  sr_addr : int;
  sr_len : int;
  sr_beneficiary : int;
  sr_providers : int list;
  sr_behaviour : string;
  sr_detected : bool;
  sr_convicted : bool;
  sr_evidence : int;
  sr_kinds : string list;
  sr_leaked : int;
  sr_excess : int;
  sr_line : string;
}

let encode_state buf key vs =
  Codec.str buf key;
  Codec.u32 buf vs.vs_period;
  Codec.str buf vs.vs_digest;
  let o = vs.vs_outcome in
  Codec.u32 buf (Bgp.Asn.to_int o.vx_vertex.vprover);
  Codec.u32 buf o.vx_vertex.vprefix.Bgp.Prefix.addr;
  Codec.u32 buf o.vx_vertex.vprefix.Bgp.Prefix.len;
  Codec.u32 buf (Bgp.Asn.to_int o.vx_beneficiary);
  Codec.u32 buf (List.length o.vx_providers);
  List.iter (fun a -> Codec.u32 buf (Bgp.Asn.to_int a)) o.vx_providers;
  Codec.str buf (Pvr.Adversary.to_string o.vx_behaviour);
  Codec.bool_ buf o.vx_detected;
  Codec.bool_ buf o.vx_convicted;
  Codec.u32 buf o.vx_evidence;
  Codec.u32 buf (List.length o.vx_kinds);
  List.iter (fun k -> Codec.str buf k) o.vx_kinds;
  Codec.u32 buf o.vx_leaked_bits;
  Codec.u32 buf o.vx_excess_bits;
  Codec.str buf o.vx_line

let read_state r =
  let sr_key = Codec.get_str r in
  let sr_period = Codec.get_u32 r in
  let sr_digest = Codec.get_str r in
  let sr_prover = Codec.get_u32 r in
  let sr_addr = Codec.get_u32 r in
  let sr_len = Codec.get_u32 r in
  let sr_beneficiary = Codec.get_u32 r in
  let np = Codec.get_u32 r in
  let sr_providers = List.init np (fun _ -> Codec.get_u32 r) in
  let sr_behaviour = Codec.get_str r in
  let sr_detected = Codec.get_bool r in
  let sr_convicted = Codec.get_bool r in
  let sr_evidence = Codec.get_u32 r in
  let nk = Codec.get_u32 r in
  let sr_kinds = List.init nk (fun _ -> Codec.get_str r) in
  let sr_leaked = Codec.get_u32 r in
  let sr_excess = Codec.get_u32 r in
  let sr_line = Codec.get_str r in
  {
    sr_key;
    sr_period;
    sr_digest;
    sr_prover;
    sr_addr;
    sr_len;
    sr_beneficiary;
    sr_providers;
    sr_behaviour;
    sr_detected;
    sr_convicted;
    sr_evidence;
    sr_kinds;
    sr_leaked;
    sr_excess;
    sr_line;
  }

let outcome_of_record sr =
  let vertex =
    {
      vprover = Bgp.Asn.of_int sr.sr_prover;
      vprefix = Bgp.Prefix.make ~addr:sr.sr_addr ~len:sr.sr_len;
    }
  in
  {
    vx_vertex = vertex;
    vx_beneficiary = Bgp.Asn.of_int sr.sr_beneficiary;
    vx_providers = List.map Bgp.Asn.of_int sr.sr_providers;
    vx_routes = [];
    vx_recomputed = false;
    vx_behaviour =
      (match
         List.find_opt
           (fun b -> Pvr.Adversary.to_string b = sr.sr_behaviour)
           Pvr.Adversary.all
       with
      | Some b -> b
      | None -> Pvr.Adversary.Honest);
    vx_detected = sr.sr_detected;
    vx_convicted = sr.sr_convicted;
    vx_evidence = sr.sr_evidence;
    vx_kinds = sr.sr_kinds;
    vx_leaked_bits = sr.sr_leaked;
    vx_excess_bits = sr.sr_excess;
    vx_net = None;
    vx_line = sr.sr_line;
  }

(* ---- memory governor ------------------------------------------------------- *)

let heap_words () = (Gc.quick_stat ()).Gc.heap_words

let page_blob key vs =
  let buf = Buffer.create 256 in
  encode_state buf key vs;
  Buffer.contents buf

(* Read a spilled vertex's carried outcome back from its page.  [None] on
   any failure — a missing pager, a torn frame, a mangled record — which
   the caller turns into a recomputation; the purity contract makes that
   digest-identical, so a corrupt page can degrade performance but never
   poison a result. *)
let page_outcome t sp =
  match t.pager with
  | None -> None
  | Some pg -> (
      match pg.pg_read ~off:sp.sp_off with
      | Error _ ->
          Pvr_obs.incr c_mem_page_read_failures;
          None
      | Ok blob -> (
          Pvr_obs.incr c_mem_page_reads;
          match Codec.decode blob read_state with
          | Error _ ->
              Pvr_obs.incr c_mem_page_read_failures;
              None
          | Ok sr -> Some (outcome_of_record sr)))

let drop_cold_caches t =
  let n = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      match s with
      | Resident vs when vs.vs_touched < t.epoch_no && vs.vs_cache <> None ->
          vs.vs_cache <- None;
          incr n
      | _ -> ())
    t.states;
  Pvr_obs.add c_mem_cache_drops !n;
  !n

(* Page resident vertices out, coldest (oldest recomputation) first; with
   [all] even this epoch's vertices go.  The key tiebreak keeps the spill
   order — and hence the journal layout — deterministic. *)
let spill_cold t pg ~on_phase ~all =
  let candidates =
    Hashtbl.fold
      (fun k s acc ->
        match s with
        | Resident vs when all || vs.vs_touched < t.epoch_no -> (k, vs) :: acc
        | _ -> acc)
      t.states []
    |> List.sort (fun (k1, a) (k2, b) ->
           match Int.compare a.vs_touched b.vs_touched with
           | 0 -> String.compare k1 k2
           | c -> c)
  in
  let first = ref true in
  List.iter
    (fun (key, vs) ->
      let off = pg.pg_append ~key ~blob:(page_blob key vs) in
      Hashtbl.replace t.states key
        (Spilled
           { sp_digest = vs.vs_digest; sp_period = vs.vs_period; sp_off = off });
      Pvr_obs.incr c_mem_spills;
      if !first then begin
        first := false;
        (* Kill point: the first page is on disk (possibly torn), the slot
           table already points at it, and no committed record references
           it — crashsoak proves recovery from exactly here. *)
        on_phase "spill"
      end)
    candidates;
  List.length candidates

(* Shed load in stages until the major heap fits under the ceiling:
   1. drop cold memo tables (pure accelerators, rebuilt on demand);
   2. spill cold vertex state to the store, LRU first;
   3. throttle — shed everything sheddable and retain no memo tables next
      epoch.  [Gc.compact] between stages because [heap_words] measures
      the major heap's footprint, which only shrinks on compaction. *)
let govern t ~on_phase =
  if t.mem_ceiling > 0 then begin
    let over () = heap_words () > t.mem_ceiling in
    if over () then begin
      if drop_cold_caches t > 0 then Gc.compact ();
      (match t.pager with
      | Some pg when over () ->
          if spill_cold t pg ~on_phase ~all:false > 0 then Gc.compact ()
      | _ -> ());
      if over () then begin
        Pvr_obs.incr c_mem_throttles;
        t.throttled <- true;
        Hashtbl.iter
          (fun _ s ->
            match s with
            | Resident vs when vs.vs_cache <> None ->
                vs.vs_cache <- None;
                Pvr_obs.incr c_mem_cache_drops
            | _ -> ())
          t.states;
        (match t.pager with
        | Some pg -> ignore (spill_cold t pg ~on_phase ~all:true)
        | None -> ());
        Gc.compact ()
      end
      else t.throttled <- false
    end
    else t.throttled <- false;
    Pvr_obs.set_gauge g_mem_resident (resident_states t);
    Pvr_obs.set_gauge g_mem_spilled (spilled_states t)
  end

(* BGP path hunting on a withdrawal can revisit a large share of the graph
   several times over before settling, so the simulator's default
   1M-message dispute cap is too tight for 10k+-AS worlds.  Scale the
   budget with the topology — small worlds keep the old cap, so a genuine
   policy dispute still fails fast. *)
let convergence_budget t = max 1_000_000 (1_000 * List.length t.ases)

let epoch ?(apply = fun _ -> 0) ?(on_phase = fun (_ : string) -> ()) t =
  Pvr_obs.with_span "engine.epoch" @@ fun () ->
  t.epoch_no <- t.epoch_no + 1;
  let period = (t.epoch_no - 1) / t.salt_every in
  let wire_epoch = period + 1 in
  let changes = apply t.sim in
  let msgs = Bgp.Simulator.run ~max_messages:(convergence_budget t) t.sim in
  on_phase "apply";
  let snapshots = collect t in
  on_phase "collect";
  let page_activity = ref false in
  let classified =
    List.map
      (fun sn ->
        let key = vertex_key sn.sn_vertex in
        let dg = snapshot_digest sn in
        match Hashtbl.find_opt t.states key with
        | Some (Resident vs)
          when t.cache && vs.vs_period = period && vs.vs_digest = dg ->
            `Clean (sn, vs)
        | Some (Spilled sp)
          when t.cache && sp.sp_period = period && sp.sp_digest = dg -> (
            (* Clean but cold: the carried outcome lives in its page
               frame.  Read it transiently — it is garbage after this
               epoch's report — so a quiet cold vertex costs O(1) retained
               heap.  An unreadable page degrades to recomputation, which
               the purity contract makes digest-identical. *)
            page_activity := true;
            match page_outcome t sp with
            | Some outcome -> `Carried outcome
            | None ->
                Hashtbl.remove t.states key;
                `Dirty (sn, dg, None))
        | Some (Spilled _) ->
            (* The vertex changed while cold: its page holds a stale
               outcome and no memo tables were ever paged, so recompute
               from scratch and re-admit it resident. *)
            page_activity := true;
            Pvr_obs.incr c_mem_unspills;
            Hashtbl.remove t.states key;
            `Dirty (sn, dg, None)
        | Some (Resident vs) -> `Dirty (sn, dg, Some vs)
        | None -> `Dirty (sn, dg, None))
      snapshots
  in
  if !page_activity then on_phase "unspill";
  let dirty =
    List.filter_map
      (function
        | `Dirty (sn, dg, prev) -> Some (sn, dg, prev)
        | `Clean _ | `Carried _ -> None)
      classified
  in
  let caches =
    Array.of_list
      (List.map
         (fun (_, _, prev) ->
           match prev with
           | Some vs when t.cache && vs.vs_period = period -> (
               match vs.vs_cache with
               | Some vc -> vc
               | None -> fresh_vcache t ~period)
           | Some vs when t.cache -> (
               match vs.vs_cache with
               | Some vc -> recycle_vcache t vc ~period
               | None -> fresh_vcache t ~period)
           | _ -> fresh_vcache t ~period)
         dirty)
  in
  let tasks =
    Array.of_list dirty
    |> Array.mapi (fun i (sn, _, _) ->
           fun () -> run_round t ~wire_epoch caches.(i) sn)
  in
  let results =
    if t.shards > 0 then begin
      (* Static per-(prover,prefix) partition: no cross-domain work
         stealing on the dirty set.  Task order — and therefore the merged
         outcome order and the report digest — is identical to the dynamic
         pool's. *)
      let shard_ids =
        Array.of_list
          (List.map
             (fun (sn, _, _) -> shard_of ~shards:t.shards sn.sn_vertex)
             dirty)
      in
      Pool.run_sharded ~jobs:t.jobs ~shard:(fun i -> shard_ids.(i)) tasks
    end
    else Pool.run ~jobs:t.jobs tasks
  in
  on_phase "verify";
  (* Merge back in vertex order; record fresh state for recomputed vertices,
     carry the previous outcome for clean ones. *)
  let i = ref 0 in
  (* Under throttle (governor stage 3) no memo tables are retained: fresh
     caches still accelerate within the epoch, then become garbage. *)
  let retain = not t.throttled in
  let outcomes =
    List.map
      (function
        | `Clean ((_ : snapshot), vs) ->
            { vs.vs_outcome with vx_recomputed = false }
        | `Carried outcome -> outcome
        | `Dirty (sn, dg, prev) ->
            let k = !i in
            incr i;
            let outcome = results.(k) in
            let vc = if retain then Some caches.(k) else None in
            (match prev with
            | Some vs ->
                vs.vs_digest <- dg;
                vs.vs_period <- period;
                vs.vs_outcome <- outcome;
                vs.vs_cache <- vc;
                vs.vs_touched <- t.epoch_no
            | None ->
                Hashtbl.replace t.states (vertex_key sn.sn_vertex)
                  (Resident
                     {
                       vs_digest = dg;
                       vs_period = period;
                       vs_outcome = outcome;
                       vs_cache = vc;
                       vs_touched = t.epoch_no;
                     }));
            outcome)
      classified
  in
  (* Prune only state left over from earlier salt periods: a vertex that
     flaps away and back within the current period keeps its state (a
     snapshot match skips it outright, a partial match reuses its memo
     tables), while rotation invalidates the tables anyway. *)
  let live_keys = Hashtbl.create (List.length snapshots) in
  List.iter
    (fun sn -> Hashtbl.replace live_keys (vertex_key sn.sn_vertex) ())
    snapshots;
  let dead =
    Hashtbl.fold
      (fun k s acc ->
        let p =
          match s with
          | Resident vs -> vs.vs_period
          | Spilled sp -> sp.sp_period
        in
        if p < period && not (Hashtbl.mem live_keys k) then k :: acc else acc)
      t.states []
  in
  List.iter (Hashtbl.remove t.states) dead;
  t.live <- List.map (fun sn -> sn.sn_vertex) snapshots;
  govern t ~on_phase;
  let n_vertices = List.length snapshots in
  let n_dirty = List.length dirty in
  let n_skipped = n_vertices - n_dirty in
  Pvr_obs.incr c_epochs;
  Pvr_obs.add c_rounds n_dirty;
  Pvr_obs.add c_skipped n_skipped;
  if Pvr_obs.enabled () then begin
    let s = Gc.quick_stat () in
    Pvr_obs.set_gauge g_heap_words s.Gc.heap_words;
    Pvr_obs.set_gauge g_allocated_words
      (int_of_float (s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words))
  end;
  let detected =
    List.fold_left (fun n o -> if o.vx_detected then n + 1 else n) 0 outcomes
  in
  let convicted =
    List.fold_left (fun n o -> if o.vx_convicted then n + 1 else n) 0 outcomes
  in
  (* Hash-chain the canonical epoch record.  Everything hashed here is
     independent of jobs and of the cache setting (dirty/skipped are not
     included), which is exactly the determinism contract. *)
  let canonical =
    String.concat "\n"
      (Printf.sprintf "epoch %d period %d changes %d msgs %d vertices %d"
         t.epoch_no period changes msgs n_vertices
      :: List.map (fun o -> o.vx_line) outcomes)
  in
  t.chain <- C.Sha256.digest_hex (t.chain ^ "\n" ^ canonical);
  {
    ep_epoch = t.epoch_no;
    ep_period = period;
    ep_changes = changes;
    ep_msgs = msgs;
    ep_vertices = n_vertices;
    ep_dirty = n_dirty;
    ep_skipped = n_skipped;
    ep_detected = detected;
    ep_convicted = convicted;
    ep_outcomes = outcomes;
    ep_digest = t.chain;
  }

(* ---- checkpoint / resume --------------------------------------------------- *)

(* Fast-forward: apply the epoch's update batch and converge the simulator
   without verifying anything.  Resume replays the (deterministic) churn
   stream through this to rebuild RIB state cheaply — no crypto, no DRBG
   draws from the engine's own machinery. *)
let skip_epoch ?(apply = fun _ -> 0) t =
  t.epoch_no <- t.epoch_no + 1;
  let changes = apply t.sim in
  let msgs = Bgp.Simulator.run ~max_messages:(convergence_budget t) t.sim in
  (changes, msgs)

(* Canonical fingerprint of the entire simulator state the engine can see,
   maintained incrementally: the simulator marks every (AS, prefix) pair
   its decision/export step touches, [sync_rib] folds those pairs'
   canonical entries ({!Bgp.Rib.prefix_entry}) into the digest-level
   tracker, and the global digest falls out in O(dirty) per refresh
   instead of an O(world) walk.  [rib_digest_full] is the naive twin the
   differential-oracle suite pins the tracker against. *)
let sync_rib t =
  List.iter
    (fun (asn, prefix) ->
      let entry = Bgp.Rib.prefix_entry (Bgp.Simulator.rib t.sim asn) prefix in
      ignore (Bgp.Rib_delta.update t.rtracker ~asn ~prefix ~entry))
    (Bgp.Simulator.drain_dirty t.sim)

let rib_digest t =
  sync_rib t;
  Bgp.Rib_delta.digest t.rtracker

let rib_changes t =
  sync_rib t;
  Bgp.Rib_delta.drain_changes t.rtracker

let rib_full t =
  sync_rib t;
  Bgp.Rib_delta.encode_full t.rtracker

let rib_digest_full t =
  let tr = Bgp.Rib_delta.create () in
  List.iter
    (fun asn ->
      let rib = Bgp.Simulator.rib t.sim asn in
      List.iter
        (fun p ->
          ignore
            (Bgp.Rib_delta.update tr ~asn ~prefix:p
               ~entry:(Bgp.Rib.prefix_entry rib p)))
        (Bgp.Rib.prefixes rib))
    t.ases;
  Bgp.Rib_delta.digest tr

module Checkpoint = struct
  type info = {
    ck_epoch : int;
    ck_chain : string;
    ck_run_id : string;
    ck_rib : string;
    ck_states : int;
  }

  (* v4: the RIB digest is now the delta-tracker digest (two-level, per-AS
     over per-pair entry digests) rather than the flat O(world) walk — a
     semantic change to [ck_rib]/[er_rib], so older blobs are refused and
     resume falls back to full recomputation, which the determinism
     contract makes harmless.  v3 added per-vertex evidence-kind tags; v2
     behaviour and leaked/excess bit counts. *)
  let ck_version = 4
  let run_id t = C.Sha256.digest_hex ("pvr-engine-run-id|" ^ t.secret)

  let save t =
    let buf = Buffer.create 4096 in
    Codec.u32 buf ck_version;
    Codec.u32 buf t.epoch_no;
    Codec.str buf t.chain;
    Codec.str buf (run_id t);
    Codec.str buf (rib_digest t);
    let slots =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.states []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    (* A spilled slot's page blob is exactly one state-record encoding, so
       it passes through into the checkpoint untouched — no unspill storm
       on the snapshot cadence.  An unreadable page is skipped: the vertex
       recomputes once after resume, digest-identical. *)
    let records =
      List.filter_map
        (fun (key, slot) ->
          match slot with
          | Resident vs -> Some (page_blob key vs)
          | Spilled sp -> (
              match t.pager with
              | None -> None
              | Some pg -> (
                  match pg.pg_read ~off:sp.sp_off with
                  | Ok blob ->
                      Pvr_obs.incr c_mem_page_reads;
                      Some blob
                  | Error _ ->
                      Pvr_obs.incr c_mem_page_read_failures;
                      None)))
        slots
    in
    Codec.u32 buf (List.length records);
    List.iter (Buffer.add_string buf) records;
    Buffer.contents buf

  let parse blob =
    Codec.decode blob (fun r ->
        let v = Codec.get_u32 r in
        if v <> ck_version then
          raise (Codec.Malformed ("unsupported checkpoint version "
                                  ^ string_of_int v));
        let ck_epoch = Codec.get_u32 r in
        let ck_chain = Codec.get_str r in
        let ck_run_id = Codec.get_str r in
        let ck_rib = Codec.get_str r in
        let n = Codec.get_u32 r in
        let states = List.init n (fun _ -> read_state r) in
        ( { ck_epoch; ck_chain; ck_run_id; ck_rib; ck_states = n }, states ))

  let info blob = Result.map fst (parse blob)

  (* Rebuild a vstate from its serialized record.  Memo tables restart
     absent ([vs_cache = None], built lazily on the next dirty hit):
     recomputation is pure, so empty tables cost redundant crypto but can
     never change an outcome.  [vx_routes]/[vx_net] are not persisted; a
     carried-forward outcome only contributes its canonical line to the
     digest. *)
  let vstate_of_record sr =
    {
      vs_digest = sr.sr_digest;
      vs_period = sr.sr_period;
      vs_outcome = outcome_of_record sr;
      vs_cache = None;
      vs_touched = 0;
    }

  let load t blob =
    match parse blob with
    | Error e -> Error ("corrupt checkpoint: " ^ e)
    | Ok (info, records) ->
        if info.ck_run_id <> run_id t then
          Error "checkpoint belongs to a different run (seed or parameters)"
        else if info.ck_epoch <> t.epoch_no then
          Error
            (Printf.sprintf
               "engine fast-forwarded to epoch %d but checkpoint is for \
                epoch %d"
               t.epoch_no info.ck_epoch)
        else if rib_digest t <> info.ck_rib then
          Error "replayed simulator state diverges from checkpoint RIB digest"
        else begin
          Hashtbl.reset t.states;
          List.iter
            (fun sr ->
              Hashtbl.replace t.states sr.sr_key
                (Resident (vstate_of_record sr)))
            records;
          t.chain <- info.ck_chain;
          Ok info
        end

  let advance t ~epoch ~chain ~rib =
    if t.epoch_no <> epoch then
      Error
        (Printf.sprintf "engine at epoch %d, journal record is for epoch %d"
           t.epoch_no epoch)
    else if rib_digest t <> rib then
      Error "replayed simulator state diverges from journal RIB digest"
    else begin
      t.chain <- chain;
      Ok ()
    end
end
