type 'a slot = Pending | Done of 'a | Failed of exn

let run_inline tasks = Array.map (fun f -> f ()) tasks

let run ~jobs tasks =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then run_inline tasks
  else begin
    let jobs = min jobs n in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* Distinct array cells per task: no two domains ever write the
             same location, and the joins below publish every write. *)
          (results.(i) <-
             (match tasks.(i) () with
             | v -> Done v
             | exception e -> Failed e));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    Array.map
      (function
        | Done v -> v
        | Failed e -> raise e
        | Pending -> assert false (* next passed n only after every slot *))
      results
  end

let run_sharded ~jobs ~shard tasks =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then run_inline tasks
  else begin
    let jobs = min jobs n in
    let results = Array.make n Pending in
    (* Static ownership: domain d executes exactly the tasks whose shard
       maps to d, in task order.  No atomic handout, no work stealing —
       each domain touches a disjoint set of slots, and the shard function
       (not scheduling luck) decides placement, so a task lands on the
       same owner for any interleaving. *)
    let worker d () =
      for i = 0 to n - 1 do
        if (shard i land max_int) mod jobs = d then
          results.(i) <-
            (match tasks.(i) () with v -> Done v | exception e -> Failed e)
      done
    in
    let domains = Array.init jobs (fun d -> Domain.spawn (worker d)) in
    Array.iter Domain.join domains;
    Array.map
      (function
        | Done v -> v
        | Failed e -> raise e
        | Pending ->
            assert false (* every i maps to exactly one domain in 0..jobs-1 *))
      results
  end
