(* Persistent deterministic worker pool over OCaml 5 domains.

   Earlier revisions spawned [jobs] fresh domains per call and joined them
   at the end; at engine epoch cadence the spawn/join overhead plus the
   stop-the-world cost of domain startup dominated the work and made
   [jobs=2] slower than [jobs=1] (E13).  The pool now keeps a single
   process-wide set of long-lived worker domains that block on a condition
   variable between rounds.  A round hands each participating worker a
   self-contained closure; completion is a counted barrier under the pool
   mutex, whose release/acquire pair is the happens-before edge that
   publishes the per-task result slots to the caller (the role
   [Domain.join] used to play).

   Determinism is unchanged: results land in per-task slots and are
   returned in task order no matter which worker ran what or how rounds
   interleave.  Dynamic handout now hands out *chunks* of consecutive
   tasks (coarser work units — one atomic fetch per chunk instead of per
   task); static sharded ownership remains a pure function of the shard
   map.  Each worker flushes its domain-local intern arena
   ({!Pvr_bgp.Intern.flush}) before signalling the barrier, so canonical
   ids exist in the global tables by the time the caller resumes. *)

type 'a slot = Pending | Done of 'a | Failed of exn

let run_inline tasks = Array.map (fun f -> f ()) tasks

(* Upper bound on resident worker domains.  [run ~jobs] with a larger
   [jobs] still executes every task — extra parallelism is folded onto the
   existing workers (dynamic mode drains chunks; sharded mode assigns
   multiple shard roles per worker). *)
let max_workers = 16

(* Test-only scheduler perturbation: called with the task index right
   before a pool worker executes that task.  The stress battery installs a
   seeded random sleep here to prove digests are order-independent. *)
let perturb_hook : (int -> unit) ref = ref (fun _ -> ())

let set_perturb = function
  | Some f -> perturb_hook := f
  | None -> perturb_hook := fun _ -> ()

type state = {
  mutable pid : int;
      (* pool identity: a fork inherits this record but not the worker
         domains, so a pid mismatch means "rebuild from scratch" (the
         crashsoak harness forks children that run engines). *)
  mutable mu : Mutex.t;
  mutable work_cond : Condition.t; (* workers: mailbox or queue non-empty *)
  mutable done_cond : Condition.t; (* callers: a round/async item finished *)
  mutable mailbox : (unit -> unit) option array; (* per-worker round share *)
  mutable domains : unit Domain.t option array;
  mutable stop : bool;
  async_q : (unit -> unit) Queue.t; (* serve-style fire-and-signal items *)
  busy_s : float array; (* cumulative busy seconds per worker *)
  idle_s : float array; (* cumulative (round wall - busy) per worker *)
  tasks_n : int array; (* cumulative tasks executed per worker *)
}

let st =
  {
    pid = -1;
    mu = Mutex.create ();
    work_cond = Condition.create ();
    done_cond = Condition.create ();
    mailbox = Array.make max_workers None;
    domains = Array.make max_workers None;
    stop = false;
    async_q = Queue.create ();
    busy_s = Array.make max_workers 0.0;
    idle_s = Array.make max_workers 0.0;
    tasks_n = Array.make max_workers 0;
  }

let worker_loop w () =
  let rec loop () =
    Mutex.lock st.mu;
    let job =
      let rec await () =
        if st.stop then None
        else
          match st.mailbox.(w) with
          | Some j ->
              st.mailbox.(w) <- None;
              Some j
          | None ->
              if not (Queue.is_empty st.async_q) then Some (Queue.pop st.async_q)
              else begin
                Condition.wait st.work_cond st.mu;
                await ()
              end
      in
      await ()
    in
    Mutex.unlock st.mu;
    match job with
    | None -> () (* stop requested: worker retires *)
    | Some j ->
        (* Jobs are self-contained: they catch task exceptions into slots
           and signal their own completion.  A raise escaping here would
           kill the worker silently, so swallow defensively. *)
        (try j () with _ -> ());
        loop ()
  in
  loop ()

(* Re-arm after fork: the child inherits the state record but none of the
   worker domains, and pthread condvars with dead waiters are poison. *)
let reinit_after_fork () =
  st.mu <- Mutex.create ();
  st.work_cond <- Condition.create ();
  st.done_cond <- Condition.create ();
  st.mailbox <- Array.make max_workers None;
  st.domains <- Array.make max_workers None;
  st.stop <- false;
  Queue.clear st.async_q;
  Array.fill st.busy_s 0 max_workers 0.0;
  Array.fill st.idle_s 0 max_workers 0.0;
  Array.fill st.tasks_n 0 max_workers 0

let shutdown () =
  Mutex.lock st.mu;
  st.stop <- true;
  Condition.broadcast st.work_cond;
  Mutex.unlock st.mu;
  Array.iteri
    (fun i d ->
      match d with
      | Some d ->
          Domain.join d;
          st.domains.(i) <- None
      | None -> ())
    st.domains;
  st.stop <- false

(* Spawn workers 0..w-1 if missing.  Registers a process-exit hook once so
   idle workers are joined instead of being abandoned mid-wait. *)
let at_exit_registered = ref false

let ensure_workers w =
  (* The fork check runs unlocked: a freshly forked child is
     single-threaded, and in the parent [st.pid] never changes. *)
  let pid = Unix.getpid () in
  if st.pid <> pid then begin
    reinit_after_fork ();
    st.pid <- pid;
    at_exit_registered := false
  end;
  Mutex.lock st.mu;
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit (fun () -> if st.pid = Unix.getpid () then shutdown ())
  end;
  for i = 0 to min w max_workers - 1 do
    if st.domains.(i) = None then
      st.domains.(i) <- Some (Domain.spawn (worker_loop i))
  done;
  Mutex.unlock st.mu

let worker_count () =
  Array.fold_left (fun n d -> if d = None then n else n + 1) 0 st.domains

(* ---- per-domain utilization gauges --------------------------------------- *)

(* engine.pool.domain.<w>.{busy_us,idle_us,tasks}: cumulative per-worker
   utilization so contention regressions show up in BENCH_pvr.json, not
   just wall-clock.  Gauge handles are cached per worker slot. *)
let util_gauges : (Pvr_obs.gauge * Pvr_obs.gauge * Pvr_obs.gauge) option array =
  Array.make max_workers None

let publish_utilization w =
  for k = 0 to w - 1 do
    let b, i, t =
      match util_gauges.(k) with
      | Some g -> g
      | None ->
          let p = Printf.sprintf "engine.pool.domain.%d" k in
          let g =
            ( Pvr_obs.gauge (p ^ ".busy_us"),
              Pvr_obs.gauge (p ^ ".idle_us"),
              Pvr_obs.gauge (p ^ ".tasks") )
          in
          util_gauges.(k) <- Some g;
          g
    in
    Pvr_obs.set_gauge b (int_of_float (st.busy_s.(k) *. 1e6));
    Pvr_obs.set_gauge i (int_of_float (st.idle_s.(k) *. 1e6));
    Pvr_obs.set_gauge t st.tasks_n.(k)
  done

(* ---- barrier rounds ------------------------------------------------------- *)

(* Hand worker k the closure [body k] for k < w and wait until all [w]
   report done.  The body runs outside the pool mutex; completion
   decrements [remaining] under it. *)
(* Rounds are serialized: two concurrent [run]s would otherwise race on
   the per-worker mailboxes.  In practice only the batch engine dispatches
   rounds (serve sessions run their engines inline and parallelize across
   sessions via [submit]), so this mutex is uncontended. *)
let round_mu = Mutex.create ()

let dispatch_round ~w body =
  Mutex.lock round_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock round_mu) @@ fun () ->
  ensure_workers w;
  let remaining = ref w in
  let round_busy = Array.make w 0.0 in
  let t_start = Unix.gettimeofday () in
  Mutex.lock st.mu;
  for k = 0 to w - 1 do
    st.mailbox.(k) <-
      Some
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let executed = body k in
          Pvr_bgp.Intern.flush ();
          let dt = Unix.gettimeofday () -. t0 in
          Mutex.lock st.mu;
          round_busy.(k) <- dt;
          st.busy_s.(k) <- st.busy_s.(k) +. dt;
          st.tasks_n.(k) <- st.tasks_n.(k) + executed;
          decr remaining;
          Condition.broadcast st.done_cond;
          Mutex.unlock st.mu)
  done;
  Condition.broadcast st.work_cond;
  while !remaining > 0 do
    Condition.wait st.done_cond st.mu
  done;
  let wall = Unix.gettimeofday () -. t_start in
  for k = 0 to w - 1 do
    (* Idle is this round's wall minus this worker's share of it (any
       excess is time the worker spent finishing a previous async item). *)
    st.idle_s.(k) <- st.idle_s.(k) +. Float.max 0.0 (wall -. round_busy.(k))
  done;
  Mutex.unlock st.mu;
  publish_utilization w

let collect results =
  Array.map
    (function
      | Done v -> v
      | Failed e -> raise e
      | Pending -> assert false (* the barrier released only after all *))
    results

let run ~jobs tasks =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then run_inline tasks
  else begin
    let jobs = min jobs n in
    let w = min jobs max_workers in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    (* Coarse work units: one atomic fetch claims a run of consecutive
       tasks.  8 chunks per worker keeps self-balancing across uneven
       task costs while cutting handout traffic by the chunk factor. *)
    let chunk = max 1 (n / (w * 8)) in
    let body _k =
      let executed = ref 0 in
      let rec drain () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n then begin
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            !perturb_hook i;
            (* Distinct array cells per task: no two workers ever write
               the same location. *)
            results.(i) <-
              (match tasks.(i) () with
              | v -> Done v
              | exception e -> Failed e);
            incr executed
          done;
          drain ()
        end
      in
      drain ();
      !executed
    in
    dispatch_round ~w body;
    collect results
  end

let run_sharded ~jobs ~shard tasks =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then run_inline tasks
  else begin
    let jobs = min jobs n in
    let w = min jobs max_workers in
    let results = Array.make n Pending in
    (* Static ownership: the owner of task [i] is a pure function of the
       shard map — [(shard i) mod jobs] names a role, and worker [k]
       plays every role congruent to [k] mod [w] (identical to the
       one-domain-per-role scheme whenever [jobs <= max_workers]).  No
       atomic handout, no work stealing: a task lands on the same owner
       for any interleaving, so per-owner cache locality survives across
       epochs. *)
    let body k =
      let executed = ref 0 in
      for i = 0 to n - 1 do
        if (shard i land max_int) mod jobs mod w = k then begin
          !perturb_hook i;
          results.(i) <-
            (match tasks.(i) () with v -> Done v | exception e -> Failed e);
          incr executed
        end
      done;
      !executed
    in
    dispatch_round ~w body;
    collect results
  end

(* ---- async items (the serve daemon's execution substrate) ---------------- *)

let submit job =
  (* Callers size the pool themselves (the serve daemon ensures its
     configured worker count at startup); keep a floor of two so a bare
     [submit] can never enqueue into a workerless pool. *)
  if worker_count () = 0 then ensure_workers 2;
  Mutex.lock st.mu;
  Queue.push job st.async_q;
  Condition.broadcast st.work_cond;
  Mutex.unlock st.mu
