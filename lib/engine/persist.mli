(** Durable engine sessions: glue between {!Engine} and {!Pvr_store.Store}.

    A persisted run appends two journal frames per completed epoch — an
    evidence-rows frame ({!Pvr_query.Frame}, one {!Pvr_query.Row.t} per
    live vertex) followed by the epoch summary record (epoch number, salt
    period, batch size, convergence messages, vertex/outcome tallies, the
    post-epoch hash-chain digest, the simulator RIB digest and the run
    id).  The epoch record is the commit mark for the rows before it.
    Every [snapshot_every] epochs the session also appends an
    {!Pvr_query.Evidence_index} checkpoint frame and atomically rewrites
    a full {!Engine.Checkpoint} snapshot.  Journal frames are written
    {e before} the snapshot, so the WAL invariant holds: anything a
    snapshot claims is also in the journal.

    {!resume} rebuilds a crashed run: recover the store (torn tails
    truncated, corrupt snapshots skipped), pick the newest usable record,
    replay the deterministic churn stream with {!Engine.skip_epoch} up to
    it, validate run id + RIB digest, and install chain and carried
    states.  The continued run produces a digest byte-identical to an
    uninterrupted one — for any jobs value, cache on or off, and under
    fault-injected networks — because outcomes are pure functions of the
    seed and the replayed state. *)

module Store = Pvr_store.Store

type epoch_record = Pvr_query.Frame.epoch_record = {
  er_epoch : int;
  er_period : int;
  er_changes : int;
  er_msgs : int;
  er_vertices : int;
  er_dirty : int;
  er_skipped : int;
  er_detected : int;
  er_convicted : int;
  er_digest : string;  (** hash chain after this epoch *)
  er_rib : string;  (** {!Engine.rib_digest} after this epoch *)
  er_run_id : string;
}

val encode_epoch : epoch_record -> string
val decode_epoch : string -> (epoch_record, string) result

type session

val start :
  ?fsync:bool -> ?snapshot_every:int -> ?page:bool -> dir:string -> unit ->
  session
(** Open [dir] for appending.  [snapshot_every] (default 1) epochs per
    full snapshot; [0] disables snapshots (journal-only, resume then
    replays from epoch 1).  [page] (default [false]) additionally journals
    the delta-RIB plane: one {!Pvr_query.Frame.Page} frame of
    {!Engine.rib_changes} per recorded epoch (key ["rib:delta:<epoch>"])
    and one full tracker image ({!Engine.rib_full}, key
    ["rib:full:<epoch>"]) on the snapshot cadence — both appended before
    the epoch record so the commit mark covers them. *)

val pager : session -> run_id:string -> Engine.pager
(** The session's WAL as an {!Engine.pager}: appended pages become tag-4
    journal frames addressed by byte offset (stable for the life of the
    journal — recovery only ever truncates the tail), and reads CRC-check
    the frame and validate [run_id] before handing the blob back.  Install
    with {!Engine.set_pager} to let the governor spill vertex state into
    the same torn-tail-safe store the evidence plane lives in. *)

val record : session -> Engine.t -> Engine.epoch_report -> unit
(** Journal one completed epoch; snapshot if the cadence says so. *)

val close : session -> unit

type resumed = {
  rs_epoch : int;  (** engine position after resume; [0] = fresh start *)
  rs_snapshot_epoch : int;  (** epoch of the snapshot used; [0] = none *)
  rs_replayed : int;  (** journal frames read back *)
  rs_dropped : int;  (** corrupt frames/snapshots dropped during recovery *)
}

val resume :
  ?quiet:bool ->
  dir:string ->
  engine:Engine.t ->
  apply:(epoch:int -> Engine.Bgp.Simulator.t -> int) ->
  unit ->
  (resumed, string) result
(** Resume [engine] (freshly created, epoch 0, same seed stream) from
    [dir].  [apply ~epoch] must reproduce the original run's update batch
    for that epoch — resume replays it for every epoch up to the recovery
    target.  [Ok] with [rs_epoch = 0] means the store was empty (or
    recovered to nothing): start from scratch.  [Error] means the store
    contradicts this run (different seed/parameters, or a RIB replay
    mismatch) — the caller should treat the store as unrecoverable.
    Never raises on corrupt store contents. *)
