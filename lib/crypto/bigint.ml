(* Little-endian arrays of limbs in base 2^31.  The canonical form has no
   most-significant zero limbs and represents zero as the empty array, so
   Stdlib structural equality is numeric equality.

   31-bit limbs keep every intermediate inside OCaml's 63-bit native int:
   a limb product is < 2^62, and product + two carries still fits. *)

type t = int array

let limb_bits = 31
let base = 1 lsl limb_bits
let limb_mask = base - 1

let zero : t = [||]
let is_zero a = Array.length a = 0

(* Strip most-significant zero limbs. *)
let normalize (a : t) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bigint.of_int: negative";
  (* An OCaml int is at most 62 bits, hence at most two 31-bit limbs. *)
  if n = 0 then zero
  else if n < base then [| n |]
  else [| n land limb_mask; n lsr limb_bits |]

let one = of_int 1
let two = of_int 2

let to_int a =
  match Array.length a with
  | 0 -> 0
  | 1 -> a.(0)
  | 2 -> a.(0) lor (a.(1) lsl limb_bits)
  | 3 when a.(2) < 1 lsl (62 - 2 * limb_bits) ->
      a.(0) lor (a.(1) lsl limb_bits) lor (a.(2) lsl (2 * limb_bits))
  | _ -> failwith "Bigint.to_int: overflow"

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let is_even a = is_zero a || a.(0) land 1 = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  normalize out

let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if compare a b < 0 then invalid_arg "Bigint.sub: negative result";
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      (* Propagate the final carry: it can be up to 2^31-1. *)
      let p = ref (i + lb) in
      while !carry <> 0 do
        let v = out.(!p) + !carry in
        out.(!p) <- v land limb_mask;
        carry := v lsr limb_bits;
        incr p
      done
    done;
    normalize out
  end

let karatsuba_threshold = 32

(* Split [a] at limb index [k] into (low, high). *)
let split_at (a : t) k =
  let la = Array.length a in
  if la <= k then (a, zero)
  else (normalize (Array.sub a 0 k), Array.sub a k (la - k))

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if la < karatsuba_threshold || lb < karatsuba_threshold then
    mul_schoolbook a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    let shift_limbs x m =
      if is_zero x then zero
      else begin
        let lx = Array.length x in
        let out = Array.make (lx + m) 0 in
        Array.blit x 0 out m lx;
        out
      end
    in
    add z0 (add (shift_limbs z1 k) (shift_limbs z2 (2 * k)))
  end

let shift_left (a : t) bits =
  if bits < 0 then invalid_arg "Bigint.shift_left: negative";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let la = Array.length a in
    let out = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      out.(i + limb_shift) <- out.(i + limb_shift) lor (v land limb_mask);
      out.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize out
  end

let shift_right (a : t) bits =
  if bits < 0 then invalid_arg "Bigint.shift_right: negative";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
        in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

let bit_length (a : t) =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((la - 1) * limb_bits) + width top 0
  end

let test_bit (a : t) i =
  let limb = i / limb_bits in
  limb < Array.length a && a.(limb) lsr (i mod limb_bits) land 1 = 1

(* Single-limb helpers used by conversion routines and Algorithm D. *)

let mul_int (a : t) m =
  if m < 0 then invalid_arg "Bigint.mul_int: negative"
  else if m = 0 || is_zero a then zero
  else if m < base then begin
    let la = Array.length a in
    let out = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) * m) + !carry in
      out.(i) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    out.(la) <- !carry;
    normalize out
  end
  else mul a (of_int m)

let add_int a n = if n = 0 then a else add a (of_int n)

let sub_int a n = if n = 0 then a else sub a (of_int n)

(* Divide by a single positive limb; returns (quotient, remainder). *)
let divmod_limb (a : t) d =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let out = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    out.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize out, !r)

let rem_int (a : t) d =
  if d <= 0 then invalid_arg "Bigint.rem_int: non-positive divisor";
  if d < base then snd (divmod_limb a d)
  else begin
    (* Fold limbs through native-int modular arithmetic. *)
    let r = ref 0 in
    for i = Array.length a - 1 downto 0 do
      (* r*2^31 + limb mod d, avoiding overflow: r < d <= max_int/2^31 is not
         guaranteed, so do it with a loop of shifts. *)
      let acc = ref !r in
      for _ = 1 to limb_bits do
        acc := !acc * 2 mod d
      done;
      r := (!acc + (a.(i) mod d)) mod d
    done;
    !r
  end

(* Knuth TAOCP vol. 2, Algorithm D.  [b] must have at least 2 limbs (the
   single-limb case is handled by [divmod_limb]). *)
let divmod_knuth (a : t) (b : t) =
  let n = Array.length b in
  (* D1: normalize so the divisor's top limb has its high bit set. *)
  let shift =
    let rec go v acc = if v >= base / 2 then acc else go (v * 2) (acc + 1) in
    go b.(n - 1) 0
  in
  let u = shift_left a shift and v = shift_left b shift in
  let m = Array.length u - n in
  if m < 0 then (zero, a)
  else begin
    (* Working copy of the dividend with one extra high limb. *)
    let w = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 w 0 (Array.length u);
    let q = Array.make (m + 1) 0 in
    let v1 = v.(n - 1) and v2 = v.(n - 2) in
    for j = m downto 0 do
      (* D3: estimate q_hat from the top two dividend limbs.  Cap the first
         estimate at base-1 so that q_hat * v2 stays below 2^62. *)
      let top = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
      let q_hat = ref (top / v1) and r_hat = ref (top mod v1) in
      if !q_hat >= base then begin
        q_hat := base - 1;
        r_hat := top - (!q_hat * v1)
      end;
      while
        !r_hat < base
        && !q_hat * v2 > (!r_hat lsl limb_bits) lor w.(j + n - 2)
      do
        decr q_hat;
        r_hat := !r_hat + v1
      done;
      (* D4: multiply-subtract w[j..j+n] -= q_hat * v. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!q_hat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = w.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          w.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          w.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = w.(j + n) - !carry - !borrow in
      (* D5/D6: if we subtracted too much, add the divisor back once. *)
      if d < 0 then begin
        w.(j + n) <- d + base;
        decr q_hat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = w.(i + j) + v.(i) + !carry in
          w.(i + j) <- s land limb_mask;
          carry := s lsr limb_bits
        done;
        w.(j + n) <- (w.(j + n) + !carry) land limb_mask
      end
      else w.(j + n) <- d;
      q.(j) <- !q_hat
    done;
    let r = normalize (Array.sub w 0 n) in
    (normalize q, shift_right r shift)
  end

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add_int (mul_int !acc 256) (Char.code c)) s;
  !acc

let to_bytes_be ?pad_to a =
  let buf = Buffer.create 16 in
  let rec go a = if not (is_zero a) then begin
      let q, r = divmod_limb a 256 in
      Buffer.add_char buf (Char.chr r);
      go q
    end
  in
  go a;
  let raw =
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  in
  match pad_to with
  | None -> if raw = "" then "\x00" else raw
  | Some n ->
      if String.length raw > n then
        invalid_arg "Bigint.to_bytes_be: value too large for pad_to"
      else String.make (n - String.length raw) '\x00' ^ raw

let of_string s =
  if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then begin
    let acc = ref zero in
    String.iter
      (fun c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | '_' -> -1
          | _ -> invalid_arg "Bigint.of_string: bad hex digit"
        in
        if d >= 0 then acc := add_int (mul_int !acc 16) d)
      (String.sub s 2 (String.length s - 2));
    !acc
  end
  else begin
    let acc = ref zero in
    String.iter
      (fun c ->
        match c with
        | '0' .. '9' ->
            acc := add_int (mul_int !acc 10) (Char.code c - Char.code '0')
        | '_' -> ()
        | _ -> invalid_arg "Bigint.of_string: bad decimal digit")
      s;
    !acc
  end

let to_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go a =
      if not (is_zero a) then begin
        let q, r = divmod_limb a 10 in
        Buffer.add_char buf (Char.chr (Char.code '0' + r));
        go q
      end
    in
    go a;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

(* Square-and-multiply with a full Knuth division per step.  Retained
   verbatim as the differential-test oracle for the Montgomery fast path
   below; never removed, because "slow and obviously right" is exactly
   what a fast-math rewrite must be checked against. *)
let mod_pow_naive ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let result = ref one in
    let acc = ref (rem b modulus) in
    let nbits = bit_length exp in
    for i = 0 to nbits - 1 do
      if test_bit exp i then result := rem (mul !result !acc) modulus;
      if i < nbits - 1 then acc := rem (mul !acc !acc) modulus
    done;
    !result
  end

(* ---- Montgomery arithmetic (odd moduli) --------------------------------

   Operands live as fixed-width little-endian limb vectors of the modulus
   width [k]; a value [x] is represented as [x * R mod m] with
   [R = base^k].  [mont_mul] is word-by-word CIOS (Koç–Acar–Kaliski):
   interleaved multiply and reduce, one limb of the multiplier at a time.

   Bounds: with 31-bit limbs the inner sum [t.(j) + ai * b.(j) + carry] is
   at most (2^31-1) + (2^31-1)^2 + (2^31-1) = 2^62 - 1 = max_int, so CIOS
   runs on native ints with no overflow. *)

type mont = {
  m : int array;  (* modulus limbs, width k *)
  k : int;
  m0' : int;  (* -m^-1 mod 2^31 *)
  rr : t;  (* R^2 mod m *)
  one_r : int array;  (* R mod m, i.e. Montgomery form of 1 *)
  t : int array;  (* CIOS scratch, width k+2; contexts are single-owner *)
}

(* Inverse of an odd limb modulo 2^31 by Newton doubling: each step doubles
   the number of correct low bits, so five steps cover 31 bits.  Products of
   two 31-bit values stay below max_int. *)
let inv_limb m0 =
  let x = ref 1 in
  for _ = 1 to 5 do
    x := !x * ((2 - (m0 * !x)) land limb_mask) land limb_mask
  done;
  !x

let mont_pad ctx (a : t) =
  let out = Array.make ctx.k 0 in
  Array.blit a 0 out 0 (Array.length a);
  out

(* r := a * b * R^-1 mod m.  [a], [b], [r] are width-k vectors; [r] may
   alias [a] or [b] (all reads happen before the final writeback). *)
let mont_mul ctx (a : int array) (b : int array) (r : int array) =
  let k = ctx.k and m = ctx.m and m0' = ctx.m0' and t = ctx.t in
  Array.fill t 0 (k + 2) 0;
  for i = 0 to k - 1 do
    let ai = Array.unsafe_get a i in
    let c = ref 0 in
    for j = 0 to k - 1 do
      let s = Array.unsafe_get t j + (ai * Array.unsafe_get b j) + !c in
      Array.unsafe_set t j (s land limb_mask);
      c := s lsr limb_bits
    done;
    let s = t.(k) + !c in
    t.(k) <- s land limb_mask;
    t.(k + 1) <- t.(k + 1) + (s lsr limb_bits);
    (* One reduction step: add m_ * m so the low limb cancels, shift down. *)
    let m_ = t.(0) * m0' land limb_mask in
    let c = ref ((t.(0) + (m_ * m.(0))) lsr limb_bits) in
    for j = 1 to k - 1 do
      let s = Array.unsafe_get t j + (m_ * Array.unsafe_get m j) + !c in
      Array.unsafe_set t (j - 1) (s land limb_mask);
      c := s lsr limb_bits
    done;
    let s = t.(k) + !c in
    t.(k - 1) <- s land limb_mask;
    t.(k) <- t.(k + 1) + (s lsr limb_bits);
    t.(k + 1) <- 0
  done;
  (* t < 2m here; one conditional subtract restores t < m. *)
  let ge =
    t.(k) > 0
    ||
    let rec cmp j =
      j < 0 || (if t.(j) <> m.(j) then t.(j) > m.(j) else cmp (j - 1))
    in
    cmp (k - 1)
  in
  if ge then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = t.(j) - m.(j) - !borrow in
      if d < 0 then begin
        r.(j) <- d + base;
        borrow := 1
      end
      else begin
        r.(j) <- d;
        borrow := 0
      end
    done
  end
  else Array.blit t 0 r 0 k

let mont_create (modulus : t) =
  let k = Array.length modulus in
  let m = Array.copy modulus in
  let m0' = base - inv_limb m.(0) land limb_mask in
  let rr = rem (shift_left one (2 * k * limb_bits)) modulus in
  let ctx =
    { m; k; m0' = m0' land limb_mask; rr; one_r = [||]; t = Array.make (k + 2) 0 }
  in
  let one_r = mont_pad ctx (rem (shift_left one (k * limb_bits)) modulus) in
  { ctx with one_r }

let to_mont ctx (a : t) r = mont_mul ctx (mont_pad ctx a) (mont_pad ctx ctx.rr) r

(* Fixed-window (w=4) exponentiation: 16-entry table of Montgomery powers,
   then MSB-first 4-bit windows with 4 squarings between digits. *)
let window_bits = 4

let mod_pow_mont ~base:b ~exp ~modulus =
  let ctx = mont_create modulus in
  let k = ctx.k in
  let table = Array.init (1 lsl window_bits) (fun _ -> Array.make k 0) in
  Array.blit ctx.one_r 0 table.(0) 0 k;
  to_mont ctx (rem b modulus) table.(1);
  for i = 2 to (1 lsl window_bits) - 1 do
    mont_mul ctx table.(i - 1) table.(1) table.(i)
  done;
  let nbits = bit_length exp in
  let nwin = (nbits + window_bits - 1) / window_bits in
  let digit w =
    let lo = w * window_bits in
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) ((acc lsl 1) lor (if test_bit exp (lo + i) then 1 else 0))
    in
    go (window_bits - 1) 0
  in
  let acc = Array.make k 0 in
  if nwin = 0 then Array.blit ctx.one_r 0 acc 0 k
  else begin
    Array.blit table.(digit (nwin - 1)) 0 acc 0 k;
    for w = nwin - 2 downto 0 do
      for _ = 1 to window_bits do
        mont_mul ctx acc acc acc
      done;
      let d = digit w in
      if d <> 0 then mont_mul ctx acc table.(d) acc
    done
  end;
  (* Leave Montgomery form: multiply by 1 (un-Montgomeried). *)
  let out = Array.make k 0 in
  let one_v = Array.make k 0 in
  one_v.(0) <- 1;
  mont_mul ctx acc one_v out;
  normalize out

(* The naive path stays selectable so the bench can time the exact pre-fast
   implementation and assert digest equality against it.  Toggled only
   between runs from a single domain; concurrent readers are safe. *)
let fast_mod_pow = ref true
let set_fast_mod_pow b = fast_mod_pow := b
let fast_mod_pow_enabled () = !fast_mod_pow

let mod_pow ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else if !fast_mod_pow && not (is_even modulus) then
    mod_pow_mont ~base:b ~exp ~modulus
  else mod_pow_naive ~base:b ~exp ~modulus

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Extended Euclid over naturals, tracking signed Bezout coefficients as
   (sign, magnitude) pairs. *)
let mod_inv a m =
  if is_zero m then raise Division_by_zero;
  let a = rem a m in
  if is_zero a then raise Not_found;
  (* Invariants: r_i = s_i * a + t_i * m (signs tracked separately). *)
  let rec go r0 r1 (s0_neg, s0) (s1_neg, s1) =
    if is_zero r1 then begin
      if not (equal r0 one) then raise Not_found;
      if s0_neg then sub m (rem s0 m) else rem s0 m
    end
    else begin
      let q, r2 = divmod r0 r1 in
      (* s2 = s0 - q * s1, with signs. *)
      let qs1 = mul q s1 in
      let s2_neg, s2 =
        if s0_neg = s1_neg then
          if compare s0 qs1 >= 0 then (s0_neg, sub s0 qs1)
          else (not s0_neg, sub qs1 s0)
        else (s0_neg, add s0 qs1)
      in
      go r1 r2 (s1_neg, s1) (s2_neg, s2)
    end
  in
  go m a (false, zero) (false, one)

let random_bits rng n =
  if n <= 0 then zero
  else begin
    let nbytes = (n + 7) / 8 in
    let s = Drbg.generate rng nbytes in
    let v = of_bytes_be s in
    let excess = (nbytes * 8) - n in
    shift_right v excess
  end

let random_below rng bound =
  if is_zero bound then invalid_arg "Bigint.random_below: zero bound";
  let n = bit_length bound in
  let rec draw () =
    let v = random_bits rng n in
    if compare v bound < 0 then v else draw ()
  in
  draw ()

let random_odd_bits rng n =
  if n < 2 then invalid_arg "Bigint.random_odd_bits: need at least 2 bits";
  let v = random_bits rng n in
  (* Force the top bit (exact bit width) and the bottom bit (odd). *)
  let v = if test_bit v (n - 1) then v else add v (shift_left one (n - 1)) in
  if is_even v then add v one else v

let pp ppf a = Format.pp_print_string ppf (to_string a)
