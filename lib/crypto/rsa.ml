module B = Bigint

type public_key = { n : B.t; e : B.t }

type private_key = {
  pub : public_key;
  d : B.t;
  p : B.t;
  q : B.t;
  dp : B.t;
  dq : B.t;
  qinv : B.t;
}

let e_default = B.of_int 65537

let obs_keygen = Pvr_obs.counter "crypto.rsa.keygen.ops"
let obs_sign = Pvr_obs.counter "crypto.rsa.sign.ops"
let obs_verify = Pvr_obs.counter "crypto.rsa.verify.ops"

let generate rng ~bits =
  if bits < 32 then invalid_arg "Rsa.generate: modulus too small";
  Pvr_obs.incr obs_keygen;
  let half = bits / 2 in
  let rec attempt () =
    let p = Prime.generate rng ~bits:half in
    let q = Prime.generate rng ~bits:(bits - half) in
    if B.equal p q then attempt ()
    else begin
      let n = B.mul p q in
      let p1 = B.sub_int p 1 and q1 = B.sub_int q 1 in
      let phi = B.mul p1 q1 in
      if not (B.equal (B.gcd e_default phi) B.one) then attempt ()
      else begin
        let d = B.mod_inv e_default phi in
        {
          pub = { n; e = e_default };
          d;
          p;
          q;
          dp = B.rem d p1;
          dq = B.rem d q1;
          qinv = B.mod_inv q p;
        }
      end
    end
  in
  attempt ()

let key_size pub = (B.bit_length pub.n + 7) / 8

let raw_apply_public pub x = B.mod_pow ~base:x ~exp:pub.e ~modulus:pub.n

(* CRT: m_p = x^dp mod p, m_q = x^dq mod q, recombine. *)
let raw_apply_private key x =
  let mp = B.mod_pow ~base:(B.rem x key.p) ~exp:key.dp ~modulus:key.p in
  let mq = B.mod_pow ~base:(B.rem x key.q) ~exp:key.dq ~modulus:key.q in
  let diff =
    let mp' = B.rem mp key.p and mq' = B.rem mq key.p in
    if B.compare mp' mq' >= 0 then B.sub mp' mq'
    else B.sub (B.add mp' key.p) mq'
  in
  let h = B.rem (B.mul key.qinv diff) key.p in
  B.add mq (B.mul h key.q)

(* PKCS#1 v1.5 signature encoding: 00 01 FF..FF 00 || DigestInfo(SHA-256). *)
let sha256_digest_info =
  Hex.decode "3031300d060960864801650304020105000420"

let encode_digest ~key_bytes msg =
  let h = Sha256.digest msg in
  let t = sha256_digest_info ^ h in
  let pad_len = key_bytes - String.length t - 3 in
  if pad_len < 8 then invalid_arg "Rsa: modulus too small for SHA-256 padding";
  "\x00\x01" ^ String.make pad_len '\xff' ^ "\x00" ^ t

let sign key msg =
  Pvr_obs.incr obs_sign;
  let kb = key_size key.pub in
  let em = encode_digest ~key_bytes:kb msg in
  let s = raw_apply_private key (B.of_bytes_be em) in
  B.to_bytes_be ~pad_to:kb s

let verify pub ~msg ~signature =
  Pvr_obs.incr obs_verify;
  let kb = key_size pub in
  String.length signature = kb
  &&
  let s = B.of_bytes_be signature in
  B.compare s pub.n < 0
  &&
  let em = B.to_bytes_be ~pad_to:kb (raw_apply_public pub s) in
  Bytes_util.equal_ct em (encode_digest ~key_bytes:kb msg)

(* Plain x^d mod n over the retained naive exponentiation: the
   differential-test oracle for CRT signing.  Slow by design; kept so the
   test battery can prove [sign] interchangeable with the obvious
   definition. *)
let sign_plain key msg =
  let kb = key_size key.pub in
  let em = encode_digest ~key_bytes:kb msg in
  let s =
    B.mod_pow_naive ~base:(B.of_bytes_be em) ~exp:key.d ~modulus:key.pub.n
  in
  B.to_bytes_be ~pad_to:kb s

(* ---- Batch verification -------------------------------------------------

   Bellare–Garay–Rabin screening for a same-key group: every signature is
   valid iff s_i^e = em_i for all i, which implies
   (prod s_i)^e = prod em_i (mod n) — one e=65537 exponentiation plus 2B
   modular multiplications instead of B exponentiations.  The converse
   does not hold against an adversary who crafts forgeries whose errors
   cancel inside the product, so a failed screen falls back to per-item
   {!verify} (which also yields the exact forged-item mask), and per-item
   verification remains the oracle the differential tests compare to. *)

let obs_batch = Pvr_obs.counter "crypto.rsa.verify_batch.calls"
let obs_batch_items = Pvr_obs.counter "crypto.rsa.verify_batch.items"
let obs_batch_screened = Pvr_obs.counter "crypto.rsa.verify_batch.screened"
let obs_batch_fallback = Pvr_obs.counter "crypto.rsa.verify_batch.fallbacks"
let obs_batch_dedup = Pvr_obs.counter "crypto.rsa.verify_batch.deduped"

let verify_batch items =
  match items with
  | [] -> []
  | _ ->
      Pvr_obs.incr obs_batch;
      let arr = Array.of_list items in
      let n_items = Array.length arr in
      Pvr_obs.add obs_batch_items n_items;
      let res = Array.make n_items false in
      (* Identical (key, msg, signature) triples — gossip fans the same
         commitment to every holder — are verified once and mirrored. *)
      let first : (string * string * string, int) Hashtbl.t =
        Hashtbl.create (2 * n_items)
      in
      let aliases = ref [] in
      let groups : (B.t * B.t, (int * B.t * B.t) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      Array.iteri
        (fun i (pub, msg, signature) ->
          let id =
            (B.to_bytes_be pub.n ^ "|" ^ B.to_bytes_be pub.e, msg, signature)
          in
          match Hashtbl.find_opt first id with
          | Some j ->
              Pvr_obs.incr obs_batch_dedup;
              aliases := (i, j) :: !aliases
          | None ->
              Hashtbl.add first id i;
              let kb = key_size pub in
              if String.length signature = kb then begin
                let s = B.of_bytes_be signature in
                if B.compare s pub.n < 0 then begin
                  match encode_digest ~key_bytes:kb msg with
                  | em ->
                      let key = (pub.n, pub.e) in
                      let cell =
                        match Hashtbl.find_opt groups key with
                        | Some c -> c
                        | None ->
                            let c = ref [] in
                            Hashtbl.add groups key c;
                            c
                      in
                      cell := (i, s, B.of_bytes_be em) :: !cell
                  | exception Invalid_argument _ -> ()
                end
              end)
        arr;
      Hashtbl.iter
        (fun (n, e) cell ->
          let members = List.rev !cell in
          let per_item () =
            List.iter
              (fun (i, _, _) ->
                let pub, msg, signature = arr.(i) in
                res.(i) <- verify pub ~msg ~signature)
              members
          in
          match members with
          | [] -> ()
          | [ (i, _, _) ] ->
              let pub, msg, signature = arr.(i) in
              res.(i) <- verify pub ~msg ~signature
          | _ ->
              let prod f =
                List.fold_left
                  (fun acc m -> B.rem (B.mul acc (f m)) n)
                  B.one members
              in
              let prod_s = prod (fun (_, s, _) -> s)
              and prod_em = prod (fun (_, _, em) -> em) in
              if B.equal (B.mod_pow ~base:prod_s ~exp:e ~modulus:n) prod_em
              then begin
                Pvr_obs.add obs_batch_screened (List.length members);
                List.iter (fun (i, _, _) -> res.(i) <- true) members
              end
              else begin
                Pvr_obs.incr obs_batch_fallback;
                per_item ()
              end)
        groups;
      List.iter (fun (i, j) -> res.(i) <- res.(j)) (List.rev !aliases);
      Array.to_list res

let fingerprint pub =
  Sha256.digest
    (Bytes_util.encode_list [ B.to_bytes_be pub.n; B.to_bytes_be pub.e ])
