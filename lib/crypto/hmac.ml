let block = Sha256.block_size

let normalize_key key =
  let key = if String.length key > block then Sha256.digest key else key in
  key ^ String.make (block - String.length key) '\x00'

(* A prepared key: the inner (key xor ipad) and outer (key xor opad) blocks
   are absorbed once into midstates, so each MAC under the same key costs
   two {!Sha256.copy}s instead of re-hashing both pad blocks — for short
   messages that halves the compression count. *)
module Key = struct
  type t = { inner : Sha256.ctx; outer : Sha256.ctx }

  let create key =
    let key = normalize_key key in
    let inner = Sha256.init () and outer = Sha256.init () in
    Sha256.update inner (Bytes_util.xor key (String.make block '\x36'));
    Sha256.update outer (Bytes_util.xor key (String.make block '\x5c'));
    { inner; outer }
end

let mac_with (k : Key.t) msg =
  let ictx = Sha256.copy k.Key.inner in
  Sha256.update ictx msg;
  let inner = Sha256.finalize ictx in
  let octx = Sha256.copy k.Key.outer in
  Sha256.update octx inner;
  Sha256.finalize octx

let mac ~key msg = mac_with (Key.create key) msg

let mac_hex ~key msg = Hex.encode (mac ~key msg)

let verify ~key msg ~tag = Bytes_util.equal_ct (mac ~key msg) tag
