(** SHA-256 (FIPS 180-4), implemented from scratch.

    This is the cryptographic hash the paper names in §3.8 as the main PVR
    primitive ("The most expensive operations we have used are a
    cryptographic hash-function (such as SHA-256) ... and a public-key
    signature scheme").  The streaming interface supports incremental
    hashing of BGP message batches. *)

type ctx
(** Mutable hashing context. *)

val init : unit -> ctx

val update : ctx -> string -> unit
(** Absorb more input.  May be called any number of times. *)

val finalize : ctx -> string
(** Produce the 32-byte digest.  The context must not be reused. *)

val digest : string -> string
(** One-shot hash: 32-byte (raw, not hex) digest of the input. *)

val digest_hex : string -> string
(** One-shot hash, hex-encoded (64 characters). *)

val digest_parts : string list -> string
(** Digest-of-state helper: hash every part length-framed (8-byte
    big-endian length before each part), so distinct splits of the same
    bytes produce distinct digests.  Raw 32-byte output. *)

val digest_parts_hex : string list -> string
(** {!digest_parts}, hex-encoded. *)

val digest_size : int
(** 32. *)

val block_size : int
(** 64 — needed by HMAC. *)
