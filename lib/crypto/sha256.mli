(** SHA-256 (FIPS 180-4), implemented from scratch.

    This is the cryptographic hash the paper names in §3.8 as the main PVR
    primitive ("The most expensive operations we have used are a
    cryptographic hash-function (such as SHA-256) ... and a public-key
    signature scheme").  The streaming interface supports incremental
    hashing of BGP message batches. *)

type ctx
(** Mutable hashing context.  Single-owner: a ctx must not be shared across
    domains without external synchronization. *)

val init : unit -> ctx

val reset : ctx -> unit
(** Return the context to its initial state.  Lets hot loops reuse one
    allocation for any number of digests (see {!digest_with}). *)

val copy : ctx -> ctx
(** Clone the running state (a {e midstate}).  HMAC uses this to precompute
    the keyed inner/outer block once per key. *)

val update : ctx -> string -> unit
(** Absorb more input.  May be called any number of times. *)

val finalize : ctx -> string
(** Produce the 32-byte digest.  Pads in place — no intermediate
    allocation.  The context must be {!reset} before any reuse. *)

val digest : string -> string
(** One-shot hash: 32-byte (raw, not hex) digest of the input. *)

val digest_with : ctx -> string -> string
(** One-shot hash through a caller-owned reusable context ({!reset} +
    {!update} + {!finalize}); identical output to {!digest} with no per-op
    context allocation. *)

val digest_many : ctx -> string list -> string list
(** Multi-buffer one-shot: digest each independent input through one
    reusable context, in order.  Equivalent to [List.map digest]. *)

val digest_hex : string -> string
(** One-shot hash, hex-encoded (64 characters). *)

val digest_parts : string list -> string
(** Digest-of-state helper: hash every part length-framed (8-byte
    big-endian length before each part), so distinct splits of the same
    bytes produce distinct digests.  Raw 32-byte output. *)

val digest_parts_hex : string list -> string
(** {!digest_parts}, hex-encoded. *)

val digest_parts_with : ctx -> string list -> string
(** {!digest_parts} through a caller-owned reusable context. *)

(** Fixed-width one-shot hashing with a precomputed padded layout.

    For messages of a known constant width (per-bit commitment preimages,
    length-framed digest blocks) the whole padding — 0x80 marker, zero
    fill, 64-bit length — is computed once at {!Fixed.create}; each
    {!Fixed.digest} blits the message over the template and compresses.
    Output is identical to {!digest} (the KAT suite asserts it).  A
    [Fixed.t] owns mutable scratch and is single-owner, like {!ctx}. *)
module Fixed : sig
  type t

  val create : int -> t
  (** Template for messages of exactly that many bytes. *)

  val width : t -> int

  val digest : t -> string -> string
  (** @raise Invalid_argument if the message width does not match. *)
end

val digest_size : int
(** 32. *)

val block_size : int
(** 64 — needed by HMAC. *)
