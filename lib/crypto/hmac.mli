(** HMAC-SHA-256 (RFC 2104 / FIPS 198-1).

    Used by {!Drbg} for deterministic random-bit generation and available as
    a keyed integrity primitive for PVR transport messages. *)

(** A prepared key with the inner/outer pad blocks pre-absorbed into
    SHA-256 midstates.  Create once per key, MAC many times: saves two of
    the four compressions a short-message {!mac} costs. *)
module Key : sig
  type t

  val create : string -> t
end

val mac_with : Key.t -> string -> string
(** MAC under a prepared key; byte-identical to {!mac} with the same key
    material (the KAT suite asserts it across the RFC 4231 vectors). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA-256 tag of [msg] under [key].
    Keys of any length are accepted (hashed down if longer than one block). *)

val mac_hex : key:string -> string -> string
(** Hex-encoded variant of {!mac}. *)

val verify : key:string -> string -> tag:string -> bool
(** Constant-time tag check. *)
