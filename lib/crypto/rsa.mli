(** RSA signatures (PKCS#1 v1.5-style encoding over SHA-256).

    §3.8 of the paper argues PVR is cheap because its only public-key
    operation is "a public-key signature scheme (such as RSA)", quoting
    ~2 ms per RSA-1024 signature on 2011 hardware.  Experiment E4 re-measures
    that claim on this implementation.

    Signing uses the Chinese-Remainder optimization.  This implementation is
    for protocol research: it is not constant-time and must not be used to
    protect real secrets. *)

type public_key = { n : Bigint.t; e : Bigint.t }

type private_key = {
  pub : public_key;
  d : Bigint.t;
  p : Bigint.t;
  q : Bigint.t;
  dp : Bigint.t;   (** d mod (p-1) *)
  dq : Bigint.t;   (** d mod (q-1) *)
  qinv : Bigint.t; (** q^-1 mod p *)
}

val generate : Drbg.t -> bits:int -> private_key
(** Fresh key with an [bits]-bit modulus and e = 65537. *)

val key_size : public_key -> int
(** Modulus size in bytes. *)

val sign : private_key -> string -> string
(** Signature over SHA-256 of the message, one modulus-width string.
    CRT-accelerated over the Montgomery fast path; byte-identical to
    {!sign_plain} (signatures here are deterministic). *)

val sign_plain : private_key -> string -> string
(** Plain [x^d mod n] over the retained naive exponentiation — the
    differential-test oracle for CRT signing.  Like everything in this
    module it is {b not constant-time}; it exists for tests and benches,
    not as a hardened fallback. *)

val verify : public_key -> msg:string -> signature:string -> bool

val verify_batch : (public_key * string * string) list -> bool list
(** [verify_batch [(pub, msg, signature); ...]] returns one verdict per
    item, in order.  Same-key groups of two or more are screened with one
    exponentiation over the signature and encoding products
    (Bellare–Garay–Rabin); a failed screen falls back to per-item
    {!verify}, so the returned mask marks exactly the forged items.
    Identical triples are verified once.  The screen accepts everything a
    per-item pass accepts; the only divergence an adversary could induce
    is a batch of forgeries whose errors cancel inside the product, which
    the fallback path never sees because honest inputs screen clean —
    per-item {!verify} remains the oracle. *)

val raw_apply_public : public_key -> Bigint.t -> Bigint.t
(** The raw RSA permutation x -> x^e mod n, used by {!Ring_signature}. *)

val raw_apply_private : private_key -> Bigint.t -> Bigint.t
(** The inverse permutation x -> x^d mod n (CRT-accelerated). *)

val fingerprint : public_key -> string
(** SHA-256 hash identifying the key (used as a signer id in evidence). *)
