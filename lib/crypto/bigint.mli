(** Arbitrary-precision natural numbers.

    The sealed build environment has no [zarith], so RSA and the ring
    signature run on this module: little-endian arrays of 31-bit limbs, with
    schoolbook and Karatsuba multiplication, Knuth Algorithm-D division,
    square-and-multiply modular exponentiation, and binary extended GCD.

    All values are non-negative; {!sub} raises on underflow.  Values are
    immutable and canonical (no most-significant zero limbs), so structural
    equality coincides with numeric equality. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
(** @raise Failure if the value exceeds [max_int]. *)

val of_string : string -> t
(** Parse a decimal string, or hex with a ["0x"] prefix. *)

val to_string : t -> string
(** Decimal representation. *)

val of_bytes_be : string -> t
(** Interpret a byte string as a big-endian natural number. *)

val to_bytes_be : ?pad_to:int -> t -> string
(** Minimal big-endian byte representation; [pad_to] left-pads with zero
    bytes to a fixed width (raises if the value does not fit). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)].  @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Number of significant bits; 0 for zero. *)

val test_bit : t -> int -> bool

val add_int : t -> int -> t
val sub_int : t -> int -> t
val mul_int : t -> int -> t
val rem_int : t -> int -> int
(** Remainder by a positive native int. *)

val mod_pow : base:t -> exp:t -> modulus:t -> t
(** Modular exponentiation.  Odd moduli take the fast path: Montgomery
    representation with word-by-word CIOS multiplication and fixed-window
    (w=4) exponentiation.  Even moduli (and the naive toggle below) fall
    back to {!mod_pow_naive}.  Both paths return identical values — the
    differential test battery asserts it on random inputs.
    @raise Division_by_zero if [modulus] is zero. *)

val mod_pow_naive : base:t -> exp:t -> modulus:t -> t
(** The original square-and-multiply implementation, one Knuth division per
    step.  Retained deliberately as the test oracle for the Montgomery fast
    path; like the fast path it is {b not constant-time} and must not be
    treated as side-channel hardened.
    @raise Division_by_zero if [modulus] is zero. *)

val set_fast_mod_pow : bool -> unit
(** Route {!mod_pow} through the naive oracle ([false]) or the Montgomery
    fast path ([true], the default).  Exists so benchmarks can time the
    exact pre-fast-path implementation and assert digest equality between
    the two; toggle only between runs, not concurrently with them. *)

val fast_mod_pow_enabled : unit -> bool

val gcd : t -> t -> t

val mod_inv : t -> t -> t
(** [mod_inv a m] is the inverse of [a] modulo [m].
    @raise Not_found if [gcd a m <> 1]. *)

val random_bits : Drbg.t -> int -> t
(** Uniform value with at most [n] bits. *)

val random_below : Drbg.t -> t -> t
(** Uniform in [\[0, bound)] by rejection sampling.
    @raise Invalid_argument if the bound is zero. *)

val random_odd_bits : Drbg.t -> int -> t
(** Uniform odd value with exactly [n] bits (top and bottom bits set);
    used by prime generation.  Requires [n >= 2]. *)

val pp : Format.formatter -> t -> unit
