(** Hash commitments, the first PVR building block (§3.4).

    §3.2: "A can do this by publishing a commitment c := H(b || p), where H
    is a cryptographic hash function and p is a random bitstring."  The
    nonce is mandatory — the paper's footnote 2 notes that without it a
    neighbor could brute-force small domains (c = H(0) or c = H(1)).

    A commitment is hiding (the digest reveals nothing about the value, given
    the 32-byte random nonce) and binding (opening to a different value
    requires a SHA-256 collision). *)

type commitment = private string
(** The published digest (32 bytes).  Comparable with [=]. *)

type opening = { value : string; nonce : string }
(** What the committer reveals to authorized parties. *)

val commit : Drbg.t -> string -> commitment * opening
(** Commit to an arbitrary byte string with a fresh 32-byte nonce. *)

val commit_with_nonce : nonce:string -> string -> commitment
(** Deterministic form, for recomputation during verification. *)

val verify : commitment -> opening -> bool
(** Does the opening match the commitment? Constant-time comparison. *)

val commit_bit : Drbg.t -> bool -> commitment * opening
(** Commitment to a single bit, as in §3.2 / §3.3 (bits b, b_1 .. b_k). *)

val opening_bit : opening -> bool option
(** Interpret an opening's value as a bit; [None] if it is not ["0"]/["1"]. *)

val commit_derived :
  key:string -> context:string -> string -> commitment * opening
(** Deterministic commitment with a {e derived} nonce:
    [nonce = HMAC(key, tag || context || value)].  Given a secret [key]
    (e.g. an epoch salt known only to the committer) the nonce is
    pseudorandom to everyone else, so hiding is preserved, yet the whole
    commitment is a pure function of [(key, context, value)] — recommitting
    to an unchanged value reproduces the byte-identical digest.  This is
    what makes commitments cacheable across verification epochs.  The
    [context] must make the position unique (prover, prefix, bit index):
    reusing a [(key, context)] pair for two different values is safe
    (different values give different nonces), but a context collision leaks
    value equality across positions. *)

(** Memo table over {!commit_derived} for the engine's incremental
    verification: one cache per prover, scoped to an epoch-salt period.
    Two levels — per-[(context, value)] entries plus a whole-bit-vector
    memo keyed by [(vertex id, bit pattern)], so a quiet vertex answers
    all k of its commitments with one lookup and zero context-string
    construction.  Derived-nonce misses run over a precomputed HMAC key
    and a fixed-width SHA-256 template, but produce byte-identical
    commitments to the uncached {!commit_derived} path; the per-bit index
    always stays in the nonce context (collapsing equal bits across
    positions would leak the committed threshold).  Hits and misses are
    exported through {!Pvr_obs} as ["crypto.commitment.cache.hits"] /
    [".misses"] (a vector hit counts one hit per bit, plus
    [".vector.hits"]); a hit performs no SHA-256 work at all. *)
module Cache : sig
  type t

  val create : ?period:int -> key:string -> unit -> t
  (** [key] is the derived-nonce HMAC key (the epoch salt); [period]
      (default 0) is the salt period the key belongs to. *)

  val period : t -> int

  val rotate : t -> period:int -> key:string -> unit
  (** Salt rotation: if [period] (or [key]) differs from the cache's
      current one, drop every entry and re-key; otherwise a no-op.  Lets
      long-lived caches survive rotation without reallocating. *)

  val commit : t -> context:string -> string -> commitment * opening
  val commit_bit : t -> context:string -> bool -> commitment * opening

  val commit_bit_vector :
    t ->
    vertex:string ->
    context:(int -> string) ->
    bool list ->
    (commitment * opening) list
  (** Commit a whole bit vector through the vector memo.  [vertex] must
      uniquely identify the committing position (e.g. ["prover|prefix"]);
      [context i] must be the exact per-bit context the per-bit path would
      use for 0-based index [i] (it is only called on a vector miss). *)

  val clear : t -> unit
  (** Drop every entry (either memo level). *)

  val size : t -> int
end

val to_hex : commitment -> string

val of_raw : string -> commitment
(** Treat a received 32-byte string as a commitment digest.
    @raise Invalid_argument on wrong length. *)
