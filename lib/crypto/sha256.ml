(* SHA-256 over native ints: OCaml ints are 63-bit, so 32-bit words are kept
   masked with [mask32] after every operation that can overflow 32 bits. *)

let digest_size = 32
let block_size = 64
let mask32 = 0xFFFFFFFF

let obs_ops = Pvr_obs.counter "crypto.sha256.ops"
let obs_bytes = Pvr_obs.counter "crypto.sha256.bytes"

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array;              (* 8 state words *)
  buf : Bytes.t;              (* partial block, [block_size] bytes *)
  mutable buf_len : int;      (* bytes currently in [buf] *)
  mutable total : int64;      (* total message length in bytes *)
  w : int array;              (* message schedule scratch, 64 words *)
}

let iv =
  [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
     0x1f83d9ab; 0x5be0cd19 |]

let init () =
  {
    h = Array.copy iv;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
    w = Array.make 64 0;
  }

let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.buf_len <- 0;
  ctx.total <- 0L

let copy ctx =
  {
    h = Array.copy ctx.h;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    total = ctx.total;
    w = Array.make 64 0;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

(* Callers guarantee [off + 64 <= String.length s]. *)
let read_be32_unsafe (s : string) off =
  (Char.code (String.unsafe_get s off) lsl 24)
  lor (Char.code (String.unsafe_get s (off + 1)) lsl 16)
  lor (Char.code (String.unsafe_get s (off + 2)) lsl 8)
  lor Char.code (String.unsafe_get s (off + 3))

(* Compress one 64-byte block located at [off] in [src] into [h], using
   [w] as schedule scratch. *)
let compress_raw (h : int array) (w : int array) (src : string) off =
  for t = 0 to 15 do
    w.(t) <- read_be32_unsafe src (off + 4 * t)
  done;
  for t = 16 to 63 do
    let s0 =
      rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3)
    in
    let s1 =
      rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10)
    in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask32
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let compress ctx (src : string) off = compress_raw ctx.h ctx.w src off

let update ctx s =
  let len = String.length s in
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref 0 in
  (* Fill a partial buffered block first. *)
  if ctx.buf_len > 0 then begin
    let take = min (block_size - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = block_size then begin
      compress ctx (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= block_size do
    compress ctx s !pos;
    pos := !pos + block_size
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

(* Serialize [h] as the 32-byte big-endian digest. *)
let output_of (h : int array) =
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    let v = h.(i) in
    Bytes.unsafe_set out (4 * i) (Char.unsafe_chr (v lsr 24));
    Bytes.unsafe_set out ((4 * i) + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 3) (Char.unsafe_chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

let write_be64 (b : Bytes.t) off (v : int64) =
  for i = 0 to 7 do
    Bytes.unsafe_set b (off + i)
      (Char.unsafe_chr
         (Int64.to_int (Int64.shift_right_logical v (56 - (8 * i))) land 0xff))
  done

(* Padding happens in place in [ctx.buf]: append 0x80, zero-fill, write the
   bit length into the last 8 bytes of the final block.  No intermediate
   strings are allocated — finalize used to build and re-feed a padding
   string, which at 10M+ finalizes per bench run was real garbage. *)
let finalize ctx =
  Pvr_obs.incr obs_ops;
  Pvr_obs.add obs_bytes (Int64.to_int ctx.total);
  let bit_len = Int64.mul ctx.total 8L in
  let buf = ctx.buf in
  Bytes.set buf ctx.buf_len '\x80';
  if ctx.buf_len >= block_size - 8 then begin
    Bytes.fill buf (ctx.buf_len + 1) (block_size - ctx.buf_len - 1) '\x00';
    compress ctx (Bytes.unsafe_to_string buf) 0;
    Bytes.fill buf 0 (block_size - 8) '\x00'
  end
  else Bytes.fill buf (ctx.buf_len + 1) (block_size - 9 - ctx.buf_len) '\x00';
  write_be64 buf (block_size - 8) bit_len;
  compress ctx (Bytes.unsafe_to_string buf) 0;
  ctx.buf_len <- 0;
  output_of ctx.h

let digest_with ctx s =
  reset ctx;
  update ctx s;
  finalize ctx

let digest s = digest_with (init ()) s

let digest_hex s = Hex.encode (digest s)

let digest_many ctx parts = List.map (digest_with ctx) parts

(* Digest-of-state helper: each part is fed length-framed, so the digest
   is unambiguous under concatenation — ["ab"; "c"] and ["a"; "bc"] hash
   differently.  The engine uses this to fingerprint simulator RIB state
   for checkpoint validation. *)
let digest_parts_with ctx parts =
  reset ctx;
  List.iter
    (fun p ->
      update ctx (Bytes_util.be64 (Int64.of_int (String.length p)));
      update ctx p)
    parts;
  finalize ctx

let digest_parts parts = digest_parts_with (init ()) parts

let digest_parts_hex parts = Hex.encode (digest_parts parts)

(* ---- Fixed-width one-shot hashing --------------------------------------

   The engine's hottest hashes have a fixed message width (per-bit
   commitment preimages, length-framed digest blocks), so the entire padded
   layout — 0x80 marker, zero fill, 64-bit length — is known up front.
   [Fixed.create] builds that padded block template once; each digest then
   just blits the message over the template and compresses, skipping the
   buffering/padding machinery entirely.  A [Fixed.t] carries its own
   scratch state and is single-owner, like {!ctx}. *)
module Fixed = struct
  type t = { len : int; blocks : Bytes.t; fh : int array; fw : int array }

  let create len =
    if len < 0 then invalid_arg "Sha256.Fixed.create: negative width";
    let nblocks = (len + 1 + 8 + block_size - 1) / block_size in
    let blocks = Bytes.make (nblocks * block_size) '\x00' in
    Bytes.set blocks len '\x80';
    write_be64 blocks ((nblocks * block_size) - 8) (Int64.of_int (len * 8));
    { len; blocks; fh = Array.make 8 0; fw = Array.make 64 0 }

  let width t = t.len

  let digest t msg =
    if String.length msg <> t.len then
      invalid_arg "Sha256.Fixed.digest: width mismatch";
    Pvr_obs.incr obs_ops;
    Pvr_obs.add obs_bytes t.len;
    Bytes.blit_string msg 0 t.blocks 0 t.len;
    Array.blit iv 0 t.fh 0 8;
    let s = Bytes.unsafe_to_string t.blocks in
    for b = 0 to (Bytes.length t.blocks / block_size) - 1 do
      compress_raw t.fh t.fw s (b * block_size)
    done;
    output_of t.fh
end
