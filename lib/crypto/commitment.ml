type commitment = string

type opening = { value : string; nonce : string }

let tag = "pvr-commit-v1:"

let commit_with_nonce ~nonce value =
  Sha256.digest (tag ^ Bytes_util.encode_list [ value; nonce ])

let commit rng value =
  let nonce = Drbg.generate rng 32 in
  (commit_with_nonce ~nonce value, { value; nonce })

let verify c { value; nonce } =
  Bytes_util.equal_ct c (commit_with_nonce ~nonce value)

let bit_string b = if b then "1" else "0"

let commit_bit rng b = commit rng (bit_string b)

let nonce_tag = "pvr-commit-nonce-v1"

let derived_nonce ~key ~context value =
  Hmac.mac ~key (Bytes_util.encode_list [ nonce_tag; context; value ])

let commit_derived ~key ~context value =
  let nonce = derived_nonce ~key ~context value in
  (commit_with_nonce ~nonce value, { value; nonce })

(* Fast path for single-bit commitments: the preimage
   [tag ^ encode_list [bit; nonce]] always has the same 59-byte layout
   (14-byte tag, list header, 1-byte value, 32-byte nonce), so the template
   — constants, length frames, SHA-256 padding — is precomputed once and
   each commit blits two fields and compresses.  Byte-identical to
   {!commit_with_nonce} by construction; the KAT suite asserts it. *)
module Bit_fast = struct
  let tag_len = String.length tag (* 14 *)
  let value_off = tag_len + 4 + 4 (* list count frame + value length frame *)
  let nonce_off = value_off + 1 + 4
  let preimage_len = nonce_off + 32 (* 59 *)

  type t = { buf : Bytes.t; fixed : Sha256.Fixed.t }

  let create () =
    let buf = Bytes.make preimage_len '\x00' in
    Bytes.blit_string tag 0 buf 0 tag_len;
    Bytes.blit_string (Bytes_util.be32 2) 0 buf tag_len 4;
    Bytes.blit_string (Bytes_util.be32 1) 0 buf (tag_len + 4) 4;
    Bytes.blit_string (Bytes_util.be32 32) 0 buf (value_off + 1) 4;
    { buf; fixed = Sha256.Fixed.create preimage_len }

  let commit t ~nonce value_char =
    Bytes.set t.buf value_off value_char;
    Bytes.blit_string nonce 0 t.buf nonce_off 32;
    Sha256.Fixed.digest t.fixed (Bytes.unsafe_to_string t.buf)
end

module Cache = struct
  (* Two memo levels.  [tbl] is the original per-(context, value) table.
     [vtbl] memoizes whole bit vectors per vertex: the engine's hot loop
     commits the same monotone vector for every quiet vertex each epoch, and
     a vector hit answers all k bits with one lookup — without even building
     the k per-bit context strings.  The per-bit nonce derivation is
     unchanged (the bit index stays in the HMAC context: dropping it would
     make equal-bit commitments collide across positions and leak the
     threshold), so commitment bytes are identical to the uncached path. *)
  type t = {
    mutable key : string;
    mutable hkey : Hmac.Key.t; (* precomputed HMAC midstates for [key] *)
    mutable period : int;
    tbl : (string * string, commitment * opening) Hashtbl.t;
    vtbl : (string * string, (commitment * opening) list) Hashtbl.t;
    bit_fast : Bit_fast.t;
  }

  let hits = Pvr_obs.counter "crypto.commitment.cache.hits"
  let misses = Pvr_obs.counter "crypto.commitment.cache.misses"
  let vhits = Pvr_obs.counter "crypto.commitment.cache.vector.hits"

  let create ?(period = 0) ~key () =
    {
      key;
      hkey = Hmac.Key.create key;
      period;
      tbl = Hashtbl.create 256;
      vtbl = Hashtbl.create 64;
      bit_fast = Bit_fast.create ();
    }

  let period t = t.period

  let clear t =
    Hashtbl.reset t.tbl;
    Hashtbl.reset t.vtbl

  let rotate t ~period ~key =
    if period <> t.period || not (String.equal key t.key) then begin
      clear t;
      t.period <- period;
      t.key <- key;
      t.hkey <- Hmac.Key.create key
    end

  let derived_nonce_fast t ~context value =
    Hmac.mac_with t.hkey
      (Bytes_util.encode_list [ nonce_tag; context; value ])

  let commit t ~context value =
    match Hashtbl.find_opt t.tbl (context, value) with
    | Some r ->
        Pvr_obs.incr hits;
        r
    | None ->
        Pvr_obs.incr misses;
        let nonce = derived_nonce_fast t ~context value in
        let c =
          if String.length value = 1 then
            Bit_fast.commit t.bit_fast ~nonce value.[0]
          else commit_with_nonce ~nonce value
        in
        let r = (c, { value; nonce }) in
        Hashtbl.add t.tbl (context, value) r;
        r

  let commit_bit t ~context b = commit t ~context (bit_string b)

  (* Whole-vector memo: [vertex] must identify the committing position
     (prover | prefix) and [context] must be the same pure function of the
     bit index the per-bit path would use.  A hit counts as one hit per
     bit, so the hit/miss counters stay comparable with the per-bit
     accounting. *)
  let commit_bit_vector t ~vertex ~context bits =
    let shape = String.concat "" (List.map bit_string bits) in
    match Hashtbl.find_opt t.vtbl (vertex, shape) with
    | Some rs ->
        Pvr_obs.add hits (List.length rs);
        Pvr_obs.incr vhits;
        rs
    | None ->
        let rs =
          List.mapi (fun i b -> commit_bit t ~context:(context i) b) bits
        in
        Hashtbl.replace t.vtbl (vertex, shape) rs;
        rs

  let size t = Hashtbl.length t.tbl
end

let opening_bit o =
  match o.value with "0" -> Some false | "1" -> Some true | _ -> None

let to_hex c = Hex.encode c

let of_raw s =
  if String.length s <> Sha256.digest_size then
    invalid_arg "Commitment.of_raw: expected a 32-byte digest";
  s
