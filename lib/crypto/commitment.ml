type commitment = string

type opening = { value : string; nonce : string }

let tag = "pvr-commit-v1:"

let commit_with_nonce ~nonce value =
  Sha256.digest (tag ^ Bytes_util.encode_list [ value; nonce ])

let commit rng value =
  let nonce = Drbg.generate rng 32 in
  (commit_with_nonce ~nonce value, { value; nonce })

let verify c { value; nonce } =
  Bytes_util.equal_ct c (commit_with_nonce ~nonce value)

let bit_string b = if b then "1" else "0"

let commit_bit rng b = commit rng (bit_string b)

let nonce_tag = "pvr-commit-nonce-v1"

let derived_nonce ~key ~context value =
  Hmac.mac ~key (Bytes_util.encode_list [ nonce_tag; context; value ])

let commit_derived ~key ~context value =
  let nonce = derived_nonce ~key ~context value in
  (commit_with_nonce ~nonce value, { value; nonce })

module Cache = struct
  type t = {
    key : string;
    tbl : (string * string, commitment * opening) Hashtbl.t;
  }

  let hits = Pvr_obs.counter "crypto.commitment.cache.hits"
  let misses = Pvr_obs.counter "crypto.commitment.cache.misses"
  let create ~key () = { key; tbl = Hashtbl.create 256 }

  let commit t ~context value =
    match Hashtbl.find_opt t.tbl (context, value) with
    | Some r ->
        Pvr_obs.incr hits;
        r
    | None ->
        Pvr_obs.incr misses;
        let r = commit_derived ~key:t.key ~context value in
        Hashtbl.add t.tbl (context, value) r;
        r

  let commit_bit t ~context b = commit t ~context (bit_string b)
  let clear t = Hashtbl.reset t.tbl
  let size t = Hashtbl.length t.tbl
end

let opening_bit o =
  match o.value with "0" -> Some false | "1" -> Some true | _ -> None

let to_hex c = Hex.encode c

let of_raw s =
  if String.length s <> Sha256.digest_size then
    invalid_arg "Commitment.of_raw: expected a 32-byte digest";
  s
