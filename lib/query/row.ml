module Bgp = Pvr_bgp
module Codec = Pvr_store.Codec
module J = Pvr_obs.Json

type t = {
  r_epoch : int;
  r_prover : int;
  r_addr : int;
  r_len : int;
  r_beneficiary : int;
  r_providers : int list;
  r_behaviour : string;
  r_detected : bool;
  r_convicted : bool;
  r_evidence : int;
  r_kinds : string list;
  r_leaked : int;
  r_excess : int;
}

let prover r = Bgp.Asn.of_int r.r_prover
let beneficiary r = Bgp.Asn.of_int r.r_beneficiary
let providers r = List.map Bgp.Asn.of_int r.r_providers
let prefix r = Bgp.Prefix.make ~addr:r.r_addr ~len:r.r_len

let verdict r =
  if r.r_convicted then "guilty" else if r.r_detected then "detected" else "ok"

(* Row identity order = journal order: epoch first, then the engine's
   (prover, prefix) vertex sort within the epoch. *)
let compare a b =
  let c = Int.compare a.r_epoch b.r_epoch in
  if c <> 0 then c
  else
    let c = Int.compare a.r_prover b.r_prover in
    if c <> 0 then c
    else
      let c = Int.compare a.r_addr b.r_addr in
      if c <> 0 then c else Int.compare a.r_len b.r_len

let equal a b = compare a b = 0 && a = b

let encode buf r =
  Codec.u32 buf r.r_epoch;
  Codec.u32 buf r.r_prover;
  Codec.u32 buf r.r_addr;
  Codec.u32 buf r.r_len;
  Codec.u32 buf r.r_beneficiary;
  Codec.u32 buf (List.length r.r_providers);
  List.iter (fun p -> Codec.u32 buf p) r.r_providers;
  Codec.str buf r.r_behaviour;
  Codec.bool_ buf r.r_detected;
  Codec.bool_ buf r.r_convicted;
  Codec.u32 buf r.r_evidence;
  Codec.u32 buf (List.length r.r_kinds);
  List.iter (fun k -> Codec.str buf k) r.r_kinds;
  Codec.u32 buf r.r_leaked;
  Codec.u32 buf r.r_excess

let read rd =
  let r_epoch = Codec.get_u32 rd in
  let r_prover = Codec.get_u32 rd in
  let r_addr = Codec.get_u32 rd in
  let r_len = Codec.get_u32 rd in
  let r_beneficiary = Codec.get_u32 rd in
  let np = Codec.get_u32 rd in
  let r_providers = List.init np (fun _ -> Codec.get_u32 rd) in
  let r_behaviour = Codec.get_str rd in
  let r_detected = Codec.get_bool rd in
  let r_convicted = Codec.get_bool rd in
  let r_evidence = Codec.get_u32 rd in
  let nk = Codec.get_u32 rd in
  let r_kinds = List.init nk (fun _ -> Codec.get_str rd) in
  let r_leaked = Codec.get_u32 rd in
  let r_excess = Codec.get_u32 rd in
  {
    r_epoch;
    r_prover;
    r_addr;
    r_len;
    r_beneficiary;
    r_providers;
    r_behaviour;
    r_detected;
    r_convicted;
    r_evidence;
    r_kinds;
    r_leaked;
    r_excess;
  }

let to_json r =
  J.Obj
    [
      ("epoch", J.Int r.r_epoch);
      ("prover", J.Int r.r_prover);
      ("prefix", J.String (Bgp.Prefix.to_string (prefix r)));
      ("beneficiary", J.Int r.r_beneficiary);
      ("providers", J.List (List.map (fun p -> J.Int p) r.r_providers));
      ("behaviour", J.String r.r_behaviour);
      ("verdict", J.String (verdict r));
      ("detected", J.Bool r.r_detected);
      ("convicted", J.Bool r.r_convicted);
      ("evidence", J.Int r.r_evidence);
      ("kinds", J.List (List.map (fun k -> J.String k) r.r_kinds));
      ("leaked_bits", J.Int r.r_leaked);
      ("excess_bits", J.Int r.r_excess);
    ]
