(** The [pvr query] language: a hand-written lexer and recursive-descent
    parser over the (prover, promise-vertex, epoch) triple space.

    Grammar (keywords case-insensitive):

    {v
    query   := source [ "where" expr ]
               [ "order" "by" key ["asc"|"desc"] ] [ "limit" INT ]
    source  := "violations" | "convictions" | "rows"
    expr    := expr ("and"|"or") expr | "not" expr | "(" expr ")" | atom
    atom    := ("epoch"|"evidence"|"leaked"|"excess") CMP INT
             | ("prover"|"beneficiary") ("="|"!=") ASN
             | "prefix" ("="|"in") PREFIX
             | ("behaviour"|"kind") ("="|"!=") NAME
             | ("detected"|"convicted") [("="|"!=") ("true"|"false")]
    v}

    [ASN] is [17] or [AS17]; [PREFIX] is CIDR ([10.0.0.0/8]); behaviour and
    kind names are validated at parse time against {!Pvr.Adversary.all} and
    {!Pvr.Evidence.all_kinds}.  ["violations"] restricts to detected rows
    and ["convictions"] to convicted rows before the [where] clause runs. *)

module Bgp = Pvr_bgp

type source = Violations | Convictions | Rows
type cmp = Lt | Le | Gt | Ge | Eq | Ne
type int_field = F_epoch | F_evidence | F_leaked | F_excess
type asn_field = F_prover | F_beneficiary
type bool_field = F_detected | F_convicted

type expr =
  | True  (** absent [where] clause *)
  | Int_cmp of int_field * cmp * int
  | Asn_cmp of asn_field * bool * int
      (** [true] is [=], [false] is [!=]; the int is the ASN *)
  | Prefix_eq of Bgp.Prefix.t
  | Prefix_in of Bgp.Prefix.t
  | Behaviour_is of bool * string
  | Kind_has of bool * string
  | Bool_is of bool_field * bool
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type order_key =
  | By_epoch
  | By_prover
  | By_beneficiary
  | By_prefix
  | By_evidence
  | By_leaked
  | By_excess

type t = {
  q_source : source;
  q_where : expr;
  q_order : (order_key * bool) option;  (** [true] = ascending *)
  q_limit : int option;
}

type error = { pos : int; msg : string }
(** [pos] is a byte offset into the query string. *)

val render_error : query:string -> error -> string
(** The query echoed with a caret under the offending position. *)

val parse : string -> (t, error) result

val to_string : t -> string
(** Canonical form (fully parenthesized); [parse (to_string q)]
    reconstructs [q] exactly. *)

val expr_to_string : expr -> string
val source_to_string : source -> string
val order_key_to_string : order_key -> string

val eval : expr -> Row.t -> bool

val admits : t -> Row.t -> bool
(** Source restriction and [where] clause together. *)
