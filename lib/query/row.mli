(** One evidence-plane row: the durable, query-addressable residue of a
    verification round at a (prover, promise-vertex, epoch) triple.

    Rows carry only configuration-invariant facts — verdicts, behaviour,
    evidence kinds, leakage counts — never caches, routes or network
    transcripts, so the same seed produces byte-identical rows for any
    jobs/shards/cache setting and across crash/recover boundaries. *)

module Bgp = Pvr_bgp

type t = {
  r_epoch : int;  (** engine epoch the round ran in *)
  r_prover : int;  (** ASN as an int (codec-friendly) *)
  r_addr : int;  (** prefix network address *)
  r_len : int;  (** prefix length *)
  r_beneficiary : int;
  r_providers : int list;  (** sorted by ASN, as the engine reports them *)
  r_behaviour : string;  (** {!Pvr.Adversary.to_string} of the planned
                             behaviour *)
  r_detected : bool;
  r_convicted : bool;
  r_evidence : int;  (** pieces of evidence raised *)
  r_kinds : string list;  (** sorted {!Pvr.Evidence.kind} tags *)
  r_leaked : int;  (** total disclosed bits ({!Pvr.Leakage} convention) *)
  r_excess : int;  (** audited bits beyond plain-BGP baselines *)
}

val prover : t -> Bgp.Asn.t
val beneficiary : t -> Bgp.Asn.t
val providers : t -> Bgp.Asn.t list
val prefix : t -> Bgp.Prefix.t

val verdict : t -> string
(** ["guilty"], ["detected"] (raised but not convicted) or ["ok"]. *)

val compare : t -> t -> int
(** Journal order: (epoch, prover, prefix). *)

val equal : t -> t -> bool

val encode : Buffer.t -> t -> unit
val read : Pvr_store.Codec.reader -> t
(** @raise Pvr_store.Codec.Malformed on truncated input. *)

val to_json : t -> Pvr_obs.Json.t
(** Fixed field order — byte-stable across runs and recoveries. *)
