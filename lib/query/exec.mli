(** Cost-based planning and execution of {!Lang} queries over an
    {!Evidence_index}, behind the α access-control map.

    The planner extracts top-level conjuncts from the [where] clause,
    costs every applicable access path (prover posting list, prefix trie
    node — exact or subtree —, epoch range, full scan) with exact
    candidate counts from the index, and picks the cheapest; ties break
    deterministically toward the more selective path kind.  The chosen
    path only yields {e candidates} — the full predicate always runs as a
    residual filter, so plans can never change answers, only cost.

    Counters: ["query.plans"] per planned query, ["query.index.hits"] for
    candidates fetched through a non-scan path, ["query.rows"] for rows
    returned.  α refusals go through
    {!Pvr.Leakage.Ledger.record_refusal} (["leakage.refusals"]). *)

module Bgp = Pvr_bgp

type access =
  | Scan
  | Prover_idx of int
  | Prefix_idx of { prefix : Bgp.Prefix.t; exact : bool }
  | Epoch_idx of { lo : int; hi : int }

type plan = {
  pl_access : access;
  pl_cost : int;  (** exact candidate count of the chosen path *)
  pl_considered : (string * int) list;
      (** every candidate path and its cost, scan first *)
}

val access_to_string : access -> string
val plan_to_string : plan -> string

val explain : plan -> string
(** One line: the chosen path plus every considered alternative. *)

val plan : Evidence_index.t -> Lang.t -> plan
(** Plan without executing (increments ["query.plans"]). *)

val authorized_for_row : viewer:Bgp.Asn.t -> Row.t -> bool
(** Is [viewer] α-authorized to see this row?  True for the court
    pseudo-viewer (ASN 0), the row's beneficiary (its promise output
    variable) and its providers (their own input variables) — the
    public [op:min] vertex deliberately does {e not} grant row access. *)

val key_compare : Lang.order_key -> Row.t -> Row.t -> int
(** The [order by] comparator ([stable_sort]ed over natural journal
    order, so ties are deterministic). *)

type result_ = {
  qr_rows : Row.t list;  (** post-α, ordered, limited *)
  qr_refused : int;
      (** matching rows withheld from this viewer by α — accounted in the
          disclosure ledger, never returned *)
  qr_plan : plan;
}

val run :
  ?ledger:Pvr.Leakage.Ledger.ledger ->
  Evidence_index.t ->
  viewer:Bgp.Asn.t ->
  Lang.t ->
  result_
(** Plan and execute for [viewer].  Unauthorized rows are dropped before
    ordering and limit (a limit is never padded with invisible rows);
    refusals and returned rows are accounted in [ledger] (a throwaway one
    when omitted, so counters still move). *)

val to_json : query:Lang.t -> viewer:Bgp.Asn.t -> result_ -> Pvr_obs.Json.t

val render_json : query:Lang.t -> viewer:Bgp.Asn.t -> result_ -> string
(** Single line, fixed field order — byte-identical for identical
    results, which the crash-recovery smoke diffs. *)

val render_text : viewer:Bgp.Asn.t -> result_ -> string
(** Human-readable table plus a row/refusal/plan footer. *)
