(** Tagged journal payloads of the engine's evidence plane.

    Every payload {!Pvr_engine.Persist} appends to the {!Pvr_store.Store}
    journal starts with a u32 tag.  Tag [1] is the per-epoch summary
    record and predates this module — its tag doubled as the record
    version field, so v1 stores decode unchanged.  This module owns the
    full tag space so the query plane (which has no engine dependency)
    and the engine (which appends) cannot skew:

    - tag [1] — epoch summary (digest chain, RIB digest, tallies);
      journaled {e after} the epoch's rows frame, so it is the commit
      record: rows without a following epoch record for the same epoch
      are an uncommitted orphan.
    - tag [2] — evidence rows ({!Row.t} list) for one epoch.
    - tag [3] — an {!Evidence_index} checkpoint: the serialized index
      covering every committed epoch up to [if_epoch].  Purely an
      accelerator; the builder falls back to scanning rows frames when
      absent or stale.
    - tag [4] — a spill page: one cold (prover,prefix) vertex state the
      engine paged out to the journal.  Pages are addressed by byte
      offset ({!Pvr_store.Store.read_frame_at}), never replayed; the
      index builder and the resume filter skip them by tag. *)

type epoch_record = {
  er_epoch : int;
  er_period : int;
  er_changes : int;
  er_msgs : int;
  er_vertices : int;
  er_dirty : int;
  er_skipped : int;
  er_detected : int;
  er_convicted : int;
  er_digest : string;  (** hash chain after this epoch *)
  er_rib : string;  (** simulator RIB digest after this epoch *)
  er_run_id : string;
}

type rows_frame = { rf_run_id : string; rf_epoch : int; rf_rows : Row.t list }
type index_frame = { if_run_id : string; if_epoch : int; if_blob : string }
type page_frame = { pf_run_id : string; pf_key : string; pf_blob : string }

type record =
  | Epoch of epoch_record
  | Rows of rows_frame
  | Index of index_frame
  | Page of page_frame

val tag_epoch : int
val tag_rows : int
val tag_index : int
val tag_page : int

val tag : string -> int option
(** The leading u32 of a payload, if it has one. *)

val encode_epoch : epoch_record -> string
val decode_epoch : string -> (epoch_record, string) result
(** Tag-1 payloads only; rows/index payloads are an [Error], which is how
    pre-query-plane readers (crashsoak's frame audit) skip them. *)

val encode_rows : rows_frame -> string
val encode_index : index_frame -> string
val encode_page : page_frame -> string

val decode : string -> (record, string) result
(** Decode any tagged payload. *)

val peek_header : string -> (int * string * int) option
(** [(tag, run_id, epoch)] of a rows/index payload without decoding row
    bodies; [None] for epoch records and malformed payloads. *)
