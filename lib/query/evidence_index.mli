(** Compact secondary indexes over the evidence plane.

    Rows live in one append-only array in journal order — ascending
    (epoch, prover, prefix) — and every access path below returns row ids
    in ascending order, so merged/filtered results keep the natural order
    without re-sorting.  Three indexes hang off the array:

    - per-epoch segments (an epoch's rows are contiguous), giving range
      scans for [epoch > k]-style bounds;
    - per-prover posting lists;
    - a binary trie keyed on {!Pvr_merkle.Bitstring.of_int_bits} prefix
      bit paths, where CIDR containment is subtree traversal.

    [est_*] are exact candidate counts the planner uses as costs; the
    matching [ids_*] fetch the candidates. *)

module Bgp = Pvr_bgp

type t

val create : run_id:string -> unit -> t

val add_epoch : t -> epoch:int -> Row.t list -> unit
(** Fold one committed epoch's rows in.  Epochs must arrive in ascending
    order and at most once.
    @raise Invalid_argument otherwise. *)

val run_id : t -> string
val row_count : t -> int
val epoch_count : t -> int
val max_epoch : t -> int
(** Highest epoch folded in; 0 when empty. *)

val row : t -> int -> Row.t
(** @raise Invalid_argument when the id is out of range. *)

val ids_all : t -> int list
val ids_prover : t -> Bgp.Asn.t -> int list
val est_prover : t -> Bgp.Asn.t -> int

val ids_prefix : t -> exact:bool -> Bgp.Prefix.t -> int list
(** [exact:false] is containment: every row whose prefix the argument
    covers. *)

val est_prefix : t -> exact:bool -> Bgp.Prefix.t -> int
val ids_epoch_range : t -> lo:int -> hi:int -> int list
val est_epoch_range : t -> lo:int -> hi:int -> int

val save : t -> string
(** Serialize for an index-checkpoint journal frame; {!load} rebuilds the
    secondary structures, so the blob carries only run id + rows. *)

val load : string -> (t, string) result

val build : ?quiet:bool -> dir:string -> unit -> (t, string) result
(** Materialize the index for the newest run recorded in [dir]'s journal.
    Two passes over {!Pvr_store.Store.fold_frames}: a discovery pass that
    peeks headers only, then a row-decoding pass starting at the newest
    usable index checkpoint (or the journal start when there is none).
    Only rows frames {e committed} by a following epoch record of the same
    run are folded in; orphans from a crash are excluded, which is what
    makes live and recovered stores answer queries byte-identically.
    Frames the second pass touches are counted in ["query.scan.frames"].
    [Error] when [dir] has no journal. *)
