module Bgp = Pvr_bgp
module J = Pvr_obs.Json

let c_plans = Pvr_obs.counter "query.plans"
let c_index_hits = Pvr_obs.counter "query.index.hits"
let c_rows = Pvr_obs.counter "query.rows"

type access =
  | Scan
  | Prover_idx of int
  | Prefix_idx of { prefix : Bgp.Prefix.t; exact : bool }
  | Epoch_idx of { lo : int; hi : int }

type plan = {
  pl_access : access;
  pl_cost : int;
  pl_considered : (string * int) list; (* every candidate path and its cost *)
}

let access_to_string = function
  | Scan -> "scan"
  | Prover_idx v -> Printf.sprintf "prover[AS%d]" v
  | Prefix_idx { prefix; exact } ->
      Printf.sprintf "prefix[%s %s]"
        (if exact then "=" else "in")
        (Bgp.Prefix.to_string prefix)
  | Epoch_idx { lo; hi } -> Printf.sprintf "epoch[%d..%d]" lo hi

let plan_to_string p =
  Printf.sprintf "%s cost=%d" (access_to_string p.pl_access) p.pl_cost

let explain p =
  Printf.sprintf "plan: %s; considered: %s" (plan_to_string p)
    (String.concat ", "
       (List.map (fun (a, c) -> Printf.sprintf "%s=%d" a c) p.pl_considered))

(* ---- planning --------------------------------------------------------- *)

let rec conjuncts = function
  | Lang.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* Lower access-path rank wins cost ties, so plans are deterministic:
   posting list < exact prefix < prefix subtree < epoch range < scan. *)
let rank = function
  | Prover_idx _ -> 0
  | Prefix_idx { exact = true; _ } -> 1
  | Prefix_idx { exact = false; _ } -> 2
  | Epoch_idx _ -> 3
  | Scan -> 4

let epoch_bounds idx cs =
  let lo = ref 0 and hi = ref (Evidence_index.max_epoch idx) in
  let bounded = ref false in
  List.iter
    (fun c ->
      match c with
      | Lang.Int_cmp (Lang.F_epoch, cmp, v) -> (
          match cmp with
          | Lang.Lt ->
              hi := min !hi (v - 1);
              bounded := true
          | Lang.Le ->
              hi := min !hi v;
              bounded := true
          | Lang.Gt ->
              lo := max !lo (v + 1);
              bounded := true
          | Lang.Ge ->
              lo := max !lo v;
              bounded := true
          | Lang.Eq ->
              lo := max !lo v;
              hi := min !hi v;
              bounded := true
          | Lang.Ne -> ())
      | _ -> ())
    cs;
  if !bounded then Some (!lo, !hi) else None

let candidates idx (q : Lang.t) =
  let cs = match q.Lang.q_where with Lang.True -> [] | e -> conjuncts e in
  let paths = ref [] in
  List.iter
    (fun c ->
      match c with
      | Lang.Asn_cmp (Lang.F_prover, true, v) ->
          paths := Prover_idx v :: !paths
      | Lang.Prefix_eq p ->
          paths := Prefix_idx { prefix = p; exact = true } :: !paths
      | Lang.Prefix_in p ->
          paths := Prefix_idx { prefix = p; exact = false } :: !paths
      | _ -> ())
    cs;
  (match epoch_bounds idx cs with
  | Some (lo, hi) -> paths := Epoch_idx { lo; hi } :: !paths
  | None -> ());
  Scan :: List.rev !paths

let cost idx = function
  | Scan -> Evidence_index.row_count idx
  | Prover_idx v -> Evidence_index.est_prover idx (Bgp.Asn.of_int v)
  | Prefix_idx { prefix; exact } -> Evidence_index.est_prefix idx ~exact prefix
  | Epoch_idx { lo; hi } -> Evidence_index.est_epoch_range idx ~lo ~hi

let plan idx q =
  Pvr_obs.incr c_plans;
  let cands = candidates idx q in
  let costed = List.map (fun a -> (a, cost idx a)) cands in
  let best =
    List.fold_left
      (fun (ba, bc) (a, c) ->
        if c < bc || (c = bc && rank a < rank ba) then (a, c) else (ba, bc))
      (Scan, Evidence_index.row_count idx)
      costed
  in
  {
    pl_access = fst best;
    pl_cost = snd best;
    pl_considered =
      List.map (fun (a, c) -> (access_to_string a, c)) costed;
  }

let fetch idx = function
  | Scan -> Evidence_index.ids_all idx
  | Prover_idx v -> Evidence_index.ids_prover idx (Bgp.Asn.of_int v)
  | Prefix_idx { prefix; exact } -> Evidence_index.ids_prefix idx ~exact prefix
  | Epoch_idx { lo; hi } -> Evidence_index.ids_epoch_range idx ~lo ~hi

(* ---- access control --------------------------------------------------- *)

(* A row is visible to the α map's beneficiaries of its promise: the court
   pseudo-viewer sees everything; the beneficiary is authorized for the
   minimum-length output (out:ASb); a provider is authorized for its own
   input variable (r:ASi).  op:min being public grants threshold bits only
   — never a row, which names a concrete (prover, prefix) promise. *)
let authorized_for_row ~viewer (r : Row.t) =
  Bgp.Asn.equal viewer Pvr.Leakage.court
  ||
  let alpha =
    Pvr.Access_control.figure1 ~beneficiary:(Row.beneficiary r)
      ~providers:(Row.providers r)
  in
  Pvr.Leakage.alpha_authorizes alpha ~viewer
    (Pvr.Leakage.Knows_min_length r.Row.r_len)
  || Pvr.Leakage.alpha_authorizes alpha ~viewer
       (Pvr.Leakage.Knows_route
          {
            provider = viewer;
            route = Bgp.Route.originate ~asn:viewer (Row.prefix r);
          })

(* ---- execution -------------------------------------------------------- *)

type result_ = {
  qr_rows : Row.t list;
  qr_refused : int;
  qr_plan : plan;
}

let key_compare k (a : Row.t) (b : Row.t) =
  match k with
  | Lang.By_epoch -> Int.compare a.Row.r_epoch b.Row.r_epoch
  | Lang.By_prover -> Int.compare a.Row.r_prover b.Row.r_prover
  | Lang.By_beneficiary -> Int.compare a.Row.r_beneficiary b.Row.r_beneficiary
  | Lang.By_prefix ->
      let c = Int.compare a.Row.r_addr b.Row.r_addr in
      if c <> 0 then c else Int.compare a.Row.r_len b.Row.r_len
  | Lang.By_evidence -> Int.compare a.Row.r_evidence b.Row.r_evidence
  | Lang.By_leaked -> Int.compare a.Row.r_leaked b.Row.r_leaked
  | Lang.By_excess -> Int.compare a.Row.r_excess b.Row.r_excess

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let run ?ledger idx ~viewer (q : Lang.t) =
  (* Refusals must hit the obs counter even when the caller keeps no
     ledger, so account into a throwaway one. *)
  let ledger =
    match ledger with Some l -> l | None -> Pvr.Leakage.Ledger.create ()
  in
  let pl = plan idx q in
  let ids = fetch idx pl.pl_access in
  if pl.pl_access <> Scan then Pvr_obs.add c_index_hits (List.length ids);
  (* Candidates arrive in ascending row-id order = journal order, so the
     unordered result (and order-by ties) are deterministic. *)
  let matched =
    List.filter_map
      (fun id ->
        let r = Evidence_index.row idx id in
        if Lang.admits q r then Some r else None)
      ids
  in
  (* α first: an unauthorized row must not survive into ordering or limit
     (a limit must never be padded with rows the viewer cannot see). *)
  let visible, refused =
    List.partition (fun r -> authorized_for_row ~viewer r) matched
  in
  List.iter
    (fun (_ : Row.t) -> Pvr.Leakage.Ledger.record_refusal ledger ~viewer)
    refused;
  let ordered =
    match q.Lang.q_order with
    | None -> visible
    | Some (k, asc) ->
        let cmp a b =
          let c = key_compare k a b in
          if asc then c else -c
        in
        List.stable_sort cmp visible
  in
  let final =
    match q.Lang.q_limit with None -> ordered | Some n -> take n ordered
  in
  Pvr_obs.add c_rows (List.length final);
  List.iter
    (fun (_ : Row.t) -> Pvr.Leakage.Ledger.record_opaque ledger ~viewer)
    final;
  { qr_rows = final; qr_refused = List.length refused; qr_plan = pl }

(* ---- rendering -------------------------------------------------------- *)

let to_json ~query ~viewer res =
  J.Obj
    [
      ("query", J.String (Lang.to_string query));
      ("viewer", J.Int (Bgp.Asn.to_int viewer));
      ("plan", J.String (plan_to_string res.qr_plan));
      ("row_count", J.Int (List.length res.qr_rows));
      ("refused", J.Int res.qr_refused);
      ("rows", J.List (List.map Row.to_json res.qr_rows));
    ]

let render_json ~query ~viewer res =
  J.to_string (to_json ~query ~viewer res)

let render_text ~viewer res =
  let cols =
    [
      ("epoch", fun (r : Row.t) -> string_of_int r.Row.r_epoch);
      ("prover", fun r -> Printf.sprintf "AS%d" r.Row.r_prover);
      ("prefix", fun r -> Bgp.Prefix.to_string (Row.prefix r));
      ("verdict", Row.verdict);
      ("behaviour", fun r -> r.Row.r_behaviour);
      ("kinds", fun r -> String.concat "," r.Row.r_kinds);
      ("evidence", fun r -> string_of_int r.Row.r_evidence);
      ("leaked", fun r -> string_of_int r.Row.r_leaked);
      ("excess", fun r -> string_of_int r.Row.r_excess);
    ]
  in
  let widths =
    List.map
      (fun (h, f) ->
        List.fold_left
          (fun w r -> max w (String.length (f r)))
          (String.length h) res.qr_rows)
      cols
  in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line cells =
    String.concat "  " (List.map2 pad widths cells) |> String.trim |> fun s ->
    s ^ "\n"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line (List.map fst cols));
  List.iter
    (fun r -> Buffer.add_string buf (line (List.map (fun (_, f) -> f r) cols)))
    res.qr_rows;
  Buffer.add_string buf
    (Printf.sprintf "%d row(s), %d refused for viewer AS%d (%s)\n"
       (List.length res.qr_rows) res.qr_refused (Bgp.Asn.to_int viewer)
       (plan_to_string res.qr_plan));
  Buffer.contents buf
