module Bgp = Pvr_bgp

type source = Violations | Convictions | Rows
type cmp = Lt | Le | Gt | Ge | Eq | Ne
type int_field = F_epoch | F_evidence | F_leaked | F_excess
type asn_field = F_prover | F_beneficiary
type bool_field = F_detected | F_convicted

type expr =
  | True
  | Int_cmp of int_field * cmp * int
  | Asn_cmp of asn_field * bool * int (* true = equals, false = differs *)
  | Prefix_eq of Bgp.Prefix.t
  | Prefix_in of Bgp.Prefix.t
  | Behaviour_is of bool * string
  | Kind_has of bool * string
  | Bool_is of bool_field * bool
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type order_key =
  | By_epoch
  | By_prover
  | By_beneficiary
  | By_prefix
  | By_evidence
  | By_leaked
  | By_excess

type t = {
  q_source : source;
  q_where : expr;
  q_order : (order_key * bool) option; (* true = ascending *)
  q_limit : int option;
}

type error = { pos : int; msg : string }

let render_error ~query e =
  Printf.sprintf "%s\n%s^ %s" query (String.make e.pos ' ') e.msg

(* ---- lexer ------------------------------------------------------------ *)

type token =
  | Tident of string
  | Tint of int
  | Tprefix of string
  | Tlparen
  | Trparen
  | Top of string
  | Teof

exception Fail of error

let fail pos fmt = Printf.ksprintf (fun msg -> raise (Fail { pos; msg })) fmt

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let emit tok pos = toks := (tok, pos) :: !toks in
  let is_digit c = c >= '0' && c <= '9' in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  let is_ident c = is_alpha c || is_digit c || c = '_' || c = '-' in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let c = src.[start] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then (
      emit Tlparen start;
      incr i)
    else if c = ')' then (
      emit Trparen start;
      incr i)
    else if c = '<' || c = '>' then (
      if start + 1 < n && src.[start + 1] = '=' then (
        emit (Top (String.init 2 (fun k -> if k = 0 then c else '='))) start;
        i := start + 2)
      else (
        emit (Top (String.make 1 c)) start;
        incr i))
    else if c = '=' then (
      emit (Top "=") start;
      incr i)
    else if c = '!' then
      if start + 1 < n && src.[start + 1] = '=' then (
        emit (Top "!=") start;
        i := start + 2)
      else fail start "expected '=' after '!'"
    else if is_digit c then begin
      while !i < n && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = '/')
      do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      if String.contains text '.' || String.contains text '/' then
        emit (Tprefix text) start
      else
        match int_of_string_opt text with
        | Some v -> emit (Tint v) start
        | None -> fail start "number out of range"
    end
    else if is_alpha c || c = '_' then begin
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      emit (Tident (String.lowercase_ascii (String.sub src start (!i - start)))) start
    end
    else fail start "unexpected character %C" c
  done;
  emit Teof n;
  Array.of_list (List.rev !toks)

(* ---- parser ----------------------------------------------------------- *)

type state = { toks : (token * int) array; mutable at : int }

let peek s = s.toks.(s.at)
let advance s = s.at <- s.at + 1

let next s =
  let t = peek s in
  advance s;
  t

let describe = function
  | Tident w -> Printf.sprintf "'%s'" w
  | Tint v -> string_of_int v
  | Tprefix p -> Printf.sprintf "'%s'" p
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Top o -> Printf.sprintf "'%s'" o
  | Teof -> "end of query"

let keyword s w =
  match peek s with
  | Tident k, _ when k = w ->
      advance s;
      true
  | _ -> false

let expect_keyword s w =
  if not (keyword s w) then
    let t, pos = peek s in
    fail pos "expected '%s', found %s" w (describe t)

let behaviours = List.map Pvr.Adversary.to_string Pvr.Adversary.all

let int_field_of_string = function
  | "epoch" -> Some F_epoch
  | "evidence" -> Some F_evidence
  | "leaked" | "leaked_bits" -> Some F_leaked
  | "excess" | "excess_bits" -> Some F_excess
  | _ -> None

let cmp_of_op = function
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | "=" -> Eq
  | "!=" -> Ne
  | o -> invalid_arg o

let parse_op s =
  match next s with
  | Top o, _ -> cmp_of_op o
  | t, pos -> fail pos "expected a comparison operator, found %s" (describe t)

let parse_eq_op s field =
  match parse_op s with
  | Eq -> true
  | Ne -> false
  | _ ->
      let _, pos = s.toks.(s.at - 1) in
      fail pos "'%s' supports only = and !=" field

let parse_int s =
  match next s with
  | Tint v, _ -> v
  | t, pos -> fail pos "expected an integer, found %s" (describe t)

let parse_asn s =
  match next s with
  | Tint v, _ -> v
  | Tident w, pos when String.length w > 2 && String.sub w 0 2 = "as" -> (
      match int_of_string_opt (String.sub w 2 (String.length w - 2)) with
      | Some v when v >= 0 -> v
      | _ -> fail pos "expected an ASN like 17 or AS17")
  | t, pos -> fail pos "expected an ASN like 17 or AS17, found %s" (describe t)

let parse_prefix s =
  match next s with
  | Tprefix text, pos -> (
      match Bgp.Prefix.of_string text with
      | p -> p
      | exception _ -> fail pos "malformed prefix '%s'" text)
  | t, pos -> fail pos "expected a prefix like 10.0.0.0/8, found %s" (describe t)

let parse_name s ~field ~known =
  match next s with
  | Tident w, pos ->
      if List.mem w known then w
      else fail pos "unknown %s '%s' (one of: %s)" field w (String.concat ", " known)
  | t, pos -> fail pos "expected a %s name, found %s" field (describe t)

let parse_bool_value s =
  match next s with
  | Tident "true", _ -> true
  | Tident "false", _ -> false
  | t, pos -> fail pos "expected true or false, found %s" (describe t)

let rec parse_expr s = parse_or s

and parse_or s =
  let left = parse_and s in
  if keyword s "or" then Or (left, parse_or s) else left

and parse_and s =
  let left = parse_unary s in
  if keyword s "and" then And (left, parse_and s) else left

and parse_unary s =
  match peek s with
  | Tident "not", _ ->
      advance s;
      Not (parse_unary s)
  | Tlparen, _ ->
      advance s;
      let e = parse_expr s in
      (match next s with
      | Trparen, _ -> e
      | t, pos -> fail pos "expected ')', found %s" (describe t))
  | _ -> parse_atom s

and parse_atom s =
  match next s with
  | Tident name, pos -> (
      match int_field_of_string name with
      | Some f ->
          (* bind in source order: OCaml argument evaluation is
             right-to-left, which would lex the value before the operator *)
          let op = parse_op s in
          let v = parse_int s in
          Int_cmp (f, op, v)
      | None -> (
          match name with
          | "prover" ->
              let eq = parse_eq_op s name in
              Asn_cmp (F_prover, eq, parse_asn s)
          | "beneficiary" ->
              let eq = parse_eq_op s name in
              Asn_cmp (F_beneficiary, eq, parse_asn s)
          | "prefix" -> (
              match next s with
              | Top "=", _ -> Prefix_eq (parse_prefix s)
              | Tident "in", _ -> Prefix_in (parse_prefix s)
              | t, p -> fail p "expected = or 'in' after prefix, found %s" (describe t))
          | "behaviour" | "behavior" ->
              let eq = parse_eq_op s "behaviour" in
              Behaviour_is
                (eq, parse_name s ~field:"behaviour" ~known:behaviours)
          | "kind" ->
              let eq = parse_eq_op s "kind" in
              Kind_has
                (eq, parse_name s ~field:"kind" ~known:Pvr.Evidence.all_kinds)
          | "detected" | "convicted" ->
              let f = if name = "detected" then F_detected else F_convicted in
              (match peek s with
              | Top ("=" | "!="), _ ->
                  let eq = parse_eq_op s name in
                  let v = parse_bool_value s in
                  Bool_is (f, eq = v)
              | _ -> Bool_is (f, true))
          | _ -> fail pos "unknown field '%s'" name))
  | t, pos -> fail pos "expected a condition, found %s" (describe t)

let order_key_of_string = function
  | "epoch" -> Some By_epoch
  | "prover" -> Some By_prover
  | "beneficiary" -> Some By_beneficiary
  | "prefix" -> Some By_prefix
  | "evidence" -> Some By_evidence
  | "leaked" | "leaked_bits" -> Some By_leaked
  | "excess" | "excess_bits" -> Some By_excess
  | _ -> None

let parse_query s =
  let q_source =
    match next s with
    | Tident "violations", _ -> Violations
    | Tident "convictions", _ -> Convictions
    | Tident "rows", _ -> Rows
    | t, pos ->
        fail pos "expected violations, convictions or rows, found %s"
          (describe t)
  in
  let q_where = if keyword s "where" then parse_expr s else True in
  let q_order =
    if keyword s "order" then begin
      expect_keyword s "by";
      let key =
        match next s with
        | Tident w, pos -> (
            match order_key_of_string w with
            | Some k -> k
            | None -> fail pos "cannot order by '%s'" w)
        | t, pos -> fail pos "expected an order key, found %s" (describe t)
      in
      let asc =
        if keyword s "desc" then false
        else (
          ignore (keyword s "asc");
          true)
      in
      Some (key, asc)
    end
    else None
  in
  let q_limit =
    if keyword s "limit" then Some (parse_int s) else None
  in
  (match peek s with
  | Teof, _ -> ()
  | t, pos -> fail pos "trailing input: %s" (describe t));
  { q_source; q_where; q_order; q_limit }

let parse src =
  match
    let s = { toks = lex src; at = 0 } in
    parse_query s
  with
  | q -> Ok q
  | exception Fail e -> Error e

(* ---- canonical rendering --------------------------------------------- *)

let cmp_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="
  | Ne -> "!="

let int_field_to_string = function
  | F_epoch -> "epoch"
  | F_evidence -> "evidence"
  | F_leaked -> "leaked"
  | F_excess -> "excess"

let asn_field_to_string = function
  | F_prover -> "prover"
  | F_beneficiary -> "beneficiary"

let bool_field_to_string = function
  | F_detected -> "detected"
  | F_convicted -> "convicted"

let rec expr_to_string = function
  | True -> "true"
  | Int_cmp (f, c, v) ->
      Printf.sprintf "%s %s %d" (int_field_to_string f) (cmp_to_string c) v
  | Asn_cmp (f, eq, v) ->
      Printf.sprintf "%s %s AS%d" (asn_field_to_string f)
        (if eq then "=" else "!=")
        v
  | Prefix_eq p -> Printf.sprintf "prefix = %s" (Bgp.Prefix.to_string p)
  | Prefix_in p -> Printf.sprintf "prefix in %s" (Bgp.Prefix.to_string p)
  | Behaviour_is (eq, b) ->
      Printf.sprintf "behaviour %s %s" (if eq then "=" else "!=") b
  | Kind_has (eq, k) ->
      Printf.sprintf "kind %s %s" (if eq then "=" else "!=") k
  | Bool_is (f, v) ->
      Printf.sprintf "%s = %b" (bool_field_to_string f) v
  | And (a, b) ->
      Printf.sprintf "(%s and %s)" (expr_to_string a) (expr_to_string b)
  | Or (a, b) ->
      Printf.sprintf "(%s or %s)" (expr_to_string a) (expr_to_string b)
  | Not e -> Printf.sprintf "(not %s)" (expr_to_string e)

let source_to_string = function
  | Violations -> "violations"
  | Convictions -> "convictions"
  | Rows -> "rows"

let order_key_to_string = function
  | By_epoch -> "epoch"
  | By_prover -> "prover"
  | By_beneficiary -> "beneficiary"
  | By_prefix -> "prefix"
  | By_evidence -> "evidence"
  | By_leaked -> "leaked"
  | By_excess -> "excess"

let to_string q =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (source_to_string q.q_source);
  (match q.q_where with
  | True -> ()
  | e ->
      Buffer.add_string buf " where ";
      Buffer.add_string buf (expr_to_string e));
  (match q.q_order with
  | None -> ()
  | Some (k, asc) ->
      Buffer.add_string buf
        (Printf.sprintf " order by %s %s" (order_key_to_string k)
           (if asc then "asc" else "desc")));
  (match q.q_limit with
  | None -> ()
  | Some n -> Buffer.add_string buf (Printf.sprintf " limit %d" n));
  Buffer.contents buf

(* ---- evaluation ------------------------------------------------------- *)

let int_field_value f (r : Row.t) =
  match f with
  | F_epoch -> r.Row.r_epoch
  | F_evidence -> r.Row.r_evidence
  | F_leaked -> r.Row.r_leaked
  | F_excess -> r.Row.r_excess

let asn_field_value f (r : Row.t) =
  match f with
  | F_prover -> r.Row.r_prover
  | F_beneficiary -> r.Row.r_beneficiary

let bool_field_value f (r : Row.t) =
  match f with
  | F_detected -> r.Row.r_detected
  | F_convicted -> r.Row.r_convicted

let apply_cmp c a b =
  match c with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b

let rec eval e (r : Row.t) =
  match e with
  | True -> true
  | Int_cmp (f, c, v) -> apply_cmp c (int_field_value f r) v
  | Asn_cmp (f, eq, v) -> (asn_field_value f r = v) = eq
  | Prefix_eq p -> r.Row.r_addr = p.Bgp.Prefix.addr && r.Row.r_len = p.Bgp.Prefix.len
  | Prefix_in p -> Bgp.Prefix.contains p (Row.prefix r)
  | Behaviour_is (eq, b) -> (r.Row.r_behaviour = b) = eq
  | Kind_has (eq, k) -> List.mem k r.Row.r_kinds = eq
  | Bool_is (f, v) -> bool_field_value f r = v
  | And (a, b) -> eval a r && eval b r
  | Or (a, b) -> eval a r || eval b r
  | Not e -> not (eval e r)

let source_admits src (r : Row.t) =
  match src with
  | Rows -> true
  | Violations -> r.Row.r_detected
  | Convictions -> r.Row.r_convicted

let admits q r = source_admits q.q_source r && eval q.q_where r
