module Bgp = Pvr_bgp
module Codec = Pvr_store.Codec
module Store = Pvr_store.Store
module Bits = Pvr_merkle.Bitstring

let c_scan_frames = Pvr_obs.counter "query.scan.frames"

(* Binary trie over prefix bit paths (Bitstring.of_int_bits addr ~len).
   CIDR containment is bit-path prefixing, so "prefix in P" is the subtree
   under P's path and "prefix = P" is the node at exactly P's path.
   [n_count] caches the subtree row total for the planner's cost model. *)
type node = {
  mutable n_count : int;
  mutable n_here : int list; (* row ids ending at this node, reverse order *)
  mutable n_zero : node option;
  mutable n_one : node option;
}

let fresh_node () = { n_count = 0; n_here = []; n_zero = None; n_one = None }

type t = {
  mutable ix_run_id : string;
  mutable ix_rows : Row.t array;
  mutable ix_n : int;
  ix_epochs : (int, int * int) Hashtbl.t; (* epoch -> (first row id, count) *)
  mutable ix_max_epoch : int;
  ix_by_prover : (int, int list ref) Hashtbl.t; (* asn -> rev row ids *)
  ix_root : node;
}

let dummy_row =
  {
    Row.r_epoch = 0;
    r_prover = 0;
    r_addr = 0;
    r_len = 0;
    r_beneficiary = 0;
    r_providers = [];
    r_behaviour = "";
    r_detected = false;
    r_convicted = false;
    r_evidence = 0;
    r_kinds = [];
    r_leaked = 0;
    r_excess = 0;
  }

let create ~run_id () =
  {
    ix_run_id = run_id;
    ix_rows = Array.make 64 dummy_row;
    ix_n = 0;
    ix_epochs = Hashtbl.create 64;
    ix_max_epoch = 0;
    ix_by_prover = Hashtbl.create 64;
    ix_root = fresh_node ();
  }

let run_id t = t.ix_run_id
let row_count t = t.ix_n
let epoch_count t = Hashtbl.length t.ix_epochs
let max_epoch t = t.ix_max_epoch

let row t i =
  if i < 0 || i >= t.ix_n then invalid_arg "Evidence_index.row";
  t.ix_rows.(i)

let trie_insert root path id =
  let len = Bits.length path in
  let rec go node i =
    node.n_count <- node.n_count + 1;
    if i = len then node.n_here <- id :: node.n_here
    else
      let child =
        if Bits.get path i then (
          match node.n_one with
          | Some c -> c
          | None ->
              let c = fresh_node () in
              node.n_one <- Some c;
              c)
        else
          match node.n_zero with
          | Some c -> c
          | None ->
              let c = fresh_node () in
              node.n_zero <- Some c;
              c
      in
      go child (i + 1)
  in
  go root 0

let trie_find root path =
  let len = Bits.length path in
  let rec go node i =
    if i = len then Some node
    else
      match (if Bits.get path i then node.n_one else node.n_zero) with
      | None -> None
      | Some c -> go c (i + 1)
  in
  go root 0

let rec trie_collect node acc =
  let acc = List.rev_append node.n_here acc in
  let acc = match node.n_zero with Some c -> trie_collect c acc | None -> acc in
  match node.n_one with Some c -> trie_collect c acc | None -> acc

let path_of_prefix (p : Bgp.Prefix.t) =
  Bits.of_int_bits p.Bgp.Prefix.addr ~len:p.Bgp.Prefix.len

let add_row t r =
  if t.ix_n = Array.length t.ix_rows then begin
    let bigger = Array.make (2 * t.ix_n) dummy_row in
    Array.blit t.ix_rows 0 bigger 0 t.ix_n;
    t.ix_rows <- bigger
  end;
  let id = t.ix_n in
  t.ix_rows.(id) <- r;
  t.ix_n <- t.ix_n + 1;
  (let key = r.Row.r_prover in
   match Hashtbl.find_opt t.ix_by_prover key with
   | Some ids -> ids := id :: !ids
   | None -> Hashtbl.add t.ix_by_prover key (ref [ id ]));
  trie_insert t.ix_root
    (Bits.of_int_bits r.Row.r_addr ~len:r.Row.r_len)
    id

let add_epoch t ~epoch rows =
  if epoch <= t.ix_max_epoch && t.ix_n > 0 then
    invalid_arg "Evidence_index.add_epoch: epochs must be ascending";
  if Hashtbl.mem t.ix_epochs epoch then
    invalid_arg "Evidence_index.add_epoch: duplicate epoch";
  let first = t.ix_n in
  List.iter (fun r -> add_row t r) rows;
  Hashtbl.replace t.ix_epochs epoch (first, t.ix_n - first);
  t.ix_max_epoch <- max t.ix_max_epoch epoch

(* ---- access paths ---------------------------------------------------- *)

let ids_all t = List.init t.ix_n (fun i -> i)

let ids_prover t asn =
  match Hashtbl.find_opt t.ix_by_prover (Bgp.Asn.to_int asn) with
  | Some ids -> List.rev !ids
  | None -> []

let est_prover t asn =
  match Hashtbl.find_opt t.ix_by_prover (Bgp.Asn.to_int asn) with
  | Some ids -> List.length !ids
  | None -> 0

let ids_prefix t ~exact prefix =
  match trie_find t.ix_root (path_of_prefix prefix) with
  | None -> []
  | Some node ->
      let ids = if exact then node.n_here else trie_collect node [] in
      List.sort Int.compare ids

let est_prefix t ~exact prefix =
  match trie_find t.ix_root (path_of_prefix prefix) with
  | None -> 0
  | Some node -> if exact then List.length node.n_here else node.n_count

let epoch_segments t ~lo ~hi =
  Hashtbl.fold
    (fun e seg acc -> if e >= lo && e <= hi then (e, seg) :: acc else acc)
    t.ix_epochs []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let ids_epoch_range t ~lo ~hi =
  List.concat_map
    (fun (_, (first, count)) -> List.init count (fun i -> first + i))
    (epoch_segments t ~lo ~hi)

let est_epoch_range t ~lo ~hi =
  List.fold_left
    (fun acc (_, (_, count)) -> acc + count)
    0
    (epoch_segments t ~lo ~hi)

(* ---- serialization --------------------------------------------------- *)

let save_version = 1

let save t =
  let buf = Buffer.create 4096 in
  Codec.u32 buf save_version;
  Codec.str buf t.ix_run_id;
  let epochs =
    Hashtbl.fold (fun e seg acc -> (e, seg) :: acc) t.ix_epochs []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Codec.u32 buf (List.length epochs);
  List.iter
    (fun (epoch, (first, count)) ->
      Codec.u32 buf epoch;
      Codec.u32 buf count;
      for i = first to first + count - 1 do
        Row.encode buf t.ix_rows.(i)
      done)
    epochs;
  Buffer.contents buf

let load blob =
  Codec.decode blob (fun r ->
      let v = Codec.get_u32 r in
      if v <> save_version then
        raise
          (Codec.Malformed ("unsupported index version " ^ string_of_int v));
      let run_id = Codec.get_str r in
      let t = create ~run_id () in
      let n = Codec.get_u32 r in
      for _ = 1 to n do
        let epoch = Codec.get_u32 r in
        let count = Codec.get_u32 r in
        let rows = List.init count (fun _ -> Row.read r) in
        add_epoch t ~epoch rows
      done;
      t)

(* ---- building from a store ------------------------------------------- *)

(* Discovery pass over the whole journal (cheap: epoch records are tiny and
   rows/index frames only have their headers peeked), then a row-decoding
   pass that starts at the newest usable index checkpoint — the
   incremental-materialization fast path: rows already covered by the
   checkpoint are never decoded again. *)
let build ?(quiet = false) ~dir () =
  let warn fmt =
    Printf.ksprintf
      (fun msg -> if not quiet then Printf.eprintf "query: %s\n%!" msg)
      fmt
  in
  if not (Sys.file_exists (Store.journal_path ~dir)) then
    Error (Printf.sprintf "no journal in %s" dir)
  else begin
    (* Pass 1: committed epochs, authoritative run id, newest index frame. *)
    let committed = Hashtbl.create 64 in
    let last_run = ref "" in
    let max_committed = ref 0 in
    let index_frames = ref [] in
    let (), _fe =
      Store.fold_frames ~dir ~init:()
        ~f:(fun () ~off payload ->
          match Frame.tag payload with
          | Some t when t = Frame.tag_epoch -> (
              match Frame.decode_epoch payload with
              | Ok er ->
                  last_run := er.Frame.er_run_id;
                  Hashtbl.replace committed
                    (er.Frame.er_run_id, er.Frame.er_epoch)
                    ();
                  ()
              | Error _ -> ())
          | Some t when t = Frame.tag_index -> (
              match Frame.peek_header payload with
              | Some (_, run, epoch) ->
                  index_frames := (off, run, epoch) :: !index_frames
              | None -> ())
          | _ -> ())
        ()
    in
    let run = !last_run in
    Hashtbl.iter
      (fun (r, e) () -> if r = run then max_committed := max !max_committed e)
      committed;
    let is_committed e = Hashtbl.mem committed (run, e) in
    (* Newest index checkpoint that belongs to this run and only covers
       committed epochs. *)
    let checkpoint =
      List.find_opt
        (fun (_, r, e) -> r = run && e <= !max_committed)
        !index_frames
    in
    (* Pass 2 from [from]: decode rows frames not covered by [base]. *)
    let scan_rows ~from ~covered base =
      let seen = Hashtbl.create 64 in
      let stash, fe =
        Store.fold_frames ~from ~dir ~init:[]
          ~f:(fun acc ~off:_ payload ->
            match Frame.tag payload with
            | Some t when t = Frame.tag_rows -> (
                match Frame.decode payload with
                | Ok (Frame.Rows rf)
                  when rf.Frame.rf_run_id = run
                       && rf.Frame.rf_epoch > covered
                       && is_committed rf.Frame.rf_epoch
                       && not (Hashtbl.mem seen rf.Frame.rf_epoch) ->
                    Hashtbl.replace seen rf.Frame.rf_epoch ();
                    (rf.Frame.rf_epoch, rf.Frame.rf_rows) :: acc
                | Ok _ | Error _ -> acc)
            | _ -> acc)
          ()
      in
      Pvr_obs.add c_scan_frames fe.Store.fe_frames;
      List.iter
        (fun (epoch, rows) -> add_epoch base ~epoch rows)
        (List.sort (fun (a, _) (b, _) -> Int.compare a b) stash);
      base
    in
    let from_scratch () =
      scan_rows ~from:0 ~covered:0 (create ~run_id:run ())
    in
    let idx =
      match checkpoint with
      | None -> from_scratch ()
      | Some (off, _, _) -> (
          (* Re-read the checkpoint frame itself, then scan only past it. *)
          let blob = ref None in
          let (), _ =
            Store.fold_frames ~from:off ~dir ~init:()
              ~f:(fun () ~off:o payload ->
                if o = off then
                  match Frame.decode payload with
                  | Ok (Frame.Index f) -> blob := Some f.Frame.if_blob
                  | Ok _ | Error _ -> ())
              ()
          in
          match Option.map load !blob with
          | Some (Ok base) when run_id base = run ->
              scan_rows ~from:off ~covered:(max_epoch base) base
          | Some (Ok _) | Some (Error _) | None ->
              warn "index checkpoint unusable; rebuilding from rows frames";
              from_scratch ())
    in
    Ok idx
  end
