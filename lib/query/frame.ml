module Codec = Pvr_store.Codec

(* Tag space of engine journal payloads.  Tag 1 predates this module: it
   doubled as the epoch-record version field, so v1 epoch payloads from
   older stores decode unchanged.  Tags 2/3 are the evidence plane. *)
let tag_epoch = 1
let tag_rows = 2
let tag_index = 3

(* Tag 4 is the engine's spill layer: one cold (prover,prefix) vertex
   state paged out to the journal.  Pages are read back by byte offset
   ([Store.read_frame_at]), never replayed — the index builder and resume
   filter skip them by tag. *)
let tag_page = 4

type epoch_record = {
  er_epoch : int;
  er_period : int;
  er_changes : int;
  er_msgs : int;
  er_vertices : int;
  er_dirty : int;
  er_skipped : int;
  er_detected : int;
  er_convicted : int;
  er_digest : string;
  er_rib : string;
  er_run_id : string;
}

type rows_frame = { rf_run_id : string; rf_epoch : int; rf_rows : Row.t list }
type index_frame = { if_run_id : string; if_epoch : int; if_blob : string }
type page_frame = { pf_run_id : string; pf_key : string; pf_blob : string }

type record =
  | Epoch of epoch_record
  | Rows of rows_frame
  | Index of index_frame
  | Page of page_frame

let tag payload =
  if String.length payload < 4 then None
  else Some (Pvr_crypto.Bytes_util.read_be32 payload 0)

let encode_epoch r =
  let buf = Buffer.create 256 in
  Codec.u32 buf tag_epoch;
  Codec.u32 buf r.er_epoch;
  Codec.u32 buf r.er_period;
  Codec.u32 buf r.er_changes;
  Codec.u32 buf r.er_msgs;
  Codec.u32 buf r.er_vertices;
  Codec.u32 buf r.er_dirty;
  Codec.u32 buf r.er_skipped;
  Codec.u32 buf r.er_detected;
  Codec.u32 buf r.er_convicted;
  Codec.str buf r.er_digest;
  Codec.str buf r.er_rib;
  Codec.str buf r.er_run_id;
  Buffer.contents buf

let read_epoch r =
  let er_epoch = Codec.get_u32 r in
  let er_period = Codec.get_u32 r in
  let er_changes = Codec.get_u32 r in
  let er_msgs = Codec.get_u32 r in
  let er_vertices = Codec.get_u32 r in
  let er_dirty = Codec.get_u32 r in
  let er_skipped = Codec.get_u32 r in
  let er_detected = Codec.get_u32 r in
  let er_convicted = Codec.get_u32 r in
  let er_digest = Codec.get_str r in
  let er_rib = Codec.get_str r in
  let er_run_id = Codec.get_str r in
  {
    er_epoch;
    er_period;
    er_changes;
    er_msgs;
    er_vertices;
    er_dirty;
    er_skipped;
    er_detected;
    er_convicted;
    er_digest;
    er_rib;
    er_run_id;
  }

let decode_epoch payload =
  Codec.decode payload (fun r ->
      let v = Codec.get_u32 r in
      if v <> tag_epoch then
        raise
          (Codec.Malformed ("unsupported journal version " ^ string_of_int v));
      read_epoch r)

let encode_rows f =
  let buf = Buffer.create 1024 in
  Codec.u32 buf tag_rows;
  Codec.str buf f.rf_run_id;
  Codec.u32 buf f.rf_epoch;
  Codec.u32 buf (List.length f.rf_rows);
  List.iter (fun r -> Row.encode buf r) f.rf_rows;
  Buffer.contents buf

let read_rows r =
  let rf_run_id = Codec.get_str r in
  let rf_epoch = Codec.get_u32 r in
  let n = Codec.get_u32 r in
  let rf_rows = List.init n (fun _ -> Row.read r) in
  { rf_run_id; rf_epoch; rf_rows }

let encode_index f =
  let buf = Buffer.create (String.length f.if_blob + 64) in
  Codec.u32 buf tag_index;
  Codec.str buf f.if_run_id;
  Codec.u32 buf f.if_epoch;
  Codec.str buf f.if_blob;
  Buffer.contents buf

let read_index r =
  let if_run_id = Codec.get_str r in
  let if_epoch = Codec.get_u32 r in
  let if_blob = Codec.get_str r in
  { if_run_id; if_epoch; if_blob }

let encode_page f =
  let buf = Buffer.create (String.length f.pf_blob + 64) in
  Codec.u32 buf tag_page;
  Codec.str buf f.pf_run_id;
  Codec.str buf f.pf_key;
  Codec.str buf f.pf_blob;
  Buffer.contents buf

let read_page r =
  let pf_run_id = Codec.get_str r in
  let pf_key = Codec.get_str r in
  let pf_blob = Codec.get_str r in
  { pf_run_id; pf_key; pf_blob }

let decode payload =
  Codec.decode payload (fun r ->
      let t = Codec.get_u32 r in
      if t = tag_epoch then Epoch (read_epoch r)
      else if t = tag_rows then Rows (read_rows r)
      else if t = tag_index then Index (read_index r)
      else if t = tag_page then Page (read_page r)
      else raise (Codec.Malformed ("unknown journal tag " ^ string_of_int t)))

(* Header-only peek for the index builder's discovery pass: run id and
   epoch of a rows/index frame without decoding row bodies (which for a
   rows frame is the whole point — bodies are only decoded in the region
   the chosen index checkpoint does not already cover). *)
let peek_header payload =
  match tag payload with
  | Some t when t = tag_rows || t = tag_index -> (
      let r = Codec.reader payload in
      match
        let _ = Codec.get_u32 r in
        let run_id = Codec.get_str r in
        let epoch = Codec.get_u32 r in
        (t, run_id, epoch)
      with
      | v -> Some v
      | exception Codec.Malformed _ -> None)
  | _ -> None
