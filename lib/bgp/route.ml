module BU = Pvr_crypto.Bytes_util

type origin = Igp | Egp | Incomplete

type community = int * int

type t = {
  prefix : Prefix.t;
  as_path : Asn.t list;
  next_hop : Asn.t;
  local_pref : int;
  med : int;
  origin : origin;
  communities : community list;
}

let default_local_pref = 100

let originate ~asn prefix =
  {
    prefix;
    as_path = [ asn ];
    next_hop = asn;
    local_pref = default_local_pref;
    med = 0;
    origin = Igp;
    communities = [];
  }

let path_length r = List.length r.as_path

let through asn r = List.exists (Asn.equal asn) r.as_path

let has_loop asn r = through asn r

let prepend asn r =
  { r with as_path = asn :: r.as_path; next_hop = asn }

let with_local_pref lp r = { r with local_pref = lp }
let with_med med r = { r with med }

let add_community c r =
  if List.mem c r.communities then r
  else { r with communities = c :: r.communities }

let has_community c r = List.mem c r.communities

let strip_private_attrs r = { r with local_pref = default_local_pref }

let origin_code = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let encode r =
  BU.encode_list
    [
      Prefix.to_string r.prefix;
      BU.encode_list
        (List.map (fun a -> BU.be32 (Asn.to_int a)) r.as_path);
      BU.be32 (Asn.to_int r.next_hop);
      BU.be32 r.local_pref;
      BU.be32 r.med;
      BU.be32 (origin_code r.origin);
      BU.encode_list
        (List.map (fun (a, v) -> BU.be32 a ^ BU.be32 v) r.communities);
    ]

let pp ppf r =
  Format.fprintf ppf "%a via [%s]" Prefix.pp r.prefix
    (String.concat " " (List.map Asn.to_string r.as_path))

let to_string r = Format.asprintf "%a" pp r

(* Structural, allocation-free equality with physical fast paths: interned
   routes (see {!Intern}) share canonical representatives, so the [==]
   checks short-circuit the common case on the engine's hot diff path.
   Equivalent to the old [encode a = encode b] — the encoding is injective
   over exactly these fields — without building two encodings per call. *)

let rec equal_path p q =
  p == q
  ||
  match (p, q) with
  | [], [] -> true
  | a :: p', b :: q' -> Asn.equal a b && equal_path p' q'
  | _ -> false

let equal a b =
  a == b
  || Prefix.equal a.prefix b.prefix
     && equal_path a.as_path b.as_path
     && Asn.equal a.next_hop b.next_hop
     && a.local_pref = b.local_pref && a.med = b.med
     && origin_code a.origin = origin_code b.origin
     && List.equal
          (fun (xa, xv) (ya, yv) -> xa = ya && xv = yv)
          a.communities b.communities

let compare a b =
  if a == b then 0
  else
    let ( <?> ) c next = if c <> 0 then c else next () in
    Prefix.compare a.prefix b.prefix <?> fun () ->
    List.compare Asn.compare a.as_path b.as_path <?> fun () ->
    Asn.compare a.next_hop b.next_hop <?> fun () ->
    Int.compare a.local_pref b.local_pref <?> fun () ->
    Int.compare a.med b.med <?> fun () ->
    Int.compare (origin_code a.origin) (origin_code b.origin) <?> fun () ->
    List.compare
      (fun (xa, xv) (ya, yv) ->
        Int.compare xa ya <?> fun () -> Int.compare xv yv)
      a.communities b.communities
