type t = {
  mutable adj_in : Route.t Prefix.Map.t Asn.Map.t;
  mutable loc : Route.t Prefix.Map.t;
  mutable adj_out : Route.t Prefix.Map.t Asn.Map.t;
}

let create () =
  { adj_in = Asn.Map.empty; loc = Prefix.Map.empty; adj_out = Asn.Map.empty }

(* Every route entering a RIB passes through the interner, so with
   interning enabled all stored routes are canonical representatives and
   downstream [Route.equal] calls settle on the [==] fast path. *)
let canon = Option.map Intern.route

let update_table table ~neighbor prefix route =
  let per_prefix =
    Option.value (Asn.Map.find_opt neighbor table) ~default:Prefix.Map.empty
  in
  let per_prefix =
    match route with
    | Some r -> Prefix.Map.add prefix r per_prefix
    | None -> Prefix.Map.remove prefix per_prefix
  in
  Asn.Map.add neighbor per_prefix table

let set_in t ~neighbor prefix route =
  t.adj_in <- update_table t.adj_in ~neighbor prefix (canon route)

let get_in t ~neighbor prefix =
  Option.bind (Asn.Map.find_opt neighbor t.adj_in) (Prefix.Map.find_opt prefix)

let candidates t prefix =
  Asn.Map.fold
    (fun _ per_prefix acc ->
      match Prefix.Map.find_opt prefix per_prefix with
      | Some r -> r :: acc
      | None -> acc)
    t.adj_in []

let candidates_from t ~neighbors prefix =
  List.filter_map (fun n -> get_in t ~neighbor:n prefix) neighbors

let set_best t prefix route =
  t.loc <-
    (match canon route with
    | Some r -> Prefix.Map.add prefix r t.loc
    | None -> Prefix.Map.remove prefix t.loc)

let get_best t prefix = Prefix.Map.find_opt prefix t.loc

let set_out t ~neighbor prefix route =
  t.adj_out <- update_table t.adj_out ~neighbor prefix (canon route)

let get_out t ~neighbor prefix =
  Option.bind (Asn.Map.find_opt neighbor t.adj_out) (Prefix.Map.find_opt prefix)

let prefixes t =
  let set = ref Prefix.Set.empty in
  Asn.Map.iter
    (fun _ per_prefix ->
      Prefix.Map.iter (fun p _ -> set := Prefix.Set.add p !set) per_prefix)
    t.adj_in;
  Prefix.Map.iter (fun p _ -> set := Prefix.Set.add p !set) t.loc;
  Prefix.Set.elements !set

let in_neighbors t prefix =
  Asn.Map.fold
    (fun n per_prefix acc ->
      if Prefix.Map.mem prefix per_prefix then n :: acc else acc)
    t.adj_in []
  |> List.rev

(* Canonical description of everything this RIB holds for one prefix,
   across all three tables.  Map iteration is ASN-sorted and
   [Intern.encode] is representation-independent, so the string is a pure
   function of RIB contents — [""] when the prefix is absent everywhere.
   This is the unit the delta RIB tracker ({!Rib_delta}) digests. *)
let prefix_entry t prefix =
  let buf = Buffer.create 128 in
  (match Prefix.Map.find_opt prefix t.loc with
  | Some r ->
      Buffer.add_string buf "b|";
      Buffer.add_string buf (Intern.encode r);
      Buffer.add_char buf '\n'
  | None -> ());
  let add_table tag table =
    Asn.Map.iter
      (fun n per_prefix ->
        match Prefix.Map.find_opt prefix per_prefix with
        | Some r ->
            Buffer.add_string buf tag;
            Buffer.add_char buf '|';
            Buffer.add_string buf (Asn.to_string n);
            Buffer.add_char buf '|';
            Buffer.add_string buf (Intern.encode r);
            Buffer.add_char buf '\n'
        | None -> ())
      table
  in
  add_table "i" t.adj_in;
  add_table "o" t.adj_out;
  Buffer.contents buf

let digest t =
  (* Canonical fingerprint of all three tables.  Map folds visit keys in
     sorted order and [Intern.encode] is byte-identical to [Route.encode]
     in both interning modes, so the digest is a pure function of RIB
     contents — the differential-oracle suite compares it across
     representations. *)
  let buf = Buffer.create 1024 in
  let add_route tag r =
    Buffer.add_string buf tag;
    Buffer.add_string buf (Intern.encode r);
    Buffer.add_char buf '\n'
  in
  let add_table tag table =
    Asn.Map.iter
      (fun n per_prefix ->
        Prefix.Map.iter
          (fun p r ->
            add_route
              (Printf.sprintf "%s|%s|%s|" tag (Asn.to_string n)
                 (Prefix.to_string p))
              r)
          per_prefix)
      table
  in
  add_table "in" t.adj_in;
  Prefix.Map.iter
    (fun p r -> add_route (Printf.sprintf "loc|%s|" (Prefix.to_string p)) r)
    t.loc;
  add_table "out" t.adj_out;
  Pvr_crypto.Sha256.digest_hex (Buffer.contents buf)
