(** Event-driven path-vector (BGP-like) simulation.

    Each AS holds a {!Rib.t}, an import policy per neighbor, and an export
    policy per neighbor; on top of any custom policy the Gao–Rexford export
    rule is enforced when the topology declares relationships.  Messages are
    processed from a FIFO queue until convergence, which is guaranteed for
    sensible policies because paths with loops are dropped on import.

    The simulator supplies the *inputs* to PVR: Adj-RIB-In contents are what
    network A receives from N1..Nk; the exported best routes are what B
    observes.  A hook lets an experiment replace one AS's decision logic
    with a Byzantine variant. *)

type t

type update = { src : Asn.t; dst : Asn.t; prefix : Prefix.t; route : Route.t option }
(** [route = None] is a withdrawal. *)

val create : Topology.t -> t

val set_import_policy : t -> asn:Asn.t -> neighbor:Asn.t -> Policy.t -> unit
val set_export_policy : t -> asn:Asn.t -> neighbor:Asn.t -> Policy.t -> unit

val set_decision_override :
  t -> asn:Asn.t -> (Prefix.t -> Route.t list -> Route.t option) -> unit
(** Replace the standard decision process at one AS (used to inject
    misbehaviour: the Byzantine A of §3). *)

val set_gao_rexford : t -> bool -> unit
(** Enforce the relationship-based export rule (default [true] when the
    topology has relationship annotations; harmless for Peer-only graphs). *)

val originate : t -> asn:Asn.t -> Prefix.t -> unit
(** Inject a locally-originated prefix and enqueue the announcements. *)

val withdraw_origin : t -> asn:Asn.t -> Prefix.t -> unit

val run : ?max_messages:int -> t -> int
(** Process queued messages to convergence; returns the number of messages
    processed.  @raise Failure if [max_messages] (default 1_000_000) is
    exceeded, which indicates a policy dispute (e.g. BAD GADGET). *)

val rib : t -> Asn.t -> Rib.t
(** The RIB of an AS (live reference). *)

val best_route : t -> asn:Asn.t -> Prefix.t -> Route.t option

val received_routes : t -> asn:Asn.t -> Prefix.t -> Route.t list
(** Adj-RIB-In candidates at an AS (PVR's input variables r_1..r_k). *)

val exported_route : t -> asn:Asn.t -> neighbor:Asn.t -> Prefix.t -> Route.t option
(** What [asn] last sent [neighbor] (PVR's output variable r_o). *)

val message_log : t -> update list
(** All processed updates, oldest first (workload for E5 batching).
    Empty when logging is disabled. *)

val set_log_enabled : t -> bool -> unit
(** Keep (default) or drop the full message log.  The continuous engine
    disables it: at 100k-AS scale the log is an unbounded heap leak and
    nothing in the epoch loop reads it.  Disabling clears any log already
    accumulated. *)

val drain_dirty : t -> (Asn.t * Prefix.t) list
(** The (AS, prefix) pairs whose RIB state may have changed since the
    last drain, sorted by (ASN, prefix) and deduplicated; clears the set.
    Every RIB mutation passes through the decision/export step, which
    marks here — this feeds the engine's delta RIB tracker so the global
    RIB digest is maintained in O(dirty pairs) per epoch. *)
