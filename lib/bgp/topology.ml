type link = { a : Asn.t; b : Asn.t; rel_ab : Relationship.t }

type t = {
  nodes : Asn.Set.t;
  (* adjacency: for each AS, each neighbor with what the neighbor is to it *)
  adj : Relationship.t Asn.Map.t Asn.Map.t;
}

let empty = { nodes = Asn.Set.empty; adj = Asn.Map.empty }

let add_as t asn = { t with nodes = Asn.Set.add asn t.nodes }

let adj_find t x =
  Option.value (Asn.Map.find_opt x t.adj) ~default:Asn.Map.empty

let add_link t ~a ~b ~rel_ab =
  if Asn.equal a b then invalid_arg "Topology.add_link: self-link";
  if Asn.Map.mem b (adj_find t a) then
    invalid_arg "Topology.add_link: duplicate link";
  let adj =
    t.adj
    |> Asn.Map.add a (Asn.Map.add b rel_ab (adj_find t a))
    |> fun adj ->
    let from_b =
      Option.value (Asn.Map.find_opt b adj) ~default:Asn.Map.empty
    in
    Asn.Map.add b (Asn.Map.add a (Relationship.invert rel_ab) from_b) adj
  in
  { nodes = Asn.Set.add a (Asn.Set.add b t.nodes); adj }

let ases t = Asn.Set.elements t.nodes

let links t =
  Asn.Map.fold
    (fun a per_n acc ->
      Asn.Map.fold
        (fun b rel acc ->
          if Asn.compare a b < 0 then { a; b; rel_ab = rel } :: acc else acc)
        per_n acc)
    t.adj []
  |> List.rev

let neighbors t x = Asn.Map.bindings (adj_find t x)

let relationship t x y = Asn.Map.find_opt y (adj_find t x)

let size t = Asn.Set.cardinal t.nodes

let degree t x = Asn.Map.cardinal (adj_find t x)

let star ~center ~leaves ~rel =
  List.fold_left
    (fun t leaf -> add_link t ~a:center ~b:leaf ~rel_ab:rel)
    (add_as empty center) leaves

let chain ases =
  let rec go t = function
    | a :: (b :: _ as rest) ->
        go (add_link t ~a ~b ~rel_ab:Relationship.Customer) rest
    | [ a ] -> add_as t a
    | [] -> t
  in
  go empty ases

let clique ases =
  let rec go t = function
    | [] -> t
    | a :: rest ->
        let t =
          List.fold_left
            (fun t b -> add_link t ~a ~b ~rel_ab:Relationship.Peer)
            (add_as t a) rest
        in
        go t rest
  in
  go empty ases

let hierarchy rng ~tiers ~extra_peering =
  let next = ref 0 in
  let fresh () =
    incr next;
    Asn.of_int !next
  in
  let tier_nodes = List.map (fun n -> Array.init n (fun _ -> fresh ())) tiers in
  let t = ref empty in
  List.iter (fun nodes -> Array.iter (fun a -> t := add_as !t a) nodes) tier_nodes;
  (* Tier-1 clique of peers. *)
  (match tier_nodes with
  | top :: _ ->
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if j > i then t := add_link !t ~a ~b ~rel_ab:Relationship.Peer)
            top)
        top
  | [] -> ());
  (* Each lower-tier AS picks 1-2 providers in the tier above. *)
  let rec wire = function
    | upper :: (lower :: _ as rest) ->
        Array.iter
          (fun a ->
            let nproviders = 1 + Pvr_crypto.Drbg.uniform_int rng 2 in
            let chosen = ref Asn.Set.empty in
            for _ = 1 to nproviders do
              let p = Pvr_crypto.Drbg.pick rng upper in
              if not (Asn.Set.mem p !chosen) then begin
                chosen := Asn.Set.add p !chosen;
                (* p is a's provider *)
                t := add_link !t ~a ~b:p ~rel_ab:Relationship.Provider
              end
            done)
          lower;
        wire rest
    | _ -> ()
  in
  wire tier_nodes;
  (* Optional same-tier peering below tier 1. *)
  (match tier_nodes with
  | _ :: lower_tiers ->
      List.iter
        (fun nodes ->
          Array.iteri
            (fun i a ->
              Array.iteri
                (fun j b ->
                  if
                    j > i
                    && Pvr_crypto.Drbg.uniform_int rng 1000
                       < int_of_float (extra_peering *. 1000.)
                    && relationship !t a b = None
                  then t := add_link !t ~a ~b ~rel_ab:Relationship.Peer)
                nodes)
            nodes)
        lower_tiers
  | [] -> ());
  !t

(* Seeded power-law internet generator (preferential attachment).

   ASNs are assigned 1..n.  ASes 1..tier1 form a transit-free peering
   clique; every later AS attaches as a customer of 1-2 earlier ASes chosen
   with probability proportional to their current provider-link degree (the
   Barabasi-Albert endpoint-list trick), which yields the heavy-tailed
   degree distribution of the measured internet.  Because every provider
   has a smaller ASN than its customer, the customer->provider digraph is
   acyclic and the graph is connected by construction — the two halves of
   Gao-Rexford consistency that a generator can get wrong.  Optional
   degree-biased peer links (IXP-style, more likely at hubs) never affect
   either property. *)
let generate rng ?(tier1 = 0) ?(extra_peering = 0.05) ~ases () =
  if ases < 1 then invalid_arg "Topology.generate: ases < 1";
  let n = ases in
  let tier1 =
    if tier1 > 0 then min tier1 n else min n (max 3 (min 16 (n / 100)))
  in
  let t = ref empty in
  for i = 1 to n do
    t := add_as !t (Asn.of_int i)
  done;
  (* Endpoint list: AS k appears once at birth and once per provider-link
     endpoint, so a uniform pick over the filled prefix is a pick
     proportional to attachment degree. *)
  let ends = Array.make ((5 * n) + (tier1 * tier1) + 16) 0 in
  let len = ref 0 in
  let push k =
    ends.(!len) <- k;
    incr len
  in
  for i = 1 to tier1 do
    push i;
    for j = i + 1 to tier1 do
      t := add_link !t ~a:(Asn.of_int i) ~b:(Asn.of_int j)
             ~rel_ab:Relationship.Peer;
      push i;
      push j
    done
  done;
  for i = tier1 + 1 to n do
    let nproviders = min (i - 1) (1 + Pvr_crypto.Drbg.uniform_int rng 2) in
    let chosen = ref Asn.Set.empty in
    let picked = ref 0 in
    let attempts = ref 0 in
    while !picked < nproviders && !attempts < 64 do
      incr attempts;
      let p = ends.(Pvr_crypto.Drbg.uniform_int rng !len) in
      if p < i && not (Asn.Set.mem (Asn.of_int p) !chosen) then begin
        chosen := Asn.Set.add (Asn.of_int p) !chosen;
        incr picked;
        t :=
          add_link !t ~a:(Asn.of_int i) ~b:(Asn.of_int p)
            ~rel_ab:Relationship.Provider;
        push p;
        push i
      end
    done;
    (* The endpoint list can in principle starve a pick (everything drawn
       is already chosen); fall back to the lowest unchosen ASN so every AS
       has at least one provider and the graph stays connected. *)
    if !picked = 0 then begin
      let p = 1 in
      t :=
        add_link !t ~a:(Asn.of_int i) ~b:(Asn.of_int p)
          ~rel_ab:Relationship.Provider;
      push p;
      push i
    end;
    push i
  done;
  (* Degree-biased lateral peering below the clique. *)
  if extra_peering > 0.0 then begin
    let threshold = int_of_float (extra_peering *. 1000.) in
    for i = tier1 + 1 to n do
      if Pvr_crypto.Drbg.uniform_int rng 1000 < threshold then begin
        let j = ends.(Pvr_crypto.Drbg.uniform_int rng !len) in
        if
          j <> i
          && relationship !t (Asn.of_int i) (Asn.of_int j) = None
        then
          t :=
            add_link !t ~a:(Asn.of_int i) ~b:(Asn.of_int j)
              ~rel_ab:Relationship.Peer
      end
    done
  end;
  !t

let providers t x =
  Asn.Map.fold
    (fun n rel acc -> if rel = Relationship.Provider then n :: acc else acc)
    (adj_find t x) []

let tiers t =
  (* tier 0 = provider-free; otherwise 1 + min provider tier.  Memoized
     DFS; an in-progress provider (a customer-provider cycle, impossible
     for generated topologies but expressible via [add_link]) is skipped so
     the walk terminates on any input. *)
  let memo = ref Asn.Map.empty in
  let rec tier_of visiting x =
    match Asn.Map.find_opt x !memo with
    | Some v -> Some v
    | None ->
        if Asn.Set.mem x visiting then None
        else
          let visiting = Asn.Set.add x visiting in
          let v =
            match
              List.filter_map (tier_of visiting) (providers t x)
            with
            | [] -> 0
            | ps -> 1 + List.fold_left min max_int ps
          in
          memo := Asn.Map.add x v !memo;
          Some v
  in
  Asn.Set.iter (fun x -> ignore (tier_of Asn.Set.empty x)) t.nodes;
  !memo

let tier t x = Asn.Map.find_opt x (tiers t)

let tiered_prefixes t =
  (* Deterministic tier-sized address plan, disjoint from the churn slots
     in 10.0.0.0/8: tier-1 ASes get a /8 each (octets 16..79), tier-2 a
     /16 (octets 80..95), everything deeper a /24 (octets 96..255).
     Within a class, blocks are assigned in ASN order. *)
  let tiers = tiers t in
  let next = [| 0; 0; 0 |] in
  let take c =
    let k = next.(c) in
    next.(c) <- k + 1;
    k
  in
  List.map
    (fun asn ->
      let cls = min 2 (Option.value (Asn.Map.find_opt asn tiers) ~default:2) in
      let k = take cls in
      let prefix =
        match cls with
        | 0 ->
            if k >= 64 then invalid_arg "Topology.tiered_prefixes: > 64 tier-1s";
            Prefix.make ~addr:((16 + k) lsl 24) ~len:8
        | 1 ->
            if k >= 16 * 256 then
              invalid_arg "Topology.tiered_prefixes: tier-2 space exhausted";
            Prefix.make
              ~addr:(((80 + (k lsr 8)) lsl 24) lor ((k land 0xff) lsl 16))
              ~len:16
        | _ ->
            if k >= 160 * 65536 then
              invalid_arg "Topology.tiered_prefixes: stub space exhausted";
            Prefix.make
              ~addr:(((96 + (k lsr 16)) lsl 24) lor ((k land 0xffff) lsl 8))
              ~len:24
      in
      (asn, prefix))
    (ases t)

let pp ppf t =
  Format.fprintf ppf "@[<v>%d ASes, %d links@," (size t) (List.length (links t));
  List.iter
    (fun { a; b; rel_ab } ->
      Format.fprintf ppf "%a -[%a]- %a@," Asn.pp a Relationship.pp rel_ab Asn.pp b)
    (links t);
  Format.fprintf ppf "@]"
