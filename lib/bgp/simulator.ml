type update = {
  src : Asn.t;
  dst : Asn.t;
  prefix : Prefix.t;
  route : Route.t option;
}

type node = {
  asn : Asn.t;
  rib : Rib.t;
  mutable import : Policy.t Asn.Map.t;
  mutable export : Policy.t Asn.Map.t;
  mutable decide : (Prefix.t -> Route.t list -> Route.t option) option;
  mutable origins : Prefix.Set.t;
}

type t = {
  topo : Topology.t;
  nodes : node Asn.Map.t;
  queue : update Queue.t;
  mutable gao_rexford : bool;
  mutable log : update list; (* newest first *)
  mutable log_enabled : bool;
  dirty : (Asn.t * Prefix.t, unit) Hashtbl.t;
      (* (AS, prefix) pairs whose RIB state may have changed since the
         last [drain_dirty] — every mutation funnels through [reselect],
         which marks here. *)
}

let obs_updates = Pvr_obs.counter "sim.updates.processed"
let obs_runs = Pvr_obs.counter "sim.runs"
let obs_originates = Pvr_obs.counter "sim.originates"
let obs_withdrawals = Pvr_obs.counter "sim.withdrawals"

let create topo =
  let nodes =
    List.fold_left
      (fun acc asn ->
        Asn.Map.add asn
          {
            asn;
            rib = Rib.create ();
            import = Asn.Map.empty;
            export = Asn.Map.empty;
            decide = None;
            origins = Prefix.Set.empty;
          }
          acc)
      Asn.Map.empty (Topology.ases topo)
  in
  {
    topo;
    nodes;
    queue = Queue.create ();
    gao_rexford = true;
    log = [];
    log_enabled = true;
    dirty = Hashtbl.create 256;
  }

let node t asn =
  match Asn.Map.find_opt asn t.nodes with
  | Some n -> n
  | None -> invalid_arg ("Simulator: unknown " ^ Asn.to_string asn)

let set_import_policy t ~asn ~neighbor policy =
  let n = node t asn in
  n.import <- Asn.Map.add neighbor policy n.import

let set_export_policy t ~asn ~neighbor policy =
  let n = node t asn in
  n.export <- Asn.Map.add neighbor policy n.export

let set_decision_override t ~asn f = (node t asn).decide <- Some f

let set_gao_rexford t b = t.gao_rexford <- b

let import_policy n neighbor =
  Option.value (Asn.Map.find_opt neighbor n.import) ~default:Policy.accept_all

let export_policy n neighbor =
  Option.value (Asn.Map.find_opt neighbor n.export) ~default:Policy.accept_all

(* Decide + export to every neighbor; enqueue updates where Adj-RIB-Out
   changes. *)
let reselect t n prefix =
  Hashtbl.replace t.dirty (n.asn, prefix) ();
  let candidates = Rib.candidates n.rib prefix in
  let candidates =
    if Prefix.Set.mem prefix n.origins then
      Route.originate ~asn:n.asn prefix :: candidates
    else candidates
  in
  let best =
    match n.decide with
    | Some f -> f prefix candidates
    | None -> Decision.best candidates
  in
  Rib.set_best n.rib prefix best;
  List.iter
    (fun (neighbor, rel_of_neighbor) ->
      let proposed =
        match best with
        | None -> None
        | Some r ->
            (* Never announce back to the AS the route came through. *)
            if Route.through neighbor r then None
            else begin
              let allowed =
                (not t.gao_rexford)
                || Prefix.Set.mem prefix n.origins
                ||
                match Topology.relationship t.topo n.asn r.Route.next_hop with
                | Some learned_from ->
                    Relationship.export_allowed ~learned_from
                      ~to_:rel_of_neighbor
                | None -> true
              in
              if not allowed then None
              else
                match Policy.evaluate (export_policy n neighbor) r with
                | None -> None
                | Some r ->
                    (* A self-originated route already carries [n.asn] as its
                       whole path; only learned routes get prepended. *)
                    let announced =
                      if Asn.equal r.Route.next_hop n.asn then r
                      else Route.prepend n.asn r
                    in
                    Some (Route.strip_private_attrs announced)
            end
      in
      let current = Rib.get_out n.rib ~neighbor prefix in
      let changed =
        match (current, proposed) with
        | None, None -> false
        | Some a, Some b -> not (Route.equal a b)
        | _ -> true
      in
      if changed then begin
        Rib.set_out n.rib ~neighbor prefix proposed;
        Queue.add
          { src = n.asn; dst = neighbor; prefix; route = proposed }
          t.queue
      end)
    (Topology.neighbors t.topo n.asn)

let originate t ~asn prefix =
  Pvr_obs.incr obs_originates;
  let n = node t asn in
  n.origins <- Prefix.Set.add prefix n.origins;
  reselect t n prefix

let withdraw_origin t ~asn prefix =
  Pvr_obs.incr obs_withdrawals;
  let n = node t asn in
  n.origins <- Prefix.Set.remove prefix n.origins;
  reselect t n prefix

let deliver t (u : update) =
  let n = node t u.dst in
  let imported =
    match u.route with
    | None -> None
    | Some r ->
        if Route.has_loop n.asn r then None
        else Policy.evaluate (import_policy n u.src) r
  in
  Rib.set_in n.rib ~neighbor:u.src u.prefix imported;
  reselect t n u.prefix

let run ?(max_messages = 1_000_000) t =
  Pvr_obs.incr obs_runs;
  Pvr_obs.with_span "sim.run" (fun () ->
      let processed = ref 0 in
      while not (Queue.is_empty t.queue) do
        if !processed >= max_messages then
          failwith "Simulator.run: no convergence (policy dispute?)";
        let u = Queue.pop t.queue in
        if t.log_enabled then t.log <- u :: t.log;
        incr processed;
        deliver t u
      done;
      Pvr_obs.add obs_updates !processed;
      !processed)

let rib t asn = (node t asn).rib

let best_route t ~asn prefix = Rib.get_best (node t asn).rib prefix

let received_routes t ~asn prefix = Rib.candidates (node t asn).rib prefix

let exported_route t ~asn ~neighbor prefix =
  Rib.get_out (node t asn).rib ~neighbor prefix

let message_log t = List.rev t.log

let set_log_enabled t b =
  t.log_enabled <- b;
  if not b then t.log <- []

let drain_dirty t =
  let pairs = Hashtbl.fold (fun k () acc -> k :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  List.sort
    (fun (a1, p1) (a2, p2) ->
      match Asn.compare a1 a2 with 0 -> Prefix.compare p1 p2 | c -> c)
    pairs
