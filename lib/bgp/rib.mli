(** Routing information bases for one AS: Adj-RIB-In (per neighbor,
    post-import-policy), Loc-RIB (best routes), Adj-RIB-Out (per neighbor,
    post-export-policy). *)

type t

val create : unit -> t

val set_in : t -> neighbor:Asn.t -> Prefix.t -> Route.t option -> unit
(** Record the latest route from a neighbor for a prefix ([None] =
    withdrawn). *)

val get_in : t -> neighbor:Asn.t -> Prefix.t -> Route.t option

val candidates : t -> Prefix.t -> Route.t list
(** All Adj-RIB-In routes for the prefix (one per neighbor at most). *)

val candidates_from : t -> neighbors:Asn.t list -> Prefix.t -> Route.t list
(** Candidates restricted to a neighbor subset (promise #2 in §2). *)

val set_best : t -> Prefix.t -> Route.t option -> unit
val get_best : t -> Prefix.t -> Route.t option

val set_out : t -> neighbor:Asn.t -> Prefix.t -> Route.t option -> unit
val get_out : t -> neighbor:Asn.t -> Prefix.t -> Route.t option

val prefixes : t -> Prefix.t list
(** Every prefix with any Adj-RIB-In or Loc-RIB state, no duplicates. *)

val in_neighbors : t -> Prefix.t -> Asn.t list
(** Neighbors currently contributing a route for the prefix. *)

val prefix_entry : t -> Prefix.t -> string
(** Canonical description of everything this RIB holds for [prefix]
    across all three tables (best route, per-neighbor Adj-RIB-In and
    Adj-RIB-Out, neighbors sorted), or [""] when the prefix is absent
    everywhere.  Representation-independent, like {!digest} — this is
    the unit {!Rib_delta} digests per (AS, prefix) pair. *)

val digest : t -> string
(** Canonical SHA-256 hex fingerprint of all three tables (sorted by
    neighbor and prefix).  A pure function of RIB contents: byte-identical
    whether or not routes are interned. *)
