(** Hash-consed interning of AS paths and routes.

    Internet-scale workloads move the same few thousand distinct routes
    through millions of RIB writes, equality checks and digest encodings
    per epoch.  With interning enabled, every structurally-equal path and
    route maps to a single canonical representative carrying a compact
    dense integer id; {!Route.equal}'s physical fast path then settles
    comparisons in one pointer check, storage is shared, and the injective
    {!Route.encode} bytes are memoized per canonical route — the dominant
    allocation on the engine's per-epoch snapshot-digest path.

    The interner is {e semantically invisible}: canonical routes are
    structurally equal to their inputs, so every decision, RIB digest and
    engine report digest is byte-identical with interning on or off (the
    differential-oracle test suite enforces exactly this).

    Lookups run against {e per-domain arenas} (domain-local storage), so
    hits are lock-free; misses create provisional canonicals logged for
    {!flush}, the canonicalizing merge into the mutex-guarded global
    tables that the engine's pool workers run before every epoch barrier.
    Every function may be called from any domain.  The toggle is global
    and {e off by default}; while disabled every function is the identity
    and {!encode} is plain [Route.encode]. *)

val set_enabled : bool -> unit
(** Turn interning on or off (default: off).  Turning it {e off} also
    clears the tables, so flipping modes never leaks one mode's canonical
    storage into the other's measurements. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop every interned path, route and memoized encoding (the toggle is
    left as is). *)

val path : Asn.t list -> Asn.t list
(** Canonical representative of the path.  Identity while disabled. *)

val route : Route.t -> Route.t
(** Canonical representative of the route; its [as_path] is itself
    interned.  Identity while disabled. *)

val flush : unit -> unit
(** Merge the calling domain's arena log into the global canonical
    tables, assigning dense ids first-merged-wins; when another domain
    merged an equal value first the arena is re-pointed at the winning
    canonical so future hits share storage.  Pool workers call this on
    their own domain before signalling the epoch barrier; the read APIs
    below call it implicitly.  Cheap no-op when nothing is pending. *)

val path_id : Asn.t list -> int option
(** Dense id (assigned in merge order from 0) of an already-interned
    path; [None] if never interned or while disabled.  Flushes the
    calling domain's arena first, so ids interned on this domain are
    always visible. *)

val route_id : Route.t -> int option
(** Dense id of an already-interned route; [None] if never interned or
    while disabled.  Flushes the calling domain's arena first. *)

val encode : Route.t -> string
(** [Route.encode r], memoized per canonical route while interning is
    enabled — byte-identical to [Route.encode] in both modes. *)

type stats = { live_paths : int; live_routes : int; memoized_encodes : int }

val stats : unit -> stats
(** Current table sizes (also published as gauges [intern.paths.live] and
    [intern.routes.live] when {!Pvr_obs} is enabled). *)
