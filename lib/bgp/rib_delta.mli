(** Delta-compressed, digest-level tracker of the world's RIB state.

    The engine's global RIB digest used to be an O(world) walk over every
    AS's three tables each time it was needed.  This tracker keeps one
    SHA-256 entry digest per (AS, prefix) pair — fed from the simulator's
    dirty-pair set via {!Rib.prefix_entry} — and a per-AS digest cache,
    so refreshing the global digest costs O(dirty pairs + dirty ASes).

    Serialization is two-level, mirroring the store's snapshot/journal
    split: {!encode_full} captures the complete pair→digest map (snapshot
    cadence), {!encode_delta} only the pairs changed since the last
    emission.  Replaying a full blob plus subsequent deltas must
    reproduce the live tracker's {!digest} byte-for-byte — the test
    suite's differential oracle pins this against a from-scratch rebuild
    of the resident representation. *)

type t

type change = {
  rd_asn : Asn.t;
  rd_prefix : Prefix.t;
  rd_digest : string;  (** raw 32-byte entry digest; [""] = pair removed *)
}

val create : unit -> t

val update : t -> asn:Asn.t -> prefix:Prefix.t -> entry:string -> bool
(** Install the canonical entry string ({!Rib.prefix_entry}) for a pair;
    [entry = ""] removes it.  Returns whether the stored digest actually
    changed; real changes are queued for {!drain_changes}. *)

val digest : t -> string
(** Global digest: SHA-256 over per-AS digests in ASN order, each per-AS
    digest covering its prefix→digest map in prefix order.  Pure function
    of tracker contents; stale per-AS caches are refreshed lazily. *)

val pairs : t -> int
(** Number of (AS, prefix) pairs currently tracked. *)

val drain_changes : t -> change list
(** Changes accumulated by {!update} since the last drain, oldest first.
    The engine emits these as a delta blob each journaled epoch. *)

val encode_full : t -> string
val decode_full : string -> (t, string) result
val encode_delta : change list -> string
val decode_delta : string -> (change list, string) result

val apply : t -> change list -> unit
(** Replay decoded delta changes onto a tracker (latest wins). *)
