(** AS-level topologies: the graph of ASes and inter-AS links annotated with
    business relationships, plus the synthetic generators used by the
    experiments (operational topologies being unavailable, per DESIGN.md). *)

type link = {
  a : Asn.t;
  b : Asn.t;
  rel_ab : Relationship.t;  (** what [b] is to [a], e.g. [Customer] = b pays a *)
}

type t

val empty : t
val add_as : t -> Asn.t -> t
val add_link : t -> a:Asn.t -> b:Asn.t -> rel_ab:Relationship.t -> t
(** Adds both endpoints if absent.  @raise Invalid_argument on self-links or
    duplicate links. *)

val ases : t -> Asn.t list
val links : t -> link list
val neighbors : t -> Asn.t -> (Asn.t * Relationship.t) list
(** Each neighbor with what *it* is to the queried AS. *)

val relationship : t -> Asn.t -> Asn.t -> Relationship.t option
(** [relationship t x y]: what [y] is to [x], if linked. *)

val size : t -> int
val degree : t -> Asn.t -> int

(** {2 Generators} *)

val star : center:Asn.t -> leaves:Asn.t list -> rel:Relationship.t -> t
(** Figure 1: one AS [A] connected to N1..Nk and B.  [rel] is what each leaf
    is to the center. *)

val chain : Asn.t list -> t
(** A provider chain: each AS is the provider of the next. *)

val clique : Asn.t list -> t
(** Full mesh of peers. *)

val hierarchy :
  Pvr_crypto.Drbg.t ->
  tiers:int list ->
  extra_peering:float ->
  t
(** Gao–Rexford-style hierarchy: [tiers] gives the number of ASes per tier,
    top first.  Tier-1 ASes form a peering clique; every lower-tier AS gets
    1–2 providers in the tier above; [extra_peering] is the probability of a
    peering link between same-tier ASes.  AS numbers are assigned 1..n from
    the top. *)

val generate :
  Pvr_crypto.Drbg.t ->
  ?tier1:int ->
  ?extra_peering:float ->
  ases:int ->
  unit ->
  t
(** Seeded power-law internet (preferential attachment).  ASNs 1..[ases]:
    the first [tier1] (default: scaled with size, 3..16) form a
    transit-free peering clique; each later AS attaches as a customer of
    1-2 earlier ASes picked with probability proportional to current
    degree, plus degree-biased lateral peer links with probability
    [extra_peering].  Every provider has a smaller ASN than its customer,
    so the customer/provider digraph is acyclic and the graph connected by
    construction — Gao-Rexford-consistent labels for any seed.
    Deterministic for a given DRBG state. *)

(** {2 Tiers and address plans} *)

val tiers : t -> int Asn.Map.t
(** Tier of every AS: 0 = provider-free, otherwise 1 + the minimum tier
    among its providers.  (Customer-provider cycles, impossible for
    generated topologies, are broken deterministically.) *)

val tier : t -> Asn.t -> int option

val tiered_prefixes : t -> (Asn.t * Prefix.t) list
(** Deterministic per-AS address plan in ASN order, sized by tier: tier-1
    ASes a /8, tier-2 a /16, deeper ASes a /24 — mutually disjoint and
    disjoint from the churn workload's 10.0.0.0/8 slots. *)

val pp : Format.formatter -> t -> unit
