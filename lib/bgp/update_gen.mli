(** Synthetic BGP update workloads.

    §3.8 worries about signing cost "during BGP message bursts"; operational
    update traces are not available in this environment, so experiment E5
    drives the batching bench with bursty synthetic traces: quiet periods of
    single updates interleaved with bursts (as after a session reset or a
    flap), with burst sizes drawn from a truncated geometric distribution. *)

type event = { at_ms : int; route : Route.t }

val bursty :
  Pvr_crypto.Drbg.t ->
  duration_ms:int ->
  base_rate_per_s:float ->
  burst_every_ms:int ->
  burst_size_mean:int ->
  origin:Asn.t ->
  event list
(** Events sorted by timestamp.  Routes are announcements of random prefixes
    with short random paths ending at [origin]. *)

val batches : window_ms:int -> event list -> Route.t list list
(** Group a trace into signing batches by fixed time window; empty windows
    are dropped. *)

(** Epoch-granularity churn for the verification engine: a fixed universe of
    (origin, prefix) slots, each live or withdrawn, stepped by flipping a
    DRBG-chosen fraction per epoch.  Unlike {!bursty} (timestamped message
    bursts for the signing bench), churn models the steady state §3.8 argues
    about — most routes survive an epoch unchanged, so an incremental
    verifier should skip them. *)
module Churn : sig
  type t

  type change =
    | Announce of Asn.t * Prefix.t
    | Withdraw of Asn.t * Prefix.t

  val create :
    ?anycast:int -> origins:Asn.t list -> prefixes_per_origin:int -> unit -> t
  (** Slot universe; every slot starts withdrawn.  Slot prefixes are
      deterministic /24s inside 10.0.0.0/8 (distinct per slot), except for
      [anycast] extra prefixes each announced by {e two} origins (two slots,
      one prefix).  Flipping one anycast slot changes the route set of a
      prefix that stays reachable — the partial-churn case an incremental
      verifier's memo tables exist for.  Ignored with fewer than two
      origins. *)

  val size : t -> int
  val live_count : t -> int

  val seed : t -> Simulator.t -> change list
  (** Announce every withdrawn slot (epoch 1's full table load).  Applies
      the originations to the simulator; the caller runs it to
      convergence. *)

  val step :
    Pvr_crypto.Drbg.t -> turnover:float -> t -> Simulator.t -> change list
  (** Flip [turnover · size] distinct slots (live ⇄ withdrawn), chosen by
      the DRBG; applies the changes to the simulator.  [turnover 0.] is a
      quiet epoch, [1.] a full-table flap. *)

  val seed_count : t -> Simulator.t -> int
  val step_count :
    Pvr_crypto.Drbg.t -> turnover:float -> t -> Simulator.t -> int
  (** Streaming twins of {!seed}/{!step}: apply each change as it is
      produced and return only the count, never materializing the change
      list — at 100k-AS scale the list is pure heap pressure.  Both
      consume exactly the same DRBG draws as their list-building twins,
      so a seeded run is epoch-identical whichever variant drives it. *)
end
