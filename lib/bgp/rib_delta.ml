module C = Pvr_crypto
module Codec = Pvr_store.Codec

(* Digest-level tracker of the whole world's RIB state, keyed by
   (AS, prefix).  The resident representation is one 32-byte entry digest
   per pair — never the entries themselves — so the tracker stays a small
   constant factor of the simulator's own tables while letting the engine
   maintain the global RIB digest in O(dirty pairs) per epoch instead of
   re-walking every RIB.

   Serialization is two-level, mirroring the store's snapshot/journal
   split: [encode_full] is the complete pair→digest map (written on the
   snapshot cadence), [encode_delta] is just the pairs that changed since
   the last emission.  A decoder replaying full + deltas must land on the
   same {!digest} as the live tracker — the differential oracle in the
   test suite pins exactly that. *)

type change = { rd_asn : Asn.t; rd_prefix : Prefix.t; rd_digest : string }

type t = {
  mutable per_as : string Prefix.Map.t Asn.Map.t;
  as_cache : (Asn.t, string) Hashtbl.t;
  mutable stale : Asn.Set.t;
  mutable pending : change list;
}

let create () =
  {
    per_as = Asn.Map.empty;
    as_cache = Hashtbl.create 64;
    stale = Asn.Set.empty;
    pending = [];
  }

let pairs t =
  Asn.Map.fold (fun _ m acc -> acc + Prefix.Map.cardinal m) t.per_as 0

(* Install a pair digest ([""] = pair gone) without logging a change —
   the shared core of [update] (which logs) and [apply] (which replays). *)
let set_digest t ~asn ~prefix digest =
  let m =
    Option.value (Asn.Map.find_opt asn t.per_as) ~default:Prefix.Map.empty
  in
  let m =
    if digest = "" then Prefix.Map.remove prefix m
    else Prefix.Map.add prefix digest m
  in
  if Prefix.Map.is_empty m then begin
    t.per_as <- Asn.Map.remove asn t.per_as;
    Hashtbl.remove t.as_cache asn
  end
  else t.per_as <- Asn.Map.add asn m t.per_as;
  t.stale <- Asn.Set.add asn t.stale

let update t ~asn ~prefix ~entry =
  let digest = if entry = "" then "" else C.Sha256.digest entry in
  let prev =
    match Asn.Map.find_opt asn t.per_as with
    | None -> ""
    | Some m -> Option.value (Prefix.Map.find_opt prefix m) ~default:""
  in
  if String.equal prev digest then false
  else begin
    set_digest t ~asn ~prefix digest;
    t.pending <- { rd_asn = asn; rd_prefix = prefix; rd_digest = digest } :: t.pending;
    true
  end

let drain_changes t =
  let cs = List.rev t.pending in
  t.pending <- [];
  cs

let as_digest t asn m =
  match
    if Asn.Set.mem asn t.stale then None else Hashtbl.find_opt t.as_cache asn
  with
  | Some d -> d
  | None ->
      let parts =
        Prefix.Map.fold
          (fun p dg acc -> dg :: ("p:" ^ Prefix.to_string p) :: acc)
          m []
      in
      let d = C.Sha256.digest_parts (List.rev parts) in
      Hashtbl.replace t.as_cache asn d;
      d

let digest t =
  let parts =
    Asn.Map.fold
      (fun asn m acc -> as_digest t asn m :: ("as:" ^ Asn.to_string asn) :: acc)
      t.per_as []
  in
  t.stale <- Asn.Set.empty;
  C.Sha256.digest_parts_hex (List.rev parts)

(* [Prefix.make] validates its range with [Invalid_argument]; decoders
   must turn that into a clean [Malformed] rejection instead. *)
let decode_prefix ~addr ~len =
  if len < 0 || len > 32 then raise (Codec.Malformed "prefix length out of range");
  Prefix.make ~addr ~len

let encode_full t =
  let buf = Buffer.create 4096 in
  Codec.u32 buf (Asn.Map.cardinal t.per_as);
  Asn.Map.iter
    (fun asn m ->
      Codec.u32 buf (Asn.to_int asn);
      Codec.u32 buf (Prefix.Map.cardinal m);
      Prefix.Map.iter
        (fun p dg ->
          Codec.u32 buf p.Prefix.addr;
          Codec.u32 buf p.Prefix.len;
          Codec.str buf dg)
        m)
    t.per_as;
  Buffer.contents buf

let decode_full payload =
  Codec.decode payload (fun r ->
      let t = create () in
      let n_as = Codec.get_u32 r in
      for _ = 1 to n_as do
        let asn = Asn.of_int (Codec.get_u32 r) in
        let n_p = Codec.get_u32 r in
        for _ = 1 to n_p do
          let addr = Codec.get_u32 r in
          let len = Codec.get_u32 r in
          let dg = Codec.get_str r in
          if dg = "" then raise (Codec.Malformed "empty pair digest");
          set_digest t ~asn ~prefix:(decode_prefix ~addr ~len) dg
        done
      done;
      t)

let encode_delta changes =
  let buf = Buffer.create 1024 in
  Codec.u32 buf (List.length changes);
  List.iter
    (fun c ->
      Codec.u32 buf (Asn.to_int c.rd_asn);
      Codec.u32 buf c.rd_prefix.Prefix.addr;
      Codec.u32 buf c.rd_prefix.Prefix.len;
      Codec.str buf c.rd_digest)
    changes;
  Buffer.contents buf

let decode_delta payload =
  Codec.decode payload (fun r ->
      let n = Codec.get_u32 r in
      List.init n (fun _ ->
          let asn = Asn.of_int (Codec.get_u32 r) in
          let addr = Codec.get_u32 r in
          let len = Codec.get_u32 r in
          let rd_digest = Codec.get_str r in
          { rd_asn = asn; rd_prefix = decode_prefix ~addr ~len; rd_digest }))

let apply t changes =
  List.iter (fun c -> set_digest t ~asn:c.rd_asn ~prefix:c.rd_prefix c.rd_digest) changes
