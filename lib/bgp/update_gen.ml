type event = { at_ms : int; route : Route.t }

let random_route rng ~origin =
  let prefix = Prefix.random rng in
  let hops = 1 + Pvr_crypto.Drbg.uniform_int rng 5 in
  let path =
    List.init hops (fun i ->
        if i = hops - 1 then origin
        else Asn.of_int (64512 + Pvr_crypto.Drbg.uniform_int rng 1000))
  in
  let base = Route.originate ~asn:origin prefix in
  let r = { base with Route.as_path = path } in
  match path with [] -> r | hd :: _ -> { r with Route.next_hop = hd }

(* Truncated geometric: mean ~ [mean], capped at 8x mean. *)
let geometric rng mean =
  if mean <= 1 then 1
  else begin
    let p = 1.0 /. float_of_int mean in
    let cap = 8 * mean in
    let rec go n =
      if n >= cap then cap
      else if Pvr_crypto.Drbg.uniform_int rng 1_000_000 < int_of_float (p *. 1_000_000.) then n
      else go (n + 1)
    in
    go 1
  end

let bursty rng ~duration_ms ~base_rate_per_s ~burst_every_ms ~burst_size_mean
    ~origin =
  let events = ref [] in
  (* Background traffic: Bernoulli per millisecond. *)
  let per_ms = base_rate_per_s /. 1000.0 in
  let threshold = int_of_float (per_ms *. 1_000_000.) in
  for ms = 0 to duration_ms - 1 do
    if Pvr_crypto.Drbg.uniform_int rng 1_000_000 < threshold then
      events := { at_ms = ms; route = random_route rng ~origin } :: !events;
    if burst_every_ms > 0 && ms mod burst_every_ms = 0 && ms > 0 then begin
      let n = geometric rng burst_size_mean in
      for _ = 1 to n do
        events := { at_ms = ms; route = random_route rng ~origin } :: !events
      done
    end
  done;
  List.stable_sort (fun a b -> Int.compare a.at_ms b.at_ms) (List.rev !events)

module Churn = struct
  type slot = { origin : Asn.t; prefix : Prefix.t; mutable live : bool }
  type t = { slots : slot array }

  type change =
    | Announce of Asn.t * Prefix.t
    | Withdraw of Asn.t * Prefix.t

  (* One deterministic prefix per (origin index, prefix index): a /24 inside
     10.0.0.0/8, so churn prefixes never collide with experiment-chosen
     prefixes like the quickstart's 8.8.8.0/24. *)
  let slot_prefix i j =
    Prefix.make ~addr:((10 lsl 24) lor ((i + 1) lsl 16) lor (j lsl 8)) ~len:24

  (* Anycast prefixes live in a sibling /16 range so they never collide
     with the per-origin slots. *)
  let anycast_prefix j =
    Prefix.make ~addr:((10 lsl 24) lor (255 lsl 16) lor (j lsl 8)) ~len:24

  let create ?(anycast = 0) ~origins ~prefixes_per_origin () =
    let per_origin =
      List.concat
        (List.mapi
           (fun i origin ->
             List.init prefixes_per_origin (fun j ->
                 { origin; prefix = slot_prefix i j; live = false }))
           origins)
    in
    let n_origins = List.length origins in
    let anycast_slots =
      if n_origins < 2 then []
      else
        List.concat
          (List.init anycast (fun j ->
               let prefix = anycast_prefix j in
               [
                 { origin = List.nth origins (j mod n_origins); prefix; live = false };
                 {
                   origin = List.nth origins ((j + 1) mod n_origins);
                   prefix;
                   live = false;
                 };
               ]))
    in
    { slots = Array.of_list (per_origin @ anycast_slots) }

  let size t = Array.length t.slots

  let live_count t =
    Array.fold_left (fun n s -> if s.live then n + 1 else n) 0 t.slots

  let apply sim = function
    | Announce (asn, prefix) -> Simulator.originate sim ~asn prefix
    | Withdraw (asn, prefix) -> Simulator.withdraw_origin sim ~asn prefix

  (* Streaming variant: apply each origination as the slot walk produces
     it and count, never building the change list.  At 100k-AS scale the
     materialized list is pure heap pressure the epoch loop immediately
     folds back down to a length. *)
  let seed_count t sim =
    let applied = ref 0 in
    Array.iter
      (fun s ->
        if not s.live then begin
          s.live <- true;
          apply sim (Announce (s.origin, s.prefix));
          incr applied
        end)
      t.slots;
    !applied

  let seed t sim =
    Array.to_list t.slots
    |> List.filter_map (fun s ->
           if s.live then None
           else begin
             s.live <- true;
             let c = Announce (s.origin, s.prefix) in
             apply sim c;
             Some c
           end)

  (* The partial Fisher-Yates shuffle picking the flipped slots, shared by
     both step variants so their DRBG draw sequences are identical — a
     seeded run produces the same epochs whichever variant the caller
     uses. *)
  let pick_flips rng ~turnover t =
    let n = Array.length t.slots in
    let flips = int_of_float (Float.of_int n *. turnover +. 0.5) in
    let flips = max 0 (min n flips) in
    (* Sample [flips] distinct slots with a partial Fisher-Yates shuffle over
       the index array, so the set of flipped slots is a pure function of the
       DRBG stream. *)
    let idx = Array.init n Fun.id in
    for k = 0 to flips - 1 do
      let r = k + Pvr_crypto.Drbg.uniform_int rng (n - k) in
      let tmp = idx.(k) in
      idx.(k) <- idx.(r);
      idx.(r) <- tmp
    done;
    (idx, flips)

  let flip_slot s =
    s.live <- not s.live;
    if s.live then Announce (s.origin, s.prefix)
    else Withdraw (s.origin, s.prefix)

  let step_count rng ~turnover t sim =
    let idx, flips = pick_flips rng ~turnover t in
    for k = 0 to flips - 1 do
      apply sim (flip_slot t.slots.(idx.(k)))
    done;
    flips

  let step rng ~turnover t sim =
    let idx, flips = pick_flips rng ~turnover t in
    List.init flips (fun k ->
        let c = flip_slot t.slots.(idx.(k)) in
        apply sim c;
        c)
end

let batches ~window_ms events =
  let table = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let w = e.at_ms / window_ms in
      let cur = Option.value (Hashtbl.find_opt table w) ~default:[] in
      Hashtbl.replace table w (e.route :: cur))
    events;
  Hashtbl.fold (fun w routes acc -> (w, List.rev routes) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd
