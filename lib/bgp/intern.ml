(* Hash-consing for AS paths and routes.

   At internet scale the simulator and engine shuffle the same few thousand
   distinct routes through millions of RIB writes, equality checks and
   digest encodings per epoch.  Interning maps every structurally-equal
   path/route to one canonical representative with a compact integer id, so
   [==] (the fast path inside {!Route.equal}) settles almost every
   comparison, storage is shared, and the injective {!Route.encode} bytes —
   recomputed for every vertex snapshot every epoch otherwise — are
   memoized per canonical route.

   Concurrency: every lookup runs against a {e per-domain arena} held in
   domain-local storage, so hits — the overwhelming majority at steady
   state — are lock-free.  A miss creates a provisional canonical in the
   arena and appends it to a local log; {!flush} (called by each pool
   worker on its own domain before the epoch barrier, and implicitly by
   the read APIs) merges the log into the mutex-guarded global tables,
   assigning dense ids first-merged-wins and re-pointing arena entries at
   the winning canonical when another domain interned the same value
   first.  The previous design took one global mutex on {e every} call,
   including hits, which serialized the engine's worker pool (E13).

   Cross-domain provisional duplicates are harmless: digests never depend
   on canonical ids or physical identity ({!Route.equal} falls back to
   structural comparison), so the merge only affects sharing, never
   semantics.

   The toggle is global and off by default: with interning disabled every
   function is the identity (or plain [Route.encode]), which is what the
   differential-oracle tests compare against.  Disabling (or {!reset})
   bumps a generation counter; other domains' arenas are unreachable from
   the resetter, so they self-invalidate lazily on their next use. *)

let enabled_flag = ref false
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ---- structural hashing (no allocation) ---------------------------------- *)

let fnv_prime = 0x100000001b3

(* FNV-1a offset basis truncated to OCaml's 63-bit int. *)
let fnv_basis = 0x3bf29ce484222325

let mix h x = (h lxor x) * fnv_prime land max_int

let hash_path p =
  List.fold_left (fun h a -> mix h (Asn.to_int a)) fnv_basis p land max_int

let rec equal_path p q =
  p == q
  ||
  match (p, q) with
  | [], [] -> true
  | a :: p', b :: q' -> Asn.equal a b && equal_path p' q'
  | _ -> false

let hash_route (r : Route.t) =
  let h = mix fnv_basis r.prefix.Prefix.addr in
  let h = mix h r.prefix.Prefix.len in
  let h = mix h (hash_path r.as_path) in
  let h = mix h (Asn.to_int r.next_hop) in
  let h = mix h r.local_pref in
  let h = mix h r.med in
  let h =
    mix h (match r.origin with Route.Igp -> 0 | Egp -> 1 | Incomplete -> 2)
  in
  List.fold_left (fun h (a, v) -> mix (mix h a) v) h r.communities land max_int

module Path_tbl = Hashtbl.Make (struct
  type t = Asn.t list

  let equal = equal_path
  let hash = hash_path
end)

module Route_tbl = Hashtbl.Make (struct
  type t = Route.t

  let equal = Route.equal
  let hash = hash_route
end)

(* ---- global canonical tables (mutex-guarded, merge target) ---------------- *)

(* Values carry the canonical representative plus its dense id (assigned in
   merge order, starting at 0). *)
let g_paths : (Asn.t list * int) Path_tbl.t = Path_tbl.create 4096
let g_routes : (Route.t * int) Route_tbl.t = Route_tbl.create 4096
let g_encodes : string Route_tbl.t = Route_tbl.create 4096

(* Bumped by [reset]; arenas compare their stamp on every use and clear
   themselves when stale. *)
let generation = Atomic.make 0

let c_path_hits = Pvr_obs.counter "intern.path.hits"
let c_path_misses = Pvr_obs.counter "intern.path.misses"
let c_route_hits = Pvr_obs.counter "intern.route.hits"
let c_route_misses = Pvr_obs.counter "intern.route.misses"
let c_encode_hits = Pvr_obs.counter "intern.encode.hits"
let c_encode_misses = Pvr_obs.counter "intern.encode.misses"
let c_merge_dups = Pvr_obs.counter "intern.merge.dups"
let g_paths_live = Pvr_obs.gauge "intern.paths.live"
let g_routes_live = Pvr_obs.gauge "intern.routes.live"

(* ---- per-domain arenas ---------------------------------------------------- *)

type arena = {
  mutable a_gen : int;
  a_paths : Asn.t list Path_tbl.t; (* structural key -> canonical *)
  a_routes : Route.t Route_tbl.t;
  a_encodes : string Route_tbl.t;
  (* Provisional canonicals created on this domain since the last flush,
     in creation order (kept reversed). *)
  mutable new_paths : Asn.t list list;
  mutable new_routes : Route.t list;
  mutable new_encodes : (Route.t * string) list;
}

let fresh_arena () =
  {
    a_gen = Atomic.get generation;
    a_paths = Path_tbl.create 1024;
    a_routes = Route_tbl.create 1024;
    a_encodes = Route_tbl.create 1024;
    new_paths = [];
    new_routes = [];
    new_encodes = [];
  }

let arena_key = Domain.DLS.new_key fresh_arena

let clear_arena a =
  Path_tbl.reset a.a_paths;
  Route_tbl.reset a.a_routes;
  Route_tbl.reset a.a_encodes;
  a.new_paths <- [];
  a.new_routes <- [];
  a.new_encodes <- []

let arena () =
  let a = Domain.DLS.get arena_key in
  let gen = Atomic.get generation in
  if a.a_gen <> gen then begin
    clear_arena a;
    a.a_gen <- gen
  end;
  a

(* ---- reset / toggle ------------------------------------------------------- *)

let reset () =
  with_lock @@ fun () ->
  Path_tbl.reset g_paths;
  Route_tbl.reset g_routes;
  Route_tbl.reset g_encodes;
  Atomic.incr generation;
  (* The caller's own arena is reachable — clear it eagerly so a
     same-domain re-population starts from ids dense at 0. *)
  let a = Domain.DLS.get arena_key in
  clear_arena a;
  a.a_gen <- Atomic.get generation;
  Pvr_obs.set_gauge g_paths_live 0;
  Pvr_obs.set_gauge g_routes_live 0

let set_enabled b =
  enabled_flag := b;
  (* Dropping the toggle releases the canonical storage: a disabled interner
     holds no routes, so tests and the CLI can flip modes without leaking
     one mode's table into the other's measurements. *)
  if not b then reset ()

let enabled () = !enabled_flag

(* ---- lock-free lookup paths ----------------------------------------------- *)

let path p =
  if not !enabled_flag then p
  else begin
    let a = arena () in
    match Path_tbl.find_opt a.a_paths p with
    | Some canonical ->
        Pvr_obs.incr c_path_hits;
        canonical
    | None ->
        Pvr_obs.incr c_path_misses;
        Path_tbl.add a.a_paths p p;
        a.new_paths <- p :: a.new_paths;
        p
  end

(* Arena-local route interning shared by [route] and [encode]: the
   canonical route's [as_path] is itself interned first. *)
let intern_route_local a (r : Route.t) =
  match Route_tbl.find_opt a.a_routes r with
  | Some canonical ->
      Pvr_obs.incr c_route_hits;
      canonical
  | None ->
      Pvr_obs.incr c_route_misses;
      let as_path =
        match Path_tbl.find_opt a.a_paths r.as_path with
        | Some canonical ->
            Pvr_obs.incr c_path_hits;
            canonical
        | None ->
            Pvr_obs.incr c_path_misses;
            Path_tbl.add a.a_paths r.as_path r.as_path;
            a.new_paths <- r.as_path :: a.new_paths;
            r.as_path
      in
      let canonical = if as_path == r.as_path then r else { r with as_path } in
      Route_tbl.add a.a_routes canonical canonical;
      a.new_routes <- canonical :: a.new_routes;
      canonical

let route r = if not !enabled_flag then r else intern_route_local (arena ()) r

let encode r =
  if not !enabled_flag then Route.encode r
  else begin
    let a = arena () in
    match Route_tbl.find_opt a.a_encodes r with
    | Some s ->
        Pvr_obs.incr c_encode_hits;
        s
    | None ->
        Pvr_obs.incr c_encode_misses;
        let s = Route.encode r in
        (* Key by the canonical representative so structurally-equal lookups
           from any copy of the route hit the same entry. *)
        let canonical = intern_route_local a r in
        Route_tbl.add a.a_encodes canonical s;
        a.new_encodes <- (canonical, s) :: a.new_encodes;
        s
  end

(* ---- canonicalizing merge -------------------------------------------------- *)

let flush () =
  if !enabled_flag then begin
    let a = arena () in
    if
      a.new_paths <> [] || a.new_routes <> [] || a.new_encodes <> []
    then
      with_lock @@ fun () ->
      (* Merge in creation order so a single-domain run gets exactly the
         dense first-seen ids the old global interner assigned. *)
      List.iter
        (fun p ->
          match Path_tbl.find_opt g_paths p with
          | Some (canonical, _) ->
              (* Another domain merged this path first: re-point the arena
                 so future hits share the winning spine. *)
              Pvr_obs.incr c_merge_dups;
              if canonical != p then Path_tbl.replace a.a_paths p canonical
          | None -> Path_tbl.add g_paths p (p, Path_tbl.length g_paths))
        (List.rev a.new_paths);
      List.iter
        (fun r ->
          match Route_tbl.find_opt g_routes r with
          | Some (canonical, _) ->
              Pvr_obs.incr c_merge_dups;
              if canonical != r then Route_tbl.replace a.a_routes r canonical
          | None -> Route_tbl.add g_routes r (r, Route_tbl.length g_routes))
        (List.rev a.new_routes);
      List.iter
        (fun (r, s) ->
          if not (Route_tbl.mem g_encodes r) then Route_tbl.add g_encodes r s)
        (List.rev a.new_encodes);
      a.new_paths <- [];
      a.new_routes <- [];
      a.new_encodes <- [];
      Pvr_obs.set_gauge g_paths_live (Path_tbl.length g_paths);
      Pvr_obs.set_gauge g_routes_live (Route_tbl.length g_routes)
  end

(* ---- id / stats reads (flush the caller's arena, then read global) -------- *)

let path_id p =
  if not !enabled_flag then None
  else begin
    flush ();
    with_lock @@ fun () ->
    match Path_tbl.find_opt g_paths p with
    | Some (_, id) -> Some id
    | None -> None
  end

let route_id r =
  if not !enabled_flag then None
  else begin
    flush ();
    with_lock @@ fun () ->
    match Route_tbl.find_opt g_routes r with
    | Some (_, id) -> Some id
    | None -> None
  end

type stats = { live_paths : int; live_routes : int; memoized_encodes : int }

let stats () =
  flush ();
  with_lock @@ fun () ->
  {
    live_paths = Path_tbl.length g_paths;
    live_routes = Route_tbl.length g_routes;
    memoized_encodes = Route_tbl.length g_encodes;
  }
