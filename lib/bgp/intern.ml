(* Hash-consing for AS paths and routes.

   At internet scale the simulator and engine shuffle the same few thousand
   distinct routes through millions of RIB writes, equality checks and
   digest encodings per epoch.  Interning maps every structurally-equal
   path/route to one canonical representative with a compact integer id, so
   [==] (the fast path inside {!Route.equal}) settles almost every
   comparison, storage is shared, and the injective {!Route.encode} bytes —
   recomputed for every vertex snapshot every epoch otherwise — are
   memoized per canonical route.

   The tables are mutex-guarded so engine worker domains may intern
   concurrently; all operations are allocation-free on the hit path.  The
   toggle is global and off by default: with interning disabled every
   function is the identity (or plain [Route.encode]), which is what the
   differential-oracle tests compare against. *)

let enabled_flag = ref false
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ---- structural hashing (no allocation) ---------------------------------- *)

let fnv_prime = 0x100000001b3

(* FNV-1a offset basis truncated to OCaml's 63-bit int. *)
let fnv_basis = 0x3bf29ce484222325

let mix h x = (h lxor x) * fnv_prime land max_int

let hash_path p =
  List.fold_left (fun h a -> mix h (Asn.to_int a)) fnv_basis p land max_int

let rec equal_path p q =
  p == q
  ||
  match (p, q) with
  | [], [] -> true
  | a :: p', b :: q' -> Asn.equal a b && equal_path p' q'
  | _ -> false

let hash_route (r : Route.t) =
  let h = mix fnv_basis r.prefix.Prefix.addr in
  let h = mix h r.prefix.Prefix.len in
  let h = mix h (hash_path r.as_path) in
  let h = mix h (Asn.to_int r.next_hop) in
  let h = mix h r.local_pref in
  let h = mix h r.med in
  let h =
    mix h (match r.origin with Route.Igp -> 0 | Egp -> 1 | Incomplete -> 2)
  in
  List.fold_left (fun h (a, v) -> mix (mix h a) v) h r.communities land max_int

module Path_tbl = Hashtbl.Make (struct
  type t = Asn.t list

  let equal = equal_path
  let hash = hash_path
end)

module Route_tbl = Hashtbl.Make (struct
  type t = Route.t

  let equal = Route.equal
  let hash = hash_route
end)

(* Values carry the canonical representative plus its dense id (assigned in
   interning order, starting at 0). *)
let paths : (Asn.t list * int) Path_tbl.t = Path_tbl.create 4096
let routes : (Route.t * int) Route_tbl.t = Route_tbl.create 4096
let encodes : string Route_tbl.t = Route_tbl.create 4096

let c_path_hits = Pvr_obs.counter "intern.path.hits"
let c_path_misses = Pvr_obs.counter "intern.path.misses"
let c_route_hits = Pvr_obs.counter "intern.route.hits"
let c_route_misses = Pvr_obs.counter "intern.route.misses"
let c_encode_hits = Pvr_obs.counter "intern.encode.hits"
let c_encode_misses = Pvr_obs.counter "intern.encode.misses"
let g_paths_live = Pvr_obs.gauge "intern.paths.live"
let g_routes_live = Pvr_obs.gauge "intern.routes.live"

let reset () =
  with_lock @@ fun () ->
  Path_tbl.reset paths;
  Route_tbl.reset routes;
  Route_tbl.reset encodes;
  Pvr_obs.set_gauge g_paths_live 0;
  Pvr_obs.set_gauge g_routes_live 0

let set_enabled b =
  enabled_flag := b;
  (* Dropping the toggle releases the canonical storage: a disabled interner
     holds no routes, so tests and the CLI can flip modes without leaking
     one mode's table into the other's measurements. *)
  if not b then reset ()

let enabled () = !enabled_flag

let path p =
  if not !enabled_flag then p
  else
    with_lock @@ fun () ->
    match Path_tbl.find_opt paths p with
    | Some (canonical, _) ->
        Pvr_obs.incr c_path_hits;
        canonical
    | None ->
        Pvr_obs.incr c_path_misses;
        let id = Path_tbl.length paths in
        Path_tbl.add paths p (p, id);
        Pvr_obs.set_gauge g_paths_live (id + 1);
        p

let intern_route_locked (r : Route.t) =
  match Route_tbl.find_opt routes r with
  | Some (canonical, _) ->
      Pvr_obs.incr c_route_hits;
      canonical
  | None ->
      Pvr_obs.incr c_route_misses;
      let as_path =
        match Path_tbl.find_opt paths r.as_path with
        | Some (canonical, _) ->
            Pvr_obs.incr c_path_hits;
            canonical
        | None ->
            Pvr_obs.incr c_path_misses;
            let id = Path_tbl.length paths in
            Path_tbl.add paths r.as_path (r.as_path, id);
            Pvr_obs.set_gauge g_paths_live (id + 1);
            r.as_path
      in
      let canonical = if as_path == r.as_path then r else { r with as_path } in
      let id = Route_tbl.length routes in
      Route_tbl.add routes canonical (canonical, id);
      Pvr_obs.set_gauge g_routes_live (id + 1);
      canonical

let route r = if not !enabled_flag then r else with_lock (fun () -> intern_route_locked r)

let path_id p =
  if not !enabled_flag then None
  else
    with_lock @@ fun () ->
    match Path_tbl.find_opt paths p with Some (_, id) -> Some id | None -> None

let route_id r =
  if not !enabled_flag then None
  else
    with_lock @@ fun () ->
    match Route_tbl.find_opt routes r with Some (_, id) -> Some id | None -> None

let encode r =
  if not !enabled_flag then Route.encode r
  else
    with_lock @@ fun () ->
    match Route_tbl.find_opt encodes r with
    | Some s ->
        Pvr_obs.incr c_encode_hits;
        s
    | None ->
        Pvr_obs.incr c_encode_misses;
        let s = Route.encode r in
        (* Key by the canonical representative so structurally-equal lookups
           from any copy of the route hit the same entry. *)
        Route_tbl.add encodes (intern_route_locked r) s;
        s

type stats = { live_paths : int; live_routes : int; memoized_encodes : int }

let stats () =
  with_lock @@ fun () ->
  {
    live_paths = Path_tbl.length paths;
    live_routes = Route_tbl.length routes;
    memoized_encodes = Route_tbl.length encodes;
  }
