(** The `pvr serve` daemon: a long-lived verification service multiplexing
    concurrent prover sessions onto the engine's fixed worker-domain pool.

    Shape: one accept loop (own systhread, interruptible via a self-pipe),
    one systhread per connection, and {!Pvr_engine.Pool} worker domains
    executing session work.  Connection threads never verify; worker
    domains never touch sockets.

    Backpressure is explicit and bounded at both levels: admission is a
    bounded queue ([queue_cap] waiting items, refusals answered [Busy]
    immediately and counted on [serve.busy]), and verdict streaming runs
    through a bounded per-session buffer — a slow consumer stalls only
    its own session's worker, and a vanished consumer cancels the session
    outright, so a killed client never wedges the pool.  Queue depth is
    published on the [serve.queue.depth] gauge.

    Sessions run their engines inline ([p_jobs] forced to 1; the digest
    is byte-identical for any jobs value) — parallelism comes from
    running many sessions across the worker domains. *)

type listen = Unix_sock of string | Tcp of string * int

type config = {
  listen : listen;
  workers : int;  (** pool worker domains executing session work *)
  queue_cap : int;  (** admitted-but-not-yet-running bound *)
  store_dir : string option;  (** evidence store served to Query requests *)
  quiet : bool;
}

val default_config : listen -> config
(** 2 workers, queue cap 8, no store, quiet. *)

type t

val start : config -> t
(** Bind, spawn the accept loop, size the worker pool.  Also ignores
    SIGPIPE process-wide: a dead client must surface as EPIPE on write,
    never as a process-killing signal.
    @raise Unix.Unix_error when the address cannot be bound. *)

val initiate_shutdown : t -> unit
(** Begin draining: stop accepting, let in-flight streams finish.
    Async-signal-safe (a single pipe write), so SIGTERM handlers may call
    it directly. *)

val wait : t -> unit
(** Block until the drain completes: accept loop exited, every in-flight
    request finished and its terminal frame sent, every connection
    closed, listener removed.  Call after {!initiate_shutdown} (or after
    a signal handler called it). *)

val stop : t -> unit
(** [initiate_shutdown] then [wait]. *)

val stats : t -> Protocol.stats_reply
(** Point-in-time daemon statistics (same data served to [Stats]
    requests). *)
