(* Blocking client for the `pvr serve` protocol: one connection, one
   in-flight request.  Used by `pvr drive`, the serve-vs-batch test
   differential and the E17 bench load generator. *)

type t = { fd : Unix.file_descr }

let connect listen =
  let fd =
    match (listen : Server.listen) with
    | Server.Unix_sock path ->
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        Unix.connect fd (ADDR_UNIX path);
        fd
    | Server.Tcp (host, port) ->
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        let addr = (Unix.gethostbyname host).h_addr_list.(0) in
        Unix.connect fd (ADDR_INET (addr, port));
        fd
  in
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t req =
  Protocol.send_request t.fd req;
  match Protocol.recv_response t.fd with
  | Ok resp -> resp
  | Error e -> Protocol.Err ("malformed response: " ^ e)

let ping t = match rpc t Protocol.Ping with Protocol.Ok_r -> true | _ -> false

let open_session t params =
  match rpc t (Protocol.Open_session params) with
  | Protocol.Session id -> Ok id
  | Protocol.Busy -> Error "busy"
  | Protocol.Err e -> Error e
  | _ -> Error "protocol error"

(* Drive one Run_epochs stream: [on_verdict] fires per epoch frame, and
   the return is the terminal frame's content. *)
let run_epochs ?(on_verdict = fun (_ : Protocol.verdict) -> ()) t id =
  Protocol.send_request t.fd (Protocol.Run_epochs id);
  let rec loop () =
    match Protocol.recv_response t.fd with
    | Error e -> Error ("malformed response: " ^ e)
    | Ok (Protocol.Verdict v) ->
        on_verdict v;
        loop ()
    | Ok (Protocol.Done { d_digest; d_convicted }) -> Ok (d_digest, d_convicted)
    | Ok Protocol.Busy -> Error "busy"
    | Ok (Protocol.Err e) -> Error e
    | Ok _ -> Error "protocol error"
  in
  loop ()

let query ?(viewer = 0) ?(json = false) t text =
  match rpc t (Protocol.Query { q_text = text; q_viewer = viewer; q_json = json }) with
  | Protocol.Rows rows -> Ok rows
  | Protocol.Err e -> Error e
  | Protocol.Busy -> Error "busy"
  | _ -> Error "protocol error"

let stats t =
  match rpc t Protocol.Stats with
  | Protocol.Stats_r s -> Ok s
  | Protocol.Err e -> Error e
  | _ -> Error "protocol error"

let stall t ms =
  match rpc t (Protocol.Stall ms) with
  | Protocol.Ok_r -> Ok ()
  | Protocol.Busy -> Error "busy"
  | Protocol.Err e -> Error e
  | _ -> Error "protocol error"

let close_session t id =
  match rpc t (Protocol.Close_session id) with
  | Protocol.Ok_r -> Ok ()
  | Protocol.Err e -> Error e
  | _ -> Error "protocol error"
