(** Wire protocol for the `pvr serve` daemon: length-framed
    {!Pvr_store.Codec} records over a byte stream (Unix domain socket or
    TCP).  Each frame is a 4-byte big-endian payload length followed by
    the payload; the first u32 of the payload is the message tag.

    The protocol is request/response except for [Run_epochs], which
    streams one [Verdict] frame per completed epoch and terminates with
    [Done] (or [Err]/[Busy]).  A connection carries at most one in-flight
    request. *)

exception Closed
(** Peer hung up (EOF, EPIPE, ECONNRESET) — the connection is dead. *)

val max_frame : int

type verdict = {
  v_epoch : int;
  v_changes : int;
  v_dirty : int;
  v_detected : int;
  v_convicted : int;
  v_digest : string;  (** running hash-chain digest after this epoch *)
}

type stats_reply = {
  st_sessions : int;
  st_inflight : int;
  st_queue_depth : int;
  st_queue_cap : int;
  st_workers : int;
  st_draining : bool;
}

type request =
  | Ping
  | Open_session of Workload.params
  | Run_epochs of int
  | Query of { q_text : string; q_viewer : int; q_json : bool }
  | Stats
  | Stall of int
      (** Occupy one pool worker for N ms — a test/ops aid that makes
          backpressure deterministic to provoke. *)
  | Close_session of int

type response =
  | Ok_r
  | Busy
  | Err of string
  | Session of int
  | Verdict of verdict
  | Done of { d_digest : string; d_convicted : int }
  | Stats_r of stats_reply
  | Rows of string list

val write_frame : Unix.file_descr -> string -> unit
val read_frame : Unix.file_descr -> string

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

val send_request : Unix.file_descr -> request -> unit
val send_response : Unix.file_descr -> response -> unit
val recv_request : Unix.file_descr -> (request, string) result
val recv_response : Unix.file_descr -> (response, string) result
