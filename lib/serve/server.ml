(* The `pvr serve` daemon.

   One accept loop (its own systhread, selecting on the listen socket and
   a self-pipe so shutdown can interrupt it), one systhread per
   connection, and a fixed pool of worker domains (the engine's
   {!Pvr_engine.Pool}) executing session work.  Connection threads never
   verify anything; worker domains never touch sockets.

   Admission control is a bounded queue: an admitted work item waits in
   the pool's async queue until a worker frees up, and when [queue_cap]
   items are already waiting the request is refused with [Busy]
   immediately — a slow or bursty client sees explicit backpressure,
   never unbounded buffering.  Verdict streaming has the same property at
   per-session granularity: the worker pushes each epoch's verdict into a
   bounded buffer drained by the connection thread, blocks when the
   buffer is full (the session's own consumer is the only party stalled),
   and aborts the run outright when the consumer is gone — a killed
   client cancels its session instead of wedging a worker.

   Sessions run their engines inline ([p_jobs] forced to 1): parallelism
   comes from running many sessions across the worker domains, and the
   engine's digest is byte-identical for any jobs value, so a serve
   session and a batch `pvr engine --jobs N` run agree on every digest. *)

module Obs = Pvr_obs

let g_queue_depth = Obs.gauge "serve.queue.depth"
let g_sessions = Obs.gauge "serve.sessions"
let g_inflight = Obs.gauge "serve.inflight"
let c_busy = Obs.counter "serve.busy"
let c_requests = Obs.counter "serve.requests"
let c_conns = Obs.counter "serve.conns"
let c_cancelled = Obs.counter "serve.cancelled"

type listen = Unix_sock of string | Tcp of string * int

type config = {
  listen : listen;
  workers : int; (* pool worker domains executing session work *)
  queue_cap : int; (* admitted-but-not-yet-running bound *)
  store_dir : string option; (* evidence store served to Query requests *)
  quiet : bool;
}

let default_config listen =
  { listen; workers = 2; queue_cap = 8; store_dir = None; quiet = true }

exception Cancelled
(* Raised inside a worker's on_report when the session's consumer is gone:
   unwinds the engine run through its own cleanup. *)

type session = {
  s_id : int;
  s_params : Workload.params;
  s_conn : int; (* owning connection: sessions die with their connection *)
  mutable s_world : Workload.world option; (* built by the first run, on a worker *)
  mutable s_running : bool;
  s_cancel : bool ref; (* set when the consumer disappears mid-stream *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr; (* self-pipe: signal handlers write, select reads *)
  stop_w : Unix.file_descr;
  mu : Mutex.t;
  idle_cond : Condition.t; (* fires when conn_active or inflight drops *)
  sessions : (int, session) Hashtbl.t;
  mutable next_session : int;
  mutable next_conn : int;
  mutable queued : int; (* admitted items waiting for a worker *)
  mutable running : int; (* items executing on a worker *)
  mutable conn_active : int; (* connection threads inside a request *)
  mutable draining : bool;
  mutable accept_exited : bool;
  mutable accept_thread : Thread.t option;
  mutable conn_threads : Thread.t list;
  mutable conn_fds : (int * Unix.file_descr) list;
}

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      Protocol.st_sessions = Hashtbl.length t.sessions;
      st_inflight = t.queued + t.running;
      st_queue_depth = t.queued;
      st_queue_cap = t.cfg.queue_cap;
      st_workers = Pvr_engine.Pool.worker_count ();
      st_draining = t.draining;
    }
  in
  Mutex.unlock t.mu;
  s

let publish_queue t =
  Obs.set_gauge g_queue_depth t.queued;
  Obs.set_gauge g_inflight (t.queued + t.running);
  Obs.set_gauge g_sessions (Hashtbl.length t.sessions)

(* Admit one work item, or refuse with [Busy].  [work] runs on a pool
   worker domain and must not raise. *)
let try_submit t work =
  Mutex.lock t.mu;
  if t.draining || t.queued >= t.cfg.queue_cap then begin
    publish_queue t;
    Mutex.unlock t.mu;
    Obs.incr c_busy;
    false
  end
  else begin
    t.queued <- t.queued + 1;
    publish_queue t;
    Mutex.unlock t.mu;
    Pvr_engine.Pool.submit (fun () ->
        Mutex.lock t.mu;
        t.queued <- t.queued - 1;
        t.running <- t.running + 1;
        publish_queue t;
        Mutex.unlock t.mu;
        (try work () with _ -> ());
        (* Merge this worker's intern arena eagerly: async items have no
           epoch barrier to do it for them. *)
        Pvr_bgp.Intern.flush ();
        Mutex.lock t.mu;
        t.running <- t.running - 1;
        publish_queue t;
        Condition.broadcast t.idle_cond;
        Mutex.unlock t.mu);
    true
  end

(* ---- bounded verdict channel ---------------------------------------------- *)

(* Worker -> connection-thread stream for one Run_epochs.  [push] blocks
   when [cap] frames are waiting (bounded buffering); it raises
   {!Cancelled} instead once the consumer has hung up. *)
module Vchan = struct
  type 'a ch = {
    q : 'a Queue.t;
    cap : int;
    mu : Mutex.t;
    cond : Condition.t;
    cancel : bool ref;
  }

  let create ~cancel cap =
    { q = Queue.create (); cap; mu = Mutex.create (); cond = Condition.create (); cancel }

  let push ch v =
    Mutex.lock ch.mu;
    while Queue.length ch.q >= ch.cap && not !(ch.cancel) do
      Condition.wait ch.cond ch.mu
    done;
    if !(ch.cancel) then begin
      Mutex.unlock ch.mu;
      raise Cancelled
    end;
    Queue.push v ch.q;
    Condition.broadcast ch.cond;
    Mutex.unlock ch.mu

  (* Terminal frames must land even when the consumer is gone, so the
     drain loop can tell the stream is over. *)
  let push_terminal ch v =
    Mutex.lock ch.mu;
    Queue.push v ch.q;
    Condition.broadcast ch.cond;
    Mutex.unlock ch.mu

  let pop ch =
    Mutex.lock ch.mu;
    while Queue.is_empty ch.q do
      Condition.wait ch.cond ch.mu
    done;
    let v = Queue.pop ch.q in
    Condition.broadcast ch.cond;
    Mutex.unlock ch.mu;
    v

  let cancel ch =
    Mutex.lock ch.mu;
    ch.cancel := true;
    Condition.broadcast ch.cond;
    Mutex.unlock ch.mu
end

(* ---- request handling ------------------------------------------------------ *)

let verdict_cap = 128

let find_session t id =
  Mutex.lock t.mu;
  let s = Hashtbl.find_opt t.sessions id in
  Mutex.unlock t.mu;
  s

let open_session t ~conn p =
  Mutex.lock t.mu;
  let id = t.next_session in
  t.next_session <- id + 1;
  let s =
    {
      s_id = id;
      (* Sessions verify inline; the pool parallelizes across sessions.
         The digest is identical for any jobs value, so this is invisible
         to the client. *)
      s_params = { p with Workload.p_jobs = 1 };
      s_conn = conn;
      s_world = None;
      s_running = false;
      s_cancel = ref false;
    }
  in
  Hashtbl.replace t.sessions id s;
  publish_queue t;
  Mutex.unlock t.mu;
  id

let close_session t id =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.sessions id with
  | Some s ->
      s.s_cancel := true;
      Hashtbl.remove t.sessions id
  | None -> ());
  publish_queue t;
  Mutex.unlock t.mu

(* Drop every session owned by a finished connection; running ones are
   cancelled and unwind on their next verdict. *)
let close_conn_sessions t conn =
  Mutex.lock t.mu;
  let doomed =
    Hashtbl.fold (fun id s acc -> if s.s_conn = conn then (id, s) :: acc else acc)
      t.sessions []
  in
  List.iter
    (fun (id, s) ->
      s.s_cancel := true;
      Hashtbl.remove t.sessions id)
    doomed;
  publish_queue t;
  Mutex.unlock t.mu

(* Run a session's epochs on a worker, streaming verdicts through [ch]. *)
let session_work s ch () =
  let h_epoch = Obs.histogram "serve.epoch" in
  let result =
    try
      let world =
        match s.s_world with
        | Some w -> w
        | None ->
            let w = Workload.build_world ~quiet:true s.s_params in
            s.s_world <- Some w;
            w
      in
      let last = ref (Unix.gettimeofday ()) in
      let on_report (r : Pvr_engine.Engine.epoch_report) =
        let now = Unix.gettimeofday () in
        Obs.observe h_epoch (now -. !last);
        last := now;
        if !(s.s_cancel) then raise Cancelled;
        Vchan.push ch
          (Protocol.Verdict
             {
               v_epoch = r.ep_epoch;
               v_changes = r.ep_changes;
               v_dirty = r.ep_dirty;
               v_detected = r.ep_detected;
               v_convicted = r.ep_convicted;
               v_digest = r.ep_digest;
             })
      in
      match Workload.engine_core ~quiet:true ~on_report world s.s_params with
      | Ok (digest, convicted) ->
          Protocol.Done { d_digest = digest; d_convicted = convicted }
      | Error e -> Protocol.Err e
    with
    | Cancelled ->
        Obs.incr c_cancelled;
        Protocol.Err "cancelled"
    | e -> Protocol.Err (Printexc.to_string e)
  in
  Vchan.push_terminal ch result

let is_terminal = function
  | Protocol.Done _ | Protocol.Err _ | Protocol.Busy | Protocol.Ok_r -> true
  | _ -> false

(* Drain the verdict channel to the socket.  A dead consumer flips the
   cancel flag (unblocking/aborting the worker) and keeps discarding
   frames until the terminal one, so the stream always unwinds. *)
let stream_to_fd fd ch =
  let dead = ref false in
  let rec loop () =
    let frame = Vchan.pop ch in
    (if not !dead then
       try Protocol.send_response fd frame
       with Protocol.Closed | Unix.Unix_error _ ->
         dead := true;
         Vchan.cancel ch);
    if is_terminal frame then !dead else loop ()
  in
  loop ()

let run_query t req =
  match t.cfg.store_dir with
  | None -> Protocol.Err "no evidence store attached (--store)"
  | Some dir -> (
      match req with
      | Protocol.Query { q_text; q_viewer; q_json } -> (
          match Pvr_query.Lang.parse q_text with
          | Error e ->
              Protocol.Err
                ("syntax error\n" ^ Pvr_query.Lang.render_error ~query:q_text e)
          | Ok q -> (
              match Pvr_query.Evidence_index.build ~dir () with
              | Error e -> Protocol.Err e
              | Ok idx ->
                  let viewer = Pvr_bgp.Asn.of_int q_viewer in
                  let res = Pvr_query.Exec.run idx ~viewer q in
                  let text =
                    if q_json then
                      Pvr_query.Exec.render_json ~query:q ~viewer res
                    else Pvr_query.Exec.render_text ~viewer res
                  in
                  Protocol.Rows (String.split_on_char '\n' text)))
      | _ -> Protocol.Err "internal: not a query")

(* Handle one request.  Returns [true] when the connection must close. *)
let handle_request t ~conn fd req =
  Obs.incr c_requests;
  match req with
  | Protocol.Ping ->
      Protocol.send_response fd Protocol.Ok_r;
      false
  | Protocol.Stats ->
      Protocol.send_response fd (Protocol.Stats_r (stats t));
      false
  | Protocol.Open_session p ->
      if Mutex.lock t.mu; t.draining then begin
        Mutex.unlock t.mu;
        Protocol.send_response fd (Protocol.Err "draining");
        true
      end
      else begin
        Mutex.unlock t.mu;
        let id = open_session t ~conn p in
        Protocol.send_response fd (Protocol.Session id);
        false
      end
  | Protocol.Close_session id ->
      close_session t id;
      Protocol.send_response fd Protocol.Ok_r;
      false
  | Protocol.Query _ ->
      Protocol.send_response fd (run_query t req);
      false
  | Protocol.Stall ms ->
      let ch = Vchan.create ~cancel:(ref false) 1 in
      if
        try_submit t (fun () ->
            Unix.sleepf (float_of_int ms /. 1000.0);
            Vchan.push_terminal ch Protocol.Ok_r)
      then (
        let dead = stream_to_fd fd ch in
        dead)
      else begin
        Protocol.send_response fd Protocol.Busy;
        false
      end
  | Protocol.Run_epochs id -> (
      match find_session t id with
      | None ->
          Protocol.send_response fd (Protocol.Err "unknown session");
          false
      | Some s ->
          let start =
            Mutex.lock t.mu;
            if s.s_running then begin
              Mutex.unlock t.mu;
              `Already
            end
            else begin
              s.s_running <- true;
              Mutex.unlock t.mu;
              `Go
            end
          in
          (match start with
          | `Already ->
              Protocol.send_response fd (Protocol.Err "session already running");
              false
          | `Go ->
              let ch = Vchan.create ~cancel:s.s_cancel verdict_cap in
              if try_submit t (session_work s ch) then begin
                let dead = stream_to_fd fd ch in
                Mutex.lock t.mu;
                s.s_running <- false;
                Mutex.unlock t.mu;
                dead
              end
              else begin
                Mutex.lock t.mu;
                s.s_running <- false;
                Mutex.unlock t.mu;
                Protocol.send_response fd Protocol.Busy;
                false
              end))

(* ---- connection loop ------------------------------------------------------- *)

let conn_loop t ~conn fd =
  Obs.incr c_conns;
  let rec loop () =
    match Protocol.recv_request fd with
    | exception Protocol.Closed -> ()
    | exception Unix.Unix_error _ -> ()
    | Error e -> (
        (* Malformed frame: answer if the socket still lives, then close. *)
        try Protocol.send_response fd (Protocol.Err ("malformed request: " ^ e))
        with Protocol.Closed | Unix.Unix_error _ -> ())
    | Ok req ->
        Mutex.lock t.mu;
        t.conn_active <- t.conn_active + 1;
        Mutex.unlock t.mu;
        let close =
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock t.mu;
              t.conn_active <- t.conn_active - 1;
              Condition.broadcast t.idle_cond;
              Mutex.unlock t.mu)
            (fun () ->
              try handle_request t ~conn fd req
              with Protocol.Closed | Unix.Unix_error _ -> true)
        in
        let draining =
          Mutex.lock t.mu;
          let d = t.draining in
          Mutex.unlock t.mu;
          d
        in
        if not (close || draining) then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      close_conn_sessions t conn;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock t.mu;
      t.conn_fds <- List.filter (fun (c, _) -> c <> conn) t.conn_fds;
      Condition.broadcast t.idle_cond;
      Mutex.unlock t.mu)
    loop

(* ---- lifecycle ------------------------------------------------------------- *)

let bind_listener = function
  | Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Unix.bind fd (ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Unix.setsockopt fd SO_REUSEADDR true;
      let addr = (Unix.gethostbyname host).h_addr_list.(0) in
      Unix.bind fd (ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let accept_loop t =
  let finish () =
    Mutex.lock t.mu;
    t.accept_exited <- true;
    Mutex.unlock t.mu
  in
  Fun.protect ~finally:finish @@ fun () ->
  let rec loop () =
    match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | readable, _, _ ->
        if List.mem t.stop_r readable then () (* drain requested *)
        else begin
          (match Unix.accept t.listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              Mutex.lock t.mu;
              let conn = t.next_conn in
              t.next_conn <- conn + 1;
              t.conn_fds <- (conn, fd) :: t.conn_fds;
              let th = Thread.create (fun () -> conn_loop t ~conn fd) () in
              t.conn_threads <- th :: t.conn_threads;
              Mutex.unlock t.mu);
          loop ()
        end
  in
  loop ()

let start cfg =
  (* A dead client must surface as EPIPE on write, never as a
     process-killing signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Pvr_engine.Pool.ensure_workers cfg.workers;
  let listen_fd = bind_listener cfg.listen in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      cfg;
      listen_fd;
      stop_r;
      stop_w;
      mu = Mutex.create ();
      idle_cond = Condition.create ();
      sessions = Hashtbl.create 16;
      next_session = 1;
      next_conn = 1;
      queued = 0;
      running = 0;
      conn_active = 0;
      draining = false;
      accept_exited = false;
      accept_thread = None;
      conn_threads = [];
      conn_fds = [];
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  if not cfg.quiet then
    (match cfg.listen with
    | Unix_sock p -> Printf.printf "pvr serve: listening on %s\n%!" p
    | Tcp (h, p) -> Printf.printf "pvr serve: listening on %s:%d\n%!" h p);
  t

(* Begin draining: stop accepting, let in-flight streams finish.
   Async-signal-safe (one pipe write) so SIGTERM handlers may call it. *)
let initiate_shutdown t =
  (try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1 : int)
   with Unix.Unix_error _ -> ())

(* Wait for a clean drain: accept loop gone, every in-flight request
   finished, every connection closed.  Returns when the daemon is fully
   stopped. *)
let wait t =
  (* Poll instead of joining outright: with every thread blocked in C
     (join/select/read) no thread executes OCaml code, so a pending
     SIGTERM's OCaml handler would never run.  Waking every 50 ms keeps
     the main thread pumping pending signals — the handler fires here,
     writes the self-pipe, and the accept loop exits. *)
  let accept_exited () =
    Mutex.lock t.mu;
    let d = t.accept_exited in
    Mutex.unlock t.mu;
    d
  in
  while not (accept_exited ()) do
    Unix.sleepf 0.05
  done;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  Mutex.lock t.mu;
  t.draining <- true;
  (* In-flight requests (streams included) finish cleanly... *)
  while t.conn_active > 0 || t.queued + t.running > 0 do
    Condition.wait t.idle_cond t.mu
  done;
  (* ...then idle connections (blocked reading their next request) are
     shut down so their threads observe EOF and exit. *)
  List.iter
    (fun (_, fd) -> try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    t.conn_fds;
  let threads = t.conn_threads in
  t.conn_threads <- [];
  Mutex.unlock t.mu;
  List.iter Thread.join threads;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  (match t.cfg.listen with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ())

let stop t =
  initiate_shutdown t;
  wait t
