(* Wire protocol for the `pvr serve` daemon.

   Transport: a byte stream (Unix domain socket or TCP).  Every message is
   one length-framed record — a 4-byte big-endian payload length followed
   by the payload — in the same style as the store's WAL framing.  The
   payload is a {!Pvr_store.Codec} record whose first u32 is the message
   tag; decoding is bounds-checked, and a malformed or oversized frame
   tears down only the offending connection, never the daemon.

   The protocol is strictly request/response except for [Run_epochs],
   which streams one [Verdict] frame per completed epoch and terminates
   with [Done] (or [Err]/[Busy]).  Clients drive the next request only
   after the terminal frame, so a connection carries at most one
   in-flight request. *)

module Codec = Pvr_store.Codec

(* Frames above this are a protocol violation (the largest legitimate
   frame is a query result page, far below 1 MiB). *)
let max_frame = 16 * 1024 * 1024

exception Closed

(* ---- framing -------------------------------------------------------------- *)

let really_write fd buf off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    match Unix.write fd buf !off !len with
    | 0 -> raise Closed
    | n ->
        off := !off + n;
        len := !len - n
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
        raise Closed
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let really_read fd buf off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    match Unix.read fd buf !off !len with
    | 0 -> raise Closed
    | n ->
        off := !off + n;
        len := !len - n
    | exception Unix.Unix_error (ECONNRESET, _, _) -> raise Closed
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Protocol.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  (* One write for header+payload keeps frames atomic at our end. *)
  let msg = Bytes.create (4 + n) in
  Bytes.blit hdr 0 msg 0 4;
  Bytes.blit_string payload 0 msg 4 n;
  really_write fd msg 0 (4 + n)

let read_frame fd =
  let hdr = Bytes.create 4 in
  really_read fd hdr 0 4;
  let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if n < 0 || n > max_frame then raise Closed;
  let payload = Bytes.create n in
  really_read fd payload 0 n;
  Bytes.unsafe_to_string payload

(* ---- messages ------------------------------------------------------------- *)

type verdict = {
  v_epoch : int;
  v_changes : int;
  v_dirty : int;
  v_detected : int;
  v_convicted : int;
  v_digest : string; (* running hash-chain digest after this epoch *)
}

type stats_reply = {
  st_sessions : int; (* open sessions *)
  st_inflight : int; (* admitted work items not yet finished *)
  st_queue_depth : int; (* admitted items waiting for a worker *)
  st_queue_cap : int;
  st_workers : int;
  st_draining : bool;
}

type request =
  | Ping
  | Open_session of Workload.params
  | Run_epochs of int (* session id *)
  | Query of { q_text : string; q_viewer : int; q_json : bool }
  | Stats
  | Stall of int (* occupy one worker for N ms: deterministic-backpressure test aid *)
  | Close_session of int

type response =
  | Ok_r
  | Busy
  | Err of string
  | Session of int
  | Verdict of verdict
  | Done of { d_digest : string; d_convicted : int }
  | Stats_r of stats_reply
  | Rows of string list

(* ---- params codec ---------------------------------------------------------- *)

let encode_params b (p : Workload.params) =
  Codec.u32 b p.p_seed;
  Codec.str b p.p_tiers;
  Codec.str b (Printf.sprintf "%.17g" p.p_peering);
  Codec.u32 b p.p_ases;
  Codec.bool_ b (p.p_gen_seed <> None);
  Codec.u32 b (match p.p_gen_seed with Some s -> s | None -> 0);
  Codec.u32 b p.p_epochs;
  Codec.u32 b p.p_jobs;
  Codec.u32 b p.p_shards;
  Codec.bool_ b p.p_intern;
  Codec.u32 b p.p_bits;
  Codec.bool_ b p.p_cache;
  Codec.u32 b p.p_salt_every;
  Codec.str b (Printf.sprintf "%.17g" p.p_turnover);
  Codec.u32 b p.p_origins;
  Codec.u32 b p.p_ppo;
  Codec.u32 b p.p_anycast;
  Codec.str b (Printf.sprintf "%.17g" p.p_drop);
  Codec.str b (Pvr.Adversary.strategy_to_string p.p_strategy);
  Codec.u32 b p.p_mem_ceiling;
  Codec.bool_ b p.p_spill

let float_of_field s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Codec.Malformed "float field")

let decode_params r : Workload.params =
  let p_seed = Codec.get_u32 r in
  let p_tiers = Codec.get_str r in
  let p_peering = float_of_field (Codec.get_str r) in
  let p_ases = Codec.get_u32 r in
  let has_gen_seed = Codec.get_bool r in
  let gen_seed = Codec.get_u32 r in
  let p_gen_seed = if has_gen_seed then Some gen_seed else None in
  let p_epochs = Codec.get_u32 r in
  let p_jobs = Codec.get_u32 r in
  let p_shards = Codec.get_u32 r in
  let p_intern = Codec.get_bool r in
  let p_bits = Codec.get_u32 r in
  let p_cache = Codec.get_bool r in
  let p_salt_every = Codec.get_u32 r in
  let p_turnover = float_of_field (Codec.get_str r) in
  let p_origins = Codec.get_u32 r in
  let p_ppo = Codec.get_u32 r in
  let p_anycast = Codec.get_u32 r in
  let p_drop = float_of_field (Codec.get_str r) in
  let p_strategy =
    let s = Codec.get_str r in
    match Pvr.Adversary.strategy_of_string s with
    | Some st -> st
    | None -> raise (Codec.Malformed ("unknown strategy " ^ s))
  in
  let p_mem_ceiling = Codec.get_u32 r in
  let p_spill = Codec.get_bool r in
  {
    p_seed;
    p_tiers;
    p_peering;
    p_ases;
    p_gen_seed;
    p_epochs;
    p_jobs;
    p_shards;
    p_intern;
    p_bits;
    p_cache;
    p_salt_every;
    p_turnover;
    p_origins;
    p_ppo;
    p_anycast;
    p_drop;
    p_strategy;
    p_mem_ceiling;
    p_spill;
  }

(* ---- request codec --------------------------------------------------------- *)

let encode_request req =
  let b = Buffer.create 128 in
  (match req with
  | Ping -> Codec.u32 b 1
  | Open_session p ->
      Codec.u32 b 2;
      encode_params b p
  | Run_epochs id ->
      Codec.u32 b 3;
      Codec.u32 b id
  | Query { q_text; q_viewer; q_json } ->
      Codec.u32 b 4;
      Codec.str b q_text;
      Codec.u32 b q_viewer;
      Codec.bool_ b q_json
  | Stats -> Codec.u32 b 5
  | Stall ms ->
      Codec.u32 b 6;
      Codec.u32 b ms
  | Close_session id ->
      Codec.u32 b 7;
      Codec.u32 b id);
  Buffer.contents b

let decode_request payload =
  Codec.decode payload (fun r ->
      match Codec.get_u32 r with
      | 1 -> Ping
      | 2 -> Open_session (decode_params r)
      | 3 -> Run_epochs (Codec.get_u32 r)
      | 4 ->
          let q_text = Codec.get_str r in
          let q_viewer = Codec.get_u32 r in
          let q_json = Codec.get_bool r in
          Query { q_text; q_viewer; q_json }
      | 5 -> Stats
      | 6 -> Stall (Codec.get_u32 r)
      | 7 -> Close_session (Codec.get_u32 r)
      | t -> raise (Codec.Malformed (Printf.sprintf "unknown request tag %d" t)))

(* ---- response codec -------------------------------------------------------- *)

let encode_response resp =
  let b = Buffer.create 128 in
  (match resp with
  | Ok_r -> Codec.u32 b 100
  | Busy -> Codec.u32 b 101
  | Err e ->
      Codec.u32 b 102;
      Codec.str b e
  | Session id ->
      Codec.u32 b 103;
      Codec.u32 b id
  | Verdict v ->
      Codec.u32 b 104;
      Codec.u32 b v.v_epoch;
      Codec.u32 b v.v_changes;
      Codec.u32 b v.v_dirty;
      Codec.u32 b v.v_detected;
      Codec.u32 b v.v_convicted;
      Codec.str b v.v_digest
  | Done { d_digest; d_convicted } ->
      Codec.u32 b 105;
      Codec.str b d_digest;
      Codec.u32 b d_convicted
  | Stats_r st ->
      Codec.u32 b 106;
      Codec.u32 b st.st_sessions;
      Codec.u32 b st.st_inflight;
      Codec.u32 b st.st_queue_depth;
      Codec.u32 b st.st_queue_cap;
      Codec.u32 b st.st_workers;
      Codec.bool_ b st.st_draining
  | Rows rows ->
      Codec.u32 b 107;
      Codec.u32 b (List.length rows);
      List.iter (Codec.str b) rows);
  Buffer.contents b

let decode_response payload =
  Codec.decode payload (fun r ->
      match Codec.get_u32 r with
      | 100 -> Ok_r
      | 101 -> Busy
      | 102 -> Err (Codec.get_str r)
      | 103 -> Session (Codec.get_u32 r)
      | 104 ->
          let v_epoch = Codec.get_u32 r in
          let v_changes = Codec.get_u32 r in
          let v_dirty = Codec.get_u32 r in
          let v_detected = Codec.get_u32 r in
          let v_convicted = Codec.get_u32 r in
          let v_digest = Codec.get_str r in
          Verdict { v_epoch; v_changes; v_dirty; v_detected; v_convicted; v_digest }
      | 105 ->
          let d_digest = Codec.get_str r in
          let d_convicted = Codec.get_u32 r in
          Done { d_digest; d_convicted }
      | 106 ->
          let st_sessions = Codec.get_u32 r in
          let st_inflight = Codec.get_u32 r in
          let st_queue_depth = Codec.get_u32 r in
          let st_queue_cap = Codec.get_u32 r in
          let st_workers = Codec.get_u32 r in
          let st_draining = Codec.get_bool r in
          Stats_r
            {
              st_sessions;
              st_inflight;
              st_queue_depth;
              st_queue_cap;
              st_workers;
              st_draining;
            }
      | 107 ->
          let n = Codec.get_u32 r in
          if n > 1_000_000 then raise (Codec.Malformed "row count");
          Rows (List.init n (fun _ -> Codec.get_str r))
      | t ->
          raise (Codec.Malformed (Printf.sprintf "unknown response tag %d" t)))

let send_request fd req = write_frame fd (encode_request req)
let send_response fd resp = write_frame fd (encode_response resp)

let recv_request fd =
  match decode_request (read_frame fd) with
  | Ok req -> Ok req
  | Error e -> Error e

let recv_response fd =
  match decode_response (read_frame fd) with
  | Ok resp -> Ok resp
  | Error e -> Error e
