(* Deterministic engine workloads, factored out of the CLI so that batch
   runs (`pvr engine`, `pvr crashsoak`) and daemon sessions (`pvr serve`)
   construct byte-identical worlds from the same parameters: the
   serve-vs-batch digest differential holds by construction because both
   call exactly this code. *)

module P = Pvr
module G = Pvr_bgp
module C = Pvr_crypto

type params = {
  p_seed : int;
  p_tiers : string;
  p_peering : float;
  p_ases : int; (* > 0: power-law generated topology instead of tiers *)
  p_gen_seed : int option;
  p_epochs : int;
  p_jobs : int;
  p_shards : int;
  p_intern : bool;
  p_bits : int;
  p_cache : bool;
  p_salt_every : int;
  p_turnover : float;
  p_origins : int;
  p_ppo : int;
  p_anycast : int;
  p_drop : float;
  p_strategy : P.Adversary.strategy;
  p_mem_ceiling : int; (* major-heap budget in words; 0 = unbounded *)
  p_spill : bool; (* page cold vertex state out through the store *)
}

(* Mirrors the CLI's flag defaults, so a request that omits overrides runs
   the same workload `pvr engine` runs with no flags. *)
let defaults =
  {
    p_seed = 42;
    p_tiers = "1,2,4";
    p_peering = 0.1;
    p_ases = 0;
    p_gen_seed = None;
    p_epochs = 5;
    p_jobs = 1;
    p_shards = 0;
    p_intern = false;
    p_bits = 512;
    p_cache = true;
    p_salt_every = 8;
    p_turnover = 0.2;
    p_origins = 4;
    p_ppo = 2;
    p_anycast = 1;
    p_drop = 0.0;
    p_strategy = P.Adversary.Sweep P.Adversary.Honest;
    p_mem_ceiling = 0;
    p_spill = false;
  }

type world = {
  w_topo : G.Topology.t;
  w_keyring : P.Keyring.t;
  w_churn : G.Update_gen.Churn.t;
  w_churn_rng : C.Drbg.t;
  w_engine_rng : C.Drbg.t;
}

(* Deterministic world construction.  The split order on the master DRBG —
   "topology", "keys", "churn", "engine" — is part of the on-disk contract:
   a resumed run replays the same streams, so it must never change. *)
let build_world ?(quiet = false) p =
  G.Intern.set_enabled p.p_intern;
  let master = C.Drbg.of_int_seed p.p_seed in
  let topo =
    if p.p_ases > 0 then
      (* Power-law internet.  --gen-seed decouples the topology from the
         run seed (same internet, different salts/churn); without it the
         topology comes from the master stream like the hierarchy does. *)
      let gen_rng =
        match p.p_gen_seed with
        | Some s -> C.Drbg.of_int_seed s
        | None -> C.Drbg.split master "topology"
      in
      G.Topology.generate gen_rng ~extra_peering:p.p_peering ~ases:p.p_ases ()
    else
      let tiers =
        List.map int_of_string (String.split_on_char ',' p.p_tiers)
      in
      G.Topology.hierarchy
        (C.Drbg.split master "topology")
        ~tiers ~extra_peering:p.p_peering
  in
  let ases = G.Topology.ases topo in
  if not quiet then begin
    Printf.printf
      "engine: %d ASes, %d links; seed=%d epochs=%d jobs=%d shards=%d \
       cache=%b intern=%b salt_every=%d turnover=%.2f\n%!"
      (G.Topology.size topo)
      (List.length (G.Topology.links topo))
      p.p_seed p.p_epochs p.p_jobs p.p_shards p.p_cache p.p_intern
      p.p_salt_every p.p_turnover;
    Printf.printf "Generating %d RSA-%d keys...\n%!" (List.length ases) p.p_bits
  end;
  let keyring =
    P.Keyring.create ~bits:p.p_bits (C.Drbg.split master "keys") ases
  in
  (* Churn origins: the highest-numbered (bottom-tier) ASes. *)
  let origin_list =
    let sorted = List.sort (fun a b -> G.Asn.compare b a) ases in
    List.filteri (fun i _ -> i < p.p_origins) sorted |> List.rev
  in
  let churn =
    G.Update_gen.Churn.create ~anycast:p.p_anycast ~origins:origin_list
      ~prefixes_per_origin:p.p_ppo ()
  in
  let churn_rng = C.Drbg.split master "churn" in
  let engine_rng = C.Drbg.split master "engine" in
  {
    w_topo = topo;
    w_keyring = keyring;
    w_churn = churn;
    w_churn_rng = churn_rng;
    w_engine_rng = engine_rng;
  }

let scratch_seq = Atomic.make 0

(* One engine run over a pre-built world.  [on_phase ~epoch phase] fires at
   the epoch's internal barriers ("apply"/"collect"/"verify") and after the
   journal write ("record") — the crash-soak kill hook.  [on_report] fires
   once per completed epoch with its report — the serve daemon streams a
   verdict frame from it.  Returns the final digest and total convictions,
   or [Error] when the checkpoint store is unrecoverable. *)
let engine_core ?(quiet = false) ?(on_phase = fun ~epoch:_ (_ : string) -> ())
    ?(on_report = fun (_ : Pvr_engine.Engine.epoch_report) -> ())
    ?checkpoint_dir ?(resume = false) ?(checkpoint_every = 1) ?(fsync = true)
    world p =
  let sim = G.Simulator.create world.w_topo in
  (* The engine never reads the simulator's message log, and at 10k+ ASes
     it is the single largest allocation of a run — keep it off. *)
  G.Simulator.set_log_enabled sim false;
  let faults =
    if p.p_drop > 0.0 then
      Some
        {
          P.Runner.perfect_faults with
          fp_policy = Pvr_net.faulty ~drop:p.p_drop ();
        }
    else None
  in
  let eng =
    Pvr_engine.Engine.create ~jobs:p.p_jobs ~shards:p.p_shards ~cache:p.p_cache
      ~salt_every:p.p_salt_every ~strategy:p.p_strategy ?faults
      world.w_engine_rng world.w_keyring ~topology:world.w_topo ~sim ()
  in
  let apply ~epoch sim =
    if epoch = 1 then List.length (G.Update_gen.Churn.seed world.w_churn sim)
    else
      List.length
        (G.Update_gen.Churn.step world.w_churn_rng ~turnover:p.p_turnover
           world.w_churn sim)
  in
  let start =
    match checkpoint_dir with
    | None -> Ok 0
    | Some dir ->
        if resume then
          match Pvr_engine.Persist.resume ~quiet ~dir ~engine:eng ~apply () with
          | Ok rs ->
              if not quiet then
                Printf.printf
                  "resumed: epoch=%d snapshot=%d replayed=%d dropped=%d\n%!"
                  rs.Pvr_engine.Persist.rs_epoch rs.rs_snapshot_epoch
                  rs.rs_replayed rs.rs_dropped;
              Ok rs.Pvr_engine.Persist.rs_epoch
          | Error e -> Error e
        else begin
          Pvr_store.Store.reset ~dir;
          Ok 0
        end
  in
  match start with
  | Error e -> Error e
  | Ok start ->
      let session =
        Option.map
          (fun dir ->
            Pvr_engine.Persist.start ~fsync ~snapshot_every:checkpoint_every
              ~page:p.p_spill ~dir ())
          checkpoint_dir
      in
      (* Spilling without a checkpoint dir still needs a WAL to page into:
         a scratch store under the temp dir, removed when the run ends.
         The name carries a process-wide sequence number because the
         serve daemon can run several spilling sessions concurrently in
         one process. *)
      let scratch_dir =
        if p.p_spill && session = None then
          Some
            (Filename.concat
               (Filename.get_temp_dir_name ())
               (Printf.sprintf "pvr-spill-%d-%d" (Unix.getpid ())
                  (Atomic.fetch_and_add scratch_seq 1)))
        else None
      in
      let scratch =
        Option.map
          (fun dir ->
            Pvr_store.Store.reset ~dir;
            Pvr_engine.Persist.start ~fsync:false ~snapshot_every:0 ~dir ())
          scratch_dir
      in
      Pvr_engine.Engine.set_mem_ceiling eng p.p_mem_ceiling;
      if p.p_spill then begin
        let s =
          match session with Some s -> s | None -> Option.get scratch
        in
        Pvr_engine.Engine.set_pager eng
          (Some
             (Pvr_engine.Persist.pager s
                ~run_id:(Pvr_engine.Engine.Checkpoint.run_id eng)))
      end;
      let convicted = ref 0 in
      Fun.protect
        ~finally:(fun () ->
          Option.iter Pvr_engine.Persist.close session;
          Option.iter Pvr_engine.Persist.close scratch;
          Option.iter
            (fun dir ->
              try
                Array.iter
                  (fun f -> Sys.remove (Filename.concat dir f))
                  (Sys.readdir dir);
                Unix.rmdir dir
              with Sys_error _ | Unix.Unix_error _ -> ())
            scratch_dir)
        (fun () ->
          for i = start + 1 to p.p_epochs do
            let r =
              Pvr_engine.Engine.epoch ~apply:(apply ~epoch:i)
                ~on_phase:(fun ph -> on_phase ~epoch:i ph)
                eng
            in
            if not quiet then print_endline (Pvr_engine.Engine.report_line r);
            Option.iter
              (fun s ->
                Pvr_engine.Persist.record s eng r;
                on_phase ~epoch:i "record")
              session;
            on_report r;
            convicted := !convicted + r.Pvr_engine.Engine.ep_convicted
          done);
      Ok (Pvr_engine.Engine.digest eng, !convicted)
