(** Blocking client for the `pvr serve` protocol: one connection, one
    in-flight request at a time.  Every call is synchronous; concurrency
    comes from using one client per thread (`pvr drive`, the E17 bench
    load generator and the serve test battery do exactly that). *)

type t

val connect : Server.listen -> t
(** @raise Unix.Unix_error when the daemon is unreachable. *)

val close : t -> unit

val ping : t -> bool

val open_session : t -> Workload.params -> (int, string) result
(** Returns the session id.  [Error "busy"] maps the daemon's [Busy]. *)

val run_epochs :
  ?on_verdict:(Protocol.verdict -> unit) ->
  t ->
  int ->
  (string * int, string) result
(** Stream the session's epochs: [on_verdict] fires once per epoch frame;
    returns the terminal [(digest, convictions)]. *)

val query :
  ?viewer:int -> ?json:bool -> t -> string -> (string list, string) result
(** Run a `pvr query`-language request against the daemon's attached
    evidence store; returns rendered output lines. *)

val stats : t -> (Protocol.stats_reply, string) result
val stall : t -> int -> (unit, string) result
val close_session : t -> int -> (unit, string) result
