(** Deterministic engine workloads, shared by the CLI's batch commands and
    the serve daemon.

    Both `pvr engine` and a `pvr serve` session construct their world and
    drive their epochs through exactly this module, so for equal
    {!params} they produce byte-identical hash-chained digests — the
    serve-vs-batch differential in the test battery holds by
    construction, not by parallel maintenance of two code paths. *)

type params = {
  p_seed : int;
  p_tiers : string;
  p_peering : float;
  p_ases : int;  (** > 0: power-law generated topology instead of tiers *)
  p_gen_seed : int option;
  p_epochs : int;
  p_jobs : int;
  p_shards : int;
  p_intern : bool;
  p_bits : int;
  p_cache : bool;
  p_salt_every : int;
  p_turnover : float;
  p_origins : int;
  p_ppo : int;
  p_anycast : int;
  p_drop : float;
  p_strategy : Pvr.Adversary.strategy;
  p_mem_ceiling : int;  (** major-heap budget in words; 0 = unbounded *)
  p_spill : bool;  (** page cold vertex state out through the store *)
}

val defaults : params
(** The CLI's flag defaults: hierarchy "1,2,4", seed 42, 5 epochs,
    jobs 1, RSA-512, cache on, intern off. *)

type world = {
  w_topo : Pvr_bgp.Topology.t;
  w_keyring : Pvr.Keyring.t;
  w_churn : Pvr_bgp.Update_gen.Churn.t;
  w_churn_rng : Pvr_crypto.Drbg.t;
  w_engine_rng : Pvr_crypto.Drbg.t;
}

val build_world : ?quiet:bool -> params -> world
(** Deterministic world construction.  The split order on the master
    DRBG — "topology", "keys", "churn", "engine" — is part of the
    on-disk contract: a resumed run replays the same streams, so it must
    never change.  Also flips the global intern toggle to [p_intern]. *)

val engine_core :
  ?quiet:bool ->
  ?on_phase:(epoch:int -> string -> unit) ->
  ?on_report:(Pvr_engine.Engine.epoch_report -> unit) ->
  ?checkpoint_dir:string ->
  ?resume:bool ->
  ?checkpoint_every:int ->
  ?fsync:bool ->
  world ->
  params ->
  (string * int, string) result
(** Run [p_epochs] engine epochs over a pre-built world.  [on_phase
    ~epoch phase] fires at the epoch's internal barriers
    ("apply"/"collect"/"verify") and after the journal write ("record") —
    the crash-soak kill hook.  [on_report] fires once per completed epoch
    with its report — the serve daemon streams a verdict frame from it.
    Returns [(final_digest, total_convictions)], or [Error] when the
    checkpoint store is unrecoverable. *)
